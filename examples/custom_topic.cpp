// Domain independence demo: the restructuring rules are untouched; only
// the topic concepts change. Here the topic is product-catalog pages
// (the broader-topic direction the paper's §5 sketches).

#include <cstdio>

#include "core/pipeline.h"
#include "corpus/catalog_generator.h"
#include "restructure/recognizer.h"
#include "xml/writer.h"

int main() {
  // 1. Domain knowledge for the new topic: 7 concepts instead of 24.
  webre::ConceptSet concepts = webre::CatalogConcepts();
  webre::ConstraintSet constraints = webre::CatalogConstraints();
  webre::SynonymRecognizer recognizer(&concepts);

  // 2. Same pipeline, different root element name.
  webre::PipelineOptions options;
  options.convert.root_name = "catalog";
  options.mining.sup_threshold = 0.4;
  options.mining.ratio_threshold = 0.3;
  webre::Pipeline pipeline(&concepts, &recognizer, &constraints, options);

  std::vector<std::string> pages;
  for (size_t i = 0; i < 60; ++i) {
    pages.push_back(webre::GenerateCatalogPage(i).html);
  }
  webre::PipelineResult result = pipeline.Run(pages);

  std::printf("--- one converted catalog page ---\n%s\n",
              webre::WriteXml(*result.documents[0]).c_str());
  std::printf("--- discovered majority schema ---\n%s\n",
              result.schema.ToString().c_str());
  std::printf("--- derived DTD ---\n%s", result.dtd.ToString().c_str());
  return 0;
}
