// §5's "linkage structures": a topic crawler that *follows links* over a
// site graph — resumes live behind hub pages, so filtering a flat stream
// is not enough; the crawler must traverse. The accepted pages then feed
// the usual pipeline.

#include <cstdio>

#include "concepts/resume_domain.h"
#include "core/pipeline.h"
#include "corpus/crawler.h"
#include "corpus/site_generator.h"
#include "restructure/recognizer.h"

int main() {
  // A synthetic community site: index -> directory hubs -> resume pages,
  // plus an interlinked blog section of off-topic pages.
  webre::SiteOptions site_options;
  site_options.resumes = 40;
  site_options.distractors = 15;
  webre::GeneratedSite site = webre::GenerateSite(site_options);
  std::printf("site: %zu pages (%zu resumes, %zu off-topic, rest "
              "index/hubs), seed %s\n",
              site.pages.size(), site.resume_urls.size(),
              site.distractor_urls.size(), site.start_url.c_str());

  webre::ConceptSet concepts = webre::ResumeConcepts();
  webre::ConstraintSet constraints = webre::ResumeConstraints();
  webre::CrawlerOptions crawl_options;
  crawl_options.title_concepts = webre::ResumeTitleConceptNames();
  webre::TopicCrawler crawler(&concepts, crawl_options);

  webre::TopicCrawler::GraphCrawl crawl =
      crawler.CrawlGraph(site.pages, site.start_url);
  std::printf("crawl: visited %zu pages, accepted %zu as on-topic\n",
              crawl.pages_visited, crawl.accepted_urls.size());
  for (size_t i = 0; i < crawl.accepted_urls.size() && i < 5; ++i) {
    std::printf("  %s\n", crawl.accepted_urls[i].c_str());
  }
  if (crawl.accepted_urls.size() > 5) {
    std::printf("  ... %zu more\n", crawl.accepted_urls.size() - 5);
  }

  // Feed the accepted pages to the pipeline.
  std::vector<std::string> pages;
  for (const std::string& url : crawl.accepted_urls) {
    pages.push_back(site.pages.at(url));
  }
  webre::SynonymRecognizer recognizer(&concepts);
  webre::Pipeline pipeline(&concepts, &recognizer, &constraints);
  webre::PipelineResult result = pipeline.Run(pages);
  std::printf("\nmajority schema from the crawled pages (%zu paths):\n%s",
              result.schema.NodeCount(), result.schema.ToString().c_str());
  return 0;
}
