// Quickstart: convert one HTML resume into a semantically tagged XML
// document with the bundled resume domain knowledge.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart

#include <cstdio>

#include "concepts/resume_domain.h"
#include "restructure/converter.h"
#include "restructure/recognizer.h"
#include "xml/writer.h"

int main() {
  // A small legacy-HTML resume, the way a 2001-era author might write it.
  const char* kHtml = R"(
<html><head><title>Jane Doe</title></head><body>
<p><b>Resume of Jane Doe</b></p>
<h2>Contact Information</h2>
<p>14 Elm Street<br>Davis, California<br>Phone: (530) 555-6172<br>
Email: jdoe@mailhub.net</p>
<h2>Education</h2>
<ul>
<li>June 1996, University of Wisconsin, B.S., Computer Science, GPA 3.8/4.0
<li>June 1998, Stanford University, M.S., Computer Science
</ul>
<h2>Experience</h2>
<ul>
<li>Software Engineer, Vexatron Systems Inc., San Jose, June 1998 - Present
</ul>
<h2>Skills</h2>
<p>C++, Java, Python, SQL</p>
</body></html>)";

  // 1. Domain knowledge: 24 concepts / 233 instances (paper §4) plus the
  //    optional concept constraints.
  const webre::ConceptSet concepts = webre::ResumeConcepts();
  const webre::ConstraintSet constraints = webre::ResumeConstraints();

  // 2. Recognize concept instances by synonym matching (the paper's
  //    first recognizer; see BayesRecognizer for the second).
  const webre::SynonymRecognizer recognizer(&concepts);

  // 3. Convert: tokenization rule -> concept instance rule -> grouping
  //    rule -> consolidation rule.
  const webre::DocumentConverter converter(&concepts, &recognizer,
                                           &constraints);
  webre::ConvertStats stats;
  std::unique_ptr<webre::Node> xml = converter.Convert(kHtml, &stats);

  std::printf("tokens: %zu   identified: %zu (%.0f%%)   concept nodes: %zu\n\n",
              stats.instance.tokens_total, stats.instance.tokens_identified,
              100.0 * stats.instance.IdentifiedRatio(), stats.concept_nodes);
  std::printf("%s\n", webre::WriteXml(*xml).c_str());
  return 0;
}
