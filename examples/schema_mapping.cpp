// Document Mapping Component demo: conform a non-conforming XML document
// to the discovered majority schema, and contrast the mapping cost
// against the two baseline schema types (Data Guide / lower bound) —
// the paper's argument for why a *majority* schema is the right guide
// for integration (§1, §5).

#include <cstdio>

#include "concepts/resume_domain.h"
#include "corpus/resume_generator.h"
#include "mapping/document_mapper.h"
#include "mapping/edit_script.h"
#include "mapping/tree_edit.h"
#include "restructure/converter.h"
#include "restructure/recognizer.h"
#include "schema/dtd_builder.h"
#include "schema/frequent_paths.h"
#include "xml/writer.h"

int main() {
  webre::ConceptSet concepts = webre::ResumeConcepts();
  webre::ConstraintSet constraints = webre::ResumeConstraints();
  webre::SynonymRecognizer recognizer(&concepts);
  webre::DocumentConverter converter(&concepts, &recognizer, &constraints);

  // Convert a corpus and mine its schema.
  webre::MiningOptions mining;
  mining.constraints = &constraints;
  webre::FrequentPathMiner miner(mining);
  std::vector<std::unique_ptr<webre::Node>> docs;
  for (size_t i = 0; i < 150; ++i) {
    docs.push_back(converter.Convert(webre::GenerateResume(i).html));
    miner.AddDocument(*docs.back());
  }
  webre::MajoritySchema majority = miner.Discover();
  webre::Dtd dtd = webre::BuildDtd(majority);

  std::printf("majority schema: %zu paths\n%s\n", majority.NodeCount(),
              majority.ToString().c_str());

  // Take one document that does NOT conform and map it.
  for (const auto& doc : docs) {
    webre::ConformResult mapped =
        webre::ConformToSchema(*doc, majority, dtd);
    if (mapped.report.edit_distance == 0.0) continue;  // already conforms

    std::printf("--- original document ---\n%s\n",
                webre::WriteXml(*doc).c_str());
    std::printf("--- mapped to majority schema ---\n%s\n",
                webre::WriteXml(*mapped.document).c_str());
    std::printf("removed=%zu inserted=%zu reordered=%zu "
                "edit distance=%.0f conforms=%s\n",
                mapped.report.nodes_removed, mapped.report.nodes_inserted,
                mapped.report.reorder_moves, mapped.report.edit_distance,
                mapped.report.conforms ? "yes" : "no");

    // The optimal edit script (Zhang-Shasha backtrace): the concrete
    // operations the tree-edit distance prices.
    webre::EditScript script =
        webre::ComputeEditScript(*doc, *mapped.document);
    std::printf("--- optimal edit script (%zu ops, cost %.0f) ---\n",
                script.ops.size(), script.cost);
    for (size_t i = 0; i < script.ops.size() && i < 12; ++i) {
      std::printf("  %s\n", script.ops[i].ToString().c_str());
    }
    if (script.ops.size() > 12) {
      std::printf("  ... %zu more\n", script.ops.size() - 12);
    }
    break;
  }

  // Cost comparison against the baselines over the whole corpus.
  webre::MajoritySchema dataguide = webre::DiscoverDataGuide(miner);
  webre::MajoritySchema lower = webre::DiscoverLowerBound(miner);
  webre::Dtd dataguide_dtd = webre::BuildDtd(dataguide);
  webre::Dtd lower_dtd = webre::BuildDtd(lower);

  double cost_majority = 0;
  double cost_dataguide = 0;
  double cost_lower = 0;
  for (const auto& doc : docs) {
    cost_majority +=
        webre::ConformToSchema(*doc, majority, dtd).report.edit_distance;
    cost_dataguide +=
        webre::ConformToSchema(*doc, dataguide, dataguide_dtd)
            .report.edit_distance;
    cost_lower +=
        webre::ConformToSchema(*doc, lower, lower_dtd).report.edit_distance;
  }
  std::printf("\naverage mapping cost per document (tree-edit distance):\n");
  std::printf("  majority schema (%4zu paths): %6.1f\n",
              majority.NodeCount(), cost_majority / docs.size());
  std::printf("  data guide      (%4zu paths): %6.1f\n",
              dataguide.NodeCount(), cost_dataguide / docs.size());
  std::printf("  lower bound     (%4zu paths): %6.1f\n", lower.NodeCount(),
              cost_lower / docs.size());
  return 0;
}
