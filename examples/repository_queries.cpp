// The paper's full integration story, end to end: heterogeneous HTML
// resumes -> conversion -> majority schema + DTD -> document mapping ->
// an XML repository with a DTD admission gate -> path queries with a
// label-path index. (§1: "to facilitate querying Web based data in a way
// more efficient and effective than just keyword based retrieval".)

#include <cstdio>

#include "concepts/resume_domain.h"
#include "core/pipeline.h"
#include "corpus/resume_generator.h"
#include "mapping/document_mapper.h"
#include "repository/repository.h"
#include "restructure/recognizer.h"

int main() {
  webre::ConceptSet concepts = webre::ResumeConcepts();
  webre::ConstraintSet constraints = webre::ResumeConstraints();
  webre::SynonymRecognizer recognizer(&concepts);

  webre::PipelineOptions options;
  options.map_documents = true;
  options.dtd.mark_optional = true;
  webre::Pipeline pipeline(&concepts, &recognizer, &constraints, options);

  std::vector<std::string> pages;
  for (size_t i = 0; i < 120; ++i) {
    pages.push_back(webre::GenerateResume(i).html);
  }
  webre::PipelineResult result = pipeline.Run(pages);

  webre::XmlRepository repo;
  repo.SetDtd(result.dtd);
  size_t admitted = 0;
  for (auto& doc : result.mapped_documents) {
    if (repo.Add(std::move(doc)).ok()) ++admitted;
  }
  webre::RepositoryStats stats = repo.Stats();
  std::printf("repository: %zu/%zu documents admitted under the DTD gate; "
              "%zu elements, %zu distinct label paths\n\n",
              admitted, pages.size(), stats.elements, stats.distinct_paths);

  const char* queries[] = {
      "/resume/EDUCATION/DATE",
      "//INSTITUTION",
      "//DATE[val~\"1996\"]",
      "/resume/SKILLS/LANGUAGE[val~\"python\"]",
      "/resume/EXPERIENCE/JOBTITLE/COMPANY",
      "/resume/*/LANGUAGE",
  };
  for (const char* text : queries) {
    auto matches = repo.Query(text);
    if (!matches.ok()) {
      std::printf("%-45s -> error: %s\n", text,
                  matches.status().ToString().c_str());
      continue;
    }
    std::printf("%-45s -> %4zu matches", text, matches->size());
    if (!matches->empty()) {
      const webre::QueryMatch& first = (*matches)[0];
      const std::string_view name =
          webre::NameTable::Global().NameOf(first.name());
      std::printf("   e.g. doc %zu: <%.*s val=\"%.40s\">", first.doc,
                  (int)name.size(), name.data(),
                  std::string(first.val()).c_str());
    }
    std::printf("\n");
  }
  return 0;
}
