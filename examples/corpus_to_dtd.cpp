// End-to-end pipeline demo (the paper's §4.4 sample run, interactive):
// generate a heterogeneous resume corpus, run it through the crawler
// filter and the conversion pipeline, discover the majority schema, and
// print the derived DTD.
//
// Usage: corpus_to_dtd [num_documents] [supThreshold] [ratioThreshold]

#include <cstdio>
#include <cstdlib>

#include "concepts/resume_domain.h"
#include "core/pipeline.h"
#include "corpus/crawler.h"
#include "corpus/resume_generator.h"
#include "restructure/recognizer.h"

int main(int argc, char** argv) {
  const size_t num_docs = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 200;
  const double sup = argc > 2 ? std::strtod(argv[2], nullptr) : 0.45;
  const double ratio = argc > 3 ? std::strtod(argv[3], nullptr) : 0.4;

  // A mixed page stream: resumes plus off-topic pages, as a crawler
  // frontier would deliver.
  webre::ConceptSet concepts = webre::ResumeConcepts();
  webre::ConstraintSet constraints = webre::ResumeConstraints();

  std::vector<std::string> pages;
  webre::Rng distractor_rng(99);
  for (size_t i = 0; i < num_docs; ++i) {
    pages.push_back(webre::GenerateResume(i).html);
    if (i % 3 == 0) {
      pages.push_back(webre::GenerateDistractorPage(distractor_rng));
    }
  }

  webre::CrawlerOptions crawl_options;
  crawl_options.title_concepts = webre::ResumeTitleConceptNames();
  webre::TopicCrawler crawler(&concepts, crawl_options);
  std::vector<std::string> topic_pages = crawler.Crawl(pages);
  std::printf("crawler: %zu of %zu pages look like resumes\n",
              topic_pages.size(), pages.size());

  webre::SynonymRecognizer recognizer(&concepts);
  webre::PipelineOptions options;
  options.mining.sup_threshold = sup;
  options.mining.ratio_threshold = ratio;
  webre::Pipeline pipeline(&concepts, &recognizer, &constraints, options);
  webre::PipelineResult result = pipeline.Run(topic_pages);

  std::printf("\nmajority schema (%zu frequent paths, "
              "supThreshold=%.2f ratioThreshold=%.2f):\n%s\n",
              result.schema.NodeCount(), sup, ratio,
              result.schema.ToString().c_str());
  std::printf("derived DTD:\n%s\n", result.dtd.ToString().c_str());
  std::printf("%zu of %zu converted documents already conform to the DTD\n",
              result.conforming_before, result.documents.size());
  return 0;
}
