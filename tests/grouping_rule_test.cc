#include <gtest/gtest.h>

#include "html/parser.h"
#include "restructure/grouping_rule.h"

namespace webre {
namespace {

const Node* FindElement(const Node& root, std::string_view name) {
  if (root.is_element() && root.name() == name) return &root;
  for (size_t i = 0; i < root.child_count(); ++i) {
    const Node* found = FindElement(*root.child(i), name);
    if (found != nullptr) return found;
  }
  return nullptr;
}

TEST(GroupingRuleTest, SiblingsBetweenMarkersSink) {
  // body: [h2, p, p, h2, p] -> each h2 gets a GROUP with the ps.
  auto root = ParseHtml(
      "<body><h2>A</h2><p>a1</p><p>a2</p><h2>B</h2><p>b1</p></body>");
  size_t groups = ApplyGroupingRule(root.get());
  EXPECT_EQ(groups, 2u);
  const Node* body = FindElement(*root, "body");
  ASSERT_EQ(body->child_count(), 2u);
  const Node* h2a = body->child(0);
  ASSERT_EQ(h2a->child_count(), 2u);  // text + GROUP
  const Node* group_a = h2a->child(1);
  EXPECT_EQ(group_a->name(), kGroupTag);
  EXPECT_EQ(group_a->child_count(), 2u);
  const Node* h2b = body->child(1);
  const Node* group_b = h2b->child(h2b->child_count() - 1);
  EXPECT_EQ(group_b->name(), kGroupTag);
  EXPECT_EQ(group_b->child_count(), 1u);
}

TEST(GroupingRuleTest, SiblingsLeftOfFirstMarkerStay) {
  auto root =
      ParseHtml("<body><p>intro</p><h2>A</h2><p>a1</p></body>");
  ApplyGroupingRule(root.get());
  const Node* body = FindElement(*root, "body");
  ASSERT_EQ(body->child_count(), 2u);
  EXPECT_EQ(body->child(0)->name(), "p");
  EXPECT_EQ(body->child(1)->name(), "h2");
}

TEST(GroupingRuleTest, HigherWeightTagWinsLevel) {
  // §2.3.2: h1 groups with higher priority than p at the same level.
  auto root = ParseHtml(
      "<body><h1>T</h1><p>x</p><p>y</p></body>");
  ApplyGroupingRule(root.get());
  const Node* body = FindElement(*root, "body");
  ASSERT_EQ(body->child_count(), 1u);
  EXPECT_EQ(body->child(0)->name(), "h1");
  // p markers apply at the next lower level (inside h1's GROUP).
  const Node* group = FindElement(*root, kGroupTag);
  ASSERT_NE(group, nullptr);
  // Inside the group, p is now the top group tag: second p sinks under
  // the first? No — both ps are markers, nothing between them.
  EXPECT_EQ(group->child_count(), 2u);
}

TEST(GroupingRuleTest, AdjacentMarkersCreateNoGroups) {
  auto root = ParseHtml("<ul><li>a</li><li>b</li><li>c</li></ul>");
  size_t groups = ApplyGroupingRule(root.get());
  EXPECT_EQ(groups, 0u);
}

TEST(GroupingRuleTest, NoGroupTagsNoChange) {
  auto root = ParseHtml("<body><span>a</span><span>b</span></body>");
  EXPECT_EQ(ApplyGroupingRule(root.get()), 0u);
}

TEST(GroupingRuleTest, TrailingRunSinksUnderLastMarker) {
  auto root = ParseHtml("<body><h3>only</h3><p>x</p><p>y</p></body>");
  EXPECT_EQ(ApplyGroupingRule(root.get()), 1u);
  const Node* h3 = FindElement(*root, "h3");
  const Node* group = h3->child(h3->child_count() - 1);
  ASSERT_EQ(group->name(), kGroupTag);
  EXPECT_EQ(group->child_count(), 2u);
}

TEST(GroupingRuleTest, DtMarkersGroupDds) {
  auto root = ParseHtml(
      "<dl><dt>Education</dt><dd>e1</dd><dd>e2</dd>"
      "<dt>Skills</dt><dd>s1</dd></dl>");
  ApplyGroupingRule(root.get());
  const Node* dl = FindElement(*root, "dl");
  ASSERT_EQ(dl->child_count(), 2u);
  EXPECT_EQ(dl->child(0)->name(), "dt");
  EXPECT_EQ(dl->child(1)->name(), "dt");
  const Node* group = dl->child(0)->child(dl->child(0)->child_count() - 1);
  ASSERT_EQ(group->name(), kGroupTag);
  EXPECT_EQ(group->child_count(), 2u);
}

TEST(GroupingRuleTest, OperatesTopDownThroughNewGroups) {
  // h2 groups [b, text, b, text]; at the next level b groups its text.
  auto root = ParseHtml(
      "<body><h2>S</h2><b>x</b><span>t1</span><b>y</b><span>t2</span>"
      "</body>");
  ApplyGroupingRule(root.get());
  const Node* h2 = FindElement(*root, "h2");
  ASSERT_NE(h2, nullptr);
  const Node* group = h2->child(h2->child_count() - 1);
  ASSERT_EQ(group->name(), kGroupTag);
  // Inside the outer group, b markers grouped the spans.
  ASSERT_EQ(group->child_count(), 2u);
  EXPECT_EQ(group->child(0)->name(), "b");
  const Node* inner = group->child(0)->child(
      group->child(0)->child_count() - 1);
  EXPECT_EQ(inner->name(), kGroupTag);
}

TEST(GroupingRuleTest, MarkersSelectedPerLevelNotGlobally) {
  // The h2 inside a div does not interact with body-level siblings.
  auto root = ParseHtml(
      "<body><div><h2>inner</h2><p>x</p></div><p>outer</p></body>");
  ApplyGroupingRule(root.get());
  const Node* body = FindElement(*root, "body");
  // body level: group tags among children? div has weight 50, p 50 —
  // div appears first so div is the marker; outer p sinks under div.
  ASSERT_EQ(body->child_count(), 1u);
  EXPECT_EQ(body->child(0)->name(), "div");
}

TEST(GroupingRuleTest, NullRootIsNoop) {
  EXPECT_EQ(ApplyGroupingRule(nullptr), 0u);
}

}  // namespace
}  // namespace webre
