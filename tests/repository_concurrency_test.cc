// Concurrency tests for the sharded repository: queries run in
// parallel with each other and with concurrent Add. Built with
// WEBRE_SANITIZE=thread these double as the TSan proof that the
// shard/summary locking discipline has no data races; without a
// sanitizer they still exercise the same interleavings and check the
// serving-layer invariants (snapshot-consistent results, dense ids,
// monotone size).

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "repository/repository.h"

namespace webre {
namespace {

std::unique_ptr<Node> MakeDoc(size_t index) {
  auto root = Node::MakeElement("resume");
  Node* education = root->AddElement("EDUCATION");
  Node* date = education->AddElement("DATE");
  date->set_val("June 19" + std::to_string(80 + index % 20));
  education->AddElement("INSTITUTION");
  if (index % 3 == 0) {
    Node* skills = root->AddElement("SKILLS");
    Node* lang = skills->AddElement("LANGUAGE");
    lang->set_val(index % 2 == 0 ? "Java" : "C++");
  }
  return root;
}

// Parameterized over the storage mode: true freezes documents into
// FlatDocs at Add (the TSan proof that freeze + release + lock-free
// occurrence publication is race-free), false keeps pointer trees.
class RepositoryConcurrencyTest : public ::testing::TestWithParam<bool> {};

INSTANTIATE_TEST_SUITE_P(StorageModes, RepositoryConcurrencyTest,
                         ::testing::Values(true, false),
                         [](const ::testing::TestParamInfo<bool>& info) {
                           return info.param ? "Flat" : "PointerTree";
                         });

// Readers hammer every query plan (summary, summary-seeded prefix,
// sharded scan) while writers keep admitting documents. A result must
// always be internally consistent: sorted by document id with every
// match carrying a valid element for the active storage mode.
TEST_P(RepositoryConcurrencyTest, ParallelQueriesDuringConcurrentAdds) {
  const bool freeze = GetParam();
  RepositoryOptions options;
  options.num_shards = 4;
  options.query_threads = 2;  // force the fan-out pool under TSan
  options.freeze_flat = freeze;
  XmlRepository repo(options);
  for (size_t i = 0; i < 32; ++i) {
    ASSERT_TRUE(repo.Add(MakeDoc(i)).ok());
  }

  constexpr size_t kWriters = 2;
  constexpr size_t kDocsPerWriter = 64;
  constexpr size_t kReaders = 3;
  std::atomic<bool> stop{false};
  std::atomic<size_t> failures{0};

  std::vector<std::thread> threads;
  for (size_t w = 0; w < kWriters; ++w) {
    threads.emplace_back([&repo, &failures, w] {
      for (size_t i = 0; i < kDocsPerWriter; ++i) {
        if (!repo.Add(MakeDoc(w * kDocsPerWriter + i)).ok()) {
          failures.fetch_add(1);
        }
      }
    });
  }
  static const char* const kQueries[] = {
      "/resume/EDUCATION/DATE",            // summary plan
      "//LANGUAGE[val~\"java\"]",          // summary plan, predicate
      "/resume/EDUCATION[val~\"x\"]/DATE", // summary-seeded prefix plan
      "//EDUCATION[val~\"19\"]/DATE",      // sharded scan plan
      "//*",                               // wildcard scan
  };
  for (size_t r = 0; r < kReaders; ++r) {
    threads.emplace_back([&repo, &stop, &failures, freeze, r] {
      size_t round = 0;
      while (!stop.load(std::memory_order_acquire)) {
        const char* text = kQueries[(r + round++) % 5];
        auto matches = repo.Query(text);
        if (!matches.ok()) {
          failures.fetch_add(1);
          continue;
        }
        DocId last = 0;
        for (const QueryMatch& m : *matches) {
          // Flat matches carry the frozen block and no node; pointer
          // matches the reverse. Every match must name a real element
          // either way (name() reads through the handle, so this also
          // exercises the publication happens-before under TSan).
          const bool bad_handle =
              freeze ? (m.node != nullptr || m.flat == nullptr)
                     : (m.node == nullptr || m.flat != nullptr);
          if (m.doc < last || bad_handle || m.name() == kInvalidNameId) {
            failures.fetch_add(1);
            break;
          }
          last = m.doc;
        }
      }
    });
  }
  for (size_t w = 0; w < kWriters; ++w) threads[w].join();
  stop.store(true, std::memory_order_release);
  for (size_t t = kWriters; t < threads.size(); ++t) threads[t].join();

  EXPECT_EQ(failures.load(), 0u);
  EXPECT_EQ(repo.size(), 32 + kWriters * kDocsPerWriter);

  // Once writers are done the repository is quiescent: every document
  // is present and the plans agree with a fresh single-shard load.
  auto dates = repo.Query("/resume/EDUCATION/DATE");
  ASSERT_TRUE(dates.ok());
  EXPECT_EQ(dates->size(), repo.size());
  for (size_t i = 0; i < repo.size(); ++i) {
    if (freeze) {
      EXPECT_NE(repo.flat_document(i), nullptr) << "doc " << i;
      EXPECT_EQ(repo.document(i), nullptr) << "doc " << i;
    } else {
      EXPECT_NE(repo.document(i), nullptr) << "doc " << i;
    }
  }
}

// DiscoverSchema and Stats may race with Add: both take the same shard
// locks, so they must always see a prefix-consistent corpus and never
// tear a trie mid-merge.
TEST_P(RepositoryConcurrencyTest, DiscoverAndStatsDuringConcurrentAdds) {
  RepositoryOptions options;
  options.num_shards = 3;
  options.freeze_flat = GetParam();
  XmlRepository repo(options);
  for (size_t i = 0; i < 16; ++i) {
    ASSERT_TRUE(repo.Add(MakeDoc(i)).ok());
  }

  std::atomic<bool> stop{false};
  std::atomic<size_t> failures{0};
  std::thread writer([&repo, &failures] {
    for (size_t i = 0; i < 96; ++i) {
      if (!repo.Add(MakeDoc(i)).ok()) failures.fetch_add(1);
    }
  });
  std::thread miner([&repo, &stop, &failures] {
    MiningOptions mining;
    mining.sup_threshold = 0.2;
    while (!stop.load(std::memory_order_acquire)) {
      MajoritySchema schema = repo.DiscoverSchema(mining);
      if (schema.root().label != "resume") failures.fetch_add(1);
      RepositoryStats stats = repo.Stats();
      // Every document contributes at least 4 elements.
      if (stats.elements < stats.documents * 4) failures.fetch_add(1);
    }
  });
  writer.join();
  stop.store(true, std::memory_order_release);
  miner.join();

  EXPECT_EQ(failures.load(), 0u);
  EXPECT_EQ(repo.size(), 16u + 96u);
  EXPECT_EQ(repo.Stats().documents, repo.size());
}

}  // namespace
}  // namespace webre
