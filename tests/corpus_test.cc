#include <gtest/gtest.h>

#include <set>

#include "concepts/resume_domain.h"
#include "corpus/catalog_generator.h"
#include "corpus/resume_generator.h"
#include "corpus/vocab.h"

namespace webre {
namespace {

TEST(VocabTest, PoolsNonEmpty) {
  EXPECT_FALSE(FirstNames().empty());
  EXPECT_FALSE(LastNames().empty());
  EXPECT_FALSE(SafeInstitutions().empty());
  EXPECT_FALSE(CollidingInstitutions().empty());
  EXPECT_FALSE(ObjectiveLines().empty());
  EXPECT_FALSE(UnrecognizableHeadings().empty());
}

TEST(VocabTest, SafeInstitutionsMatchOnlyInstitution) {
  ConceptSet concepts = ResumeConcepts();
  for (const std::string& inst : SafeInstitutions()) {
    auto matches = concepts.MatchAll(inst);
    ASSERT_FALSE(matches.empty()) << inst;
    for (const InstanceMatch& m : matches) {
      EXPECT_EQ(m.concept_name, "INSTITUTION") << inst;
    }
  }
}

TEST(VocabTest, CollidingInstitutionsMatchTwoConcepts) {
  ConceptSet concepts = ResumeConcepts();
  for (const std::string& inst : CollidingInstitutions()) {
    auto matches = concepts.MatchAll(inst);
    std::set<std::string> names;
    for (const InstanceMatch& m : matches) {
      names.insert(std::string(m.concept_name));
    }
    EXPECT_EQ(names.size(), 2u) << inst;
    EXPECT_TRUE(names.count("INSTITUTION")) << inst;
    EXPECT_TRUE(names.count("LOCATION")) << inst;
  }
}

TEST(VocabTest, AwardAndObjectiveLinesUnrecognizable) {
  ConceptSet concepts = ResumeConcepts();
  for (const std::string& line : AwardLines()) {
    EXPECT_TRUE(concepts.MatchAll(line).empty()) << line;
  }
  for (const std::string& line : ObjectiveLines()) {
    EXPECT_TRUE(concepts.MatchAll(line).empty()) << line;
  }
  for (const std::string& line : ActivityLines()) {
    EXPECT_TRUE(concepts.MatchAll(line).empty()) << line;
  }
  for (const std::string& line : UnrecognizableHeadings()) {
    EXPECT_TRUE(concepts.MatchAll(line).empty()) << line;
  }
}

TEST(VocabTest, HeadingsRecognizedAsTheirSection) {
  ConceptSet concepts = ResumeConcepts();
  auto check = [&](const std::vector<std::string>& pool,
                   const char* expected) {
    for (const std::string& heading : pool) {
      InstanceMatch m = concepts.MatchFirst(heading);
      EXPECT_EQ(m.concept_name, expected) << heading;
    }
  };
  check(ContactHeadings(), "CONTACT");
  check(ObjectiveHeadings(), "OBJECTIVE");
  check(EducationHeadings(), "EDUCATION");
  check(ExperienceHeadings(), "EXPERIENCE");
  check(SkillsHeadings(), "SKILLS");
  check(CoursesHeadings(), "COURSES");
  check(AwardsHeadings(), "AWARDS");
  check(ActivitiesHeadings(), "ACTIVITIES");
  check(ReferenceHeadings(), "REFERENCE");
}

TEST(GeneratorTest, DeterministicPerIndex) {
  GeneratedResume a = GenerateResume(17);
  GeneratedResume b = GenerateResume(17);
  EXPECT_EQ(a.html, b.html);
  EXPECT_TRUE(*a.truth == *b.truth);
  EXPECT_EQ(a.style.id, b.style.id);
}

TEST(GeneratorTest, DifferentIndicesDiffer) {
  EXPECT_NE(GenerateResume(1).html, GenerateResume(2).html);
}

TEST(GeneratorTest, SeedChangesOutput) {
  CorpusOptions other;
  other.seed = 12345;
  EXPECT_NE(GenerateResume(1).html, GenerateResume(1, other).html);
}

TEST(GeneratorTest, MandatorySectionsAlwaysPresent) {
  for (size_t i = 0; i < 30; ++i) {
    GeneratedResume r = GenerateResume(i);
    EXPECT_NE(r.data.SectionIndex(Section::kContact), static_cast<size_t>(-1));
    EXPECT_NE(r.data.SectionIndex(Section::kEducation),
              static_cast<size_t>(-1));
    EXPECT_FALSE(r.data.education.empty());
    EXPECT_FALSE(r.data.experience.empty());
    EXPECT_FALSE(r.data.skills.empty());
  }
}

TEST(GeneratorTest, HtmlContainsTheFacts) {
  GeneratedResume r = GenerateResume(3);
  EXPECT_NE(r.html.find(r.data.education[0].degree), std::string::npos);
  EXPECT_NE(r.html.find(r.data.experience[0].company), std::string::npos);
  EXPECT_TRUE(r.html.find("<body") != std::string::npos ||
              r.html.find("<BODY") != std::string::npos);
}

TEST(GeneratorTest, TruthRootIsResume) {
  GeneratedResume r = GenerateResume(5);
  EXPECT_EQ(r.truth->name(), "resume");
  EXPECT_GT(r.truth->SubtreeSize(), 10u);
}

TEST(GeneratorTest, FixedStyleHonored) {
  CorpusOptions options;
  options.fixed_style = 7;
  for (size_t i = 0; i < 5; ++i) {
    EXPECT_EQ(GenerateResume(i, options).style.id, 7);
  }
}

TEST(GeneratorTest, AllStylesProduceParseableHtml) {
  CorpusOptions options;
  for (size_t style = 0; style < StyleCount(); ++style) {
    options.fixed_style = static_cast<int>(style);
    GeneratedResume r = GenerateResume(0, options);
    EXPECT_FALSE(r.html.empty());
    EXPECT_NE(r.html.find("<html>"), std::string::npos);
  }
}

TEST(GeneratorTest, CorpusBatchMatchesIndividual) {
  std::vector<GeneratedResume> corpus = GenerateCorpus(5);
  ASSERT_EQ(corpus.size(), 5u);
  EXPECT_EQ(corpus[3].html, GenerateResume(3).html);
}

TEST(GeneratorTest, StyleMixCoversCleanAndStressorStyles) {
  std::set<int> seen;
  for (size_t i = 0; i < 200; ++i) {
    seen.insert(GenerateResume(i).style.id);
  }
  EXPECT_GE(seen.size(), 10u);
}

TEST(CatalogTest, DeterministicAndDistinct) {
  GeneratedCatalog a = GenerateCatalogPage(2);
  GeneratedCatalog b = GenerateCatalogPage(2);
  EXPECT_EQ(a.html, b.html);
  EXPECT_NE(a.html, GenerateCatalogPage(3).html);
}

TEST(CatalogTest, ConceptsCoverRenderedContent) {
  ConceptSet concepts = CatalogConcepts();
  GeneratedCatalog page = GenerateCatalogPage(1);
  EXPECT_TRUE(concepts.Contains("CATEGORY"));
  EXPECT_TRUE(concepts.Contains("BRAND"));
  EXPECT_NE(page.html.find("warranty"), std::string::npos);
  EXPECT_EQ(page.truth->name(), "catalog");
  EXPECT_GT(page.truth->child_count(), 0u);
  EXPECT_EQ(page.truth->child(0)->name(), "CATEGORY");
}

}  // namespace
}  // namespace webre
