#include <gtest/gtest.h>

#include "concepts/resume_domain.h"
#include "schema/search_space.h"

namespace webre {
namespace {

TEST(SearchSpaceTest, PaperNumbers) {
  // §4.2: exhaustive 24^5 - 1 = 7,962,623 candidate nodes; with the
  // constraints, 1 + 11 + 11*13 + 11*13*12 = 1,871.
  ConceptSet concepts = ResumeConcepts();
  ConstraintSet constraints = ResumeConstraints();
  SearchSpaceReport report =
      AnalyzeSearchSpace(concepts, constraints, "resume", /*max_level=*/3);
  EXPECT_EQ(report.concept_count, 24u);
  EXPECT_EQ(report.exhaustive_paper_formula, 7962623u);
  EXPECT_EQ(report.constrained, 1871u);
}

TEST(SearchSpaceTest, ExhaustiveEnumeratedIsGeometricSum) {
  ConceptSet concepts = ResumeConcepts();
  ConstraintSet none;
  SearchSpaceReport report =
      AnalyzeSearchSpace(concepts, none, "resume", /*max_level=*/3);
  // 1 + 24 + 24^2 + 24^3
  EXPECT_EQ(report.exhaustive_enumerated, 1u + 24u + 576u + 13824u);
  // Without constraints, the DFS count matches the geometric sum.
  EXPECT_EQ(report.constrained, report.exhaustive_enumerated);
}

TEST(SearchSpaceTest, ConstraintMaxLevelCapsEnumeration) {
  ConceptSet concepts = ResumeConcepts();
  ConstraintSet constraints = ResumeConstraints();  // max_level = 3
  SearchSpaceReport deep =
      AnalyzeSearchSpace(concepts, constraints, "resume", /*max_level=*/10);
  EXPECT_EQ(deep.max_level, 3u);
  EXPECT_EQ(deep.constrained, 1871u);
}

TEST(SearchSpaceTest, SmallHandComputable) {
  ConceptSet concepts;
  concepts.Add({"A", {}});
  concepts.Add({"B", {}});
  ConstraintSet constraints;
  constraints.set_no_repeat_on_path(true);
  SearchSpaceReport report =
      AnalyzeSearchSpace(concepts, constraints, "root", /*max_level=*/2);
  // root + {A,B} + {AB, BA} = 1 + 2 + 2.
  EXPECT_EQ(report.constrained, 5u);
  EXPECT_EQ(report.exhaustive_enumerated, 1u + 2u + 4u);
}

TEST(SearchSpaceTest, DepthConstraintsShrinkLevels) {
  ConceptSet concepts;
  concepts.Add({"T1", {}});
  concepts.Add({"T2", {}});
  concepts.Add({"C1", {}});
  ConstraintSet constraints;
  constraints.Add(ConceptConstraint::Depth("T1", DepthRelation::kEq, 1));
  constraints.Add(ConceptConstraint::Depth("T2", DepthRelation::kEq, 1));
  constraints.Add(ConceptConstraint::Depth("C1", DepthRelation::kGt, 1));
  SearchSpaceReport report =
      AnalyzeSearchSpace(concepts, constraints, "root", /*max_level=*/2);
  // Level 1: T1, T2. Level 2 under each: C1 only. 1 + 2 + 2 = 5.
  EXPECT_EQ(report.constrained, 5u);
}

}  // namespace
}  // namespace webre
