// End-to-end tests for the serving front end over real loopback
// sockets: every endpoint, both wire faces (binary frames and the
// JSON-lines debug mode), the admission-control shed paths with their
// retry-after contract, bad-frame handling, and the worker-failure
// surface. The durable variants run against a DurableRepository in a
// temp dir so kCheckpoint is exercised for real.

#include <cstdint>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "concepts/resume_domain.h"
#include "corpus/resume_generator.h"
#include "gtest/gtest.h"
#include "repository/repository.h"
#include "restructure/converter.h"
#include "restructure/recognizer.h"
#include "serve/client.h"
#include "serve/frame.h"
#include "serve/server.h"
#include "storage/durable_repository.h"

namespace webre {
namespace serve {
namespace {

class ServerTest : public testing::Test {
 protected:
  ServerTest()
      : concepts_(ResumeConcepts()),
        constraints_(ResumeConstraints()),
        recognizer_(&concepts_),
        converter_(&concepts_, &recognizer_, &constraints_) {}

  // Starts a server over a fresh in-memory repository preloaded with
  // `docs` resumes, applying `tweak` to the options first.
  void StartServer(size_t docs,
                   std::function<void(ServeOptions&)> tweak = {}) {
    RepositoryOptions repo_options;
    repo_options.num_shards = 2;
    repo_ = std::make_unique<XmlRepository>(repo_options);
    for (size_t i = 0; i < docs; ++i) {
      ASSERT_TRUE(
          repo_->Add(converter_.Convert(GenerateResume(i).html)).ok());
    }
    ServeContext context;
    context.repo = repo_.get();
    context.converter = &converter_;
    ServeOptions options;
    options.worker_threads = 2;
    if (tweak) tweak(options);
    server_ = std::make_unique<Server>(context, options);
    ASSERT_TRUE(server_->Start().ok());
  }

  std::unique_ptr<Client> Connect() {
    auto client = Client::Connect(server_->port());
    EXPECT_TRUE(client.ok());
    return std::move(*client);
  }

  static Request Req(MsgType type, uint32_t id, std::string body = "") {
    Request request;
    request.type = type;
    request.id = id;
    request.body = std::move(body);
    return request;
  }

  ConceptSet concepts_;
  ConstraintSet constraints_;
  SynonymRecognizer recognizer_;
  DocumentConverter converter_;
  std::unique_ptr<XmlRepository> repo_;
  std::unique_ptr<Server> server_;
};

TEST_F(ServerTest, PingQuerySchemaStatsOverLoopback) {
  StartServer(6);
  auto client = Connect();

  auto pong = client->Call(Req(MsgType::kPing, 1));
  ASSERT_TRUE(pong.ok());
  EXPECT_TRUE(pong->ok());
  EXPECT_EQ(pong->id, 1u);

  auto matches = client->Call(Req(MsgType::kQuery, 2, "//DATE"));
  ASSERT_TRUE(matches.ok());
  ASSERT_TRUE(matches->ok()) << matches->message;
  EXPECT_GT(matches->total_matches, 0u);
  ASSERT_FALSE(matches->matches.empty());
  EXPECT_EQ(matches->matches[0].name, "DATE");

  // Same query again: served from the generation-keyed cache, with the
  // fresh request id stamped on the cached body.
  auto again = client->Call(Req(MsgType::kQuery, 3, "//DATE"));
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again->id, 3u);
  EXPECT_EQ(again->total_matches, matches->total_matches);
  EXPECT_GE(server_->stats().view.cache_hits, 1u);

  auto schema = client->Call(Req(MsgType::kSchema, 4));
  ASSERT_TRUE(schema.ok());
  ASSERT_TRUE(schema->ok());
  EXPECT_NE(schema->schema_text.find("resume"), std::string::npos);
  EXPECT_NE(schema->dtd_text.find("<!ELEMENT"), std::string::npos);

  auto stats = client->Call(Req(MsgType::kStats, 5));
  ASSERT_TRUE(stats.ok());
  ASSERT_TRUE(stats->ok());
  EXPECT_NE(stats->stats_json.find("\"serve\""), std::string::npos);
  EXPECT_NE(stats->stats_json.find("\"documents\":6"), std::string::npos);

  // Malformed query: typed error, connection stays usable.
  auto bad = client->Call(Req(MsgType::kQuery, 6, "///"));
  ASSERT_TRUE(bad.ok());
  EXPECT_EQ(bad->error, WireError::kInvalidArgument);
  auto alive = client->Call(Req(MsgType::kPing, 7));
  ASSERT_TRUE(alive.ok());
  EXPECT_TRUE(alive->ok());
}

TEST_F(ServerTest, IngestGrowsTheRepositoryAndInvalidatesTheCache) {
  StartServer(2);
  auto client = Connect();

  auto before = client->Call(Req(MsgType::kQuery, 1, "//DATE"));
  ASSERT_TRUE(before.ok());
  ASSERT_TRUE(before->ok());

  auto admitted =
      client->Call(Req(MsgType::kIngest, 2, GenerateResume(50).html));
  ASSERT_TRUE(admitted.ok());
  ASSERT_TRUE(admitted->ok()) << admitted->message;

  auto after = client->Call(Req(MsgType::kQuery, 3, "//DATE"));
  ASSERT_TRUE(after.ok());
  ASSERT_TRUE(after->ok());
  EXPECT_GT(after->total_matches, before->total_matches);
}

TEST_F(ServerTest, CheckpointWithoutDurableDirFailsTyped) {
  StartServer(1);
  auto client = Connect();
  auto response = client->Call(Req(MsgType::kCheckpoint, 1));
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response->error, WireError::kFailedPrecondition);
}

TEST_F(ServerTest, DurableIngestAndCheckpoint) {
  const std::string dir = testing::TempDir() + "/serve_durable_test";
  (void)::system(("rm -rf '" + dir + "'").c_str());
  auto durable = storage::DurableRepository::Open(dir);
  ASSERT_TRUE(durable.ok()) << durable.status().ToString();

  ServeContext context;
  context.repo = &(*durable)->repo();
  context.durable = durable->get();
  context.converter = &converter_;
  Server server(context, ServeOptions{});
  ASSERT_TRUE(server.Start().ok());

  auto client = Client::Connect(server.port());
  ASSERT_TRUE(client.ok());
  auto admitted =
      (*client)->Call(Req(MsgType::kIngest, 1, GenerateResume(0).html));
  ASSERT_TRUE(admitted.ok());
  ASSERT_TRUE(admitted->ok()) << admitted->message;

  auto checkpointed = (*client)->Call(Req(MsgType::kCheckpoint, 2));
  ASSERT_TRUE(checkpointed.ok());
  EXPECT_TRUE(checkpointed->ok()) << checkpointed->message;
  server.Stop();

  // The admitted document survives a fresh open.
  auto reopened = storage::DurableRepository::Open(dir);
  ASSERT_TRUE(reopened.ok());
  EXPECT_EQ((*reopened)->repo().Stats().documents, 1u);
  (void)::system(("rm -rf '" + dir + "'").c_str());
}

TEST_F(ServerTest, PerClientQuotaShedsWithRetryAfter) {
  StartServer(1, [](ServeOptions& options) {
    // One token, glacial refill: the second request must shed.
    options.per_client_qps = 0.001;
    options.per_client_burst = 1.0;
  });
  auto client = Connect();

  auto first = client->Call(Req(MsgType::kPing, 1));
  ASSERT_TRUE(first.ok());
  EXPECT_TRUE(first->ok());

  auto second = client->Call(Req(MsgType::kPing, 2));
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second->error, WireError::kOverloaded);
  EXPECT_GT(second->retry_after_ms, 0u);

  // The connection survives the shed — the THIRD request is also shed
  // (no tokens yet) but still answered, proving framing state is fine.
  auto third = client->Call(Req(MsgType::kPing, 3));
  ASSERT_TRUE(third.ok());
  EXPECT_EQ(third->error, WireError::kOverloaded);
  EXPECT_GE(server_->stats().view.shed_requests, 2u);
}

TEST_F(ServerTest, ConnectionCapShedsNewClients) {
  StartServer(1, [](ServeOptions& options) { options.max_clients = 1; });
  auto first = Connect();
  auto pong = first->Call(Req(MsgType::kPing, 1));
  ASSERT_TRUE(pong.ok());

  // The second client is answered with one kOverloaded frame, then
  // closed.
  auto second = Client::Connect(server_->port());
  ASSERT_TRUE(second.ok());
  auto shed = (*second)->Receive();
  ASSERT_TRUE(shed.ok());
  EXPECT_EQ(shed->error, WireError::kOverloaded);
  EXPECT_GT(shed->retry_after_ms, 0u);
  EXPECT_FALSE((*second)->Receive().ok());  // EOF

  // The first client is unaffected.
  auto alive = first->Call(Req(MsgType::kPing, 2));
  ASSERT_TRUE(alive.ok());
  EXPECT_TRUE(alive->ok());
}

TEST_F(ServerTest, OversizedAnnouncementClosesWithBadFrame) {
  StartServer(1, [](ServeOptions& options) {
    options.limits.max_input_bytes = 4096;
  });
  auto client = Connect();

  // 1 MiB ingest against a 4 KiB frame cap: rejected from the header.
  auto response =
      client->Call(Req(MsgType::kIngest, 1, std::string(1u << 20, 'x')));
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response->error, WireError::kBadFrame);
  EXPECT_FALSE(client->Receive().ok());  // connection closed
}

TEST_F(ServerTest, GarbageBytesCloseWithBadFrame) {
  StartServer(1);
  auto client = Connect();
  // Not '{', so binary mode; version byte is wrong.
  ASSERT_TRUE(client->SendRaw(std::string(64, '\xEE')).ok());
  auto response = client->Receive();
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response->error, WireError::kBadFrame);
  EXPECT_FALSE(client->Receive().ok());
}

TEST_F(ServerTest, JsonDebugModeSpeaksLines) {
  StartServer(3);
  auto client = Connect();
  ASSERT_TRUE(
      client->SendRaw("{\"op\":\"query\",\"q\":\"//DATE\",\"id\":9}\n").ok());
  auto line = client->ReceiveLine();
  ASSERT_TRUE(line.ok());
  EXPECT_NE(line->find("\"id\":9"), std::string::npos);
  EXPECT_NE(line->find("\"total\":"), std::string::npos);

  ASSERT_TRUE(client->SendRaw("{\"op\":\"ping\",\"id\":11}\n").ok());
  auto pong = client->ReceiveLine();
  ASSERT_TRUE(pong.ok());
  EXPECT_NE(pong->find("\"ok\":true"), std::string::npos);

  // An unparseable line is a framing error: one bad_frame line, then
  // the connection closes (same contract as the binary face).
  ASSERT_TRUE(client->SendRaw("{\"op\":\"nonsense\"}\n").ok());
  auto error_line = client->ReceiveLine();
  ASSERT_TRUE(error_line.ok());
  EXPECT_NE(error_line->find("\"error\":\"bad_frame\""), std::string::npos);
  EXPECT_FALSE(client->ReceiveLine().ok());
}

TEST_F(ServerTest, WorkerFailureSurfacesInTheResponse) {
  StartServer(1, [](ServeOptions& options) {
    options.before_execute = [](const Request& request) {
      if (request.type == MsgType::kPing) {
        throw std::runtime_error("injected worker failure");
      }
    };
  });
  auto client = Connect();
  auto response = client->Call(Req(MsgType::kPing, 1));
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response->error, WireError::kInternal);
  EXPECT_NE(response->message.find("worker task failed"), std::string::npos);
  EXPECT_NE(response->message.find("injected worker failure"),
            std::string::npos);

  // The connection — and the worker pool — survive the failure.
  auto query = client->Call(Req(MsgType::kQuery, 2, "//DATE"));
  ASSERT_TRUE(query.ok());
  EXPECT_TRUE(query->ok());
}

TEST_F(ServerTest, ExecuteBypassesTheNetwork) {
  StartServer(4);
  Response response = server_->Execute(Req(MsgType::kQuery, 1, "//DATE"));
  ASSERT_TRUE(response.ok());
  EXPECT_GT(response.total_matches, 0u);
  Response invalid = server_->Execute(Req(MsgType::kQuery, 2, "///"));
  EXPECT_EQ(invalid.error, WireError::kInvalidArgument);
}

// ---------------------------------------------------------------------
// Multi-loop matrix: the admission, ingest and counter contracts must
// hold identically at every loop count. Parameterized over loops in
// {1, 2, 4}; loops=1 doubles as the single-reactor compatibility anchor
// (same code path the whole suite above exercises at the default).

class MultiLoopServerTest : public ServerTest,
                            public testing::WithParamInterface<size_t> {
 protected:
  size_t Loops() const { return GetParam(); }
};

INSTANTIATE_TEST_SUITE_P(Loops, MultiLoopServerTest,
                         testing::Values<size_t>(1, 2, 4),
                         [](const testing::TestParamInfo<size_t>& info) {
                           return "loops" + std::to_string(info.param);
                         });

TEST_P(MultiLoopServerTest, QuotaShedsOnEveryLoop) {
  StartServer(1, [&](ServeOptions& options) {
    options.loops = Loops();
    options.per_client_qps = 0.001;
    options.per_client_burst = 1.0;
  });
  ASSERT_EQ(server_->loops(), Loops());

  // 2*loops clients: round-robin dealing puts two on every loop, so the
  // per-connection token bucket is exercised on each reactor.
  std::vector<std::unique_ptr<Client>> clients;
  for (size_t i = 0; i < 2 * Loops(); ++i) clients.push_back(Connect());
  for (auto& client : clients) {
    auto first = client->Call(Req(MsgType::kPing, 1));
    ASSERT_TRUE(first.ok());
    EXPECT_TRUE(first->ok());
    auto second = client->Call(Req(MsgType::kPing, 2));
    ASSERT_TRUE(second.ok());
    EXPECT_EQ(second->error, WireError::kOverloaded);
    EXPECT_GT(second->retry_after_ms, 0u);
  }
  EXPECT_GE(server_->stats().view.shed_requests, 2 * Loops());
}

TEST_P(MultiLoopServerTest, ConnectionCapIsGlobalAcrossLoops) {
  StartServer(1, [&](ServeOptions& options) {
    options.loops = Loops();
    options.max_clients = Loops();  // exactly one connection per loop
  });

  std::vector<std::unique_ptr<Client>> admitted;
  for (size_t i = 0; i < Loops(); ++i) {
    auto client = Connect();
    // The round trip serializes adoption, so the accept order — and the
    // round-robin loop assignment — is deterministic.
    auto pong = client->Call(Req(MsgType::kPing, 1));
    ASSERT_TRUE(pong.ok());
    EXPECT_TRUE(pong->ok());
    admitted.push_back(std::move(client));
  }

  // The cap is server-wide, not per-loop: the (n+1)-th client is shed
  // even though the loop it would have been dealt to owns only one
  // connection.
  auto extra = Client::Connect(server_->port());
  ASSERT_TRUE(extra.ok());
  auto shed = (*extra)->Receive();
  ASSERT_TRUE(shed.ok());
  EXPECT_EQ(shed->error, WireError::kOverloaded);
  EXPECT_GT(shed->retry_after_ms, 0u);
  EXPECT_FALSE((*extra)->Receive().ok());  // closed after the shed frame

  for (auto& client : admitted) {
    auto alive = client->Call(Req(MsgType::kPing, 2));
    ASSERT_TRUE(alive.ok());
    EXPECT_TRUE(alive->ok());
  }
}

TEST_P(MultiLoopServerTest, IngestAndQueryMatchSingleLoopByteForByte) {
  constexpr size_t kDocs = 4;
  StartServer(kDocs,
              [&](ServeOptions& options) { options.loops = Loops(); });

  // A reference single-loop server over an independently built copy of
  // the same corpus.
  RepositoryOptions repo_options;
  repo_options.num_shards = 2;
  XmlRepository ref_repo(repo_options);
  for (size_t i = 0; i < kDocs; ++i) {
    ASSERT_TRUE(
        ref_repo.Add(converter_.Convert(GenerateResume(i).html)).ok());
  }
  ServeContext ref_context;
  ref_context.repo = &ref_repo;
  ref_context.converter = &converter_;
  ServeOptions ref_options;
  ref_options.worker_threads = 2;
  ref_options.loops = 1;
  Server reference(ref_context, ref_options);
  ASSERT_TRUE(reference.Start().ok());

  auto client = Connect();
  auto ref_client = Client::Connect(reference.port());
  ASSERT_TRUE(ref_client.ok());

  // Response BODIES are id-independent by design (the result cache
  // depends on that), so re-encoding both decoded responses with the id
  // zeroed compares the exact bytes the wire defines.
  auto expect_same = [&](Request request) {
    auto a = client->Call(request);
    auto b = (*ref_client)->Call(request);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    a->id = 0;
    b->id = 0;
    std::string body_a;
    std::string body_b;
    EncodeResponseBody(*a, body_a);
    EncodeResponseBody(*b, body_b);
    EXPECT_EQ(body_a, body_b) << "diverged on request " << request.id;
  };

  const char* const kShapes[] = {"//DATE", "/resume/SKILLS/LANGUAGE",
                                 "//LOCATION/*"};
  uint32_t id = 1;
  for (const char* shape : kShapes) {
    expect_same(Req(MsgType::kQuery, id++, shape));
  }
  expect_same(Req(MsgType::kIngest, id++, GenerateResume(77).html));
  for (const char* shape : kShapes) {
    expect_same(Req(MsgType::kQuery, id++, shape));
  }
  expect_same(Req(MsgType::kSchema, id++));
  reference.Stop();
}

TEST_P(MultiLoopServerTest, WakeupCoalescingCountersAddUp) {
  StartServer(2, [&](ServeOptions& options) { options.loops = Loops(); });
  ASSERT_EQ(server_->loops(), Loops());

  std::vector<std::unique_ptr<Client>> clients;
  for (size_t i = 0; i < 2 * Loops(); ++i) clients.push_back(Connect());
  constexpr uint32_t kCalls = 8;
  for (auto& client : clients) {
    for (uint32_t id = 1; id <= kCalls; ++id) {
      auto response = client->Call(
          id % 2 != 0 ? Req(MsgType::kQuery, id, "//DATE")
                      : Req(MsgType::kPing, id));
      ASSERT_TRUE(response.ok());
      EXPECT_TRUE(response->ok());
    }
  }

  // Every response came back, so the rings are quiescent. Each posted
  // event (a worker completion or an acceptor handoff) either rang the
  // eventfd or was coalesced — never both, never neither.
  ServerStats stats = server_->stats();
  EXPECT_EQ(stats.view.loops, Loops());
  ASSERT_EQ(stats.loops.size(), Loops());
  uint64_t accepted = 0;
  uint64_t requests = 0;
  uint64_t rings = 0;
  uint64_t posted = 0;
  for (const LoopStats& loop : stats.loops) {
    accepted += loop.accepted_connections;
    requests += loop.requests;
    rings += loop.wakeups + loop.wakeups_coalesced;
    posted += loop.completions + loop.handoffs;
  }
  EXPECT_EQ(accepted, clients.size());
  EXPECT_EQ(requests, clients.size() * kCalls);
  EXPECT_EQ(rings, posted);
  if (Loops() > 1) {
    // Round-robin dealing spreads connections over every reactor.
    for (const LoopStats& loop : stats.loops) {
      EXPECT_GT(loop.accepted_connections, 0u);
    }
  }
}

}  // namespace
}  // namespace serve
}  // namespace webre
