// Differential tests: two independent ways of computing the same thing
// must agree. These guard the optimizations (index pruning, incremental
// statistics) against the straightforward implementations.

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>

#include "concepts/resume_domain.h"
#include "corpus/resume_generator.h"
#include "html/parser.h"
#include "html/tidy.h"
#include "repository/repository.h"
#include "restructure/converter.h"
#include "restructure/recognizer.h"
#include "schema/frequent_paths.h"
#include "schema/path_extractor.h"
#include "util/rng.h"
#include "util/simd_scan.h"
#include "util/strings.h"

namespace webre {
namespace {

struct Fixture {
  Fixture()
      : concepts(ResumeConcepts()),
        constraints(ResumeConstraints()),
        recognizer(&concepts),
        converter(&concepts, &recognizer, &constraints) {}

  ConceptSet concepts;
  ConstraintSet constraints;
  SynonymRecognizer recognizer;
  DocumentConverter converter;
};

Fixture& Shared() {
  static Fixture& fixture = *new Fixture();
  return fixture;
}

// Pre-order position among ELEMENTS only — the same numbering
// CollectLocalPaths and FlatDoc::Freeze assign, so pointer-tree matches
// canonicalize to the (doc, pos) coordinates flat matches carry.
std::map<const Node*, uint32_t> ElementOrderIndex(const Node& root) {
  std::map<const Node*, uint32_t> index;
  uint32_t n = 0;
  root.PreOrder([&](const Node& node) {
    if (node.is_element()) index[&node] = n++;
  });
  return index;
}

class QueryDifferential : public ::testing::TestWithParam<const char*> {};

TEST_P(QueryDifferential, IndexPrunedQueryEqualsBruteForce) {
  Fixture& f = Shared();
  XmlRepository repo;  // default: freeze_flat on
  std::vector<std::unique_ptr<Node>> kept;
  std::vector<std::map<const Node*, uint32_t>> order;
  for (size_t i = 0; i < 25; ++i) {
    auto doc = f.converter.Convert(GenerateResume(i).html);
    kept.push_back(doc->Clone());
    order.push_back(ElementOrderIndex(*kept.back()));
    ASSERT_TRUE(repo.Add(std::move(doc)).ok());
  }
  auto parsed = PathQuery::Parse(GetParam());
  ASSERT_TRUE(parsed.ok()) << parsed.status();

  // Brute force: pointer-tree evaluation of every retained clone.
  std::vector<std::pair<size_t, uint32_t>> brute;
  for (size_t id = 0; id < kept.size(); ++id) {
    for (const Node* node : parsed->Evaluate(*kept[id])) {
      brute.emplace_back(id, order[id].at(node));
    }
  }
  // Repository path: flat evaluation over frozen documents, possibly
  // pruned via the label-path index.
  std::vector<std::pair<size_t, uint32_t>> indexed;
  for (const QueryMatch& m : repo.Query(*parsed)) {
    indexed.emplace_back(m.doc, m.pos);
  }
  EXPECT_EQ(brute, indexed) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(
    Queries, QueryDifferential,
    ::testing::Values("/resume/EDUCATION/DATE",
                      "/resume/EDUCATION/DATE/INSTITUTION",
                      "/resume/SKILLS/LANGUAGE", "//DATE", "//LOCATION",
                      "/resume/*/LANGUAGE", "//DATE[val~\"199\"]",
                      "/resume/EXPERIENCE//DATE",
                      "/resume/CONTACT/LOCATION/PHONE",
                      "/resume/NOSUCH/THING"));

TEST(TidyDifferential, TidyIsIdempotent) {
  for (size_t i = 0; i < 15; ++i) {
    auto once = ParseHtml(GenerateResume(i).html);
    TidyHtmlTree(once.get());
    auto twice = once->Clone();
    TidyHtmlTree(twice.get());
    EXPECT_TRUE(*once == *twice) << "doc " << i;
  }
}

TEST(MinerDifferential, IncrementalEqualsBatchExtraction) {
  // AddDocument (tree walk inside the miner) must agree with
  // AddDocumentPaths over a pre-extracted DocumentPaths.
  Fixture& f = Shared();
  FrequentPathMiner a;
  FrequentPathMiner b;
  for (size_t i = 0; i < 15; ++i) {
    auto doc = f.converter.Convert(GenerateResume(i).html);
    a.AddDocument(*doc);
    b.AddDocumentPaths(ExtractPaths(*doc));
  }
  a.mutable_options().sup_threshold = 0.3;
  b.mutable_options().sup_threshold = 0.3;
  MajoritySchema schema_a = a.Discover();
  MajoritySchema schema_b = b.Discover();
  EXPECT_EQ(schema_a.ToString(), schema_b.ToString());
}

TEST(MinerDifferential, DocumentOrderIrrelevant) {
  Fixture& f = Shared();
  std::vector<std::unique_ptr<Node>> docs;
  for (size_t i = 0; i < 15; ++i) {
    docs.push_back(f.converter.Convert(GenerateResume(i).html));
  }
  FrequentPathMiner forward;
  FrequentPathMiner backward;
  for (size_t i = 0; i < docs.size(); ++i) {
    forward.AddDocument(*docs[i]);
    backward.AddDocument(*docs[docs.size() - 1 - i]);
  }
  EXPECT_EQ(forward.Discover().ToString(),
            backward.Discover().ToString());
}

TEST(ConvertStatsDifferential, ConceptNodesMatchesTreeCount) {
  Fixture& f = Shared();
  for (size_t i = 0; i < 15; ++i) {
    ConvertStats stats;
    auto doc = f.converter.Convert(GenerateResume(i).html, &stats);
    size_t elements = 0;
    doc->PreOrder([&](const Node& n) {
      if (n.is_element()) ++elements;
    });
    EXPECT_EQ(stats.concept_nodes, elements - 1) << "doc " << i;
  }
}

TEST(RepositoryDifferential, PathIndexAgreesWithExtraction) {
  Fixture& f = Shared();
  XmlRepository repo;
  std::vector<DocumentPaths> extracted;
  for (size_t i = 0; i < 12; ++i) {
    auto doc = f.converter.Convert(GenerateResume(i).html);
    extracted.push_back(ExtractPaths(*doc));
    ASSERT_TRUE(repo.Add(std::move(doc)).ok());
  }
  // Every extracted path of doc i is answered by the index with i in it.
  for (size_t i = 0; i < extracted.size(); ++i) {
    for (const LabelPath& path : extracted[i].paths) {
      std::vector<DocId> docs = repo.DocumentsWithPath(path);
      EXPECT_TRUE(std::find(docs.begin(), docs.end(), i) != docs.end())
          << JoinLabelPath(path);
    }
  }
}

// ---------------------------------------------------------------------
// Randomized serving-layer differential: the sharded, summary-indexed
// repository must agree with naive full-tree evaluation (the seed
// algorithm, replicated below with string matching and linear-scan
// dedup) over arbitrary corpora and query shapes.

std::unique_ptr<Node> RandomTree(Rng& rng) {
  static const char* const kLabels[] = {"a", "b", "c", "d", "e"};
  static const char* const kVals[] = {"", "x1996", "hello world", "Java",
                                      "foo"};
  auto root = Node::MakeElement("r");
  std::vector<std::pair<Node*, size_t>> open{{root.get(), 0}};
  while (!open.empty()) {
    auto [node, depth] = open.back();
    open.pop_back();
    if (depth >= 4) continue;
    const size_t children = rng.NextBelow(4);  // 0-3
    for (size_t c = 0; c < children; ++c) {
      Node* child = node->AddElement(kLabels[rng.NextBelow(5)]);
      const char* val = kVals[rng.NextBelow(5)];
      if (*val != '\0') child->set_val(val);
      open.emplace_back(child, depth + 1);
    }
  }
  return root;
}

PathQuery RandomQuery(Rng& rng) {
  static const char* const kNames[] = {"a", "b", "c", "d", "e",
                                       "*", "r", "zz"};
  static const char* const kNeedles[] = {"19", "java", "o", "x"};
  std::string text;
  const size_t steps = 1 + rng.NextBelow(4);
  for (size_t s = 0; s < steps; ++s) {
    text += rng.NextBool(0.35) ? "//" : "/";
    if (s == 0 && rng.NextBool(0.4)) {
      text += "r";  // anchored queries actually match something
    } else {
      text += kNames[rng.NextBelow(8)];
    }
    if (rng.NextBool(0.25)) {
      text += std::string("[val~\"") + kNeedles[rng.NextBelow(4)] + "\"]";
    }
  }
  return PathQuery::Parse(text).value();
}

bool NaiveStepMatches(const QueryStep& step, const Node& node) {
  if (!node.is_element()) return false;
  if (step.name != "*" && node.name() != step.name) return false;
  if (!step.val_contains.empty() &&
      !ContainsIgnoreCase(node.val(), step.val_contains)) {
    return false;
  }
  return true;
}

void NaiveCollectDescendants(const Node& from, const QueryStep& step,
                             std::vector<const Node*>& out) {
  for (size_t i = 0; i < from.child_count(); ++i) {
    const Node* child = from.child(i);
    if (!child->is_element()) continue;
    if (NaiveStepMatches(step, *child)) out.push_back(child);
    NaiveCollectDescendants(*child, step, out);
  }
}

std::vector<const Node*> NaiveEvaluate(const PathQuery& query,
                                       const Node& root) {
  const std::vector<QueryStep>& steps = query.steps();
  std::vector<const Node*> frontier;
  if (steps[0].descendant) {
    if (NaiveStepMatches(steps[0], root)) frontier.push_back(&root);
    NaiveCollectDescendants(root, steps[0], frontier);
  } else if (NaiveStepMatches(steps[0], root)) {
    frontier.push_back(&root);
  }
  for (size_t s = 1; s < steps.size(); ++s) {
    std::vector<const Node*> next;
    for (const Node* node : frontier) {
      if (steps[s].descendant) {
        NaiveCollectDescendants(*node, steps[s], next);
      } else {
        for (size_t i = 0; i < node->child_count(); ++i) {
          const Node* child = node->child(i);
          if (child->is_element() && NaiveStepMatches(steps[s], *child)) {
            next.push_back(child);
          }
        }
      }
    }
    std::vector<const Node*> deduped;
    for (const Node* node : next) {
      if (std::find(deduped.begin(), deduped.end(), node) ==
          deduped.end()) {
        deduped.push_back(node);
      }
    }
    frontier = std::move(deduped);
    if (frontier.empty()) break;
  }
  return frontier;
}

TEST(RepositoryDifferential, RandomQueriesAgreeWithNaiveEvaluation) {
  // Three independent evaluators over identical corpora: the frozen
  // FlatDoc repository (default), the pointer-tree repository
  // (--no-flat), and the naive seed algorithm. All must produce the
  // same (doc, element pre-order position) sequences.
  Rng rng(20260806);
  for (size_t round = 0; round < 3; ++round) {
    RepositoryOptions options;
    options.num_shards = 1 + round;  // 1, 2, 3
    XmlRepository flat_repo(options);
    RepositoryOptions ptr_options = options;
    ptr_options.freeze_flat = false;
    XmlRepository ptr_repo(ptr_options);
    for (size_t i = 0; i < 30; ++i) {
      auto doc = RandomTree(rng);
      ASSERT_TRUE(ptr_repo.Add(doc->Clone()).ok());
      ASSERT_TRUE(flat_repo.Add(std::move(doc)).ok());
    }
    std::vector<std::map<const Node*, uint32_t>> order;
    for (size_t id = 0; id < ptr_repo.size(); ++id) {
      order.push_back(ElementOrderIndex(*ptr_repo.document(id)));
    }
    for (size_t q = 0; q < 40; ++q) {
      const PathQuery query = RandomQuery(rng);
      // Naive reference, canonicalized to (doc, pre-order position).
      std::vector<std::pair<size_t, uint32_t>> expected;
      for (size_t id = 0; id < ptr_repo.size(); ++id) {
        std::set<uint32_t> positions;
        for (const Node* node :
             NaiveEvaluate(query, *ptr_repo.document(id))) {
          positions.insert(order[id].at(node));
        }
        for (uint32_t pos : positions) expected.emplace_back(id, pos);
      }
      // Both repositories must return exactly this sequence: the same
      // match set, deduplicated, in (doc, document order) order.
      std::vector<std::pair<size_t, uint32_t>> flat_got;
      for (const QueryMatch& m : flat_repo.Query(query)) {
        flat_got.emplace_back(m.doc, m.pos);
      }
      EXPECT_EQ(expected, flat_got)
          << "flat, round " << round << ": " << query.ToString();
      std::vector<std::pair<size_t, uint32_t>> ptr_got;
      for (const QueryMatch& m : ptr_repo.Query(query)) {
        ptr_got.emplace_back(m.doc, order[m.doc].at(m.node));
      }
      EXPECT_EQ(expected, ptr_got)
          << "pointer, round " << round << ": " << query.ToString();
    }
    // Plan selection and per-document evaluation counts are a function
    // of corpus and queries, not of the storage representation.
    const obs::QueryStatsView fs = flat_repo.query_stats();
    const obs::QueryStatsView ps = ptr_repo.query_stats();
    EXPECT_EQ(fs.queries, ps.queries);
    EXPECT_EQ(fs.index_hits, ps.index_hits);
    EXPECT_EQ(fs.prefix_hits, ps.prefix_hits);
    EXPECT_EQ(fs.fallback_walks, ps.fallback_walks);
    EXPECT_EQ(fs.matches, ps.matches);
    EXPECT_EQ(ps.flat_scans, 0u);  // pointer mode never uses FlatDoc
  }
}

TEST(RepositoryDifferential, ShardCountInvariantResultsAndCounters) {
  static const char* const kQueries[] = {
      "/r/a/b", "//c", "//a[val~\"java\"]", "/r//d", "//*[val~\"19\"]",
      "/r/a[val~\"o\"]/b", "//e//a", "/r/*/c",
  };
  std::vector<std::vector<std::vector<std::pair<size_t, uint32_t>>>> results;
  std::vector<obs::QueryStatsView> stats;
  for (size_t shards : {1u, 2u, 4u, 7u}) {
    RepositoryOptions options;
    options.num_shards = shards;
    XmlRepository repo(options);
    Rng rng(4242);  // same corpus for every shard count
    for (size_t i = 0; i < 40; ++i) {
      ASSERT_TRUE(repo.Add(RandomTree(rng)).ok());
    }
    std::vector<std::vector<std::pair<size_t, uint32_t>>> per_query;
    for (const char* text : kQueries) {
      std::vector<std::pair<size_t, uint32_t>> canonical;
      const auto matches = repo.Query(text);
      ASSERT_TRUE(matches.ok()) << text;
      for (const QueryMatch& m : *matches) {
        canonical.emplace_back(m.doc, m.pos);
      }
      per_query.push_back(std::move(canonical));
    }
    results.push_back(std::move(per_query));
    stats.push_back(repo.query_stats());
  }
  for (size_t i = 1; i < results.size(); ++i) {
    EXPECT_EQ(results[0], results[i]) << "shard variant " << i;
    // Every query.* counter except shard_tasks (pure fan-out
    // bookkeeping) is a function of corpus and queries alone.
    EXPECT_EQ(stats[0].queries, stats[i].queries);
    EXPECT_EQ(stats[0].index_hits, stats[i].index_hits);
    EXPECT_EQ(stats[0].prefix_hits, stats[i].prefix_hits);
    EXPECT_EQ(stats[0].fallback_walks, stats[i].fallback_walks);
    EXPECT_EQ(stats[0].flat_scans, stats[i].flat_scans);
    EXPECT_EQ(stats[0].matches, stats[i].matches);
    EXPECT_EQ(stats[0].predicate_bytes_scanned,
              stats[i].predicate_bytes_scanned);
    EXPECT_EQ(stats[0].plan_summary, stats[i].plan_summary);
    EXPECT_EQ(stats[0].plan_sweep, stats[i].plan_sweep);
    EXPECT_EQ(stats[0].plan_seeded, stats[i].plan_seeded);
    EXPECT_EQ(stats[0].plan_scan, stats[i].plan_scan);
    EXPECT_EQ(stats[0].eval_us.count, stats[i].eval_us.count);
  }
  // Predicate work is charged by candidate length, not by scan progress,
  // so the byte figure is exact; and every query lands in exactly one
  // plan bucket.
  EXPECT_GT(stats[0].predicate_bytes_scanned, 0u);
  EXPECT_EQ(stats[0].plan_summary + stats[0].plan_sweep +
                stats[0].plan_seeded + stats[0].plan_scan,
            stats[0].queries);
}

TEST(RepositoryDifferential, SimdLevelInvariantResultsAndCounters) {
  // The same corpus and queries must produce byte-identical match
  // sequences and counters no matter which scanner kernel is dispatched.
  static const char* const kQueries[] = {
      "//a[val~\"java\"]", "//*[val~\"19\"]", "/r/a[val~\"o\"]/b",
      "//b[val~\"hello world\"]", "//c[val~\"x\"]", "/r/a/b",
  };
  const SimdLevel saved = ActiveSimdLevel();
  std::vector<SimdLevel> levels = {SimdLevel::kScalar};
  if (DetectedSimdLevel() >= SimdLevel::kSse2) {
    levels.push_back(SimdLevel::kSse2);
  }
  if (DetectedSimdLevel() >= SimdLevel::kAvx2) {
    levels.push_back(SimdLevel::kAvx2);
  }
  std::vector<std::vector<std::pair<size_t, uint32_t>>> results;
  std::vector<obs::QueryStatsView> stats;
  for (SimdLevel level : levels) {
    ASSERT_EQ(SetSimdLevelForTesting(level), level);
    XmlRepository repo;
    Rng rng(4242);  // same corpus as the shard-invariance view
    for (size_t i = 0; i < 40; ++i) {
      ASSERT_TRUE(repo.Add(RandomTree(rng)).ok());
    }
    std::vector<std::pair<size_t, uint32_t>> canonical;
    for (const char* text : kQueries) {
      const auto matches = repo.Query(text);
      ASSERT_TRUE(matches.ok()) << text;
      for (const QueryMatch& m : *matches) {
        canonical.emplace_back(m.doc, m.pos);
      }
    }
    results.push_back(std::move(canonical));
    stats.push_back(repo.query_stats());
  }
  SetSimdLevelForTesting(saved);
  for (size_t i = 1; i < results.size(); ++i) {
    EXPECT_EQ(results[0], results[i])
        << "level " << SimdLevelName(levels[i]);
    EXPECT_EQ(stats[0].matches, stats[i].matches);
    EXPECT_EQ(stats[0].predicate_bytes_scanned,
              stats[i].predicate_bytes_scanned);
    EXPECT_EQ(stats[0].plan_summary, stats[i].plan_summary);
    EXPECT_EQ(stats[0].plan_sweep, stats[i].plan_sweep);
    EXPECT_EQ(stats[0].plan_seeded, stats[i].plan_seeded);
    EXPECT_EQ(stats[0].plan_scan, stats[i].plan_scan);
  }
}

TEST(RepositoryDifferential, ShardedDiscoverMatchesFreshMiner) {
  // DiscoverSchema merges the per-shard tries fed at Add time; the
  // result must equal a fresh miner walking the same documents, for
  // every shard count, with and without constraints.
  Fixture& f = Shared();
  std::vector<std::string> pages;
  for (size_t i = 0; i < 20; ++i) pages.push_back(GenerateResume(i).html);

  for (const bool constrained : {false, true}) {
    MiningOptions mining;
    mining.sup_threshold = 0.3;
    if (constrained) mining.constraints = &f.constraints;

    FrequentPathMiner fresh(mining);
    for (const std::string& page : pages) {
      auto doc = f.converter.Convert(page);
      fresh.AddDocument(*doc);
    }
    const std::string expected = fresh.Discover().ToString();

    for (size_t shards : {1u, 3u, 8u}) {
      RepositoryOptions options;
      options.num_shards = shards;
      XmlRepository repo(options);
      for (const std::string& page : pages) {
        ASSERT_TRUE(repo.Add(f.converter.Convert(page)).ok());
      }
      EXPECT_EQ(repo.DiscoverSchema(mining).ToString(), expected)
          << shards << " shards, constrained=" << constrained;
    }
  }
}

}  // namespace
}  // namespace webre
