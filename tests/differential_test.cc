// Differential tests: two independent ways of computing the same thing
// must agree. These guard the optimizations (index pruning, incremental
// statistics) against the straightforward implementations.

#include <gtest/gtest.h>

#include <set>

#include "concepts/resume_domain.h"
#include "corpus/resume_generator.h"
#include "html/parser.h"
#include "html/tidy.h"
#include "repository/repository.h"
#include "restructure/converter.h"
#include "restructure/recognizer.h"
#include "schema/frequent_paths.h"
#include "schema/path_extractor.h"

namespace webre {
namespace {

struct Fixture {
  Fixture()
      : concepts(ResumeConcepts()),
        constraints(ResumeConstraints()),
        recognizer(&concepts),
        converter(&concepts, &recognizer, &constraints) {}

  ConceptSet concepts;
  ConstraintSet constraints;
  SynonymRecognizer recognizer;
  DocumentConverter converter;
};

Fixture& Shared() {
  static Fixture& fixture = *new Fixture();
  return fixture;
}

class QueryDifferential : public ::testing::TestWithParam<const char*> {};

TEST_P(QueryDifferential, IndexPrunedQueryEqualsBruteForce) {
  Fixture& f = Shared();
  XmlRepository repo;
  std::vector<const Node*> roots;
  for (size_t i = 0; i < 25; ++i) {
    auto doc = f.converter.Convert(GenerateResume(i).html);
    roots.push_back(doc.get());
    ASSERT_TRUE(repo.Add(std::move(doc)).ok());
  }
  auto parsed = PathQuery::Parse(GetParam());
  ASSERT_TRUE(parsed.ok()) << parsed.status();

  // Brute force: evaluate against every document.
  std::vector<std::pair<size_t, const Node*>> brute;
  for (size_t id = 0; id < roots.size(); ++id) {
    for (const Node* node : parsed->Evaluate(*repo.document(id))) {
      brute.emplace_back(id, node);
    }
  }
  // Repository path: may prune candidates via the label-path index.
  std::vector<std::pair<size_t, const Node*>> indexed;
  for (const QueryMatch& m : repo.Query(*parsed)) {
    indexed.emplace_back(m.doc, m.node);
  }
  EXPECT_EQ(brute, indexed) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(
    Queries, QueryDifferential,
    ::testing::Values("/resume/EDUCATION/DATE",
                      "/resume/EDUCATION/DATE/INSTITUTION",
                      "/resume/SKILLS/LANGUAGE", "//DATE", "//LOCATION",
                      "/resume/*/LANGUAGE", "//DATE[val~\"199\"]",
                      "/resume/EXPERIENCE//DATE",
                      "/resume/CONTACT/LOCATION/PHONE",
                      "/resume/NOSUCH/THING"));

TEST(TidyDifferential, TidyIsIdempotent) {
  for (size_t i = 0; i < 15; ++i) {
    auto once = ParseHtml(GenerateResume(i).html);
    TidyHtmlTree(once.get());
    auto twice = once->Clone();
    TidyHtmlTree(twice.get());
    EXPECT_TRUE(*once == *twice) << "doc " << i;
  }
}

TEST(MinerDifferential, IncrementalEqualsBatchExtraction) {
  // AddDocument (tree walk inside the miner) must agree with
  // AddDocumentPaths over a pre-extracted DocumentPaths.
  Fixture& f = Shared();
  FrequentPathMiner a;
  FrequentPathMiner b;
  for (size_t i = 0; i < 15; ++i) {
    auto doc = f.converter.Convert(GenerateResume(i).html);
    a.AddDocument(*doc);
    b.AddDocumentPaths(ExtractPaths(*doc));
  }
  a.mutable_options().sup_threshold = 0.3;
  b.mutable_options().sup_threshold = 0.3;
  MajoritySchema schema_a = a.Discover();
  MajoritySchema schema_b = b.Discover();
  EXPECT_EQ(schema_a.ToString(), schema_b.ToString());
}

TEST(MinerDifferential, DocumentOrderIrrelevant) {
  Fixture& f = Shared();
  std::vector<std::unique_ptr<Node>> docs;
  for (size_t i = 0; i < 15; ++i) {
    docs.push_back(f.converter.Convert(GenerateResume(i).html));
  }
  FrequentPathMiner forward;
  FrequentPathMiner backward;
  for (size_t i = 0; i < docs.size(); ++i) {
    forward.AddDocument(*docs[i]);
    backward.AddDocument(*docs[docs.size() - 1 - i]);
  }
  EXPECT_EQ(forward.Discover().ToString(),
            backward.Discover().ToString());
}

TEST(ConvertStatsDifferential, ConceptNodesMatchesTreeCount) {
  Fixture& f = Shared();
  for (size_t i = 0; i < 15; ++i) {
    ConvertStats stats;
    auto doc = f.converter.Convert(GenerateResume(i).html, &stats);
    size_t elements = 0;
    doc->PreOrder([&](const Node& n) {
      if (n.is_element()) ++elements;
    });
    EXPECT_EQ(stats.concept_nodes, elements - 1) << "doc " << i;
  }
}

TEST(RepositoryDifferential, PathIndexAgreesWithExtraction) {
  Fixture& f = Shared();
  XmlRepository repo;
  std::vector<DocumentPaths> extracted;
  for (size_t i = 0; i < 12; ++i) {
    auto doc = f.converter.Convert(GenerateResume(i).html);
    extracted.push_back(ExtractPaths(*doc));
    ASSERT_TRUE(repo.Add(std::move(doc)).ok());
  }
  // Every extracted path of doc i is answered by the index with i in it.
  for (size_t i = 0; i < extracted.size(); ++i) {
    for (const LabelPath& path : extracted[i].paths) {
      std::vector<DocId> docs = repo.DocumentsWithPath(path);
      EXPECT_TRUE(std::find(docs.begin(), docs.end(), i) != docs.end())
          << JoinLabelPath(path);
    }
  }
}

}  // namespace
}  // namespace webre
