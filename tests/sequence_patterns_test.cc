#include <gtest/gtest.h>

#include "schema/sequence_patterns.h"

namespace webre {
namespace {

using Seq = std::vector<std::string>;

TEST(SequencePatternTest, DetectsSingleElementRepetition) {
  std::vector<Seq> sequences = {
      {"DATE", "DATE", "DATE"}, {"DATE", "DATE"}, {"DATE"}};
  auto pattern = DetectRepeatingGroup(sequences);
  ASSERT_TRUE(pattern.has_value());
  EXPECT_EQ(pattern->group, Seq{"DATE"});
  EXPECT_DOUBLE_EQ(pattern->coverage, 1.0);
  EXPECT_NEAR(pattern->avg_repeats, 2.0, 1e-9);
  EXPECT_EQ(pattern->ToString(), "(DATE)+");
}

TEST(SequencePatternTest, DetectsPairGroup) {
  // The paper's (e1, e2)* example shape.
  std::vector<Seq> sequences = {
      {"DATE", "INSTITUTION", "DATE", "INSTITUTION"},
      {"DATE", "INSTITUTION", "DATE", "INSTITUTION", "DATE", "INSTITUTION"},
      {"DATE", "INSTITUTION"}};
  auto pattern = DetectRepeatingGroup(sequences);
  ASSERT_TRUE(pattern.has_value());
  EXPECT_EQ(pattern->group, (Seq{"DATE", "INSTITUTION"}));
  EXPECT_DOUBLE_EQ(pattern->coverage, 1.0);
  EXPECT_EQ(pattern->ToString(), "(DATE, INSTITUTION)+");
}

TEST(SequencePatternTest, SmallestPeriodWins) {
  std::vector<Seq> sequences = {{"A", "A", "A", "A"}, {"A", "A"}};
  auto pattern = DetectRepeatingGroup(sequences);
  ASSERT_TRUE(pattern.has_value());
  EXPECT_EQ(pattern->group, Seq{"A"});  // not (A, A)
}

TEST(SequencePatternTest, TripleGroup) {
  std::vector<Seq> sequences = {
      {"DATE", "COMPANY", "TITLE", "DATE", "COMPANY", "TITLE"},
      {"DATE", "COMPANY", "TITLE"},
      {"DATE", "COMPANY", "TITLE", "DATE", "COMPANY", "TITLE",
       "DATE", "COMPANY", "TITLE"}};
  auto pattern = DetectRepeatingGroup(sequences);
  ASSERT_TRUE(pattern.has_value());
  EXPECT_EQ(pattern->group, (Seq{"DATE", "COMPANY", "TITLE"}));
}

TEST(SequencePatternTest, RespectsCoverageThreshold) {
  std::vector<Seq> sequences = {
      {"A", "B", "A", "B"}, {"X", "Y"}, {"Q"}, {"Z", "Z"}};
  EXPECT_FALSE(DetectRepeatingGroup(sequences, /*min_coverage=*/0.6)
                   .has_value());
}

TEST(SequencePatternTest, ConstantSingletonsNeedMultiRepeats) {
  // Every sequence is exactly one "A": technically period 1, but nothing
  // ever repeats — no pattern should be claimed.
  std::vector<Seq> sequences = {{"A"}, {"A"}, {"A"}};
  EXPECT_FALSE(DetectRepeatingGroup(sequences, 0.6, 0.3).has_value());
}

TEST(SequencePatternTest, EmptyInput) {
  EXPECT_FALSE(DetectRepeatingGroup({}).has_value());
  std::vector<Seq> empties = {{}, {}};
  EXPECT_FALSE(DetectRepeatingGroup(empties).has_value());
}

TEST(SequencePatternTest, PartialTailBreaksCoverage) {
  // (A,B) repeated but one sequence has a dangling A.
  std::vector<Seq> sequences = {{"A", "B", "A", "B"},
                                {"A", "B", "A"},
                                {"A", "B"}};
  auto pattern = DetectRepeatingGroup(sequences, /*min_coverage=*/0.6);
  ASSERT_TRUE(pattern.has_value());
  EXPECT_NEAR(pattern->coverage, 2.0 / 3.0, 1e-9);
}

TEST(SequencePatternTest, ToParticleRendersPlusGroup) {
  SequencePattern pattern;
  pattern.group = {"DATE", "DEGREE"};
  ContentParticle particle = pattern.ToParticle();
  EXPECT_EQ(particle.ToString(), "(DATE, DEGREE)+");
}

TEST(CollectChildSequencesTest, GathersSequencesAtPath) {
  auto root = Node::MakeElement("resume");
  Node* e1 = root->AddElement("EDUCATION");
  e1->AddElement("DATE");
  e1->AddElement("INSTITUTION");
  e1->AddElement("DATE");
  e1->AddElement("INSTITUTION");
  Node* e2 = root->AddElement("EDUCATION");
  e2->AddElement("DATE");
  root->AddElement("SKILLS")->AddElement("LANGUAGE");

  auto sequences =
      CollectChildSequences(*root, {"resume", "EDUCATION"});
  ASSERT_EQ(sequences.size(), 2u);
  EXPECT_EQ(sequences[0],
            (Seq{"DATE", "INSTITUTION", "DATE", "INSTITUTION"}));
  EXPECT_EQ(sequences[1], Seq{"DATE"});
}

TEST(CollectChildSequencesTest, WrongPathGivesNothing) {
  auto root = Node::MakeElement("resume");
  root->AddElement("EDUCATION");
  EXPECT_TRUE(CollectChildSequences(*root, {"cv", "EDUCATION"}).empty());
  EXPECT_TRUE(CollectChildSequences(*root, {}).empty());
}

TEST(SequencePatternTest, EndToEndAlternatingCorpus) {
  // Documents whose EDUCATION children alternate DATE, INSTITUTION —
  // the general repetitive structure a plain per-element '+' cannot
  // express.
  std::vector<Seq> sequences;
  for (int docs = 0; docs < 10; ++docs) {
    Seq s;
    for (int k = 0; k <= docs % 3; ++k) {
      s.push_back("DATE");
      s.push_back("INSTITUTION");
    }
    sequences.push_back(std::move(s));
  }
  auto pattern = DetectRepeatingGroup(sequences);
  ASSERT_TRUE(pattern.has_value());
  EXPECT_EQ(pattern->ToString(), "(DATE, INSTITUTION)+");
  EXPECT_GT(pattern->avg_repeats, 1.5);
}

}  // namespace
}  // namespace webre
