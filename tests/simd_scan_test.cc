// Differential and unit tests for the vectorized predicate scanner
// (util/simd_scan.h) and the pool-sweep bitset built on top of it
// (repository/predicate.h). Every SIMD kernel the hardware supports is
// exercised against the scalar reference on randomized and adversarial
// pools — lane-boundary straddles, pool-tail matches, sub-lane pools —
// because a kernel bug here silently corrupts query results.

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "repository/predicate.h"
#include "util/rng.h"
#include "util/simd_scan.h"
#include "xml/flat_doc.h"
#include "xml/node.h"

namespace webre {
namespace {

constexpr size_t kNpos = std::string_view::npos;

/// Restores the dispatched kernel on scope exit so a failing test cannot
/// leak a forced level into later tests in the same binary.
class SimdLevelGuard {
 public:
  SimdLevelGuard() : saved_(ActiveSimdLevel()) {}
  ~SimdLevelGuard() { SetSimdLevelForTesting(saved_); }

 private:
  SimdLevel saved_;
};

/// Every level the running machine can execute, scalar first.
std::vector<SimdLevel> SupportedLevels() {
  std::vector<SimdLevel> levels = {SimdLevel::kScalar};
  if (DetectedSimdLevel() >= SimdLevel::kSse2) levels.push_back(SimdLevel::kSse2);
  if (DetectedSimdLevel() >= SimdLevel::kAvx2) levels.push_back(SimdLevel::kAvx2);
  return levels;
}

char AsciiLower(char c) { return (c >= 'A' && c <= 'Z') ? c + 32 : c; }

/// Straight-line reference matcher: no skipping, no vectorization.
size_t ReferenceFind(std::string_view haystack, std::string_view lowered,
                     size_t from) {
  if (lowered.empty()) return from <= haystack.size() ? from : kNpos;
  if (lowered.size() > haystack.size()) return kNpos;
  for (size_t i = from; i + lowered.size() <= haystack.size(); ++i) {
    size_t j = 0;
    while (j < lowered.size() && AsciiLower(haystack[i + j]) == lowered[j]) {
      ++j;
    }
    if (j == lowered.size()) return i;
  }
  return kNpos;
}

void ExpectAllLevelsAgree(std::string_view haystack, std::string_view needle,
                          size_t from) {
  SimdLevelGuard guard;
  const size_t want = ReferenceFind(haystack, needle, from);
  for (SimdLevel level : SupportedLevels()) {
    ASSERT_EQ(SetSimdLevelForTesting(level), level);
    EXPECT_EQ(FindLowered(haystack, needle, from), want)
        << "level=" << SimdLevelName(level) << " pool_len=" << haystack.size()
        << " needle=\"" << needle << "\" from=" << from;
  }
}

TEST(SimdLevelTest, NamesRoundTripThroughParse) {
  for (SimdLevel level :
       {SimdLevel::kScalar, SimdLevel::kSse2, SimdLevel::kAvx2}) {
    SimdLevel parsed = SimdLevel::kScalar;
    ASSERT_TRUE(ParseSimdLevel(SimdLevelName(level), &parsed));
    EXPECT_EQ(parsed, level);
  }
  SimdLevel untouched = SimdLevel::kAvx2;
  EXPECT_FALSE(ParseSimdLevel("", &untouched));
  EXPECT_FALSE(ParseSimdLevel("avx512", &untouched));
  EXPECT_FALSE(ParseSimdLevel("SSE2", &untouched));  // case-sensitive
  EXPECT_FALSE(ParseSimdLevel("scalar ", &untouched));
  EXPECT_EQ(untouched, SimdLevel::kAvx2);
}

TEST(SimdLevelTest, DispatcherPicksScalarWithoutFeatureBits) {
  // The fallback policy as a pure function of cpuid bits: a machine
  // reporting no vector features must get the scalar kernel, never a
  // crash-on-dispatch.
  EXPECT_EQ(SimdLevelFromFeatures(false, false), SimdLevel::kScalar);
  EXPECT_EQ(SimdLevelFromFeatures(false, true), SimdLevel::kScalar);
  EXPECT_EQ(SimdLevelFromFeatures(true, false), SimdLevel::kSse2);
  EXPECT_EQ(SimdLevelFromFeatures(true, true), SimdLevel::kAvx2);
}

TEST(SimdLevelTest, SetForTestingClampsToHardware) {
  SimdLevelGuard guard;
  // Requesting more than the hardware supports installs the best
  // supported kernel; requesting scalar always succeeds.
  EXPECT_LE(SetSimdLevelForTesting(SimdLevel::kAvx2), DetectedSimdLevel());
  EXPECT_EQ(SetSimdLevelForTesting(SimdLevel::kScalar), SimdLevel::kScalar);
  EXPECT_EQ(ActiveSimdLevel(), SimdLevel::kScalar);
}

TEST(FindLoweredTest, EmptyNeedleAndEdgeOffsets) {
  SimdLevelGuard guard;
  for (SimdLevel level : SupportedLevels()) {
    SetSimdLevelForTesting(level);
    EXPECT_EQ(FindLowered("abc", ""), 0u);
    EXPECT_EQ(FindLowered("abc", "", 3), 3u);  // empty matches at end
    EXPECT_EQ(FindLowered("abc", "", 4), kNpos);
    EXPECT_EQ(FindLowered("", ""), 0u);
    EXPECT_EQ(FindLowered("", "a"), kNpos);
    EXPECT_EQ(FindLowered("abc", "abcd"), kNpos);  // needle longer than pool
    EXPECT_EQ(FindLowered("abc", "c", 2), 2u);
    EXPECT_EQ(FindLowered("abc", "c", 3), kNpos);  // from past last window
  }
}

TEST(FindLoweredTest, LowersHaystackNotNeedle) {
  SimdLevelGuard guard;
  for (SimdLevel level : SupportedLevels()) {
    SetSimdLevelForTesting(level);
    EXPECT_EQ(FindLowered("JUNE 1996", "june"), 0u);
    EXPECT_EQ(FindLowered("JuNe 1996", "e 19"), 3u);
    // Non-ASCII bytes must pass through unlowered (the 0x20 trick must
    // not touch bytes >= 0x80).
    std::string pool = "x\xC3\x89y";  // 'x', U+00C9 in UTF-8, 'y'
    EXPECT_EQ(FindLowered(pool, "\xC3\x89"), 1u);
    EXPECT_EQ(FindLowered(pool, "\xE3"), kNpos);
  }
}

TEST(FindLoweredTest, LaneBoundaryStraddles) {
  // Place a needle at every offset around the 16- and 32-byte lane
  // boundaries, including positions where the match straddles the
  // boundary and where the match IS the pool tail.
  const std::string needle = "needle";
  for (size_t pool_len : {5u, 15u, 16u, 17u, 31u, 32u, 33u, 64u, 100u}) {
    for (size_t at = 0; at + needle.size() <= pool_len; ++at) {
      std::string pool(pool_len, 'x');
      std::copy(needle.begin(), needle.end(), pool.begin() + at);
      ExpectAllLevelsAgree(pool, needle, 0);
      ExpectAllLevelsAgree(pool, needle, at);      // from == match
      ExpectAllLevelsAgree(pool, needle, at + 1);  // from just past it
    }
  }
  // Pools shorter than one lane, including shorter than the needle.
  for (size_t pool_len = 0; pool_len < 16; ++pool_len) {
    ExpectAllLevelsAgree(std::string(pool_len, 'n'), needle, 0);
    ExpectAllLevelsAgree(std::string(pool_len, 'n'), "n", 0);
  }
}

TEST(FindLoweredTest, RandomizedDifferentialAcrossLevels) {
  // Small alphabet with mixed case so matches, near-misses (shared
  // first/last byte with a differing middle) and repeats are all common.
  const char kAlphabet[] = "aAbBc<> ";
  Rng rng(20260808);
  for (int round = 0; round < 400; ++round) {
    const size_t n = rng.NextBelow(200);
    std::string pool(n, ' ');
    for (char& c : pool) c = kAlphabet[rng.NextBelow(sizeof(kAlphabet) - 1)];
    const size_t m = 1 + rng.NextBelow(12);
    std::string needle;
    if (n >= m && rng.NextBool(0.6)) {
      // Sample the needle from the pool so matches actually occur.
      const size_t at = rng.NextBelow(n - m + 1);
      needle = pool.substr(at, m);
      for (char& c : needle) c = AsciiLower(c);
    } else {
      for (size_t i = 0; i < m; ++i) {
        char c = kAlphabet[rng.NextBelow(sizeof(kAlphabet) - 1)];
        needle.push_back(AsciiLower(c));
      }
    }
    const size_t from = rng.NextBelow(n + 2);
    ExpectAllLevelsAgree(pool, needle, from);
    // Walk every occurrence, not just the first.
    size_t pos = ReferenceFind(pool, needle, 0);
    while (pos != kNpos) {
      ExpectAllLevelsAgree(pool, needle, pos);
      ExpectAllLevelsAgree(pool, needle, pos + 1);
      pos = ReferenceFind(pool, needle, pos + 1);
    }
  }
}

std::unique_ptr<Node> DocFromVals(const std::vector<std::string>& vals) {
  auto root = Node::MakeElement("r");
  for (const std::string& v : vals) {
    Node* child = root->AddElement("e");
    if (!v.empty()) child->set_val(v);
  }
  return root;
}

/// SweepValBitset must agree bit-for-bit with per-element
/// ValContainsLowered — the element-wise definition it accelerates.
void ExpectSweepMatchesElementwise(const FlatDoc& flat,
                                   std::string_view needle,
                                   PredicateScratch& scratch) {
  SimdLevelGuard guard;
  for (SimdLevel level : SupportedLevels()) {
    SetSimdLevelForTesting(level);
    const uint64_t* bits = SweepValBitset(flat, needle, scratch);
    for (uint32_t e = 0; e < flat.element_count(); ++e) {
      EXPECT_EQ(BitsetTest(bits, e), flat.ValContainsLowered(e, needle))
          << "level=" << SimdLevelName(level) << " element=" << e
          << " needle=\"" << needle << "\"";
    }
  }
}

TEST(SweepValBitsetTest, RejectsBoundaryStraddlingHits) {
  // The concatenated pool "abcd" contains "bc", but no single element's
  // val does — the sweep must reject the straddling hit via the offset
  // array, and still find the genuine match in the next element.
  auto flat = FlatDoc::Freeze(*DocFromVals({"ab", "cd", "xbcx"}));
  PredicateScratch scratch;
  ExpectSweepMatchesElementwise(*flat, "bc", scratch);
  ExpectSweepMatchesElementwise(*flat, "ab", scratch);
  ExpectSweepMatchesElementwise(*flat, "d", scratch);
  ExpectSweepMatchesElementwise(*flat, "abcd", scratch);
  ExpectSweepMatchesElementwise(*flat, "", scratch);
}

TEST(SweepValBitsetTest, RepeatedHitsWithinOneElement) {
  // First-match-per-element must still mark every element that matches,
  // including ones whose val repeats the needle many times.
  auto flat = FlatDoc::Freeze(
      *DocFromVals({"aaaa", "AAa", "b", "", "aba", "xxaa"}));
  PredicateScratch scratch;
  ExpectSweepMatchesElementwise(*flat, "aa", scratch);
  ExpectSweepMatchesElementwise(*flat, "a", scratch);
  ExpectSweepMatchesElementwise(*flat, "ab", scratch);
}

TEST(SweepValBitsetTest, RandomizedDifferentialAndScratchReuse) {
  Rng rng(777);
  const char kAlphabet[] = "aAbc ";
  PredicateScratch scratch;  // reused across all docs, as in queries
  for (int round = 0; round < 60; ++round) {
    std::vector<std::string> vals(1 + rng.NextBelow(20));
    for (std::string& v : vals) {
      v.resize(rng.NextBelow(24));
      for (char& c : v) c = kAlphabet[rng.NextBelow(sizeof(kAlphabet) - 1)];
    }
    auto flat = FlatDoc::Freeze(*DocFromVals(vals));
    std::string needle(1 + rng.NextBelow(4), 'a');
    for (char& c : needle) {
      c = AsciiLower(kAlphabet[rng.NextBelow(sizeof(kAlphabet) - 1)]);
    }
    ExpectSweepMatchesElementwise(*flat, needle, scratch);
  }
  EXPECT_EQ(scratch.sweeps, 60u * SupportedLevels().size());
  EXPECT_GT(scratch.bytes_scanned, 0u);
}

TEST(ShouldSweepPoolTest, CostModel) {
  // Tiny candidate sets never sweep, regardless of coverage.
  EXPECT_FALSE(ShouldSweepPool(0, 0, 100));
  EXPECT_FALSE(ShouldSweepPool(3, 100, 100));
  // Sweep iff candidates cover at least half the pool.
  EXPECT_TRUE(ShouldSweepPool(4, 50, 100));
  EXPECT_FALSE(ShouldSweepPool(4, 49, 100));
  EXPECT_TRUE(ShouldSweepPool(1000, 600, 1000));
}

}  // namespace
}  // namespace webre
