// TraceCollector: lane bookkeeping, Chrome trace_event JSON export, and
// the nesting of pipeline-emitted spans (every converter stage span must
// sit inside its document's umbrella span on the same lane).

#include <algorithm>
#include <map>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "concepts/resume_domain.h"
#include "core/pipeline.h"
#include "corpus/resume_generator.h"
#include "gtest/gtest.h"
#include "minijson.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "restructure/recognizer.h"

namespace webre {
namespace {

TEST(TraceCollector, StartsEmpty) {
  obs::TraceCollector trace;
  EXPECT_EQ(trace.event_count(), 0u);
  EXPECT_EQ(trace.lane_count(), 0u);
}

TEST(TraceCollector, SingleThreadGetsOneLane) {
  obs::TraceCollector trace;
  const double origin = trace.origin_seconds();
  trace.AddSpan("parse", "stage", origin + 0.001, origin + 0.002, 0);
  trace.AddSpan("tidy", "stage", origin + 0.002, origin + 0.003, 0);
  EXPECT_EQ(trace.event_count(), 2u);
  EXPECT_EQ(trace.lane_count(), 1u);

  const std::vector<obs::TraceEvent> events = trace.Events();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].name, "parse");
  EXPECT_EQ(events[0].lane, 0u);
  EXPECT_EQ(events[0].doc_index, 0u);
  EXPECT_GE(events[0].timestamp_us, 0);
  EXPECT_GT(events[0].duration_us, 0);
}

TEST(TraceCollector, NegativeDurationClampsToZero) {
  obs::TraceCollector trace;
  const double origin = trace.origin_seconds();
  trace.AddSpan("odd", "stage", origin + 0.002, origin + 0.001);
  const std::vector<obs::TraceEvent> events = trace.Events();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].duration_us, 0);
}

TEST(TraceCollector, EachThreadGetsItsOwnLane) {
  obs::TraceCollector trace;
  constexpr size_t kThreads = 4;
  std::vector<std::thread> threads;
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&trace, t] {
      const double origin = trace.origin_seconds();
      for (int i = 0; i < 10; ++i) {
        trace.AddSpan("work", "stage", origin + i * 0.001,
                      origin + i * 0.001 + 0.0005, t);
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(trace.lane_count(), kThreads);
  EXPECT_EQ(trace.event_count(), kThreads * 10);

  // Every event's lane must be in range and each thread's events must
  // all share one lane (they carried their thread index as doc_index).
  std::map<size_t, std::set<uint32_t>> lanes_by_writer;
  for (const obs::TraceEvent& event : trace.Events()) {
    EXPECT_LT(event.lane, kThreads);
    lanes_by_writer[event.doc_index].insert(event.lane);
  }
  ASSERT_EQ(lanes_by_writer.size(), kThreads);
  for (const auto& [writer, lanes] : lanes_by_writer) {
    EXPECT_EQ(lanes.size(), 1u) << "writer " << writer;
  }
}

TEST(TraceCollector, ToJsonIsValidChromeTraceFormat) {
  obs::TraceCollector trace;
  const double origin = trace.origin_seconds();
  trace.AddSpan("parse", "stage", origin + 0.001, origin + 0.002, 3);
  trace.AddSpan("discover", "batch", origin + 0.002, origin + 0.004);
  trace.AddSpan("na\"me\\with\nescapes", "stage", origin, origin + 0.001, 1);

  minijson::Value root;
  std::string error;
  ASSERT_TRUE(minijson::Parse(trace.ToJson(), &root, &error)) << error;
  ASSERT_TRUE(root.is_array());

  size_t metadata = 0;
  size_t spans = 0;
  for (const minijson::Value& event : root.array) {
    ASSERT_TRUE(event.is_object());
    const minijson::Value* ph = event.Find("ph");
    ASSERT_NE(ph, nullptr);
    if (ph->str == "M") {
      ++metadata;
      EXPECT_EQ(event.Find("name")->str, "thread_name");
      continue;
    }
    ASSERT_EQ(ph->str, "X");
    ++spans;
    ASSERT_NE(event.Find("name"), nullptr);
    ASSERT_NE(event.Find("cat"), nullptr);
    ASSERT_NE(event.Find("ts"), nullptr);
    ASSERT_NE(event.Find("dur"), nullptr);
    ASSERT_NE(event.Find("pid"), nullptr);
    ASSERT_NE(event.Find("tid"), nullptr);
    EXPECT_GE(event.Find("ts")->number, 0.0);
    EXPECT_GE(event.Find("dur")->number, 0.0);
  }
  EXPECT_EQ(metadata, trace.lane_count());
  EXPECT_EQ(spans, 3u);

  // Batch-level spans (doc_index SIZE_MAX) carry no "doc" arg.
  for (const minijson::Value& event : root.array) {
    if (event.Find("ph")->str != "X") continue;
    const minijson::Value* cat = event.Find("cat");
    const minijson::Value* args = event.Find("args");
    if (cat->str == "batch") {
      EXPECT_TRUE(args == nullptr || args->Find("doc") == nullptr);
    } else {
      ASSERT_NE(args, nullptr);
      ASSERT_NE(args->Find("doc"), nullptr);
    }
  }
}

// End-to-end: a parallel pipeline run produces a parseable trace whose
// converter-stage spans nest inside their document's umbrella span on
// the same lane.
TEST(TraceExport, PipelineSpansNestWithinDocuments) {
  ConceptSet concepts = ResumeConcepts();
  ConstraintSet constraints = ResumeConstraints();
  SynonymRecognizer recognizer(&concepts);
  std::vector<std::string> pages;
  for (size_t i = 0; i < 24; ++i) pages.push_back(GenerateResume(i).html);

  obs::TraceCollector trace;
  PipelineOptions options;
  options.parallel.num_threads = 4;
  options.map_documents = true;
  options.trace = &trace;
  Pipeline pipeline(&concepts, &recognizer, &constraints, options);
  const PipelineResult result = pipeline.Run(pages);
  ASSERT_EQ(result.failed_documents, 0u);

  // Valid JSON end to end.
  minijson::Value root;
  std::string error;
  ASSERT_TRUE(minijson::Parse(trace.ToJson(), &root, &error)) << error;

  // Workers + possibly the main thread (discover) recorded: at most
  // num_threads + 1 lanes, at least one.
  EXPECT_GE(trace.lane_count(), 1u);
  EXPECT_LE(trace.lane_count(), 5u);

  // Index document umbrella spans by (lane, doc).
  const std::vector<obs::TraceEvent> events = trace.Events();
  std::map<std::pair<uint32_t, size_t>, const obs::TraceEvent*> documents;
  for (const obs::TraceEvent& event : events) {
    if (event.category == "doc") {
      documents[{event.lane, event.doc_index}] = &event;
    }
  }
  EXPECT_EQ(documents.size(), pages.size());

  // Every converter-stage span sits inside its document's span on the
  // same lane. (validate/map spans run in a later stage and are allowed
  // to be outside; "discover" has no document at all.)
  const std::set<std::string> converter_stages = {
      "parse", "tidy", "tokenize", "instance",
      "group", "consolidate", "extract"};
  size_t nested = 0;
  for (const obs::TraceEvent& event : events) {
    if (converter_stages.count(event.name) == 0) continue;
    auto it = documents.find({event.lane, event.doc_index});
    ASSERT_NE(it, documents.end())
        << event.name << " for doc " << event.doc_index
        << " has no umbrella span on lane " << event.lane;
    const obs::TraceEvent& doc = *it->second;
    EXPECT_GE(event.timestamp_us, doc.timestamp_us) << event.name;
    EXPECT_LE(event.timestamp_us + event.duration_us,
              doc.timestamp_us + doc.duration_us)
        << event.name;
    ++nested;
  }
  // All 24 documents produced all 7 converter stages.
  EXPECT_EQ(nested, pages.size() * 7);

  // Exactly one batch-level discover span.
  size_t discover_spans = 0;
  for (const obs::TraceEvent& event : events) {
    if (event.name == "discover") ++discover_spans;
  }
  EXPECT_EQ(discover_spans, 1u);
}

}  // namespace
}  // namespace webre
