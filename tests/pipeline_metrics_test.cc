// PipelineMetrics threaded through Pipeline::Run: counter determinism
// across thread counts, consistency with PipelineResult, the
// --metrics-json schema, and failure-message capture.

#include "obs/pipeline_metrics.h"

#include <sstream>
#include <string>
#include <vector>

#include "concepts/resume_domain.h"
#include "core/pipeline.h"
#include "core/telemetry.h"
#include "corpus/resume_generator.h"
#include "gtest/gtest.h"
#include "minijson.h"
#include "restructure/recognizer.h"

namespace webre {
namespace {

// 12 healthy resumes interleaved with 3 token bombs that trip
// max_tokens_per_text, so the metrics cover both fates.
std::vector<std::string> MixedCorpus() {
  std::vector<std::string> pages;
  for (size_t i = 0; i < 15; ++i) {
    if (i % 5 == 4) {
      std::string bomb = "<html><body><p>";
      for (int j = 0; j < 64; ++j) bomb += "boom,";
      bomb += "</p></body></html>";
      pages.push_back(bomb);
    } else {
      pages.push_back(GenerateResume(i).html);
    }
  }
  return pages;
}

PipelineOptions BaseOptions(size_t threads) {
  PipelineOptions options;
  options.parallel.num_threads = threads;
  options.parallel.chunk_size = 2;  // force real fan-out on small corpora
  options.map_documents = true;
  options.limits.max_tokens_per_text = 16;
  return options;
}

struct RunArtifacts {
  PipelineResult result;
  obs::PipelineMetricsSnapshot snapshot;
};

RunArtifacts RunWithMetrics(const std::vector<std::string>& pages,
                            size_t threads) {
  static ConceptSet concepts = ResumeConcepts();
  static ConstraintSet constraints = ResumeConstraints();
  static SynonymRecognizer recognizer(&concepts);
  obs::PipelineMetrics metrics;
  PipelineOptions options = BaseOptions(threads);
  options.metrics = &metrics;
  Pipeline pipeline(&concepts, &recognizer, &constraints, options);
  RunArtifacts artifacts{pipeline.Run(pages), {}};
  artifacts.snapshot = metrics.Snapshot();
  return artifacts;
}

// Everything in the snapshot except wall times, rendered to one string
// so any divergence across thread counts pinpoints itself in the diff.
std::string DeterministicView(const obs::PipelineMetricsSnapshot& s) {
  std::ostringstream out;
  for (const obs::StageSnapshot& stage : s.stages) {
    out << stage.name << " calls=" << stage.calls
        << " in=" << stage.items_in << " out=" << stage.items_out << "\n";
  }
  for (const auto& [key, value] : s.CounterItems()) {
    out << key << "=" << value << "\n";
  }
  out << "budget " << s.budget_steps_used << " " << s.budget_nodes_used
      << " " << s.budget_entities_used << " max " << s.budget_max_steps_one_doc
      << " " << s.budget_max_nodes_one_doc << " "
      << s.budget_max_entities_one_doc << "\n";
  out << "docs " << s.documents_total << "/" << s.documents_ok << "/"
      << s.documents_failed << " aborted=" << s.aborted << "\n";
  for (const auto& [name, count] : s.outcome_counts) {
    out << "outcome " << name << "=" << count << "\n";
  }
  for (const auto& [stage, count] : s.failed_stage_counts) {
    out << "failed_stage " << stage << "=" << count << "\n";
  }
  for (const std::string& message : s.failure_messages) {
    out << "failure: " << message << "\n";
  }
  for (const std::string& message : s.worker_failures) {
    out << "worker: " << message << "\n";
  }
  out << "convert_us count=" << s.convert_us.count << "\n";
  out << "query_us count=" << s.query_us.count << "\n";
  return out.str();
}

TEST(PipelineMetricsDeterminism, CountersIdenticalAcrossThreadCounts) {
  const std::vector<std::string> pages = MixedCorpus();
  const RunArtifacts serial = RunWithMetrics(pages, 1);
  const RunArtifacts two = RunWithMetrics(pages, 2);
  const RunArtifacts eight = RunWithMetrics(pages, 8);

  const std::string expected = DeterministicView(serial.snapshot);
  EXPECT_EQ(expected, DeterministicView(two.snapshot));
  EXPECT_EQ(expected, DeterministicView(eight.snapshot));
}

TEST(PipelineMetricsConsistency, MatchesPipelineResult) {
  const std::vector<std::string> pages = MixedCorpus();
  const RunArtifacts run = RunWithMetrics(pages, 4);
  const PipelineResult& result = run.result;
  const obs::PipelineMetricsSnapshot& s = run.snapshot;

  EXPECT_EQ(s.documents_total, pages.size());
  EXPECT_EQ(s.documents_failed, result.failed_documents);
  EXPECT_EQ(s.documents_ok, pages.size() - result.failed_documents);
  EXPECT_FALSE(s.aborted);
  EXPECT_EQ(result.failed_documents, 3u);

  // Outcome counts sum to the document total and agree with the
  // per-document outcome list.
  uint64_t outcome_sum = 0;
  for (const auto& [name, count] : s.outcome_counts) outcome_sum += count;
  EXPECT_EQ(outcome_sum, s.documents_total);
  uint64_t limit_exceeded = 0;
  for (const DocumentOutcome& outcome : result.outcomes) {
    if (outcome.status == DocumentStatus::kLimitExceeded) ++limit_exceeded;
  }
  for (const auto& [name, count] : s.outcome_counts) {
    if (name == "limit_exceeded") {
      EXPECT_EQ(count, limit_exceeded);
    }
  }

  // Stage accounting: every ok document ran every converter stage plus
  // extract/validate/map exactly once; failures stopped at tokenize.
  for (const obs::StageSnapshot& stage : s.stages) {
    const std::string name = stage.name;
    if (name == "parse") {
      EXPECT_EQ(stage.calls, pages.size());
    }
    if (name == "instance" || name == "extract" || name == "validate" ||
        name == "map") {
      EXPECT_EQ(stage.calls, s.documents_ok) << name;
    }
    if (name == "discover") {
      EXPECT_EQ(stage.calls, 1u);
    }
  }

  // Validate/map items_out accumulate exactly the conforming counts.
  for (const obs::StageSnapshot& stage : s.stages) {
    const std::string name = stage.name;
    if (name == "validate") {
      EXPECT_EQ(stage.items_out, result.conforming_before);
    }
    if (name == "map") {
      EXPECT_EQ(stage.items_out, result.conforming_after);
    }
  }

  // One latency sample per document.
  EXPECT_EQ(s.convert_us.count, pages.size());

  // Rule counters are internally coherent.
  EXPECT_EQ(s.instance_tokens_identified,
            s.instance_tokens_via_synonym + s.instance_tokens_via_bayes);
  EXPECT_GT(s.tokenize_tokens_emitted, 0u);
  EXPECT_GT(s.grouping_groups_formed, 0u);
}

TEST(PipelineMetricsConsistency, FailureMessagesCaptured) {
  const std::vector<std::string> pages = MixedCorpus();
  const RunArtifacts run = RunWithMetrics(pages, 2);
  const obs::PipelineMetricsSnapshot& s = run.snapshot;

  bool tokenize_failures = false;
  for (const auto& [stage, count] : s.failed_stage_counts) {
    if (stage == "tokenize") {
      tokenize_failures = true;
      EXPECT_EQ(count, 3u);
    }
  }
  EXPECT_TRUE(tokenize_failures);

  // Distinct messages only: the three identical bombs share one entry.
  ASSERT_EQ(s.failure_messages.size(), 1u);
  EXPECT_NE(s.failure_messages[0].find("max_tokens_per_text"),
            std::string::npos);
}

TEST(PipelineMetricsConsistency, AbortedRunStillRecordsOutcomes) {
  const std::vector<std::string> pages = MixedCorpus();
  static ConceptSet concepts = ResumeConcepts();
  static ConstraintSet constraints = ResumeConstraints();
  static SynonymRecognizer recognizer(&concepts);
  obs::PipelineMetrics metrics;
  PipelineOptions options = BaseOptions(2);
  options.keep_going = false;
  options.metrics = &metrics;
  Pipeline pipeline(&concepts, &recognizer, &constraints, options);
  const PipelineResult result = pipeline.Run(pages);
  ASSERT_TRUE(result.aborted);

  const obs::PipelineMetricsSnapshot s = metrics.Snapshot();
  EXPECT_TRUE(s.aborted);
  EXPECT_EQ(s.documents_total, pages.size());
  EXPECT_EQ(s.documents_failed, 3u);
}

// The --metrics-json schema: exact top-level key sequence, stage entry
// shape, counter key set and headroom presence. A golden key-set test:
// additions must be deliberate (update docs/CLI.md in the same change).
TEST(MetricsJson, SchemaGolden) {
  const std::vector<std::string> pages = MixedCorpus();
  const RunArtifacts run = RunWithMetrics(pages, 2);

  ResourceLimits limits;
  limits.max_tokens_per_text = 16;
  const obs::BudgetLimitsView view = ToBudgetLimitsView(limits);
  const std::string json = obs::MetricsToJson(run.snapshot, &view);

  minijson::Value root;
  std::string error;
  ASSERT_TRUE(minijson::Parse(json, &root, &error)) << error << "\n" << json;
  ASSERT_TRUE(root.is_object());

  const std::vector<std::string> expected_keys = {
      "webre_metrics_version", "documents",        "outcomes",
      "failed_stages",         "failure_messages", "worker_failures",
      "stages",                "counters",         "budget",
      "convert_us",            "query_us"};
  ASSERT_EQ(root.object.size(), expected_keys.size());
  for (size_t i = 0; i < expected_keys.size(); ++i) {
    EXPECT_EQ(root.object[i].first, expected_keys[i]) << "key " << i;
  }
  EXPECT_EQ(root.Find("webre_metrics_version")->number, 1.0);

  const minijson::Value* documents = root.Find("documents");
  for (const char* key : {"total", "ok", "failed", "aborted"}) {
    EXPECT_NE(documents->Find(key), nullptr) << key;
  }

  const minijson::Value* stages = root.Find("stages");
  ASSERT_TRUE(stages->is_array());
  ASSERT_EQ(stages->array.size(), obs::kPipelineStageCount);
  for (const minijson::Value& stage : stages->array) {
    for (const char* key :
         {"name", "calls", "wall_ms", "items_in", "items_out"}) {
      EXPECT_NE(stage.Find(key), nullptr) << key;
    }
  }

  const minijson::Value* counters = root.Find("counters");
  ASSERT_TRUE(counters->is_object());
  const auto counter_items = run.snapshot.CounterItems();
  ASSERT_EQ(counters->object.size(), counter_items.size());
  for (size_t i = 0; i < counter_items.size(); ++i) {
    EXPECT_EQ(counters->object[i].first, counter_items[i].first);
  }

  // The memory counters are part of the pinned schema: present, and
  // non-zero on any successful conversion (every document allocates
  // nodes; the default pipeline runs with the arena on).
  ASSERT_NE(counters->Find("mem.node_allocs"), nullptr);
  ASSERT_NE(counters->Find("mem.arena_bytes"), nullptr);
  EXPECT_GT(run.snapshot.mem_node_allocs, 0u);
  EXPECT_GT(run.snapshot.mem_arena_bytes, 0u);

  // The predicate-engine counters are likewise pinned: present (as
  // zeros on a pure conversion run — the fixed key set does not vary
  // with run type).
  for (const char* key :
       {"query.predicate_bytes_scanned", "query.plan.summary",
        "query.plan.sweep", "query.plan.seeded", "query.plan.scan"}) {
    ASSERT_NE(counters->Find(key), nullptr) << key;
  }

  const minijson::Value* budget = root.Find("budget");
  ASSERT_NE(budget->Find("headroom"), nullptr);
  // Default limits are finite, so all three dimensions report headroom
  // in [0, 1].
  for (const auto& [key, value] : budget->Find("headroom")->object) {
    EXPECT_GE(value.number, 0.0) << key;
    EXPECT_LE(value.number, 1.0) << key;
  }

  const minijson::Value* convert_us = root.Find("convert_us");
  EXPECT_EQ(convert_us->Find("count")->number,
            static_cast<double>(pages.size()));
}

TEST(MetricsJson, NoHeadroomWithoutLimits) {
  const std::vector<std::string> pages = MixedCorpus();
  const RunArtifacts run = RunWithMetrics(pages, 1);
  const std::string json = obs::MetricsToJson(run.snapshot);
  minijson::Value root;
  std::string error;
  ASSERT_TRUE(minijson::Parse(json, &root, &error)) << error;
  EXPECT_EQ(root.Find("budget")->Find("headroom"), nullptr);
}

TEST(MetricsTable, ListsActiveStagesAndFailures) {
  const std::vector<std::string> pages = MixedCorpus();
  const RunArtifacts run = RunWithMetrics(pages, 2);
  const std::string table = obs::MetricsToTable(run.snapshot);
  for (const char* needle :
       {"parse", "tokenize", "consolidate", "discover", "map",
        "tokenize.tokens_emitted", "budget:", "documents:", "failed in"}) {
    EXPECT_NE(table.find(needle), std::string::npos) << needle;
  }
}

}  // namespace
}  // namespace webre
