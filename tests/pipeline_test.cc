#include <gtest/gtest.h>

#include "concepts/resume_domain.h"
#include "core/pipeline.h"
#include "corpus/resume_generator.h"
#include "xml/dtd_validator.h"

namespace webre {
namespace {

class PipelineTest : public ::testing::Test {
 protected:
  PipelineTest()
      : concepts_(ResumeConcepts()),
        constraints_(ResumeConstraints()),
        recognizer_(&concepts_) {}

  std::vector<std::string> Pages(size_t n) {
    std::vector<std::string> pages;
    for (size_t i = 0; i < n; ++i) pages.push_back(GenerateResume(i).html);
    return pages;
  }

  ConceptSet concepts_;
  ConstraintSet constraints_;
  SynonymRecognizer recognizer_;
};

TEST_F(PipelineTest, EndToEndProducesSchemaAndDtd) {
  Pipeline pipeline(&concepts_, &recognizer_, &constraints_);
  PipelineResult result = pipeline.Run(Pages(60));
  EXPECT_EQ(result.documents.size(), 60u);
  EXPECT_EQ(result.convert_stats.size(), 60u);
  EXPECT_FALSE(result.schema.empty());
  EXPECT_EQ(result.schema.root().label, "resume");
  EXPECT_FALSE(result.dtd.elements().empty());
  EXPECT_EQ(result.dtd.root(), "resume");
}

TEST_F(PipelineTest, SchemaContainsCoreSections) {
  Pipeline pipeline(&concepts_, &recognizer_, &constraints_);
  PipelineResult result = pipeline.Run(Pages(80));
  // The mandatory sections are frequent across any reasonable corpus.
  EXPECT_TRUE(result.schema.ContainsPath({"resume", "EDUCATION"}));
  EXPECT_TRUE(result.schema.ContainsPath({"resume", "EXPERIENCE"}));
  EXPECT_TRUE(result.schema.ContainsPath({"resume", "SKILLS"}));
  EXPECT_TRUE(
      result.schema.ContainsPath({"resume", "SKILLS", "LANGUAGE"}));
}

TEST_F(PipelineTest, ConstraintsKeepTitleConceptsAtLevelOne) {
  Pipeline pipeline(&concepts_, &recognizer_, &constraints_);
  PipelineResult result = pipeline.Run(Pages(60));
  for (const LabelPath& path : result.schema.AllPaths()) {
    for (size_t level = 1; level < path.size(); ++level) {
      for (const std::string& title : ResumeTitleConceptNames()) {
        if (path[level] == title) {
          EXPECT_EQ(level, 1u) << JoinLabelPath(path);
        }
      }
    }
  }
}

TEST_F(PipelineTest, EmptyInput) {
  Pipeline pipeline(&concepts_, &recognizer_, &constraints_);
  PipelineResult result = pipeline.Run({});
  EXPECT_TRUE(result.documents.empty());
  EXPECT_TRUE(result.schema.empty());
  EXPECT_TRUE(result.dtd.elements().empty());
}

TEST_F(PipelineTest, MappingRaisesConformance) {
  PipelineOptions options;
  options.map_documents = true;
  options.dtd.mark_optional = true;
  options.dtd.optional_threshold = 0.9;
  Pipeline pipeline(&concepts_, &recognizer_, &constraints_, options);
  PipelineResult result = pipeline.Run(Pages(50));
  ASSERT_EQ(result.mapped_documents.size(), 50u);
  EXPECT_GE(result.conforming_after, result.conforming_before);
  EXPECT_GT(result.conforming_after, 40u);
}

TEST_F(PipelineTest, MappedDocumentsValidateIndividually) {
  PipelineOptions options;
  options.map_documents = true;
  options.dtd.mark_optional = true;
  Pipeline pipeline(&concepts_, &recognizer_, &constraints_, options);
  PipelineResult result = pipeline.Run(Pages(30));
  size_t valid = 0;
  for (const auto& doc : result.mapped_documents) {
    if (ConformsToDtd(*doc, result.dtd)) ++valid;
  }
  EXPECT_EQ(valid, result.conforming_after);
}

TEST_F(PipelineTest, ThresholdsShapeSchemaSize) {
  PipelineOptions strict;
  strict.mining.sup_threshold = 0.9;
  PipelineOptions lax;
  lax.mining.sup_threshold = 0.1;
  Pipeline strict_pipeline(&concepts_, &recognizer_, &constraints_, strict);
  Pipeline lax_pipeline(&concepts_, &recognizer_, &constraints_, lax);
  auto pages = Pages(60);
  const size_t strict_size =
      strict_pipeline.Run(pages).schema.NodeCount();
  const size_t lax_size = lax_pipeline.Run(pages).schema.NodeCount();
  EXPECT_LT(strict_size, lax_size);
}

TEST_F(PipelineTest, StatsAccumulate) {
  Pipeline pipeline(&concepts_, &recognizer_, &constraints_);
  PipelineResult result = pipeline.Run(Pages(20));
  EXPECT_GT(result.mining_stats.paths_offered, 100u);
  EXPECT_GT(result.mining_stats.trie_nodes, 10u);
  EXPECT_GT(result.mining_stats.frequent_paths, 5u);
  for (const ConvertStats& stats : result.convert_stats) {
    EXPECT_GT(stats.concept_nodes, 0u);
  }
}

}  // namespace
}  // namespace webre
