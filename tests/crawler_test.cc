#include <gtest/gtest.h>

#include "concepts/resume_domain.h"
#include "corpus/crawler.h"
#include "corpus/resume_generator.h"

namespace webre {
namespace {

class CrawlerTest : public ::testing::Test {
 protected:
  CrawlerTest() : concepts_(ResumeConcepts()) {
    options_.title_concepts = ResumeTitleConceptNames();
  }

  ConceptSet concepts_;
  CrawlerOptions options_;
};

TEST_F(CrawlerTest, ResumesScoreHigherThanDistractors) {
  TopicCrawler crawler(&concepts_, options_);
  Rng rng(1);
  double resume_min = 1e9;
  double distractor_max = -1e9;
  for (size_t i = 0; i < 10; ++i) {
    resume_min =
        std::min(resume_min, crawler.ScorePage(GenerateResume(i).html));
    distractor_max =
        std::max(distractor_max, crawler.ScorePage(GenerateDistractorPage(rng)));
  }
  EXPECT_GT(resume_min, distractor_max);
}

TEST_F(CrawlerTest, AcceptsResumesRejectsDistractors) {
  TopicCrawler crawler(&concepts_, options_);
  Rng rng(2);
  for (size_t i = 0; i < 10; ++i) {
    EXPECT_TRUE(crawler.Accept(GenerateResume(i).html)) << i;
    EXPECT_FALSE(crawler.Accept(GenerateDistractorPage(rng))) << i;
  }
}

TEST_F(CrawlerTest, CrawlFiltersMixedStream) {
  TopicCrawler crawler(&concepts_, options_);
  Rng rng(3);
  std::vector<std::string> pages;
  for (size_t i = 0; i < 8; ++i) {
    pages.push_back(GenerateResume(i).html);
    pages.push_back(GenerateDistractorPage(rng));
  }
  std::vector<std::string> accepted = crawler.Crawl(pages);
  EXPECT_EQ(accepted.size(), 8u);
}

TEST_F(CrawlerTest, EmptyPageScoresZero) {
  TopicCrawler crawler(&concepts_, options_);
  EXPECT_DOUBLE_EQ(crawler.ScorePage(""), 0.0);
  EXPECT_DOUBLE_EQ(crawler.ScorePage("<html><body></body></html>"), 0.0);
}

TEST_F(CrawlerTest, TitleBonusRaisesScore) {
  CrawlerOptions no_bonus = options_;
  no_bonus.title_bonus = 0.0;
  TopicCrawler with(&concepts_, options_);
  TopicCrawler without(&concepts_, no_bonus);
  const std::string html = GenerateResume(0).html;
  EXPECT_GT(with.ScorePage(html), without.ScorePage(html));
}

TEST_F(CrawlerTest, ThresholdControlsAcceptance) {
  CrawlerOptions strict = options_;
  strict.score_threshold = 10.0;  // impossible
  TopicCrawler crawler(&concepts_, strict);
  EXPECT_FALSE(crawler.Accept(GenerateResume(0).html));

  CrawlerOptions lax = options_;
  lax.score_threshold = 0.0;
  TopicCrawler lax_crawler(&concepts_, lax);
  Rng rng(4);
  EXPECT_TRUE(lax_crawler.Accept(GenerateDistractorPage(rng)));
}

TEST_F(CrawlerTest, DistractorsDeterministicPerRngState) {
  Rng a(7);
  Rng b(7);
  EXPECT_EQ(GenerateDistractorPage(a), GenerateDistractorPage(b));
}

}  // namespace
}  // namespace webre
