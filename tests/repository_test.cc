#include <gtest/gtest.h>

#include "concepts/resume_domain.h"
#include "corpus/resume_generator.h"
#include "mapping/document_mapper.h"
#include "repository/repository.h"
#include "restructure/converter.h"
#include "restructure/recognizer.h"
#include "schema/dtd_builder.h"
#include "schema/frequent_paths.h"

namespace webre {
namespace {

std::unique_ptr<Node> SmallDoc(const std::string& date_val) {
  auto root = Node::MakeElement("resume");
  Node* education = root->AddElement("EDUCATION");
  Node* date = education->AddElement("DATE");
  date->set_val(date_val);
  date->AddElement("INSTITUTION");
  return root;
}

TEST(RepositoryTest, AddAndRetrieve) {
  // Default mode freezes at Add: the flat form is retrievable, the
  // pointer tree is gone.
  XmlRepository repo;
  auto id = repo.Add(SmallDoc("June 1996"));
  ASSERT_TRUE(id.ok());
  EXPECT_EQ(*id, 0u);
  EXPECT_EQ(repo.size(), 1u);
  const FlatDoc* flat = repo.flat_document(0);
  ASSERT_NE(flat, nullptr);
  EXPECT_EQ(flat->name_view(0), "resume");
  EXPECT_EQ(flat->element_count(), 4u);
  EXPECT_EQ(repo.document(0), nullptr);
  EXPECT_EQ(repo.flat_document(99), nullptr);
  EXPECT_EQ(repo.document(99), nullptr);
}

TEST(RepositoryTest, AddAndRetrievePointerMode) {
  RepositoryOptions options;
  options.freeze_flat = false;
  XmlRepository repo(options);
  ASSERT_TRUE(repo.Add(SmallDoc("June 1996")).ok());
  ASSERT_NE(repo.document(0), nullptr);
  EXPECT_EQ(repo.document(0)->name(), "resume");
  EXPECT_EQ(repo.flat_document(0), nullptr);
}

TEST(RepositoryTest, FlatDocPreservesStructureAndText) {
  auto tree = SmallDoc("June 1996");
  auto flat = FlatDoc::Freeze(*tree);
  // Pre-order: resume(0) -> EDUCATION(1) -> DATE(2), INSTITUTION(3).
  ASSERT_EQ(flat->element_count(), 4u);
  EXPECT_EQ(flat->name_view(0), "resume");
  EXPECT_EQ(flat->name_view(1), "EDUCATION");
  EXPECT_EQ(flat->name_view(2), "DATE");
  EXPECT_EQ(flat->name_view(3), "INSTITUTION");
  EXPECT_EQ(flat->parent(0), FlatDoc::kNoParent);
  EXPECT_EQ(flat->parent(1), 0u);
  EXPECT_EQ(flat->parent(2), 1u);
  EXPECT_EQ(flat->parent(3), 2u);
  EXPECT_EQ(flat->depth(3), 3u);
  EXPECT_EQ(flat->subtree_end(0), 4u);
  EXPECT_EQ(flat->subtree_end(1), 4u);
  EXPECT_EQ(flat->subtree_end(2), 4u);
  EXPECT_EQ(flat->subtree_end(3), 4u);
  EXPECT_EQ(flat->val(2), "June 1996");
  EXPECT_EQ(flat->val_lowered(2), "june 1996");
  EXPECT_EQ(flat->val(0), "");
  EXPECT_TRUE(flat->ValContainsLowered(2, "june"));
  EXPECT_TRUE(flat->ValContainsLowered(2, ""));
  EXPECT_FALSE(flat->ValContainsLowered(2, "july"));
  EXPECT_GT(flat->block_bytes(), 0u);
}

TEST(RepositoryTest, RejectsNonElementRoot) {
  XmlRepository repo;
  EXPECT_FALSE(repo.Add(Node::MakeText("just text")).ok());
  EXPECT_FALSE(repo.Add(nullptr).ok());
}

TEST(RepositoryTest, PathIndexFindsDocuments) {
  XmlRepository repo;
  repo.Add(SmallDoc("a")).value();
  repo.Add(SmallDoc("b")).value();
  auto other = Node::MakeElement("resume");
  other->AddElement("SKILLS");
  repo.Add(std::move(other)).value();

  auto with_date = repo.DocumentsWithPath({"resume", "EDUCATION", "DATE"});
  EXPECT_EQ(with_date, (std::vector<DocId>{0, 1}));
  auto with_skills = repo.DocumentsWithPath({"resume", "SKILLS"});
  EXPECT_EQ(with_skills, (std::vector<DocId>{2}));
  EXPECT_TRUE(repo.DocumentsWithPath({"resume", "NOPE"}).empty());
}

TEST(RepositoryTest, SimpleQueryUsesIndex) {
  XmlRepository repo;
  repo.Add(SmallDoc("June 1996")).value();
  repo.Add(SmallDoc("May 1998")).value();
  auto matches = repo.Query("/resume/EDUCATION/DATE");
  ASSERT_TRUE(matches.ok());
  ASSERT_EQ(matches->size(), 2u);
  EXPECT_EQ((*matches)[0].doc, 0u);
  EXPECT_EQ((*matches)[0].val(), "June 1996");
  EXPECT_EQ(NameTable::Global().NameOf((*matches)[0].name()), "DATE");
  EXPECT_EQ((*matches)[1].doc, 1u);
}

TEST(RepositoryTest, PredicateQueryAcrossDocuments) {
  XmlRepository repo;
  repo.Add(SmallDoc("June 1996")).value();
  repo.Add(SmallDoc("May 1998")).value();
  auto matches = repo.Query("//DATE[val~\"1998\"]");
  ASSERT_TRUE(matches.ok());
  ASSERT_EQ(matches->size(), 1u);
  EXPECT_EQ((*matches)[0].doc, 1u);
}

TEST(RepositoryTest, DocumentsWithPathMissReturnsSharedSentinel) {
  XmlRepository repo;
  repo.Add(SmallDoc("x")).value();
  // Misses return a reference to one shared empty vector — no per-call
  // allocation, and the identity is observable.
  const std::vector<DocId>& miss1 = repo.DocumentsWithPath({"resume", "NO"});
  const std::vector<DocId>& miss2 = repo.DocumentsWithPath({"NOPE"});
  EXPECT_TRUE(miss1.empty());
  EXPECT_EQ(&miss1, &miss2);
  // A label no document ever used takes the same path.
  const std::vector<DocId>& miss3 =
      repo.DocumentsWithPath({"never-interned-label"});
  EXPECT_EQ(&miss1, &miss3);
}

TEST(RepositoryTest, ShardCountDoesNotChangeResults) {
  for (size_t shards : {1u, 2u, 3u, 5u}) {
    RepositoryOptions options;
    options.num_shards = shards;
    XmlRepository repo(options);
    EXPECT_EQ(repo.num_shards(), shards);
    for (size_t i = 0; i < 7; ++i) {
      repo.Add(SmallDoc("date " + std::to_string(i))).value();
    }
    auto matches = repo.Query("/resume/EDUCATION/DATE");
    ASSERT_TRUE(matches.ok());
    ASSERT_EQ(matches->size(), 7u) << shards << " shards";
    for (size_t i = 0; i < 7; ++i) {
      EXPECT_EQ((*matches)[i].doc, i) << shards << " shards";
      EXPECT_EQ((*matches)[i].val(), "date " + std::to_string(i));
    }
    EXPECT_EQ(repo.Stats().documents, 7u);
    EXPECT_EQ(repo.Stats().elements, 28u);
  }
}

TEST(RepositoryTest, QueryStatsClassifyPlans) {
  RepositoryOptions options;
  options.num_shards = 2;
  XmlRepository repo(options);
  repo.Add(SmallDoc("June 1996")).value();
  repo.Add(SmallDoc("May 1998")).value();

  // Structural / final-predicate queries come from the summary.
  repo.Query("/resume/EDUCATION/DATE").value();
  repo.Query("//DATE[val~\"1996\"]").value();
  obs::QueryStatsView stats = repo.query_stats();
  EXPECT_EQ(stats.queries, 2u);
  EXPECT_EQ(stats.index_hits, 2u);
  EXPECT_EQ(stats.prefix_hits, 0u);
  EXPECT_EQ(stats.fallback_walks, 0u);

  EXPECT_EQ(stats.flat_scans, 0u);  // summary plans never evaluate docs

  // An intermediate predicate behind a simple prefix seeds from the
  // summary and evaluates only the suffix (flat evaluator by default).
  repo.Query("/resume/EDUCATION[val~\"x\"]/DATE").value();
  stats = repo.query_stats();
  EXPECT_EQ(stats.prefix_hits, 1u);
  EXPECT_EQ(stats.fallback_walks, 0u);
  EXPECT_EQ(stats.flat_scans, 2u);  // both documents, via FlatDoc

  // No usable prefix and an intermediate predicate: full per-document
  // evaluation.
  repo.Query("//EDUCATION[val~\"x\"]/DATE").value();
  stats = repo.query_stats();
  EXPECT_EQ(stats.fallback_walks, 2u);  // both documents evaluated
  EXPECT_EQ(stats.flat_scans, 4u);      // …again through the flat path
  EXPECT_EQ(stats.queries, 4u);
  EXPECT_EQ(stats.eval_us.count, 4u);
}

TEST(RepositoryTest, MalformedQueryReportsError) {
  XmlRepository repo;
  repo.Add(SmallDoc("x")).value();
  EXPECT_FALSE(repo.Query("not-a-query").ok());
}

TEST(RepositoryTest, StatsCountEverything) {
  XmlRepository repo;
  repo.Add(SmallDoc("a")).value();
  repo.Add(SmallDoc("b")).value();
  RepositoryStats stats = repo.Stats();
  EXPECT_EQ(stats.documents, 2u);
  EXPECT_EQ(stats.elements, 8u);       // 4 per doc
  EXPECT_EQ(stats.distinct_paths, 4u); // shared across docs
  EXPECT_GT(stats.flat_bytes, 0u);     // frozen blocks are accounted

  RepositoryOptions no_flat;
  no_flat.freeze_flat = false;
  XmlRepository pointer_repo(no_flat);
  pointer_repo.Add(SmallDoc("a")).value();
  EXPECT_EQ(pointer_repo.Stats().flat_bytes, 0u);
}

TEST(RepositoryTest, DtdGateRejectsNonConforming) {
  Dtd dtd;
  dtd.set_root("resume");
  ElementDecl resume;
  resume.name = "resume";
  resume.content =
      ContentParticle::Sequence({ContentParticle::Element("EDUCATION")});
  dtd.AddElement(resume);
  ElementDecl education;
  education.name = "EDUCATION";
  education.pcdata_only = true;
  dtd.AddElement(education);

  XmlRepository repo;
  repo.SetDtd(dtd);
  // SmallDoc has DATE under EDUCATION: not (#PCDATA).
  auto rejected = repo.Add(SmallDoc("x"));
  EXPECT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), StatusCode::kFailedPrecondition);

  auto ok_doc = Node::MakeElement("resume");
  ok_doc->AddElement("EDUCATION");
  EXPECT_TRUE(repo.Add(std::move(ok_doc)).ok());
  EXPECT_EQ(repo.size(), 1u);
}

TEST(RepositoryTest, EndToEndWithPipelineDocuments) {
  // Convert a corpus, derive the DTD, map documents, load the repository
  // with the DTD gate on, and query it — the paper's full integration
  // story.
  ConceptSet concepts = ResumeConcepts();
  ConstraintSet constraints = ResumeConstraints();
  SynonymRecognizer recognizer(&concepts);
  DocumentConverter converter(&concepts, &recognizer, &constraints);

  MiningOptions mining;
  mining.constraints = &constraints;
  FrequentPathMiner miner(mining);
  std::vector<std::unique_ptr<Node>> docs;
  for (size_t i = 0; i < 40; ++i) {
    docs.push_back(converter.Convert(GenerateResume(i).html));
    miner.AddDocument(*docs.back());
  }
  MajoritySchema schema = miner.Discover();
  DtdBuildOptions dtd_options;
  dtd_options.mark_optional = true;
  Dtd dtd = BuildDtd(schema, dtd_options);

  XmlRepository repo;
  repo.SetDtd(dtd);
  size_t admitted = 0;
  for (const auto& doc : docs) {
    ConformResult mapped = ConformToSchema(*doc, schema, dtd);
    if (repo.Add(std::move(mapped.document)).ok()) ++admitted;
  }
  EXPECT_EQ(admitted, 40u);

  auto dates = repo.Query("/resume/EDUCATION/DATE");
  ASSERT_TRUE(dates.ok());
  EXPECT_GT(dates->size(), 40u);  // multiple entries per resume

  auto languages = repo.Query("//LANGUAGE[val~\"java\"]");
  ASSERT_TRUE(languages.ok());
  EXPECT_GT(languages->size(), 5u);
}

TEST(RepositoryTest, DiscoverSchemaOverStoredDocuments) {
  ConceptSet concepts = ResumeConcepts();
  ConstraintSet constraints = ResumeConstraints();
  SynonymRecognizer recognizer(&concepts);
  DocumentConverter converter(&concepts, &recognizer, &constraints);
  XmlRepository repo;
  for (size_t i = 0; i < 30; ++i) {
    ASSERT_TRUE(
        repo.Add(converter.Convert(GenerateResume(i).html)).ok());
  }
  MiningOptions options;
  options.constraints = &constraints;
  MajoritySchema schema = repo.DiscoverSchema(options);
  EXPECT_EQ(schema.root().label, "resume");
  EXPECT_TRUE(schema.ContainsPath({"resume", "EDUCATION"}));
  // The repository's distinct-path count is its Data Guide size: at
  // least as large as any majority schema.
  EXPECT_GE(repo.Stats().distinct_paths, schema.NodeCount());
}

}  // namespace
}  // namespace webre
