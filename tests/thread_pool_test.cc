#include "util/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <string>
#include <vector>

namespace webre {
namespace {

TEST(ThreadPoolTest, RunsEverySubmittedTask) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, WaitIsReusableAcrossBatches) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  for (int batch = 0; batch < 3; ++batch) {
    for (int i = 0; i < 10; ++i) {
      pool.Submit([&counter] { counter.fetch_add(1); });
    }
    pool.Wait();
    EXPECT_EQ(counter.load(), (batch + 1) * 10);
  }
}

TEST(ThreadPoolTest, WaitOnIdlePoolReturnsImmediately) {
  ThreadPool pool(2);
  pool.Wait();  // no tasks submitted — must not hang
  SUCCEED();
}

TEST(ThreadPoolTest, DestructionWithoutWaitDrainsCleanly) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(3);
    for (int i = 0; i < 20; ++i) {
      pool.Submit([&counter] { counter.fetch_add(1); });
    }
    pool.Wait();
  }
  EXPECT_EQ(counter.load(), 20);
}

TEST(ThreadPoolTest, ZeroThreadsMeansHardwareDefault) {
  ThreadPool pool(0);
  EXPECT_GE(pool.num_threads(), 1u);
  EXPECT_EQ(pool.num_threads(), DefaultThreadCount());
}

TEST(ThreadPoolTest, SurvivesThrowingTask) {
  // An exception escaping a std::thread is std::terminate; the pool must
  // absorb it, record it, and keep serving the rest of the batch.
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  pool.Submit([] { throw std::runtime_error("task exploded"); });
  for (int i = 0; i < 50; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 50);
  EXPECT_EQ(pool.failed_task_count(), 1u);
  EXPECT_EQ(pool.first_failure_message(), "task exploded");
}

TEST(ThreadPoolTest, RecordsFirstFailureOfMany) {
  ThreadPool pool(1);  // one worker => deterministic task order
  pool.Submit([] { throw std::runtime_error("first"); });
  pool.Submit([] { throw std::runtime_error("second"); });
  pool.Wait();
  EXPECT_EQ(pool.failed_task_count(), 2u);
  EXPECT_EQ(pool.first_failure_message(), "first");
}

TEST(ThreadPoolTest, CapturesEveryFailureMessageInOrder) {
  ThreadPool pool(1);  // one worker => deterministic capture order
  pool.Submit([] { throw std::runtime_error("alpha"); });
  pool.Submit([] { throw std::runtime_error("beta"); });
  pool.Submit([] { throw std::runtime_error("gamma"); });
  pool.Wait();
  EXPECT_EQ(pool.failed_task_count(), 3u);
  const std::vector<std::string> messages = pool.failure_messages();
  ASSERT_EQ(messages.size(), 3u);
  EXPECT_EQ(messages[0], "alpha");
  EXPECT_EQ(messages[1], "beta");
  EXPECT_EQ(messages[2], "gamma");
  EXPECT_EQ(pool.first_failure_message(), "alpha");
}

TEST(ThreadPoolTest, FailureMessagesBoundedButCountExact) {
  ThreadPool pool(1);
  const size_t total = ThreadPool::kMaxFailureMessages + 10;
  for (size_t i = 0; i < total; ++i) {
    pool.Submit([i] { throw std::runtime_error("boom " + std::to_string(i)); });
  }
  pool.Wait();
  // Storage is capped at the first kMaxFailureMessages, but the count
  // keeps tracking every failure.
  EXPECT_EQ(pool.failed_task_count(), total);
  const std::vector<std::string> messages = pool.failure_messages();
  ASSERT_EQ(messages.size(), ThreadPool::kMaxFailureMessages);
  for (size_t i = 0; i < messages.size(); ++i) {
    EXPECT_EQ(messages[i], "boom " + std::to_string(i));
  }
}

TEST(ThreadPoolTest, FailureMessagesEmptyOnCleanBatch) {
  ThreadPool pool(2);
  for (int i = 0; i < 10; ++i) pool.Submit([] {});
  pool.Wait();
  EXPECT_TRUE(pool.failure_messages().empty());
}

TEST(ThreadPoolTest, SurvivesNonStdException) {
  ThreadPool pool(2);
  pool.Submit([] { throw 42; });
  pool.Wait();
  EXPECT_EQ(pool.failed_task_count(), 1u);
  EXPECT_EQ(pool.first_failure_message(), "unknown exception");
}

TEST(ThreadPoolTest, PoolRemainsUsableAfterFailure) {
  ThreadPool pool(2);
  pool.Submit([] { throw std::runtime_error("boom"); });
  pool.Wait();
  std::atomic<int> counter{0};
  for (int i = 0; i < 10; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 10);
  EXPECT_EQ(pool.failed_task_count(), 1u);
}

TEST(ParallelForTest, CoversExactlyTheRangeOnce) {
  for (size_t threads : {1u, 2u, 4u, 8u}) {
    for (size_t chunk : {1u, 3u, 16u, 1000u}) {
      const size_t count = 237;
      std::vector<std::atomic<int>> hits(count);
      ParallelOptions options;
      options.num_threads = threads;
      options.chunk_size = chunk;
      ParallelFor(count, options, [&](size_t begin, size_t end) {
        ASSERT_LE(begin, end);
        ASSERT_LE(end, count);
        for (size_t i = begin; i < end; ++i) hits[i].fetch_add(1);
      });
      for (size_t i = 0; i < count; ++i) {
        EXPECT_EQ(hits[i].load(), 1) << "threads=" << threads
                                     << " chunk=" << chunk << " i=" << i;
      }
    }
  }
}

TEST(ParallelForTest, EmptyRangeIsANoOp) {
  ParallelOptions options;
  options.num_threads = 4;
  bool called = false;
  ParallelFor(0, options, [&](size_t, size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ParallelForTest, SerialConfigurationRunsInline) {
  // num_threads = 1 must run on the calling thread (observable via
  // thread id) so the serial path has no scheduling overhead.
  const std::thread::id caller = std::this_thread::get_id();
  ParallelOptions options;
  options.num_threads = 1;
  std::thread::id seen;
  ParallelFor(50, options,
              [&](size_t, size_t) { seen = std::this_thread::get_id(); });
  EXPECT_EQ(seen, caller);
}

TEST(ParallelForTest, PooledOverloadComputesSameSum) {
  ThreadPool pool(4);
  std::vector<int> values(1000);
  std::iota(values.begin(), values.end(), 1);
  std::atomic<long long> sum{0};
  ParallelFor(pool, values.size(), 7, [&](size_t begin, size_t end) {
    long long local = 0;
    for (size_t i = begin; i < end; ++i) local += values[i];
    sum.fetch_add(local);
  });
  EXPECT_EQ(sum.load(), 1000LL * 1001 / 2);
}

}  // namespace
}  // namespace webre
