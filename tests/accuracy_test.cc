#include <gtest/gtest.h>

#include "restructure/accuracy.h"

namespace webre {
namespace {

std::unique_ptr<Node> Tree(
    const std::string& name,
    std::vector<std::unique_ptr<Node>> children = {}) {
  auto node = Node::MakeElement(name);
  for (auto& child : children) node->AddChild(std::move(child));
  return node;
}

std::vector<std::unique_ptr<Node>> Kids() { return {}; }

template <typename... Rest>
std::vector<std::unique_ptr<Node>> Kids(std::unique_ptr<Node> first,
                                        Rest... rest) {
  std::vector<std::unique_ptr<Node>> out = Kids(std::move(rest)...);
  out.insert(out.begin(), std::move(first));
  return out;
}

TEST(AccuracyTest, IdenticalTreesZeroErrors) {
  auto a = Tree("resume",
                Kids(Tree("EDUCATION", Kids(Tree("DATE"), Tree("DATE"))),
                     Tree("SKILLS")));
  auto b = Tree("resume",
                Kids(Tree("EDUCATION", Kids(Tree("DATE"), Tree("DATE"))),
                     Tree("SKILLS")));
  AccuracyReport report = CompareTrees(*a, *b);
  EXPECT_EQ(report.logical_errors, 0u);
  EXPECT_EQ(report.concept_nodes, 4u);
  EXPECT_EQ(report.ErrorPercent(), 0.0);
}

TEST(AccuracyTest, ValDifferencesIgnored) {
  auto a = Tree("resume", Kids(Tree("DATE")));
  a->child(0)->set_val("June 1996");
  auto b = Tree("resume", Kids(Tree("DATE")));
  b->child(0)->set_val("completely different");
  EXPECT_EQ(CompareTrees(*a, *b).logical_errors, 0u);
}

TEST(AccuracyTest, ExtraNodeIsOneError) {
  auto extracted =
      Tree("resume", Kids(Tree("EDUCATION"), Tree("LOCATION")));
  auto truth = Tree("resume", Kids(Tree("EDUCATION")));
  EXPECT_EQ(CompareTrees(*extracted, *truth).logical_errors, 1u);
}

TEST(AccuracyTest, MissingNodeIsOneError) {
  auto extracted = Tree("resume", Kids(Tree("EDUCATION")));
  auto truth = Tree("resume", Kids(Tree("EDUCATION"), Tree("SKILLS")));
  EXPECT_EQ(CompareTrees(*extracted, *truth).logical_errors, 1u);
}

TEST(AccuracyTest, ContiguousRunCountsOnce) {
  // §4.1: "we may move a node and its siblings together ... counted as
  // one logical error."
  auto extracted = Tree("resume", Kids(Tree("A"), Tree("X"), Tree("Y"),
                                       Tree("Z"), Tree("B")));
  auto truth = Tree("resume", Kids(Tree("A"), Tree("B")));
  EXPECT_EQ(CompareTrees(*extracted, *truth).logical_errors, 1u);
}

TEST(AccuracyTest, SeparatedExtrasCountSeparately) {
  auto extracted = Tree("resume", Kids(Tree("X"), Tree("A"), Tree("Y"),
                                       Tree("B"), Tree("Z")));
  auto truth = Tree("resume", Kids(Tree("A"), Tree("B")));
  EXPECT_EQ(CompareTrees(*extracted, *truth).logical_errors, 3u);
}

TEST(AccuracyTest, MovedGroupChargedOnce) {
  // A group moved from EDUCATION to EXPERIENCE: unmatched under both
  // parents, but max() per node charges the move once per side pairing.
  auto extracted =
      Tree("resume", Kids(Tree("EDUCATION"),
                          Tree("EXPERIENCE", Kids(Tree("DATE")))));
  auto truth =
      Tree("resume", Kids(Tree("EDUCATION", Kids(Tree("DATE"))),
                          Tree("EXPERIENCE")));
  EXPECT_EQ(CompareTrees(*extracted, *truth).logical_errors, 2u);
}

TEST(AccuracyTest, NestedErrorsAccumulate) {
  auto extracted = Tree(
      "resume", Kids(Tree("EDUCATION",
                          Kids(Tree("DATE", Kids(Tree("LOCATION")))))));
  auto truth = Tree("resume", Kids(Tree("EDUCATION", Kids(Tree("DATE")))));
  EXPECT_EQ(CompareTrees(*extracted, *truth).logical_errors, 1u);
}

TEST(AccuracyTest, OrderRespectedByLcs) {
  // Same multiset of children, different order: the LCS can only match
  // one of the two, so the swap costs at least one error.
  auto extracted = Tree("resume", Kids(Tree("SKILLS"), Tree("EDUCATION")));
  auto truth = Tree("resume", Kids(Tree("EDUCATION"), Tree("SKILLS")));
  EXPECT_GE(CompareTrees(*extracted, *truth).logical_errors, 1u);
}

TEST(AccuracyTest, RootNameMismatchCounts) {
  auto extracted = Tree("cv");
  auto truth = Tree("resume");
  EXPECT_EQ(CompareTrees(*extracted, *truth).logical_errors, 1u);
}

TEST(AccuracyTest, ErrorPercentUsesConceptNodes) {
  auto extracted = Tree(
      "resume",
      Kids(Tree("A"), Tree("B"), Tree("C"), Tree("D"), Tree("X")));
  auto truth =
      Tree("resume", Kids(Tree("A"), Tree("B"), Tree("C"), Tree("D")));
  AccuracyReport report = CompareTrees(*extracted, *truth);
  EXPECT_EQ(report.concept_nodes, 5u);
  EXPECT_EQ(report.logical_errors, 1u);
  EXPECT_NEAR(report.ErrorPercent(), 20.0, 1e-9);
}

TEST(AccuracyTest, RepeatedLabelsAlignInOrder) {
  // Three DATE entries vs two: one unmatched run.
  auto extracted = Tree(
      "resume",
      Kids(Tree("DATE", Kids(Tree("DEGREE"))),
           Tree("DATE", Kids(Tree("DEGREE"))), Tree("DATE")));
  auto truth = Tree("resume", Kids(Tree("DATE", Kids(Tree("DEGREE"))),
                                   Tree("DATE", Kids(Tree("DEGREE")))));
  EXPECT_EQ(CompareTrees(*extracted, *truth).logical_errors, 1u);
}

TEST(AccuracyTest, TextChildrenIgnored) {
  auto extracted = Tree("resume", Kids(Tree("A")));
  extracted->AddText("some text");
  auto truth = Tree("resume", Kids(Tree("A")));
  EXPECT_EQ(CompareTrees(*extracted, *truth).logical_errors, 0u);
}

}  // namespace
}  // namespace webre
