// Unit coverage for ResourceLimits/ResourceBudget and for each guarded
// entry point: every cap must turn its hostile input into a
// kResourceExhausted Status, and Unlimited() must never trip.

#include "util/resource_limits.h"

#include <gtest/gtest.h>

#include <limits>
#include <string>

#include "html/lexer.h"
#include "html/parser.h"
#include "html/tidy.h"
#include "restructure/converter.h"
#include "restructure/recognizer.h"
#include "xml/node.h"
#include "xml/reader.h"

namespace webre {
namespace {

std::string Repeat(const std::string& piece, size_t n) {
  std::string out;
  out.reserve(piece.size() * n);
  for (size_t i = 0; i < n; ++i) out += piece;
  return out;
}

TEST(ResourceBudgetTest, ChargeInputChecksCap) {
  ResourceLimits limits;
  limits.max_input_bytes = 100;
  ResourceBudget budget(limits);
  EXPECT_TRUE(budget.ChargeInput(100).ok());
  EXPECT_EQ(budget.ChargeInput(101).code(), StatusCode::kResourceExhausted);
}

TEST(ResourceBudgetTest, ChargeStepsAccumulates) {
  ResourceLimits limits;
  limits.max_steps = 10;
  ResourceBudget budget(limits);
  EXPECT_TRUE(budget.ChargeSteps(6).ok());
  EXPECT_TRUE(budget.ChargeSteps(4).ok());
  EXPECT_EQ(budget.steps_used(), 10u);
  EXPECT_EQ(budget.ChargeSteps(1).code(), StatusCode::kResourceExhausted);
}

TEST(ResourceBudgetTest, ChargeStepsSurvivesOverflow) {
  ResourceLimits limits;
  limits.max_steps = std::numeric_limits<size_t>::max() - 1;
  ResourceBudget budget(limits);
  EXPECT_TRUE(budget.ChargeSteps(limits.max_steps).ok());
  // Wrapping past zero must fail, not succeed with a tiny counter.
  EXPECT_EQ(budget.ChargeSteps(100).code(), StatusCode::kResourceExhausted);
}

TEST(ResourceBudgetTest, ChargeNodesAccumulates) {
  ResourceLimits limits;
  limits.max_node_count = 3;
  ResourceBudget budget(limits);
  EXPECT_TRUE(budget.ChargeNodes(2).ok());
  EXPECT_TRUE(budget.ChargeNodes(1).ok());
  EXPECT_EQ(budget.ChargeNodes(1).code(), StatusCode::kResourceExhausted);
}

TEST(ResourceBudgetTest, ChargeEntityAccumulates) {
  ResourceLimits limits;
  limits.max_entity_expansions = 2;
  ResourceBudget budget(limits);
  EXPECT_TRUE(budget.ChargeEntity().ok());
  EXPECT_TRUE(budget.ChargeEntity().ok());
  EXPECT_EQ(budget.ChargeEntity().code(), StatusCode::kResourceExhausted);
}

TEST(ResourceBudgetTest, ChecksDoNotAccumulate) {
  ResourceLimits limits;
  limits.max_node_count = 10;
  limits.max_tree_depth = 5;
  ResourceBudget budget(limits);
  for (int i = 0; i < 100; ++i) {
    EXPECT_TRUE(budget.CheckNodeCount(10).ok());
    EXPECT_TRUE(budget.CheckDepth(5).ok());
  }
  EXPECT_EQ(budget.CheckNodeCount(11).code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(budget.CheckDepth(6).code(), StatusCode::kResourceExhausted);
}

TEST(ResourceBudgetTest, UnlimitedNeverTrips) {
  ResourceBudget budget(ResourceLimits::Unlimited());
  EXPECT_TRUE(budget.ChargeInput(1u << 30).ok());
  for (int i = 0; i < 1000; ++i) {
    EXPECT_TRUE(budget.ChargeSteps(1u << 20).ok());
    EXPECT_TRUE(budget.ChargeNodes(1u << 20).ok());
    EXPECT_TRUE(budget.ChargeEntity().ok());
  }
}

TEST(GuardedLexerTest, InputSizeCap) {
  ResourceLimits limits;
  limits.max_input_bytes = 64;
  ResourceBudget budget(limits);
  std::vector<HtmlToken> tokens;
  Status status = TokenizeHtml(std::string(65, 'a'), budget, tokens);
  EXPECT_EQ(status.code(), StatusCode::kResourceExhausted);
}

TEST(GuardedLexerTest, EntityCap) {
  ResourceLimits limits;
  limits.max_entity_expansions = 10;
  ResourceBudget budget(limits);
  std::vector<HtmlToken> tokens;
  Status status = TokenizeHtml(Repeat("&amp;", 11), budget, tokens);
  EXPECT_EQ(status.code(), StatusCode::kResourceExhausted);
}

TEST(GuardedLexerTest, CleanInputMatchesLegacy) {
  const std::string html =
      "<html><body><p class=\"x\">a &amp; b</p><!-- c --></body></html>";
  ResourceBudget budget(ResourceLimits::Unlimited());
  std::vector<HtmlToken> guarded;
  ASSERT_TRUE(TokenizeHtml(html, budget, guarded).ok());
  std::vector<HtmlToken> legacy = TokenizeHtml(html);
  ASSERT_EQ(guarded.size(), legacy.size());
  for (size_t i = 0; i < guarded.size(); ++i) {
    EXPECT_EQ(guarded[i].type, legacy[i].type) << i;
    EXPECT_EQ(guarded[i].text(), legacy[i].text()) << i;
  }
}

TEST(GuardedParserTest, DepthCap) {
  ResourceLimits limits;
  limits.max_tree_depth = 16;
  ResourceBudget budget(limits);
  const std::string html = Repeat("<div>", 20) + "x" + Repeat("</div>", 20);
  StatusOr<std::unique_ptr<Node>> tree =
      ParseHtml(html, HtmlParseOptions{}, budget);
  EXPECT_EQ(tree.status().code(), StatusCode::kResourceExhausted);
}

TEST(GuardedParserTest, NodeCap) {
  ResourceLimits limits;
  limits.max_node_count = 50;
  ResourceBudget budget(limits);
  const std::string html = Repeat("<p>x</p>", 100);
  StatusOr<std::unique_ptr<Node>> tree =
      ParseHtml(html, HtmlParseOptions{}, budget);
  EXPECT_EQ(tree.status().code(), StatusCode::kResourceExhausted);
}

TEST(GuardedParserTest, DepthJustUnderCapSucceeds) {
  ResourceLimits limits;
  limits.max_tree_depth = 32;
  ResourceBudget budget(limits);
  const std::string html = Repeat("<div>", 30) + "x" + Repeat("</div>", 30);
  StatusOr<std::unique_ptr<Node>> tree =
      ParseHtml(html, HtmlParseOptions{}, budget);
  ASSERT_TRUE(tree.ok()) << tree.status().message();
  const TreeStats stats = MeasureTree(*tree.value());
  EXPECT_LE(stats.max_depth, 32u);
}

// The documented invariant is MeasureTree depth, which counts text and
// #comment children too: an element at exactly max_tree_depth must not
// smuggle in a child one level deeper, or the guarded TidyHtmlTree
// would reject a tree the parser just accepted.
TEST(GuardedParserTest, TextAtExactCapChargedAgainstDepth) {
  ResourceLimits limits;
  limits.max_tree_depth = 3;
  ResourceBudget budget(limits);
  // html(0) > div(1) > div(2) > div(3) > text(4): the divs fit the cap
  // but the text child is one deeper, so the parse must fail.
  const std::string html = Repeat("<div>", 3) + "x" + Repeat("</div>", 3);
  StatusOr<std::unique_ptr<Node>> tree =
      ParseHtml(html, HtmlParseOptions{}, budget);
  EXPECT_EQ(tree.status().code(), StatusCode::kResourceExhausted);
}

TEST(GuardedParserTest, AcceptedTreeSatisfiesTidyDepthCheck) {
  ResourceLimits limits;
  limits.max_tree_depth = 4;
  ResourceBudget budget(limits);
  const std::string html = Repeat("<div>", 3) + "x" + Repeat("</div>", 3);
  StatusOr<std::unique_ptr<Node>> tree =
      ParseHtml(html, HtmlParseOptions{}, budget);
  ASSERT_TRUE(tree.ok()) << tree.status().message();
  EXPECT_LE(MeasureTree(*tree.value()).max_depth, 4u);
  // A fresh budget with the same limits accepts what the parser emitted.
  ResourceBudget tidy_budget(limits);
  EXPECT_TRUE(TidyHtmlTree(tree.value().get(), TidyOptions{}, tidy_budget).ok());
}

TEST(GuardedTidyTest, RespectsNodeCap) {
  std::unique_ptr<Node> tree =
      ParseHtml(Repeat("<p>x</p>", 100), HtmlParseOptions{});
  ResourceLimits limits;
  limits.max_node_count = 10;
  ResourceBudget budget(limits);
  Status status = TidyHtmlTree(tree.get(), TidyOptions{}, budget);
  EXPECT_EQ(status.code(), StatusCode::kResourceExhausted);
}

TEST(XmlReaderTest, DepthCap) {
  XmlReadOptions options;
  options.limits.max_tree_depth = 16;
  const std::string xml =
      "<r>" + Repeat("<a>", 20) + "x" + Repeat("</a>", 20) + "</r>";
  StatusOr<std::unique_ptr<Node>> tree = ParseXml(xml, options);
  EXPECT_EQ(tree.status().code(), StatusCode::kResourceExhausted);
}

TEST(XmlReaderTest, InputCap) {
  XmlReadOptions options;
  options.limits.max_input_bytes = 32;
  StatusOr<std::unique_ptr<Node>> tree =
      ParseXml("<r>" + std::string(64, 'x') + "</r>", options);
  EXPECT_EQ(tree.status().code(), StatusCode::kResourceExhausted);
}

TEST(XmlReaderTest, SurrogateReferenceRejected) {
  StatusOr<std::unique_ptr<Node>> tree = ParseXml("<r>&#xD800;</r>");
  EXPECT_FALSE(tree.ok());
}

TEST(XmlReaderTest, HugeNumericReferenceRejected) {
  // Must not wrap around uint32 back into the valid range.
  StatusOr<std::unique_ptr<Node>> tree =
      ParseXml("<r>&#x10000000041;</r>");
  EXPECT_FALSE(tree.ok());
}

TEST(XmlReaderTest, DefaultLimitsAcceptNormalDocuments) {
  StatusOr<std::unique_ptr<Node>> tree =
      ParseXml("<r><a>1</a><b attr=\"v\">2</b></r>");
  ASSERT_TRUE(tree.ok()) << tree.status().message();
  EXPECT_EQ(tree.value()->name(), "r");
}

TEST(TreeStatsTest, MeasuresCountAndDepthIteratively) {
  std::unique_ptr<Node> tree =
      ParseHtml("<a><b><c>x</c></b><d>y</d></a>", HtmlParseOptions{});
  const TreeStats stats = MeasureTree(*tree);
  // #root + a + b + c + text + d + text = 7 nodes; deepest is the text
  // under c at depth 4.
  EXPECT_EQ(stats.node_count, 7u);
  EXPECT_EQ(stats.max_depth, 4u);
}

class GuardedConverterTest : public ::testing::Test {
 protected:
  GuardedConverterTest() : recognizer_(&concepts_) {}

  DocumentConverter MakeConverter(const ResourceLimits& limits) {
    ConvertOptions options;
    options.limits = limits;
    return DocumentConverter(&concepts_, &recognizer_, nullptr, options);
  }

  ConceptSet concepts_;
  SynonymRecognizer recognizer_;
};

TEST_F(GuardedConverterTest, TokensPerTextCap) {
  ResourceLimits limits;
  limits.max_tokens_per_text = 8;
  DocumentConverter converter = MakeConverter(limits);
  std::string stage;
  StatusOr<std::unique_ptr<Node>> result = converter.TryConvert(
      "<p>" + Repeat("word;", 20) + "</p>", nullptr, &stage);
  EXPECT_EQ(result.status().code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(stage, "tokenize");
}

TEST_F(GuardedConverterTest, ParseStageReported) {
  ResourceLimits limits;
  limits.max_tree_depth = 4;
  DocumentConverter converter = MakeConverter(limits);
  std::string stage;
  StatusOr<std::unique_ptr<Node>> result = converter.TryConvert(
      Repeat("<div>", 10) + "x" + Repeat("</div>", 10), nullptr, &stage);
  EXPECT_EQ(result.status().code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(stage, "parse");
}

TEST_F(GuardedConverterTest, NullTreeIsInvalidArgument) {
  DocumentConverter converter = MakeConverter(ResourceLimits{});
  std::string stage;
  StatusOr<std::unique_ptr<Node>> result =
      converter.TryConvertTree(nullptr, nullptr, &stage);
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(stage, "parse");
}

TEST_F(GuardedConverterTest, CleanInputConvertsUnderDefaults) {
  DocumentConverter converter = MakeConverter(ResourceLimits{});
  ConvertStats stats;
  StatusOr<std::unique_ptr<Node>> result = converter.TryConvert(
      "<html><body><h1>Resume</h1><p>John; Smith</p></body></html>", &stats);
  ASSERT_TRUE(result.ok()) << result.status().message();
  // The fixture's concept set is empty, so no concept nodes survive
  // consolidation — but tokenization must have run under the guards.
  EXPECT_GT(stats.tokens_created, 0u);
  EXPECT_NE(result.value(), nullptr);
}

TEST(DeepTreeDestructionTest, IterativeDestructorHandlesDeepTrees) {
  // Builds a 200k-deep linked tree directly (bypassing parse caps) and
  // lets it go out of scope: a recursive ~Node would blow the stack.
  std::unique_ptr<Node> root = Node::MakeElement("a");
  Node* tip = root.get();
  for (int i = 0; i < 200000; ++i) {
    tip = tip->AddChild(Node::MakeElement("a"));
  }
  root.reset();
  SUCCEED();
}

}  // namespace
}  // namespace webre
