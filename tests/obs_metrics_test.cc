// The observability primitives: sharded Counter, CAS MaxGauge, atomic
// Histogram, StageTimer. The concurrency tests hammer each primitive
// from many threads and assert the merged totals are exact once writers
// quiesce — the contract PipelineMetrics is built on.

#include "obs/metrics.h"

#include <thread>
#include <vector>

#include "gtest/gtest.h"

namespace webre {
namespace obs {
namespace {

TEST(Counter, StartsAtZeroAndAdds) {
  Counter counter;
  EXPECT_EQ(counter.value(), 0u);
  counter.Add(5);
  counter.Increment();
  EXPECT_EQ(counter.value(), 6u);
  counter.Reset();
  EXPECT_EQ(counter.value(), 0u);
}

TEST(Counter, ConcurrentWritersSumExactly) {
  Counter counter;
  constexpr size_t kThreads = 8;
  constexpr size_t kIterations = 100000;
  std::vector<std::thread> threads;
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counter] {
      for (size_t i = 0; i < kIterations; ++i) counter.Increment();
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(counter.value(), kThreads * kIterations);
}

TEST(MaxGauge, TracksMaximum) {
  MaxGauge gauge;
  EXPECT_EQ(gauge.value(), 0u);
  gauge.Record(7);
  gauge.Record(3);
  EXPECT_EQ(gauge.value(), 7u);
  gauge.Record(100);
  EXPECT_EQ(gauge.value(), 100u);
  gauge.Reset();
  EXPECT_EQ(gauge.value(), 0u);
}

TEST(MaxGauge, ConcurrentRecordsKeepGlobalMax) {
  MaxGauge gauge;
  constexpr size_t kThreads = 8;
  std::vector<std::thread> threads;
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&gauge, t] {
      for (size_t i = 0; i < 10000; ++i) gauge.Record(t * 10000 + i);
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(gauge.value(), (kThreads - 1) * 10000 + 9999);
}

TEST(Histogram, RecordsCountSumMinMax) {
  Histogram histogram;
  histogram.Record(10);
  histogram.Record(20);
  histogram.Record(5);
  const HistogramSnapshot snapshot = histogram.Snapshot();
  EXPECT_EQ(snapshot.count, 3u);
  EXPECT_EQ(snapshot.sum, 35u);
  EXPECT_EQ(snapshot.min, 5u);
  EXPECT_EQ(snapshot.max, 20u);
  EXPECT_DOUBLE_EQ(snapshot.mean(), 35.0 / 3.0);
}

TEST(Histogram, EmptySnapshotIsAllZero) {
  Histogram histogram;
  const HistogramSnapshot snapshot = histogram.Snapshot();
  EXPECT_EQ(snapshot.count, 0u);
  EXPECT_EQ(snapshot.sum, 0u);
  EXPECT_EQ(snapshot.min, 0u);
  EXPECT_EQ(snapshot.max, 0u);
  EXPECT_DOUBLE_EQ(snapshot.mean(), 0.0);
}

TEST(Histogram, BucketsCoverLog2Ranges) {
  Histogram histogram;
  histogram.Record(0);  // bucket 0
  histogram.Record(1);  // bucket 1: [1, 1]
  histogram.Record(2);  // bucket 2: [2, 3]
  histogram.Record(3);  // bucket 2
  histogram.Record(4);  // bucket 3: [4, 7]
  const HistogramSnapshot snapshot = histogram.Snapshot();
  ASSERT_GE(snapshot.buckets.size(), 4u);
  EXPECT_EQ(snapshot.buckets[0], 1u);
  EXPECT_EQ(snapshot.buckets[1], 1u);
  EXPECT_EQ(snapshot.buckets[2], 2u);
  EXPECT_EQ(snapshot.buckets[3], 1u);
}

TEST(Histogram, HugeValuesDoNotClip) {
  Histogram histogram;
  histogram.Record(~uint64_t{0});
  const HistogramSnapshot snapshot = histogram.Snapshot();
  EXPECT_EQ(snapshot.count, 1u);
  EXPECT_EQ(snapshot.max, ~uint64_t{0});
}

TEST(Histogram, ConcurrentRecordsSumExactly) {
  Histogram histogram;
  constexpr size_t kThreads = 4;
  constexpr size_t kIterations = 50000;
  std::vector<std::thread> threads;
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&histogram] {
      for (size_t i = 0; i < kIterations; ++i) histogram.Record(i % 100);
    });
  }
  for (std::thread& thread : threads) thread.join();
  const HistogramSnapshot snapshot = histogram.Snapshot();
  EXPECT_EQ(snapshot.count, kThreads * kIterations);
  EXPECT_EQ(snapshot.min, 0u);
  EXPECT_EQ(snapshot.max, 99u);
}

TEST(StageTimer, RecordsOneCallAndElapsedTime) {
  Counter calls;
  Counter wall_ns;
  {
    StageTimer timer(&calls, &wall_ns);
    EXPECT_GT(timer.begin_seconds(), 0.0);
  }
  EXPECT_EQ(calls.value(), 1u);
  // Wall time is nonnegative and bounded by "this test did not take a
  // minute".
  EXPECT_LT(wall_ns.value(), 60'000'000'000u);
}

TEST(StageTimer, StopIsIdempotent) {
  Counter calls;
  StageTimer timer(&calls, nullptr);
  timer.Stop();
  timer.Stop();
  EXPECT_EQ(calls.value(), 1u);
  EXPECT_GE(timer.end_seconds(), timer.begin_seconds());
}

TEST(StageTimer, NullCountersAreSafe) {
  StageTimer timer(nullptr, nullptr);
  timer.Stop();
  EXPECT_GE(timer.end_seconds(), timer.begin_seconds());
}

TEST(MonotonicClock, NeverGoesBackwards) {
  double last = MonotonicSeconds();
  for (int i = 0; i < 1000; ++i) {
    const double now = MonotonicSeconds();
    EXPECT_GE(now, last);
    last = now;
  }
}

}  // namespace
}  // namespace obs
}  // namespace webre
