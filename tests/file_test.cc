#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "util/file.h"

namespace webre {
namespace {

std::string TempPath(const char* name) {
  return testing::TempDir() + "/" + name;
}

TEST(FileTest, WriteThenReadRoundTrip) {
  const std::string path = TempPath("webre_file_test.txt");
  const std::string payload = "line one\nline two & <markup>\n";
  ASSERT_TRUE(WriteFile(path, payload).ok());
  StatusOr<std::string> read = ReadFile(path);
  ASSERT_TRUE(read.ok()) << read.status();
  EXPECT_EQ(*read, payload);
  std::remove(path.c_str());
}

TEST(FileTest, BinaryContentSurvives) {
  const std::string path = TempPath("webre_file_binary.bin");
  std::string payload;
  for (int i = 0; i < 256; ++i) payload.push_back(static_cast<char>(i));
  ASSERT_TRUE(WriteFile(path, payload).ok());
  StatusOr<std::string> read = ReadFile(path);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read->size(), 256u);
  EXPECT_EQ(*read, payload);
  std::remove(path.c_str());
}

TEST(FileTest, EmptyFile) {
  const std::string path = TempPath("webre_file_empty.txt");
  ASSERT_TRUE(WriteFile(path, "").ok());
  StatusOr<std::string> read = ReadFile(path);
  ASSERT_TRUE(read.ok());
  EXPECT_TRUE(read->empty());
  std::remove(path.c_str());
}

TEST(FileTest, MissingFileIsNotFound) {
  StatusOr<std::string> read = ReadFile(TempPath("does_not_exist_12345"));
  ASSERT_FALSE(read.ok());
  EXPECT_EQ(read.status().code(), StatusCode::kNotFound);
}

TEST(FileTest, OverwriteTruncates) {
  const std::string path = TempPath("webre_file_trunc.txt");
  ASSERT_TRUE(WriteFile(path, "a much longer original payload").ok());
  ASSERT_TRUE(WriteFile(path, "short").ok());
  StatusOr<std::string> read = ReadFile(path);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(*read, "short");
  std::remove(path.c_str());
}

}  // namespace
}  // namespace webre
