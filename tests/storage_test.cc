// Unit tests for the durable-storage building blocks: CRC32C, atomic
// file replacement, FlatDoc block (de)serialization, the WAL codec and
// the snapshot format — including the rejection paths a corrupt or
// incompatible file must take (DESIGN.md §14).

#include <sys/stat.h>

#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "repository/repository.h"
#include "schema/path_extractor.h"
#include "storage/crc32c.h"
#include "storage/durable_repository.h"
#include "storage/snapshot.h"
#include "storage/wal.h"
#include "util/file.h"
#include "util/rng.h"
#include "xml/flat_doc.h"
#include "xml/name_table.h"
#include "xml/node.h"

namespace webre {
namespace storage {
namespace {

std::string TempPath(const std::string& name) {
  return testing::TempDir() + "/" + name;
}

// A small document over seeded concept names plus vals (so WAL records
// and snapshots carry non-trivial text pools).
std::unique_ptr<Node> MakeDoc(size_t index) {
  Rng rng(0x51237fu + index);
  std::unique_ptr<Node> root = Node::MakeElement("resume");
  Node* contact = root->AddElement("CONTACT");
  contact->AddElement("LOCATION")->set_val(
      "city-" + std::to_string(rng.NextBelow(50)));
  contact->AddElement("PHONE")->set_val("555-" +
                                        std::to_string(rng.NextBelow(9999)));
  Node* education = root->AddElement("EDUCATION");
  const size_t degrees = 1 + rng.NextBelow(3);
  for (size_t d = 0; d < degrees; ++d) {
    Node* date = education->AddElement("DATE");
    date->set_val(std::to_string(1985 + rng.NextBelow(18)));
    date->AddElement("DEGREE")->set_val("BS");
  }
  root->AddElement("SKILLS")->AddElement("LANGUAGE")->set_val("Java");
  return root;
}

TEST(Crc32c, KnownAnswerAndChaining) {
  // The canonical CRC-32C check value.
  EXPECT_EQ(Crc32c("123456789", 9), 0xE3069283u);
  EXPECT_EQ(Crc32c("", 0), 0u);

  // Chaining through the seed equals one shot over the concatenation.
  const std::string data = "the quick brown fox jumps over the lazy dog";
  const uint32_t whole = Crc32c(data.data(), data.size());
  for (size_t split = 0; split <= data.size(); ++split) {
    EXPECT_EQ(Crc32c(data.data() + split, data.size() - split,
                     Crc32c(data.data(), split)),
              whole);
  }
}

TEST(WriteFileAtomic, CreatesAndReplaces) {
  const std::string path = TempPath("atomic_test.txt");
  ASSERT_TRUE(WriteFileAtomic(path, "first").ok());
  EXPECT_EQ(ReadFile(path).value(), "first");
  ASSERT_TRUE(WriteFileAtomic(path, "second, longer contents").ok());
  EXPECT_EQ(ReadFile(path).value(), "second, longer contents");
}

TEST(FlatDocBlock, OwnedRoundtrip) {
  const std::unique_ptr<Node> tree = MakeDoc(1);
  const std::unique_ptr<FlatDoc> original = FlatDoc::Freeze(*tree);

  auto copy = std::make_unique<char[]>(original->block_bytes());
  std::memcpy(copy.get(), original->block_data(), original->block_bytes());
  auto restored = FlatDoc::FromOwnedBlock(
      std::move(copy), original->block_bytes(), original->element_count(),
      static_cast<NameId>(NameTable::Global().size()));
  ASSERT_TRUE(restored.ok()) << restored.status();
  const FlatDoc& doc = **restored;
  EXPECT_FALSE(doc.is_view());
  ASSERT_EQ(doc.element_count(), original->element_count());
  for (uint32_t i = 0; i < doc.element_count(); ++i) {
    EXPECT_EQ(doc.name(i), original->name(i));
    EXPECT_EQ(doc.parent(i), original->parent(i));
    EXPECT_EQ(doc.depth(i), original->depth(i));
    EXPECT_EQ(doc.subtree_end(i), original->subtree_end(i));
    EXPECT_EQ(doc.val(i), original->val(i));
    EXPECT_EQ(doc.val_lowered(i), original->val_lowered(i));
  }
}

TEST(FlatDocBlock, MappedViewRoundtrip) {
  const std::unique_ptr<Node> tree = MakeDoc(2);
  const std::unique_ptr<FlatDoc> original = FlatDoc::Freeze(*tree);

  auto view = FlatDoc::FromMappedBlock(
      original->block_data(), original->block_bytes(),
      original->element_count(),
      static_cast<NameId>(NameTable::Global().size()));
  ASSERT_TRUE(view.ok()) << view.status();
  EXPECT_TRUE((*view)->is_view());
  EXPECT_EQ((*view)->val(0), original->val(0));
  EXPECT_EQ((*view)->block_data(), original->block_data());  // zero copy
}

TEST(FlatDocBlock, RejectsStructuralCorruption) {
  const std::unique_ptr<Node> tree = MakeDoc(3);
  const std::unique_ptr<FlatDoc> original = FlatDoc::Freeze(*tree);
  const uint32_t count = original->element_count();
  const NameId limit = static_cast<NameId>(NameTable::Global().size());
  ASSERT_GE(count, 4u);

  auto corrupt_u32 = [&](size_t index, uint32_t value) {
    auto block = std::make_unique<char[]>(original->block_bytes());
    std::memcpy(block.get(), original->block_data(),
                original->block_bytes());
    std::memcpy(block.get() + index * 4, &value, 4);
    return FlatDoc::FromOwnedBlock(std::move(block),
                                   original->block_bytes(), count, limit);
  };

  // Name beyond the table.
  EXPECT_EQ(corrupt_u32(0, limit).status().code(),
            StatusCode::kInvalidArgument);
  // Parent link not strictly backward (parents[2] = 2).
  EXPECT_EQ(corrupt_u32(count + 2, 2).status().code(),
            StatusCode::kInvalidArgument);
  // Root's subtree_end not covering the document.
  EXPECT_EQ(corrupt_u32(3 * count + 0, count - 1).status().code(),
            StatusCode::kInvalidArgument);
  // Text offsets non-monotonic / out of range.
  EXPECT_EQ(corrupt_u32(4 * count + 1, 0xFFFFFFF0u).status().code(),
            StatusCode::kInvalidArgument);

  // Truncated block.
  auto short_block = std::make_unique<char[]>(16);
  std::memcpy(short_block.get(), original->block_data(), 16);
  EXPECT_EQ(FlatDoc::FromOwnedBlock(std::move(short_block), 16, count, limit)
                .status()
                .code(),
            StatusCode::kInvalidArgument);
}

TEST(ExtractPathsFlat, MatchesTreeExtraction) {
  for (size_t i = 0; i < 16; ++i) {
    const std::unique_ptr<Node> tree = MakeDoc(100 + i);
    const std::unique_ptr<FlatDoc> flat = FlatDoc::Freeze(*tree);
    const DocumentPaths from_tree = ExtractPaths(*tree);
    const DocumentPaths from_flat = ExtractPaths(*flat);
    EXPECT_EQ(from_flat.paths, from_tree.paths);
    EXPECT_EQ(from_flat.max_multiplicity, from_tree.max_multiplicity);
    EXPECT_EQ(from_flat.position_sum, from_tree.position_sum);
    EXPECT_EQ(from_flat.position_count, from_tree.position_count);
    EXPECT_EQ(from_flat.parent_index, from_tree.parent_index);
    EXPECT_EQ(from_flat.leaf_name, from_tree.leaf_name);
  }
}

TEST(WalCodec, HeaderRoundtripAndGuards) {
  const uint64_t seed = SeedVocabularyHash();
  const std::string header = EncodeWalHeader(seed);
  ASSERT_EQ(header.size(), kWalHeaderSize);
  EXPECT_TRUE(CheckWalHeader(header, seed).ok());

  // Wrong NameTable generation.
  EXPECT_EQ(CheckWalHeader(header, seed ^ 1).code(),
            StatusCode::kFailedPrecondition);
  // Wrong version.
  std::string wrong_version = header;
  wrong_version[8] = 9;
  EXPECT_EQ(CheckWalHeader(wrong_version, seed).code(),
            StatusCode::kFailedPrecondition);
  // Torn header.
  EXPECT_EQ(CheckWalHeader(std::string_view(header).substr(0, 10), seed)
                .code(),
            StatusCode::kInvalidArgument);
}

TEST(WalCodec, RecordRoundtrip) {
  const std::unique_ptr<FlatDoc> flat = FlatDoc::Freeze(*MakeDoc(4));
  std::string payload = EncodeWalRecord(7, *flat);
  payload += EncodeWalRecord(8, *flat);

  std::vector<WalRecord> records;
  EXPECT_EQ(ParseWalPayload(payload, records), payload.size());
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].doc_id, 7u);
  EXPECT_EQ(records[1].doc_id, 8u);
  EXPECT_EQ(records[0].element_count, flat->element_count());

  auto decoded = DecodeWalDocument(records[0]);
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  ASSERT_EQ((*decoded)->element_count(), flat->element_count());
  for (uint32_t i = 0; i < flat->element_count(); ++i) {
    EXPECT_EQ((*decoded)->name(i), flat->name(i));
    EXPECT_EQ((*decoded)->val(i), flat->val(i));
  }
}

TEST(WalCodec, TornTailEndsValidPrefix) {
  const std::unique_ptr<FlatDoc> flat = FlatDoc::Freeze(*MakeDoc(5));
  const std::string first = EncodeWalRecord(0, *flat);
  const std::string second = EncodeWalRecord(1, *flat);

  // Chop the second record at assorted torn lengths: the first record
  // must always survive, the second never.
  for (size_t keep : {size_t{0}, size_t{1}, size_t{7}, size_t{8},
                      second.size() / 2, second.size() - 1}) {
    const std::string payload = first + second.substr(0, keep);
    std::vector<WalRecord> records;
    EXPECT_EQ(ParseWalPayload(payload, records), first.size());
    ASSERT_EQ(records.size(), 1u);
    EXPECT_EQ(records[0].doc_id, 0u);
  }
}

TEST(WalCodec, BitFlipEndsValidPrefix) {
  const std::unique_ptr<FlatDoc> flat = FlatDoc::Freeze(*MakeDoc(6));
  const std::string first = EncodeWalRecord(0, *flat);
  const std::string second = EncodeWalRecord(1, *flat);

  // Flip one bit somewhere in the second record: every byte is covered
  // by the frame's CRC (or the framing itself), so exactly the first
  // record survives.
  for (size_t byte : {size_t{0}, size_t{4}, size_t{8}, second.size() / 2,
                      second.size() - 1}) {
    std::string payload = first + second;
    payload[first.size() + byte] ^= 0x10;
    std::vector<WalRecord> records;
    ParseWalPayload(payload, records);
    ASSERT_EQ(records.size(), 1u) << "flipped byte " << byte;
    EXPECT_EQ(records[0].doc_id, 0u);
  }
}

TEST(Snapshot, RoundtripIdentity) {
  RepositoryOptions options;
  options.num_shards = 2;
  options.query_threads = 1;
  XmlRepository repo(options);
  for (size_t i = 0; i < 5; ++i) {
    ASSERT_TRUE(repo.Add(MakeDoc(200 + i)).ok());
  }
  const std::string image = BuildSnapshotImage(repo);

  LoadedSnapshot loaded;
  ASSERT_TRUE(LoadSnapshotImage(image, loaded).ok());
  // Same process: every name re-interns to its own id.
  EXPECT_TRUE(loaded.identity_names);
  ASSERT_EQ(loaded.documents.size(), 5u);
  for (size_t i = 0; i < 5; ++i) {
    const FlatDoc* original = repo.flat_document(static_cast<DocId>(i));
    ASSERT_NE(original, nullptr);
    EXPECT_EQ(loaded.documents[i].element_count, original->element_count());
    EXPECT_EQ(loaded.documents[i].block,
              std::string_view(original->block_data(),
                               original->block_bytes()));
  }
  repo.WithSummary([&](const PathIndex& summary) {
    EXPECT_EQ(loaded.summary.size(), summary.path_count());
  });
}

// Builds a 3-section snapshot image from a couple of documents.
std::string BuildImage(size_t docs) {
  RepositoryOptions options;
  options.num_shards = 2;
  options.query_threads = 1;
  XmlRepository repo(options);
  for (size_t i = 0; i < docs; ++i) {
    EXPECT_TRUE(repo.Add(MakeDoc(200 + i)).ok());
  }
  return BuildSnapshotImage(repo);
}

// Recomputes the header CRC after a deliberate header edit, exactly the
// way the writer computes it, so ONLY the edited field is wrong.
void ResealHeader(std::string& image) {
  uint32_t section_count = 0;
  std::memcpy(&section_count, image.data() + 12, 4);
  const uint32_t crc =
      Crc32c(image.data() + kSnapshotHeaderSize, section_count * 32,
             Crc32c(image.data(), 32));
  std::memcpy(image.data() + 32, &crc, 4);
}

TEST(Snapshot, RejectsWrongVersion) {
  std::string image = BuildImage(2);
  const uint32_t bogus = 99;
  std::memcpy(image.data() + 8, &bogus, 4);
  ResealHeader(image);

  LoadedSnapshot loaded;
  EXPECT_EQ(LoadSnapshotImage(image, loaded).code(),
            StatusCode::kFailedPrecondition);
}

TEST(Snapshot, RejectsWrongSeedGeneration) {
  std::string image = BuildImage(2);
  image[16] ^= 0x5A;  // seed_hash low byte
  ResealHeader(image);

  LoadedSnapshot loaded;
  EXPECT_EQ(LoadSnapshotImage(image, loaded).code(),
            StatusCode::kFailedPrecondition);
}

TEST(Snapshot, RejectsCorruptionWithoutCrashing) {
  const std::string image = BuildImage(3);

  LoadedSnapshot loaded;
  // Bad magic.
  std::string bad = image;
  bad[0] ^= 0xFF;
  EXPECT_EQ(LoadSnapshotImage(bad, loaded).code(),
            StatusCode::kInvalidArgument);
  // Header CRC catches a flipped section-table byte.
  bad = image;
  bad[kSnapshotHeaderSize + 9] ^= 0x01;
  EXPECT_EQ(LoadSnapshotImage(bad, loaded).code(),
            StatusCode::kInvalidArgument);
  // A section CRC catches a flipped payload byte.
  bad = image;
  bad[bad.size() - 3] ^= 0x40;
  EXPECT_EQ(LoadSnapshotImage(bad, loaded).code(),
            StatusCode::kInvalidArgument);
  // Truncations never read out of bounds or load.
  for (size_t len = 0; len < kSnapshotHeaderSize + 64 && len < image.size();
       ++len) {
    EXPECT_FALSE(LoadSnapshotImage(image.substr(0, len), loaded).ok());
  }
}

TEST(Snapshot, NameSwapForcesRemap) {
  // Two same-length dynamic names the seeded vocabulary cannot contain.
  std::unique_ptr<Node> root = Node::MakeElement("resume");
  root->AddElement("zzalpha")->set_val("first");
  root->AddElement("zzbeta!")->set_val("second");

  RepositoryOptions options;
  options.num_shards = 1;
  options.query_threads = 1;
  XmlRepository repo(options);
  ASSERT_TRUE(repo.Add(std::move(root)).ok());
  std::string image = BuildSnapshotImage(repo);

  // Byte-edit the NAMES section: swap the two names' string bytes, so
  // the snapshot claims the stored ids mean the opposite strings, then
  // reseal the section and header CRCs — only the semantics changed.
  const size_t alpha_at = image.find("zzalpha");
  const size_t beta_at = image.find("zzbeta!");
  ASSERT_NE(alpha_at, std::string::npos);
  ASSERT_NE(beta_at, std::string::npos);
  image.replace(alpha_at, 7, "zzbeta!");
  image.replace(beta_at, 7, "zzalpha");
  {
    const char* entry = image.data() + kSnapshotHeaderSize;
    uint32_t type = 0;
    std::memcpy(&type, entry, 4);
    ASSERT_EQ(type, kSectionNames);  // NAMES is the first section
    uint64_t off64 = 0, size64 = 0;
    std::memcpy(&off64, entry + 8, 8);
    std::memcpy(&size64, entry + 16, 8);
    const uint32_t crc = Crc32c(image.data() + off64,
                                static_cast<size_t>(size64));
    std::memcpy(image.data() + kSnapshotHeaderSize + 24, &crc, 4);
  }
  ResealHeader(image);

  // Loading in this process (both names already interned in the
  // original order) must detect non-identity...
  LoadedSnapshot loaded;
  ASSERT_TRUE(LoadSnapshotImage(image, loaded).ok());
  EXPECT_FALSE(loaded.identity_names);

  // ...and a full durable open must serve the swapped semantics via
  // the copy-and-remap path: zero mmap hits, names resolved per the
  // edited NAMES table.
  const std::string dir = TempPath("remap_dir");
  ::mkdir(dir.c_str(), 0755);
  ASSERT_TRUE(WriteSnapshotFile(dir, image).ok());

  auto durable = DurableRepository::Open(dir);
  ASSERT_TRUE(durable.ok()) << durable.status();
  EXPECT_EQ((*durable)->stats().mmap_hits, 0u);
  const FlatDoc* doc = (*durable)->repo().flat_document(0);
  ASSERT_NE(doc, nullptr);
  ASSERT_EQ(doc->element_count(), 3u);
  // Element 1 stored the id interned for "zzalpha"; the edited snapshot
  // says that id means "zzbeta!", so the restored document reads back
  // swapped — and the vals stay with their positions.
  EXPECT_EQ(doc->name_view(1), "zzbeta!");
  EXPECT_EQ(doc->name_view(2), "zzalpha");
  EXPECT_EQ(doc->val(1), "first");
  EXPECT_EQ(doc->val(2), "second");
}

TEST(DurableRepositoryTest, StatsAndWalSyncModes) {
  for (const WalSyncMode mode :
       {WalSyncMode::kNone, WalSyncMode::kFdatasync}) {
    const std::string dir = TempPath(
        mode == WalSyncMode::kNone ? "sync_none" : "sync_fdatasync");
    DurableOptions options;
    options.repository.num_shards = 2;
    options.repository.query_threads = 1;
    options.wal_sync = mode;
    auto durable = DurableRepository::Open(dir, options);
    ASSERT_TRUE(durable.ok()) << durable.status();
    for (size_t i = 0; i < 4; ++i) {
      ASSERT_TRUE((*durable)->Add(MakeDoc(300 + i)).ok());
    }
    const obs::StorageStatsView stats = (*durable)->stats();
    EXPECT_EQ(stats.wal_appends, 4u);
    EXPECT_EQ(stats.wal_replayed, 0u);
    ASSERT_TRUE((*durable)->Checkpoint().ok());
    EXPECT_GT((*durable)->stats().snapshot_bytes, 0u);
  }
}

}  // namespace
}  // namespace storage
}  // namespace webre
