#include <gtest/gtest.h>

#include "mapping/document_mapper.h"
#include "schema/dtd_builder.h"
#include "xml/dtd_validator.h"

namespace webre {
namespace {

SchemaNode Leaf(const std::string& label, double rep = 0.0) {
  SchemaNode node;
  node.label = label;
  node.rep_fraction = rep;
  node.doc_count = 10;
  return node;
}

// Schema: resume -> contact, education+ -> (degree, date).
MajoritySchema TestSchema() {
  SchemaNode root = Leaf("resume");
  root.children.push_back(Leaf("contact"));
  SchemaNode education = Leaf("education", /*rep=*/0.9);
  education.children.push_back(Leaf("degree"));
  education.children.push_back(Leaf("date"));
  root.children.push_back(education);
  return MajoritySchema(std::move(root));
}

class MapperTest : public ::testing::Test {
 protected:
  MapperTest() : schema_(TestSchema()), dtd_(BuildDtd(schema_)) {}

  MajoritySchema schema_;
  Dtd dtd_;
};

TEST_F(MapperTest, ConformingDocumentUnchanged) {
  auto doc = Node::MakeElement("resume");
  doc->AddElement("contact");
  Node* edu = doc->AddElement("education");
  edu->AddElement("degree");
  edu->AddElement("date");
  ConformResult result = ConformToSchema(*doc, schema_, dtd_);
  EXPECT_TRUE(result.report.conforms);
  EXPECT_DOUBLE_EQ(result.report.edit_distance, 0.0);
  EXPECT_TRUE(*result.document == *doc);
}

TEST_F(MapperTest, OffSchemaElementSpliced) {
  auto doc = Node::MakeElement("resume");
  doc->AddElement("contact");
  Node* wrapper = doc->AddElement("stray");
  Node* edu = wrapper->AddElement("education");
  edu->AddElement("degree");
  edu->AddElement("date");
  ConformResult result = ConformToSchema(*doc, schema_, dtd_);
  EXPECT_TRUE(result.report.conforms);
  EXPECT_GE(result.report.nodes_removed, 1u);
  // education survived the splice.
  ASSERT_EQ(result.document->child_count(), 2u);
  EXPECT_EQ(result.document->child(1)->name(), "education");
}

TEST_F(MapperTest, SplicedElementValFoldsIntoParent) {
  auto doc = Node::MakeElement("resume");
  doc->AddElement("contact");
  Node* stray = doc->AddElement("stray");
  stray->set_val("precious text");
  Node* edu = doc->AddElement("education");
  edu->AddElement("degree");
  edu->AddElement("date");
  ConformResult result = ConformToSchema(*doc, schema_, dtd_);
  EXPECT_NE(result.document->val().find("precious text"),
            std::string_view::npos);
}

TEST_F(MapperTest, ChildrenReorderedToSchemaOrder) {
  auto doc = Node::MakeElement("resume");
  Node* edu = doc->AddElement("education");
  edu->AddElement("date");    // schema order is degree, date
  edu->AddElement("degree");
  doc->AddElement("contact");  // schema order is contact, education
  ConformResult result = ConformToSchema(*doc, schema_, dtd_);
  EXPECT_TRUE(result.report.conforms);
  EXPECT_GT(result.report.reorder_moves, 0u);
  EXPECT_EQ(result.document->child(0)->name(), "contact");
  const Node* mapped_edu = result.document->child(1);
  EXPECT_EQ(mapped_edu->child(0)->name(), "degree");
  EXPECT_EQ(mapped_edu->child(1)->name(), "date");
}

TEST_F(MapperTest, MissingRequiredChildInserted) {
  auto doc = Node::MakeElement("resume");
  Node* edu = doc->AddElement("education");  // no contact, no degree/date
  (void)edu;
  ConformResult result = ConformToSchema(*doc, schema_, dtd_);
  EXPECT_TRUE(result.report.conforms);
  EXPECT_GE(result.report.nodes_inserted, 3u);  // contact, degree, date
}

TEST_F(MapperTest, SurplusSingletonsMerged) {
  auto doc = Node::MakeElement("resume");
  Node* c1 = doc->AddElement("contact");
  c1->set_val("first");
  Node* c2 = doc->AddElement("contact");
  c2->set_val("second");
  Node* edu = doc->AddElement("education");
  edu->AddElement("degree");
  edu->AddElement("date");
  ConformResult result = ConformToSchema(*doc, schema_, dtd_);
  EXPECT_TRUE(result.report.conforms);
  // contact is singular in the DTD: merged into one with both vals.
  size_t contacts = 0;
  for (size_t i = 0; i < result.document->child_count(); ++i) {
    if (result.document->child(i)->name() == "contact") ++contacts;
  }
  EXPECT_EQ(contacts, 1u);
  EXPECT_EQ(result.document->child(0)->val(), "first second");
}

TEST_F(MapperTest, RepetitiveChildrenKept) {
  auto doc = Node::MakeElement("resume");
  doc->AddElement("contact");
  for (int i = 0; i < 3; ++i) {
    Node* edu = doc->AddElement("education");
    edu->AddElement("degree");
    edu->AddElement("date");
  }
  ConformResult result = ConformToSchema(*doc, schema_, dtd_);
  EXPECT_TRUE(result.report.conforms);
  EXPECT_EQ(result.document->child_count(), 4u);  // contact + 3 education
}

TEST_F(MapperTest, WrongRootRelabeled) {
  auto doc = Node::MakeElement("cv");
  doc->AddElement("contact");
  Node* edu = doc->AddElement("education");
  edu->AddElement("degree");
  edu->AddElement("date");
  ConformResult result = ConformToSchema(*doc, schema_, dtd_);
  EXPECT_EQ(result.document->name(), "resume");
  EXPECT_TRUE(result.report.conforms);
}

TEST_F(MapperTest, EditDistanceReflectsWork) {
  auto doc = Node::MakeElement("resume");
  doc->AddElement("junk1");
  doc->AddElement("junk2");
  ConformResult result = ConformToSchema(*doc, schema_, dtd_);
  EXPECT_GT(result.report.edit_distance, 0.0);
}

TEST_F(MapperTest, EmptySchemaLeavesDocumentAlone) {
  MajoritySchema empty;
  Dtd empty_dtd;
  auto doc = Node::MakeElement("anything");
  doc->AddElement("x");
  ConformResult result = ConformToSchema(*doc, empty, empty_dtd);
  EXPECT_TRUE(*result.document == *doc);
}

TEST_F(MapperTest, DeeplyNestedOffSchemaFlattened) {
  auto doc = Node::MakeElement("resume");
  Node* a = doc->AddElement("wrap1");
  Node* b = a->AddElement("wrap2");
  b->AddElement("contact");
  ConformResult result = ConformToSchema(*doc, schema_, dtd_);
  // contact surfaced to the top level after two splices.
  bool found = false;
  for (size_t i = 0; i < result.document->child_count(); ++i) {
    if (result.document->child(i)->name() == "contact") found = true;
  }
  EXPECT_TRUE(found);
  EXPECT_GE(result.report.nodes_removed, 2u);
}

}  // namespace
}  // namespace webre
