#include <gtest/gtest.h>

#include <cmath>

#include "classify/bayes.h"
#include "classify/features.h"

namespace webre {
namespace {

TEST(FeaturesTest, LowercasesAndStripsPunct) {
  auto f = ExtractTokenFeatures("Hello, World!");
  ASSERT_EQ(f.size(), 2u);
  EXPECT_EQ(f[0], "hello");
  EXPECT_EQ(f[1], "world");
}

TEST(FeaturesTest, YearShape) {
  auto f = ExtractTokenFeatures("June 1996");
  ASSERT_EQ(f.size(), 2u);
  EXPECT_EQ(f[0], "june");
  EXPECT_EQ(f[1], "#year#");
}

TEST(FeaturesTest, NumShape) {
  auto f = ExtractTokenFeatures("room 42 floor 12345");
  ASSERT_EQ(f.size(), 4u);
  EXPECT_EQ(f[1], "#num#");
  EXPECT_EQ(f[3], "#num#");
}

TEST(FeaturesTest, RatioShape) {
  auto f = ExtractTokenFeatures("GPA 3.8/4.0");
  ASSERT_EQ(f.size(), 2u);
  EXPECT_EQ(f[0], "gpa");
  EXPECT_EQ(f[1], "#ratio#");
}

TEST(FeaturesTest, YearBoundaries) {
  EXPECT_EQ(ExtractTokenFeatures("1899")[0], "#num#");   // before range
  EXPECT_EQ(ExtractTokenFeatures("1900")[0], "#year#");
  EXPECT_EQ(ExtractTokenFeatures("2099")[0], "#year#");
  EXPECT_EQ(ExtractTokenFeatures("2100")[0], "#num#");   // 21xx excluded
  EXPECT_EQ(ExtractTokenFeatures("996")[0], "#num#");
}

TEST(FeaturesTest, PurePunctuationYieldsNothing) {
  EXPECT_TRUE(ExtractTokenFeatures("--- !!! ...").empty());
  EXPECT_TRUE(ExtractTokenFeatures("").empty());
}

TEST(FeaturesTest, MixedAlnumKeptAsWord) {
  auto f = ExtractTokenFeatures("X200 B2B");
  ASSERT_EQ(f.size(), 2u);
  EXPECT_EQ(f[0], "x200");
  EXPECT_EQ(f[1], "b2b");
}

BayesClassifier TrainedOnDates() {
  BayesClassifier clf;
  clf.AddExample("DATE", ExtractTokenFeatures("June 1996"));
  clf.AddExample("DATE", ExtractTokenFeatures("May 1998"));
  clf.AddExample("DATE", ExtractTokenFeatures("October 2000"));
  clf.AddExample("GPA", ExtractTokenFeatures("GPA 3.8/4.0"));
  clf.AddExample("GPA", ExtractTokenFeatures("grade point average 3.5/4.0"));
  clf.AddExample("INSTITUTION",
                 ExtractTokenFeatures("Brockhaven University"));
  clf.AddExample("INSTITUTION", ExtractTokenFeatures("Eastfield College"));
  return clf;
}

TEST(BayesTest, EmptyClassifierReturnsEmptyLabel) {
  BayesClassifier clf;
  auto p = clf.Classify({"anything"});
  EXPECT_TRUE(p.label.empty());
}

TEST(BayesTest, CountsTracked) {
  BayesClassifier clf = TrainedOnDates();
  EXPECT_EQ(clf.example_count(), 7u);
  EXPECT_EQ(clf.label_count(), 3u);
  EXPECT_GT(clf.vocabulary_size(), 5u);
}

TEST(BayesTest, ClassifiesSeenPatterns) {
  BayesClassifier clf = TrainedOnDates();
  EXPECT_EQ(clf.Classify(ExtractTokenFeatures("June 1996")).label, "DATE");
  EXPECT_EQ(clf.Classify(ExtractTokenFeatures("GPA 3.2/4.0")).label, "GPA");
}

TEST(BayesTest, GeneralizesViaSharedFeatures) {
  BayesClassifier clf = TrainedOnDates();
  // "April 1997" was never seen, but #year# and month-like shape were.
  EXPECT_EQ(clf.Classify(ExtractTokenFeatures("June 1997")).label, "DATE");
  // Unseen institution word + "university" feature.
  EXPECT_EQ(clf.Classify(ExtractTokenFeatures("Harrowgate University")).label,
            "INSTITUTION");
}

TEST(BayesTest, MarginPositive) {
  BayesClassifier clf = TrainedOnDates();
  auto p = clf.Classify(ExtractTokenFeatures("June 1996"));
  EXPECT_GT(p.margin, 0.0);
}

TEST(BayesTest, SingleClassHasInfiniteMargin) {
  BayesClassifier clf;
  clf.AddExample("ONLY", {"word"});
  auto p = clf.Classify({"word"});
  EXPECT_EQ(p.label, "ONLY");
  EXPECT_TRUE(std::isinf(p.margin));
}

TEST(BayesTest, ThresholdFallsBackToUnknown) {
  BayesClassifier clf = TrainedOnDates();
  // A token with no informative features: tiny margin expected.
  std::string label = clf.ClassifyWithThreshold(
      ExtractTokenFeatures("zzz qqq"), /*min_margin=*/5.0, "unknown");
  EXPECT_EQ(label, "unknown");
  // A clear token passes a modest threshold.
  label = clf.ClassifyWithThreshold(ExtractTokenFeatures("June 1996"),
                                    /*min_margin=*/0.5, "unknown");
  EXPECT_EQ(label, "DATE");
}

TEST(BayesTest, PriorBreaksTiesTowardFrequentClass) {
  BayesClassifier clf;
  for (int i = 0; i < 9; ++i) clf.AddExample("BIG", {"shared"});
  clf.AddExample("SMALL", {"shared"});
  EXPECT_EQ(clf.Classify({"shared"}).label, "BIG");
}

TEST(BayesTest, LaplaceSmoothingHandlesUnseenWords) {
  BayesClassifier clf = TrainedOnDates();
  // Entirely unseen words must not crash or return empty.
  auto p = clf.Classify({"neverseenword"});
  EXPECT_FALSE(p.label.empty());
}

}  // namespace
}  // namespace webre
