#include <gtest/gtest.h>

#include "concepts/resume_domain.h"
#include "restructure/converter.h"
#include "restructure/recognizer.h"

namespace webre {
namespace {

class ConverterTest : public ::testing::Test {
 protected:
  ConverterTest()
      : concepts_(ResumeConcepts()),
        constraints_(ResumeConstraints()),
        recognizer_(&concepts_),
        converter_(&concepts_, &recognizer_, &constraints_) {}

  ConceptSet concepts_;
  ConstraintSet constraints_;
  SynonymRecognizer recognizer_;
  DocumentConverter converter_;
};

constexpr char kResumeHtml[] = R"(
<html><body>
<h2>Education</h2>
<ul>
<li>June 1996, Brockhaven University, B.S., Computer Science
<li>June 1998, Eastfield College, M.S., Physics
</ul>
<h2>Skills</h2>
<p>C++, Java, SQL</p>
</body></html>)";

TEST_F(ConverterTest, RootRenamedToTopic) {
  auto doc = converter_.Convert(kResumeHtml);
  EXPECT_EQ(doc->name(), "resume");
}

TEST_F(ConverterTest, SectionsBecomeSiblingConcepts) {
  auto doc = converter_.Convert(kResumeHtml);
  ASSERT_EQ(doc->child_count(), 2u);
  EXPECT_EQ(doc->child(0)->name(), "EDUCATION");
  EXPECT_EQ(doc->child(1)->name(), "SKILLS");
}

TEST_F(ConverterTest, EducationEntriesNestUnderLeadingDate) {
  auto doc = converter_.Convert(kResumeHtml);
  const Node* education = doc->child(0);
  ASSERT_EQ(education->child_count(), 2u);
  for (size_t i = 0; i < 2; ++i) {
    const Node* date = education->child(i);
    EXPECT_EQ(date->name(), "DATE");
    ASSERT_EQ(date->child_count(), 3u);
    EXPECT_EQ(date->child(0)->name(), "INSTITUTION");
    EXPECT_EQ(date->child(1)->name(), "DEGREE");
    EXPECT_EQ(date->child(2)->name(), "MAJOR");
  }
}

TEST_F(ConverterTest, SkillsStayFlat) {
  auto doc = converter_.Convert(kResumeHtml);
  const Node* skills = doc->child(1);
  ASSERT_EQ(skills->child_count(), 3u);
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(skills->child(i)->name(), "LANGUAGE");
  }
}

TEST_F(ConverterTest, OnlyConceptElementsInOutput) {
  auto doc = converter_.Convert(kResumeHtml);
  doc->PreOrder([&](const Node& n) {
    if (!n.is_element() || &n == doc.get()) return;
    EXPECT_TRUE(concepts_.Contains(n.name())) << n.name();
  });
}

TEST_F(ConverterTest, StatsPopulated) {
  ConvertStats stats;
  converter_.Convert(kResumeHtml, &stats);
  EXPECT_GT(stats.tokens_created, 8u);
  EXPECT_GT(stats.instance.tokens_identified, 8u);
  EXPECT_GT(stats.groups_created, 0u);
  EXPECT_GT(stats.concept_nodes, 10u);
  EXPECT_GT(stats.consolidation.nodes_deleted +
                stats.consolidation.nodes_pushed_up +
                stats.consolidation.nodes_replaced,
            0u);
}

TEST_F(ConverterTest, CustomRootName) {
  ConvertOptions options;
  options.root_name = "cv";
  DocumentConverter converter(&concepts_, &recognizer_, &constraints_,
                              options);
  auto doc = converter.Convert(kResumeHtml);
  EXPECT_EQ(doc->name(), "cv");
}

TEST_F(ConverterTest, EmptyInputYieldsEmptyRoot) {
  auto doc = converter_.Convert("");
  EXPECT_EQ(doc->name(), "resume");
  EXPECT_EQ(doc->child_count(), 0u);
}

TEST_F(ConverterTest, PureTextNoConceptsFoldsIntoRootVal) {
  auto doc = converter_.Convert("<p>just a plain paragraph</p>");
  EXPECT_EQ(doc->child_count(), 0u);
  EXPECT_EQ(doc->val(), "just a plain paragraph");
}

TEST_F(ConverterTest, MalformedHtmlStillConverts) {
  // §2.4 resilience: unclosed tags, stray end tags, uppercase markup.
  const char* kSloppy =
      "<BODY><H2>Education</h2><UL><LI>June 1996, Brockhaven University"
      "<li>May 1997, Eastfield College</ul></extra>";
  auto doc = converter_.Convert(kSloppy);
  ASSERT_GE(doc->child_count(), 1u);
  const Node* education = doc->child(0);
  EXPECT_EQ(education->name(), "EDUCATION");
  ASSERT_EQ(education->child_count(), 2u);
  EXPECT_EQ(education->child(0)->name(), "DATE");
}

TEST_F(ConverterTest, GroupingDisabledChangesShape) {
  ConvertOptions options;
  options.apply_grouping = false;
  DocumentConverter no_grouping(&concepts_, &recognizer_, &constraints_,
                                options);
  auto with = converter_.Convert(kResumeHtml);
  auto without = no_grouping.Convert(kResumeHtml);
  // Without the grouping rule the section content does not sink under
  // the section concept: more top-level children.
  EXPECT_GT(without->child_count(), with->child_count());
}

TEST_F(ConverterTest, TidyToggleDoesNotBreakCleanInput) {
  ConvertOptions options;
  options.apply_tidy = false;
  DocumentConverter no_tidy(&concepts_, &recognizer_, &constraints_,
                            options);
  auto a = converter_.Convert(kResumeHtml);
  auto b = no_tidy.Convert(kResumeHtml);
  // Clean input: same structure either way.
  EXPECT_EQ(a->DebugString(), b->DebugString());
}

TEST_F(ConverterTest, ValCarriesOriginalText) {
  auto doc = converter_.Convert(kResumeHtml);
  const Node* education = doc->child(0);
  EXPECT_EQ(education->val(), "Education");
  EXPECT_EQ(education->child(0)->val(), "June 1996");
  EXPECT_EQ(education->child(0)->child(0)->val(), "Brockhaven University");
}

TEST_F(ConverterTest, ConvertTreeAcceptsParsedInput) {
  auto tree = ParseHtml(kResumeHtml);
  auto doc = converter_.ConvertTree(std::move(tree));
  EXPECT_EQ(doc->name(), "resume");
  EXPECT_EQ(doc->child_count(), 2u);
}

}  // namespace
}  // namespace webre
