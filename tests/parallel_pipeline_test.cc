// Determinism of the parallel pipeline: for any thread count, every
// output of Pipeline::Run — converted XML, per-document stats, schema,
// DTD, conformance counters, mapped documents — must be byte-identical
// to the serial run. This is the acceptance bar that makes the fan-out
// a pure performance change.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "concepts/resume_domain.h"
#include "core/pipeline.h"
#include "corpus/resume_generator.h"
#include "xml/writer.h"

namespace webre {
namespace {

struct RunOutputs {
  std::vector<std::string> documents;
  std::vector<ConvertStats> convert_stats;
  std::string schema;
  std::string dtd;
  MiningStats mining_stats;
  size_t conforming_before = 0;
  size_t conforming_after = 0;
  std::vector<std::string> mapped_documents;
};

RunOutputs Render(const PipelineResult& result) {
  RunOutputs out;
  for (const auto& doc : result.documents) {
    out.documents.push_back(WriteXml(*doc));
  }
  out.convert_stats = result.convert_stats;
  out.schema = result.schema.ToString();
  out.dtd = result.dtd.ToString(/*attlist=*/true);
  out.mining_stats = result.mining_stats;
  out.conforming_before = result.conforming_before;
  out.conforming_after = result.conforming_after;
  for (const auto& doc : result.mapped_documents) {
    out.mapped_documents.push_back(WriteXml(*doc));
  }
  return out;
}

void ExpectIdentical(const RunOutputs& serial, const RunOutputs& parallel,
                     size_t threads) {
  ASSERT_EQ(serial.documents.size(), parallel.documents.size());
  for (size_t i = 0; i < serial.documents.size(); ++i) {
    EXPECT_EQ(serial.documents[i], parallel.documents[i])
        << "doc " << i << " at " << threads << " threads";
  }
  ASSERT_EQ(serial.convert_stats.size(), parallel.convert_stats.size());
  for (size_t i = 0; i < serial.convert_stats.size(); ++i) {
    const ConvertStats& a = serial.convert_stats[i];
    const ConvertStats& b = parallel.convert_stats[i];
    EXPECT_EQ(a.tokens_created, b.tokens_created) << i;
    EXPECT_EQ(a.instance.tokens_total, b.instance.tokens_total) << i;
    EXPECT_EQ(a.instance.tokens_identified, b.instance.tokens_identified)
        << i;
    EXPECT_EQ(a.instance.elements_created, b.instance.elements_created) << i;
    EXPECT_EQ(a.groups_created, b.groups_created) << i;
    EXPECT_EQ(a.consolidation.nodes_deleted, b.consolidation.nodes_deleted)
        << i;
    EXPECT_EQ(a.consolidation.nodes_pushed_up,
              b.consolidation.nodes_pushed_up)
        << i;
    EXPECT_EQ(a.consolidation.nodes_replaced, b.consolidation.nodes_replaced)
        << i;
    EXPECT_EQ(a.concept_nodes, b.concept_nodes) << i;
    // Memory accounting is per-document (one doc converts on one
    // thread), so node-allocation counts and arena bytes must not
    // depend on the thread count either.
    EXPECT_EQ(a.mem_node_allocs, b.mem_node_allocs) << i;
    EXPECT_EQ(a.mem_arena_bytes, b.mem_arena_bytes) << i;
  }
  EXPECT_EQ(serial.schema, parallel.schema) << threads << " threads";
  EXPECT_EQ(serial.dtd, parallel.dtd) << threads << " threads";
  EXPECT_EQ(serial.mining_stats.paths_offered,
            parallel.mining_stats.paths_offered);
  EXPECT_EQ(serial.mining_stats.paths_pruned_by_constraints,
            parallel.mining_stats.paths_pruned_by_constraints);
  EXPECT_EQ(serial.mining_stats.trie_nodes, parallel.mining_stats.trie_nodes);
  EXPECT_EQ(serial.mining_stats.frequent_paths,
            parallel.mining_stats.frequent_paths);
  EXPECT_EQ(serial.conforming_before, parallel.conforming_before);
  EXPECT_EQ(serial.conforming_after, parallel.conforming_after);
  ASSERT_EQ(serial.mapped_documents.size(), parallel.mapped_documents.size());
  for (size_t i = 0; i < serial.mapped_documents.size(); ++i) {
    EXPECT_EQ(serial.mapped_documents[i], parallel.mapped_documents[i])
        << "mapped doc " << i << " at " << threads << " threads";
  }
}

class ParallelPipelineTest : public ::testing::Test {
 protected:
  ParallelPipelineTest()
      : concepts_(ResumeConcepts()),
        constraints_(ResumeConstraints()),
        recognizer_(&concepts_) {}

  std::vector<std::string> Pages(size_t n) {
    std::vector<std::string> pages;
    for (size_t i = 0; i < n; ++i) pages.push_back(GenerateResume(i).html);
    return pages;
  }

  PipelineResult RunWith(const std::vector<std::string>& pages,
                         size_t threads, bool map_documents) {
    PipelineOptions options;
    options.map_documents = map_documents;
    options.dtd.mark_optional = map_documents;
    options.parallel.num_threads = threads;
    options.parallel.chunk_size = 4;  // small chunks: force interleaving
    Pipeline pipeline(&concepts_, &recognizer_, &constraints_, options);
    return pipeline.Run(pages);
  }

  ConceptSet concepts_;
  ConstraintSet constraints_;
  SynonymRecognizer recognizer_;
};

TEST_F(ParallelPipelineTest, ParallelRunsAreByteIdenticalToSerial) {
  const std::vector<std::string> pages = Pages(60);
  const RunOutputs serial =
      Render(RunWith(pages, /*threads=*/1, /*map_documents=*/false));
  for (size_t threads : {2u, 4u, 8u}) {
    const RunOutputs parallel = Render(RunWith(pages, threads, false));
    ExpectIdentical(serial, parallel, threads);
  }
}

TEST_F(ParallelPipelineTest, MappingStageIsDeterministicToo) {
  const std::vector<std::string> pages = Pages(40);
  const RunOutputs serial =
      Render(RunWith(pages, /*threads=*/1, /*map_documents=*/true));
  for (size_t threads : {2u, 4u, 8u}) {
    const RunOutputs parallel = Render(RunWith(pages, threads, true));
    ExpectIdentical(serial, parallel, threads);
  }
}

TEST_F(ParallelPipelineTest, HardwareDefaultThreadCount) {
  // num_threads = 0 resolves to the hardware thread count and still
  // matches the serial run.
  const std::vector<std::string> pages = Pages(30);
  const RunOutputs serial = Render(RunWith(pages, 1, false));
  const RunOutputs parallel = Render(RunWith(pages, 0, false));
  ExpectIdentical(serial, parallel, 0);
}

TEST_F(ParallelPipelineTest, MoreThreadsThanDocuments) {
  const std::vector<std::string> pages = Pages(3);
  const RunOutputs serial = Render(RunWith(pages, 1, true));
  const RunOutputs parallel = Render(RunWith(pages, 8, true));
  ExpectIdentical(serial, parallel, 8);
}

TEST_F(ParallelPipelineTest, EmptyInputWithThreads) {
  PipelineResult result = RunWith({}, 8, true);
  EXPECT_TRUE(result.documents.empty());
  EXPECT_TRUE(result.schema.empty());
  EXPECT_TRUE(result.mapped_documents.empty());
}

}  // namespace
}  // namespace webre
