#include <gtest/gtest.h>

#include "xml/dtd.h"
#include "xml/dtd_validator.h"
#include "xml/node.h"

namespace webre {
namespace {

ContentParticle Seq(std::vector<ContentParticle> members) {
  return ContentParticle::Sequence(std::move(members));
}

Dtd ResumeishDtd() {
  // <!ELEMENT resume ((#PCDATA), contact+, objective?, education+)>
  // <!ELEMENT contact (#PCDATA)> etc.
  Dtd dtd;
  dtd.set_root("resume");
  ElementDecl resume;
  resume.name = "resume";
  resume.content = Seq({ContentParticle::Pcdata(),
                        ContentParticle::Element("contact", Occurrence::kPlus),
                        ContentParticle::Element("objective",
                                                 Occurrence::kOptional),
                        ContentParticle::Element("education",
                                                 Occurrence::kPlus)});
  dtd.AddElement(resume);
  ElementDecl edu;
  edu.name = "education";
  edu.content = Seq({ContentParticle::Element("degree"),
                     ContentParticle::Element("date", Occurrence::kStar)});
  dtd.AddElement(edu);
  for (const char* leaf : {"contact", "objective", "degree", "date"}) {
    ElementDecl d;
    d.name = leaf;
    d.pcdata_only = true;
    dtd.AddElement(d);
  }
  return dtd;
}

TEST(DtdPrintTest, OccurrenceSuffixes) {
  EXPECT_EQ(OccurrenceSuffix(Occurrence::kOne), "");
  EXPECT_EQ(OccurrenceSuffix(Occurrence::kOptional), "?");
  EXPECT_EQ(OccurrenceSuffix(Occurrence::kStar), "*");
  EXPECT_EQ(OccurrenceSuffix(Occurrence::kPlus), "+");
}

TEST(DtdPrintTest, ParticleToString) {
  ContentParticle p = Seq({ContentParticle::Pcdata(),
                           ContentParticle::Element("a", Occurrence::kPlus),
                           ContentParticle::Choice(
                               {ContentParticle::Element("b"),
                                ContentParticle::Element("c")},
                               Occurrence::kOptional)});
  EXPECT_EQ(p.ToString(), "((#PCDATA), a+, (b | c)?)");
}

TEST(DtdPrintTest, ElementDeclToString) {
  Dtd dtd = ResumeishDtd();
  EXPECT_EQ(dtd.Find("contact")->ToString(),
            "<!ELEMENT contact (#PCDATA)>");
  EXPECT_EQ(dtd.Find("resume")->ToString(),
            "<!ELEMENT resume ((#PCDATA), contact+, objective?, "
            "education+)>");
}

TEST(DtdTest, AddElementReplacesByName) {
  Dtd dtd;
  ElementDecl a;
  a.name = "a";
  a.pcdata_only = true;
  dtd.AddElement(a);
  ElementDecl a2;
  a2.name = "a";
  a2.content = Seq({ContentParticle::Element("b")});
  dtd.AddElement(a2);
  EXPECT_EQ(dtd.elements().size(), 1u);
  EXPECT_FALSE(dtd.Find("a")->pcdata_only);
}

std::unique_ptr<Node> ValidResume() {
  auto root = Node::MakeElement("resume");
  root->AddText("text ok");
  root->AddElement("contact");
  root->AddElement("objective");
  Node* edu = root->AddElement("education");
  edu->AddElement("degree");
  edu->AddElement("date");
  edu->AddElement("date");
  return root;
}

TEST(DtdValidatorTest, AcceptsConformingDocument) {
  Dtd dtd = ResumeishDtd();
  auto doc = ValidResume();
  DtdValidationResult result = ValidateAgainstDtd(*doc, dtd);
  EXPECT_TRUE(result.valid()) << result.violations[0].message;
}

TEST(DtdValidatorTest, OptionalElementMayBeAbsent) {
  Dtd dtd = ResumeishDtd();
  auto root = Node::MakeElement("resume");
  root->AddElement("contact");
  Node* edu = root->AddElement("education");
  edu->AddElement("degree");
  EXPECT_TRUE(ConformsToDtd(*root, dtd));
}

TEST(DtdValidatorTest, PlusRequiresAtLeastOne) {
  Dtd dtd = ResumeishDtd();
  auto root = Node::MakeElement("resume");
  root->AddElement("objective");  // missing contact+ and education+
  DtdValidationResult result = ValidateAgainstDtd(*root, dtd);
  EXPECT_FALSE(result.valid());
}

TEST(DtdValidatorTest, PlusAllowsMany) {
  Dtd dtd = ResumeishDtd();
  auto root = Node::MakeElement("resume");
  root->AddElement("contact");
  root->AddElement("contact");
  root->AddElement("contact");
  Node* edu = root->AddElement("education");
  edu->AddElement("degree");
  EXPECT_TRUE(ConformsToDtd(*root, dtd));
}

TEST(DtdValidatorTest, WrongOrderRejected) {
  Dtd dtd = ResumeishDtd();
  auto root = Node::MakeElement("resume");
  Node* edu = root->AddElement("education");  // education before contact
  edu->AddElement("degree");
  root->AddElement("contact");
  EXPECT_FALSE(ConformsToDtd(*root, dtd));
}

TEST(DtdValidatorTest, UndeclaredElementReported) {
  Dtd dtd = ResumeishDtd();
  auto doc = ValidResume();
  doc->child(2)->AddElement("mystery");  // under education
  DtdValidationResult result = ValidateAgainstDtd(*doc, dtd);
  EXPECT_FALSE(result.valid());
  bool found = false;
  for (const DtdViolation& v : result.violations) {
    if (v.message.find("mystery") != std::string::npos) found = true;
  }
  EXPECT_TRUE(found);
}

TEST(DtdValidatorTest, PcdataOnlyRejectsElementChildren) {
  Dtd dtd = ResumeishDtd();
  auto doc = ValidResume();
  ASSERT_EQ(doc->child(1)->name(), "contact");
  doc->child(1)->AddElement("date");  // contact is (#PCDATA)
  EXPECT_FALSE(ConformsToDtd(*doc, dtd));
}

TEST(DtdValidatorTest, RootNameMustMatch) {
  Dtd dtd = ResumeishDtd();
  auto root = Node::MakeElement("cv");
  root->AddElement("contact");
  Node* edu = root->AddElement("education");
  edu->AddElement("degree");
  EXPECT_FALSE(ConformsToDtd(*root, dtd));
}

TEST(DtdValidatorTest, ValidationContinuesPastFirstViolation) {
  Dtd dtd = ResumeishDtd();
  auto root = Node::MakeElement("resume");
  root->AddElement("unknown1");
  root->AddElement("unknown2");
  DtdValidationResult result = ValidateAgainstDtd(*root, dtd);
  EXPECT_GE(result.violations.size(), 3u);  // content model + 2 undeclared
}

TEST(DtdValidatorTest, ChoiceMatchesEitherBranch) {
  Dtd dtd;
  dtd.set_root("r");
  ElementDecl r;
  r.name = "r";
  r.content = ContentParticle::Choice({ContentParticle::Element("a"),
                                       ContentParticle::Element("b")});
  dtd.AddElement(r);
  for (const char* leaf : {"a", "b"}) {
    ElementDecl d;
    d.name = leaf;
    d.pcdata_only = true;
    dtd.AddElement(d);
  }
  auto doc_a = Node::MakeElement("r");
  doc_a->AddElement("a");
  EXPECT_TRUE(ConformsToDtd(*doc_a, dtd));
  auto doc_b = Node::MakeElement("r");
  doc_b->AddElement("b");
  EXPECT_TRUE(ConformsToDtd(*doc_b, dtd));
  auto doc_ab = Node::MakeElement("r");
  doc_ab->AddElement("a");
  doc_ab->AddElement("b");
  EXPECT_FALSE(ConformsToDtd(*doc_ab, dtd));
}

TEST(DtdValidatorTest, NestedGroupsWithStar) {
  // r := ((a, b)*, c)
  Dtd dtd;
  dtd.set_root("r");
  ElementDecl r;
  r.name = "r";
  r.content = ContentParticle::Sequence(
      {ContentParticle::Sequence({ContentParticle::Element("a"),
                                  ContentParticle::Element("b")},
                                 Occurrence::kStar),
       ContentParticle::Element("c")});
  dtd.AddElement(r);
  for (const char* leaf : {"a", "b", "c"}) {
    ElementDecl d;
    d.name = leaf;
    d.pcdata_only = true;
    dtd.AddElement(d);
  }
  auto ok = Node::MakeElement("r");
  ok->AddElement("a");
  ok->AddElement("b");
  ok->AddElement("a");
  ok->AddElement("b");
  ok->AddElement("c");
  EXPECT_TRUE(ConformsToDtd(*ok, dtd));

  auto bad = Node::MakeElement("r");
  bad->AddElement("a");
  bad->AddElement("c");  // unpaired (a, b)
  EXPECT_FALSE(ConformsToDtd(*bad, dtd));

  auto just_c = Node::MakeElement("r");
  just_c->AddElement("c");
  EXPECT_TRUE(ConformsToDtd(*just_c, dtd));
}

}  // namespace
}  // namespace webre
