#include <gtest/gtest.h>

#include "html/parser.h"

namespace webre {
namespace {

// Finds the first descendant element named `name`, or null.
const Node* FindElement(const Node& root, std::string_view name) {
  if (root.is_element() && root.name() == name) return &root;
  for (size_t i = 0; i < root.child_count(); ++i) {
    const Node* found = FindElement(*root.child(i), name);
    if (found != nullptr) return found;
  }
  return nullptr;
}

TEST(HtmlParserTest, WellFormedDocument) {
  auto root = ParseHtml("<html><body><p>hi</p></body></html>");
  EXPECT_EQ(root->name(), "html");
  ASSERT_EQ(root->child_count(), 1u);
  EXPECT_EQ(root->child(0)->name(), "body");
  const Node* p = root->child(0)->child(0);
  EXPECT_EQ(p->name(), "p");
  ASSERT_EQ(p->child_count(), 1u);
  EXPECT_EQ(p->child(0)->text(), "hi");
}

TEST(HtmlParserTest, MissingHtmlElementSynthesized) {
  auto root = ParseHtml("<p>one</p><p>two</p>");
  EXPECT_EQ(root->name(), "html");
  EXPECT_EQ(root->child_count(), 2u);
  EXPECT_EQ(root->child(0)->name(), "p");
}

TEST(HtmlParserTest, ContentOutsideHtmlHoisted) {
  auto root = ParseHtml("before<html><p>in</p></html>after");
  EXPECT_EQ(root->name(), "html");
  ASSERT_EQ(root->child_count(), 3u);
  EXPECT_TRUE(root->child(0)->is_text());
  EXPECT_EQ(root->child(1)->name(), "p");
  EXPECT_TRUE(root->child(2)->is_text());
}

TEST(HtmlParserTest, ImpliedLiClose) {
  auto root = ParseHtml("<ul><li>a<li>b<li>c</ul>");
  const Node* ul = FindElement(*root, "ul");
  ASSERT_NE(ul, nullptr);
  ASSERT_EQ(ul->child_count(), 3u);
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(ul->child(i)->name(), "li");
    EXPECT_EQ(ul->child(i)->child_count(), 1u);
  }
}

TEST(HtmlParserTest, ImpliedPCloseOnBlock) {
  auto root = ParseHtml("<p>para<div>block</div>");
  // div must NOT be inside p.
  ASSERT_EQ(root->child_count(), 2u);
  EXPECT_EQ(root->child(0)->name(), "p");
  EXPECT_EQ(root->child(1)->name(), "div");
}

TEST(HtmlParserTest, ImpliedTableCellCloses) {
  auto root = ParseHtml(
      "<table><tr><td>a<td>b<tr><td>c</table>");
  const Node* table = FindElement(*root, "table");
  ASSERT_NE(table, nullptr);
  ASSERT_EQ(table->child_count(), 2u);
  EXPECT_EQ(table->child(0)->child_count(), 2u);  // two td in first tr
  EXPECT_EQ(table->child(1)->child_count(), 1u);
}

TEST(HtmlParserTest, ImpliedDtDdCloses) {
  auto root = ParseHtml("<dl><dt>term<dd>def<dt>term2<dd>def2</dl>");
  const Node* dl = FindElement(*root, "dl");
  ASSERT_NE(dl, nullptr);
  ASSERT_EQ(dl->child_count(), 4u);
  EXPECT_EQ(dl->child(0)->name(), "dt");
  EXPECT_EQ(dl->child(1)->name(), "dd");
}

TEST(HtmlParserTest, VoidElementsHaveNoChildren) {
  // <br> stays inside <p>; <hr> is block-level and implicitly closes it.
  auto root = ParseHtml("<p>a<br>b<hr>c</p>");
  const Node* p = FindElement(*root, "p");
  ASSERT_NE(p, nullptr);
  ASSERT_EQ(p->child_count(), 3u);
  EXPECT_EQ(p->child(1)->name(), "br");
  EXPECT_EQ(p->child(1)->child_count(), 0u);
  const Node* hr = FindElement(*root, "hr");
  ASSERT_NE(hr, nullptr);
  EXPECT_EQ(hr->parent(), p->parent());
  EXPECT_EQ(hr->child_count(), 0u);
}

TEST(HtmlParserTest, StrayEndTagIgnored) {
  auto root = ParseHtml("<p>a</b></p>");
  const Node* p = FindElement(*root, "p");
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(p->child_count(), 1u);
}

TEST(HtmlParserTest, MismatchedEndClosesToAncestor) {
  auto root = ParseHtml("<div><b>x</div>after");
  // </div> closes both b and div.
  ASSERT_GE(root->child_count(), 2u);
  EXPECT_EQ(root->child(0)->name(), "div");
  EXPECT_TRUE(root->child(1)->is_text());
}

TEST(HtmlParserTest, UnclosedElementsClosedAtEof) {
  auto root = ParseHtml("<div><ul><li>item");
  const Node* li = FindElement(*root, "li");
  ASSERT_NE(li, nullptr);
  EXPECT_EQ(li->child(0)->text(), "item");
}

TEST(HtmlParserTest, WhitespaceCollapsedInText) {
  auto root = ParseHtml("<p>a\n   b\t c</p>");
  const Node* p = FindElement(*root, "p");
  EXPECT_EQ(p->child(0)->text(), "a b c");
}

TEST(HtmlParserTest, WhitespaceOnlyTextDropped) {
  auto root = ParseHtml("<ul>\n  <li>a</li>\n  <li>b</li>\n</ul>");
  const Node* ul = FindElement(*root, "ul");
  ASSERT_NE(ul, nullptr);
  EXPECT_EQ(ul->child_count(), 2u);
}

TEST(HtmlParserTest, AttributesDroppedByDefault) {
  auto root = ParseHtml("<p class=\"x\" id=\"y\">t</p>");
  const Node* p = FindElement(*root, "p");
  EXPECT_TRUE(p->attributes().empty());
}

TEST(HtmlParserTest, AttributesKeptOnRequest) {
  HtmlParseOptions options;
  options.keep_attributes = true;
  auto root = ParseHtml("<a href=\"x.html\">t</a>", options);
  const Node* a = FindElement(*root, "a");
  EXPECT_EQ(a->attr("href"), "x.html");
}

TEST(HtmlParserTest, CommentsDroppedByDefault) {
  auto root = ParseHtml("<p><!-- hidden -->shown</p>");
  const Node* p = FindElement(*root, "p");
  ASSERT_EQ(p->child_count(), 1u);
  EXPECT_EQ(p->child(0)->text(), "shown");
}

TEST(HtmlParserTest, EmptyInputYieldsEmptyRoot) {
  auto root = ParseHtml("");
  EXPECT_EQ(root->name(), "html");
  EXPECT_EQ(root->child_count(), 0u);
}

TEST(HtmlParserTest, TextSplitByIgnoredMarkupMerges) {
  auto root = ParseHtml("<p>one<!-- c -->two</p>");
  const Node* p = FindElement(*root, "p");
  ASSERT_EQ(p->child_count(), 1u);
  EXPECT_EQ(p->child(0)->text(), "one two");
}

TEST(HtmlParserTest, DeeplyNestedSurvives) {
  std::string html;
  for (int i = 0; i < 200; ++i) html += "<div>";
  html += "x";
  auto root = ParseHtml(html);
  // Walk to the bottom.
  const Node* node = root.get();
  size_t depth = 0;
  while (node->child_count() > 0 && node->child(0)->is_element()) {
    node = node->child(0);
    ++depth;
  }
  EXPECT_EQ(depth, 200u);
}

TEST(HtmlParserTest, HeadAndBodyPreserved) {
  auto root = ParseHtml(
      "<html><head><title>T</title></head><body>B</body></html>");
  ASSERT_EQ(root->child_count(), 2u);
  EXPECT_EQ(root->child(0)->name(), "head");
  EXPECT_EQ(root->child(1)->name(), "body");
  EXPECT_NE(FindElement(*root, "title"), nullptr);
}

}  // namespace
}  // namespace webre
