#include <gtest/gtest.h>

#include "mapping/tree_edit.h"

namespace webre {
namespace {

std::unique_ptr<Node> Leafy(const std::string& name) {
  return Node::MakeElement(name);
}

// resume(a b(c d))
std::unique_ptr<Node> Sample() {
  auto root = Node::MakeElement("resume");
  root->AddElement("a");
  Node* b = root->AddElement("b");
  b->AddElement("c");
  b->AddElement("d");
  return root;
}

TEST(TreeEditTest, IdenticalTreesZero) {
  auto a = Sample();
  auto b = Sample();
  EXPECT_DOUBLE_EQ(TreeEditDistance(*a, *b), 0.0);
}

TEST(TreeEditTest, SingleRelabel) {
  auto a = Sample();
  auto b = Sample();
  b->child(1)->set_name("z");
  EXPECT_DOUBLE_EQ(TreeEditDistance(*a, *b), 1.0);
}

TEST(TreeEditTest, RootRelabel) {
  auto a = Leafy("x");
  auto b = Leafy("y");
  EXPECT_DOUBLE_EQ(TreeEditDistance(*a, *b), 1.0);
}

TEST(TreeEditTest, InsertLeaf) {
  auto a = Sample();
  auto b = Sample();
  b->child(1)->AddElement("e");
  EXPECT_DOUBLE_EQ(TreeEditDistance(*a, *b), 1.0);
}

TEST(TreeEditTest, DeleteSubtreeCostsItsSize) {
  auto a = Sample();         // 5 nodes
  auto b = Leafy("resume");  // 1 node
  EXPECT_DOUBLE_EQ(TreeEditDistance(*a, *b), 4.0);
}

TEST(TreeEditTest, Symmetry) {
  auto a = Sample();
  auto b = Sample();
  b->child(0)->set_name("q");
  b->AddElement("extra");
  EXPECT_DOUBLE_EQ(TreeEditDistance(*a, *b), TreeEditDistance(*b, *a));
}

TEST(TreeEditTest, TriangleInequality) {
  auto a = Sample();
  auto b = Sample();
  b->child(1)->set_name("z");
  auto c = Sample();
  c->RemoveChild(0);
  c->AddElement("w");
  const double ab = TreeEditDistance(*a, *b);
  const double bc = TreeEditDistance(*b, *c);
  const double ac = TreeEditDistance(*a, *c);
  EXPECT_LE(ac, ab + bc + 1e-9);
}

TEST(TreeEditTest, DeleteInnerNodeCostsOne) {
  // a(b(c)) vs a(c): removing b keeps c.
  auto a = Node::MakeElement("a");
  a->AddElement("b")->AddElement("c");
  auto b = Node::MakeElement("a");
  b->AddElement("c");
  EXPECT_DOUBLE_EQ(TreeEditDistance(*a, *b), 1.0);
}

TEST(TreeEditTest, OrderMatters) {
  // Ordered tree edit distance: swapping two distinct leaves costs 2
  // (delete + insert) under unit costs.
  auto a = Node::MakeElement("r");
  a->AddElement("x");
  a->AddElement("y");
  auto b = Node::MakeElement("r");
  b->AddElement("y");
  b->AddElement("x");
  EXPECT_DOUBLE_EQ(TreeEditDistance(*a, *b), 2.0);
}

TEST(TreeEditTest, CustomCosts) {
  TreeEditCosts costs;
  costs.relabel = 10.0;  // cheaper to delete + insert
  auto a = Leafy("x");
  a->AddElement("p");
  auto b = Leafy("x");
  b->AddElement("q");
  EXPECT_DOUBLE_EQ(TreeEditDistance(*a, *b, costs), 2.0);
}

TEST(TreeEditTest, TextNodesIgnored) {
  auto a = Sample();
  auto b = Sample();
  b->AddText("some text");
  b->child(0)->AddText("more");
  EXPECT_DOUBLE_EQ(TreeEditDistance(*a, *b), 0.0);
}

TEST(TreeEditTest, DeepChainVsFlat) {
  // chain a>b>c>d vs flat a(b c d): distance reflects restructuring.
  auto chain = Node::MakeElement("a");
  chain->AddElement("b")->AddElement("c")->AddElement("d");
  auto flat = Node::MakeElement("a");
  flat->AddElement("b");
  flat->AddElement("c");
  flat->AddElement("d");
  const double d = TreeEditDistance(*chain, *flat);
  EXPECT_GT(d, 0.0);
  EXPECT_LE(d, 4.0);
}

TEST(TreeEditTest, LargerRandomishTreesAgreeWithBounds) {
  // Distance is bounded by size sum and at least the size difference.
  auto a = Node::MakeElement("r");
  Node* cursor = a.get();
  for (int i = 0; i < 10; ++i) {
    // Separate appends: GCC 12 -O2 flags the equivalent operator+ chain
    // with -Werror=restrict.
    std::string name = "n";
    name += std::to_string(i % 3);
    cursor = cursor->AddElement(name);
    cursor->AddElement("leaf");
  }
  auto b = Node::MakeElement("r");
  b->AddElement("n0")->AddElement("leaf");
  const double d = TreeEditDistance(*a, *b);
  EXPECT_GE(d, 21.0 - 3.0);
  EXPECT_LE(d, 21.0 + 3.0);
}

}  // namespace
}  // namespace webre
