// Crash-recovery matrix (DESIGN.md §14): a child process ingests (and
// checkpoints) with WEBRE_CRASH_POINT armed, dies mid-write at every
// durability boundary the storage layer has, and the parent then
// reopens the directory. Recovery must always yield a dense document
// prefix whose query results are byte-identical to a fresh in-memory
// build over the same documents — no partial document, no lost
// acknowledged write below the chosen sync level, no UB.
//
// The parent deliberately never calls DurableRepository::Add or
// Checkpoint itself: CrashPointArmed caches getenv once per process,
// and the fork children must each read their own armed point.

#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "repository/repository.h"
#include "storage/crash_point.h"
#include "storage/durable_repository.h"
#include "storage/wal.h"
#include "util/file.h"
#include "util/rng.h"
#include "xml/node.h"

namespace webre {
namespace storage {
namespace {

constexpr size_t kDocs = 12;
constexpr size_t kHalf = kDocs / 2;

const char* const kQueries[] = {
    "/resume/EDUCATION/DATE",
    "//DATE",
    "//LANGUAGE[val~\"java\"]",
    "/resume/*/PHONE",
    "//*[val~\"199\"]",
};

std::unique_ptr<Node> MakeDoc(size_t index) {
  Rng rng(0xC4A5E0u + index);
  std::unique_ptr<Node> root = Node::MakeElement("resume");
  Node* contact = root->AddElement("CONTACT");
  contact->AddElement("LOCATION")->set_val(
      "city-" + std::to_string(rng.NextBelow(20)));
  if (rng.NextBool(0.7)) {
    contact->AddElement("PHONE")->set_val(
        "555-" + std::to_string(rng.NextBelow(9999)));
  }
  Node* education = root->AddElement("EDUCATION");
  const size_t degrees = 1 + rng.NextBelow(3);
  for (size_t d = 0; d < degrees; ++d) {
    Node* date = education->AddElement("DATE");
    date->set_val(std::to_string(1990 + rng.NextBelow(12)));
    date->AddElement("DEGREE")->set_val(rng.NextBool(0.5) ? "BS" : "MS");
  }
  root->AddElement("SKILLS")->AddElement("LANGUAGE")->set_val(
      rng.NextBool(0.5) ? "Java" : "Prolog");
  return root;
}

DurableOptions Opts(WalSyncMode sync = WalSyncMode::kFdatasync) {
  DurableOptions options;
  options.repository.num_shards = 2;
  options.repository.query_threads = 1;
  options.wal_sync = sync;
  return options;
}

std::string FreshDir(const std::string& name) {
  const std::string dir = testing::TempDir() + "/" + name;
  (void)::system(("rm -rf '" + dir + "'").c_str());
  return dir;
}

// ---- child-side scenarios (plain exit codes, no gtest) ----

// Adds kDocs documents; a wal.append.* point kills the process during
// the very first Add.
void IngestScenario(const std::string& dir) {
  auto durable = DurableRepository::Open(dir, Opts());
  if (!durable.ok()) ::_exit(3);
  for (size_t i = 0; i < kDocs; ++i) {
    if (!(*durable)->Add(MakeDoc(i)).ok()) ::_exit(4);
  }
}

// Adds half, checkpoints (where every checkpoint.* point kills the
// process), then adds the rest.
void CheckpointScenario(const std::string& dir) {
  auto durable = DurableRepository::Open(dir, Opts(WalSyncMode::kNone));
  if (!durable.ok()) ::_exit(3);
  for (size_t i = 0; i < kHalf; ++i) {
    if (!(*durable)->Add(MakeDoc(i)).ok()) ::_exit(4);
  }
  if (!(*durable)->Checkpoint().ok()) ::_exit(5);
  for (size_t i = kHalf; i < kDocs; ++i) {
    if (!(*durable)->Add(MakeDoc(i)).ok()) ::_exit(4);
  }
}

// Runs `scenario` in a fork with WEBRE_CRASH_POINT=point (unset when
// null); returns the child's exit code.
int RunChild(const char* point, void (*scenario)(const std::string&),
             const std::string& dir) {
  ::fflush(nullptr);
  const pid_t pid = ::fork();
  if (pid == 0) {
    if (point != nullptr) ::setenv("WEBRE_CRASH_POINT", point, 1);
    scenario(dir);
    ::_exit(0);
  }
  int status = 0;
  if (::waitpid(pid, &status, 0) != pid || !WIFEXITED(status)) return -1;
  return WEXITSTATUS(status);
}

// ---- parent-side verification ----

std::vector<std::pair<DocId, uint32_t>> Run(const XmlRepository& repo,
                                            const char* query) {
  auto matches = repo.Query(query);
  EXPECT_TRUE(matches.ok()) << matches.status();
  std::vector<std::pair<DocId, uint32_t>> out;
  if (matches.ok()) {
    for (const QueryMatch& m : *matches) out.emplace_back(m.doc, m.pos);
  }
  return out;
}

// Reopens `dir`, asserts the recovered prefix has exactly
// `expected_docs` documents, and that every query answers identically
// to a fresh in-memory build over those documents. Reopens a second
// time to pin that recovery itself is idempotent.
void VerifyRecovery(const std::string& dir, size_t expected_docs) {
  RepositoryOptions fresh_options;
  fresh_options.num_shards = 2;
  fresh_options.query_threads = 1;
  XmlRepository fresh(fresh_options);
  for (size_t i = 0; i < expected_docs; ++i) {
    ASSERT_TRUE(fresh.Add(MakeDoc(i)).ok());
  }

  for (int reopen = 0; reopen < 2; ++reopen) {
    auto durable = DurableRepository::Open(dir, Opts());
    ASSERT_TRUE(durable.ok()) << durable.status();
    const XmlRepository& repo = (*durable)->repo();
    ASSERT_EQ(repo.size(), expected_docs) << "reopen " << reopen;
    // Everything recovered is accounted for: snapshot views + replay.
    const obs::StorageStatsView stats = (*durable)->stats();
    EXPECT_EQ(stats.mmap_hits + stats.wal_replayed, expected_docs);
    for (const char* query : kQueries) {
      EXPECT_EQ(Run(repo, query), Run(fresh, query))
          << query << " (reopen " << reopen << ")";
    }
  }
}

struct CrashCase {
  const char* point;  // null = control run, no crash
  bool checkpoint_scenario;
  size_t expected_docs;
};

// Documents that survive each kill, given _exit semantics: a completed
// write() is in the kernel and survives a process crash even unsynced;
// a torn or never-issued write is gone. Crashes fire on the first Add
// (wal scenario) or inside the lone Checkpoint (checkpoint scenario).
const CrashCase kCases[] = {
    {nullptr, false, kDocs},                       // control
    {"wal.append.before_write", false, 0},         //
    {"wal.append.torn", false, 0},                 // torn half-record
    {"wal.append.before_sync", false, 1},          //
    {"wal.append.after_sync", false, 1},           //
    {nullptr, true, kDocs},                        // control
    {"checkpoint.before_tmp", true, kHalf},        //
    {"checkpoint.tmp.torn", true, kHalf},          // torn snapshot.tmp
    {"checkpoint.before_tmp_sync", true, kHalf},   //
    {"checkpoint.before_rename", true, kHalf},     //
    {"checkpoint.before_dir_sync", true, kHalf},   //
    {"checkpoint.before_wal_truncate", true, kHalf},
    {"checkpoint.mid_wal_truncate", true, kHalf},  // half-truncated WALs
    {"checkpoint.done", true, kHalf},              //
};

TEST(CrashInjection, EveryCrashPointRecoversConsistently) {
  // The matrix covers every point the storage layer declares (plus two
  // clean controls); fail loudly if a new point is added unexercised.
  size_t exercised = 0;
  for (const CrashCase& c : kCases) {
    if (c.point != nullptr) ++exercised;
  }
  ASSERT_EQ(exercised, kCrashPointCount);

  for (const CrashCase& c : kCases) {
    SCOPED_TRACE(c.point != nullptr ? c.point : "(control)");
    const std::string dir =
        FreshDir(std::string("crash_") +
                 (c.point != nullptr ? c.point : "control") +
                 (c.checkpoint_scenario ? "_ckpt" : "_wal"));
    const int code = RunChild(
        c.point, c.checkpoint_scenario ? CheckpointScenario : IngestScenario,
        dir);
    if (c.point == nullptr) {
      ASSERT_EQ(code, 0);
    } else {
      ASSERT_EQ(code, kCrashExitCode);
    }
    VerifyRecovery(dir, c.expected_docs);
  }
}

TEST(CrashInjection, TornWalTailTruncatesToPrefix) {
  const std::string dir = FreshDir("crash_torn_tail");
  ASSERT_EQ(RunChild(nullptr, IngestScenario, dir), 0);

  // Chop bytes off shard 0's log: its last record (doc 10) is torn, so
  // the dense prefix ends there and doc 11 is dropped with it.
  const std::string wal0 = dir + "/wal-0.log";
  struct stat st;
  ASSERT_EQ(::stat(wal0.c_str(), &st), 0);
  ASSERT_GT(st.st_size, static_cast<off_t>(kWalHeaderSize + 5));
  ASSERT_EQ(::truncate(wal0.c_str(), st.st_size - 5), 0);

  VerifyRecovery(dir, 10);
}

TEST(CrashInjection, BitFlippedWalRecordTruncatesToPrefix) {
  const std::string dir = FreshDir("crash_bit_flip");
  ASSERT_EQ(RunChild(nullptr, IngestScenario, dir), 0);

  // Flip one byte inside shard 1's first record (doc 1): its CRC fails,
  // shard 1 contributes nothing, and only doc 0 stays dense.
  const std::string wal1 = dir + "/wal-1.log";
  auto contents = ReadFile(wal1);
  ASSERT_TRUE(contents.ok());
  std::string bytes = std::move(*contents);
  ASSERT_GT(bytes.size(), kWalHeaderSize + 10);
  bytes[kWalHeaderSize + 10] ^= 0x20;
  ASSERT_TRUE(WriteFileAtomic(wal1, bytes).ok());

  VerifyRecovery(dir, 1);
}

}  // namespace
}  // namespace storage
}  // namespace webre
