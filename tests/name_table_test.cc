// NameTable interner: seeded-vocabulary stability, dynamic interning,
// lowercase interning, and the concurrency contract (lock-free reads,
// consistent ids under concurrent interning of the same names).

#include "xml/name_table.h"

#include <string>
#include <thread>
#include <vector>

#include "gtest/gtest.h"

namespace webre {
namespace {

TEST(NameTableTest, SeededVocabularyIsPresentAndStable) {
  NameTable& table = NameTable::Global();
  // Core synthetic names and common HTML tags are seeded: Find never
  // inserts, so a hit proves they were there before this test ran.
  for (const char* name : {"#root", "#comment", "TOKEN", "GROUP", "html",
                           "body", "div", "p", "table", "td"}) {
    const NameId id = table.Find(name);
    ASSERT_NE(id, kInvalidNameId) << name;
    EXPECT_LT(id, table.seed_count()) << name;
    EXPECT_EQ(table.NameOf(id), name);
  }
  EXPECT_GT(table.seed_count(), 0u);
  EXPECT_GE(table.size(), table.seed_count());
}

TEST(NameTableTest, InternRoundTripsAndIsIdempotent) {
  NameTable& table = NameTable::Global();
  const NameId id = table.Intern("name-table-test-dynamic-tag");
  ASSERT_NE(id, kInvalidNameId);
  EXPECT_EQ(table.NameOf(id), "name-table-test-dynamic-tag");
  EXPECT_EQ(table.Intern("name-table-test-dynamic-tag"), id);
  EXPECT_EQ(table.Find("name-table-test-dynamic-tag"), id);
}

TEST(NameTableTest, FindNeverInserts) {
  NameTable& table = NameTable::Global();
  const size_t before = table.size();
  EXPECT_EQ(table.Find("name-table-test-never-interned"), kInvalidNameId);
  EXPECT_EQ(table.size(), before);
}

TEST(NameTableTest, InternLowercaseMatchesLoweredIntern) {
  NameTable& table = NameTable::Global();
  // Seeded tag through the lexer's fast path.
  EXPECT_EQ(table.InternLowercase("DIV"), table.Find("div"));
  EXPECT_EQ(table.InternLowercase("TaBlE"), table.Find("table"));
  // A name longer than the stack buffer still lowercases correctly.
  std::string long_name(100, 'Q');
  const NameId long_id = table.InternLowercase(long_name);
  EXPECT_EQ(table.NameOf(long_id), std::string(100, 'q'));
}

TEST(NameTableTest, InvalidIdMapsToEmptyView) {
  EXPECT_EQ(NameTable::Global().NameOf(kInvalidNameId), std::string_view());
}

TEST(NameTableTest, EqualIdsIffEqualStrings) {
  NameTable& table = NameTable::Global();
  const NameId a = table.Intern("name-table-test-a");
  const NameId b = table.Intern("name-table-test-b");
  EXPECT_NE(a, b);
  EXPECT_EQ(table.Intern("name-table-test-a"), a);
}

TEST(NameTableTest, ConcurrentInterningAgreesOnIds) {
  // Many threads intern the same fresh vocabulary while also reading
  // seeded names. Every thread must observe the same id per name and
  // NameOf must round-trip — this pins the publication ordering in
  // NameTable::Append.
  constexpr int kThreads = 8;
  constexpr int kNames = 64;
  std::vector<std::string> names;
  for (int i = 0; i < kNames; ++i) {
    names.push_back("concurrent-intern-" + std::to_string(i));
  }
  std::vector<std::vector<NameId>> ids(kThreads,
                                       std::vector<NameId>(kNames));
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t, &names, &ids] {
      NameTable& table = NameTable::Global();
      for (int i = 0; i < kNames; ++i) {
        // Interleave order per thread so insertion races actually occur.
        const int k = (i * 7 + t * 13) % kNames;
        const NameId id = table.Intern(names[static_cast<size_t>(k)]);
        EXPECT_EQ(table.NameOf(id), names[static_cast<size_t>(k)]);
        ids[static_cast<size_t>(t)][static_cast<size_t>(k)] = id;
        EXPECT_NE(table.Find("html"), kInvalidNameId);
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  for (int t = 1; t < kThreads; ++t) {
    EXPECT_EQ(ids[static_cast<size_t>(t)], ids[0]) << "thread " << t;
  }
}

}  // namespace
}  // namespace webre
