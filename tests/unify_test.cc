#include <gtest/gtest.h>

#include "schema/dtd_builder.h"
#include "schema/unify.h"

namespace webre {
namespace {

SchemaNode Leaf(const std::string& label, size_t docs = 10) {
  SchemaNode node;
  node.label = label;
  node.doc_count = docs;
  return node;
}

// resume -> education -> date(degree, institution)
//        -> courses  -> date(degree)           [similar structure]
MajoritySchema TwoDateSchema(size_t courses_date_docs = 5) {
  SchemaNode root = Leaf("resume");
  SchemaNode education = Leaf("education");
  SchemaNode edu_date = Leaf("date", 10);
  edu_date.children.push_back(Leaf("degree"));
  edu_date.children.push_back(Leaf("institution"));
  education.children.push_back(edu_date);
  SchemaNode courses = Leaf("courses");
  SchemaNode course_date = Leaf("date", courses_date_docs);
  course_date.children.push_back(Leaf("degree"));
  courses.children.push_back(course_date);
  root.children.push_back(education);
  root.children.push_back(courses);
  return MajoritySchema(std::move(root));
}

TEST(UnifyTest, EmptySchemaNoop) {
  MajoritySchema schema;
  UnificationReport report = UnifySchema(schema);
  EXPECT_TRUE(report.unified.empty());
}

TEST(UnifyTest, UniqueLabelsUntouched) {
  SchemaNode root = Leaf("resume");
  root.children.push_back(Leaf("contact"));
  root.children.push_back(Leaf("education"));
  MajoritySchema schema(std::move(root));
  UnificationReport report = UnifySchema(schema);
  EXPECT_TRUE(report.unified.empty());
  EXPECT_EQ(schema.NodeCount(), 3u);
}

TEST(UnifyTest, SimilarOccurrencesShareStructure) {
  MajoritySchema schema = TwoDateSchema();
  UnificationReport report = UnifySchema(schema, /*min_similarity=*/0.5);
  ASSERT_EQ(report.unified.size(), 1u);
  EXPECT_EQ(report.unified[0].label, "date");
  EXPECT_EQ(report.unified[0].occurrences, 2u);
  EXPECT_NEAR(report.unified[0].similarity, 0.5, 1e-9);  // {deg,inst} vs {deg}
  EXPECT_EQ(report.unified[0].merged_children, 2u);

  // Both positions now carry (degree, institution).
  const SchemaNode* edu_date =
      schema.Find({"resume", "education", "date"});
  const SchemaNode* course_date =
      schema.Find({"resume", "courses", "date"});
  ASSERT_NE(edu_date, nullptr);
  ASSERT_NE(course_date, nullptr);
  EXPECT_EQ(edu_date->children.size(), 2u);
  EXPECT_EQ(course_date->children.size(), 2u);
  EXPECT_EQ(course_date->children[0].label, "degree");
  EXPECT_EQ(course_date->children[1].label, "institution");
}

TEST(UnifyTest, DissimilarOccurrencesLeftAlone) {
  // date(degree, institution) vs date(price, warranty): Jaccard 0.
  SchemaNode root = Leaf("resume");
  SchemaNode a = Leaf("x");
  SchemaNode date1 = Leaf("date");
  date1.children.push_back(Leaf("degree"));
  date1.children.push_back(Leaf("institution"));
  a.children.push_back(date1);
  SchemaNode b = Leaf("y");
  SchemaNode date2 = Leaf("date");
  date2.children.push_back(Leaf("price"));
  date2.children.push_back(Leaf("warranty"));
  b.children.push_back(date2);
  root.children.push_back(a);
  root.children.push_back(b);
  MajoritySchema schema(std::move(root));

  UnificationReport report = UnifySchema(schema, /*min_similarity=*/0.5);
  EXPECT_TRUE(report.unified.empty());
  EXPECT_EQ(schema.Find({"resume", "x", "date"})->children.size(), 2u);
  EXPECT_EQ(schema.Find({"resume", "x", "date"})->children[0].label,
            "degree");
}

TEST(UnifyTest, LeafOccurrenceJoinsStructuredGroup) {
  // date leaf under one section, date(degree) under another: the leaf is
  // the degenerate case and adopts the structure.
  SchemaNode root = Leaf("resume");
  SchemaNode a = Leaf("education");
  SchemaNode structured = Leaf("date");
  structured.children.push_back(Leaf("degree"));
  a.children.push_back(structured);
  SchemaNode b = Leaf("experience");
  b.children.push_back(Leaf("date"));  // leaf
  root.children.push_back(a);
  root.children.push_back(b);
  MajoritySchema schema(std::move(root));

  UnificationReport report = UnifySchema(schema);
  ASSERT_EQ(report.unified.size(), 1u);
  EXPECT_EQ(
      schema.Find({"resume", "experience", "date"})->children.size(), 1u);
}

TEST(UnifyTest, AllLeavesNothingToUnify) {
  SchemaNode root = Leaf("resume");
  SchemaNode a = Leaf("x");
  a.children.push_back(Leaf("date"));
  SchemaNode b = Leaf("y");
  b.children.push_back(Leaf("date"));
  root.children.push_back(a);
  root.children.push_back(b);
  MajoritySchema schema(std::move(root));
  EXPECT_TRUE(UnifySchema(schema).unified.empty());
}

TEST(UnifyTest, BestSupportedStatisticsWin) {
  MajoritySchema schema = TwoDateSchema(/*courses_date_docs=*/5);
  // Tag the anchor's degree child so we can see whose copy survives.
  SchemaNode* edu_date = nullptr;
  for (SchemaNode& section : schema.mutable_root().children) {
    for (SchemaNode& child : section.children) {
      if (section.label == "education" && child.label == "date") {
        edu_date = &child;
      }
    }
  }
  ASSERT_NE(edu_date, nullptr);
  edu_date->children[0].doc_count = 42;
  UnifySchema(schema);
  EXPECT_EQ(
      schema.Find({"resume", "courses", "date"})->children[0].doc_count,
      42u);
}

TEST(UnifyTest, DtdAfterUnificationHasNoSpuriousOptionals) {
  // Without unification the DTD merge must mark non-common children
  // optional; after unification every occurrence genuinely has the
  // unified children, so the declaration is exact.
  MajoritySchema schema = TwoDateSchema();
  UnifySchema(schema);
  Dtd dtd = BuildDtd(schema);
  const ElementDecl* date = dtd.Find("date");
  ASSERT_NE(date, nullptr);
  EXPECT_EQ(date->ToString(),
            "<!ELEMENT date ((#PCDATA), degree, institution)>");
}

TEST(UnifyTest, SelfNestedLabelDoesNotExplode) {
  // section -> section (same label nested): unification must terminate.
  SchemaNode root = Leaf("resume");
  SchemaNode outer = Leaf("section");
  SchemaNode inner = Leaf("section");
  inner.children.push_back(Leaf("item"));
  outer.children.push_back(inner);
  outer.children.push_back(Leaf("item"));
  root.children.push_back(outer);
  MajoritySchema schema(std::move(root));
  UnifySchema(schema, /*min_similarity=*/0.3);
  // Bounded depth: the tree is finite and contains both labels.
  EXPECT_LT(schema.NodeCount(), 20u);
}

}  // namespace
}  // namespace webre
