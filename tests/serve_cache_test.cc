// The generation-keyed query-result cache: LRU/byte-cap unit behaviour,
// the generation protocol (stale entries never served, racing inserts
// discarded), and the concurrent differential that is this cache's
// acceptance test — under a live writer, a cached result is NEVER
// served after its shard acknowledged a mutation the result predates.
// Run under WEBRE_SANITIZE=thread to prove the protocol is also
// race-free, not just linearizable by luck.

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "concepts/resume_domain.h"
#include "corpus/resume_generator.h"
#include "gtest/gtest.h"
#include "repository/repository.h"
#include "restructure/converter.h"
#include "restructure/recognizer.h"
#include "serve/cache.h"
#include "serve/frame.h"
#include "util/simd_scan.h"

namespace webre {
namespace serve {
namespace {

std::vector<uint64_t> Gen(std::initializer_list<uint64_t> values) {
  return std::vector<uint64_t>(values);
}

TEST(QueryCache, HitRequiresExactGenerationVector) {
  QueryCache cache(1u << 20);
  ASSERT_TRUE(cache.Insert("//DATE", Gen({1, 2}), Gen({1, 2}), "body-a"));

  std::string body;
  EXPECT_TRUE(cache.Lookup("//DATE", Gen({1, 2}), body));
  EXPECT_EQ(body, "body-a");
  EXPECT_EQ(cache.hits(), 1u);

  // Any shard advancing invalidates the entry — and the stale entry is
  // erased, so a THIRD lookup at the old vector also misses.
  EXPECT_FALSE(cache.Lookup("//DATE", Gen({1, 3}), body));
  EXPECT_FALSE(cache.Lookup("//DATE", Gen({1, 2}), body));
  EXPECT_EQ(cache.misses(), 2u);
}

TEST(QueryCache, RacedInsertDiscarded) {
  QueryCache cache(1u << 20);
  // A concurrent Add advanced shard 0 between evaluation start and
  // insert; the entry must not be stored.
  EXPECT_FALSE(cache.Insert("//DATE", Gen({1, 2}), Gen({2, 2}), "body-a"));
  std::string body;
  EXPECT_FALSE(cache.Lookup("//DATE", Gen({1, 2}), body));
  EXPECT_EQ(cache.bytes(), 0u);
}

TEST(QueryCache, LruEvictsByBytes) {
  // Each entry costs key + body + generations; size the cache for two.
  const std::string body(100, 'x');
  const size_t entry = 2 + body.size() + sizeof(uint64_t);
  QueryCache cache(2 * entry);

  ASSERT_TRUE(cache.Insert("q1", Gen({1}), Gen({1}), body));
  ASSERT_TRUE(cache.Insert("q2", Gen({1}), Gen({1}), body));
  std::string out;
  ASSERT_TRUE(cache.Lookup("q1", Gen({1}), out));  // q1 now most recent

  ASSERT_TRUE(cache.Insert("q3", Gen({1}), Gen({1}), body));
  EXPECT_EQ(cache.evictions(), 1u);
  EXPECT_TRUE(cache.Lookup("q1", Gen({1}), out));
  EXPECT_FALSE(cache.Lookup("q2", Gen({1}), out));  // LRU victim
  EXPECT_TRUE(cache.Lookup("q3", Gen({1}), out));
  EXPECT_LE(cache.bytes(), 2 * entry);
}

TEST(QueryCache, ZeroCapDisables) {
  QueryCache cache(0);
  EXPECT_FALSE(cache.Insert("q", Gen({1}), Gen({1}), "body"));
  std::string out;
  EXPECT_FALSE(cache.Lookup("q", Gen({1}), out));
}

TEST(QueryCache, LookupTakesAStringView) {
  QueryCache cache(1u << 20);
  ASSERT_TRUE(cache.Insert("//DATE", Gen({1}), Gen({1}), "body-a"));
  // The hit path is heterogeneous: probing with a view into a larger
  // buffer must find the entry without materializing a std::string key.
  const char* raw = "x//DATEx";
  const std::string_view view(raw + 1, 6);
  std::string out;
  EXPECT_TRUE(cache.Lookup(view, Gen({1}), out));
  EXPECT_EQ(out, "body-a");
}

TEST(QueryCache, StripesPartitionTheBudget) {
  const std::string body(100, 'x');
  QueryCache cache(8u << 10, /*stripes=*/8);
  EXPECT_EQ(cache.stripes(), 8u);

  // Keys spread over the stripes by hash; every insert must land and be
  // retrievable from its own stripe, and the total footprint must stay
  // within the whole-cache budget.
  for (int i = 0; i < 32; ++i) {
    const std::string key = "//Q" + std::to_string(i);
    ASSERT_TRUE(cache.Insert(key, Gen({1}), Gen({1}), body)) << key;
    std::string out;
    EXPECT_TRUE(cache.Lookup(key, Gen({1}), out)) << key;
    EXPECT_EQ(out, body);
  }
  EXPECT_LE(cache.bytes(), 8u << 10);

  // Stale-generation erasure works per stripe, same as unstriped.
  std::string out;
  EXPECT_FALSE(cache.Lookup("//Q0", Gen({2}), out));
  EXPECT_FALSE(cache.Lookup("//Q0", Gen({1}), out));
}

TEST(QueryCache, StripedEvictionIsPerStripe) {
  // One stripe only fits one entry; inserting a second key that hashes
  // to the SAME stripe evicts the first, while keys on other stripes
  // are untouched. We can't pick colliding keys portably, so assert the
  // weaker per-stripe budget invariant over many inserts.
  const std::string body(600, 'x');
  QueryCache cache(4 * (600 + 8 + 8), /*stripes=*/4);
  for (int i = 0; i < 64; ++i) {
    cache.Insert("key-" + std::to_string(i), Gen({1}), Gen({1}), body);
  }
  EXPECT_LE(cache.bytes(), 4u * (600 + 8 + 8));
  EXPECT_GT(cache.evictions(), 0u);
}

class CachedQueryTest : public testing::Test {
 protected:
  CachedQueryTest()
      : concepts_(ResumeConcepts()),
        constraints_(ResumeConstraints()),
        recognizer_(&concepts_),
        converter_(&concepts_, &recognizer_, &constraints_) {}

  std::unique_ptr<Node> Doc(size_t index) {
    return converter_.Convert(GenerateResume(index).html);
  }

  static uint64_t TotalMatches(const std::string& body) {
    Response response;
    response.type = MsgType::kQuery;
    EXPECT_TRUE(DecodeResponseBody(body, response));
    return response.total_matches;
  }

  ConceptSet concepts_;
  ConstraintSet constraints_;
  SynonymRecognizer recognizer_;
  DocumentConverter converter_;
};

TEST_F(CachedQueryTest, SecondEvaluationIsAHit) {
  RepositoryOptions options;
  options.num_shards = 2;
  XmlRepository repo(options);
  for (size_t i = 0; i < 8; ++i) ASSERT_TRUE(repo.Add(Doc(i)).ok());

  QueryCache cache(1u << 20);
  auto first = CachedQueryBody(repo, cache, "//DATE", 100);
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(cache.misses(), 1u);

  auto second = CachedQueryBody(repo, cache, "//DATE", 100);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(*first, *second);

  // A parse error caches nothing.
  EXPECT_FALSE(CachedQueryBody(repo, cache, "///", 100).ok());
}

TEST_F(CachedQueryTest, AddInvalidatesAcrossTheCache) {
  RepositoryOptions options;
  options.num_shards = 2;
  XmlRepository repo(options);
  ASSERT_TRUE(repo.Add(Doc(0)).ok());

  QueryCache cache(1u << 20);
  auto before = CachedQueryBody(repo, cache, "//DATE", 100);
  ASSERT_TRUE(before.ok());
  const uint64_t matches_before = TotalMatches(*before);

  ASSERT_TRUE(repo.Add(Doc(1)).ok());

  // The old body must not be served: generation changed, so this is a
  // miss re-evaluated against the repository that includes doc 1.
  auto after = CachedQueryBody(repo, cache, "//DATE", 100);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(cache.hits(), 0u);
  EXPECT_GT(TotalMatches(*after), matches_before);
}

TEST_F(CachedQueryTest, CachedBodiesAreByteIdenticalAcrossSimdLevels) {
  // The cache stores serialized response bodies, so the predicate
  // scanner must produce byte-identical match sequences at every SIMD
  // level — otherwise switching kernels (or machines) would make cached
  // and fresh answers diverge for the same generation vector.
  RepositoryOptions options;
  options.num_shards = 2;
  XmlRepository repo(options);
  for (size_t i = 0; i < 8; ++i) ASSERT_TRUE(repo.Add(Doc(i)).ok());

  const char* const kShapes[] = {"//DATE[val~\"199\"]",
                                 "//*[val~\"a\"]", "//DATE"};
  const SimdLevel saved = ActiveSimdLevel();
  std::vector<SimdLevel> levels = {SimdLevel::kScalar};
  if (DetectedSimdLevel() >= SimdLevel::kSse2) {
    levels.push_back(SimdLevel::kSse2);
  }
  if (DetectedSimdLevel() >= SimdLevel::kAvx2) {
    levels.push_back(SimdLevel::kAvx2);
  }
  for (const char* shape : kShapes) {
    std::vector<std::string> bodies;
    for (SimdLevel level : levels) {
      SetSimdLevelForTesting(level);
      QueryCache cache(1u << 20);  // fresh cache: every level evaluates
      auto body = CachedQueryBody(repo, cache, shape, 100);
      ASSERT_TRUE(body.ok()) << shape;
      bodies.push_back(*body);
    }
    for (size_t i = 1; i < bodies.size(); ++i) {
      EXPECT_EQ(bodies[0], bodies[i])
          << shape << " at level " << SimdLevelName(levels[i]);
    }
  }
  SetSimdLevelForTesting(saved);
}

// The differential: one writer admits copies of a fixed document (each
// adds exactly `per_doc` matches); readers hammer the cached query
// path. Invariant — a reader that observed `n` acknowledged documents
// BEFORE asking must see at least n * per_doc matches, cached or not.
// A cache serving one stale body violates this immediately, because
// the acknowledging Add bumped its shard's generation first.
TEST_F(CachedQueryTest, ConcurrentWriterNeverYieldsStaleResults) {
  RepositoryOptions options;
  options.num_shards = 4;
  XmlRepository repo(options);

  // Calibrate per-document match count with one seed admission.
  ASSERT_TRUE(repo.Add(Doc(0)).ok());
  QueryCache calibration(1u << 20);
  auto seed = CachedQueryBody(repo, calibration, "//DATE", 1000);
  ASSERT_TRUE(seed.ok());
  const uint64_t per_doc = TotalMatches(*seed);
  ASSERT_GT(per_doc, 0u);

  QueryCache cache(1u << 20);
  std::atomic<uint64_t> acked{1};  // the calibration document
  constexpr size_t kWrites = 40;

  std::thread writer([&] {
    for (size_t i = 0; i < kWrites; ++i) {
      ASSERT_TRUE(repo.Add(Doc(0)).ok());
      acked.fetch_add(1, std::memory_order_release);
    }
  });

  std::vector<std::thread> readers;
  for (int r = 0; r < 3; ++r) {
    readers.emplace_back([&] {
      for (int i = 0; i < 400; ++i) {
        const uint64_t floor = acked.load(std::memory_order_acquire);
        auto body = CachedQueryBody(repo, cache, "//DATE", 1);
        if (!body.ok()) {
          ADD_FAILURE() << body.status().ToString();
          return;
        }
        EXPECT_GE(TotalMatches(*body), floor * per_doc)
            << "cached result predates an acknowledged Add";
      }
    });
  }

  writer.join();
  for (std::thread& reader : readers) reader.join();

  // Final state: one more evaluation sees every write.
  auto final_body = CachedQueryBody(repo, cache, "//DATE", 1);
  ASSERT_TRUE(final_body.ok());
  EXPECT_EQ(TotalMatches(*final_body), (kWrites + 1) * per_doc);
}

// The striped variant of the differential: stripes = 8 so concurrent
// readers and the writer cross stripe boundaries, and FOUR distinct
// query shapes so several stripes hold live entries at once. The
// invariant is identical — striping must not weaken the generation
// protocol, because each key lives in exactly one stripe.
TEST_F(CachedQueryTest, StripedCacheConcurrentWriterNeverYieldsStale) {
  RepositoryOptions options;
  options.num_shards = 4;
  XmlRepository repo(options);

  ASSERT_TRUE(repo.Add(Doc(0)).ok());
  const char* const kShapes[] = {"//DATE", "//LANGUAGE", "//EMAIL",
                                 "/resume//DATE"};
  QueryCache calibration(1u << 20, /*stripes=*/8);
  uint64_t per_doc[4];
  for (int q = 0; q < 4; ++q) {
    auto seed = CachedQueryBody(repo, calibration, kShapes[q], 1000);
    ASSERT_TRUE(seed.ok());
    per_doc[q] = TotalMatches(*seed);
  }
  ASSERT_GT(per_doc[0], 0u);

  QueryCache cache(1u << 20, /*stripes=*/8);
  std::atomic<uint64_t> acked{1};
  constexpr size_t kWrites = 40;

  std::thread writer([&] {
    for (size_t i = 0; i < kWrites; ++i) {
      ASSERT_TRUE(repo.Add(Doc(0)).ok());
      acked.fetch_add(1, std::memory_order_release);
    }
  });

  std::vector<std::thread> readers;
  for (int r = 0; r < 4; ++r) {
    readers.emplace_back([&, r] {
      for (int i = 0; i < 300; ++i) {
        const int q = (r + i) % 4;
        const uint64_t floor = acked.load(std::memory_order_acquire);
        auto body = CachedQueryBody(repo, cache, kShapes[q], 1);
        if (!body.ok()) {
          ADD_FAILURE() << body.status().ToString();
          return;
        }
        EXPECT_GE(TotalMatches(*body), floor * per_doc[q])
            << "striped cache served a result predating an acked Add";
      }
    });
  }

  writer.join();
  for (std::thread& reader : readers) reader.join();

  for (int q = 0; q < 4; ++q) {
    auto final_body = CachedQueryBody(repo, cache, kShapes[q], 1);
    ASSERT_TRUE(final_body.ok());
    EXPECT_EQ(TotalMatches(*final_body), (kWrites + 1) * per_doc[q]);
  }
}

}  // namespace
}  // namespace serve
}  // namespace webre
