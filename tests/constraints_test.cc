#include <gtest/gtest.h>

#include "concepts/constraints.h"

namespace webre {
namespace {

TEST(ConstraintTest, ToStringForms) {
  EXPECT_EQ(ConceptConstraint::Parent("EDUCATION", "DEGREE").ToString(),
            "parent(EDUCATION, DEGREE)");
  EXPECT_EQ(ConceptConstraint::Sibling("DATE", "GPA", true).ToString(),
            "!sibling(DATE, GPA)");
  EXPECT_EQ(
      ConceptConstraint::Depth("CONTACT", DepthRelation::kEq, 1).ToString(),
      "depth(CONTACT) = 1");
  EXPECT_EQ(
      ConceptConstraint::Depth("DATE", DepthRelation::kGt, 1).ToString(),
      "depth(DATE) > 1");
}

TEST(ConstraintSetTest, DepthEquality) {
  ConstraintSet set;
  set.Add(ConceptConstraint::Depth("TITLE", DepthRelation::kEq, 1));
  EXPECT_TRUE(set.AllowedAtLevel("TITLE", 1));
  EXPECT_FALSE(set.AllowedAtLevel("TITLE", 2));
  EXPECT_TRUE(set.AllowedAtLevel("OTHER", 7));  // unconstrained
}

TEST(ConstraintSetTest, DepthGreaterAndLess) {
  ConstraintSet set;
  set.Add(ConceptConstraint::Depth("DEEP", DepthRelation::kGt, 1));
  set.Add(ConceptConstraint::Depth("SHALLOW", DepthRelation::kLt, 3));
  EXPECT_FALSE(set.AllowedAtLevel("DEEP", 1));
  EXPECT_TRUE(set.AllowedAtLevel("DEEP", 2));
  EXPECT_TRUE(set.AllowedAtLevel("SHALLOW", 2));
  EXPECT_FALSE(set.AllowedAtLevel("SHALLOW", 3));
}

TEST(ConstraintSetTest, NegatedDepth) {
  ConstraintSet set;
  set.Add(ConceptConstraint::Depth("X", DepthRelation::kEq, 2,
                                   /*negated=*/true));
  EXPECT_TRUE(set.AllowedAtLevel("X", 1));
  EXPECT_FALSE(set.AllowedAtLevel("X", 2));
  EXPECT_TRUE(set.AllowedAtLevel("X", 3));
}

TEST(ConstraintSetTest, MaxLevelCapsEverything) {
  ConstraintSet set;
  set.set_max_level(3);
  EXPECT_TRUE(set.AllowedAtLevel("ANY", 3));
  EXPECT_FALSE(set.AllowedAtLevel("ANY", 4));
}

TEST(ConstraintSetTest, NegatedParentBlocksAncestry) {
  ConstraintSet set;
  set.Add(ConceptConstraint::Parent("SKILLS", "DATE", /*negated=*/true));
  EXPECT_FALSE(set.AncestorAllowed("SKILLS", "DATE"));
  EXPECT_TRUE(set.AncestorAllowed("EDUCATION", "DATE"));
}

TEST(ConstraintSetTest, NegatedSiblingBlocksPair) {
  ConstraintSet set;
  set.Add(ConceptConstraint::Sibling("GPA", "COMPANY", /*negated=*/true));
  EXPECT_FALSE(set.SiblingAllowed("GPA", "COMPANY"));
  EXPECT_FALSE(set.SiblingAllowed("COMPANY", "GPA"));  // symmetric
  EXPECT_TRUE(set.SiblingAllowed("GPA", "DATE"));
}

TEST(ConstraintSetTest, PositiveSiblingIsHintNotExclusion) {
  ConstraintSet set;
  set.Add(ConceptConstraint::Sibling("DEGREE", "MAJOR"));
  EXPECT_TRUE(set.SiblingExpected("DEGREE", "MAJOR"));
  EXPECT_TRUE(set.SiblingExpected("MAJOR", "DEGREE"));
  EXPECT_FALSE(set.SiblingExpected("DEGREE", "DATE"));
  // Other pairs remain allowed.
  EXPECT_TRUE(set.SiblingAllowed("DEGREE", "DATE"));
}

TEST(PathAllowedTest, DepthConstraintsAlongPath) {
  ConstraintSet set;
  set.Add(ConceptConstraint::Depth("TITLE", DepthRelation::kEq, 1));
  set.Add(ConceptConstraint::Depth("CONTENT", DepthRelation::kGt, 1));
  EXPECT_TRUE(set.PathAllowed({"root", "TITLE", "CONTENT"}));
  EXPECT_FALSE(set.PathAllowed({"root", "CONTENT"}));
  EXPECT_FALSE(set.PathAllowed({"root", "TITLE", "TITLE2", "TITLE"}));
}

TEST(PathAllowedTest, NoRepeatOnPath) {
  ConstraintSet set;
  set.set_no_repeat_on_path(true);
  EXPECT_TRUE(set.PathAllowed({"root", "A", "B"}));
  EXPECT_FALSE(set.PathAllowed({"root", "A", "B", "A"}));
  EXPECT_FALSE(set.PathAllowed({"root", "root"}));
}

TEST(PathAllowedTest, PositiveParentRequiresAncestor) {
  ConstraintSet set;
  set.Add(ConceptConstraint::Parent("EDUCATION", "DEGREE"));
  EXPECT_TRUE(set.PathAllowed({"root", "EDUCATION", "DATE", "DEGREE"}));
  EXPECT_FALSE(set.PathAllowed({"root", "EXPERIENCE", "DEGREE"}));
  // Paths without DEGREE are unaffected.
  EXPECT_TRUE(set.PathAllowed({"root", "EXPERIENCE", "DATE"}));
}

TEST(PathAllowedTest, NegatedParentForbidsAncestor) {
  ConstraintSet set;
  set.Add(ConceptConstraint::Parent("SKILLS", "DATE", /*negated=*/true));
  EXPECT_FALSE(set.PathAllowed({"root", "SKILLS", "DATE"}));
  EXPECT_FALSE(set.PathAllowed({"root", "SKILLS", "X", "DATE"}));
  EXPECT_TRUE(set.PathAllowed({"root", "EDUCATION", "DATE"}));
}

TEST(PathAllowedTest, EmptyConstraintSetAllowsEverything) {
  ConstraintSet set;
  EXPECT_TRUE(set.PathAllowed({"root", "A", "B", "C", "D", "E", "A"}));
}

}  // namespace
}  // namespace webre
