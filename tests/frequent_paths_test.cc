#include <gtest/gtest.h>

#include "schema/frequent_paths.h"

namespace webre {
namespace {

// The three trees of Figure 2.
std::unique_ptr<Node> TreeA() {
  auto root = Node::MakeElement("resume");
  root->AddElement("objective");
  root->AddElement("contact");
  Node* education = root->AddElement("education");
  education->AddElement("degree");
  education->AddElement("date");
  education->AddElement("institution");
  return root;
}

std::unique_ptr<Node> TreeB() {
  auto root = Node::MakeElement("resume");
  root->AddElement("contact");
  Node* education = root->AddElement("education");
  Node* degree = education->AddElement("degree");
  degree->AddElement("date");
  degree->AddElement("institution");
  Node* degree2 = education->AddElement("degree");
  degree2->AddElement("date");
  degree2->AddElement("institution");
  return root;
}

std::unique_ptr<Node> TreeC() {
  auto root = Node::MakeElement("resume");
  Node* education = root->AddElement("education");
  Node* inst = education->AddElement("institution");
  inst->AddElement("degree");
  inst->AddElement("date");
  return root;
}

TEST(FrequentPathsTest, EmptyMinerYieldsEmptySchema) {
  FrequentPathMiner miner;
  MajoritySchema schema = miner.Discover();
  EXPECT_TRUE(schema.empty());
  EXPECT_EQ(schema.NodeCount(), 0u);
}

TEST(FrequentPathsTest, SupportComputedPerDocument) {
  FrequentPathMiner miner;
  auto a = TreeA();
  auto b = TreeB();
  auto c = TreeC();
  miner.AddDocument(*a);
  miner.AddDocument(*b);
  miner.AddDocument(*c);

  MiningOptions& options = miner.mutable_options();
  options.sup_threshold = 0.0;
  options.ratio_threshold = 0.0;
  MajoritySchema schema = miner.Discover();

  const SchemaNode* education = schema.Find({"resume", "education"});
  ASSERT_NE(education, nullptr);
  EXPECT_EQ(education->doc_count, 3u);
  EXPECT_DOUBLE_EQ(education->support, 1.0);

  const SchemaNode* contact = schema.Find({"resume", "contact"});
  ASSERT_NE(contact, nullptr);
  EXPECT_EQ(contact->doc_count, 2u);
  EXPECT_NEAR(contact->support, 2.0 / 3.0, 1e-9);

  const SchemaNode* objective = schema.Find({"resume", "objective"});
  ASSERT_NE(objective, nullptr);
  EXPECT_NEAR(objective->support, 1.0 / 3.0, 1e-9);
}

TEST(FrequentPathsTest, MajorityThresholdFiltersRarePaths) {
  FrequentPathMiner miner;
  auto a = TreeA();
  auto b = TreeB();
  auto c = TreeC();
  miner.AddDocument(*a);
  miner.AddDocument(*b);
  miner.AddDocument(*c);
  miner.mutable_options().sup_threshold = 0.5;
  miner.mutable_options().ratio_threshold = 0.0;
  MajoritySchema schema = miner.Discover();

  // objective occurs in 1/3 documents: not frequent.
  EXPECT_FALSE(schema.ContainsPath({"resume", "objective"}));
  // contact (2/3) and education (3/3) are frequent.
  EXPECT_TRUE(schema.ContainsPath({"resume", "contact"}));
  EXPECT_TRUE(schema.ContainsPath({"resume", "education"}));
  // education/degree occurs in A and B: frequent.
  EXPECT_TRUE(schema.ContainsPath({"resume", "education", "degree"}));
  // education/institution (direct child) only in A and C.
  EXPECT_TRUE(schema.ContainsPath({"resume", "education", "institution"}));
}

TEST(FrequentPathsTest, SupportRatioPrunesWeakChildren) {
  FrequentPathMiner miner;
  auto a = TreeA();
  auto b = TreeB();
  auto c = TreeC();
  miner.AddDocument(*a);
  miner.AddDocument(*b);
  miner.AddDocument(*c);
  miner.mutable_options().sup_threshold = 0.0;
  miner.mutable_options().ratio_threshold = 0.8;
  MajoritySchema schema = miner.Discover();

  // education: support 1.0, ratio 1.0 -> kept.
  ASSERT_TRUE(schema.ContainsPath({"resume", "education"}));
  // education/degree: support 2/3 over parent 1.0 -> ratio 2/3 < 0.8.
  EXPECT_FALSE(schema.ContainsPath({"resume", "education", "degree"}));
}

TEST(FrequentPathsTest, SubtreeDiesWithPrunedPrefix) {
  // Anti-monotone pruning: resume/education/degree/date exists in B but
  // must vanish when resume/education/degree is pruned.
  FrequentPathMiner miner;
  auto a = TreeA();
  auto b = TreeB();
  auto c = TreeC();
  miner.AddDocument(*a);
  miner.AddDocument(*b);
  miner.AddDocument(*c);
  miner.mutable_options().sup_threshold = 0.5;
  miner.mutable_options().ratio_threshold = 0.0;
  MajoritySchema schema = miner.Discover();
  // degree/date only in B (1/3): pruned as its own support fails.
  EXPECT_FALSE(
      schema.ContainsPath({"resume", "education", "degree", "date"}));

  miner.mutable_options().sup_threshold = 0.7;
  schema = miner.Discover();
  EXPECT_FALSE(schema.ContainsPath({"resume", "education", "degree"}));
  EXPECT_FALSE(
      schema.ContainsPath({"resume", "education", "degree", "date"}));
}

TEST(FrequentPathsTest, OrderingRuleSortsChildrenByAveragePosition) {
  FrequentPathMiner miner;
  auto a = TreeA();  // objective(0), contact(1), education(2)
  auto b = TreeB();  // contact(0), education(1)
  miner.AddDocument(*a);
  miner.AddDocument(*b);
  miner.mutable_options().sup_threshold = 0.0;
  miner.mutable_options().ratio_threshold = 0.0;
  MajoritySchema schema = miner.Discover();
  const SchemaNode& root = schema.root();
  ASSERT_EQ(root.children.size(), 3u);
  // Average positions: objective 0, contact (1+0)/2=0.5, education 1.5.
  EXPECT_EQ(root.children[0].label, "objective");
  EXPECT_EQ(root.children[1].label, "contact");
  EXPECT_EQ(root.children[2].label, "education");
}

TEST(FrequentPathsTest, RepFractionFromMultiplicities) {
  FrequentPathMiner miner;
  miner.mutable_options().rep_threshold = 2;
  auto b = TreeB();  // two degree siblings under education
  auto a = TreeA();  // one degree
  miner.AddDocument(*b);
  miner.AddDocument(*a);
  miner.mutable_options().sup_threshold = 0.0;
  miner.mutable_options().ratio_threshold = 0.0;
  MajoritySchema schema = miner.Discover();
  const SchemaNode* degree = schema.Find({"resume", "education", "degree"});
  ASSERT_NE(degree, nullptr);
  // Repetitive (multiplicity >= 2) in 1 of the 2 docs containing it.
  EXPECT_NEAR(degree->rep_fraction, 0.5, 1e-9);
}

TEST(FrequentPathsTest, ConstraintsPrunePathsAtInsertion) {
  ConstraintSet constraints;
  constraints.Add(
      ConceptConstraint::Depth("objective", DepthRelation::kEq, 1));
  constraints.Add(ConceptConstraint::Depth("date", DepthRelation::kGt, 1));
  constraints.set_max_level(2);

  MiningOptions options;
  options.constraints = &constraints;
  options.sup_threshold = 0.0;
  options.ratio_threshold = 0.0;
  FrequentPathMiner miner(options);
  auto b = TreeB();  // contains resume/education/degree/date (level 3)
  miner.AddDocument(*b);
  MajoritySchema schema = miner.Discover();
  EXPECT_TRUE(schema.ContainsPath({"resume", "education"}));
  // Level-3 path pruned by max_level.
  EXPECT_FALSE(
      schema.ContainsPath({"resume", "education", "degree", "date"}));
  EXPECT_GT(miner.stats().paths_pruned_by_constraints, 0u);
}

TEST(FrequentPathsTest, StatsCountTrieNodes) {
  FrequentPathMiner miner;
  auto a = TreeA();
  miner.AddDocument(*a);
  miner.Discover();
  // Trie has exactly the 7 distinct paths of tree A.
  EXPECT_EQ(miner.stats().trie_nodes, 7u);
  EXPECT_EQ(miner.stats().paths_offered, 7u);
}

TEST(FrequentPathsTest, DataGuideKeepsEverything) {
  FrequentPathMiner miner;
  auto a = TreeA();
  auto b = TreeB();
  auto c = TreeC();
  miner.AddDocument(*a);
  miner.AddDocument(*b);
  miner.AddDocument(*c);
  MajoritySchema guide = DiscoverDataGuide(miner);
  // Every path from every tree is present.
  EXPECT_TRUE(guide.ContainsPath({"resume", "objective"}));
  EXPECT_TRUE(guide.ContainsPath({"resume", "education", "degree", "date"}));
  EXPECT_TRUE(guide.ContainsPath(
      {"resume", "education", "institution", "degree"}));
  EXPECT_EQ(guide.NodeCount(), 11u);
}

TEST(FrequentPathsTest, LowerBoundKeepsOnlyUniversalPaths) {
  FrequentPathMiner miner;
  auto a = TreeA();
  auto b = TreeB();
  auto c = TreeC();
  miner.AddDocument(*a);
  miner.AddDocument(*b);
  miner.AddDocument(*c);
  MajoritySchema lower = DiscoverLowerBound(miner);
  // Only resume and resume/education occur in all three documents.
  EXPECT_EQ(lower.NodeCount(), 2u);
  EXPECT_TRUE(lower.ContainsPath({"resume", "education"}));
}

TEST(FrequentPathsTest, BaselinesRestoreOptions) {
  FrequentPathMiner miner;
  auto a = TreeA();
  miner.AddDocument(*a);
  miner.mutable_options().sup_threshold = 0.42;
  DiscoverDataGuide(miner);
  EXPECT_DOUBLE_EQ(miner.mutable_options().sup_threshold, 0.42);
}

TEST(FrequentPathsTest, MixedRootsPickMostCommon) {
  FrequentPathMiner miner;
  auto a = TreeA();
  auto junk = Node::MakeElement("other");
  miner.AddDocument(*a);
  miner.AddDocument(*a);
  miner.AddDocument(*junk);
  miner.mutable_options().sup_threshold = 0.5;
  MajoritySchema schema = miner.Discover();
  EXPECT_EQ(schema.root().label, "resume");
}

TEST(MajoritySchemaTest, FindAndAllPaths) {
  FrequentPathMiner miner;
  auto a = TreeA();
  miner.AddDocument(*a);
  miner.mutable_options().sup_threshold = 0.0;
  MajoritySchema schema = miner.Discover();
  EXPECT_NE(schema.Find({"resume", "education", "date"}), nullptr);
  EXPECT_EQ(schema.Find({"resume", "nope"}), nullptr);
  EXPECT_EQ(schema.Find({"wrong-root"}), nullptr);
  EXPECT_EQ(schema.AllPaths().size(), 7u);
  EXPECT_FALSE(schema.ToString().empty());
}

}  // namespace
}  // namespace webre
