// A deliberately tiny JSON reader for tests that validate the metrics /
// trace output (tests only — the library itself never parses JSON). It
// accepts exactly RFC 8259 syntax minus \uXXXX surrogate pairs (decoded
// as-is into the string) and builds a plain DOM for assertions.
#ifndef WEBRE_TESTS_MINIJSON_H_
#define WEBRE_TESTS_MINIJSON_H_

#include <cctype>
#include <cstdlib>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace minijson {

struct Value {
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Type type = Type::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string str;
  std::vector<Value> array;
  // Insertion order preserved: schema tests compare key sequences.
  std::vector<std::pair<std::string, Value>> object;

  const Value* Find(const std::string& key) const {
    for (const auto& [k, v] : object) {
      if (k == key) return &v;
    }
    return nullptr;
  }
  bool is_object() const { return type == Type::kObject; }
  bool is_array() const { return type == Type::kArray; }
  bool is_number() const { return type == Type::kNumber; }
  bool is_string() const { return type == Type::kString; }
};

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  // Returns true and fills `out` iff the whole input is one valid JSON
  // value (surrounded by whitespace only). On failure `error()` says
  // where parsing stopped.
  bool Parse(Value* out) {
    pos_ = 0;
    if (!ParseValue(out)) return false;
    SkipSpace();
    if (pos_ != text_.size()) {
      return Fail("trailing characters");
    }
    return true;
  }

  const std::string& error() const { return error_; }

 private:
  bool Fail(const std::string& what) {
    error_ = what + " at offset " + std::to_string(pos_);
    return false;
  }

  void SkipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool Literal(const char* word, Value* out, Value::Type type, bool b) {
    const size_t len = std::string(word).size();
    if (text_.compare(pos_, len, word) != 0) return Fail("bad literal");
    pos_ += len;
    out->type = type;
    out->boolean = b;
    return true;
  }

  bool ParseString(std::string* out) {
    if (text_[pos_] != '"') return Fail("expected string");
    ++pos_;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      char c = text_[pos_];
      if (c == '\\') {
        if (pos_ + 1 >= text_.size()) return Fail("bad escape");
        char esc = text_[pos_ + 1];
        switch (esc) {
          case '"': out->push_back('"'); break;
          case '\\': out->push_back('\\'); break;
          case '/': out->push_back('/'); break;
          case 'b': out->push_back('\b'); break;
          case 'f': out->push_back('\f'); break;
          case 'n': out->push_back('\n'); break;
          case 'r': out->push_back('\r'); break;
          case 't': out->push_back('\t'); break;
          case 'u': {
            if (pos_ + 5 >= text_.size()) return Fail("bad \\u escape");
            for (size_t i = pos_ + 2; i < pos_ + 6; ++i) {
              if (!std::isxdigit(static_cast<unsigned char>(text_[i]))) {
                return Fail("bad \\u escape");
              }
            }
            out->append(text_, pos_, 6);  // kept verbatim; tests don't care
            pos_ += 4;
            break;
          }
          default:
            return Fail("unknown escape");
        }
        pos_ += 2;
      } else if (static_cast<unsigned char>(c) < 0x20) {
        return Fail("raw control character in string");
      } else {
        out->push_back(c);
        ++pos_;
      }
    }
    if (pos_ >= text_.size()) return Fail("unterminated string");
    ++pos_;  // closing quote
    return true;
  }

  bool ParseNumber(Value* out) {
    const size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    if (pos_ >= text_.size() ||
        !std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      return Fail("expected digit");
    }
    while (pos_ < text_.size() &&
           std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      if (pos_ >= text_.size() ||
          !std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        return Fail("expected fraction digit");
      }
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      if (pos_ >= text_.size() ||
          !std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        return Fail("expected exponent digit");
      }
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
    }
    out->type = Value::Type::kNumber;
    out->number = std::strtod(text_.substr(start, pos_ - start).c_str(),
                              nullptr);
    return true;
  }

  bool ParseValue(Value* out) {
    SkipSpace();
    if (pos_ >= text_.size()) return Fail("unexpected end of input");
    const char c = text_[pos_];
    if (c == '{') {
      ++pos_;
      out->type = Value::Type::kObject;
      SkipSpace();
      if (pos_ < text_.size() && text_[pos_] == '}') {
        ++pos_;
        return true;
      }
      for (;;) {
        SkipSpace();
        std::string key;
        if (!ParseString(&key)) return false;
        SkipSpace();
        if (pos_ >= text_.size() || text_[pos_] != ':') {
          return Fail("expected ':'");
        }
        ++pos_;
        Value value;
        if (!ParseValue(&value)) return false;
        out->object.emplace_back(std::move(key), std::move(value));
        SkipSpace();
        if (pos_ >= text_.size()) return Fail("unterminated object");
        if (text_[pos_] == ',') {
          ++pos_;
          continue;
        }
        if (text_[pos_] == '}') {
          ++pos_;
          return true;
        }
        return Fail("expected ',' or '}'");
      }
    }
    if (c == '[') {
      ++pos_;
      out->type = Value::Type::kArray;
      SkipSpace();
      if (pos_ < text_.size() && text_[pos_] == ']') {
        ++pos_;
        return true;
      }
      for (;;) {
        Value value;
        if (!ParseValue(&value)) return false;
        out->array.push_back(std::move(value));
        SkipSpace();
        if (pos_ >= text_.size()) return Fail("unterminated array");
        if (text_[pos_] == ',') {
          ++pos_;
          continue;
        }
        if (text_[pos_] == ']') {
          ++pos_;
          return true;
        }
        return Fail("expected ',' or ']'");
      }
    }
    if (c == '"') {
      out->type = Value::Type::kString;
      return ParseString(&out->str);
    }
    if (c == 't') return Literal("true", out, Value::Type::kBool, true);
    if (c == 'f') return Literal("false", out, Value::Type::kBool, false);
    if (c == 'n') return Literal("null", out, Value::Type::kNull, false);
    return ParseNumber(out);
  }

  const std::string& text_;
  size_t pos_ = 0;
  std::string error_;
};

// Convenience wrapper: parses or dies with a readable message via the
// returned flag + error string.
inline bool Parse(const std::string& text, Value* out, std::string* error) {
  Parser parser(text);
  if (parser.Parse(out)) return true;
  if (error != nullptr) *error = parser.error();
  return false;
}

}  // namespace minijson

#endif  // WEBRE_TESTS_MINIJSON_H_
