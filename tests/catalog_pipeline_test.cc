// Cross-domain integration test: the restructuring rules and schema
// discovery run unchanged on the product-catalog topic — only the
// concept set differs (§5's "broader topics such as product catalogs").

#include <gtest/gtest.h>

#include "core/pipeline.h"
#include "corpus/catalog_generator.h"
#include "repository/repository.h"
#include "restructure/accuracy.h"
#include "restructure/recognizer.h"

namespace webre {
namespace {

class CatalogPipelineTest : public ::testing::Test {
 protected:
  CatalogPipelineTest()
      : concepts_(CatalogConcepts()),
        constraints_(CatalogConstraints()),
        recognizer_(&concepts_) {}

  Pipeline MakePipeline() {
    PipelineOptions options;
    options.convert.root_name = "catalog";
    options.mining.sup_threshold = 0.4;
    options.mining.ratio_threshold = 0.3;
    return Pipeline(&concepts_, &recognizer_, &constraints_, options);
  }

  ConceptSet concepts_;
  ConstraintSet constraints_;
  SynonymRecognizer recognizer_;
};

TEST_F(CatalogPipelineTest, ConversionMatchesTruthExactly) {
  // The catalog generator has a single clean style; the converter should
  // recover the ideal tree with zero logical errors.
  ConvertOptions convert;
  convert.root_name = "catalog";
  DocumentConverter converter(&concepts_, &recognizer_, &constraints_,
                              convert);
  for (size_t i = 0; i < 12; ++i) {
    GeneratedCatalog page = GenerateCatalogPage(i);
    auto xml = converter.Convert(page.html);
    AccuracyReport report = CompareTrees(*xml, *page.truth);
    EXPECT_EQ(report.logical_errors, 0u) << "page " << i;
  }
}

TEST_F(CatalogPipelineTest, SchemaMatchesCatalogStructure) {
  Pipeline pipeline = MakePipeline();
  std::vector<std::string> pages;
  for (size_t i = 0; i < 50; ++i) {
    pages.push_back(GenerateCatalogPage(i).html);
  }
  PipelineResult result = pipeline.Run(pages);
  EXPECT_EQ(result.schema.root().label, "catalog");
  EXPECT_TRUE(result.schema.ContainsPath({"catalog", "CATEGORY"}));
  EXPECT_TRUE(result.schema.ContainsPath({"catalog", "CATEGORY", "BRAND"}));
  EXPECT_TRUE(result.schema.ContainsPath(
      {"catalog", "CATEGORY", "BRAND", "PRICE"}));
  EXPECT_TRUE(result.schema.ContainsPath(
      {"catalog", "CATEGORY", "BRAND", "WARRANTY"}));
}

TEST_F(CatalogPipelineTest, DtdHasRepetitionMarkers) {
  Pipeline pipeline = MakePipeline();
  std::vector<std::string> pages;
  for (size_t i = 0; i < 50; ++i) {
    pages.push_back(GenerateCatalogPage(i).html);
  }
  PipelineResult result = pipeline.Run(pages);
  const ElementDecl* catalog = result.dtd.Find("catalog");
  ASSERT_NE(catalog, nullptr);
  EXPECT_NE(catalog->ToString().find("CATEGORY+"), std::string::npos);
  const ElementDecl* category = result.dtd.Find("CATEGORY");
  ASSERT_NE(category, nullptr);
  EXPECT_NE(category->ToString().find("BRAND+"), std::string::npos);
}

TEST_F(CatalogPipelineTest, ConvertedPagesConformDirectly) {
  Pipeline pipeline = MakePipeline();
  std::vector<std::string> pages;
  for (size_t i = 0; i < 30; ++i) {
    pages.push_back(GenerateCatalogPage(i).html);
  }
  PipelineResult result = pipeline.Run(pages);
  // One clean style: all converted pages should match the derived DTD
  // without mapping.
  EXPECT_EQ(result.conforming_before, 30u);
}

TEST_F(CatalogPipelineTest, RepositoryQueriesWork) {
  Pipeline pipeline = MakePipeline();
  std::vector<std::string> pages;
  for (size_t i = 0; i < 30; ++i) {
    pages.push_back(GenerateCatalogPage(i).html);
  }
  PipelineResult result = pipeline.Run(pages);
  XmlRepository repo;
  for (auto& doc : result.documents) {
    ASSERT_TRUE(repo.Add(std::move(doc)).ok());
  }
  auto brands = repo.Query("/catalog/CATEGORY/BRAND");
  ASSERT_TRUE(brands.ok());
  EXPECT_GT(brands->size(), 60u);
  auto voltex = repo.Query("//BRAND[val~\"voltex\"]");
  ASSERT_TRUE(voltex.ok());
  EXPECT_GT(voltex->size(), 0u);
  for (const QueryMatch& match : *voltex) {
    EXPECT_NE(match.val().find("Voltex"), std::string_view::npos);
  }
}

}  // namespace
}  // namespace webre
