#include <gtest/gtest.h>

#include "html/lexer.h"
#include "html/tag_tables.h"

namespace webre {
namespace {

TEST(TagTablesTest, VoidTags) {
  EXPECT_TRUE(IsVoidTag("br"));
  EXPECT_TRUE(IsVoidTag("hr"));
  EXPECT_TRUE(IsVoidTag("img"));
  EXPECT_FALSE(IsVoidTag("p"));
  EXPECT_FALSE(IsVoidTag("div"));
}

TEST(TagTablesTest, BlockVsTextLevel) {
  EXPECT_TRUE(IsBlockLevelTag("h1"));
  EXPECT_TRUE(IsBlockLevelTag("table"));
  EXPECT_TRUE(IsTextLevelTag("b"));
  EXPECT_TRUE(IsTextLevelTag("font"));
  EXPECT_FALSE(IsBlockLevelTag("b"));
  EXPECT_FALSE(IsTextLevelTag("div"));
}

TEST(TagTablesTest, GroupTagWeightsOrdered) {
  // §2.3.2: h1 groups with higher priority than p, p higher than b.
  EXPECT_GT(GroupTagWeight("h1"), GroupTagWeight("h2"));
  EXPECT_GT(GroupTagWeight("h6"), GroupTagWeight("title") - 100);
  EXPECT_GT(GroupTagWeight("h2"), GroupTagWeight("p"));
  EXPECT_GT(GroupTagWeight("p"), GroupTagWeight("b"));
  EXPECT_EQ(GroupTagWeight("span"), 0);
  EXPECT_EQ(GroupTagWeight("ul"), 0);  // list tag, not group tag
}

TEST(TagTablesTest, PaperGroupTagList) {
  // §4: group tags = h1..h6, title, div, p, tr, dt, dd, li, u, strong,
  // b, em, i.
  for (const char* tag : {"h1", "h2", "h3", "h4", "h5", "h6", "title",
                          "div", "p", "tr", "dt", "dd", "li", "u",
                          "strong", "b", "em", "i"}) {
    EXPECT_GT(GroupTagWeight(tag), 0) << tag;
  }
}

TEST(TagTablesTest, PaperListTagList) {
  // §4: list tags = body, table, dl, ul, ol, dir, menu.
  for (const char* tag : {"body", "table", "dl", "ul", "ol", "dir", "menu"}) {
    EXPECT_TRUE(IsListTag(tag)) << tag;
  }
  EXPECT_FALSE(IsListTag("p"));
  EXPECT_FALSE(IsListTag("li"));
}

TEST(TagTablesTest, ImpliedCloses) {
  EXPECT_TRUE(ClosesOnOpen("p", "p"));
  EXPECT_TRUE(ClosesOnOpen("p", "ul"));
  EXPECT_FALSE(ClosesOnOpen("p", "b"));
  EXPECT_TRUE(ClosesOnOpen("li", "li"));
  EXPECT_TRUE(ClosesOnOpen("dt", "dd"));
  EXPECT_TRUE(ClosesOnOpen("td", "tr"));
  EXPECT_FALSE(ClosesOnOpen("div", "p"));
}

std::vector<HtmlToken> Lex(std::string_view html) {
  return TokenizeHtml(html);
}

TEST(HtmlLexerTest, SimpleTagsAndText) {
  auto tokens = Lex("<p>hello</p>");
  ASSERT_EQ(tokens.size(), 3u);
  EXPECT_EQ(tokens[0].type, HtmlTokenType::kStartTag);
  EXPECT_EQ(tokens[0].name(), "p");
  EXPECT_EQ(tokens[1].type, HtmlTokenType::kText);
  EXPECT_EQ(tokens[1].text(), "hello");
  EXPECT_EQ(tokens[2].type, HtmlTokenType::kEndTag);
  EXPECT_EQ(tokens[2].name(), "p");
}

TEST(HtmlLexerTest, TagNamesLowercased) {
  auto tokens = Lex("<DIV><Br></DIV>");
  ASSERT_EQ(tokens.size(), 3u);
  EXPECT_EQ(tokens[0].name(), "div");
  EXPECT_EQ(tokens[1].name(), "br");
  EXPECT_EQ(tokens[2].name(), "div");
}

TEST(HtmlLexerTest, AttributesParsed) {
  auto tokens = Lex("<a HREF=\"x.html\" target=_blank checked>");
  ASSERT_EQ(tokens.size(), 1u);
  ASSERT_EQ(tokens[0].attributes.size(), 3u);
  EXPECT_EQ(tokens[0].attributes[0].name, "href");
  EXPECT_EQ(tokens[0].attributes[0].value, "x.html");
  EXPECT_EQ(tokens[0].attributes[1].name, "target");
  EXPECT_EQ(tokens[0].attributes[1].value, "_blank");
  EXPECT_EQ(tokens[0].attributes[2].name, "checked");
  EXPECT_EQ(tokens[0].attributes[2].value, "");
}

TEST(HtmlLexerTest, SingleQuotedAndEntityAttributes) {
  auto tokens = Lex("<img alt='a &amp; b'>");
  ASSERT_EQ(tokens.size(), 1u);
  EXPECT_EQ(tokens[0].attributes[0].value, "a & b");
}

TEST(HtmlLexerTest, SelfClosing) {
  auto tokens = Lex("<br/><hr />");
  ASSERT_EQ(tokens.size(), 2u);
  EXPECT_TRUE(tokens[0].self_closing);
  EXPECT_TRUE(tokens[1].self_closing);
}

TEST(HtmlLexerTest, Comments) {
  auto tokens = Lex("a<!-- note -->b");
  ASSERT_EQ(tokens.size(), 3u);
  EXPECT_EQ(tokens[1].type, HtmlTokenType::kComment);
  EXPECT_EQ(tokens[1].text(), " note ");
}

TEST(HtmlLexerTest, Doctype) {
  auto tokens = Lex("<!DOCTYPE html><p>x");
  EXPECT_EQ(tokens[0].type, HtmlTokenType::kDoctype);
}

TEST(HtmlLexerTest, TextEntitiesDecoded) {
  auto tokens = Lex("<p>B.S. &amp; M.S.</p>");
  EXPECT_EQ(tokens[1].text(), "B.S. & M.S.");
}

TEST(HtmlLexerTest, StrayLessThanIsText) {
  auto tokens = Lex("x < 5 and y <3");
  ASSERT_EQ(tokens.size(), 1u);
  EXPECT_EQ(tokens[0].type, HtmlTokenType::kText);
  EXPECT_EQ(tokens[0].text(), "x < 5 and y <3");
}

TEST(HtmlLexerTest, RawTextScript) {
  auto tokens = Lex("<script>if (a<b) { x(); }</script><p>y</p>");
  ASSERT_GE(tokens.size(), 4u);
  EXPECT_EQ(tokens[0].name(), "script");
  EXPECT_EQ(tokens[1].type, HtmlTokenType::kText);
  EXPECT_EQ(tokens[1].text(), "if (a<b) { x(); }");
  EXPECT_EQ(tokens[2].type, HtmlTokenType::kEndTag);
}

TEST(HtmlLexerTest, RawTextCaseInsensitiveCloser) {
  auto tokens = Lex("<STYLE>p { color: red }</Style>done");
  EXPECT_EQ(tokens[0].name(), "style");
  EXPECT_EQ(tokens[1].text(), "p { color: red }");
}

TEST(HtmlLexerTest, UnterminatedCommentSwallowsRest) {
  auto tokens = Lex("a<!-- never closed");
  ASSERT_EQ(tokens.size(), 2u);
  EXPECT_EQ(tokens[1].type, HtmlTokenType::kComment);
}

TEST(HtmlLexerTest, UnterminatedTagAtEof) {
  auto tokens = Lex("<p class=\"x");
  ASSERT_EQ(tokens.size(), 1u);
  EXPECT_EQ(tokens[0].type, HtmlTokenType::kStartTag);
  EXPECT_EQ(tokens[0].name(), "p");
}

TEST(HtmlLexerTest, EndTagWithJunkAttributes) {
  auto tokens = Lex("</p class=\"x\">");
  ASSERT_EQ(tokens.size(), 1u);
  EXPECT_EQ(tokens[0].type, HtmlTokenType::kEndTag);
  EXPECT_EQ(tokens[0].name(), "p");
}

}  // namespace
}  // namespace webre
