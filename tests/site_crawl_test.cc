#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "concepts/resume_domain.h"
#include "corpus/crawler.h"
#include "corpus/site_generator.h"

namespace webre {
namespace {

class SiteCrawlTest : public ::testing::Test {
 protected:
  SiteCrawlTest() : concepts_(ResumeConcepts()) {
    crawler_options_.title_concepts = ResumeTitleConceptNames();
  }

  TopicCrawler MakeCrawler() const {
    return TopicCrawler(&concepts_, crawler_options_);
  }

  ConceptSet concepts_;
  CrawlerOptions crawler_options_;
};

TEST_F(SiteCrawlTest, SiteIsDeterministic) {
  GeneratedSite a = GenerateSite();
  GeneratedSite b = GenerateSite();
  EXPECT_EQ(a.pages, b.pages);
}

TEST_F(SiteCrawlTest, SiteShapeSane) {
  SiteOptions options;
  options.resumes = 13;
  options.distractors = 5;
  GeneratedSite site = GenerateSite(options);
  EXPECT_EQ(site.resume_urls.size(), 13u);
  EXPECT_EQ(site.distractor_urls.size(), 5u);
  EXPECT_TRUE(site.pages.count(site.start_url));
  // index + hubs(ceil(13/6)=3) + resumes + distractors
  EXPECT_EQ(site.pages.size(), 1u + 3u + 13u + 5u);
}

TEST_F(SiteCrawlTest, CrawlReachesEveryPage) {
  GeneratedSite site = GenerateSite();
  TopicCrawler crawler = MakeCrawler();
  auto result = crawler.CrawlGraph(site.pages, site.start_url);
  EXPECT_EQ(result.pages_visited, site.pages.size());
}

TEST_F(SiteCrawlTest, CrawlAcceptsExactlyTheResumes) {
  SiteOptions options;
  options.resumes = 18;
  options.distractors = 7;
  GeneratedSite site = GenerateSite(options);
  TopicCrawler crawler = MakeCrawler();
  auto result = crawler.CrawlGraph(site.pages, site.start_url);
  std::set<std::string> accepted(result.accepted_urls.begin(),
                                 result.accepted_urls.end());
  std::set<std::string> expected(site.resume_urls.begin(),
                                 site.resume_urls.end());
  EXPECT_EQ(accepted, expected);
}

TEST_F(SiteCrawlTest, DeadLinksSkipped) {
  GeneratedSite site = GenerateSite();
  // Point the index at a missing page too.
  site.pages[site.start_url].insert(
      site.pages[site.start_url].rfind("</ul>"),
      "<li><a href=\"/gone.html\">404</a></li>");
  TopicCrawler crawler = MakeCrawler();
  auto result = crawler.CrawlGraph(site.pages, site.start_url);
  EXPECT_EQ(result.pages_visited, site.pages.size());
}

TEST_F(SiteCrawlTest, UnreachableStartVisitsNothing) {
  GeneratedSite site = GenerateSite();
  TopicCrawler crawler = MakeCrawler();
  auto result = crawler.CrawlGraph(site.pages, "/nowhere.html");
  EXPECT_EQ(result.pages_visited, 0u);
  EXPECT_TRUE(result.accepted_urls.empty());
}

TEST_F(SiteCrawlTest, EachPageFetchedOnceDespiteCycles) {
  // Distractors link in a chain and back to hub0; BFS must not loop.
  SiteOptions options;
  options.distractors = 9;
  GeneratedSite site = GenerateSite(options);
  TopicCrawler crawler = MakeCrawler();
  auto result = crawler.CrawlGraph(site.pages, site.start_url);
  EXPECT_EQ(result.pages_visited, site.pages.size());
  // Accepted list has no duplicates.
  std::set<std::string> unique(result.accepted_urls.begin(),
                               result.accepted_urls.end());
  EXPECT_EQ(unique.size(), result.accepted_urls.size());
}

}  // namespace
}  // namespace webre
