#include <gtest/gtest.h>

#include "xml/reader.h"
#include "xml/writer.h"

namespace webre {
namespace {

TEST(XmlWriterTest, EscapesText) {
  EXPECT_EQ(EscapeXmlText("a < b & c > d"), "a &lt; b &amp; c &gt; d");
  EXPECT_EQ(EscapeXmlAttr("say \"hi\" & <go>"),
            "say &quot;hi&quot; &amp; &lt;go&gt;");
}

TEST(XmlWriterTest, SelfClosesEmptyElements) {
  auto e = Node::MakeElement("a");
  e->set_val("x");
  XmlWriteOptions opt;
  opt.indent = 0;
  EXPECT_EQ(WriteXml(*e, opt), "<a val=\"x\"/>");
}

TEST(XmlWriterTest, CompactNested) {
  auto root = Node::MakeElement("r");
  Node* c = root->AddElement("c");
  c->AddText("hi & bye");
  XmlWriteOptions opt;
  opt.indent = 0;
  EXPECT_EQ(WriteXml(*root, opt), "<r><c>hi &amp; bye</c></r>");
}

TEST(XmlWriterTest, DeclarationEmitted) {
  auto e = Node::MakeElement("a");
  XmlWriteOptions opt;
  opt.indent = 0;
  opt.declaration = true;
  EXPECT_EQ(WriteXml(*e, opt),
            "<?xml version=\"1.0\" encoding=\"UTF-8\"?><a/>");
}

TEST(XmlReaderTest, ParsesSimpleDocument) {
  auto result = ParseXml("<a x=\"1\"><b>text</b></a>");
  ASSERT_TRUE(result.ok()) << result.status();
  const Node& root = **result;
  EXPECT_EQ(root.name(), "a");
  EXPECT_EQ(root.attr("x"), "1");
  ASSERT_EQ(root.child_count(), 1u);
  EXPECT_EQ(root.child(0)->name(), "b");
  ASSERT_EQ(root.child(0)->child_count(), 1u);
  EXPECT_EQ(root.child(0)->child(0)->text(), "text");
}

TEST(XmlReaderTest, DecodesEntities) {
  auto result = ParseXml("<a v=\"&quot;q&quot;\">x &amp; y &#65;&#x42;</a>");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ((*result)->attr("v"), "\"q\"");
  EXPECT_EQ((*result)->child(0)->text(), "x & y AB");
}

TEST(XmlReaderTest, SkipsPrologAndComments) {
  auto result = ParseXml(
      "<?xml version=\"1.0\"?><!DOCTYPE a [<!ELEMENT a (#PCDATA)>]>"
      "<!-- hi --><a><!-- inner -->t</a><!-- after -->");
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ((*result)->name(), "a");
  ASSERT_EQ((*result)->child_count(), 1u);
  EXPECT_EQ((*result)->child(0)->text(), "t");
}

TEST(XmlReaderTest, CdataPreservedVerbatim) {
  auto result = ParseXml("<a><![CDATA[<not & markup>]]></a>");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ((*result)->child(0)->text(), "<not & markup>");
}

TEST(XmlReaderTest, SingleQuotedAttributes) {
  auto result = ParseXml("<a k='v1'/>");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ((*result)->attr("k"), "v1");
}

TEST(XmlReaderTest, WhitespaceTextSkippedByDefault) {
  auto result = ParseXml("<a>\n  <b/>\n  <c/>\n</a>");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ((*result)->child_count(), 2u);
}

TEST(XmlReaderTest, MismatchedTagIsError) {
  auto result = ParseXml("<a><b></a></b>");
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(XmlReaderTest, TruncatedInputIsError) {
  EXPECT_FALSE(ParseXml("<a><b>").ok());
  EXPECT_FALSE(ParseXml("<a attr=\"x>").ok());
  EXPECT_FALSE(ParseXml("").ok());
}

TEST(XmlReaderTest, TrailingGarbageIsError) {
  EXPECT_FALSE(ParseXml("<a/><b/>").ok());
  EXPECT_FALSE(ParseXml("<a/>junk").ok());
}

TEST(XmlReaderTest, UnknownEntityIsError) {
  EXPECT_FALSE(ParseXml("<a>&nosuch;</a>").ok());
}

TEST(XmlReaderTest, ErrorReportsLineNumber) {
  auto result = ParseXml("<a>\n\n<b>\n</c>\n</a>");
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("line 4"), std::string::npos)
      << result.status();
}

TEST(XmlRoundTripTest, WriteThenParseIsIdentity) {
  auto root = Node::MakeElement("resume");
  root->set_val("a & b");
  Node* edu = root->AddElement("EDUCATION");
  edu->set_val("Education");
  Node* date = edu->AddElement("DATE");
  date->set_val("June 1996 <est>");
  root->AddElement("SKILLS")->AddText("C++ & Java");

  std::string xml = WriteXml(*root);
  XmlReadOptions opt;
  opt.trim_text = true;
  auto parsed = ParseXml(xml, opt);
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_TRUE(**parsed == *root)
      << "wrote:\n" << xml << "\nreparsed:\n" << WriteXml(**parsed);
}

}  // namespace
}  // namespace webre
