#include <gtest/gtest.h>

#include <set>

#include "util/rng.h"
#include "util/status.h"
#include "util/strings.h"

namespace webre {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad input");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad input");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad input");
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("x"), Status::NotFound("x"));
  EXPECT_FALSE(Status::NotFound("x") == Status::NotFound("y"));
  EXPECT_FALSE(Status::NotFound("x") == Status::Internal("x"));
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> v(42);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 42);
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> v(Status::OutOfRange("too big"));
  ASSERT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kOutOfRange);
}

TEST(StatusOrTest, MoveOutValue) {
  StatusOr<std::string> v(std::string("hello"));
  std::string out = std::move(v).value();
  EXPECT_EQ(out, "hello");
}

TEST(StringsTest, AsciiCase) {
  EXPECT_EQ(AsciiLower("MiXeD 123!"), "mixed 123!");
  EXPECT_EQ(AsciiUpper("MiXeD 123!"), "MIXED 123!");
  EXPECT_EQ(AsciiToLower('Z'), 'z');
  EXPECT_EQ(AsciiToLower('1'), '1');
}

TEST(StringsTest, EqualsIgnoreCase) {
  EXPECT_TRUE(EqualsIgnoreCase("HTML", "html"));
  EXPECT_FALSE(EqualsIgnoreCase("HTML", "htm"));
  EXPECT_TRUE(EqualsIgnoreCase("", ""));
}

TEST(StringsTest, ContainsIgnoreCase) {
  EXPECT_TRUE(ContainsIgnoreCase("University of Davis", "DAVIS"));
  EXPECT_FALSE(ContainsIgnoreCase("University", "Davis"));
  EXPECT_TRUE(ContainsIgnoreCase("anything", ""));
}

TEST(StringsTest, ContainsWordRequiresBoundaries) {
  EXPECT_TRUE(ContainsWordIgnoreCase("BS, Computer Science", "bs"));
  EXPECT_FALSE(ContainsWordIgnoreCase("JOBS are here", "bs"));
  EXPECT_TRUE(ContainsWordIgnoreCase("(BS)", "bs"));
  EXPECT_FALSE(ContainsWordIgnoreCase("ABSURD", "bs"));
  // Multi-word needles match across a single space.
  EXPECT_TRUE(ContainsWordIgnoreCase("a New York minute", "new york"));
}

TEST(StringsTest, StripWhitespace) {
  EXPECT_EQ(StripAsciiWhitespace("  x y \t\n"), "x y");
  EXPECT_EQ(StripAsciiWhitespace("\r\n \t"), "");
  EXPECT_EQ(StripAsciiWhitespace(""), "");
}

TEST(StringsTest, CollapseWhitespace) {
  EXPECT_EQ(CollapseWhitespace("  a \n\n b\tc  "), "a b c");
  EXPECT_EQ(CollapseWhitespace("abc"), "abc");
  EXPECT_EQ(CollapseWhitespace("   "), "");
}

TEST(StringsTest, SplitAny) {
  std::vector<std::string> parts = SplitAny("a,b;c", ",;");
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "c");
  // Empty pieces dropped by default.
  EXPECT_EQ(SplitAny(",,a,,", ",").size(), 1u);
  EXPECT_EQ(SplitAny(",,a,,", ",", /*keep_empty=*/true).size(), 5u);
}

TEST(StringsTest, SplitWordsAndJoin) {
  std::vector<std::string> words = SplitWords("  one\ttwo \n three ");
  ASSERT_EQ(words.size(), 3u);
  EXPECT_EQ(Join(words, "-"), "one-two-three");
  EXPECT_EQ(Join({}, "-"), "");
}

TEST(StringsTest, StartsEndsWith) {
  EXPECT_TRUE(StartsWith("resume.html", "resume"));
  EXPECT_TRUE(EndsWith("resume.html", ".html"));
  EXPECT_FALSE(StartsWith("a", "ab"));
}

TEST(RngTest, DeterministicForEqualSeeds) {
  Rng a(7);
  Rng b(7);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextU64(), b.NextU64());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextU64() == b.NextU64()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(RngTest, NextBelowInRange) {
  Rng rng(3);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    uint64_t v = rng.NextBelow(5);
    EXPECT_LT(v, 5u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);  // all values hit
}

TEST(RngTest, NextInRangeInclusive) {
  Rng rng(4);
  bool lo_hit = false;
  bool hi_hit = false;
  for (int i = 0; i < 2000; ++i) {
    int64_t v = rng.NextInRange(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    lo_hit |= v == -2;
    hi_hit |= v == 2;
  }
  EXPECT_TRUE(lo_hit);
  EXPECT_TRUE(hi_hit);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(6);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> orig = v;
  rng.Shuffle(v);
  std::multiset<int> a(v.begin(), v.end());
  std::multiset<int> b(orig.begin(), orig.end());
  EXPECT_EQ(a, b);
}

TEST(RngTest, BernoulliExtremes) {
  Rng rng(8);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.NextBool(0.0));
    EXPECT_TRUE(rng.NextBool(1.0));
  }
}

}  // namespace
}  // namespace webre
