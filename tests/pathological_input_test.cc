// The fault-isolation acceptance bar: a batch containing adversarial
// documents — pathological nesting, attribute floods, entity bombs,
// null bytes, unterminated constructs — must complete with one
// structured DocumentOutcome per input (never a crash, hang, or silent
// drop), the healthy documents must still produce the schema, and on a
// clean batch the guarded pipeline must stay byte-identical to the
// serial unguarded baseline at any thread count.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "concepts/resume_domain.h"
#include "core/pipeline.h"
#include "corpus/resume_generator.h"
#include "xml/writer.h"

namespace webre {
namespace {

std::string Repeat(const std::string& piece, size_t n) {
  std::string out;
  out.reserve(piece.size() * n);
  for (size_t i = 0; i < n; ++i) out += piece;
  return out;
}

// --- Adversarial document constructors ------------------------------

// 10k-deep element nesting: recursion killer.
std::string DeepNesting() {
  return Repeat("<div>", 10000) + "bottom" + Repeat("</div>", 10000);
}

// One start tag carrying 100k attributes.
std::string AttributeFlood() {
  std::string html = "<p ";
  for (int i = 0; i < 100000; ++i) {
    // Separate appends: GCC 12 -O2 flags the equivalent operator+ chain
    // with -Werror=restrict.
    html += 'a';
    html += std::to_string(i);
    html += "=\"v\" ";
  }
  html += ">flood</p>";
  return html;
}

// A single multi-megabyte attribute value.
std::string MegabyteAttribute() {
  return "<p title=\"" + std::string(4u << 20, 'x') + "\">big</p>";
}

// Null bytes sprinkled through tags and text.
std::string NullBytes() {
  std::string html = "<p>a";
  html.push_back('\0');
  html += "b</p><di";
  html.push_back('\0');
  html += "v>c</div>";
  return html;
}

std::string UnterminatedComment() {
  return "<p>before</p><!-- never closed " + std::string(1u << 16, 'y');
}

std::string UnterminatedCdataLikeScript() {
  return "<p>x</p><script>var s = \"" + std::string(1u << 16, 'z');
}

// Tens of thousands of entity references, many recursive-looking
// (&amp;amp; decodes to "&amp;" textually — must NOT re-expand).
std::string EntityFlood() {
  return "<p>" + Repeat("&amp;amp;&#x26;#38;", 50000) + "</p>";
}

// Node-count bomb: flat fan-out of many small siblings.
std::string WideFanout() {
  return "<div>" + Repeat("<span>s</span>", 400000) + "</div>";
}

// A text node that tokenizes into an enormous number of TOKENs.
std::string DelimiterBomb() {
  return "<p>" + Repeat(";", 500000) + "</p>";
}

std::vector<std::string> AdversarialDocuments() {
  return {DeepNesting(),       AttributeFlood(),
          MegabyteAttribute(), NullBytes(),
          UnterminatedComment(), UnterminatedCdataLikeScript(),
          EntityFlood(),       WideFanout(),
          DelimiterBomb()};
}

// --- Harness ---------------------------------------------------------

class PathologicalInputTest : public ::testing::Test {
 protected:
  PathologicalInputTest()
      : concepts_(ResumeConcepts()),
        constraints_(ResumeConstraints()),
        recognizer_(&concepts_) {}

  PipelineResult RunWith(const std::vector<std::string>& pages,
                         size_t threads, ResourceLimits limits,
                         bool keep_going = true) {
    PipelineOptions options;
    options.parallel.num_threads = threads;
    options.parallel.chunk_size = 2;  // force interleaving across workers
    options.limits = limits;
    options.keep_going = keep_going;
    Pipeline pipeline(&concepts_, &recognizer_, &constraints_, options);
    return pipeline.Run(pages);
  }

  // Tight limits so the adversarial docs trip fast; generated resumes
  // stay comfortably inside.
  static ResourceLimits TightLimits() {
    ResourceLimits limits;
    limits.max_input_bytes = 1u << 20;  // 1 MiB
    limits.max_tree_depth = 256;
    limits.max_node_count = 1u << 16;
    limits.max_tokens_per_text = 1u << 12;
    limits.max_entity_expansions = 1u << 14;
    limits.max_steps = 8u << 20;
    return limits;
  }

  ConceptSet concepts_;
  ConstraintSet constraints_;
  SynonymRecognizer recognizer_;
};

TEST_F(PathologicalInputTest, EveryAdversarialDocGetsAStructuredOutcome) {
  const std::vector<std::string> pages = AdversarialDocuments();
  const PipelineResult result = RunWith(pages, /*threads=*/1, TightLimits());

  ASSERT_EQ(result.outcomes.size(), pages.size());
  for (size_t i = 0; i < result.outcomes.size(); ++i) {
    const DocumentOutcome& outcome = result.outcomes[i];
    EXPECT_EQ(outcome.index, i);
    if (!outcome.ok()) {
      // A structured record: named stage, non-empty message, a status
      // with a stable name.
      EXPECT_FALSE(outcome.stage.empty()) << "doc " << i;
      EXPECT_FALSE(outcome.message.empty()) << "doc " << i;
      EXPECT_STRNE(DocumentStatusName(outcome.status), "ok") << "doc " << i;
      EXPECT_EQ(result.documents[i], nullptr) << "doc " << i;
    } else {
      EXPECT_NE(result.documents[i], nullptr) << "doc " << i;
    }
  }
  // The heavy hitters must actually trip their guards.
  EXPECT_EQ(result.outcomes[0].status, DocumentStatus::kLimitExceeded)
      << "deep nesting";
  EXPECT_EQ(result.outcomes[2].status, DocumentStatus::kLimitExceeded)
      << "megabyte attribute (input cap)";
  EXPECT_EQ(result.outcomes[6].status, DocumentStatus::kLimitExceeded)
      << "entity flood";
  EXPECT_EQ(result.outcomes[7].status, DocumentStatus::kLimitExceeded)
      << "wide fanout";
  EXPECT_EQ(result.outcomes[8].status, DocumentStatus::kLimitExceeded)
      << "delimiter bomb";
}

TEST_F(PathologicalInputTest, HealthyDocumentsSurviveAMixedBatch) {
  // Clean resumes interleaved with every adversarial doc: the schema
  // must come out of the survivors alone, and no slot may be dropped.
  std::vector<std::string> pages;
  std::vector<bool> is_clean;
  const std::vector<std::string> hostile = AdversarialDocuments();
  for (size_t i = 0; i < 12; ++i) {
    pages.push_back(GenerateResume(i).html);
    is_clean.push_back(true);
    if (i < hostile.size()) {
      pages.push_back(hostile[i]);
      is_clean.push_back(false);
    }
  }
  const PipelineResult result = RunWith(pages, /*threads=*/4, TightLimits());

  ASSERT_EQ(result.outcomes.size(), pages.size());
  size_t clean_ok = 0;
  for (size_t i = 0; i < pages.size(); ++i) {
    if (is_clean[i]) {
      EXPECT_TRUE(result.outcomes[i].ok())
          << "clean doc " << i << " failed: " << result.outcomes[i].message;
      clean_ok += result.outcomes[i].ok() ? 1 : 0;
    }
  }
  EXPECT_EQ(clean_ok, 12u);
  // At least the five resource bombs must have tripped; the small
  // truncated documents are recoverable by design.
  EXPECT_GE(result.failed_documents, 5u);
  EXPECT_FALSE(result.aborted);
  // Discovery ran over the survivors.
  EXPECT_GT(result.schema.NodeCount(), 0u);
}

TEST_F(PathologicalInputTest, MixedBatchOutcomesAreDeterministic) {
  std::vector<std::string> pages = AdversarialDocuments();
  for (size_t i = 0; i < 8; ++i) pages.push_back(GenerateResume(i).html);

  const PipelineResult serial = RunWith(pages, 1, TightLimits());
  for (size_t threads : {2u, 8u}) {
    const PipelineResult parallel = RunWith(pages, threads, TightLimits());
    ASSERT_EQ(parallel.outcomes.size(), serial.outcomes.size());
    for (size_t i = 0; i < serial.outcomes.size(); ++i) {
      EXPECT_EQ(parallel.outcomes[i].status, serial.outcomes[i].status)
          << "doc " << i << " at " << threads << " threads";
      EXPECT_EQ(parallel.outcomes[i].stage, serial.outcomes[i].stage) << i;
      EXPECT_EQ(parallel.outcomes[i].message, serial.outcomes[i].message)
          << i;
    }
    EXPECT_EQ(parallel.failed_documents, serial.failed_documents);
    EXPECT_EQ(parallel.schema.ToString(), serial.schema.ToString());
    EXPECT_EQ(parallel.dtd.ToString(true), serial.dtd.ToString(true));
    for (size_t i = 0; i < serial.documents.size(); ++i) {
      ASSERT_EQ(parallel.documents[i] == nullptr,
                serial.documents[i] == nullptr)
          << i;
      if (serial.documents[i] != nullptr) {
        EXPECT_EQ(WriteXml(*parallel.documents[i]),
                  WriteXml(*serial.documents[i]))
            << i;
      }
    }
  }
}

TEST_F(PathologicalInputTest, CleanBatchIsByteIdenticalWithGuardsOn) {
  // Guards at their defaults must be invisible on a clean corpus: same
  // bytes as the unguarded serial baseline at 1/2/8 threads.
  std::vector<std::string> pages;
  for (size_t i = 0; i < 24; ++i) pages.push_back(GenerateResume(i).html);

  PipelineOptions baseline_options;  // default limits, threads=1
  Pipeline baseline(&concepts_, &recognizer_, &constraints_,
                    baseline_options);
  const PipelineResult expected = baseline.Run(pages);

  for (size_t threads : {1u, 2u, 8u}) {
    const PipelineResult guarded =
        RunWith(pages, threads, ResourceLimits{});
    EXPECT_EQ(guarded.failed_documents, 0u);
    ASSERT_EQ(guarded.documents.size(), expected.documents.size());
    for (size_t i = 0; i < expected.documents.size(); ++i) {
      EXPECT_EQ(WriteXml(*guarded.documents[i]),
                WriteXml(*expected.documents[i]))
          << "doc " << i << " at " << threads << " threads";
    }
    EXPECT_EQ(guarded.schema.ToString(), expected.schema.ToString());
    EXPECT_EQ(guarded.dtd.ToString(true), expected.dtd.ToString(true));
  }
}

TEST_F(PathologicalInputTest, NoKeepGoingAbortsButReportsEveryOutcome) {
  std::vector<std::string> pages = {GenerateResume(0).html, DeepNesting(),
                                    GenerateResume(1).html};
  const PipelineResult result =
      RunWith(pages, /*threads=*/2, TightLimits(), /*keep_going=*/false);
  EXPECT_TRUE(result.aborted);
  EXPECT_EQ(result.failed_documents, 1u);
  ASSERT_EQ(result.outcomes.size(), 3u);
  EXPECT_TRUE(result.outcomes[0].ok());
  EXPECT_EQ(result.outcomes[1].status, DocumentStatus::kLimitExceeded);
  EXPECT_TRUE(result.outcomes[2].ok());
  // Aborted: no discovery output.
  EXPECT_EQ(result.schema.NodeCount(), 0u);
}

TEST_F(PathologicalInputTest, AllDocumentsFailingStillTerminates) {
  const PipelineResult result =
      RunWith(AdversarialDocuments(), /*threads=*/4, TightLimits());
  EXPECT_EQ(result.outcomes.size(), AdversarialDocuments().size());
  EXPECT_FALSE(result.aborted);
  // Whatever survived (possibly nothing) produced a valid, possibly
  // empty, schema without crashing.
  SUCCEED();
}

TEST_F(PathologicalInputTest, StatusNamesAreStable) {
  EXPECT_STREQ(DocumentStatusName(DocumentStatus::kOk), "ok");
  EXPECT_STREQ(DocumentStatusName(DocumentStatus::kParseError),
               "parse_error");
  EXPECT_STREQ(DocumentStatusName(DocumentStatus::kLimitExceeded),
               "limit_exceeded");
  EXPECT_STREQ(DocumentStatusName(DocumentStatus::kConvertError),
               "convert_error");
}

}  // namespace
}  // namespace webre
