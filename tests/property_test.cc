// Property-style invariant sweeps over the generated corpus, driven by
// parameterized gtest. These pin down the pipeline-wide guarantees the
// unit tests only spot-check:
//   1. no-text-loss: every word of the page's visible text survives into
//      some `val` of the converted document;
//   2. closure: the converted document contains only concept elements;
//   3. determinism: conversion is a pure function of its input;
//   4. support anti-monotonicity along schema paths;
//   5. threshold monotonicity of the discovered schema;
//   6. mapped documents conform to the derived DTD;
//   7. tree-edit-distance metric axioms on real converted documents.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <functional>

#include "concepts/resume_domain.h"
#include "corpus/resume_generator.h"
#include "html/parser.h"
#include "html/tidy.h"
#include "mapping/document_mapper.h"
#include "mapping/tree_edit.h"
#include "restructure/converter.h"
#include "restructure/recognizer.h"
#include "schema/dtd_builder.h"
#include "schema/frequent_paths.h"
#include "util/strings.h"
#include "xml/dtd_validator.h"
#include "xml/reader.h"
#include "xml/writer.h"

namespace webre {
namespace {

struct Fixture {
  Fixture()
      : concepts(ResumeConcepts()),
        constraints(ResumeConstraints()),
        recognizer(&concepts),
        converter(&concepts, &recognizer, &constraints) {}

  ConceptSet concepts;
  ConstraintSet constraints;
  SynonymRecognizer recognizer;
  DocumentConverter converter;
};

Fixture& Shared() {
  static Fixture& fixture = *new Fixture();
  return fixture;
}

// Words of all text nodes in the (tidied) HTML tree.
std::vector<std::string> VisibleWords(std::string_view html) {
  auto tree = ParseHtml(html);
  TidyHtmlTree(tree.get());
  std::vector<std::string> words;
  tree->PreOrder([&](const Node& n) {
    if (!n.is_text()) return;
    for (std::string& w : SplitWords(n.text())) {
      words.push_back(std::move(w));
    }
  });
  return words;
}

// Concatenation of every val attribute in the converted tree.
std::string AllVals(const Node& root) {
  std::string out;
  root.PreOrder([&](const Node& n) {
    if (!n.val().empty()) {
      out.append(n.val());
      out.push_back(' ');
    }
  });
  return out;
}

class PerDocumentProperty : public ::testing::TestWithParam<size_t> {};

TEST_P(PerDocumentProperty, NoTextLoss) {
  Fixture& f = Shared();
  GeneratedResume r = GenerateResume(GetParam());
  auto doc = f.converter.Convert(r.html);
  const std::string vals = AllVals(*doc);
  for (const std::string& raw : VisibleWords(r.html)) {
    // Tokenization splits at ';:,' — compare delimiter-free fragments.
    for (const std::string& piece : SplitAny(raw, ";:,")) {
      EXPECT_TRUE(vals.find(piece) != std::string::npos)
          << "lost word '" << piece << "' in doc " << GetParam()
          << " (style " << r.style.id << ")";
    }
  }
}

TEST_P(PerDocumentProperty, OnlyConceptElementsSurvive) {
  Fixture& f = Shared();
  GeneratedResume r = GenerateResume(GetParam());
  auto doc = f.converter.Convert(r.html);
  doc->PreOrder([&](const Node& n) {
    if (!n.is_element() || &n == doc.get()) return;
    EXPECT_TRUE(f.concepts.Contains(n.name()))
        << n.name() << " in doc " << GetParam();
  });
}

TEST_P(PerDocumentProperty, ConversionDeterministic) {
  Fixture& f = Shared();
  GeneratedResume r = GenerateResume(GetParam());
  auto a = f.converter.Convert(r.html);
  auto b = f.converter.Convert(r.html);
  EXPECT_TRUE(*a == *b);
}

TEST_P(PerDocumentProperty, TreeEditAxioms) {
  Fixture& f = Shared();
  auto a = f.converter.Convert(GenerateResume(GetParam()).html);
  auto b = f.converter.Convert(GenerateResume(GetParam() + 1).html);
  EXPECT_DOUBLE_EQ(TreeEditDistance(*a, *a), 0.0);
  const double ab = TreeEditDistance(*a, *b);
  EXPECT_DOUBLE_EQ(ab, TreeEditDistance(*b, *a));
  // Count element nodes on each side.
  auto elements = [](const Node& n) {
    size_t count = 0;
    n.PreOrder([&](const Node& m) { count += m.is_element() ? 1 : 0; });
    return count;
  };
  const double size_a = static_cast<double>(elements(*a));
  const double size_b = static_cast<double>(elements(*b));
  EXPECT_GE(ab, std::abs(size_a - size_b) - 1e-9);
  EXPECT_LE(ab, size_a + size_b + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(CorpusSweep, PerDocumentProperty,
                         ::testing::Range<size_t>(0, 40));

class PerStyleProperty : public ::testing::TestWithParam<size_t> {};

TEST_P(PerStyleProperty, EveryStyleConvertsAndKeepsText) {
  Fixture& f = Shared();
  CorpusOptions options;
  options.fixed_style = static_cast<int>(GetParam());
  for (size_t i = 0; i < 4; ++i) {
    GeneratedResume r = GenerateResume(i, options);
    auto doc = f.converter.Convert(r.html);
    EXPECT_EQ(doc->name(), "resume");
    EXPECT_GT(doc->SubtreeSize(), 5u) << "style " << GetParam();
    const std::string vals = AllVals(*doc);
    // Spot-check the person's last name survived.
    EXPECT_NE(vals.find(r.data.last_name), std::string::npos)
        << "style " << GetParam();
  }
}

INSTANTIATE_TEST_SUITE_P(AllStyles, PerStyleProperty,
                         ::testing::Range<size_t>(0, 12));

class ThresholdProperty
    : public ::testing::TestWithParam<std::pair<double, double>> {};

TEST_P(ThresholdProperty, SupportBoundsAndAntiMonotonicity) {
  Fixture& f = Shared();
  MiningOptions options;
  options.sup_threshold = GetParam().first;
  options.ratio_threshold = GetParam().second;
  options.constraints = &f.constraints;
  FrequentPathMiner miner(options);
  for (size_t i = 0; i < 40; ++i) {
    auto doc = f.converter.Convert(GenerateResume(i).html);
    miner.AddDocument(*doc);
  }
  MajoritySchema schema = miner.Discover();
  if (schema.empty()) return;

  // Walk: every node satisfies the thresholds; support never increases
  // from parent to child.
  std::function<void(const SchemaNode&, double)> walk =
      [&](const SchemaNode& node, double parent_support) {
        EXPECT_GT(node.support, 0.0);
        EXPECT_LE(node.support, 1.0);
        EXPECT_GE(node.support, options.sup_threshold - 1e-12);
        if (parent_support > 0.0) {
          EXPECT_LE(node.support, parent_support + 1e-12);
          EXPECT_GE(node.support_ratio, options.ratio_threshold - 1e-12);
          EXPECT_LE(node.support_ratio, 1.0 + 1e-12);
        }
        for (const SchemaNode& child : node.children) {
          walk(child, node.support);
        }
      };
  walk(schema.root(), 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    ThresholdSweep, ThresholdProperty,
    ::testing::Values(std::make_pair(0.0, 0.0), std::make_pair(0.25, 0.2),
                      std::make_pair(0.5, 0.45), std::make_pair(0.75, 0.5),
                      std::make_pair(1.0, 1.0)));

TEST(SchemaMonotonicityTest, HigherSupportThresholdNeverGrowsSchema) {
  Fixture& f = Shared();
  FrequentPathMiner miner;
  for (size_t i = 0; i < 40; ++i) {
    auto doc = f.converter.Convert(GenerateResume(i).html);
    miner.AddDocument(*doc);
  }
  size_t previous = SIZE_MAX;
  for (double threshold : {0.0, 0.2, 0.4, 0.6, 0.8, 1.0}) {
    miner.mutable_options().sup_threshold = threshold;
    miner.mutable_options().ratio_threshold = 0.0;
    const size_t size = miner.Discover().NodeCount();
    EXPECT_LE(size, previous) << "at threshold " << threshold;
    previous = size;
  }
}

TEST_P(PerDocumentProperty, XmlRoundTripIsIdentity) {
  // Serialize the converted document and parse it back: the tree must
  // survive exactly (element names, attributes, text) — the repository
  // depends on this.
  Fixture& f = Shared();
  auto doc = f.converter.Convert(GenerateResume(GetParam()).html);
  const std::string xml = WriteXml(*doc);
  auto reparsed = ParseXml(xml);
  ASSERT_TRUE(reparsed.ok()) << reparsed.status();
  EXPECT_TRUE(**reparsed == *doc) << "doc " << GetParam();
}

class TagSoupProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(TagSoupProperty, ParserNeverBreaksOnRandomMarkup) {
  // Random tag soup: the lenient parser must always return a consistent
  // tree (correct parent pointers, no crash), and the converter must
  // accept whatever comes out.
  Rng rng(GetParam());
  static const char* kPieces[] = {
      "<p>", "</p>", "<ul>", "<li>", "</ul>", "<b>", "</i>", "<table>",
      "<tr>", "<td>", "</table>", "<br>", "<hr>", "<h2>", "</h2>",
      "June 1996", "University", "B.S.", "text, more; stuff:",
      "&amp;", "&bogus;", "&#65;", "<", ">", "\"", "<!-- c -->",
      "<a href='x'>", "</a>", "<div", " class='y'>", "</div>",
      "<script>if(a<b)</script>", "<H1>", "</H1>", "<dl><dt>x<dd>y",
  };
  std::string soup;
  const size_t pieces = 5 + rng.NextBelow(60);
  for (size_t i = 0; i < pieces; ++i) {
    soup += kPieces[rng.NextBelow(std::size(kPieces))];
    soup += " ";
  }
  auto tree = ParseHtml(soup);
  ASSERT_NE(tree, nullptr);
  // Parent-pointer consistency across the whole tree.
  std::function<void(const Node&)> check = [&](const Node& node) {
    for (size_t i = 0; i < node.child_count(); ++i) {
      EXPECT_EQ(node.child(i)->parent(), &node);
      check(*node.child(i));
    }
  };
  check(*tree);
  // Conversion never fails either.
  Fixture& f = Shared();
  auto doc = f.converter.Convert(soup);
  EXPECT_EQ(doc->name(), "resume");
}

INSTANTIATE_TEST_SUITE_P(SoupSeeds, TagSoupProperty,
                         ::testing::Range<uint64_t>(1, 31));

TEST(MappedConformanceTest, EveryMappedDocumentValidates) {
  Fixture& f = Shared();
  FrequentPathMiner miner;
  miner.mutable_options().constraints = &f.constraints;
  std::vector<std::unique_ptr<Node>> docs;
  for (size_t i = 0; i < 40; ++i) {
    docs.push_back(f.converter.Convert(GenerateResume(i).html));
    miner.AddDocument(*docs.back());
  }
  MajoritySchema schema = miner.Discover();
  DtdBuildOptions dtd_options;
  dtd_options.mark_optional = true;
  Dtd dtd = BuildDtd(schema, dtd_options);
  for (size_t i = 0; i < docs.size(); ++i) {
    ConformResult mapped = ConformToSchema(*docs[i], schema, dtd);
    DtdValidationResult validation =
        ValidateAgainstDtd(*mapped.document, dtd);
    EXPECT_TRUE(validation.valid())
        << "doc " << i << ": "
        << (validation.violations.empty()
                ? ""
                : validation.violations[0].message);
  }
}

}  // namespace
}  // namespace webre
