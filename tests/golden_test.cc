// Golden-file regression tests: fixed HTML inputs under tests/golden/
// must convert to exactly the checked-in XML. These freeze the observable
// behaviour of the whole conversion stack (parser, tidy, all four rules,
// serialization); any intentional behaviour change must regenerate the
// fixtures and show up in review as an XML diff.
//
// The .html fixtures are checked-in *copies* of generator output, so
// this also detects accidental generator drift: fixture inputs no longer
// matching the generator is tolerated (the fixtures stand alone), but
// conversion of the fixture must stay stable.

#include <gtest/gtest.h>

#include <string>

#include "concepts/resume_domain.h"
#include "restructure/converter.h"
#include "restructure/recognizer.h"
#include "util/file.h"
#include "xml/writer.h"

#ifndef WEBRE_GOLDEN_DIR
#define WEBRE_GOLDEN_DIR "tests/golden"
#endif

namespace webre {
namespace {

class GoldenTest : public ::testing::TestWithParam<int> {
 protected:
  static std::string Path(int index, const char* extension) {
    return std::string(WEBRE_GOLDEN_DIR) + "/resume" +
           std::to_string(index) + "." + extension;
  }
};

TEST_P(GoldenTest, ConversionMatchesGoldenXml) {
  StatusOr<std::string> html = ReadFile(Path(GetParam(), "html"));
  ASSERT_TRUE(html.ok()) << html.status();
  StatusOr<std::string> expected = ReadFile(Path(GetParam(), "xml"));
  ASSERT_TRUE(expected.ok()) << expected.status();

  ConceptSet concepts = ResumeConcepts();
  ConstraintSet constraints = ResumeConstraints();
  SynonymRecognizer recognizer(&concepts);
  DocumentConverter converter(&concepts, &recognizer, &constraints);
  const std::string actual = WriteXml(*converter.Convert(*html));
  EXPECT_EQ(actual, *expected)
      << "conversion output changed for fixture " << GetParam()
      << "; if intentional, regenerate tests/golden/ (see file header)";
}

INSTANTIATE_TEST_SUITE_P(Fixtures, GoldenTest,
                         ::testing::Values(0, 1, 2, 7));

}  // namespace
}  // namespace webre
