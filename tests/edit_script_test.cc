#include <gtest/gtest.h>

#include "concepts/resume_domain.h"
#include "corpus/resume_generator.h"
#include "mapping/edit_script.h"
#include "restructure/converter.h"
#include "restructure/recognizer.h"

namespace webre {
namespace {

std::unique_ptr<Node> Sample() {
  auto root = Node::MakeElement("resume");
  root->AddElement("a");
  Node* b = root->AddElement("b");
  b->AddElement("c");
  b->AddElement("d");
  return root;
}

TEST(EditScriptTest, IdenticalTreesEmptyScript) {
  auto a = Sample();
  auto b = Sample();
  EditScript script = ComputeEditScript(*a, *b);
  EXPECT_TRUE(script.ops.empty());
  EXPECT_DOUBLE_EQ(script.cost, 0.0);
}

TEST(EditScriptTest, SingleRelabelIdentified) {
  auto a = Sample();
  auto b = Sample();
  b->child(1)->set_name("z");
  EditScript script = ComputeEditScript(*a, *b);
  ASSERT_EQ(script.ops.size(), 1u);
  EXPECT_EQ(script.ops[0].kind, EditOp::Kind::kRelabel);
  EXPECT_EQ(script.ops[0].from_label, "b");
  EXPECT_EQ(script.ops[0].to_label, "z");
  EXPECT_EQ(script.ops[0].source, a->child(1));
  EXPECT_EQ(script.ops[0].target, b->child(1));
  EXPECT_EQ(script.ops[0].ToString(), "relabel b -> z");
}

TEST(EditScriptTest, DeletionIdentified) {
  auto a = Sample();
  auto b = Sample();
  b->child(1)->RemoveChild(1);  // drop d
  EditScript script = ComputeEditScript(*a, *b);
  ASSERT_EQ(script.ops.size(), 1u);
  EXPECT_EQ(script.ops[0].kind, EditOp::Kind::kDelete);
  EXPECT_EQ(script.ops[0].from_label, "d");
  EXPECT_EQ(script.ops[0].ToString(), "delete d");
}

TEST(EditScriptTest, InsertionIdentified) {
  auto a = Sample();
  auto b = Sample();
  b->child(1)->AddElement("e");
  EditScript script = ComputeEditScript(*a, *b);
  ASSERT_EQ(script.ops.size(), 1u);
  EXPECT_EQ(script.ops[0].kind, EditOp::Kind::kInsert);
  EXPECT_EQ(script.ops[0].to_label, "e");
  EXPECT_EQ(script.insertions(), 1u);
}

TEST(EditScriptTest, EmptyVsTree) {
  auto a = Node::MakeElement("only");
  auto b = Sample();
  EditScript script = ComputeEditScript(*a, *b);
  // "only" can map to one node (relabel or match); the rest inserted.
  EXPECT_DOUBLE_EQ(script.cost, TreeEditDistance(*a, *b));
}

TEST(EditScriptTest, CostAlwaysEqualsDistanceOnRealDocuments) {
  ConceptSet concepts = ResumeConcepts();
  ConstraintSet constraints = ResumeConstraints();
  SynonymRecognizer recognizer(&concepts);
  DocumentConverter converter(&concepts, &recognizer, &constraints);
  for (size_t i = 0; i < 6; ++i) {
    auto a = converter.Convert(GenerateResume(i).html);
    auto b = converter.Convert(GenerateResume(i + 1).html);
    EditScript script = ComputeEditScript(*a, *b);
    EXPECT_NEAR(script.cost, TreeEditDistance(*a, *b), 1e-9) << "pair " << i;
    EXPECT_EQ(script.ops.size(),
              script.relabels() + script.deletions() + script.insertions());
  }
}

TEST(EditScriptTest, CustomCostsChangeChoices) {
  TreeEditCosts costs;
  costs.relabel = 10.0;  // delete + insert is cheaper than relabel
  auto a = Node::MakeElement("x");
  a->AddElement("p");
  auto b = Node::MakeElement("x");
  b->AddElement("q");
  EditScript script = ComputeEditScript(*a, *b, costs);
  EXPECT_DOUBLE_EQ(script.cost, 2.0);
  EXPECT_EQ(script.relabels(), 0u);
  EXPECT_EQ(script.deletions(), 1u);
  EXPECT_EQ(script.insertions(), 1u);
}

TEST(EditScriptTest, MappingPreservesAncestry) {
  // In a valid ordered-tree mapping, mapped pairs preserve the ancestor
  // relation: if s1 is an ancestor of s2 then t1 is an ancestor of t2.
  ConceptSet concepts = ResumeConcepts();
  ConstraintSet constraints = ResumeConstraints();
  SynonymRecognizer recognizer(&concepts);
  DocumentConverter converter(&concepts, &recognizer, &constraints);
  auto a = converter.Convert(GenerateResume(2).html);
  auto b = converter.Convert(GenerateResume(3).html);
  EditScript script = ComputeEditScript(*a, *b);

  auto is_ancestor = [](const Node* up, const Node* down) {
    for (const Node* p = down->parent(); p != nullptr; p = p->parent()) {
      if (p == up) return true;
    }
    return false;
  };
  std::vector<std::pair<const Node*, const Node*>> pairs;
  for (const EditOp& op : script.ops) {
    if (op.kind == EditOp::Kind::kRelabel) {
      pairs.emplace_back(op.source, op.target);
    }
  }
  for (size_t i = 0; i < pairs.size(); ++i) {
    for (size_t j = 0; j < pairs.size(); ++j) {
      if (i == j) continue;
      if (is_ancestor(pairs[i].first, pairs[j].first)) {
        EXPECT_TRUE(is_ancestor(pairs[i].second, pairs[j].second));
      }
    }
  }
}

TEST(EditScriptTest, TotallyDifferentTrees) {
  auto a = Node::MakeElement("a");
  a->AddElement("b")->AddElement("c");
  auto b = Node::MakeElement("x");
  b->AddElement("y");
  EditScript script = ComputeEditScript(*a, *b);
  EXPECT_DOUBLE_EQ(script.cost, TreeEditDistance(*a, *b));
  EXPECT_DOUBLE_EQ(script.cost, 3.0);  // 2 relabels + 1 delete
}

}  // namespace
}  // namespace webre
