#include <gtest/gtest.h>

#include "repository/query.h"

namespace webre {
namespace {

// resume(NAME, EDUCATION(DATE(INSTITUTION, DEGREE), DATE(INSTITUTION)),
//        SKILLS(LANGUAGE, LANGUAGE))
std::unique_ptr<Node> SampleDoc() {
  auto root = Node::MakeElement("resume");
  root->AddElement("NAME")->set_val("Resume of Jane Doe");
  Node* education = root->AddElement("EDUCATION");
  Node* d1 = education->AddElement("DATE");
  d1->set_val("June 1996");
  d1->AddElement("INSTITUTION")->set_val("Brockhaven University");
  d1->AddElement("DEGREE")->set_val("B.S.");
  Node* d2 = education->AddElement("DATE");
  d2->set_val("May 1998");
  d2->AddElement("INSTITUTION")->set_val("Eastfield College");
  Node* skills = root->AddElement("SKILLS");
  skills->AddElement("LANGUAGE")->set_val("C++");
  skills->AddElement("LANGUAGE")->set_val("Java");
  return root;
}

TEST(QueryParseTest, SimpleAbsolutePath) {
  auto q = PathQuery::Parse("/resume/EDUCATION/DATE");
  ASSERT_TRUE(q.ok()) << q.status();
  EXPECT_EQ(q->steps().size(), 3u);
  EXPECT_TRUE(q->IsSimplePath());
  EXPECT_EQ(q->AsLabelPath(),
            (std::vector<std::string>{"resume", "EDUCATION", "DATE"}));
  EXPECT_EQ(q->ToString(), "/resume/EDUCATION/DATE");
}

TEST(QueryParseTest, DescendantAxis) {
  auto q = PathQuery::Parse("//DATE");
  ASSERT_TRUE(q.ok());
  EXPECT_TRUE(q->steps()[0].descendant);
  EXPECT_FALSE(q->IsSimplePath());
}

TEST(QueryParseTest, WildcardAndPredicate) {
  auto q = PathQuery::Parse("/resume/*/DATE[val~\"1996\"]");
  ASSERT_TRUE(q.ok()) << q.status();
  EXPECT_EQ(q->steps()[1].name, "*");
  EXPECT_EQ(q->steps()[2].val_contains, "1996");
  EXPECT_EQ(q->ToString(), "/resume/*/DATE[val~\"1996\"]");
}

TEST(QueryParseTest, Errors) {
  EXPECT_FALSE(PathQuery::Parse("").ok());
  EXPECT_FALSE(PathQuery::Parse("resume/DATE").ok());   // no leading /
  EXPECT_FALSE(PathQuery::Parse("/resume//").ok());     // empty step
  EXPECT_FALSE(PathQuery::Parse("/a[val~\"x]").ok());   // unterminated
  EXPECT_FALSE(PathQuery::Parse("/a[foo=\"x\"]").ok()); // unknown predicate
  EXPECT_FALSE(PathQuery::Parse("/res*me").ok());       // partial wildcard
}

TEST(QueryEvalTest, ExactPath) {
  auto doc = SampleDoc();
  auto q = PathQuery::Parse("/resume/EDUCATION/DATE");
  auto hits = q->Evaluate(*doc);
  ASSERT_EQ(hits.size(), 2u);
  EXPECT_EQ(hits[0]->val(), "June 1996");
  EXPECT_EQ(hits[1]->val(), "May 1998");
}

TEST(QueryEvalTest, RootMismatchGivesNothing) {
  auto doc = SampleDoc();
  auto q = PathQuery::Parse("/cv/EDUCATION");
  EXPECT_TRUE(q->Evaluate(*doc).empty());
}

TEST(QueryEvalTest, DescendantAnywhere) {
  auto doc = SampleDoc();
  auto q = PathQuery::Parse("//INSTITUTION");
  auto hits = q->Evaluate(*doc);
  ASSERT_EQ(hits.size(), 2u);
  EXPECT_EQ(hits[0]->val(), "Brockhaven University");
}

TEST(QueryEvalTest, DescendantUnderStep) {
  auto doc = SampleDoc();
  auto q = PathQuery::Parse("/resume/EDUCATION//INSTITUTION");
  EXPECT_EQ(q->Evaluate(*doc).size(), 2u);
  auto q2 = PathQuery::Parse("/resume/SKILLS//INSTITUTION");
  EXPECT_TRUE(q2->Evaluate(*doc).empty());
}

TEST(QueryEvalTest, WildcardStep) {
  auto doc = SampleDoc();
  auto q = PathQuery::Parse("/resume/*");
  EXPECT_EQ(q->Evaluate(*doc).size(), 3u);  // NAME, EDUCATION, SKILLS
}

TEST(QueryEvalTest, ValPredicateFilters) {
  auto doc = SampleDoc();
  auto q = PathQuery::Parse("//DATE[val~\"1996\"]");
  auto hits = q->Evaluate(*doc);
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0]->val(), "June 1996");
}

TEST(QueryEvalTest, ValPredicateCaseInsensitive) {
  auto doc = SampleDoc();
  auto q = PathQuery::Parse("//LANGUAGE[val~\"java\"]");
  EXPECT_EQ(q->Evaluate(*doc).size(), 1u);
}

TEST(QueryEvalTest, DescendantSelfIncludesRoot) {
  auto doc = SampleDoc();
  auto q = PathQuery::Parse("//resume");
  ASSERT_EQ(q->Evaluate(*doc).size(), 1u);
  EXPECT_EQ(q->Evaluate(*doc)[0], doc.get());
}

TEST(QueryEvalTest, NoDuplicatesUnderOverlappingFrontiers) {
  // //*//LANGUAGE could reach each LANGUAGE via several ancestors.
  auto doc = SampleDoc();
  auto q = PathQuery::Parse("//*//LANGUAGE");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->Evaluate(*doc).size(), 2u);
}

TEST(QueryEvalTest, PredicateOnIntermediateStep) {
  auto doc = SampleDoc();
  auto q =
      PathQuery::Parse("/resume/EDUCATION/DATE[val~\"May\"]/INSTITUTION");
  auto hits = q->Evaluate(*doc);
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0]->val(), "Eastfield College");
}

}  // namespace
}  // namespace webre
