// Edge cases of the HTML/XML substrate beyond the main suites: legacy
// layout constructs, writer formatting, and parser/cleanser interplay
// observed in 2001-era pages.

#include <gtest/gtest.h>

#include "html/parser.h"
#include "html/tidy.h"
#include "xml/writer.h"

namespace webre {
namespace {

const Node* Find(const Node& root, std::string_view name) {
  if (root.is_element() && root.name() == name) return &root;
  for (size_t i = 0; i < root.child_count(); ++i) {
    const Node* found = Find(*root.child(i), name);
    if (found != nullptr) return found;
  }
  return nullptr;
}

size_t CountName(const Node& root, std::string_view name) {
  size_t count = 0;
  root.PreOrder([&](const Node& n) {
    if (n.is_element() && n.name() == name) ++count;
  });
  return count;
}

TEST(HtmlEdgeTest, TheadTbodyPreserved) {
  auto root = ParseHtml(
      "<table><thead><tr><th>h</th></tr></thead>"
      "<tbody><tr><td>a</td></tr></tbody></table>");
  EXPECT_NE(Find(*root, "thead"), nullptr);
  EXPECT_NE(Find(*root, "tbody"), nullptr);
  EXPECT_NE(Find(*root, "th"), nullptr);
}

TEST(HtmlEdgeTest, NestedLayoutTables) {
  auto root = ParseHtml(
      "<table><tr><td><table><tr><td>inner</td></tr></table>"
      "</td></tr></table>");
  EXPECT_EQ(CountName(*root, "table"), 2u);
  const Node* outer_td = Find(*root, "td");
  ASSERT_NE(outer_td, nullptr);
  EXPECT_NE(Find(*outer_td, "table"), nullptr);
}

TEST(HtmlEdgeTest, DirAndMenuLists) {
  auto root = ParseHtml("<dir><li>a<li>b</dir><menu><li>c</menu>");
  const Node* dir = Find(*root, "dir");
  ASSERT_NE(dir, nullptr);
  EXPECT_EQ(dir->child_count(), 2u);
  EXPECT_NE(Find(*root, "menu"), nullptr);
}

TEST(HtmlEdgeTest, CenterAndFontNesting) {
  auto root = ParseHtml(
      "<center><font size=\"+2\"><b>Title</b></font></center>");
  const Node* font = Find(*root, "font");
  ASSERT_NE(font, nullptr);
  EXPECT_EQ(font->child(0)->name(), "b");
}

TEST(HtmlEdgeTest, EntityInsideAttributeAndText) {
  HtmlParseOptions options;
  options.keep_attributes = true;
  auto root = ParseHtml(
      "<a href=\"x?a=1&amp;b=2\">Q&amp;A &#8212; more</a>", options);
  const Node* a = Find(*root, "a");
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(a->attr("href"), "x?a=1&b=2");
  EXPECT_EQ(a->child(0)->text(), "Q&A \xE2\x80\x94 more");
}

TEST(HtmlEdgeTest, UppercaseEverything) {
  auto root = ParseHtml("<HTML><BODY><UL><LI>A<LI>B</UL></BODY></HTML>");
  const Node* ul = Find(*root, "ul");
  ASSERT_NE(ul, nullptr);
  EXPECT_EQ(ul->child_count(), 2u);
}

TEST(HtmlEdgeTest, SelfClosingUnknownTagDoesNotSwallow) {
  auto root = ParseHtml("<spacer/><p>after</p>");
  const Node* p = Find(*root, "p");
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(p->parent()->name(), "html");
}

TEST(HtmlEdgeTest, RepeatedAttributesLastWins) {
  HtmlParseOptions options;
  options.keep_attributes = true;
  auto root = ParseHtml("<p class=\"a\" class=\"b\">x</p>", options);
  const Node* p = Find(*root, "p");
  ASSERT_NE(p, nullptr);
  // set_attr overwrites on the second occurrence.
  EXPECT_EQ(p->attr("class"), "b");
  EXPECT_EQ(p->attributes().size(), 1u);
}

TEST(HtmlEdgeTest, TidyAfterParseOnLayoutTable) {
  auto root = ParseHtml(
      "<table><tr><td><script>junk()</script><b></b>real</td></tr>"
      "</table>");
  TidyHtmlTree(root.get());
  EXPECT_EQ(Find(*root, "script"), nullptr);
  EXPECT_EQ(Find(*root, "b"), nullptr);
  const Node* td = Find(*root, "td");
  ASSERT_NE(td, nullptr);
  ASSERT_EQ(td->child_count(), 1u);
  EXPECT_EQ(td->child(0)->text(), "real");
}

TEST(XmlWriterEdgeTest, PrettyIndentationShape) {
  auto root = Node::MakeElement("a");
  root->AddElement("b")->AddText("t");
  XmlWriteOptions options;
  options.indent = 2;
  EXPECT_EQ(WriteXml(*root, options),
            "<a>\n  <b>\n    t\n  </b>\n</a>\n");
}

TEST(XmlWriterEdgeTest, NoSelfCloseOnRequest) {
  auto root = Node::MakeElement("a");
  XmlWriteOptions options;
  options.indent = 0;
  options.self_close_empty = false;
  EXPECT_EQ(WriteXml(*root, options), "<a></a>");
}

TEST(XmlWriterEdgeTest, AttributeOrderPreserved) {
  auto root = Node::MakeElement("e");
  root->set_attr("z", "1");
  root->set_attr("a", "2");
  root->set_attr("m", "3");
  XmlWriteOptions options;
  options.indent = 0;
  EXPECT_EQ(WriteXml(*root, options), "<e z=\"1\" a=\"2\" m=\"3\"/>");
}

TEST(XmlWriterEdgeTest, ValWithMarkupCharacters) {
  auto root = Node::MakeElement("e");
  root->set_val("a < b & \"c\" > d");
  XmlWriteOptions options;
  options.indent = 0;
  EXPECT_EQ(WriteXml(*root, options),
            "<e val=\"a &lt; b &amp; &quot;c&quot; &gt; d\"/>");
}

TEST(HtmlEdgeTest, BrSeparatedLinesStayInOneTextFlow) {
  auto root = ParseHtml("<p>line one<br>line two<br>line three</p>");
  const Node* p = Find(*root, "p");
  ASSERT_NE(p, nullptr);
  // Three text nodes separated by two brs.
  EXPECT_EQ(p->child_count(), 5u);
  EXPECT_EQ(p->child(0)->text(), "line one");
  EXPECT_EQ(p->child(2)->text(), "line two");
}

TEST(HtmlEdgeTest, DefinitionListImpliedClosesInsideDl) {
  auto root = ParseHtml(
      "<dl><dt>Education<dd>entry one<dd>entry two<dt>Skills<dd>C++</dl>");
  const Node* dl = Find(*root, "dl");
  ASSERT_NE(dl, nullptr);
  ASSERT_EQ(dl->child_count(), 5u);
  EXPECT_EQ(dl->child(0)->name(), "dt");
  EXPECT_EQ(dl->child(1)->name(), "dd");
  EXPECT_EQ(dl->child(2)->name(), "dd");
  EXPECT_EQ(dl->child(3)->name(), "dt");
  EXPECT_EQ(dl->child(4)->name(), "dd");
}

}  // namespace
}  // namespace webre
