// Differential tests for the Aho–Corasick InstanceMatcher: on random
// texts and random concept sets, ConceptSet::MatchAll (automaton) must
// return exactly what ConceptSet::MatchAllNaive (the original
// per-instance rescan) returns — same matches, same order.

#include "concepts/instance_matcher.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "concepts/concept.h"
#include "concepts/resume_domain.h"
#include "util/rng.h"

namespace webre {
namespace {

std::string Describe(const std::vector<InstanceMatch>& matches) {
  std::string out;
  for (const InstanceMatch& m : matches) {
    // Separate appends: GCC 12 -O2 flags the equivalent operator+ chain
    // with -Werror=restrict.
    out += '[';
    out += std::to_string(m.concept_index);
    out += ' ';
    out += m.concept_name;
    out += " @";
    out += std::to_string(m.position);
    out += '+';
    out += std::to_string(m.length);
    out += ']';
  }
  return out;
}

void ExpectSameMatches(const ConceptSet& concepts, const std::string& text) {
  const std::vector<InstanceMatch> fast = concepts.MatchAll(text);
  const std::vector<InstanceMatch> naive = concepts.MatchAllNaive(text);
  ASSERT_EQ(fast.size(), naive.size())
      << "text '" << text << "'\n fast: " << Describe(fast)
      << "\n naive: " << Describe(naive);
  for (size_t i = 0; i < fast.size(); ++i) {
    EXPECT_EQ(fast[i].concept_index, naive[i].concept_index) << text;
    EXPECT_EQ(fast[i].concept_name, naive[i].concept_name) << text;
    EXPECT_EQ(fast[i].position, naive[i].position) << text;
    EXPECT_EQ(fast[i].length, naive[i].length) << text;
  }
}

TEST(InstanceMatcherTest, HandPickedTexts) {
  ConceptSet concepts = ResumeConcepts();
  const char* texts[] = {
      "",
      "x",
      "University",
      "B.S., Computer Science, June 1996",
      "GPA 3.8/4.0",
      "JOBS",  // word boundary: must not match "BS"
      "Relevant Coursework Algorithms",
      "Academic Background",
      "Career Objective To build reliable tools",
      "1996 1997 3/4 2.5 2000.",
      "phone PHONE pHoNe",
      "university universities University.",
      "a1996b",  // no word boundary around the year
      "...////1996////...",
  };
  for (const char* text : texts) ExpectSameMatches(concepts, text);
}

TEST(InstanceMatcherTest, OverlapResolutionPrefersLongerThenEarlier) {
  ConceptSet concepts;
  concepts.Add(Concept{"A", {"score board"}});
  concepts.Add(Concept{"B", {"board game"}});
  concepts.Add(Concept{"C", {"board"}});
  // "score board game": A covers [0,11), B covers [6,16) — A is longer
  // and wins; B overlaps A and C lies inside A, so both are dropped.
  const std::vector<InstanceMatch> matches =
      concepts.MatchAll("score board game");
  ASSERT_EQ(matches.size(), 1u);
  EXPECT_EQ(matches[0].concept_name, "A");
  ExpectSameMatches(concepts, "score board game");
}

TEST(InstanceMatcherTest, SharedPatternAcrossConceptsKeepsLowerIndex) {
  ConceptSet concepts;
  concepts.Add(Concept{"FIRST", {"shared"}});
  concepts.Add(Concept{"SECOND", {"shared"}});
  const std::vector<InstanceMatch> matches = concepts.MatchAll("shared");
  ASSERT_EQ(matches.size(), 1u);
  EXPECT_EQ(matches[0].concept_index, 0u);
  ExpectSameMatches(concepts, "shared");
}

TEST(InstanceMatcherTest, NameIsAnImplicitInstance) {
  ConceptSet concepts;
  concepts.Add(Concept{"SKILL", {}});
  const std::vector<InstanceMatch> matches = concepts.MatchAll("a skill b");
  ASSERT_EQ(matches.size(), 1u);
  EXPECT_EQ(matches[0].position, 2u);
  EXPECT_EQ(matches[0].length, 5u);
}

TEST(InstanceMatcherTest, ReplacedConceptRebuildsAutomaton) {
  ConceptSet concepts;
  concepts.Add(Concept{"X", {"alpha"}});
  EXPECT_EQ(concepts.MatchAll("alpha beta").size(), 1u);
  concepts.Add(Concept{"X", {"beta"}});  // replace: "alpha" must vanish
  const std::vector<InstanceMatch> matches = concepts.MatchAll("alpha beta");
  ASSERT_EQ(matches.size(), 1u);
  EXPECT_EQ(matches[0].position, 6u);
  ExpectSameMatches(concepts, "alpha beta");
}

TEST(InstanceMatcherTest, CopiedSetMatchesIndependently) {
  ConceptSet original;
  original.Add(Concept{"X", {"alpha"}});
  ConceptSet copy = original;
  original.Add(Concept{"Y", {"beta"}});
  EXPECT_EQ(copy.MatchAll("alpha beta").size(), 1u);
  EXPECT_EQ(original.MatchAll("alpha beta").size(), 2u);
}

TEST(InstanceMatcherTest, NumericShapes) {
  EXPECT_EQ(NumericWordShape("1996"), "#year#");
  EXPECT_EQ(NumericWordShape("2024"), "#year#");
  EXPECT_EQ(NumericWordShape("42"), "#num#");
  EXPECT_EQ(NumericWordShape("3.8/4.0"), "#ratio#");
  EXPECT_EQ(NumericWordShape("3.5"), "#ratio#");
  EXPECT_EQ(NumericWordShape("abc"), "");
  EXPECT_EQ(NumericWordShape("12a"), "");
  EXPECT_EQ(NumericWordShape(""), "");
  EXPECT_EQ(NumericWordShape("./"), "");
}

// ---------------------------------------------------------------------------
// Randomized differential sweep (the property-test generator style of
// tests/property_test.cc: seeded Rng over a piece table, so failures
// reproduce deterministically).

std::string RandomText(Rng& rng) {
  static const char* kPieces[] = {
      "University", "B.S.", "M.S.", "Ph.D.", "GPA",      "3.8/4.0",
      "June",       "1996", "2024", "12",    "Phone",    "Email",
      "Objective",  "Skill","Java", "C++",   "uni",      "vers",
      "BS",         "JOBS", "a",    "x9",    "9x",       ".",
      ",",          "-",    "/",    "(304)", "921-4363", "##",
      "skills",     "EDUCATION",    "experience",        "1990.",
  };
  std::string text;
  const size_t pieces = rng.NextBelow(24);
  for (size_t i = 0; i < pieces; ++i) {
    text += kPieces[rng.NextBelow(std::size(kPieces))];
    // Random glue: space, nothing, or punctuation — exercises word
    // boundaries both ways.
    switch (rng.NextBelow(4)) {
      case 0: text += ' '; break;
      case 1: break;
      case 2: text += ", "; break;
      case 3: text += "-"; break;
    }
  }
  return text;
}

ConceptSet RandomConcepts(Rng& rng) {
  static const char* kWords[] = {
      "alpha", "beta",  "gamma", "delta", "omega", "uni",   "university",
      "vers",  "score", "board", "game",  "a",     "bc",    "b.s.",
      "x",     "xy",    "xyz",   "##",    "#",     "time",
  };
  static const char* kShapes[] = {"#num#", "#year#", "#ratio#"};
  ConceptSet concepts;
  const size_t count = 1 + rng.NextBelow(6);
  for (size_t c = 0; c < count; ++c) {
    Concept concept_def;
    concept_def.name = std::string("C") + std::to_string(c);
    const size_t instances = rng.NextBelow(6);
    for (size_t i = 0; i < instances; ++i) {
      if (rng.NextBool(0.25)) {
        concept_def.instances.push_back(
            kShapes[rng.NextBelow(std::size(kShapes))]);
      } else {
        std::string word = kWords[rng.NextBelow(std::size(kWords))];
        if (rng.NextBool(0.3)) {
          word += ' ';
          word += kWords[rng.NextBelow(std::size(kWords))];
        }
        concept_def.instances.push_back(std::move(word));
      }
    }
    concepts.Add(std::move(concept_def));
  }
  return concepts;
}

class MatcherDifferentialProperty : public ::testing::TestWithParam<uint64_t> {
};

TEST_P(MatcherDifferentialProperty, ResumeDomainOnRandomText) {
  ConceptSet concepts = ResumeConcepts();
  Rng rng(GetParam());
  for (size_t i = 0; i < 50; ++i) {
    ExpectSameMatches(concepts, RandomText(rng));
  }
}

TEST_P(MatcherDifferentialProperty, RandomConceptsOnRandomText) {
  Rng rng(GetParam() * 7919 + 1);
  for (size_t round = 0; round < 10; ++round) {
    ConceptSet concepts = RandomConcepts(rng);
    for (size_t i = 0; i < 20; ++i) {
      ExpectSameMatches(concepts, RandomText(rng));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MatcherDifferentialProperty,
                         ::testing::Range<uint64_t>(1, 21));

}  // namespace
}  // namespace webre
