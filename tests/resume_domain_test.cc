#include <gtest/gtest.h>

#include <set>

#include "concepts/resume_domain.h"

namespace webre {
namespace {

TEST(ResumeDomainTest, PaperCounts) {
  // §4: "There are 24 concept names and a total of 233 concept instances
  // specified as domain knowledge."
  ConceptSet set = ResumeConcepts();
  EXPECT_EQ(set.size(), 24u);
  EXPECT_EQ(set.TotalInstanceCount(), 233u);
}

TEST(ResumeDomainTest, TitleContentSplit) {
  // §4.2: "Out of the 24 concept names, 11 are title names and 13 are
  // content names."
  EXPECT_EQ(ResumeTitleConceptNames().size(), 11u);
  EXPECT_EQ(ResumeContentConceptNames().size(), 13u);

  ConceptSet set = ResumeConcepts();
  std::set<std::string> all;
  for (const std::string& name : ResumeTitleConceptNames()) {
    EXPECT_TRUE(set.Contains(name)) << name;
    all.insert(name);
  }
  for (const std::string& name : ResumeContentConceptNames()) {
    EXPECT_TRUE(set.Contains(name)) << name;
    all.insert(name);
  }
  EXPECT_EQ(all.size(), 24u);  // disjoint and complete
}

TEST(ResumeDomainTest, ConceptNamesUppercase) {
  // Concept elements must never collide with lowercased HTML tags.
  ConceptSet set = ResumeConcepts();
  for (const Concept& c : set.concepts()) {
    for (char ch : c.name) {
      EXPECT_TRUE(ch >= 'A' && ch <= 'Z') << c.name;
    }
  }
}

TEST(ResumeDomainTest, RecognizesPaperExample) {
  // §2.3.1's topic sentence (modulo the GPA value).
  ConceptSet set = ResumeConcepts();
  auto matches = set.MatchAll(
      "University of California at Davis, B.S.(Computer Science), "
      "June 1996, GPA 3.8/4.0");
  std::set<std::string> concepts;
  for (const InstanceMatch& m : matches) {
    concepts.insert(std::string(m.concept_name));
  }
  EXPECT_TRUE(concepts.count("INSTITUTION"));
  EXPECT_TRUE(concepts.count("DEGREE"));
  EXPECT_TRUE(concepts.count("DATE"));
  EXPECT_TRUE(concepts.count("GPA"));
}

TEST(ResumeDomainTest, SectionHeadingsRecognized) {
  ConceptSet set = ResumeConcepts();
  EXPECT_EQ(set.MatchFirst("Education").concept_name, "EDUCATION");
  EXPECT_EQ(set.MatchFirst("Work Experience").concept_name, "EXPERIENCE");
  EXPECT_EQ(set.MatchFirst("Technical Skills").concept_name, "SKILLS");
  EXPECT_EQ(set.MatchFirst("References").concept_name, "REFERENCE");
  EXPECT_EQ(set.MatchFirst("Relevant Coursework").concept_name, "COURSES");
}

TEST(ResumeDomainTest, ConstraintsMatchPaperSetup) {
  ConstraintSet constraints = ResumeConstraints();
  EXPECT_TRUE(constraints.no_repeat_on_path());
  EXPECT_EQ(constraints.max_level(), 3u);
  // Title concepts only at level 1.
  EXPECT_TRUE(constraints.AllowedAtLevel("EDUCATION", 1));
  EXPECT_FALSE(constraints.AllowedAtLevel("EDUCATION", 2));
  // Content concepts only below level 1.
  EXPECT_FALSE(constraints.AllowedAtLevel("DATE", 1));
  EXPECT_TRUE(constraints.AllowedAtLevel("DATE", 2));
  EXPECT_TRUE(constraints.AllowedAtLevel("DATE", 3));
  EXPECT_FALSE(constraints.AllowedAtLevel("DATE", 4));  // max level
}

TEST(ResumeDomainTest, InstancesDoNotShadowEachOtherAcrossConcepts) {
  // No instance string appears under two different concepts (homonyms
  // are resolved by context in the paper, not by duplicate instances).
  ConceptSet set = ResumeConcepts();
  std::set<std::string> seen;
  for (const Concept& c : set.concepts()) {
    for (const std::string& instance : c.instances) {
      EXPECT_TRUE(seen.insert(instance).second)
          << "duplicate instance: " << instance;
    }
  }
}

}  // namespace
}  // namespace webre
