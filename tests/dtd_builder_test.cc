#include <gtest/gtest.h>

#include "schema/dtd_builder.h"
#include "schema/frequent_paths.h"

namespace webre {
namespace {

SchemaNode Leaf(const std::string& label, double rep = 0.0,
                size_t docs = 10) {
  SchemaNode node;
  node.label = label;
  node.rep_fraction = rep;
  node.doc_count = docs;
  return node;
}

MajoritySchema ResumeSchema() {
  SchemaNode root = Leaf("resume");
  SchemaNode contact = Leaf("contact", /*rep=*/0.8);
  SchemaNode objective = Leaf("objective", /*rep=*/0.0);
  SchemaNode education = Leaf("education", /*rep=*/0.7);
  education.children.push_back(Leaf("institute"));
  SchemaNode date_entry = Leaf("date-entry", /*rep=*/0.2);
  date_entry.children.push_back(Leaf("degree"));
  education.children.push_back(date_entry);
  root.children.push_back(contact);
  root.children.push_back(objective);
  root.children.push_back(education);
  return MajoritySchema(std::move(root));
}

TEST(DtdBuilderTest, EmptySchemaGivesEmptyDtd) {
  Dtd dtd = BuildDtd(MajoritySchema());
  EXPECT_TRUE(dtd.elements().empty());
  EXPECT_TRUE(dtd.root().empty());
}

TEST(DtdBuilderTest, RootAndDeclarationsEmitted) {
  Dtd dtd = BuildDtd(ResumeSchema());
  EXPECT_EQ(dtd.root(), "resume");
  EXPECT_NE(dtd.Find("resume"), nullptr);
  EXPECT_NE(dtd.Find("contact"), nullptr);
  EXPECT_NE(dtd.Find("education"), nullptr);
  EXPECT_NE(dtd.Find("date-entry"), nullptr);
  EXPECT_NE(dtd.Find("degree"), nullptr);
  EXPECT_EQ(dtd.elements().size(), 7u);
}

TEST(DtdBuilderTest, LeavesArePcdata) {
  Dtd dtd = BuildDtd(ResumeSchema());
  EXPECT_TRUE(dtd.Find("contact")->pcdata_only);
  EXPECT_TRUE(dtd.Find("degree")->pcdata_only);
  EXPECT_FALSE(dtd.Find("education")->pcdata_only);
}

TEST(DtdBuilderTest, RepetitiveChildrenGetPlus) {
  // mult(e) > 0.5 => e+ (paper's threshold example).
  Dtd dtd = BuildDtd(ResumeSchema());
  const std::string resume_decl = dtd.Find("resume")->ToString();
  EXPECT_NE(resume_decl.find("contact+"), std::string::npos) << resume_decl;
  EXPECT_NE(resume_decl.find("education+"), std::string::npos);
  // objective is not repetitive: plain name, no '+'.
  EXPECT_NE(resume_decl.find("objective"), std::string::npos);
  EXPECT_EQ(resume_decl.find("objective+"), std::string::npos);
}

TEST(DtdBuilderTest, PcdataLeadsContentModels) {
  Dtd dtd = BuildDtd(ResumeSchema());
  const std::string decl = dtd.Find("resume")->ToString();
  EXPECT_NE(decl.find("((#PCDATA), contact+"), std::string::npos) << decl;
}

TEST(DtdBuilderTest, PcdataCanBeDisabled) {
  DtdBuildOptions options;
  options.lead_with_pcdata = false;
  Dtd dtd = BuildDtd(ResumeSchema(), options);
  const std::string decl = dtd.Find("resume")->ToString();
  EXPECT_EQ(decl.find("#PCDATA"), std::string::npos) << decl;
}

TEST(DtdBuilderTest, MultThresholdRespected) {
  DtdBuildOptions options;
  options.mult_threshold = 0.9;  // contact's 0.8 no longer qualifies
  Dtd dtd = BuildDtd(ResumeSchema(), options);
  const std::string decl = dtd.Find("resume")->ToString();
  EXPECT_EQ(decl.find("contact+"), std::string::npos) << decl;
}

TEST(DtdBuilderTest, OptionalExtensionMarksRareChildren) {
  // objective present in 4 of root's 10 docs => optional under the
  // extension.
  MajoritySchema schema = ResumeSchema();
  schema.mutable_root().children[1].doc_count = 4;
  DtdBuildOptions options;
  options.mark_optional = true;
  options.optional_threshold = 0.95;
  Dtd dtd = BuildDtd(schema, options);
  const std::string decl = dtd.Find("resume")->ToString();
  EXPECT_NE(decl.find("objective?"), std::string::npos) << decl;
  // contact: rep 0.8 and rare? contact doc_count=10 = parent's: not
  // optional, stays '+'.
  EXPECT_NE(decl.find("contact+"), std::string::npos) << decl;
}

TEST(DtdBuilderTest, HomonymDeclarationsMerged) {
  // DATE occurs as a structured node under education and as a leaf under
  // courses; the single DTD declaration must accept both shapes.
  SchemaNode root = Leaf("resume");
  SchemaNode education = Leaf("education");
  SchemaNode date_structured = Leaf("date");
  date_structured.children.push_back(Leaf("degree"));
  education.children.push_back(date_structured);
  SchemaNode courses = Leaf("courses");
  courses.children.push_back(Leaf("date"));  // leaf homonym
  root.children.push_back(education);
  root.children.push_back(courses);
  Dtd dtd = BuildDtd(MajoritySchema(std::move(root)));

  const ElementDecl* date = dtd.Find("date");
  ASSERT_NE(date, nullptr);
  ASSERT_FALSE(date->pcdata_only);
  // degree must be optional in the merged model so leaf DATEs validate.
  const std::string decl = date->ToString();
  EXPECT_NE(decl.find("degree?"), std::string::npos) << decl;
}

TEST(DtdBuilderTest, PaperSampleShape) {
  // Mirror of the §4.4 DTD fragment: resume ((#PCDATA), contact+,
  // objective, education+, ...) with education ((#PCDATA), institute,
  // date-entry).
  Dtd dtd = BuildDtd(ResumeSchema());
  EXPECT_EQ(dtd.Find("education")->ToString(),
            "<!ELEMENT education ((#PCDATA), institute, date-entry)>");
  EXPECT_EQ(dtd.Find("date-entry")->ToString(),
            "<!ELEMENT date-entry ((#PCDATA), degree)>");
  EXPECT_EQ(dtd.Find("institute")->ToString(),
            "<!ELEMENT institute (#PCDATA)>");
}

}  // namespace
}  // namespace webre
