#include <gtest/gtest.h>

#include "html/parser.h"
#include "restructure/tokenize_rule.h"

namespace webre {
namespace {

// Collects the texts of all TOKEN nodes in pre-order.
std::vector<std::string> TokenTexts(const Node& root) {
  std::vector<std::string> texts;
  root.PreOrder([&](const Node& n) {
    if (n.is_element() && n.name() == kTokenTag) {
      std::string text;
      for (size_t i = 0; i < n.child_count(); ++i) {
        if (n.child(i)->is_text()) text += n.child(i)->text();
      }
      texts.push_back(text);
    }
  });
  return texts;
}

TEST(TokenizeRuleTest, PaperTopicSentence) {
  // §2.3.1: the topic sentence splits into four tokens at commas.
  auto root = Node::MakeElement("p");
  root->AddText(
      "University of California at Davis, B.S.(Computer Science), "
      "June 1996, GPA 3.8/4.0");
  size_t created = ApplyTokenizationRule(root.get());
  EXPECT_EQ(created, 4u);
  auto texts = TokenTexts(*root);
  ASSERT_EQ(texts.size(), 4u);
  EXPECT_EQ(texts[0], "University of California at Davis");
  EXPECT_EQ(texts[1], "B.S.(Computer Science)");
  EXPECT_EQ(texts[2], "June 1996");
  EXPECT_EQ(texts[3], "GPA 3.8/4.0");
}

TEST(TokenizeRuleTest, TextWithoutDelimitersIsOneToken) {
  auto root = Node::MakeElement("p");
  root->AddText("just one piece");
  EXPECT_EQ(ApplyTokenizationRule(root.get()), 1u);
  EXPECT_EQ(root->child_count(), 1u);
  EXPECT_EQ(root->child(0)->name(), kTokenTag);
}

TEST(TokenizeRuleTest, TokensReplaceTextInPlace) {
  auto root = Node::MakeElement("p");
  root->AddElement("b");
  root->AddText("a, b");
  root->AddElement("i");
  ApplyTokenizationRule(root.get());
  ASSERT_EQ(root->child_count(), 4u);
  EXPECT_EQ(root->child(0)->name(), "b");
  EXPECT_EQ(root->child(1)->name(), kTokenTag);
  EXPECT_EQ(root->child(2)->name(), kTokenTag);
  EXPECT_EQ(root->child(3)->name(), "i");
}

TEST(TokenizeRuleTest, RecursesIntoElements) {
  auto root = Node::MakeElement("div");
  root->AddElement("p")->AddText("x; y");
  EXPECT_EQ(ApplyTokenizationRule(root.get()), 2u);
}

TEST(TokenizeRuleTest, SemicolonAndColonDelimiters) {
  auto root = Node::MakeElement("p");
  root->AddText("Phone: 555-0134; Fax: 555-0199");
  auto created = ApplyTokenizationRule(root.get());
  EXPECT_EQ(created, 4u);
  auto texts = TokenTexts(*root);
  EXPECT_EQ(texts[0], "Phone");
  EXPECT_EQ(texts[1], "555-0134");
}

TEST(TokenizeRuleTest, EmptyPiecesDropped) {
  auto root = Node::MakeElement("p");
  root->AddText(", , a ,, b ,");
  EXPECT_EQ(ApplyTokenizationRule(root.get()), 2u);
}

TEST(TokenizeRuleTest, WhitespaceTrimmedFromTokens) {
  auto root = Node::MakeElement("p");
  root->AddText("  a ,   b  ");
  ApplyTokenizationRule(root.get());
  auto texts = TokenTexts(*root);
  EXPECT_EQ(texts[0], "a");
  EXPECT_EQ(texts[1], "b");
}

TEST(TokenizeRuleTest, CustomDelimiters) {
  TokenizeOptions options;
  options.delimiters = "|";
  auto root = Node::MakeElement("p");
  root->AddText("a | b, c");
  ApplyTokenizationRule(root.get(), options);
  auto texts = TokenTexts(*root);
  ASSERT_EQ(texts.size(), 2u);
  EXPECT_EQ(texts[1], "b, c");  // comma not a delimiter here
}

TEST(TokenizeRuleTest, WorksOnParsedHtml) {
  auto root = ParseHtml("<body><p>one, two</p><ul><li>three</li></ul></body>");
  size_t created = ApplyTokenizationRule(root.get());
  EXPECT_EQ(created, 3u);
}

TEST(TokenizeRuleTest, NoTextNodesRemainAfterRule) {
  auto root = ParseHtml("<body><p>a, b</p>c; d</body>");
  ApplyTokenizationRule(root.get());
  size_t loose_text = 0;
  root->PreOrder([&](const Node& n) {
    if (n.is_text() && n.parent() != nullptr &&
        n.parent()->name() != kTokenTag) {
      ++loose_text;
    }
  });
  EXPECT_EQ(loose_text, 0u);
}

TEST(TokenizeRuleTest, NullRootIsNoop) {
  EXPECT_EQ(ApplyTokenizationRule(nullptr), 0u);
}

}  // namespace
}  // namespace webre
