#include <gtest/gtest.h>

#include "concepts/concept.h"

namespace webre {
namespace {

ConceptSet SmallSet() {
  ConceptSet set;
  set.Add({"INSTITUTION", {"university", "college", "univ"}});
  set.Add({"DEGREE", {"b.s.", "bs", "master of science"}});
  set.Add({"DATE", {"june", "#year#"}});
  set.Add({"GPA", {"gpa", "#ratio#"}});
  set.Add({"LOCATION", {"california", "boston"}});
  return set;
}

TEST(ConceptTest, IsShapeInstance) {
  EXPECT_TRUE(Concept::IsShapeInstance("#year#"));
  EXPECT_TRUE(Concept::IsShapeInstance("#ratio#"));
  EXPECT_FALSE(Concept::IsShapeInstance("year"));
  EXPECT_FALSE(Concept::IsShapeInstance("#"));
}

TEST(ConceptSetTest, FindAndContains) {
  ConceptSet set = SmallSet();
  EXPECT_NE(set.Find("DATE"), nullptr);
  EXPECT_EQ(set.Find("date"), nullptr);  // case-sensitive names
  EXPECT_TRUE(set.Contains("GPA"));
  EXPECT_FALSE(set.Contains("NOPE"));
}

TEST(ConceptSetTest, AddReplacesSameName) {
  ConceptSet set = SmallSet();
  const size_t before = set.size();
  set.Add({"DATE", {"only-this"}});
  EXPECT_EQ(set.size(), before);
  EXPECT_EQ(set.Find("DATE")->instances.size(), 1u);
}

TEST(ConceptSetTest, TotalInstanceCount) {
  ConceptSet set = SmallSet();
  EXPECT_EQ(set.TotalInstanceCount(), 3u + 3u + 2u + 2u + 2u);
}

TEST(MatchTest, SimpleKeywordMatch) {
  ConceptSet set = SmallSet();
  auto matches = set.MatchAll("Stanford University");
  ASSERT_EQ(matches.size(), 1u);
  EXPECT_EQ(matches[0].concept_name, "INSTITUTION");
  EXPECT_EQ(matches[0].position, 9u);
  EXPECT_EQ(matches[0].length, 10u);
}

TEST(MatchTest, CaseInsensitive) {
  ConceptSet set = SmallSet();
  EXPECT_EQ(set.MatchFirst("UNIVERSITY").concept_name, "INSTITUTION");
  EXPECT_EQ(set.MatchFirst("University").concept_name, "INSTITUTION");
}

TEST(MatchTest, WordBoundariesEnforced) {
  ConceptSet set = SmallSet();
  // "bs" must not match inside "jobs" or "absurd".
  EXPECT_TRUE(set.MatchAll("jobs absurd").empty());
  EXPECT_EQ(set.MatchFirst("BS, Computer Science").concept_name, "DEGREE");
}

TEST(MatchTest, ConceptNameItselfIsAnInstance) {
  ConceptSet set = SmallSet();
  // §2.2: the instance set "also includes the name of the concept".
  EXPECT_EQ(set.MatchFirst("my GPA is fine").concept_name, "GPA");
  EXPECT_EQ(set.MatchFirst("the degree earned").concept_name, "DEGREE");
}

TEST(MatchTest, LongerMatchWinsOverlap) {
  ConceptSet set = SmallSet();
  // "univ" and "university" both match at position 0; longer wins.
  auto matches = set.MatchAll("university");
  ASSERT_EQ(matches.size(), 1u);
  EXPECT_EQ(matches[0].length, 10u);
}

TEST(MatchTest, MultiWordInstance) {
  ConceptSet set = SmallSet();
  auto matches = set.MatchAll("earned a Master of Science there");
  ASSERT_EQ(matches.size(), 1u);
  EXPECT_EQ(matches[0].concept_name, "DEGREE");
  EXPECT_EQ(matches[0].length, 17u);
}

TEST(MatchTest, YearShapeMatches) {
  ConceptSet set = SmallSet();
  auto matches = set.MatchAll("in 1996 it happened");
  ASSERT_EQ(matches.size(), 1u);
  EXPECT_EQ(matches[0].concept_name, "DATE");
  EXPECT_EQ(matches[0].position, 3u);
  EXPECT_EQ(matches[0].length, 4u);
}

TEST(MatchTest, RatioShapeMatches) {
  ConceptSet set = SmallSet();
  auto matches = set.MatchAll("scored 3.8/4.0 overall");
  ASSERT_EQ(matches.size(), 1u);
  EXPECT_EQ(matches[0].concept_name, "GPA");
}

TEST(MatchTest, PlainNumberIsNotYear) {
  ConceptSet set = SmallSet();
  EXPECT_TRUE(set.MatchAll("room 42").empty());
  EXPECT_TRUE(set.MatchAll("zip 95616").empty());
}

TEST(MatchTest, MultipleConceptsSortedByPosition) {
  ConceptSet set = SmallSet();
  auto matches = set.MatchAll("June 1996, University of California");
  ASSERT_EQ(matches.size(), 4u);
  EXPECT_EQ(matches[0].concept_name, "DATE");       // june
  EXPECT_EQ(matches[1].concept_name, "DATE");       // 1996
  EXPECT_EQ(matches[2].concept_name, "INSTITUTION");
  EXPECT_EQ(matches[3].concept_name, "LOCATION");
  for (size_t i = 1; i < matches.size(); ++i) {
    EXPECT_GT(matches[i].position, matches[i - 1].position);
  }
}

TEST(MatchTest, NoMatchesGiveEmptyResult) {
  ConceptSet set = SmallSet();
  EXPECT_TRUE(set.MatchAll("nothing relevant here").empty());
  EXPECT_EQ(set.MatchFirst("nothing").length, 0u);
}

TEST(MatchTest, EmptyTextAndEmptySet) {
  ConceptSet set = SmallSet();
  EXPECT_TRUE(set.MatchAll("").empty());
  ConceptSet empty;
  EXPECT_TRUE(empty.MatchAll("university").empty());
}

TEST(MatchTest, RepeatedInstanceMatchesEachOccurrence) {
  ConceptSet set = SmallSet();
  auto matches = set.MatchAll("college to college");
  EXPECT_EQ(matches.size(), 2u);
}

TEST(MatchTest, PunctuationAdjacentKeyword) {
  ConceptSet set = SmallSet();
  EXPECT_EQ(set.MatchFirst("(B.S.)").concept_name, "DEGREE");
  EXPECT_EQ(set.MatchFirst("June.").concept_name, "DATE");
}

}  // namespace
}  // namespace webre
