// Unit tests for the wire protocol (serve/frame): frame round-trips in
// both directions, incremental/chunked decoding, the rejection paths a
// malformed or adversarial byte stream must take, and the JSON-lines
// debug face. The frame layout itself is documented in docs/SERVING.md;
// these tests pin the layout's observable behaviour.

#include <cstdint>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "serve/frame.h"
#include "util/status.h"

namespace webre {
namespace serve {
namespace {

constexpr size_t kCap = 1u << 20;

Request MakeQuery(uint32_t id, std::string text) {
  Request request;
  request.type = MsgType::kQuery;
  request.id = id;
  request.body = std::move(text);
  return request;
}

TEST(Frame, RequestRoundTripsEveryType) {
  const MsgType types[] = {MsgType::kPing,   MsgType::kIngest,
                           MsgType::kQuery,  MsgType::kSchema,
                           MsgType::kStats,  MsgType::kCheckpoint};
  for (MsgType type : types) {
    Request request;
    request.type = type;
    request.id = 0xDEADBEEFu;
    if (type == MsgType::kIngest) request.body = "<html>x</html>";
    if (type == MsgType::kQuery) request.body = "//DATE";

    std::string wire;
    EncodeRequest(request, wire);
    FrameDecoder decoder(kCap);
    decoder.Append(wire);
    Request decoded;
    ASSERT_EQ(decoder.NextRequest(decoded), FrameStatus::kFrame);
    EXPECT_EQ(decoded.type, request.type);
    EXPECT_EQ(decoded.id, request.id);
    EXPECT_EQ(decoded.body, request.body);
    EXPECT_EQ(decoder.NextRequest(decoded), FrameStatus::kNeedMore);
    EXPECT_EQ(decoder.buffered_bytes(), 0u);
  }
}

TEST(Frame, ResponseRoundTripsEveryFace) {
  Response query;
  query.type = MsgType::kQuery;
  query.id = 7;
  query.total_matches = 1000;
  query.matches.push_back({42, 3, "DATE", "1999"});
  query.matches.push_back({43, 0, "LANGUAGE", "Java \"quoted\""});

  Response schema;
  schema.type = MsgType::kSchema;
  schema.id = 8;
  schema.schema_text = "resume -> CONTACT EDUCATION";
  schema.dtd_text = "<!ELEMENT resume (CONTACT)>";

  Response error;
  error.type = MsgType::kError;
  error.id = 9;
  error.error = WireError::kOverloaded;
  error.retry_after_ms = 125;
  error.message = "in-flight cap reached";

  Response ingest;
  ingest.type = MsgType::kIngest;
  ingest.id = 10;
  ingest.doc_id = 77;

  Response stats;
  stats.type = MsgType::kStats;
  stats.id = 11;
  stats.stats_json = "{\"serve\":{}}";

  for (const Response* original : {&query, &schema, &error, &ingest, &stats}) {
    std::string wire;
    EncodeResponse(*original, wire);
    FrameDecoder decoder(kCap);
    decoder.Append(wire);
    Response decoded;
    ASSERT_EQ(decoder.NextResponse(decoded), FrameStatus::kFrame);
    EXPECT_EQ(decoded.id, original->id);
    EXPECT_EQ(decoded.error, original->error);
    EXPECT_EQ(decoded.retry_after_ms, original->retry_after_ms);
    EXPECT_EQ(decoded.message, original->message);
    EXPECT_EQ(decoded.doc_id, original->doc_id);
    EXPECT_EQ(decoded.total_matches, original->total_matches);
    ASSERT_EQ(decoded.matches.size(), original->matches.size());
    for (size_t i = 0; i < decoded.matches.size(); ++i) {
      EXPECT_EQ(decoded.matches[i].doc, original->matches[i].doc);
      EXPECT_EQ(decoded.matches[i].pos, original->matches[i].pos);
      EXPECT_EQ(decoded.matches[i].name, original->matches[i].name);
      EXPECT_EQ(decoded.matches[i].val, original->matches[i].val);
    }
    EXPECT_EQ(decoded.schema_text, original->schema_text);
    EXPECT_EQ(decoded.dtd_text, original->dtd_text);
    EXPECT_EQ(decoded.stats_json, original->stats_json);
  }
}

TEST(Frame, ResponseBodyPlusHeaderEqualsWholeFrame) {
  // The cache stores bodies and stamps headers per request; the split
  // encoding must be byte-identical to the one-shot encoding.
  Response response;
  response.type = MsgType::kQuery;
  response.id = 1234;
  response.total_matches = 2;
  response.matches.push_back({1, 0, "DATE", "2001"});

  std::string whole;
  EncodeResponse(response, whole);

  std::string split;
  std::string body;
  EncodeResponseBody(response, body);
  EncodeResponseHeader(response.type, response.id, body.size(), split);
  split += body;
  EXPECT_EQ(whole, split);
}

TEST(Frame, ChunkedDeliveryMatchesContiguous) {
  std::string wire;
  EncodeRequest(MakeQuery(1, "//DATE"), wire);
  EncodeRequest(MakeQuery(2, "/resume/SKILLS/LANGUAGE"), wire);
  Request ingest;
  ingest.type = MsgType::kIngest;
  ingest.id = 3;
  ingest.body = std::string(1000, 'x');
  EncodeRequest(ingest, wire);

  // Byte-at-a-time delivery must produce the same three frames.
  FrameDecoder decoder(kCap);
  std::vector<Request> decoded;
  for (char byte : wire) {
    decoder.Append(std::string_view(&byte, 1));
    Request request;
    while (decoder.NextRequest(request) == FrameStatus::kFrame) {
      decoded.push_back(request);
    }
  }
  ASSERT_EQ(decoded.size(), 3u);
  EXPECT_EQ(decoded[0].body, "//DATE");
  EXPECT_EQ(decoded[1].id, 2u);
  EXPECT_EQ(decoded[2].body.size(), 1000u);
}

TEST(Frame, TruncatedFrameNeedsMore) {
  std::string wire;
  EncodeRequest(MakeQuery(5, "//DATE"), wire);
  for (size_t cut = 0; cut < wire.size(); ++cut) {
    FrameDecoder decoder(kCap);
    decoder.Append(std::string_view(wire).substr(0, cut));
    Request request;
    EXPECT_EQ(decoder.NextRequest(request), FrameStatus::kNeedMore)
        << "prefix of " << cut << " bytes";
  }
}

TEST(Frame, BadVersionRejected) {
  std::string wire;
  EncodeRequest(MakeQuery(5, "//DATE"), wire);
  wire[4] = static_cast<char>(kWireVersion + 1);
  FrameDecoder decoder(kCap);
  decoder.Append(wire);
  Request request;
  EXPECT_EQ(decoder.NextRequest(request), FrameStatus::kBad);
  EXPECT_FALSE(decoder.error().empty());
}

TEST(Frame, UnknownTypeRejected) {
  std::string wire;
  EncodeRequest(MakeQuery(5, "//DATE"), wire);
  wire[5] = static_cast<char>(0x60);
  FrameDecoder decoder(kCap);
  decoder.Append(wire);
  Request request;
  EXPECT_EQ(decoder.NextRequest(request), FrameStatus::kBad);
}

TEST(Frame, DirectionFlagEnforced) {
  // A response frame fed to the request decoder (and vice versa) is a
  // framing error, not a silent misparse.
  Response response;
  response.type = MsgType::kPing;
  response.id = 1;
  std::string wire;
  EncodeResponse(response, wire);
  FrameDecoder decoder(kCap);
  decoder.Append(wire);
  Request request;
  EXPECT_EQ(decoder.NextRequest(request), FrameStatus::kBad);

  std::string request_wire;
  EncodeRequest(MakeQuery(1, "//DATE"), request_wire);
  FrameDecoder response_decoder(kCap);
  response_decoder.Append(request_wire);
  Response decoded;
  EXPECT_EQ(response_decoder.NextResponse(decoded), FrameStatus::kBad);
}

TEST(Frame, OversizedAnnouncementRejectedBeforePayload) {
  // A 64 MiB announcement against a 4 KiB cap must be rejected from the
  // 12 header bytes alone — buffering the payload first would BE the
  // resource exhaustion the cap exists to prevent.
  std::string wire;
  EncodeRequest(MakeQuery(5, "//DATE"), wire);
  const uint32_t huge = 64u << 20;
  wire[0] = static_cast<char>(huge & 0xFF);
  wire[1] = static_cast<char>((huge >> 8) & 0xFF);
  wire[2] = static_cast<char>((huge >> 16) & 0xFF);
  wire[3] = static_cast<char>((huge >> 24) & 0xFF);

  FrameDecoder decoder(4096);
  decoder.Append(wire.substr(0, kFrameHeaderBytes));
  Request request;
  EXPECT_EQ(decoder.NextRequest(request), FrameStatus::kBad);
}

TEST(Frame, TruncatedPayloadStringRejected) {
  // A response payload announcing an inner string longer than the
  // payload itself (request bodies are raw; strings-with-length live in
  // response payloads).
  Response schema;
  schema.type = MsgType::kSchema;
  schema.id = 3;
  schema.schema_text = "resume";
  schema.dtd_text = "<!ELEMENT resume EMPTY>";
  std::string wire;
  EncodeResponse(schema, wire);
  // First payload field is the u32 length of schema_text; point it past
  // the end of the payload.
  wire[kFrameHeaderBytes] = static_cast<char>(0xFF);
  FrameDecoder decoder(kCap);
  decoder.Append(wire);
  Response decoded;
  EXPECT_EQ(decoder.NextResponse(decoded), FrameStatus::kBad);
}

TEST(Frame, JsonRequestParses) {
  Request request;
  ASSERT_TRUE(
      ParseJsonRequest("{\"op\":\"query\",\"q\":\"//DATE\",\"id\":7}", request)
          .ok());
  EXPECT_EQ(request.type, MsgType::kQuery);
  EXPECT_EQ(request.id, 7u);
  EXPECT_EQ(request.body, "//DATE");

  ASSERT_TRUE(ParseJsonRequest("{\"op\":\"ping\"}", request).ok());
  EXPECT_EQ(request.type, MsgType::kPing);

  ASSERT_TRUE(
      ParseJsonRequest("{\"op\":\"ingest\",\"html\":\"<b>x</b>\",\"id\":2}",
                       request)
          .ok());
  EXPECT_EQ(request.type, MsgType::kIngest);
  EXPECT_EQ(request.body, "<b>x</b>");
}

TEST(Frame, JsonRequestRejectsGarbage) {
  Request request;
  EXPECT_FALSE(ParseJsonRequest("", request).ok());
  EXPECT_FALSE(ParseJsonRequest("not json", request).ok());
  EXPECT_FALSE(ParseJsonRequest("{\"op\":\"launch-missiles\"}", request).ok());
  EXPECT_FALSE(ParseJsonRequest("{\"q\":\"//DATE\"}", request).ok());
  EXPECT_FALSE(
      ParseJsonRequest("{\"op\":\"ping\",\"mystery\":1}", request).ok());
}

TEST(Frame, ResponseJsonLineCarriesErrorTaxonomy) {
  Response shed;
  shed.type = MsgType::kError;
  shed.id = 4;
  shed.error = WireError::kOverloaded;
  shed.retry_after_ms = 50;
  shed.message = "quota";
  const std::string line = ResponseToJsonLine(shed);
  EXPECT_NE(line.find("\"error\":\"overloaded\""), std::string::npos);
  EXPECT_NE(line.find("\"retry_after_ms\":50"), std::string::npos);

  Response pong;
  pong.type = MsgType::kPing;
  pong.id = 5;
  EXPECT_NE(ResponseToJsonLine(pong).find("\"ok\":true"), std::string::npos);
}

TEST(Frame, StatusMapsOntoWireTaxonomy) {
  EXPECT_EQ(StatusToWireError(Status::InvalidArgument("x")),
            WireError::kInvalidArgument);
  EXPECT_EQ(StatusToWireError(Status::NotFound("x")), WireError::kNotFound);
  EXPECT_EQ(StatusToWireError(Status::FailedPrecondition("x")),
            WireError::kFailedPrecondition);
  EXPECT_EQ(StatusToWireError(Status::ResourceExhausted("x")),
            WireError::kResourceExhausted);
  EXPECT_EQ(StatusToWireError(Status::Internal("x")), WireError::kInternal);
}

}  // namespace
}  // namespace serve
}  // namespace webre
