#include <gtest/gtest.h>

#include "html/parser.h"
#include "html/tidy.h"

namespace webre {
namespace {

const Node* FindElement(const Node& root, std::string_view name) {
  if (root.is_element() && root.name() == name) return &root;
  for (size_t i = 0; i < root.child_count(); ++i) {
    const Node* found = FindElement(*root.child(i), name);
    if (found != nullptr) return found;
  }
  return nullptr;
}

std::unique_ptr<Node> ParseAndTidy(std::string_view html,
                                   const TidyOptions& options = {}) {
  auto root = ParseHtml(html);
  TidyHtmlTree(root.get(), options);
  return root;
}

TEST(TidyTest, RemovesScriptAndStyle) {
  auto root = ParseAndTidy(
      "<body><script>var x;</script><style>p{}</style><p>keep</p></body>");
  EXPECT_EQ(FindElement(*root, "script"), nullptr);
  EXPECT_EQ(FindElement(*root, "style"), nullptr);
  EXPECT_NE(FindElement(*root, "p"), nullptr);
}

TEST(TidyTest, RemovesFormControls) {
  auto root = ParseAndTidy(
      "<body><select><option>a</option></select><p>keep</p></body>");
  EXPECT_EQ(FindElement(*root, "select"), nullptr);
  EXPECT_NE(FindElement(*root, "p"), nullptr);
}

TEST(TidyTest, RemovesEmptyInlineElements) {
  auto root = ParseAndTidy("<p><b></b>text<i>  </i></p>");
  EXPECT_EQ(FindElement(*root, "b"), nullptr);
  const Node* p = FindElement(*root, "p");
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(p->child_count(), 1u);
}

TEST(TidyTest, KeepsVoidSeparators) {
  auto root = ParseAndTidy("<p>a<br>b<hr></p>");
  EXPECT_NE(FindElement(*root, "br"), nullptr);
  EXPECT_NE(FindElement(*root, "hr"), nullptr);
}

TEST(TidyTest, LiftsNestedHeadings) {
  // §2.4: heading nesting is a well-formedness defect tidy repairs.
  auto root = ParseAndTidy("<body><h2>Outer<h3>Inner</h3></h2><p>x</p></body>");
  const Node* h2 = FindElement(*root, "h2");
  const Node* h3 = FindElement(*root, "h3");
  ASSERT_NE(h2, nullptr);
  ASSERT_NE(h3, nullptr);
  // h3 is no longer inside h2; it is h2's following sibling.
  EXPECT_EQ(h3->parent(), h2->parent());
  EXPECT_EQ(h2->parent()->IndexOf(h3), h2->parent()->IndexOf(h2) + 1);
}

TEST(TidyTest, UnwrapsRedundantInlineNesting) {
  auto root = ParseAndTidy("<p><b><b>bold</b></b></p>");
  const Node* p = FindElement(*root, "p");
  ASSERT_NE(p, nullptr);
  const Node* b = p->child(0);
  ASSERT_EQ(b->name(), "b");
  ASSERT_EQ(b->child_count(), 1u);
  EXPECT_TRUE(b->child(0)->is_text());
}

TEST(TidyTest, MergesAdjacentText) {
  // Removing an element between two texts leaves adjacent text siblings.
  auto root = ParseAndTidy("<p>one<script>x</script>two</p>");
  const Node* p = FindElement(*root, "p");
  ASSERT_NE(p, nullptr);
  ASSERT_EQ(p->child_count(), 1u);
  EXPECT_EQ(p->child(0)->text(), "one two");
}

TEST(TidyTest, RootNeverRemoved) {
  auto root = ParseAndTidy("");
  EXPECT_EQ(root->name(), "html");
}

TEST(TidyTest, OptionsDisableIndividualPasses) {
  TidyOptions options;
  options.remove_non_content = false;
  auto root = ParseAndTidy("<body><script>x</script></body>", options);
  EXPECT_NE(FindElement(*root, "script"), nullptr);
}

TEST(TidyTest, EmptyBlockWithValSurvives) {
  // A node carrying only a val attribute still holds text payload.
  auto root = ParseHtml("<body><div></div></body>");
  const Node* body = FindElement(*root, "body");
  ASSERT_NE(body, nullptr);
  root->PreOrderMutable([](Node& n) {
    if (n.name() == "div") n.set_val("payload");
  });
  TidyHtmlTree(root.get());
  EXPECT_NE(FindElement(*root, "div"), nullptr);
}

}  // namespace
}  // namespace webre
