#include <gtest/gtest.h>

#include "concepts/resume_domain.h"
#include "restructure/instance_rule.h"
#include "restructure/tokenize_rule.h"

namespace webre {
namespace {

class InstanceRuleTest : public ::testing::Test {
 protected:
  InstanceRuleTest()
      : concepts_(ResumeConcepts()), recognizer_(&concepts_) {}

  // Builds <p>text</p>, tokenizes and applies the instance rule.
  std::unique_ptr<Node> Convert(std::string_view text,
                                InstanceRuleStats* stats = nullptr) {
    auto root = Node::MakeElement("p");
    root->AddText(std::string(text));
    ApplyTokenizationRule(root.get());
    InstanceRuleStats local =
        ApplyConceptInstanceRule(root.get(), recognizer_);
    if (stats != nullptr) *stats = local;
    return root;
  }

  ConceptSet concepts_;
  SynonymRecognizer recognizer_;
};

TEST_F(InstanceRuleTest, PaperTopicSentenceBecomesSiblingElements) {
  // §2.3.1's example topic sentence. The paper shows four siblings with
  // a DEGREE of "B.S.(Computer Science)"; our domain additionally knows
  // MAJOR, so the multi-instance decomposition splits that token into
  // DEGREE + MAJOR — five siblings, same information.
  auto root = Convert(
      "University of Wisconsin at Madison, B.S.(Computer Science), "
      "June 1996, GPA 3.8/4.0");
  ASSERT_EQ(root->child_count(), 5u);
  EXPECT_EQ(root->child(0)->name(), "INSTITUTION");
  EXPECT_EQ(root->child(0)->val(), "University of Wisconsin at Madison");
  EXPECT_EQ(root->child(1)->name(), "DEGREE");
  EXPECT_EQ(root->child(1)->val(), "B.S.(");
  EXPECT_EQ(root->child(2)->name(), "MAJOR");
  EXPECT_EQ(root->child(2)->val(), "Computer Science)");
  EXPECT_EQ(root->child(3)->name(), "DATE");
  EXPECT_EQ(root->child(3)->val(), "June 1996");
  EXPECT_EQ(root->child(4)->name(), "GPA");
  EXPECT_EQ(root->child(4)->val(), "GPA 3.8/4.0");
}

TEST_F(InstanceRuleTest, UnidentifiedTokenPassesTextToParent) {
  // §2.3.1 case 2: the token node is deleted, text goes to parent val.
  auto root = Convert("no recognizable payload here");
  EXPECT_EQ(root->child_count(), 0u);
  EXPECT_EQ(root->val(), "no recognizable payload here");
}

TEST_F(InstanceRuleTest, NoTextIsLost) {
  // Mixed identified/unidentified tokens: every character of text ends
  // up either in an element's val or in the parent's val.
  auto root =
      Convert("some preface, June 1996, trailing remark, B.S., closing");
  EXPECT_EQ(root->val(), "some preface trailing remark closing");
  ASSERT_EQ(root->child_count(), 2u);
  EXPECT_EQ(root->child(0)->val(), "June 1996");
  EXPECT_EQ(root->child(1)->val(), "B.S.");
}

TEST_F(InstanceRuleTest, MultiInstanceTokenDecomposed) {
  // §2.3.1 case 1 (multi): a token without delimiters containing two
  // concepts splits at instance boundaries; leading text goes up.
  auto root = Convert("worked at Norwick Software as a Junior Programmer");
  ASSERT_EQ(root->child_count(), 2u);
  EXPECT_EQ(root->child(0)->name(), "COMPANY");
  EXPECT_EQ(root->child(0)->val(), "Software as a Junior");
  EXPECT_EQ(root->child(1)->name(), "JOBTITLE");
  EXPECT_EQ(root->child(1)->val(), "Programmer");
  EXPECT_EQ(root->val(), "worked at Norwick");
}

TEST_F(InstanceRuleTest, AdjacentSameConceptMatchesCoalesce) {
  // "June 1999 - Present" holds three DATE instances but is one date.
  auto root = Convert("June 1999 - Present");
  ASSERT_EQ(root->child_count(), 1u);
  EXPECT_EQ(root->child(0)->name(), "DATE");
  EXPECT_EQ(root->child(0)->val(), "June 1999 - Present");
}

TEST_F(InstanceRuleTest, CollidingInstitutionSplits) {
  // The known failure mode: an embedded LOCATION instance splits the
  // institution token (quantified in bench_accuracy).
  auto root = Convert("University of California");
  ASSERT_EQ(root->child_count(), 2u);
  EXPECT_EQ(root->child(0)->name(), "INSTITUTION");
  EXPECT_EQ(root->child(1)->name(), "LOCATION");
}

TEST_F(InstanceRuleTest, StatsCountIdentification) {
  InstanceRuleStats stats;
  Convert("nothing here, June 1996, also nothing", &stats);
  EXPECT_EQ(stats.tokens_total, 3u);
  EXPECT_EQ(stats.tokens_identified, 1u);
  EXPECT_EQ(stats.elements_created, 1u);
  EXPECT_NEAR(stats.IdentifiedRatio(), 1.0 / 3.0, 1e-9);
}

TEST_F(InstanceRuleTest, StatsRatioOneWhenNoTokens) {
  InstanceRuleStats stats;
  EXPECT_EQ(stats.IdentifiedRatio(), 1.0);
}

TEST_F(InstanceRuleTest, NestedTokensProcessedEverywhere) {
  auto root = Node::MakeElement("body");
  root->AddElement("p")->AddText("June 1996");
  root->AddElement("div")->AddText("B.S.");
  ApplyTokenizationRule(root.get());
  ApplyConceptInstanceRule(root.get(), recognizer_);
  EXPECT_EQ(root->child(0)->child(0)->name(), "DATE");
  EXPECT_EQ(root->child(1)->child(0)->name(), "DEGREE");
}

TEST_F(InstanceRuleTest, SiblingConstraintMergesForbiddenSplit) {
  // With !sibling(COMPANY, JOBTITLE) the second match is merged into the
  // first segment instead of becoming its own element.
  ConstraintSet constraints;
  constraints.Add(
      ConceptConstraint::Sibling("COMPANY", "JOBTITLE", /*negated=*/true));
  auto root = Node::MakeElement("p");
  root->AddText("Norwick Software as Junior Programmer");
  ApplyTokenizationRule(root.get());
  ApplyConceptInstanceRule(root.get(), recognizer_, &constraints);
  ASSERT_EQ(root->child_count(), 1u);
  EXPECT_EQ(root->child(0)->name(), "COMPANY");
  EXPECT_EQ(root->child(0)->val(), "Software as Junior Programmer");
}

TEST_F(InstanceRuleTest, BayesRecognizerClassifiesWholeTokens) {
  BayesClassifier classifier;
  classifier.AddExample("DATE", {"june", "#year#"});
  classifier.AddExample("DATE", {"may", "#year#"});
  classifier.AddExample("INSTITUTION", {"brockhaven", "university"});
  classifier.AddExample("INSTITUTION", {"eastfield", "college"});
  BayesRecognizer bayes(&classifier, &concepts_, /*min_margin=*/0.1);

  auto root = Node::MakeElement("p");
  root->AddText("April 1997");  // unseen month, year shape decides
  ApplyTokenizationRule(root.get());
  ApplyConceptInstanceRule(root.get(), bayes);
  ASSERT_EQ(root->child_count(), 1u);
  EXPECT_EQ(root->child(0)->name(), "DATE");
  EXPECT_EQ(root->child(0)->val(), "April 1997");
}

TEST_F(InstanceRuleTest, HybridFallsBackToBayes) {
  BayesClassifier classifier;
  classifier.AddExample("OBJECTIVE", {"seeking", "role"});
  classifier.AddExample("OBJECTIVE", {"seeking", "opportunity"});
  classifier.AddExample("AWARDS", {"dean's", "list"});
  HybridRecognizer hybrid(&concepts_, &classifier, /*min_margin=*/0.1);

  auto root = Node::MakeElement("p");
  root->AddText("June 1996; seeking a role");
  ApplyTokenizationRule(root.get());
  ApplyConceptInstanceRule(root.get(), hybrid);
  ASSERT_EQ(root->child_count(), 2u);
  EXPECT_EQ(root->child(0)->name(), "DATE");       // synonym path
  EXPECT_EQ(root->child(1)->name(), "OBJECTIVE");  // Bayes fallback
}

}  // namespace
}  // namespace webre
