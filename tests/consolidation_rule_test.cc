#include <gtest/gtest.h>

#include "concepts/resume_domain.h"
#include "restructure/consolidation_rule.h"
#include "restructure/grouping_rule.h"

namespace webre {
namespace {

class ConsolidationTest : public ::testing::Test {
 protected:
  ConsolidationTest() : concepts_(ResumeConcepts()) {}

  ConsolidationStats Run(Node* root, const ConstraintSet* constraints =
                                         nullptr) {
    return ApplyConsolidationRule(root, concepts_, constraints);
  }

  ConceptSet concepts_;
};

TEST_F(ConsolidationTest, PaperFigureOne) {
  // Upper tree of Figure 1:
  //   h2 -> [EDUCATION, ul]
  //   ul -> [GROUP, GROUP]
  //   GROUP -> [DATE, INSTITUTION, DEGREE] each
  // Expected lower tree: EDUCATION -> [DATE, DATE], each DATE ->
  // [INSTITUTION, DEGREE] (under the surrounding root).
  auto root = Node::MakeElement("html");
  Node* h2 = root->AddElement("h2");
  h2->AddElement("EDUCATION")->set_val("Education");
  Node* ul = h2->AddElement("ul");
  for (int i = 0; i < 2; ++i) {
    Node* group = ul->AddElement(kGroupTag);
    group->AddElement("DATE");
    group->AddElement("INSTITUTION");
    group->AddElement("DEGREE");
  }

  Run(root.get());

  ASSERT_EQ(root->child_count(), 1u);
  const Node* education = root->child(0);
  EXPECT_EQ(education->name(), "EDUCATION");
  ASSERT_EQ(education->child_count(), 2u);
  for (size_t i = 0; i < 2; ++i) {
    const Node* date = education->child(i);
    EXPECT_EQ(date->name(), "DATE");
    ASSERT_EQ(date->child_count(), 2u);
    EXPECT_EQ(date->child(0)->name(), "INSTITUTION");
    EXPECT_EQ(date->child(1)->name(), "DEGREE");
  }
}

TEST_F(ConsolidationTest, ChildlessMarkupDeletedValPassedUp) {
  auto root = Node::MakeElement("html");
  Node* p = root->AddElement("p");
  p->set_val("orphan text");
  ConsolidationStats stats = Run(root.get());
  EXPECT_EQ(stats.nodes_deleted, 1u);
  EXPECT_EQ(root->child_count(), 0u);
  EXPECT_EQ(root->val(), "orphan text");
}

TEST_F(ConsolidationTest, ListTagPushesChildrenUp) {
  auto root = Node::MakeElement("html");
  Node* ul = root->AddElement("ul");
  ul->AddElement("DATE");
  ul->AddElement("INSTITUTION");
  ConsolidationStats stats = Run(root.get());
  EXPECT_EQ(stats.nodes_pushed_up, 1u);
  ASSERT_EQ(root->child_count(), 2u);
  EXPECT_EQ(root->child(0)->name(), "DATE");
  EXPECT_EQ(root->child(1)->name(), "INSTITUTION");
}

TEST_F(ConsolidationTest, SameNameChildrenPushedUpEvenWithoutListTag) {
  auto root = Node::MakeElement("html");
  Node* div = root->AddElement("div");
  div->AddElement("DATE");
  div->AddElement("DATE");
  Run(root.get());
  ASSERT_EQ(root->child_count(), 2u);
  EXPECT_EQ(root->child(0)->name(), "DATE");
}

TEST_F(ConsolidationTest, MixedChildrenReplacedByFirstConcept) {
  auto root = Node::MakeElement("html");
  Node* div = root->AddElement("div");
  div->AddElement("DATE");
  div->AddElement("INSTITUTION");
  div->AddElement("DEGREE");
  ConsolidationStats stats = Run(root.get());
  EXPECT_EQ(stats.nodes_replaced, 1u);
  ASSERT_EQ(root->child_count(), 1u);
  const Node* date = root->child(0);
  EXPECT_EQ(date->name(), "DATE");
  ASSERT_EQ(date->child_count(), 2u);
  EXPECT_EQ(date->child(0)->name(), "INSTITUTION");
}

TEST_F(ConsolidationTest, ReplacementAbsorbsNodeVal) {
  auto root = Node::MakeElement("html");
  Node* div = root->AddElement("div");
  div->set_val("section text");
  div->AddElement("DATE");
  div->AddElement("DEGREE");
  Run(root.get());
  EXPECT_EQ(root->child(0)->val(), "section text");
}

TEST_F(ConsolidationTest, SingleChildPushUpGivesValToChild) {
  auto root = Node::MakeElement("html");
  Node* h2 = root->AddElement("h2");
  h2->set_val("heading text");
  h2->AddElement("OBJECTIVE");
  Run(root.get());
  ASSERT_EQ(root->child_count(), 1u);
  EXPECT_EQ(root->child(0)->name(), "OBJECTIVE");
  EXPECT_EQ(root->child(0)->val(), "heading text");
  EXPECT_EQ(root->val(), "");
}

TEST_F(ConsolidationTest, OnlyConceptElementsRemain) {
  auto root = Node::MakeElement("html");
  Node* body = root->AddElement("body");
  Node* p = body->AddElement("p");
  p->AddElement("DATE");
  Node* div = body->AddElement("div");
  div->AddElement("b");  // childless markup inside
  div->AddElement("SKILLS");
  Run(root.get());
  root->PreOrder([&](const Node& n) {
    if (&n == root.get() || !n.is_element()) return;
    EXPECT_TRUE(concepts_.Contains(n.name())) << n.name();
  });
}

TEST_F(ConsolidationTest, DeepMarkupChainsCollapse) {
  auto root = Node::MakeElement("html");
  Node* cursor = root.get();
  for (const char* tag : {"body", "div", "table", "tr", "td", "font", "b"}) {
    cursor = cursor->AddElement(tag);
  }
  cursor->AddElement("NAME");
  Run(root.get());
  ASSERT_EQ(root->child_count(), 1u);
  EXPECT_EQ(root->child(0)->name(), "NAME");
}

TEST_F(ConsolidationTest, StrayTextBecomesVal) {
  auto root = Node::MakeElement("html");
  Node* p = root->AddElement("p");
  p->AddText("loose text");
  p->AddElement("DATE");
  Run(root.get());
  ASSERT_EQ(root->child_count(), 1u);
  EXPECT_EQ(root->child(0)->name(), "DATE");
  // Text was attached to p's val first, then absorbed by DATE on
  // replacement... or pushed up; either way it survives somewhere.
  const bool in_date = root->child(0)->val().find("loose text") !=
                       std::string_view::npos;
  const bool in_root =
      root->val().find("loose text") != std::string_view::npos;
  EXPECT_TRUE(in_date || in_root);
}

TEST_F(ConsolidationTest, ConstraintSelectsDifferentHead) {
  // DATE may not be an ancestor of INSTITUTION; INSTITUTION becomes the
  // replacement head instead.
  ConstraintSet constraints;
  constraints.Add(
      ConceptConstraint::Parent("DATE", "INSTITUTION", /*negated=*/true));
  auto root = Node::MakeElement("html");
  Node* div = root->AddElement("div");
  div->AddElement("DATE");
  div->AddElement("INSTITUTION");
  div->AddElement("DEGREE");
  Run(root.get(), &constraints);
  ASSERT_EQ(root->child_count(), 1u);
  const Node* head = root->child(0);
  EXPECT_EQ(head->name(), "INSTITUTION");
  ASSERT_EQ(head->child_count(), 2u);
  EXPECT_EQ(head->child(0)->name(), "DATE");
  EXPECT_EQ(head->child(1)->name(), "DEGREE");
}

TEST_F(ConsolidationTest, GroupNodesEliminated) {
  auto root = Node::MakeElement("html");
  Node* group = root->AddElement(kGroupTag);
  group->AddElement("DATE");
  group->AddElement("DEGREE");
  Run(root.get());
  EXPECT_EQ(root->child(0)->name(), "DATE");
}

TEST_F(ConsolidationTest, EmptySubtreeVanishesEntirely) {
  auto root = Node::MakeElement("html");
  Node* body = root->AddElement("body");
  body->AddElement("div")->AddElement("p");
  Run(root.get());
  EXPECT_EQ(root->child_count(), 0u);
}

}  // namespace
}  // namespace webre
