#include <gtest/gtest.h>

#include "xml/node.h"

namespace webre {
namespace {

TEST(NodeTest, MakeElementAndText) {
  auto e = Node::MakeElement("resume");
  EXPECT_TRUE(e->is_element());
  EXPECT_EQ(e->name(), "resume");
  auto t = Node::MakeText("hello");
  EXPECT_TRUE(t->is_text());
  EXPECT_EQ(t->text(), "hello");
}

TEST(NodeTest, AddChildSetsParent) {
  auto root = Node::MakeElement("a");
  Node* child = root->AddElement("b");
  EXPECT_EQ(child->parent(), root.get());
  EXPECT_EQ(root->child_count(), 1u);
  EXPECT_EQ(root->child(0), child);
}

TEST(NodeTest, InsertChildAtPosition) {
  auto root = Node::MakeElement("a");
  root->AddElement("x");
  root->AddElement("z");
  root->InsertChild(1, Node::MakeElement("y"));
  EXPECT_EQ(root->child(0)->name(), "x");
  EXPECT_EQ(root->child(1)->name(), "y");
  EXPECT_EQ(root->child(2)->name(), "z");
}

TEST(NodeTest, RemoveChildDetaches) {
  auto root = Node::MakeElement("a");
  root->AddElement("b");
  root->AddElement("c");
  std::unique_ptr<Node> removed = root->RemoveChild(0);
  EXPECT_EQ(removed->name(), "b");
  EXPECT_EQ(removed->parent(), nullptr);
  EXPECT_EQ(root->child_count(), 1u);
  EXPECT_EQ(root->child(0)->name(), "c");
}

TEST(NodeTest, ReplaceChildReturnsOld) {
  auto root = Node::MakeElement("a");
  root->AddElement("old");
  std::unique_ptr<Node> old =
      root->ReplaceChild(0, Node::MakeElement("new"));
  EXPECT_EQ(old->name(), "old");
  EXPECT_EQ(old->parent(), nullptr);
  EXPECT_EQ(root->child(0)->name(), "new");
  EXPECT_EQ(root->child(0)->parent(), root.get());
}

TEST(NodeTest, RemoveAllChildren) {
  auto root = Node::MakeElement("a");
  root->AddElement("b");
  root->AddText("t");
  auto children = root->RemoveAllChildren();
  EXPECT_EQ(children.size(), 2u);
  EXPECT_EQ(root->child_count(), 0u);
  EXPECT_EQ(children[0]->parent(), nullptr);
}

TEST(NodeTest, AttributesSetGetRemove) {
  auto e = Node::MakeElement("e");
  EXPECT_FALSE(e->has_attr("val"));
  EXPECT_EQ(e->attr("val"), "");
  e->set_attr("val", "x");
  EXPECT_TRUE(e->has_attr("val"));
  EXPECT_EQ(e->attr("val"), "x");
  e->set_attr("val", "y");  // overwrite
  EXPECT_EQ(e->attr("val"), "y");
  EXPECT_EQ(e->attributes().size(), 1u);
  e->remove_attr("val");
  EXPECT_FALSE(e->has_attr("val"));
}

TEST(NodeTest, AppendValInsertsSeparator) {
  auto e = Node::MakeElement("e");
  e->AppendVal("first");
  EXPECT_EQ(e->val(), "first");
  e->AppendVal("second");
  EXPECT_EQ(e->val(), "first second");
  e->AppendVal("");  // no-op
  EXPECT_EQ(e->val(), "first second");
}

TEST(NodeTest, IndexOf) {
  auto root = Node::MakeElement("a");
  root->AddElement("b");
  Node* c = root->AddElement("c");
  EXPECT_EQ(root->IndexOf(c), 1u);
}

TEST(NodeTest, CloneIsDeepAndDetached) {
  auto root = Node::MakeElement("a");
  root->set_val("v");
  Node* child = root->AddElement("b");
  child->AddText("inner");
  auto copy = root->Clone();
  EXPECT_EQ(copy->parent(), nullptr);
  EXPECT_TRUE(*copy == *root);
  // Mutating the copy leaves the original untouched.
  copy->child(0)->set_name("changed");
  EXPECT_EQ(root->child(0)->name(), "b");
}

TEST(NodeTest, CloneAndSubtreeSizeSurviveExtremeDepth) {
  // Clone, SubtreeSize and the destructor are all iterative; a chain two
  // orders of magnitude past the ResourceLimits::max_tree_depth cap
  // (512) must not overflow the call stack. Trees this deep reach the
  // node layer via Clone() of already-built documents, which is not
  // budget-guarded the way parsing is.
  constexpr size_t kDepth = 50000;
  auto root = Node::MakeElement("a");
  Node* tip = root.get();
  for (size_t i = 0; i < kDepth; ++i) tip = tip->AddElement("d");
  tip->AddText("leaf");
  ASSERT_EQ(root->SubtreeSize(), kDepth + 2);

  auto copy = root->Clone();
  EXPECT_EQ(copy->parent(), nullptr);
  ASSERT_EQ(copy->SubtreeSize(), kDepth + 2);
  const Node* walk = copy.get();
  while (walk->child_count() == 1 && walk->child(0)->is_element()) {
    walk = walk->child(0);
  }
  ASSERT_EQ(walk->child_count(), 1u);
  EXPECT_EQ(walk->child(0)->text(), "leaf");
}

TEST(NodeTest, EqualityStructural) {
  auto a = Node::MakeElement("x");
  a->AddElement("y")->set_val("1");
  auto b = Node::MakeElement("x");
  b->AddElement("y")->set_val("1");
  EXPECT_TRUE(*a == *b);
  b->child(0)->set_val("2");
  EXPECT_FALSE(*a == *b);
}

TEST(NodeTest, SubtreeSizeAndDepth) {
  auto root = Node::MakeElement("a");
  Node* b = root->AddElement("b");
  Node* c = b->AddElement("c");
  b->AddText("t");
  EXPECT_EQ(root->SubtreeSize(), 4u);
  EXPECT_EQ(root->Depth(), 0u);
  EXPECT_EQ(c->Depth(), 2u);
}

TEST(NodeTest, PreOrderVisitsAllInOrder) {
  auto root = Node::MakeElement("a");
  root->AddElement("b")->AddElement("c");
  root->AddElement("d");
  std::vector<std::string> names;
  root->PreOrder([&](const Node& n) { names.emplace_back(n.name()); });
  ASSERT_EQ(names.size(), 4u);
  EXPECT_EQ(names[0], "a");
  EXPECT_EQ(names[1], "b");
  EXPECT_EQ(names[2], "c");
  EXPECT_EQ(names[3], "d");
}

TEST(NodeTest, DebugStringShape) {
  auto root = Node::MakeElement("a");
  Node* b = root->AddElement("b");
  b->set_val("v");
  root->AddText("t");
  EXPECT_EQ(root->DebugString(), "a(b[val=v] \"t\")");
}

}  // namespace
}  // namespace webre
