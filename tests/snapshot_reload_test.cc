// Differential tests for the durable repository: a snapshot and/or WAL
// reload must be observationally identical to a fresh in-memory build
// over the same documents — query results (and the deterministic
// query.* counters) byte-for-byte, across shard counts, re-sharded
// reopens, and pointer-mode (--no-flat) ingest followed by a
// checkpoint (DESIGN.md §14).

#include <sys/stat.h>

#include <memory>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "repository/repository.h"
#include "storage/durable_repository.h"
#include "storage/snapshot.h"
#include "util/rng.h"
#include "xml/node.h"

namespace webre {
namespace storage {
namespace {

constexpr size_t kDocs = 40;

const char* const kQueries[] = {
    "/resume/EDUCATION/DATE",
    "//DATE",
    "//LANGUAGE[val~\"java\"]",
    "//LOCATION",
    "/resume/*/PHONE",
    "//*[val~\"199\"]",
};

std::unique_ptr<Node> MakeDoc(size_t index) {
  Rng rng(0xABCDEFu + index);
  std::unique_ptr<Node> root = Node::MakeElement("resume");
  Node* contact = root->AddElement("CONTACT");
  contact->AddElement("LOCATION")->set_val(
      "city-" + std::to_string(rng.NextBelow(20)));
  if (rng.NextBool(0.6)) {
    contact->AddElement("PHONE")->set_val(
        "555-" + std::to_string(rng.NextBelow(9999)));
  }
  Node* education = root->AddElement("EDUCATION");
  const size_t degrees = 1 + rng.NextBelow(3);
  for (size_t d = 0; d < degrees; ++d) {
    Node* date = education->AddElement("DATE");
    date->set_val(std::to_string(1990 + rng.NextBelow(12)));
    date->AddElement("DEGREE")->set_val(rng.NextBool(0.5) ? "BS" : "MS");
  }
  if (rng.NextBool(0.8)) {
    Node* skills = root->AddElement("SKILLS");
    skills->AddElement("LANGUAGE")->set_val(rng.NextBool(0.5) ? "Java"
                                                              : "Prolog");
  }
  return root;
}

// (doc, pos) pairs — the cross-representation comparable part of a
// match (node/flat pointers differ by construction).
std::vector<std::pair<DocId, uint32_t>> Run(const XmlRepository& repo,
                                            const char* query) {
  auto matches = repo.Query(query);
  EXPECT_TRUE(matches.ok()) << matches.status();
  std::vector<std::pair<DocId, uint32_t>> out;
  for (const QueryMatch& m : *matches) out.emplace_back(m.doc, m.pos);
  return out;
}

// Runs every query on both repositories and expects identical results
// and identical deterministic query counters (shard_tasks excluded —
// it depends on the shard/chunk split, not on the answers).
void ExpectEquivalent(const XmlRepository& fresh,
                      const XmlRepository& reloaded) {
  ASSERT_EQ(reloaded.size(), fresh.size());
  for (const char* query : kQueries) {
    EXPECT_EQ(Run(reloaded, query), Run(fresh, query)) << query;
  }
  const obs::QueryStatsView a = fresh.query_stats();
  const obs::QueryStatsView b = reloaded.query_stats();
  EXPECT_EQ(b.queries, a.queries);
  EXPECT_EQ(b.index_hits, a.index_hits);
  EXPECT_EQ(b.prefix_hits, a.prefix_hits);
  EXPECT_EQ(b.fallback_walks, a.fallback_walks);
  EXPECT_EQ(b.flat_scans, a.flat_scans);
  EXPECT_EQ(b.matches, a.matches);
}

// A fresh, purely in-memory flat repository over the corpus — the
// ground truth every reload is held to.
std::unique_ptr<XmlRepository> FreshBuild(size_t num_shards) {
  RepositoryOptions options;
  options.num_shards = num_shards;
  options.query_threads = 1;
  auto repo = std::make_unique<XmlRepository>(options);
  for (size_t i = 0; i < kDocs; ++i) {
    EXPECT_TRUE(repo->Add(MakeDoc(i)).ok());
  }
  return repo;
}

std::string FreshDir(const std::string& name) {
  const std::string dir = testing::TempDir() + "/" + name;
  // Tests may be re-run in the same TempDir; start from nothing.
  (void)::system(("rm -rf '" + dir + "'").c_str());
  return dir;
}

DurableOptions Opts(size_t num_shards) {
  DurableOptions options;
  options.repository.num_shards = num_shards;
  options.repository.query_threads = 1;
  return options;
}

TEST(SnapshotReload, CheckpointAcrossShardCounts) {
  const std::string dir = FreshDir("reload_shards");
  {
    auto durable = DurableRepository::Open(dir, Opts(3));
    ASSERT_TRUE(durable.ok()) << durable.status();
    for (size_t i = 0; i < kDocs; ++i) {
      ASSERT_TRUE((*durable)->Add(MakeDoc(i)).ok());
    }
    ASSERT_TRUE((*durable)->Checkpoint().ok());
  }

  for (const size_t shards : {size_t{1}, size_t{2}, size_t{4}}) {
    auto durable = DurableRepository::Open(dir, Opts(shards));
    ASSERT_TRUE(durable.ok()) << durable.status();
    // All documents come from the snapshot: zero-copy views, no replay.
    EXPECT_EQ((*durable)->stats().mmap_hits, kDocs);
    EXPECT_EQ((*durable)->stats().wal_replayed, 0u);
    // A fresh baseline per iteration — query counters accumulate.
    ExpectEquivalent(*FreshBuild(2), (*durable)->repo());
  }
}

TEST(SnapshotReload, WalOnlyReplay) {
  const std::string dir = FreshDir("reload_wal_only");
  {
    auto durable = DurableRepository::Open(dir, Opts(2));
    ASSERT_TRUE(durable.ok()) << durable.status();
    for (size_t i = 0; i < kDocs; ++i) {
      ASSERT_TRUE((*durable)->Add(MakeDoc(i)).ok());
    }
    // No checkpoint: everything lives in the WALs.
  }

  auto durable = DurableRepository::Open(dir, Opts(2));
  ASSERT_TRUE(durable.ok()) << durable.status();
  EXPECT_EQ((*durable)->stats().wal_replayed, kDocs);
  EXPECT_EQ((*durable)->stats().mmap_hits, 0u);
  ExpectEquivalent(*FreshBuild(2), (*durable)->repo());
}

TEST(SnapshotReload, ReshardedReopenRehomesWal) {
  const std::string dir = FreshDir("reload_reshard");
  {
    auto durable = DurableRepository::Open(dir, Opts(4));
    ASSERT_TRUE(durable.ok()) << durable.status();
    for (size_t i = 0; i < kDocs; ++i) {
      ASSERT_TRUE((*durable)->Add(MakeDoc(i)).ok());
    }
  }

  // Reopen with fewer shards: the four logs' records must be re-homed
  // into two, with nothing lost...
  {
    auto durable = DurableRepository::Open(dir, Opts(2));
    ASSERT_TRUE(durable.ok()) << durable.status();
    EXPECT_EQ((*durable)->stats().wal_replayed, kDocs);
    ExpectEquivalent(*FreshBuild(2), (*durable)->repo());
  }
  // ...and the rewritten directory must replay cleanly once more.
  {
    auto durable = DurableRepository::Open(dir, Opts(2));
    ASSERT_TRUE(durable.ok()) << durable.status();
    EXPECT_EQ((*durable)->stats().wal_replayed, kDocs);
    ExpectEquivalent(*FreshBuild(2), (*durable)->repo());
  }
}

TEST(SnapshotReload, CheckpointThenMoreAddsThenReload) {
  const std::string dir = FreshDir("reload_mixed");
  {
    auto durable = DurableRepository::Open(dir, Opts(2));
    ASSERT_TRUE(durable.ok()) << durable.status();
    for (size_t i = 0; i < kDocs / 2; ++i) {
      ASSERT_TRUE((*durable)->Add(MakeDoc(i)).ok());
    }
    ASSERT_TRUE((*durable)->Checkpoint().ok());
    for (size_t i = kDocs / 2; i < kDocs; ++i) {
      ASSERT_TRUE((*durable)->Add(MakeDoc(i)).ok());
    }
  }

  auto durable = DurableRepository::Open(dir, Opts(2));
  ASSERT_TRUE(durable.ok()) << durable.status();
  // Half from the snapshot, half replayed over it.
  EXPECT_EQ((*durable)->stats().mmap_hits, kDocs / 2);
  EXPECT_EQ((*durable)->stats().wal_replayed, kDocs - kDocs / 2);
  ExpectEquivalent(*FreshBuild(2), (*durable)->repo());
}

TEST(SnapshotReload, PointerModeIngestSnapshotsToFlat) {
  // Ingest with freeze_flat off (--no-flat): documents stay pointer
  // trees. A snapshot built from that repository freezes them on the
  // fly, and a durable open over it serves the same answers flat.
  RepositoryOptions pointer_options;
  pointer_options.num_shards = 2;
  pointer_options.query_threads = 1;
  pointer_options.freeze_flat = false;
  XmlRepository pointer_repo(pointer_options);
  for (size_t i = 0; i < kDocs; ++i) {
    ASSERT_TRUE(pointer_repo.Add(MakeDoc(i)).ok());
  }
  ASSERT_NE(pointer_repo.document(0), nullptr);       // trees live
  ASSERT_EQ(pointer_repo.flat_document(0), nullptr);  // nothing frozen

  const std::string dir = FreshDir("reload_noflat");
  ::mkdir(dir.c_str(), 0755);
  ASSERT_TRUE(WriteSnapshotFile(dir, BuildSnapshotImage(pointer_repo)).ok());

  auto durable = DurableRepository::Open(dir, Opts(2));
  ASSERT_TRUE(durable.ok()) << durable.status();
  EXPECT_EQ((*durable)->stats().mmap_hits, kDocs);
  ExpectEquivalent(*FreshBuild(2), (*durable)->repo());
}

}  // namespace
}  // namespace storage
}  // namespace webre
