// Truncated and garbage HTML: documents cut off mid-construct (the
// network died, the CMS emitted half a page) and structurally impossible
// markup. The contract is lenient recovery — never a crash, and never
// silent loss of visible text.

#include <gtest/gtest.h>

#include <string>
#include <string_view>
#include <vector>

#include "html/lexer.h"
#include "html/parser.h"
#include "xml/node.h"

namespace webre {
namespace {

// Concatenation of every text node, in document order.
std::string VisibleText(const Node& root) {
  std::string out;
  root.PreOrder([&](const Node& n) {
    if (n.is_text()) out += n.text();
  });
  return out;
}

const Node* Find(const Node& root, std::string_view name) {
  if (root.is_element() && root.name() == name) return &root;
  for (size_t i = 0; i < root.child_count(); ++i) {
    const Node* found = Find(*root.child(i), name);
    if (found != nullptr) return found;
  }
  return nullptr;
}

TEST(TruncatedHtmlTest, EofMidStartTag) {
  auto root = ParseHtml("<p>kept text<di");
  EXPECT_NE(VisibleText(*root).find("kept text"), std::string::npos);
}

TEST(TruncatedHtmlTest, EofMidAttributeValue) {
  auto root = ParseHtml("<p>kept</p><a href=\"http://unterminated");
  EXPECT_NE(VisibleText(*root).find("kept"), std::string::npos);
}

TEST(TruncatedHtmlTest, EofMidAttributeName) {
  auto root = ParseHtml("<p>kept</p><img al");
  EXPECT_NE(VisibleText(*root).find("kept"), std::string::npos);
}

TEST(TruncatedHtmlTest, EofMidEndTag) {
  auto root = ParseHtml("<p>kept</p");
  EXPECT_NE(VisibleText(*root).find("kept"), std::string::npos);
}

TEST(TruncatedHtmlTest, UnterminatedComment) {
  auto root = ParseHtml("<p>before</p><!-- comment never ends <p>eaten</p>");
  // Text before the runaway comment must survive; everything after the
  // open comment is legitimately comment content.
  EXPECT_NE(VisibleText(*root).find("before"), std::string::npos);
}

TEST(TruncatedHtmlTest, EofMidEntity) {
  auto root = ParseHtml("<p>x &am");
  const std::string text = VisibleText(*root);
  // The partial reference cannot decode; its characters pass through.
  EXPECT_NE(text.find("x &am"), std::string::npos);
}

TEST(TruncatedHtmlTest, EofRightAfterAmpersand) {
  auto root = ParseHtml("<p>AT&");
  EXPECT_NE(VisibleText(*root).find("AT&"), std::string::npos);
}

TEST(TruncatedHtmlTest, LoneLessThanAtEof) {
  auto root = ParseHtml("<p>a <");
  EXPECT_NE(VisibleText(*root).find("a"), std::string::npos);
}

TEST(TruncatedHtmlTest, EmptyAndWhitespaceOnlyInput) {
  auto empty = ParseHtml("");
  EXPECT_NE(empty, nullptr);
  auto spaces = ParseHtml("   \n\t  ");
  EXPECT_NE(spaces, nullptr);
}

TEST(TruncatedHtmlTest, NullBytesInText) {
  const std::string html = std::string("<p>a") + '\0' + "b</p>";
  auto root = ParseHtml(html);
  const std::string text = VisibleText(*root);
  EXPECT_NE(text.find('a'), std::string::npos);
  EXPECT_NE(text.find('b'), std::string::npos);
}

TEST(TruncatedHtmlTest, GarbageBytesDoNotCrash) {
  std::string garbage;
  for (int i = 0; i < 4096; ++i) {
    garbage.push_back(static_cast<char>((i * 37 + 11) & 0xFF));
  }
  auto root = ParseHtml(garbage);
  EXPECT_NE(root, nullptr);
}

TEST(MisnestedHtmlTest, OverlappingInlineTagsKeepText) {
  // <b><i></b></i> — the classic misnesting; both words must survive.
  auto root = ParseHtml("<b>bold<i>both</b>italic</i>");
  const std::string text = VisibleText(*root);
  EXPECT_NE(text.find("bold"), std::string::npos);
  EXPECT_NE(text.find("both"), std::string::npos);
  EXPECT_NE(text.find("italic"), std::string::npos);
}

TEST(MisnestedHtmlTest, StrayEndTagsIgnored) {
  auto root = ParseHtml("</div></p>kept<p>more</p></span>");
  const std::string text = VisibleText(*root);
  EXPECT_NE(text.find("kept"), std::string::npos);
  EXPECT_NE(text.find("more"), std::string::npos);
}

TEST(MisnestedHtmlTest, DeeplyWrongClosingOrder) {
  auto root = ParseHtml("<div><span><em>t1</div>t2</span>t3</em>");
  const std::string text = VisibleText(*root);
  EXPECT_NE(text.find("t1"), std::string::npos);
  EXPECT_NE(text.find("t2"), std::string::npos);
  EXPECT_NE(text.find("t3"), std::string::npos);
}

TEST(TruncatedHtmlLexerTest, TokensNeverLoseTextAtEof) {
  // Table-driven: every truncation point of a small page still yields a
  // token stream (no hang, no crash) and keeps the prefix text that was
  // complete before the cut.
  const std::string page =
      "<html><body><h1>Header</h1><p id=\"x\">Body &amp; soul</p>"
      "<!-- note --></body></html>";
  for (size_t cut = 0; cut <= page.size(); ++cut) {
    std::vector<HtmlToken> tokens =
        TokenizeHtml(std::string_view(page).substr(0, cut));
    std::string text;
    for (const HtmlToken& token : tokens) {
      if (token.type == HtmlTokenType::kText) text += token.text();
    }
    if (cut >= page.find("Header") + 6) {
      EXPECT_NE(text.find("Header"), std::string::npos) << "cut=" << cut;
    }
  }
}

}  // namespace
}  // namespace webre
