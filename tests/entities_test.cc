#include <gtest/gtest.h>

#include "html/entities.h"

namespace webre {
namespace {

TEST(EntitiesTest, BasicNamed) {
  EXPECT_EQ(DecodeHtmlEntities("a &amp; b"), "a & b");
  EXPECT_EQ(DecodeHtmlEntities("&lt;tag&gt;"), "<tag>");
  EXPECT_EQ(DecodeHtmlEntities("&quot;x&quot; &apos;y&apos;"), "\"x\" 'y'");
}

TEST(EntitiesTest, NbspBecomesPlainSpace) {
  EXPECT_EQ(DecodeHtmlEntities("a&nbsp;b"), "a b");
}

TEST(EntitiesTest, CaseInsensitiveNames) {
  EXPECT_EQ(DecodeHtmlEntities("&AMP;&Amp;"), "&&");
}

TEST(EntitiesTest, NumericDecimal) {
  EXPECT_EQ(DecodeHtmlEntities("&#65;&#66;"), "AB");
  EXPECT_EQ(DecodeHtmlEntities("&#233;"), "\xC3\xA9");  // é in UTF-8
}

TEST(EntitiesTest, NumericHex) {
  EXPECT_EQ(DecodeHtmlEntities("&#x41;&#X42;"), "AB");
  EXPECT_EQ(DecodeHtmlEntities("&#xE9;"), "\xC3\xA9");
}

TEST(EntitiesTest, NumericWithoutSemicolonLegacy) {
  // Old pages omitted the semicolon on numeric references.
  EXPECT_EQ(DecodeHtmlEntities("&#65 next"), "A next");
}

TEST(EntitiesTest, BareAmpersandPassesThrough) {
  EXPECT_EQ(DecodeHtmlEntities("AT&T Labs"), "AT&T Labs");
  EXPECT_EQ(DecodeHtmlEntities("a & b"), "a & b");
  EXPECT_EQ(DecodeHtmlEntities("&"), "&");
}

TEST(EntitiesTest, UnknownEntityPassesThrough) {
  EXPECT_EQ(DecodeHtmlEntities("&bogus;"), "&bogus;");
}

TEST(EntitiesTest, UnterminatedNamedPassesThrough) {
  EXPECT_EQ(DecodeHtmlEntities("&amp without semicolon"),
            "&amp without semicolon");
}

TEST(EntitiesTest, TypographicEntities) {
  EXPECT_EQ(DecodeHtmlEntities("1996&ndash;1998"),
            "1996\xE2\x80\x93"
            "1998");
  EXPECT_EQ(DecodeHtmlEntities("&copy; 2001"), "\xC2\xA9 2001");
  EXPECT_EQ(DecodeHtmlEntities("&bull; item"), "\xE2\x80\xA2 item");
}

TEST(EntitiesTest, AccentedNames) {
  EXPECT_EQ(DecodeHtmlEntities("r&eacute;sum&eacute;"),
            "r\xC3\xA9sum\xC3\xA9");
}

TEST(EntitiesTest, InvalidNumericPassesThrough) {
  EXPECT_EQ(DecodeHtmlEntities("&#;"), "&#;");
  EXPECT_EQ(DecodeHtmlEntities("&#xZZ;"), "&#xZZ;");
  EXPECT_EQ(DecodeHtmlEntities("&#0;"), "&#0;");
  // Out-of-range codepoint.
  EXPECT_EQ(DecodeHtmlEntities("&#x110000;"), "&#x110000;");
}

TEST(EntitiesTest, AdjacentReferences) {
  EXPECT_EQ(DecodeHtmlEntities("&lt;&lt;&gt;&gt;"), "<<>>");
}

}  // namespace
}  // namespace webre
