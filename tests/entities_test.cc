#include <string>
#include <string_view>

#include <gtest/gtest.h>

#include "html/entities.h"
#include "util/resource_limits.h"

namespace webre {
namespace {

// U+FFFD REPLACEMENT CHARACTER in UTF-8.
constexpr const char* kFFFD = "\xEF\xBF\xBD";

TEST(EntitiesTest, BasicNamed) {
  EXPECT_EQ(DecodeHtmlEntities("a &amp; b"), "a & b");
  EXPECT_EQ(DecodeHtmlEntities("&lt;tag&gt;"), "<tag>");
  EXPECT_EQ(DecodeHtmlEntities("&quot;x&quot; &apos;y&apos;"), "\"x\" 'y'");
}

TEST(EntitiesTest, NbspBecomesPlainSpace) {
  EXPECT_EQ(DecodeHtmlEntities("a&nbsp;b"), "a b");
}

TEST(EntitiesTest, CaseInsensitiveNames) {
  EXPECT_EQ(DecodeHtmlEntities("&AMP;&Amp;"), "&&");
}

TEST(EntitiesTest, NumericDecimal) {
  EXPECT_EQ(DecodeHtmlEntities("&#65;&#66;"), "AB");
  EXPECT_EQ(DecodeHtmlEntities("&#233;"), "\xC3\xA9");  // é in UTF-8
}

TEST(EntitiesTest, NumericHex) {
  EXPECT_EQ(DecodeHtmlEntities("&#x41;&#X42;"), "AB");
  EXPECT_EQ(DecodeHtmlEntities("&#xE9;"), "\xC3\xA9");
}

TEST(EntitiesTest, NumericWithoutSemicolonLegacy) {
  // Old pages omitted the semicolon on numeric references.
  EXPECT_EQ(DecodeHtmlEntities("&#65 next"), "A next");
}

TEST(EntitiesTest, BareAmpersandPassesThrough) {
  EXPECT_EQ(DecodeHtmlEntities("AT&T Labs"), "AT&T Labs");
  EXPECT_EQ(DecodeHtmlEntities("a & b"), "a & b");
  EXPECT_EQ(DecodeHtmlEntities("&"), "&");
}

TEST(EntitiesTest, UnknownEntityPassesThrough) {
  EXPECT_EQ(DecodeHtmlEntities("&bogus;"), "&bogus;");
}

TEST(EntitiesTest, UnterminatedNamedPassesThrough) {
  EXPECT_EQ(DecodeHtmlEntities("&amp without semicolon"),
            "&amp without semicolon");
}

TEST(EntitiesTest, TypographicEntities) {
  EXPECT_EQ(DecodeHtmlEntities("1996&ndash;1998"),
            "1996\xE2\x80\x93"
            "1998");
  EXPECT_EQ(DecodeHtmlEntities("&copy; 2001"), "\xC2\xA9 2001");
  EXPECT_EQ(DecodeHtmlEntities("&bull; item"), "\xE2\x80\xA2 item");
}

TEST(EntitiesTest, AccentedNames) {
  EXPECT_EQ(DecodeHtmlEntities("r&eacute;sum&eacute;"),
            "r\xC3\xA9sum\xC3\xA9");
}

TEST(EntitiesTest, MalformedNumericPassesThrough) {
  // References with no digits at all are not numeric references; the
  // text is preserved verbatim.
  EXPECT_EQ(DecodeHtmlEntities("&#;"), "&#;");
  EXPECT_EQ(DecodeHtmlEntities("&#xZZ;"), "&#xZZ;");
  EXPECT_EQ(DecodeHtmlEntities("&#x;"), "&#x;");
}

TEST(EntitiesTest, InvalidNumericBecomesReplacementChar) {
  // A numeric reference that names no Unicode scalar value consumes the
  // reference and emits U+FFFD — never ill-formed UTF-8, never verbatim
  // text that would re-parse differently downstream.
  struct Case {
    std::string_view input;
    std::string_view expected;
  };
  const Case kCases[] = {
      {"&#0;", kFFFD},                    // NUL is not a scalar value
      {"&#x0;", kFFFD},
      {"&#x110000;", kFFFD},              // just past the Unicode range
      {"&#1114112;", kFFFD},              // same, decimal
      {"&#xFFFFFFFF;", kFFFD},            // would overflow uint32
      {"&#xFFFFFFFFFFFFFFFF1;", kFFFD},   // would overflow uint64 too
      {"&#99999999999999999999;", kFFFD}, // decimal overflow
      {"&#xD800;", kFFFD},                // surrogate range start
      {"&#xDBFF;", kFFFD},                // high surrogate end
      {"&#xDC00;", kFFFD},                // low surrogate start
      {"&#xDFFF;", kFFFD},                // surrogate range end
      {"&#55296;", kFFFD},                // 0xD800 in decimal
      {"&#x10FFFF;", "\xF4\x8F\xBF\xBF"}, // last valid scalar decodes
      {"&#xD7FF;", "\xED\x9F\xBF"},       // just below surrogates
      {"&#xE000;", "\xEE\x80\x80"},       // just above surrogates
  };
  for (const Case& c : kCases) {
    EXPECT_EQ(DecodeHtmlEntities(c.input), c.expected) << c.input;
  }
}

TEST(EntitiesTest, InvalidNumericInsideTextKeepsNeighbors) {
  EXPECT_EQ(DecodeHtmlEntities("a&#xD800;b"), std::string("a") + kFFFD + "b");
}

TEST(EntitiesTest, BudgetedOverloadChargesPerReference) {
  ResourceLimits limits;
  limits.max_entity_expansions = 2;
  ResourceBudget budget(limits);
  std::string out;
  Status status = DecodeHtmlEntities("&amp;&lt;", budget, out);
  ASSERT_TRUE(status.ok()) << status.message();
  EXPECT_EQ(out, "&<");
  EXPECT_EQ(budget.entities_used(), 2u);

  std::string overflow_out;
  Status exhausted = DecodeHtmlEntities("&gt;", budget, overflow_out);
  EXPECT_EQ(exhausted.code(), StatusCode::kResourceExhausted);
}

TEST(EntitiesTest, BudgetedOverloadMatchesUnbudgeted) {
  const std::string_view inputs[] = {
      "a &amp; b", "&#x41;&#X42;", "AT&T Labs", "&bogus;", "&#xD800;"};
  for (std::string_view input : inputs) {
    ResourceBudget budget(ResourceLimits::Unlimited());
    std::string out;
    ASSERT_TRUE(DecodeHtmlEntities(input, budget, out).ok());
    EXPECT_EQ(out, DecodeHtmlEntities(input)) << input;
  }
}

TEST(EntitiesTest, AdjacentReferences) {
  EXPECT_EQ(DecodeHtmlEntities("&lt;&lt;&gt;&gt;"), "<<>>");
}

}  // namespace
}  // namespace webre
