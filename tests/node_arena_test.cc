// Arena-backed node allocation: the bump arena itself, the thread-local
// NodeArenaScope install/restore discipline, and the rule that a Node
// may be deleted after its originating scope has exited (the hidden
// origin header, not the current scope, decides how memory is freed).

#include "xml/node_arena.h"

#include <memory>
#include <utility>

#include "gtest/gtest.h"
#include "util/arena.h"
#include "xml/node.h"

namespace webre {
namespace {

TEST(ArenaTest, BumpAllocationsAreAlignedAndCounted) {
  Arena arena;
  void* a = arena.Allocate(10);
  void* b = arena.Allocate(24);
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  EXPECT_NE(a, b);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(a) % alignof(std::max_align_t), 0u);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(b) % alignof(std::max_align_t), 0u);
  EXPECT_EQ(arena.bytes_allocated(), 34u);
  EXPECT_GE(arena.bytes_reserved(), arena.bytes_allocated());
}

TEST(ArenaTest, OversizedAllocationGetsDedicatedBlock) {
  Arena arena(/*initial_block_bytes=*/128);
  const size_t huge = Arena::kMaxBlockBytes + 64;
  char* p = static_cast<char*>(arena.Allocate(huge));
  ASSERT_NE(p, nullptr);
  p[0] = 'x';
  p[huge - 1] = 'y';  // the whole span must be addressable
  EXPECT_GE(arena.bytes_reserved(), huge);
}

TEST(ArenaTest, ManySmallAllocationsSpanBlocks) {
  Arena arena(/*initial_block_bytes=*/256);
  for (int i = 0; i < 1000; ++i) {
    void* p = arena.Allocate(64);
    ASSERT_NE(p, nullptr);
  }
  EXPECT_EQ(arena.bytes_allocated(), 64000u);
  EXPECT_GT(arena.block_count(), 1u);
}

TEST(ArenaTest, ResetOnEmptyArenaIsANoOp) {
  Arena arena;
  arena.Reset();
  EXPECT_EQ(arena.bytes_allocated(), 0u);
  EXPECT_EQ(arena.bytes_reserved(), 0u);
  EXPECT_EQ(arena.block_count(), 0u);
  EXPECT_NE(arena.Allocate(8), nullptr);  // usable after Reset
}

TEST(ArenaTest, ResetKeepsExactlyOneSpareBlock) {
  Arena arena(/*initial_block_bytes=*/256);
  for (int i = 0; i < 100; ++i) arena.Allocate(64);
  ASSERT_GT(arena.block_count(), 1u);
  const size_t reserved_before = arena.bytes_reserved();

  arena.Reset();
  EXPECT_EQ(arena.bytes_allocated(), 0u);
  EXPECT_EQ(arena.block_count(), 1u);  // only the largest block survives
  EXPECT_GT(arena.bytes_reserved(), 0u);
  EXPECT_LT(arena.bytes_reserved(), reserved_before);

  // The spare is reused in place: small allocations after Reset bump
  // within it instead of mapping fresh blocks.
  const size_t spare = arena.bytes_reserved();
  void* p = arena.Allocate(64);
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(arena.block_count(), 1u);
  EXPECT_EQ(arena.bytes_reserved(), spare);
}

TEST(ArenaTest, ResetSpareServesRepeatedCycles) {
  // The conversion pipeline's reuse pattern: fill, Reset, fill again.
  // Steady state must not accumulate blocks round over round.
  Arena arena(/*initial_block_bytes=*/256);
  size_t steady_reserved = 0;
  for (int round = 0; round < 5; ++round) {
    for (int i = 0; i < 50; ++i) arena.Allocate(48);
    arena.Reset();
    EXPECT_EQ(arena.block_count(), 1u) << "round " << round;
    if (round == 1) steady_reserved = arena.bytes_reserved();
    if (round > 1) {
      EXPECT_EQ(arena.bytes_reserved(), steady_reserved)
          << "round " << round;
    }
  }
}

TEST(NodeArenaTest, NoScopeMeansHeapAllocation) {
  ASSERT_EQ(NodeArena::Current(), nullptr);
  auto node = Node::MakeElement("a");
  EXPECT_EQ(node->name(), "a");
}

TEST(NodeArenaTest, ScopeInstallsAndRestores) {
  NodeArena arena;
  EXPECT_EQ(NodeArena::Current(), nullptr);
  {
    NodeArenaScope scope(&arena);
    EXPECT_EQ(NodeArena::Current(), &arena);
    {
      NodeArena inner;
      NodeArenaScope inner_scope(&inner);
      EXPECT_EQ(NodeArena::Current(), &inner);
    }
    EXPECT_EQ(NodeArena::Current(), &arena);
  }
  EXPECT_EQ(NodeArena::Current(), nullptr);
}

TEST(NodeArenaTest, NullScopeIsNoOp) {
  NodeArena arena;
  NodeArenaScope outer(&arena);
  {
    NodeArenaScope noop(nullptr);
    EXPECT_EQ(NodeArena::Current(), &arena);
  }
  EXPECT_EQ(NodeArena::Current(), &arena);
}

TEST(NodeArenaTest, TreeAllocationIsCountedPerArena) {
  NodeArena arena;
  std::unique_ptr<Node> root;
  {
    NodeArenaScope scope(&arena);
    root = Node::MakeElement("a");
    Node* b = root->AddElement("b");
    b->AddText("hello");
    root->AddElement("c");
  }
  EXPECT_EQ(arena.nodes_allocated(), 4u);
  EXPECT_GT(arena.bytes_allocated(), 4 * sizeof(Node));
  // Deleting arena nodes after the scope exited is legal: destructors
  // run (freeing the owned strings/vectors) but the arena keeps the
  // node memory until it dies.
  root.reset();
  EXPECT_EQ(arena.nodes_allocated(), 4u);
}

TEST(NodeArenaTest, AllocationCounterTracksNodesNotOrigin) {
  const uint64_t before = Node::AllocationsOnThisThread();
  NodeArena arena;
  {
    NodeArenaScope scope(&arena);
    auto root = Node::MakeElement("a");
    root->AddElement("b");
  }
  auto heap_node = Node::MakeElement("c");
  EXPECT_EQ(Node::AllocationsOnThisThread() - before, 3u);
}

TEST(NodeArenaTest, CloneOutsideScopeProducesHeapTree) {
  NodeArena arena;
  std::unique_ptr<Node> root;
  {
    NodeArenaScope scope(&arena);
    root = Node::MakeElement("a");
    root->AddElement("b")->AddText("t");
  }
  const size_t nodes_in_arena = arena.nodes_allocated();
  // No scope installed: the clone's nodes come from the heap and may
  // outlive the arena entirely.
  std::unique_ptr<Node> clone = root->Clone();
  EXPECT_EQ(arena.nodes_allocated(), nodes_in_arena);
  root.reset();
  EXPECT_EQ(clone->DebugString(), "a(b(\"t\"))");
}

TEST(NodeArenaTest, ResetClearsNodeCountAndKeepsSpare) {
  NodeArena arena;
  {
    NodeArenaScope scope(&arena);
    auto root = Node::MakeElement("a");
    for (int i = 0; i < 64; ++i) root->AddElement("b");
  }
  ASSERT_EQ(arena.nodes_allocated(), 65u);
  const size_t reserved = arena.bytes_reserved();
  ASSERT_GT(reserved, 0u);

  arena.Reset();
  EXPECT_EQ(arena.nodes_allocated(), 0u);
  EXPECT_EQ(arena.bytes_allocated(), 0u);
  EXPECT_GT(arena.bytes_reserved(), 0u);  // spare block retained
  EXPECT_LE(arena.bytes_reserved(), reserved);

  // The arena is immediately usable for the next document.
  {
    NodeArenaScope scope(&arena);
    auto root = Node::MakeElement("c");
    root->AddElement("d");
  }
  EXPECT_EQ(arena.nodes_allocated(), 2u);
}

TEST(NodeArenaTest, SplicedNodesStayValidUntilArenaDies) {
  // The pipeline's restructure rules splice nodes out and delete them
  // mid-conversion; with an arena installed the delete is a destructor
  // call only. The remaining tree must be unaffected.
  NodeArena arena;
  std::unique_ptr<Node> root;
  {
    NodeArenaScope scope(&arena);
    root = Node::MakeElement("a");
    root->AddElement("b");
    root->AddElement("c");
    std::unique_ptr<Node> removed = root->RemoveChild(0);
    removed.reset();  // "frees" b into the arena
  }
  ASSERT_EQ(root->child_count(), 1u);
  EXPECT_EQ(root->child(0)->name(), "c");
}

}  // namespace
}  // namespace webre
