#include <gtest/gtest.h>

#include <algorithm>

#include "schema/path_extractor.h"

namespace webre {
namespace {

// Tree A of Figure 2: resume -> (objective, contact,
// education(degree, date, institution)).
std::unique_ptr<Node> FigureTreeA() {
  auto root = Node::MakeElement("resume");
  root->AddElement("objective");
  root->AddElement("contact");
  Node* education = root->AddElement("education");
  education->AddElement("degree");
  education->AddElement("date");
  education->AddElement("institution");
  return root;
}

std::vector<std::string> JoinedPaths(const DocumentPaths& paths) {
  std::vector<std::string> out;
  for (const LabelPath& p : paths.paths) out.push_back(JoinLabelPath(p));
  std::sort(out.begin(), out.end());
  return out;
}

// Index of the path whose joined form is `joined`; the statistics
// vectors are parallel to `paths`.
size_t IndexOf(const DocumentPaths& paths, const std::string& joined) {
  for (size_t i = 0; i < paths.paths.size(); ++i) {
    if (JoinLabelPath(paths.paths[i]) == joined) return i;
  }
  ADD_FAILURE() << "path not found: " << joined;
  return 0;
}

TEST(LabelPathTest, JoinAndSplitRoundTrip) {
  LabelPath p = {"resume", "education", "degree"};
  EXPECT_EQ(JoinLabelPath(p), "resume/education/degree");
  EXPECT_EQ(SplitLabelPath("resume/education/degree"), p);
  EXPECT_EQ(JoinLabelPath({}), "");
  EXPECT_TRUE(SplitLabelPath("").empty());
}

TEST(PathExtractorTest, AllRootPathsPresent) {
  DocumentPaths paths = ExtractPaths(*FigureTreeA());
  auto joined = JoinedPaths(paths);
  std::vector<std::string> expected = {
      "resume",
      "resume/contact",
      "resume/education",
      "resume/education/date",
      "resume/education/degree",
      "resume/education/institution",
      "resume/objective"};
  EXPECT_EQ(joined, expected);
}

TEST(PathExtractorTest, DuplicatePathsDeduplicated) {
  // §3.2: a document is a *set* of paths so repeated occurrences in one
  // document do not bias discovery.
  auto root = Node::MakeElement("resume");
  for (int i = 0; i < 3; ++i) {
    root->AddElement("education")->AddElement("date");
  }
  DocumentPaths paths = ExtractPaths(*root);
  EXPECT_EQ(paths.paths.size(), 3u);  // resume, resume/education, .../date
}

TEST(PathExtractorTest, MultiplicityIsMaxSameLabelSiblings) {
  auto root = Node::MakeElement("resume");
  Node* e1 = root->AddElement("education");
  e1->AddElement("date");
  e1->AddElement("date");
  e1->AddElement("date");
  Node* e2 = root->AddElement("education");
  e2->AddElement("date");
  DocumentPaths paths = ExtractPaths(*root);
  ASSERT_EQ(paths.max_multiplicity.size(), paths.paths.size());
  EXPECT_EQ(paths.max_multiplicity[IndexOf(paths, "resume/education/date")],
            3u);
  EXPECT_EQ(paths.max_multiplicity[IndexOf(paths, "resume/education")], 2u);
  EXPECT_EQ(paths.max_multiplicity[IndexOf(paths, "resume")], 1u);
}

TEST(PathExtractorTest, PositionStatsAveragePosition) {
  auto root = Node::MakeElement("resume");
  root->AddElement("contact");    // position 0
  root->AddElement("education");  // position 1
  root->AddElement("education");  // position 2
  DocumentPaths paths = ExtractPaths(*root);
  ASSERT_EQ(paths.position_sum.size(), paths.paths.size());
  ASSERT_EQ(paths.position_count.size(), paths.paths.size());
  const size_t contact = IndexOf(paths, "resume/contact");
  const size_t education = IndexOf(paths, "resume/education");
  EXPECT_DOUBLE_EQ(paths.position_sum[contact], 0.0);
  EXPECT_EQ(paths.position_count[contact], 1u);
  EXPECT_DOUBLE_EQ(paths.position_sum[education], 3.0);
  EXPECT_EQ(paths.position_count[education], 2u);
}

TEST(PathExtractorTest, TextNodesIgnored) {
  auto root = Node::MakeElement("resume");
  root->AddText("text");
  Node* c = root->AddElement("contact");
  c->AddText("more");
  DocumentPaths paths = ExtractPaths(*root);
  EXPECT_EQ(paths.paths.size(), 2u);
  // contact is the first *element* child: position 0 despite the text.
  EXPECT_DOUBLE_EQ(paths.position_sum[IndexOf(paths, "resume/contact")], 0.0);
}

TEST(PathExtractorTest, SingleNodeDocument) {
  auto root = Node::MakeElement("resume");
  DocumentPaths paths = ExtractPaths(*root);
  ASSERT_EQ(paths.paths.size(), 1u);
  EXPECT_EQ(JoinLabelPath(paths.paths[0]), "resume");
}

TEST(PathExtractorTest, SameLabelAtDifferentDepthsDistinct) {
  auto root = Node::MakeElement("r");
  root->AddElement("a")->AddElement("a");
  DocumentPaths paths = ExtractPaths(*root);
  EXPECT_EQ(paths.paths.size(), 3u);  // r, r/a, r/a/a
}

}  // namespace
}  // namespace webre
