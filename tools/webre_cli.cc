// webre — command-line front end to the library.
//
//   webre convert FILE...                HTML -> XML on stdout
//   webre discover [options] FILE...     majority schema + DTD from files
//   webre map [options] FILE...          conform documents to the DTD
//   webre query QUERY FILE...            run a path query over files
//   webre query-bench [N]                query-serving throughput benchmark
//   webre serve [N]                      network front end (docs/SERVING.md)
//   webre demo [N]                       end-to-end on N generated resumes
//   webre help                           full flag reference on stdout
//
// `webre --serve [options]` is equivalent to `webre serve [options]`
// (flags-first spelling for process supervisors).
//
// Options for discover/map:
//   --sup=F      support threshold (default 0.45)
//   --ratio=F    support-ratio threshold (default 0.4)
//   --root=NAME  output root element name (default "resume")
//   --attlist    include <!ATTLIST> declarations in the DTD
//   --threads=N  worker threads for per-document stages
//                (default 1 = serial; 0 = one per hardware thread)
//
// Fault isolation (all commands taking FILE... input):
//   --keep-going      record per-document failures and continue (default)
//   --no-keep-going   any failed document aborts before schema discovery
//   --max-bytes=N     per-document input size cap
//   --max-depth=N     parse-tree depth cap
//   --max-nodes=N     parse-tree node-count cap
//   --max-entities=N  entity-expansion cap
//
// Observability (every command):
//   --metrics-json=FILE  write the batch metrics summary as JSON
//   --trace=FILE         write a Chrome trace_event file (chrome://tracing)
//   --stats              print a human-readable metrics table on stderr
//
// Documents that fail are reported on stderr as one JSON object per line
// ({"index":..,"file":..,"status":..,"stage":..,"message":..}) so batch
// drivers can triage without parsing prose. Exit code: 0 all documents
// converted, 2 partial failure under --keep-going, 1 total failure or
// abort. Full reference: docs/CLI.md.
//
// The bundled domain knowledge is the paper's resume topic (24 concepts /
// 233 instances); the library API accepts any ConceptSet for other
// topics.

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "concepts/resume_domain.h"
#include "core/pipeline.h"
#include "core/telemetry.h"
#include "corpus/resume_generator.h"
#include "mapping/document_mapper.h"
#include "obs/metrics.h"
#include "obs/pipeline_metrics.h"
#include "obs/trace.h"
#include "repository/repository.h"
#include "restructure/recognizer.h"
#include "serve/server.h"
#include "storage/durable_repository.h"
#include "util/file.h"
#include "util/resource_limits.h"
#include "xml/writer.h"

namespace {

struct CliOptions {
  double sup = 0.45;
  double ratio = 0.4;
  std::string root = "resume";
  bool attlist = false;
  size_t threads = 1;
  size_t shards = 0;    // --shards=N (0 = one per hardware thread)
  size_t reps = 50;     // --reps=N (query-bench workload repetitions)
  bool flat = true;     // --no-flat keeps pointer trees in the repository
  std::string data_dir;            // --data-dir=DIR (durable repository)
  bool checkpoint = false;         // --checkpoint (snapshot + truncate WALs)
  std::string wal_sync = "none";   // --wal-sync=none|fdatasync
  bool serve = false;              // --serve (flags-first serve spelling)
  uint16_t port = 0;               // --port=N (0 = ephemeral)
  size_t loops = 0;                // --loops=N (0 = min(4, hw threads))
  size_t max_clients = 64;         // --max-clients=N
  size_t cache_bytes = 8u << 20;   // --cache-bytes=N (0 disables)
  bool keep_going = true;
  webre::ResourceLimits limits;
  std::string metrics_json_path;  // --metrics-json=FILE
  std::string trace_path;         // --trace=FILE
  bool stats = false;             // --stats
  bool help = false;              // --help anywhere
  std::vector<std::string> args;  // non-flag arguments
};

CliOptions ParseFlags(int argc, char** argv, int first) {
  CliOptions options;
  for (int i = first; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--sup=", 0) == 0) {
      options.sup = std::strtod(arg.c_str() + 6, nullptr);
    } else if (arg.rfind("--ratio=", 0) == 0) {
      options.ratio = std::strtod(arg.c_str() + 8, nullptr);
    } else if (arg.rfind("--root=", 0) == 0) {
      options.root = arg.substr(7);
    } else if (arg.rfind("--threads=", 0) == 0) {
      options.threads =
          static_cast<size_t>(std::strtoul(arg.c_str() + 10, nullptr, 10));
    } else if (arg.rfind("--shards=", 0) == 0) {
      options.shards =
          static_cast<size_t>(std::strtoul(arg.c_str() + 9, nullptr, 10));
    } else if (arg.rfind("--reps=", 0) == 0) {
      options.reps =
          static_cast<size_t>(std::strtoul(arg.c_str() + 7, nullptr, 10));
    } else if (arg == "--no-flat") {
      options.flat = false;
    } else if (arg.rfind("--data-dir=", 0) == 0) {
      options.data_dir = arg.substr(11);
    } else if (arg == "--checkpoint") {
      options.checkpoint = true;
    } else if (arg.rfind("--wal-sync=", 0) == 0) {
      options.wal_sync = arg.substr(11);
    } else if (arg == "--serve") {
      options.serve = true;
    } else if (arg.rfind("--port=", 0) == 0) {
      options.port =
          static_cast<uint16_t>(std::strtoul(arg.c_str() + 7, nullptr, 10));
    } else if (arg.rfind("--loops=", 0) == 0) {
      options.loops =
          static_cast<size_t>(std::strtoul(arg.c_str() + 8, nullptr, 10));
    } else if (arg.rfind("--max-clients=", 0) == 0) {
      options.max_clients =
          static_cast<size_t>(std::strtoul(arg.c_str() + 14, nullptr, 10));
    } else if (arg.rfind("--cache-bytes=", 0) == 0) {
      options.cache_bytes =
          static_cast<size_t>(std::strtoull(arg.c_str() + 14, nullptr, 10));
    } else if (arg == "--attlist") {
      options.attlist = true;
    } else if (arg == "--keep-going") {
      options.keep_going = true;
    } else if (arg == "--no-keep-going") {
      options.keep_going = false;
    } else if (arg.rfind("--max-bytes=", 0) == 0) {
      options.limits.max_input_bytes =
          static_cast<size_t>(std::strtoull(arg.c_str() + 12, nullptr, 10));
    } else if (arg.rfind("--max-depth=", 0) == 0) {
      options.limits.max_tree_depth =
          static_cast<size_t>(std::strtoull(arg.c_str() + 12, nullptr, 10));
    } else if (arg.rfind("--max-nodes=", 0) == 0) {
      options.limits.max_node_count =
          static_cast<size_t>(std::strtoull(arg.c_str() + 12, nullptr, 10));
    } else if (arg.rfind("--max-entities=", 0) == 0) {
      options.limits.max_entity_expansions =
          static_cast<size_t>(std::strtoull(arg.c_str() + 15, nullptr, 10));
    } else if (arg.rfind("--metrics-json=", 0) == 0) {
      options.metrics_json_path = arg.substr(15);
    } else if (arg.rfind("--trace=", 0) == 0) {
      options.trace_path = arg.substr(8);
    } else if (arg == "--stats") {
      options.stats = true;
    } else if (arg == "--help") {
      options.help = true;
    } else {
      options.args.push_back(std::move(arg));
    }
  }
  return options;
}

struct Domain {
  Domain()
      : concepts(webre::ResumeConcepts()),
        constraints(webre::ResumeConstraints()),
        recognizer(&concepts) {}

  webre::ConceptSet concepts;
  webre::ConstraintSet constraints;
  webre::SynonymRecognizer recognizer;
};

int Fail(const std::string& message) {
  std::fprintf(stderr, "webre: %s\n", message.c_str());
  return 1;
}

// Minimal JSON string escaping for the error summary lines.
std::string EscapeJson(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

// Prints one JSON line per failed document to stderr and returns the
// process exit code for the batch: 0 all ok, 2 partial failure with
// keep-going, 1 aborted (or everything failed).
int ReportOutcomes(const webre::PipelineResult& result,
                   const std::vector<std::string>& files) {
  for (const webre::DocumentOutcome& outcome : result.outcomes) {
    if (outcome.ok()) continue;
    const std::string& file =
        outcome.index < files.size() ? files[outcome.index] : std::string();
    std::fprintf(stderr,
                 "{\"index\":%zu,\"file\":\"%s\",\"status\":\"%s\","
                 "\"stage\":\"%s\",\"message\":\"%s\"}\n",
                 outcome.index, EscapeJson(file).c_str(),
                 webre::DocumentStatusName(outcome.status),
                 EscapeJson(outcome.stage).c_str(),
                 EscapeJson(outcome.message).c_str());
  }
  if (result.aborted) {
    std::fprintf(stderr, "webre: aborted: %zu/%zu documents failed\n",
                 result.failed_documents, result.outcomes.size());
    return 1;
  }
  if (result.failed_documents == 0) return 0;
  std::fprintf(stderr, "webre: %zu/%zu documents failed; continuing\n",
               result.failed_documents, result.outcomes.size());
  return result.failed_documents == result.outcomes.size() ? 1 : 2;
}

// The observability sinks a command feeds (allocated only when the user
// asked for output via --metrics-json / --trace / --stats) and the logic
// that renders them once the run finished.
struct ObsSinks {
  explicit ObsSinks(const CliOptions& options) {
    if (!options.metrics_json_path.empty() || options.stats) {
      metrics = std::make_unique<webre::obs::PipelineMetrics>();
    }
    if (!options.trace_path.empty()) {
      trace = std::make_unique<webre::obs::TraceCollector>();
    }
  }

  bool active() const { return metrics != nullptr || trace != nullptr; }

  // Writes/prints whatever the user requested. Returns 0, or 1 if an
  // output file could not be written.
  int Finish(const CliOptions& options) const {
    int code = 0;
    if (metrics != nullptr) {
      const webre::obs::PipelineMetricsSnapshot snapshot =
          metrics->Snapshot();
      if (!options.metrics_json_path.empty()) {
        const webre::obs::BudgetLimitsView limits =
            webre::ToBudgetLimitsView(options.limits);
        webre::Status status =
            webre::WriteFileAtomic(options.metrics_json_path,
                                   webre::obs::MetricsToJson(snapshot, &limits));
        if (!status.ok()) {
          Fail(status.ToString());
          code = 1;
        }
      }
      if (options.stats) {
        std::fprintf(stderr, "%s",
                     webre::obs::MetricsToTable(snapshot).c_str());
      }
    }
    if (trace != nullptr) {
      webre::Status status =
          webre::WriteFileAtomic(options.trace_path, trace->ToJson());
      if (!status.ok()) {
        Fail(status.ToString());
        code = 1;
      }
    }
    return code;
  }

  std::unique_ptr<webre::obs::PipelineMetrics> metrics;
  std::unique_ptr<webre::obs::TraceCollector> trace;
};

webre::Pipeline MakePipeline(const Domain& domain,
                             const CliOptions& options,
                             const ObsSinks& sinks,
                             bool map_documents = false) {
  webre::PipelineOptions pipeline_options;
  pipeline_options.convert.root_name = options.root;
  pipeline_options.mining.sup_threshold = options.sup;
  pipeline_options.mining.ratio_threshold = options.ratio;
  pipeline_options.dtd.mark_optional = map_documents;
  pipeline_options.map_documents = map_documents;
  pipeline_options.parallel.num_threads = options.threads;
  pipeline_options.limits = options.limits;
  pipeline_options.keep_going = options.keep_going;
  pipeline_options.metrics = sinks.metrics.get();
  pipeline_options.trace = sinks.trace.get();
  return webre::Pipeline(&domain.concepts, &domain.recognizer,
                         &domain.constraints, pipeline_options);
}

// Reads every file (or fails loudly); empty list is an error.
bool ReadPages(const std::vector<std::string>& paths,
               std::vector<std::string>& pages) {
  if (paths.empty()) {
    Fail("no input files");
    return false;
  }
  for (const std::string& path : paths) {
    webre::StatusOr<std::string> contents = webre::ReadFile(path);
    if (!contents.ok()) {
      Fail(contents.status().ToString());
      return false;
    }
    pages.push_back(std::move(contents.value()));
  }
  return true;
}

int CmdConvert(const CliOptions& options) {
  std::vector<std::string> pages;
  if (!ReadPages(options.args, pages)) return 1;
  Domain domain;
  ObsSinks sinks(options);
  webre::ConvertOptions convert;
  convert.root_name = options.root;
  convert.limits = options.limits;
  convert.record_stage_spans = sinks.active();
  webre::DocumentConverter converter(&domain.concepts, &domain.recognizer,
                                     &domain.constraints, convert);
  size_t failed = 0;
  for (size_t i = 0; i < pages.size(); ++i) {
    webre::ConvertStats stats;
    std::string stage;
    const double doc_begin =
        sinks.active() ? webre::obs::MonotonicSeconds() : 0.0;
    // convert runs without per-document arenas (trees go straight to the
    // heap, mem.arena_bytes stays 0), but node construction is counted
    // the same way the pipeline counts it.
    const uint64_t allocs_before = webre::Node::AllocationsOnThisThread();
    webre::StatusOr<std::unique_ptr<webre::Node>> xml =
        converter.TryConvert(pages[i], &stats, &stage);
    stats.mem_node_allocs =
        webre::Node::AllocationsOnThisThread() - allocs_before;
    if (sinks.active()) {
      // convert runs the DocumentConverter directly (no Pipeline), so
      // the metrics/trace are assembled here via the same telemetry
      // helpers the pipeline uses.
      const double doc_end = webre::obs::MonotonicSeconds();
      const webre::DocumentStatus status =
          xml.ok() ? webre::DocumentStatus::kOk
                   : webre::StatusToDocumentStatus(xml.status());
      if (sinks.metrics != nullptr) {
        webre::RecordConvertMetrics(*sinks.metrics, stats);
        sinks.metrics->convert_us.Record(
            static_cast<uint64_t>((doc_end - doc_begin) * 1e6));
        sinks.metrics->RecordOutcome(
            webre::DocumentStatusName(status), xml.ok() ? "" : stage,
            xml.ok() ? "" : std::string(xml.status().message()));
      }
      if (sinks.trace != nullptr) {
        webre::EmitConvertTrace(*sinks.trace, stats, i);
        sinks.trace->AddSpan("document", "doc", doc_begin, doc_end, i);
      }
    }
    if (!xml.ok()) {
      ++failed;
      std::fprintf(stderr,
                   "{\"index\":%zu,\"file\":\"%s\",\"status\":\"%s\","
                   "\"stage\":\"%s\",\"message\":\"%s\"}\n",
                   i, EscapeJson(options.args[i]).c_str(),
                   webre::DocumentStatusName(
                       webre::StatusToDocumentStatus(xml.status())),
                   EscapeJson(stage).c_str(),
                   EscapeJson(xml.status().message()).c_str());
      if (!options.keep_going) {
        sinks.Finish(options);
        return 1;
      }
      continue;
    }
    std::printf("<!-- %s: %zu concept nodes, %.0f%% tokens identified -->\n",
                options.args[i].c_str(), stats.concept_nodes,
                100.0 * stats.instance.IdentifiedRatio());
    std::printf("%s", webre::WriteXml(*xml.value()).c_str());
  }
  const int obs_code = sinks.Finish(options);
  if (failed == 0) return obs_code;
  std::fprintf(stderr, "webre: %zu/%zu documents failed\n", failed,
               pages.size());
  return failed == pages.size() ? 1 : 2;
}

int CmdDiscover(const CliOptions& options) {
  std::vector<std::string> pages;
  if (!ReadPages(options.args, pages)) return 1;
  Domain domain;
  ObsSinks sinks(options);
  webre::PipelineResult result =
      MakePipeline(domain, options, sinks).Run(pages);
  const int code = ReportOutcomes(result, options.args);
  sinks.Finish(options);
  if (result.aborted) return code;
  const size_t converted = pages.size() - result.failed_documents;
  std::printf("majority schema (%zu frequent paths from %zu documents):\n%s",
              result.schema.NodeCount(), converted,
              result.schema.ToString().c_str());
  std::printf("\nDTD:\n%s",
              result.dtd.ToString(options.attlist).c_str());
  std::printf("\n%zu/%zu documents conform as converted\n",
              result.conforming_before, converted);
  return code;
}

int CmdMap(const CliOptions& options) {
  std::vector<std::string> pages;
  if (!ReadPages(options.args, pages)) return 1;
  Domain domain;
  ObsSinks sinks(options);
  webre::PipelineResult result =
      MakePipeline(domain, options, sinks, /*map_documents=*/true)
          .Run(pages);
  const int code = ReportOutcomes(result, options.args);
  sinks.Finish(options);
  if (result.aborted) return code;
  for (size_t i = 0; i < result.mapped_documents.size(); ++i) {
    if (result.mapped_documents[i] == nullptr) continue;  // failed doc
    std::printf("<!-- %s (mapped) -->\n%s", options.args[i].c_str(),
                webre::WriteXml(*result.mapped_documents[i]).c_str());
  }
  const size_t converted = pages.size() - result.failed_documents;
  std::fprintf(stderr, "webre: %zu/%zu conform before, %zu/%zu after\n",
               result.conforming_before, converted,
               result.conforming_after, converted);
  return code;
}

// The serving repository a query command uses: plain and in-memory by
// default; durable (snapshot + WAL under --data-dir) when asked. Both
// faces expose the same XmlRepository for querying.
struct RepoHandle {
  std::unique_ptr<webre::XmlRepository> plain;
  std::unique_ptr<webre::storage::DurableRepository> durable;
  webre::XmlRepository* repo = nullptr;

  // Returns a non-OK status when the data dir cannot be opened (a
  // corrupt snapshot, or one from an incompatible format version).
  webre::Status Open(const CliOptions& options) {
    webre::RepositoryOptions repo_options;
    repo_options.num_shards = options.shards;
    repo_options.query_threads = options.threads;
    repo_options.freeze_flat = options.flat;
    if (options.data_dir.empty()) {
      plain = std::make_unique<webre::XmlRepository>(repo_options);
      repo = plain.get();
      return webre::Status::Ok();
    }
    webre::storage::DurableOptions durable_options;
    durable_options.repository = repo_options;
    // Durable storage always serves the flat representation; a
    // pointer-tree repository cannot be mmapped back.
    durable_options.repository.freeze_flat = true;
    if (options.wal_sync == "fdatasync") {
      durable_options.wal_sync = webre::storage::WalSyncMode::kFdatasync;
    } else if (options.wal_sync != "none") {
      return webre::Status::InvalidArgument(
          "--wal-sync must be none or fdatasync, got " + options.wal_sync);
    }
    auto opened =
        webre::storage::DurableRepository::Open(options.data_dir,
                                                durable_options);
    if (!opened.ok()) return opened.status();
    durable = std::move(opened).value();
    repo = &durable->repo();
    return webre::Status::Ok();
  }

  webre::StatusOr<webre::DocId> Add(std::unique_ptr<webre::Node> document,
                                    std::shared_ptr<webre::NodeArena> arena) {
    return durable != nullptr ? durable->Add(std::move(document),
                                             std::move(arena))
                              : repo->Add(std::move(document),
                                          std::move(arena));
  }

  // Renders the storage.* sinks and the optional --checkpoint cycle.
  // Returns 0, or 1 when the checkpoint failed.
  int Finish(const CliOptions& options, const ObsSinks& sinks) {
    if (durable == nullptr) {
      if (options.checkpoint) return Fail("--checkpoint requires --data-dir");
      return 0;
    }
    if (options.checkpoint) {
      webre::Status status = durable->Checkpoint();
      if (!status.ok()) return Fail(status.ToString());
    }
    if (sinks.metrics != nullptr) {
      sinks.metrics->MergeStorageStats(durable->stats());
    }
    return 0;
  }
};

int CmdQuery(const CliOptions& options) {
  if (options.args.size() < 2) {
    return Fail("usage: webre query QUERY FILE...");
  }
  const std::string query = options.args[0];
  std::vector<std::string> pages;
  std::vector<std::string> paths(options.args.begin() + 1,
                                 options.args.end());
  if (!ReadPages(paths, pages)) return 1;

  Domain domain;
  ObsSinks sinks(options);
  webre::PipelineResult result =
      MakePipeline(domain, options, sinks, /*map_documents=*/true)
          .Run(pages);
  const int code = ReportOutcomes(result, paths);
  if (result.aborted) {
    sinks.Finish(options);
    return code;
  }
  RepoHandle handle;
  if (webre::Status status = handle.Open(options); !status.ok()) {
    sinks.Finish(options);
    return Fail(status.ToString());
  }
  webre::XmlRepository& repo = *handle.repo;
  // The repository is packed with surviving documents only, so repo doc
  // ids must be mapped back to input paths. Each document's arena is
  // handed over too: in flat mode it is released at freeze time. With
  // --data-dir the repository may already hold documents recovered from
  // disk; those ids precede `first_new` and report the data dir as
  // their source.
  const size_t first_new = repo.size();
  std::vector<size_t> repo_to_input;
  for (size_t i = 0; i < result.mapped_documents.size(); ++i) {
    if (result.mapped_documents[i] == nullptr) continue;  // failed doc
    auto added = handle.Add(
        std::move(result.mapped_documents[i]),
        i < result.arenas.size() ? result.arenas[i] : nullptr);
    if (!added.ok()) {
      sinks.Finish(options);
      return Fail(added.status().ToString());
    }
    repo_to_input.push_back(i);
  }
  auto matches = repo.Query(query);
  if (!matches.ok()) {
    sinks.Finish(options);
    return Fail(matches.status().ToString());
  }
  const webre::NameTable& names = webre::NameTable::Global();
  for (const webre::QueryMatch& match : *matches) {
    const char* source =
        match.doc >= first_new
            ? paths[repo_to_input[match.doc - first_new]].c_str()
            : options.data_dir.c_str();
    std::printf("%s: <%s val=\"%s\">\n", source,
                std::string(names.NameOf(match.name())).c_str(),
                std::string(match.val()).c_str());
  }
  std::fprintf(stderr, "webre: %zu matches\n", matches->size());
  if (sinks.metrics != nullptr) {
    sinks.metrics->MergeQueryStats(repo.query_stats());
  }
  if (handle.Finish(options, sinks) != 0) {
    sinks.Finish(options);
    return 1;
  }
  sinks.Finish(options);
  return code;
}

// Loads a generated corpus into the repository and times a built-in
// query workload against it — the CLI face of bench/bench_query.cc.
int CmdQueryBench(const CliOptions& options) {
  const size_t count =
      options.args.empty()
          ? 400
          : std::strtoul(options.args[0].c_str(), nullptr, 10);
  std::vector<std::string> pages;
  pages.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    pages.push_back(webre::GenerateResume(i).html);
  }
  Domain domain;
  ObsSinks sinks(options);
  webre::PipelineResult result =
      MakePipeline(domain, options, sinks, /*map_documents=*/true)
          .Run(pages);
  if (result.aborted) {
    sinks.Finish(options);
    return Fail("conversion aborted; no repository to benchmark");
  }

  RepoHandle handle;
  if (webre::Status status = handle.Open(options); !status.ok()) {
    sinks.Finish(options);
    return Fail(status.ToString());
  }
  webre::XmlRepository& repo = *handle.repo;
  const double load_begin = webre::obs::MonotonicSeconds();
  for (size_t i = 0; i < result.mapped_documents.size(); ++i) {
    auto& doc = result.mapped_documents[i];
    if (doc == nullptr) continue;  // failed doc
    handle
        .Add(std::move(doc),
             i < result.arenas.size() ? result.arenas[i] : nullptr)
        .value();
  }
  const double load_seconds = webre::obs::MonotonicSeconds() - load_begin;

  // Simple paths (summary-only), descendant/wildcard/predicate shapes
  // (still summary-only) and an intermediate predicate (tree fallback).
  const char* const workload[] = {
      "/resume/EDUCATION/DATE",
      "/resume/SKILLS/LANGUAGE",
      "/resume/CONTACT/LOCATION/EMAIL",
      "//DATE",
      "//LANGUAGE[val~\"java\"]",
      "/resume/EXPERIENCE//DATE",
      "//LOCATION/*",
      "/resume/EDUCATION[val~\"univ\"]/DATE",
  };
  std::vector<webre::PathQuery> queries;
  for (const char* text : workload) {
    queries.push_back(webre::PathQuery::Parse(text).value());
  }

  size_t total_matches = 0;
  const double bench_begin = webre::obs::MonotonicSeconds();
  for (size_t rep = 0; rep < options.reps; ++rep) {
    for (const webre::PathQuery& parsed : queries) {
      total_matches += repo.Query(parsed).size();
    }
  }
  const double bench_seconds = webre::obs::MonotonicSeconds() - bench_begin;

  const webre::obs::QueryStatsView stats = repo.query_stats();
  const webre::RepositoryStats repo_stats = repo.Stats();
  std::printf("query-bench: %zu docs, %zu shards, %zu distinct paths, "
              "load %.3fs\n",
              repo.size(), repo.num_shards(), repo_stats.distinct_paths,
              load_seconds);
  std::printf("ran %zu queries in %.3fs (%.0f queries/sec), %zu matches\n",
              static_cast<size_t>(stats.queries), bench_seconds,
              bench_seconds > 0.0 ? stats.queries / bench_seconds : 0.0,
              total_matches);
  std::printf("plans: %llu index hits, %llu prefix hits, "
              "%llu fallback walks, %llu flat scans, %llu shard tasks\n",
              static_cast<unsigned long long>(stats.index_hits),
              static_cast<unsigned long long>(stats.prefix_hits),
              static_cast<unsigned long long>(stats.fallback_walks),
              static_cast<unsigned long long>(stats.flat_scans),
              static_cast<unsigned long long>(stats.shard_tasks));
  if (sinks.metrics != nullptr) {
    sinks.metrics->MergeQueryStats(stats);
  }
  const int storage_code = handle.Finish(options, sinks);
  if (handle.durable != nullptr) {
    const webre::obs::StorageStatsView storage = handle.durable->stats();
    std::printf("storage: %llu wal appends, %llu replayed, %llu mmap hits, "
                "snapshot %llu bytes\n",
                static_cast<unsigned long long>(storage.wal_appends),
                static_cast<unsigned long long>(storage.wal_replayed),
                static_cast<unsigned long long>(storage.mmap_hits),
                static_cast<unsigned long long>(storage.snapshot_bytes));
  }
  if (storage_code != 0) {
    sinks.Finish(options);
    return 1;
  }
  return sinks.Finish(options);
}

// Serves the repository over TCP (wire protocol: docs/SERVING.md).
// `webre serve [N]` preloads N generated resumes (default 0), prints the
// bound port, then runs until stdin reaches EOF — the shape a process
// supervisor (or a test harness) wants. With --data-dir the repository
// is durable: recovered at start, ingests WAL-logged, and the protocol's
// checkpoint request works.
int CmdServe(const CliOptions& options) {
  const size_t count =
      options.args.empty()
          ? 0
          : std::strtoul(options.args[0].c_str(), nullptr, 10);
  Domain domain;
  ObsSinks sinks(options);
  RepoHandle handle;
  if (webre::Status status = handle.Open(options); !status.ok()) {
    return Fail(status.ToString());
  }
  webre::ConvertOptions convert;
  convert.root_name = options.root;
  convert.limits = options.limits;
  webre::DocumentConverter converter(&domain.concepts, &domain.recognizer,
                                     &domain.constraints, convert);
  for (size_t i = 0; i < count; ++i) {
    auto tree = converter.TryConvert(webre::GenerateResume(i).html);
    if (!tree.ok()) return Fail(tree.status().ToString());
    auto added = handle.Add(std::move(tree.value()), nullptr);
    if (!added.ok()) return Fail(added.status().ToString());
  }

  webre::serve::ServeContext context;
  context.repo = handle.repo;
  context.durable = handle.durable.get();
  context.converter = &converter;
  webre::serve::ServeOptions serve_options;
  serve_options.port = options.port;
  serve_options.loops = options.loops;
  serve_options.max_clients = options.max_clients;
  serve_options.cache_bytes = options.cache_bytes;
  serve_options.worker_threads = options.threads;
  serve_options.limits = options.limits;
  webre::serve::Server server(context, serve_options);
  if (webre::Status status = server.Start(); !status.ok()) {
    return Fail(status.ToString());
  }
  std::printf("webre: serving on 127.0.0.1:%u with %zu event loops "
              "(%zu documents preloaded; EOF on stdin stops)\n",
              server.port(), server.loops(), handle.repo->size());
  std::fflush(stdout);
  char buffer[256];
  while (std::fread(buffer, 1, sizeof(buffer), stdin) > 0) {
  }
  server.Stop();

  const webre::serve::ServerStats stats = server.stats();
  std::fprintf(stderr,
               "webre: served %llu requests (%llu shed, %llu errors), "
               "cache %llu hits / %llu misses\n",
               static_cast<unsigned long long>(stats.view.requests),
               static_cast<unsigned long long>(stats.view.shed_requests),
               static_cast<unsigned long long>(stats.view.errors),
               static_cast<unsigned long long>(stats.view.cache_hits),
               static_cast<unsigned long long>(stats.view.cache_misses));
  if (sinks.metrics != nullptr) {
    sinks.metrics->MergeServeStats(stats.view);
    sinks.metrics->MergeQueryStats(handle.repo->query_stats());
  }
  if (handle.Finish(options, sinks) != 0) {
    sinks.Finish(options);
    return 1;
  }
  return sinks.Finish(options);
}

int CmdDemo(const CliOptions& options) {
  const size_t count =
      options.args.empty()
          ? 120
          : std::strtoul(options.args[0].c_str(), nullptr, 10);
  std::vector<std::string> pages;
  for (size_t i = 0; i < count; ++i) {
    pages.push_back(webre::GenerateResume(i).html);
  }
  Domain domain;
  ObsSinks sinks(options);
  webre::PipelineResult result =
      MakePipeline(domain, options, sinks, /*map_documents=*/true)
          .Run(pages);
  std::printf("converted %zu generated resumes\n", pages.size());
  std::printf("schema (%zu paths):\n%s\nDTD:\n%s",
              result.schema.NodeCount(), result.schema.ToString().c_str(),
              result.dtd.ToString(options.attlist).c_str());
  std::printf("\nconforming: %zu before mapping, %zu after\n",
              result.conforming_before, result.conforming_after);
  return sinks.Finish(options);
}

// The complete flag reference. docs/CLI.md documents exactly this set
// (ci/check_cli_docs.sh compares the two), so keep them in lockstep.
void PrintHelp(std::FILE* out) {
  std::fprintf(
      out,
      "usage: webre <command> [options] [args]\n"
      "commands:\n"
      "  convert FILE...       HTML -> concept-tagged XML on stdout\n"
      "  discover FILE...      discover the majority schema + DTD\n"
      "  map FILE...           conform documents to the discovered DTD\n"
      "  query QUERY FILE...   run a path query (e.g. //DATE[val~\"1996\"])\n"
      "  query-bench [N]       time a query workload over N generated docs\n"
      "  serve [N]             serve the repository over TCP, preloading N\n"
      "                        generated resumes (see docs/SERVING.md)\n"
      "  demo [N]              end-to-end run on N generated resumes\n"
      "  help                  print this reference on stdout\n"
      "discovery options (discover/map/query/demo):\n"
      "  --sup=F               support threshold (default 0.45)\n"
      "  --ratio=F             support-ratio threshold (default 0.4)\n"
      "  --root=NAME           output root element name (default resume)\n"
      "  --attlist             include <!ATTLIST> declarations in the DTD\n"
      "  --threads=N           worker threads (1 = serial, 0 = all cores)\n"
      "repository options (query/query-bench):\n"
      "  --shards=N            repository shards (0 = one per core)\n"
      "  --reps=N              query-bench workload repetitions (default 50)\n"
      "  --no-flat             keep pointer trees instead of freezing\n"
      "                        documents into the flat representation\n"
      "  --data-dir=DIR        durable repository: recover state from DIR\n"
      "                        (snapshot + WALs) and log admissions\n"
      "  --wal-sync=MODE       WAL durability: none (default) or fdatasync\n"
      "  --checkpoint          write a snapshot and truncate the WALs\n"
      "                        before exiting (requires --data-dir)\n"
      "serving options (serve; `--serve` = flags-first spelling):\n"
      "  --serve               run the server (equivalent to `serve`)\n"
      "  --port=N              TCP port to bind on loopback (0 = ephemeral)\n"
      "  --loops=N             event-loop (reactor) threads, each owning its\n"
      "                        own epoll set (0 = min(4, cores), default)\n"
      "  --max-clients=N       concurrent connections before shedding\n"
      "                        (default 64)\n"
      "  --cache-bytes=N       query-result cache size (default 8 MiB;\n"
      "                        0 disables)\n"
      "fault isolation:\n"
      "  --keep-going          record failures, continue (default)\n"
      "  --no-keep-going       any failed document aborts the batch\n"
      "  --max-bytes=N         per-document input size cap\n"
      "  --max-depth=N         parse-tree depth cap\n"
      "  --max-nodes=N         parse-tree node-count cap\n"
      "  --max-entities=N      entity-expansion cap\n"
      "observability:\n"
      "  --metrics-json=FILE   write batch metrics as JSON\n"
      "  --trace=FILE          write a Chrome trace_event file\n"
      "  --stats               print a metrics table on stderr\n"
      "  --help                print this reference on stdout\n"
      "failed documents are reported as JSON lines on stderr;\n"
      "exit 0 = all ok, 2 = partial failure (keep-going), 1 = abort\n"
      "full reference: docs/CLI.md\n");
}

void Usage() { PrintHelp(stderr); }

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    Usage();
    return 1;
  }
  const std::string command = argv[1];
  if (command.rfind("--", 0) == 0 && command != "--help") {
    // Flags-first spelling: `webre --serve --port=7070 ...`.
    CliOptions options = ParseFlags(argc, argv, 1);
    if (options.help) {
      PrintHelp(stdout);
      return 0;
    }
    if (options.serve) return CmdServe(options);
    Usage();
    return 1;
  }
  CliOptions options = ParseFlags(argc, argv, 2);
  if (command == "help" || command == "--help" || options.help) {
    PrintHelp(stdout);
    return 0;
  }
  if (command == "convert") return CmdConvert(options);
  if (command == "discover") return CmdDiscover(options);
  if (command == "map") return CmdMap(options);
  if (command == "query") return CmdQuery(options);
  if (command == "query-bench") return CmdQueryBench(options);
  if (command == "serve" || options.serve) return CmdServe(options);
  if (command == "demo") return CmdDemo(options);
  Usage();
  return 1;
}
