// webre — command-line front end to the library.
//
//   webre convert FILE...                HTML -> XML on stdout
//   webre discover [options] FILE...     majority schema + DTD from files
//   webre map [options] FILE...          conform documents to the DTD
//   webre query QUERY FILE...            run a path query over files
//   webre demo [N]                       end-to-end on N generated resumes
//
// Options for discover/map:
//   --sup=F      support threshold (default 0.45)
//   --ratio=F    support-ratio threshold (default 0.4)
//   --root=NAME  output root element name (default "resume")
//   --attlist    include <!ATTLIST> declarations in the DTD
//   --threads=N  worker threads for per-document stages
//                (default 1 = serial; 0 = one per hardware thread)
//
// The bundled domain knowledge is the paper's resume topic (24 concepts /
// 233 instances); the library API accepts any ConceptSet for other
// topics.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "concepts/resume_domain.h"
#include "core/pipeline.h"
#include "corpus/resume_generator.h"
#include "mapping/document_mapper.h"
#include "repository/repository.h"
#include "restructure/recognizer.h"
#include "util/file.h"
#include "xml/writer.h"

namespace {

struct CliOptions {
  double sup = 0.45;
  double ratio = 0.4;
  std::string root = "resume";
  bool attlist = false;
  size_t threads = 1;
  std::vector<std::string> args;  // non-flag arguments
};

CliOptions ParseFlags(int argc, char** argv, int first) {
  CliOptions options;
  for (int i = first; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--sup=", 0) == 0) {
      options.sup = std::strtod(arg.c_str() + 6, nullptr);
    } else if (arg.rfind("--ratio=", 0) == 0) {
      options.ratio = std::strtod(arg.c_str() + 8, nullptr);
    } else if (arg.rfind("--root=", 0) == 0) {
      options.root = arg.substr(7);
    } else if (arg.rfind("--threads=", 0) == 0) {
      options.threads =
          static_cast<size_t>(std::strtoul(arg.c_str() + 10, nullptr, 10));
    } else if (arg == "--attlist") {
      options.attlist = true;
    } else {
      options.args.push_back(std::move(arg));
    }
  }
  return options;
}

struct Domain {
  Domain()
      : concepts(webre::ResumeConcepts()),
        constraints(webre::ResumeConstraints()),
        recognizer(&concepts) {}

  webre::ConceptSet concepts;
  webre::ConstraintSet constraints;
  webre::SynonymRecognizer recognizer;
};

int Fail(const std::string& message) {
  std::fprintf(stderr, "webre: %s\n", message.c_str());
  return 1;
}

// Reads every file (or fails loudly); empty list is an error.
bool ReadPages(const std::vector<std::string>& paths,
               std::vector<std::string>& pages) {
  if (paths.empty()) {
    Fail("no input files");
    return false;
  }
  for (const std::string& path : paths) {
    webre::StatusOr<std::string> contents = webre::ReadFile(path);
    if (!contents.ok()) {
      Fail(contents.status().ToString());
      return false;
    }
    pages.push_back(std::move(contents.value()));
  }
  return true;
}

webre::Pipeline MakePipeline(const Domain& domain,
                             const CliOptions& options,
                             bool map_documents = false) {
  webre::PipelineOptions pipeline_options;
  pipeline_options.convert.root_name = options.root;
  pipeline_options.mining.sup_threshold = options.sup;
  pipeline_options.mining.ratio_threshold = options.ratio;
  pipeline_options.dtd.mark_optional = map_documents;
  pipeline_options.map_documents = map_documents;
  pipeline_options.parallel.num_threads = options.threads;
  return webre::Pipeline(&domain.concepts, &domain.recognizer,
                         &domain.constraints, pipeline_options);
}

int CmdConvert(const CliOptions& options) {
  std::vector<std::string> pages;
  if (!ReadPages(options.args, pages)) return 1;
  Domain domain;
  webre::ConvertOptions convert;
  convert.root_name = options.root;
  webre::DocumentConverter converter(&domain.concepts, &domain.recognizer,
                                     &domain.constraints, convert);
  for (size_t i = 0; i < pages.size(); ++i) {
    webre::ConvertStats stats;
    auto xml = converter.Convert(pages[i], &stats);
    std::printf("<!-- %s: %zu concept nodes, %.0f%% tokens identified -->\n",
                options.args[i].c_str(), stats.concept_nodes,
                100.0 * stats.instance.IdentifiedRatio());
    std::printf("%s", webre::WriteXml(*xml).c_str());
  }
  return 0;
}

int CmdDiscover(const CliOptions& options) {
  std::vector<std::string> pages;
  if (!ReadPages(options.args, pages)) return 1;
  Domain domain;
  webre::PipelineResult result =
      MakePipeline(domain, options).Run(pages);
  std::printf("majority schema (%zu frequent paths from %zu documents):\n%s",
              result.schema.NodeCount(), pages.size(),
              result.schema.ToString().c_str());
  std::printf("\nDTD:\n%s",
              result.dtd.ToString(options.attlist).c_str());
  std::printf("\n%zu/%zu documents conform as converted\n",
              result.conforming_before, pages.size());
  return 0;
}

int CmdMap(const CliOptions& options) {
  std::vector<std::string> pages;
  if (!ReadPages(options.args, pages)) return 1;
  Domain domain;
  webre::PipelineResult result =
      MakePipeline(domain, options, /*map_documents=*/true).Run(pages);
  for (size_t i = 0; i < result.mapped_documents.size(); ++i) {
    std::printf("<!-- %s (mapped) -->\n%s", options.args[i].c_str(),
                webre::WriteXml(*result.mapped_documents[i]).c_str());
  }
  std::fprintf(stderr, "webre: %zu/%zu conform before, %zu/%zu after\n",
               result.conforming_before, pages.size(),
               result.conforming_after, pages.size());
  return 0;
}

int CmdQuery(const CliOptions& options) {
  if (options.args.size() < 2) {
    return Fail("usage: webre query QUERY FILE...");
  }
  const std::string query = options.args[0];
  std::vector<std::string> pages;
  std::vector<std::string> paths(options.args.begin() + 1,
                                 options.args.end());
  if (!ReadPages(paths, pages)) return 1;

  Domain domain;
  webre::PipelineResult result =
      MakePipeline(domain, options, /*map_documents=*/true).Run(pages);
  webre::XmlRepository repo;
  for (auto& doc : result.mapped_documents) {
    repo.Add(std::move(doc)).value();
  }
  auto matches = repo.Query(query);
  if (!matches.ok()) return Fail(matches.status().ToString());
  for (const webre::QueryMatch& match : *matches) {
    std::printf("%s: <%s val=\"%s\">\n", paths[match.doc].c_str(),
                match.node->name().c_str(),
                std::string(match.node->val()).c_str());
  }
  std::fprintf(stderr, "webre: %zu matches\n", matches->size());
  return 0;
}

int CmdDemo(const CliOptions& options) {
  const size_t count =
      options.args.empty()
          ? 120
          : std::strtoul(options.args[0].c_str(), nullptr, 10);
  std::vector<std::string> pages;
  for (size_t i = 0; i < count; ++i) {
    pages.push_back(webre::GenerateResume(i).html);
  }
  Domain domain;
  webre::PipelineResult result =
      MakePipeline(domain, options, /*map_documents=*/true).Run(pages);
  std::printf("converted %zu generated resumes\n", pages.size());
  std::printf("schema (%zu paths):\n%s\nDTD:\n%s",
              result.schema.NodeCount(), result.schema.ToString().c_str(),
              result.dtd.ToString(options.attlist).c_str());
  std::printf("\nconforming: %zu before mapping, %zu after\n",
              result.conforming_before, result.conforming_after);
  return 0;
}

void Usage() {
  std::fprintf(
      stderr,
      "usage: webre <command> [options] [args]\n"
      "  convert FILE...       HTML -> concept-tagged XML on stdout\n"
      "  discover FILE...      discover the majority schema + DTD\n"
      "  map FILE...           conform documents to the discovered DTD\n"
      "  query QUERY FILE...   run a path query (e.g. //DATE[val~\"1996\"])\n"
      "  demo [N]              end-to-end run on N generated resumes\n"
      "options: --sup=F --ratio=F --root=NAME --attlist --threads=N\n");
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    Usage();
    return 1;
  }
  const std::string command = argv[1];
  CliOptions options = ParseFlags(argc, argv, 2);
  if (command == "convert") return CmdConvert(options);
  if (command == "discover") return CmdDiscover(options);
  if (command == "map") return CmdMap(options);
  if (command == "query") return CmdQuery(options);
  if (command == "demo") return CmdDemo(options);
  Usage();
  return 1;
}
