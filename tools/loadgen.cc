// loadgen — open-loop traffic generator for a running `webre serve`
// (wire protocol and workload semantics: docs/SERVING.md).
//
//   loadgen --port=N [options]
//
// Options:
//   --port=N              server port (required)
//   --qps=F               target arrival rate across connections
//                         (default 200)
//   --duration=F          seconds of traffic (default 1.0)
//   --connections=N       client connections (default: 2*loops, so the
//                         server — not the generator — saturates first)
//   --loops=N             event loops the TARGET server runs with; sets
//                         the --connections default (0 = min(4, cores),
//                         matching the server's own --loops default)
//   --write-fraction=F    fraction of requests that are ingests
//                         (default 0; the rest are path queries)
//   --seed=N              workload seed (default 1)
//   --json=FILE           write the report as one JSON object
//   --capture-frames=DIR  save the first encoded request frames to DIR
//                         (fuzz seed corpus from real traffic)
//
// The arrival process is Poisson and OPEN LOOP: arrivals never wait for
// responses, so overload shows up as shed requests and tail latency
// instead of a silently throttled offered rate. Exit code: 0 when every
// response was ok or shed, 1 on connection failure or error responses.

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "corpus/resume_generator.h"
#include "serve/loadgen.h"
#include "serve/server.h"
#include "util/file.h"

namespace {

// The query-bench workload (tools/webre_cli.cc): summary-only shapes,
// descendant/wildcard/predicate shapes and an intermediate predicate.
const char* const kQueries[] = {
    "/resume/EDUCATION/DATE",
    "/resume/SKILLS/LANGUAGE",
    "/resume/CONTACT/LOCATION/EMAIL",
    "//DATE",
    "//LANGUAGE[val~\"java\"]",
    "/resume/EXPERIENCE//DATE",
    "//LOCATION/*",
    "/resume/EDUCATION[val~\"univ\"]/DATE",
};

int Fail(const std::string& message) {
  std::fprintf(stderr, "loadgen: %s\n", message.c_str());
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  webre::serve::LoadgenOptions options;
  std::string json_path;
  bool have_port = false;
  bool have_connections = false;
  size_t loops = 0;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--port=", 0) == 0) {
      options.port =
          static_cast<uint16_t>(std::strtoul(arg.c_str() + 7, nullptr, 10));
      have_port = true;
    } else if (arg.rfind("--qps=", 0) == 0) {
      options.target_qps = std::strtod(arg.c_str() + 6, nullptr);
    } else if (arg.rfind("--duration=", 0) == 0) {
      options.duration_s = std::strtod(arg.c_str() + 11, nullptr);
    } else if (arg.rfind("--connections=", 0) == 0) {
      options.connections =
          static_cast<size_t>(std::strtoul(arg.c_str() + 14, nullptr, 10));
      have_connections = true;
    } else if (arg.rfind("--loops=", 0) == 0) {
      loops = static_cast<size_t>(std::strtoul(arg.c_str() + 8, nullptr, 10));
    } else if (arg.rfind("--write-fraction=", 0) == 0) {
      options.write_fraction = std::strtod(arg.c_str() + 17, nullptr);
    } else if (arg.rfind("--seed=", 0) == 0) {
      options.seed = std::strtoull(arg.c_str() + 7, nullptr, 10);
    } else if (arg.rfind("--json=", 0) == 0) {
      json_path = arg.substr(7);
    } else if (arg.rfind("--capture-frames=", 0) == 0) {
      options.capture_dir = arg.substr(17);
    } else {
      return Fail("unknown flag " + arg + " (see docs/SERVING.md)");
    }
  }
  if (!have_port) return Fail("--port is required");
  if (!have_connections) {
    // Two streams per server event loop keeps every loop busy without a
    // generator-side bottleneck (writer+reader thread pair each).
    options.connections = 2 * webre::serve::ResolveLoops(loops);
  }

  for (const char* query : kQueries) options.queries.push_back(query);
  if (options.write_fraction > 0.0) {
    for (size_t i = 0; i < 8; ++i) {
      options.ingest_bodies.push_back(webre::GenerateResume(1000 + i).html);
    }
  }

  webre::StatusOr<webre::serve::LoadgenReport> report =
      webre::serve::RunLoadgen(options);
  if (!report.ok()) return Fail(report.status().ToString());

  std::printf("loadgen: sent %llu in %.2fs (offered %.0f qps, target %.0f), "
              "%llu ok (%.0f qps), %llu shed, %llu errors\n",
              static_cast<unsigned long long>(report->sent), report->wall_s,
              report->offered_qps, options.target_qps,
              static_cast<unsigned long long>(report->ok),
              report->achieved_qps,
              static_cast<unsigned long long>(report->shed),
              static_cast<unsigned long long>(report->errors));
  std::printf("latency us: p50 %llu, p90 %llu, p99 %llu, p999 %llu, "
              "max %llu, mean %.0f\n",
              static_cast<unsigned long long>(report->p50_us),
              static_cast<unsigned long long>(report->p90_us),
              static_cast<unsigned long long>(report->p99_us),
              static_cast<unsigned long long>(report->p999_us),
              static_cast<unsigned long long>(report->max_us),
              report->mean_us);
  std::printf("per-connection qps:");
  for (double qps : report->per_connection_qps) std::printf(" %.0f", qps);
  std::printf("\n");
  if (!json_path.empty()) {
    const std::string json = webre::serve::LoadgenReportToJson(
        *report, options.target_qps, options.write_fraction);
    webre::Status status = webre::WriteFileAtomic(json_path, json + "\n");
    if (!status.ok()) return Fail(status.ToString());
  }
  return report->errors == 0 ? 0 : 1;
}
