#!/bin/sh
# Fails when the CLI and its documentation disagree about the flag set.
#
#   usage: check_cli_docs.sh <path-to-webre-binary> <path-to-CLI.md>
#
# Both `webre help` and docs/CLI.md are reduced to their sets of
# `--flag` tokens; any flag present on one side and missing on the
# other fails the check. Run as a ctest (docs_cli_consistency), so an
# undocumented flag — or documentation for a flag that no longer
# exists — breaks the default test suite instead of rotting silently.
#
# Additionally, every `serve.*`, `storage.*` and `query.*` counter the
# binary actually emits in `--metrics-json` must be named in CLI.md:
# these groups are the serving/storage/query operational surface, and an
# exported counter nobody can look up is an exported counter nobody
# trusts.
set -eu

if [ "$#" -ne 2 ]; then
  echo "usage: $0 <webre-binary> <CLI.md>" >&2
  exit 64
fi

webre_bin="$1"
cli_md="$2"

if [ ! -x "$webre_bin" ]; then
  echo "FAIL: webre binary not executable: $webre_bin" >&2
  exit 1
fi
if [ ! -r "$cli_md" ]; then
  echo "FAIL: CLI reference not readable: $cli_md" >&2
  exit 1
fi

tmpdir="$(mktemp -d)"
trap 'rm -rf "$tmpdir"' EXIT

# `grep -o` finds every --flag occurrence; sort -u collapses repeats.
# The pattern requires a letter after "--" so prose em-dashes and bare
# "--" separators never count as flags.
"$webre_bin" help | grep -o -- '--[a-z][a-z-]*' | sort -u \
  > "$tmpdir/from_help"
grep -o -- '--[a-z][a-z-]*' "$cli_md" | sort -u > "$tmpdir/from_docs"

status=0
undocumented="$(comm -23 "$tmpdir/from_help" "$tmpdir/from_docs")"
if [ -n "$undocumented" ]; then
  echo "FAIL: flags in 'webre help' but missing from $cli_md:" >&2
  echo "$undocumented" >&2
  status=1
fi
phantom="$(comm -13 "$tmpdir/from_help" "$tmpdir/from_docs")"
if [ -n "$phantom" ]; then
  echo "FAIL: flags documented in $cli_md but absent from 'webre help':" >&2
  echo "$phantom" >&2
  status=1
fi

if [ "$status" -eq 0 ]; then
  count="$(wc -l < "$tmpdir/from_help")"
  echo "OK: $count flags consistent between 'webre help' and $cli_md"
fi

# Counter coverage: a minimal metrics-producing run emits the full fixed
# key set (zeros included), so the emitted serve.*/storage.*/query.*
# names are exactly what operators will see. Each must appear verbatim
# in CLI.md.
if ! "$webre_bin" demo 1 --metrics-json="$tmpdir/metrics.json" \
    >/dev/null 2>&1; then
  echo "FAIL: 'webre demo 1 --metrics-json' run failed" >&2
  exit 1
fi
# The name class includes '.' so dotted subsystem counters (e.g. the
# per-loop serve.loop.* group) are caught, not silently skipped.
emitted="$(grep -o -- '"\(serve\|storage\|query\)\.[a-z_.]*"' \
  "$tmpdir/metrics.json" | tr -d '"' | sort -u)"
if [ -z "$emitted" ]; then
  echo "FAIL: --metrics-json emitted no serve.*/storage.*/query.* counters" >&2
  exit 1
fi
missing=""
for counter in $emitted; do
  if ! grep -q -- "$counter" "$cli_md"; then
    missing="$missing $counter"
  fi
done
if [ -n "$missing" ]; then
  echo "FAIL: counters emitted in --metrics-json but undocumented in" \
       "$cli_md:$missing" >&2
  status=1
else
  count="$(echo "$emitted" | wc -l)"
  echo "OK: $count serve.*/storage.*/query.* metrics counters all documented"
fi
exit "$status"
