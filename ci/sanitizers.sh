#!/usr/bin/env bash
# Sanitizer sweep for CI: builds and runs the test suite under
# ThreadSanitizer (parallel pipeline must be race-free) and under
# ASan+UBSan (fault-isolation paths must be free of memory errors and
# UB, including on the pathological/fuzz inputs).
#
# Usage: ci/sanitizers.sh [tsan|asan|all]   (default: all)

set -euo pipefail
cd "$(dirname "$0")/.."

run_config() {
  local name="$1" sanitize="$2" build_dir="build-$1"
  echo "=== ${name}: WEBRE_SANITIZE=${sanitize} ==="
  cmake -B "${build_dir}" -S . -DWEBRE_SANITIZE="${sanitize}" \
        -DCMAKE_BUILD_TYPE=RelWithDebInfo >/dev/null
  cmake --build "${build_dir}" -j >/dev/null
  ctest --test-dir "${build_dir}" --output-on-failure -j
}

mode="${1:-all}"
case "${mode}" in
  tsan) run_config tsan thread ;;
  asan) run_config asan address+undefined ;;
  all)
    run_config tsan thread
    run_config asan address+undefined
    ;;
  *)
    echo "usage: $0 [tsan|asan|all]" >&2
    exit 2
    ;;
esac
echo "sanitizer sweep (${mode}) passed"
