#!/usr/bin/env bash
# Sanitizer sweep for CI: builds and runs the test suite under
# ThreadSanitizer (parallel pipeline must be race-free) and under
# ASan+UBSan (fault-isolation paths must be free of memory errors and
# UB, including on the pathological/fuzz inputs).
#
# Usage: ci/sanitizers.sh [tsan|asan|serve-tsan|all]   (default: all)
#
# serve-tsan runs only the `serve`-labeled tests (the multi-reactor
# server, its rings and the striped cache) under ThreadSanitizer — the
# fast targeted sweep for serving-layer changes.

set -euo pipefail
cd "$(dirname "$0")/.."

run_config() {
  local name="$1" sanitize="$2" label="${3:-}" build_dir="build-$1"
  echo "=== ${name}: WEBRE_SANITIZE=${sanitize}${label:+ (label ${label})} ==="
  cmake -B "${build_dir}" -S . -DWEBRE_SANITIZE="${sanitize}" \
        -DCMAKE_BUILD_TYPE=RelWithDebInfo >/dev/null
  cmake --build "${build_dir}" -j >/dev/null
  # ${label} before -j: a bare `-j` consumes the next argument as its
  # job count on older ctest, silently dropping the label filter.
  if [ -n "${label}" ]; then
    ctest --test-dir "${build_dir}" --output-on-failure -L "${label}" -j
  else
    ctest --test-dir "${build_dir}" --output-on-failure -j
  fi
  # Query-engine tests run a second time with the predicate scanner
  # pinned to the scalar kernel: sanitizers don't see through SIMD
  # intrinsics uniformly, and the scalar path is the differential
  # reference every vector kernel is checked against. Skipped for
  # targeted sweeps of other labels (serve-tsan).
  if [ -z "${label}" ] || [ "${label}" = query ]; then
    echo "=== ${name}: WEBRE_SIMD=scalar (label query) ==="
    WEBRE_SIMD=scalar \
      ctest --test-dir "${build_dir}" --output-on-failure -L query -j
  fi
}

mode="${1:-all}"
case "${mode}" in
  tsan) run_config tsan thread ;;
  asan) run_config asan address+undefined ;;
  serve-tsan) run_config tsan thread serve ;;
  all)
    run_config tsan thread
    run_config asan address+undefined
    ;;
  *)
    echo "usage: $0 [tsan|asan|serve-tsan|all]" >&2
    exit 2
    ;;
esac
echo "sanitizer sweep (${mode}) passed"
