#!/bin/sh
# Smoke-checks the benchmark layer so perf tooling cannot rot silently:
#
#   1. bench_micro runs a very short pass over every registered
#      benchmark (a benchmark that crashes or fails to register breaks
#      the default test suite, not the next perf investigation);
#   2. bench_memory converts a tiny corpus and must emit one JSON
#      object with the memory-bench schema;
#   3. the checked-in BENCH_memory.json artifact is validated against
#      the same schema, including the before/after arms the memory
#      overhaul is judged by;
#   4. bench_query runs a tiny corpus through all three serving-layer
#      arms (the run itself asserts the arms agree on every match
#      count) and must emit the query-bench schema;
#   5. the checked-in BENCH_query.json artifact is validated against
#      the same schema, including the recorded speedups the query
#      serving layer is judged by (simple >= 100x, mixed >= 8x and
#      predicate >= 2.5x after the flat-document freeze plus the
#      vectorized predicate engine) and the steady-state repository RSS
#      ceiling (after arm repo_rss_mb <= before arm peak_rss_mb);
#   6. bench_storage runs a tiny corpus through all four durability
#      arms (the run itself asserts the cold and mmap arms agree on
#      every probe match count) and must emit the storage-bench schema;
#   7. the checked-in BENCH_storage.json artifact is validated against
#      the same schema, including the recorded open_speedup floor the
#      durable layer is judged by (mmap open >= 10x faster than cold
#      re-conversion at 4000 documents) and mmap_hits == documents (a
#      snapshot that silently fell back to copies fails here).
#
#   8. bench_serving starts an in-process server and drives it with the
#      shared open-loop loadgen (read-only and mixed arms plus the
#      multi-reactor scaling study at --loops 1/2/4; the run itself
#      fails on any error response) and must emit the serving-bench
#      schema;
#   9. the checked-in BENCH_serving.json artifact is validated against
#      the same schema, including the recorded floors the serving layer
#      is judged by: read_only achieved_qps >= 0.9 * target_qps, zero
#      errors and zero sheds in both recorded arms, a read-only cache
#      hit rate >= 0.9 (a cache that stopped serving repeats fails
#      here), and the multi-reactor scaling floor — the 1->4-loop
#      read-only speedup must be >= 1.6 when the record was captured on
#      >= 4 cores, and >= 0.8 (non-regression: the multi-loop machinery
#      must not cost throughput) when it was captured on fewer.
#
#   usage: bench_smoke.sh <bench_micro> <bench_memory> <BENCH_memory.json> \
#                         <bench_query> <BENCH_query.json> \
#                         <bench_storage> <BENCH_storage.json> \
#                         <bench_serving> <BENCH_serving.json>
#
# Run as a ctest (bench_smoke). Live-run timings are NOT asserted here —
# a smoke run on a loaded CI box says nothing about steady-state
# throughput; only structure, exit codes and the artifacts' recorded
# figures are checked.
set -eu

if [ "$#" -ne 9 ]; then
  echo "usage: $0 <bench_micro> <bench_memory> <BENCH_memory.json>" \
       "<bench_query> <BENCH_query.json>" \
       "<bench_storage> <BENCH_storage.json>" \
       "<bench_serving> <BENCH_serving.json>" >&2
  exit 64
fi

bench_micro="$1"
bench_memory="$2"
artifact="$3"
bench_query="$4"
query_artifact="$5"
bench_storage="$6"
storage_artifact="$7"
bench_serving="$8"
serving_artifact="$9"

for bin in "$bench_micro" "$bench_memory" "$bench_query" "$bench_storage" \
           "$bench_serving"; do
  if [ ! -x "$bin" ]; then
    echo "FAIL: benchmark binary not executable: $bin" >&2
    exit 1
  fi
done
for file in "$artifact" "$query_artifact" "$storage_artifact" \
            "$serving_artifact"; do
  if [ ! -r "$file" ]; then
    echo "FAIL: artifact not readable: $file" >&2
    exit 1
  fi
done
if ! command -v python3 >/dev/null 2>&1; then
  echo "SKIP: python3 unavailable, schema not validated" >&2
  exit 0
fi

tmpdir="$(mktemp -d)"
trap 'rm -rf "$tmpdir"' EXIT

# 1. Every registered micro-benchmark must survive one short iteration
# pass (min_time is a plain double for the bundled benchmark version).
"$bench_micro" --benchmark_min_time=0.01 >"$tmpdir/micro.out" 2>&1 || {
  echo "FAIL: bench_micro short pass failed:" >&2
  cat "$tmpdir/micro.out" >&2
  exit 1
}
if ! grep -q "BM_ConvertDocument" "$tmpdir/micro.out"; then
  echo "FAIL: bench_micro output lists no BM_ConvertDocument row" >&2
  exit 1
fi

# 2. A tiny live bench_memory run must produce a schema-valid record.
"$bench_memory" --docs=16 --arm=smoke >"$tmpdir/memory.json" || {
  echo "FAIL: bench_memory smoke run failed" >&2
  exit 1
}

# 4. A tiny live bench_query run must produce a schema-valid record;
# the binary itself fails when the two arms' match counts disagree.
"$bench_query" --docs=48 --shards=3 --reps=2 >"$tmpdir/query.json" || {
  echo "FAIL: bench_query smoke run failed" >&2
  exit 1
}

# 8. A tiny live bench_serving run must produce a schema-valid record;
# the binary itself fails when any response came back as an error, so a
# broken decoder, admission layer or cache shows up as a smoke failure,
# not just a schema mismatch. Low targets keep it honest on a loaded
# CI box — throughput floors are asserted on the artifact only.
"$bench_serving" --docs=24 --qps=120 --mixed-qps=60 --duration=0.5 \
    >"$tmpdir/serving.json" || {
  echo "FAIL: bench_serving smoke run failed" >&2
  exit 1
}

# 6. A tiny live bench_storage run must produce a schema-valid record;
# the binary itself fails when the cold and mmap arms disagree on any
# probe match count or a document fails to convert.
"$bench_storage" --docs=48 --shards=2 --reps=2 >"$tmpdir/storage.json" || {
  echo "FAIL: bench_storage smoke run failed" >&2
  exit 1
}

python3 - "$tmpdir/memory.json" "$artifact" <<'EOF'
import json
import sys

ARM_KEYS = [
    "arm", "arena", "documents", "input_mb", "seconds", "docs_per_sec",
    "mb_per_sec", "heap_allocs", "heap_allocs_per_doc", "peak_rss_mb",
]


def check_arm(arm, where, require_repo):
    for key in ARM_KEYS:
        if key not in arm:
            raise SystemExit(f"FAIL: {where}: missing key '{key}'")
    if arm["documents"] <= 0 or arm["seconds"] <= 0:
        raise SystemExit(f"FAIL: {where}: non-positive document count/time")
    if arm["heap_allocs_per_doc"] <= 0 or arm["peak_rss_mb"] <= 0:
        raise SystemExit(f"FAIL: {where}: implausible memory figures")
    if require_repo:
        # Builds with the repository report the steady-state RSS of the
        # frozen corpus; the historical "before" arm predates the key.
        for key in ("flat", "repo_rss_mb"):
            if key not in arm:
                raise SystemExit(f"FAIL: {where}: missing key '{key}'")
        if arm["repo_rss_mb"] <= 0:
            raise SystemExit(f"FAIL: {where}: implausible repo_rss_mb")


with open(sys.argv[1]) as f:
    check_arm(json.load(f), "live bench_memory output", require_repo=True)

with open(sys.argv[2]) as f:
    artifact = json.load(f)
for key in ("bench", "corpus", "arms", "derived"):
    if key not in artifact:
        raise SystemExit(f"FAIL: artifact: missing key '{key}'")
for name in ("before", "after"):
    if name not in artifact["arms"]:
        raise SystemExit(f"FAIL: artifact: missing arm '{name}'")
    check_arm(artifact["arms"][name], f"artifact arm '{name}'",
              require_repo=(name == "after"))
for key in ("throughput_speedup", "alloc_reduction"):
    if key not in artifact["derived"]:
        raise SystemExit(f"FAIL: artifact: missing derived '{key}'")
# Steady-state acceptance: the repository holding the whole corpus as
# frozen FlatDocs must fit within the pre-arena ("before") peak RSS.
after = artifact["arms"]["after"]
before = artifact["arms"]["before"]
if after["repo_rss_mb"] > before["peak_rss_mb"]:
    raise SystemExit(
        "FAIL: artifact: steady-state repo RSS "
        f"({after['repo_rss_mb']} MB) exceeds the pre-arena peak RSS "
        f"({before['peak_rss_mb']} MB)")
print("OK: bench_micro pass, live bench_memory record, and "
      "BENCH_memory.json all validate")
EOF

python3 - "$tmpdir/query.json" "$query_artifact" <<'EOF'
import json
import sys

ARM_KEYS = [
    "arm", "documents", "shards", "simple_seconds", "simple_qps",
    "mixed_seconds", "mixed_qps", "predicate_seconds", "predicate_qps",
    "matches",
]


def check_record(record, where, assert_speedups):
    for key in ("bench", "corpus", "arms", "derived"):
        if key not in record:
            raise SystemExit(f"FAIL: {where}: missing key '{key}'")
    if record["bench"] != "bench_query":
        raise SystemExit(f"FAIL: {where}: wrong bench name")
    for name in ("before", "after", "after_no_flat"):
        if name not in record["arms"]:
            raise SystemExit(f"FAIL: {where}: missing arm '{name}'")
        arm = record["arms"][name]
        for key in ARM_KEYS:
            if key not in arm:
                raise SystemExit(
                    f"FAIL: {where} arm '{name}': missing key '{key}'")
        if arm["documents"] <= 0 or arm["matches"] <= 0:
            raise SystemExit(
                f"FAIL: {where} arm '{name}': implausible counts")
        if arm["matches"] != record["arms"]["before"]["matches"]:
            raise SystemExit(
                f"FAIL: {where}: arm '{name}' disagrees on match count")
    for key in ("simple_speedup", "mixed_speedup", "predicate_speedup"):
        if key not in record["derived"]:
            raise SystemExit(f"FAIL: {where}: missing derived '{key}'")
    if assert_speedups:
        # The artifact records a full steady-state run; its figures are
        # constants of the checked-in file, so the acceptance floors are
        # asserted here (live smoke runs are too short to be meaningful).
        # Mixed rose from 5x to 8x with the vectorized predicate engine
        # (SIMD pool scans + cost-based plan selection); the recorded
        # figure is ~15x, the floor leaves noise headroom. The predicate
        # workload is dominated by full-pool sweeps and records ~3.8x.
        if record["derived"]["simple_speedup"] < 100.0:
            raise SystemExit(f"FAIL: {where}: simple_speedup below 100x")
        if record["derived"]["mixed_speedup"] < 8.0:
            raise SystemExit(f"FAIL: {where}: mixed_speedup below 8x")
        if record["derived"]["predicate_speedup"] < 2.5:
            raise SystemExit(
                f"FAIL: {where}: predicate_speedup below 2.5x")


with open(sys.argv[1]) as f:
    check_record(json.load(f), "live bench_query output",
                 assert_speedups=False)
with open(sys.argv[2]) as f:
    check_record(json.load(f), "BENCH_query.json artifact",
                 assert_speedups=True)
print("OK: live bench_query record and BENCH_query.json validate")
EOF

python3 - "$tmpdir/storage.json" "$storage_artifact" <<'EOF'
import json
import sys

ARMS = {
    "cold_reconvert": ["arm", "documents", "seconds", "docs_per_sec"],
    "mmap_open": ["arm", "documents", "seconds", "docs_per_sec",
                  "mmap_hits", "snapshot_mb"],
    "wal_append_none": ["arm", "documents", "seconds", "us_per_doc"],
    "wal_append_fdatasync": ["arm", "documents", "seconds", "us_per_doc"],
}


def check_record(record, where, assert_floors):
    for key in ("bench", "corpus", "arms", "derived"):
        if key not in record:
            raise SystemExit(f"FAIL: {where}: missing key '{key}'")
    if record["bench"] != "bench_storage":
        raise SystemExit(f"FAIL: {where}: wrong bench name")
    docs = record["corpus"].get("documents", 0)
    if docs <= 0:
        raise SystemExit(f"FAIL: {where}: implausible corpus")
    for name, keys in ARMS.items():
        if name not in record["arms"]:
            raise SystemExit(f"FAIL: {where}: missing arm '{name}'")
        arm = record["arms"][name]
        for key in keys:
            if key not in arm:
                raise SystemExit(
                    f"FAIL: {where} arm '{name}': missing key '{key}'")
        if arm["documents"] != docs or arm["seconds"] <= 0:
            raise SystemExit(
                f"FAIL: {where} arm '{name}': implausible figures")
    # Every snapshot open must serve straight out of the mapping: a
    # fallback to per-document copies shows up as mmap_hits < documents.
    if record["arms"]["mmap_open"]["mmap_hits"] != docs:
        raise SystemExit(
            f"FAIL: {where}: mmap_hits != documents (snapshot fell back)")
    for key in ("open_speedup", "fdatasync_cost_ratio"):
        if key not in record["derived"]:
            raise SystemExit(f"FAIL: {where}: missing derived '{key}'")
    if assert_floors:
        # The artifact records a full 4000-document run; its figures are
        # constants of the checked-in file, so the acceptance floor is
        # asserted here (a 48-document smoke corpus is checkpoint-cost
        # dominated and says nothing about steady-state warmup).
        if record["derived"]["open_speedup"] < 10.0:
            raise SystemExit(f"FAIL: {where}: open_speedup below 10x")
        if record["derived"]["fdatasync_cost_ratio"] < 1.0:
            raise SystemExit(
                f"FAIL: {where}: fdatasync arm faster than none — "
                "the sync mode is not reaching the WAL")


with open(sys.argv[1]) as f:
    check_record(json.load(f), "live bench_storage output",
                 assert_floors=False)
with open(sys.argv[2]) as f:
    check_record(json.load(f), "BENCH_storage.json artifact",
                 assert_floors=True)
print("OK: live bench_storage record and BENCH_storage.json validate")
EOF

python3 - "$tmpdir/serving.json" "$serving_artifact" <<'EOF'
import json
import sys

ARM_KEYS = [
    "target_qps", "write_fraction", "sent", "responses", "ok", "shed",
    "errors", "wall_s", "offered_qps", "achieved_qps", "mean_us",
    "p50_us", "p90_us", "p99_us", "p999_us", "max_us", "connections",
    "per_connection_qps", "cache_hits", "cache_misses", "shed_requests",
]

SCALING_ARMS = [f"loops{n}_{kind}"
                for n in (1, 2, 4) for kind in ("read", "mixed")]


def check_arm(arm, where):
    for key in ARM_KEYS:
        if key not in arm:
            raise SystemExit(f"FAIL: {where}: missing key '{key}'")
    if arm["sent"] <= 0 or arm["wall_s"] <= 0:
        raise SystemExit(f"FAIL: {where}: empty run")
    if arm["responses"] != arm["sent"]:
        raise SystemExit(
            f"FAIL: {where}: lost responses "
            f"({arm['responses']}/{arm['sent']})")
    if not (arm["p50_us"] <= arm["p99_us"] <= arm["p999_us"]
            <= arm["max_us"]):
        raise SystemExit(f"FAIL: {where}: percentiles not monotone")
    if len(arm["per_connection_qps"]) != arm["connections"]:
        raise SystemExit(
            f"FAIL: {where}: per_connection_qps length disagrees with "
            "the connection count")


def check_record(record, where, assert_floors):
    for key in ("bench", "corpus", "arms", "scaling", "derived"):
        if key not in record:
            raise SystemExit(f"FAIL: {where}: missing key '{key}'")
    if record["bench"] != "bench_serving":
        raise SystemExit(f"FAIL: {where}: wrong bench name")
    for name in ("read_only", "mixed"):
        if name not in record["arms"]:
            raise SystemExit(f"FAIL: {where}: missing arm '{name}'")
        check_arm(record["arms"][name], f"{where} arm '{name}'")
    scaling = record["scaling"]
    if scaling.get("cores", 0) <= 0:
        raise SystemExit(f"FAIL: {where}: scaling record lacks cores")
    for name in SCALING_ARMS:
        if name not in scaling["arms"]:
            raise SystemExit(
                f"FAIL: {where}: missing scaling arm '{name}'")
        check_arm(scaling["arms"][name], f"{where} scaling arm '{name}'")
    for key in ("read_only_qps_ratio", "mixed_qps_ratio",
                "read_only_cache_hit_rate", "scaling_read_speedup_1_to_4",
                "scaling_mixed_speedup_1_to_4"):
        if key not in record["derived"]:
            raise SystemExit(f"FAIL: {where}: missing derived '{key}'")
    if assert_floors:
        # The artifact records a full steady-state run on the reference
        # container; its figures are constants of the checked-in file,
        # so the serving acceptance floors are asserted here (live
        # smoke runs on a loaded CI box say nothing about throughput).
        ro = record["arms"]["read_only"]
        mixed = record["arms"]["mixed"]
        if ro["achieved_qps"] < 0.9 * ro["target_qps"]:
            raise SystemExit(
                f"FAIL: {where}: read_only achieved_qps "
                f"({ro['achieved_qps']}) below 0.9 x target "
                f"({ro['target_qps']})")
        for name, arm in (("read_only", ro), ("mixed", mixed)):
            if arm["errors"] != 0 or arm["shed"] != 0:
                raise SystemExit(
                    f"FAIL: {where}: arm '{name}' recorded errors/sheds")
        if record["derived"]["read_only_cache_hit_rate"] < 0.9:
            raise SystemExit(
                f"FAIL: {where}: read-only cache hit rate below 0.9 — "
                "the generation-keyed cache is not serving repeats")
        # Multi-reactor scaling floor. The recorded figures are
        # constants of the checked-in file, captured on a machine whose
        # core count the record carries: with >= 4 cores the 4-loop
        # server must beat the single-loop server by >= 1.6x on the
        # read-only workload; on fewer cores a genuine speedup is
        # physically unmeasurable, so the floor degrades to
        # non-regression (>= 0.8x — the rings, striped cache and extra
        # threads must not cost material throughput).
        scaling = record["scaling"]
        for name in SCALING_ARMS:
            arm = scaling["arms"][name]
            if arm["errors"] != 0:
                raise SystemExit(
                    f"FAIL: {where}: scaling arm '{name}' recorded "
                    "errors")
            if name.endswith("_read") and arm["shed"] != 0:
                raise SystemExit(
                    f"FAIL: {where}: scaling arm '{name}' recorded "
                    "sheds")
        speedup = record["derived"]["scaling_read_speedup_1_to_4"]
        floor = 1.6 if scaling["cores"] >= 4 else 0.8
        if speedup < floor:
            raise SystemExit(
                f"FAIL: {where}: 1->4-loop read speedup {speedup} below "
                f"the floor {floor} for a {scaling['cores']}-core "
                "record")


with open(sys.argv[1]) as f:
    check_record(json.load(f), "live bench_serving output",
                 assert_floors=False)
with open(sys.argv[2]) as f:
    check_record(json.load(f), "BENCH_serving.json artifact",
                 assert_floors=True)
print("OK: live bench_serving record and BENCH_serving.json validate")
EOF
