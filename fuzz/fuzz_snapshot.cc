// Fuzz target: the durable-storage readers. Any byte string fed to the
// snapshot loader and the WAL reader must come back as a Status —
// kInvalidArgument for structural corruption, kFailedPrecondition for a
// wrong version/generation, kResourceExhausted if garbage floods the
// NameTable — never a crash, hang, or out-of-bounds read. Documents a
// load does accept must then survive full FlatDoc structural
// validation: corrupt bytes may be rejected, but never half-accepted.
//
// The seed corpus (corpus/snapshot) holds a real checkpoint's
// snapshot.webre and WAL files, so mutations explore the format's
// interior, not just its magic check.

#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string_view>
#include <vector>

#include "storage/snapshot.h"
#include "storage/wal.h"
#include "util/status.h"
#include "xml/flat_doc.h"
#include "xml/name_table.h"

namespace {

bool AcceptableStatus(const webre::Status& status) {
  return status.ok() ||
         status.code() == webre::StatusCode::kInvalidArgument ||
         status.code() == webre::StatusCode::kFailedPrecondition ||
         status.code() == webre::StatusCode::kResourceExhausted;
}

// Re-validates an accepted document block through FlatDoc — a loader
// that admits a block the validator rejects (or vice versa crashes on)
// is a bug either way.
void ExerciseBlock(std::string_view block, uint32_t element_count) {
  auto copy = std::make_unique<char[]>(block.size());
  std::memcpy(copy.get(), block.data(), block.size());
  auto doc = webre::FlatDoc::FromOwnedBlock(
      std::move(copy), block.size(), element_count,
      static_cast<webre::NameId>(webre::NameTable::Global().size()));
  if (doc.ok()) {
    // Touch every element: any accepted block must be fully readable.
    const webre::FlatDoc& d = **doc;
    size_t text_bytes = 0;
    for (uint32_t i = 0; i < d.element_count(); ++i) {
      text_bytes += d.val(i).size();
      (void)d.subtree_end(i);
    }
    (void)text_bytes;
  } else if (!AcceptableStatus(doc.status())) {
    abort();
  }
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  const std::string_view bytes(reinterpret_cast<const char*>(data), size);

  // 1. The input as a snapshot image.
  webre::storage::LoadedSnapshot loaded;
  const webre::Status snap = webre::storage::LoadSnapshotImage(bytes, loaded);
  if (!AcceptableStatus(snap)) abort();
  if (snap.ok()) {
    for (const webre::storage::LoadedDocument& doc : loaded.documents) {
      ExerciseBlock(doc.block, doc.element_count);
    }
  }

  // 2. The input as a WAL file: header check, then the valid-prefix
  // scan and per-record document decode.
  const webre::Status header = webre::storage::CheckWalHeader(
      bytes, webre::storage::SeedVocabularyHash());
  if (!AcceptableStatus(header)) abort();
  if (header.ok()) {
    std::vector<webre::storage::WalRecord> records;
    const size_t prefix = webre::storage::ParseWalPayload(
        bytes.substr(webre::storage::kWalHeaderSize), records);
    if (prefix > size - webre::storage::kWalHeaderSize) abort();
    for (const webre::storage::WalRecord& record : records) {
      auto doc = webre::storage::DecodeWalDocument(record);
      if (!doc.ok() && !AcceptableStatus(doc.status())) abort();
    }
  }
  return 0;
}
