// Fuzz target: end-to-end guarded conversion. Any byte string pushed
// through DocumentConverter::TryConvert under tight limits must yield
// either a tree or a kResourceExhausted/kInvalidArgument Status with a
// named stage — never a crash, hang, or other status code.

#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <memory>
#include <string>
#include <string_view>

#include "concepts/concept.h"
#include "restructure/converter.h"
#include "restructure/recognizer.h"
#include "util/resource_limits.h"

namespace {

// One converter reused across inputs: immutable after construction, and
// building the (empty) domain per-execution would dominate runtime.
const webre::DocumentConverter& Converter() {
  static const webre::ConceptSet* concepts = new webre::ConceptSet();
  static const webre::SynonymRecognizer* recognizer =
      new webre::SynonymRecognizer(concepts);
  static const webre::DocumentConverter* converter = [] {
    webre::ConvertOptions options;
    options.limits.max_input_bytes = 1u << 16;
    options.limits.max_tree_depth = 64;
    options.limits.max_node_count = 8192;
    options.limits.max_tokens_per_text = 512;
    options.limits.max_entity_expansions = 512;
    options.limits.max_steps = 1u << 20;
    return new webre::DocumentConverter(concepts, recognizer, nullptr,
                                        options);
  }();
  return *converter;
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  const std::string_view html(reinterpret_cast<const char*>(data), size);

  webre::ConvertStats stats;
  std::string stage;
  webre::StatusOr<std::unique_ptr<webre::Node>> result =
      Converter().TryConvert(html, &stats, &stage);
  if (result.ok()) {
    if (result.value() == nullptr) abort();
  } else {
    if (result.status().code() != webre::StatusCode::kResourceExhausted &&
        result.status().code() != webre::StatusCode::kInvalidArgument) {
      abort();
    }
    if (stage.empty()) abort();  // every failure names its stage
  }
  return 0;
}
