// Fuzz target: the wire-protocol request/response decoders
// (serve/frame). Any byte stream fed to FrameDecoder must end in
// kNeedMore or kBad — never a crash, hang, over-read or unbounded
// buffering past the frame cap. What DOES decode must round-trip:
// re-encoding a decoded frame and decoding it again yields the same
// frame, and chunked delivery (the network's framing) yields the same
// frame sequence as one contiguous append. The JSON-lines debug parser
// gets every input line too.
//
// The seed corpus (corpus/frames) is real traffic captured by
// `loadgen --capture-frames` — query and ingest frames plus JSON
// debug-mode lines — so mutations explore the format's interior.

#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <string>
#include <string_view>
#include <vector>

#include "serve/frame.h"

namespace {

constexpr size_t kMaxFrame = 1u << 20;
constexpr size_t kMaxFrames = 1024;

using webre::serve::FrameDecoder;
using webre::serve::FrameStatus;
using webre::serve::Request;
using webre::serve::Response;

// Decodes every request frame in `input`, appending `chunk` bytes at a
// time (0 = all at once). Returns the decoded requests; `bad` reports
// whether the stream ended in a framing error.
std::vector<Request> DecodeRequests(std::string_view input, size_t chunk,
                                    bool& bad) {
  FrameDecoder decoder(kMaxFrame);
  std::vector<Request> requests;
  bad = false;
  size_t fed = 0;
  for (;;) {
    Request request;
    const FrameStatus status = decoder.NextRequest(request);
    if (status == FrameStatus::kFrame) {
      if (requests.size() < kMaxFrames) requests.push_back(request);
      continue;
    }
    if (status == FrameStatus::kBad) {
      bad = true;
      return requests;
    }
    if (fed >= input.size()) return requests;  // kNeedMore, stream done
    const size_t n =
        chunk == 0 ? input.size() - fed
                   : (chunk < input.size() - fed ? chunk : input.size() - fed);
    decoder.Append(input.substr(fed, n));
    fed += n;
  }
}

void CheckRequestRoundTrip(const Request& request) {
  std::string encoded;
  EncodeRequest(request, encoded);
  FrameDecoder decoder(kMaxFrame);
  decoder.Append(encoded);
  Request again;
  if (decoder.NextRequest(again) != FrameStatus::kFrame ||
      again.type != request.type || again.id != request.id ||
      again.body != request.body) {
    abort();
  }
}

void ExerciseResponses(std::string_view input) {
  FrameDecoder decoder(kMaxFrame);
  decoder.Append(input);
  Response response;
  size_t frames = 0;
  while (frames < kMaxFrames &&
         decoder.NextResponse(response) == FrameStatus::kFrame) {
    ++frames;
    // encode(decode(x)) must be a fixed point of decode∘encode.
    std::string first;
    EncodeResponse(response, first);
    FrameDecoder re(kMaxFrame);
    re.Append(first);
    Response again;
    if (re.NextResponse(again) != FrameStatus::kFrame) abort();
    std::string second;
    EncodeResponse(again, second);
    if (first != second) abort();
    (void)webre::serve::ResponseToJsonLine(response);
  }
}

void ExerciseJsonLines(std::string_view input) {
  size_t start = 0;
  size_t lines = 0;
  while (start <= input.size() && lines < kMaxFrames) {
    const size_t nl = input.find('\n', start);
    const std::string_view line =
        input.substr(start, nl == std::string_view::npos ? input.size() - start
                                                         : nl - start);
    ++lines;
    Request request;
    if (webre::serve::ParseJsonRequest(line, request).ok()) {
      CheckRequestRoundTrip(request);
    }
    if (nl == std::string_view::npos) break;
    start = nl + 1;
  }
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  const std::string_view input(reinterpret_cast<const char*>(data), size);

  bool bad_whole = false;
  const std::vector<Request> whole = DecodeRequests(input, 0, bad_whole);
  for (const Request& request : whole) CheckRequestRoundTrip(request);

  // Chunked delivery must reproduce the exact frame sequence: the
  // decoder's buffering/compaction cannot change what parses.
  bool bad_chunked = false;
  const std::vector<Request> chunked = DecodeRequests(input, 7, bad_chunked);
  if (bad_whole != bad_chunked || whole.size() != chunked.size()) abort();
  for (size_t i = 0; i < whole.size(); ++i) {
    if (whole[i].type != chunked[i].type || whole[i].id != chunked[i].id ||
        whole[i].body != chunked[i].body) {
      abort();
    }
  }

  ExerciseResponses(input);
  ExerciseJsonLines(input);
  return 0;
}
