// Fuzz target: HTML entity decoder. Any byte string must decode without
// crashing; the output must never contain a byte sequence produced from
// an invalid numeric reference (surrogates / out-of-range decode to the
// three-byte U+FFFD, which is well-formed); and the budgeted decode with
// unlimited budget must agree with the plain one.

#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <string>
#include <string_view>

#include "html/entities.h"
#include "util/resource_limits.h"

namespace {

// Validates UTF-8 well-formedness of the *decoded* characters only: the
// decoder passes unrecognized input bytes through verbatim, so arbitrary
// garbage stays garbage — but every byte it generates itself (entity
// expansion) must be structurally sound. We approximate by checking that
// decoding is idempotent on '&'-free output regions; cheap and catches
// the historical surrogate bug (raw 0xED 0xA0 0x80 emission).
bool ContainsCesu8Surrogate(const std::string& s) {
  for (size_t i = 0; i + 2 < s.size(); ++i) {
    const auto b0 = static_cast<unsigned char>(s[i]);
    const auto b1 = static_cast<unsigned char>(s[i + 1]);
    if (b0 == 0xED && b1 >= 0xA0 && b1 <= 0xBF) return true;
  }
  return false;
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  const std::string_view input(reinterpret_cast<const char*>(data), size);

  const std::string decoded = webre::DecodeHtmlEntities(input);

  // The decoder must never *generate* a surrogate encoding. Only check
  // when the input itself is clean of the pattern, since pass-through
  // bytes are allowed to stay dirty.
  if (!ContainsCesu8Surrogate(std::string(input)) &&
      ContainsCesu8Surrogate(decoded)) {
    abort();
  }

  webre::ResourceBudget unlimited(webre::ResourceLimits::Unlimited());
  std::string budgeted;
  webre::Status status = webre::DecodeHtmlEntities(input, unlimited, budgeted);
  if (!status.ok()) abort();
  if (budgeted != decoded) abort();

  webre::ResourceLimits tight;
  tight.max_entity_expansions = 16;
  webre::ResourceBudget budget(tight);
  std::string capped;
  webre::Status capped_status =
      webre::DecodeHtmlEntities(input, budget, capped);
  if (!capped_status.ok() &&
      capped_status.code() != webre::StatusCode::kResourceExhausted) {
    abort();
  }
  return 0;
}
