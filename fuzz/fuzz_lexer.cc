// Fuzz target: HTML lexer. Any byte string must tokenize without
// crashing on both the lenient path and the guarded path, and the
// guarded path with unlimited budget must agree with the lenient one.

#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <string_view>
#include <vector>

#include "html/lexer.h"
#include "util/resource_limits.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  const std::string_view html(reinterpret_cast<const char*>(data), size);

  std::vector<webre::HtmlToken> lenient = webre::TokenizeHtml(html);

  webre::ResourceBudget unlimited(webre::ResourceLimits::Unlimited());
  std::vector<webre::HtmlToken> guarded;
  webre::Status status = webre::TokenizeHtml(html, unlimited, guarded);
  if (!status.ok()) abort();  // unlimited budget must never trip
  if (guarded.size() != lenient.size()) abort();
  for (size_t i = 0; i < guarded.size(); ++i) {
    if (guarded[i].type != lenient[i].type ||
        guarded[i].name() != lenient[i].name() ||
        guarded[i].text() != lenient[i].text()) {
      abort();
    }
  }

  // Tight limits: may fail, must not crash — and must fail with
  // kResourceExhausted, never anything else.
  webre::ResourceLimits tight;
  tight.max_input_bytes = 4096;
  tight.max_entity_expansions = 64;
  tight.max_steps = 1u << 16;
  webre::ResourceBudget budget(tight);
  std::vector<webre::HtmlToken> capped;
  webre::Status capped_status = webre::TokenizeHtml(html, budget, capped);
  if (!capped_status.ok() &&
      capped_status.code() != webre::StatusCode::kResourceExhausted) {
    abort();
  }
  return 0;
}
