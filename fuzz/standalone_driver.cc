// Standalone replay-and-mutate driver for the fuzz targets, used when
// the toolchain has no libFuzzer (GCC builds). Provides main() for a
// binary whose other translation unit defines the libFuzzer entry point
//
//   extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t n);
//
// Usage:
//   fuzz_xxx [--mutate=N] [--max-len=BYTES] PATH...
//
// Each PATH is a corpus file or a directory of corpus files (read in
// sorted order for determinism). Every input is replayed verbatim, then
// N deterministically mutated variants are derived from it with a
// xorshift64 generator seeded from the input bytes and the variant
// index — the same corpus always exercises the same byte strings, so a
// crash found in CI reproduces locally with no corpus exchange.

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size);

namespace {

// xorshift64: tiny, fast, and fully deterministic across platforms.
struct Rng {
  uint64_t state;
  explicit Rng(uint64_t seed) : state(seed != 0 ? seed : 0x9E3779B97F4A7C15ull) {}
  uint64_t Next() {
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    return state;
  }
};

uint64_t Fnv1a(const std::vector<uint8_t>& bytes) {
  uint64_t hash = 1469598103934665603ull;
  for (uint8_t b : bytes) {
    hash ^= b;
    hash *= 1099511628211ull;
  }
  return hash;
}

// One structural mutation chosen by the RNG: bit flip, byte set, chunk
// erase, chunk duplicate, or splice of an interesting token.
void MutateOnce(Rng& rng, std::vector<uint8_t>& data, size_t max_len) {
  static const char* kTokens[] = {
      "<", ">", "</", "/>", "<!--", "-->", "<![CDATA[", "]]>",
      "&#", "&#x", "&amp;", ";", "\"", "'", "=", "<div>", "</div>",
      "<!DOCTYPE", "\0\0", "&#xD800;", "&#x110000;",
  };
  if (data.empty()) data.push_back('<');
  switch (rng.Next() % 5) {
    case 0: {  // flip one bit
      size_t pos = rng.Next() % data.size();
      data[pos] ^= static_cast<uint8_t>(1u << (rng.Next() % 8));
      break;
    }
    case 1: {  // overwrite one byte
      size_t pos = rng.Next() % data.size();
      data[pos] = static_cast<uint8_t>(rng.Next());
      break;
    }
    case 2: {  // erase a chunk
      size_t pos = rng.Next() % data.size();
      size_t len = 1 + rng.Next() % 16;
      len = std::min(len, data.size() - pos);
      data.erase(data.begin() + pos, data.begin() + pos + len);
      break;
    }
    case 3: {  // duplicate a chunk (growth is capped by max_len below)
      size_t pos = rng.Next() % data.size();
      size_t len = 1 + rng.Next() % 32;
      len = std::min(len, data.size() - pos);
      std::vector<uint8_t> chunk(data.begin() + pos,
                                 data.begin() + pos + len);
      data.insert(data.begin() + pos, chunk.begin(), chunk.end());
      break;
    }
    default: {  // splice an interesting token
      const char* token =
          kTokens[rng.Next() % (sizeof(kTokens) / sizeof(kTokens[0]))];
      size_t token_len = std::strlen(token);
      if (token_len == 0) token_len = 2;  // the embedded-NUL token
      size_t pos = rng.Next() % (data.size() + 1);
      data.insert(data.begin() + pos,
                  reinterpret_cast<const uint8_t*>(token),
                  reinterpret_cast<const uint8_t*>(token) + token_len);
      break;
    }
  }
  if (data.size() > max_len) data.resize(max_len);
}

bool ReadBytes(const std::filesystem::path& path,
               std::vector<uint8_t>& out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  out.assign(std::istreambuf_iterator<char>(in),
             std::istreambuf_iterator<char>());
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  size_t mutations = 0;
  size_t max_len = 1u << 20;  // 1 MiB cap keeps smoke runs fast
  std::vector<std::filesystem::path> inputs;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--mutate=", 0) == 0) {
      mutations = std::strtoull(arg.c_str() + 9, nullptr, 10);
    } else if (arg.rfind("--max-len=", 0) == 0) {
      max_len = std::strtoull(arg.c_str() + 10, nullptr, 10);
    } else {
      inputs.push_back(arg);
    }
  }
  if (inputs.empty()) {
    std::fprintf(stderr,
                 "usage: %s [--mutate=N] [--max-len=BYTES] PATH...\n",
                 argv[0]);
    return 2;
  }

  std::vector<std::filesystem::path> files;
  for (const std::filesystem::path& input : inputs) {
    std::error_code ec;
    if (std::filesystem::is_directory(input, ec)) {
      for (const auto& entry : std::filesystem::directory_iterator(input)) {
        if (entry.is_regular_file()) files.push_back(entry.path());
      }
    } else {
      files.push_back(input);
    }
  }
  std::sort(files.begin(), files.end());

  size_t executions = 0;
  for (const std::filesystem::path& file : files) {
    std::vector<uint8_t> seed;
    if (!ReadBytes(file, seed)) {
      std::fprintf(stderr, "%s: cannot read %s\n", argv[0],
                   file.string().c_str());
      return 2;
    }
    LLVMFuzzerTestOneInput(seed.data(), seed.size());
    ++executions;
    const uint64_t base = Fnv1a(seed);
    for (size_t v = 0; v < mutations; ++v) {
      Rng rng(base ^ (0xA5A5A5A5A5A5A5A5ull + v * 0x100000001B3ull));
      std::vector<uint8_t> variant = seed;
      const size_t rounds = 1 + rng.Next() % 4;
      for (size_t r = 0; r < rounds; ++r) MutateOnce(rng, variant, max_len);
      LLVMFuzzerTestOneInput(variant.data(), variant.size());
      ++executions;
    }
  }
  std::printf("%s: %zu inputs (%zu seeds x %zu mutations) — no crashes\n",
              argv[0], executions, files.size(), mutations + 1);
  return 0;
}
