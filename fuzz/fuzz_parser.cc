// Fuzz target: HTML parser + tidy. Any byte string must produce a tree
// (lenient path) or a structured Status (guarded path with tight caps);
// the resulting tree must respect the depth/node caps it was parsed
// under and must survive tidying.

#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <memory>
#include <string_view>

#include "html/parser.h"
#include "html/tidy.h"
#include "util/resource_limits.h"
#include "xml/node.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  const std::string_view html(reinterpret_cast<const char*>(data), size);

  // Lenient path: must always yield a tree.
  std::unique_ptr<webre::Node> lenient = webre::ParseHtml(html);
  if (lenient == nullptr) abort();

  // Guarded path under tight caps: a tree that parses must obey them.
  webre::ResourceLimits tight;
  tight.max_input_bytes = 1u << 16;
  tight.max_tree_depth = 64;
  tight.max_node_count = 4096;
  tight.max_entity_expansions = 256;
  tight.max_steps = 1u << 18;
  webre::ResourceBudget budget(tight);
  webre::StatusOr<std::unique_ptr<webre::Node>> guarded =
      webre::ParseHtml(html, webre::HtmlParseOptions{}, budget);
  if (guarded.ok()) {
    const webre::TreeStats stats = webre::MeasureTree(*guarded.value());
    if (stats.max_depth > tight.max_tree_depth) abort();
    if (stats.node_count > tight.max_node_count + 1) abort();
    webre::ResourceBudget tidy_budget(tight);
    webre::Status tidied = webre::TidyHtmlTree(
        guarded.value().get(), webre::TidyOptions{}, tidy_budget);
    if (!tidied.ok() &&
        tidied.code() != webre::StatusCode::kResourceExhausted) {
      abort();
    }
  } else if (guarded.status().code() !=
             webre::StatusCode::kResourceExhausted) {
    abort();  // guarded parse may only fail by exhausting a budget
  }
  return 0;
}
