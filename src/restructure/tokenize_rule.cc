#include "restructure/tokenize_rule.h"

#include <string_view>
#include <vector>

#include "util/strings.h"

namespace webre {
namespace {

size_t TokenizeUnder(Node* node, const TokenizeOptions& options,
                     NameId token_id, std::vector<std::string_view>& pieces) {
  size_t created = 0;
  for (size_t i = 0; i < node->child_count();) {
    Node* child = node->child(i);
    if (child->is_element()) {
      created += TokenizeUnder(child, options, token_id, pieces);
      ++i;
      continue;
    }
    // Text node: replace by token nodes at the same position. The removed
    // node is kept alive until all views into its text are consumed; the
    // scratch vector is drained here before any recursive frame reuses it.
    std::unique_ptr<Node> removed = node->RemoveChild(i);
    pieces.clear();
    SplitAnyViews(removed->text(), options.delimiters, pieces);
    size_t insert_at = i;
    for (std::string_view piece : pieces) {
      std::string_view trimmed = StripAsciiWhitespace(piece);
      if (trimmed.empty()) continue;
      std::unique_ptr<Node> token = Node::MakeElement(token_id);
      token->AddText(std::string(trimmed));
      node->InsertChild(insert_at++, std::move(token));
      ++created;
    }
    i = insert_at;
  }
  return created;
}

}  // namespace

size_t ApplyTokenizationRule(Node* root, const TokenizeOptions& options) {
  if (root == nullptr) return 0;
  std::vector<std::string_view> pieces;
  return TokenizeUnder(root, options, InternName(kTokenTag), pieces);
}

}  // namespace webre
