#include "restructure/tokenize_rule.h"

#include <vector>

#include "util/strings.h"

namespace webre {
namespace {

size_t TokenizeUnder(Node* node, const TokenizeOptions& options) {
  size_t created = 0;
  for (size_t i = 0; i < node->child_count();) {
    Node* child = node->child(i);
    if (child->is_element()) {
      created += TokenizeUnder(child, options);
      ++i;
      continue;
    }
    // Text node: replace by token nodes at the same position.
    std::vector<std::string> pieces =
        SplitAny(child->text(), options.delimiters);
    node->RemoveChild(i);
    size_t insert_at = i;
    for (std::string& piece : pieces) {
      std::string trimmed(StripAsciiWhitespace(piece));
      if (trimmed.empty()) continue;
      std::unique_ptr<Node> token = Node::MakeElement(kTokenTag);
      token->AddText(std::move(trimmed));
      node->InsertChild(insert_at++, std::move(token));
      ++created;
    }
    i = insert_at;
  }
  return created;
}

}  // namespace

size_t ApplyTokenizationRule(Node* root, const TokenizeOptions& options) {
  if (root == nullptr) return 0;
  return TokenizeUnder(root, options);
}

}  // namespace webre
