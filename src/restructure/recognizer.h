#ifndef WEBRE_RESTRUCTURE_RECOGNIZER_H_
#define WEBRE_RESTRUCTURE_RECOGNIZER_H_

#include <string_view>
#include <vector>

#include "classify/bayes.h"
#include "concepts/concept.h"

namespace webre {

/// Strategy interface for the concept instance rule (§2.3.1): given a
/// token's text, locate concept instances in it. The paper implements two
/// recognizers — synonym matching and a multinomial Bayes classifier —
/// and this interface lets the converter swap them (or combine them).
class ConceptRecognizer {
 public:
  virtual ~ConceptRecognizer() = default;

  /// Returns non-overlapping matches sorted by position; empty when the
  /// token cannot be associated with any concept.
  virtual std::vector<InstanceMatch> Recognize(
      std::string_view token_text) const = 0;
};

/// Recognizer (1) of §2.3.1: "it is simply checked whether for a concept
/// instance a match (synonym) can be found in the token."
class SynonymRecognizer : public ConceptRecognizer {
 public:
  /// `concepts` must outlive this recognizer.
  explicit SynonymRecognizer(const ConceptSet* concepts)
      : concepts_(concepts) {}

  std::vector<InstanceMatch> Recognize(
      std::string_view token_text) const override;

 private:
  const ConceptSet* concepts_;
};

/// Recognizer (2) of §2.3.1: a multinomial Bayes classifier trained on
/// user-labeled tokens "classifies each token as a concept instance with
/// the highest probability", or as unknown below the confidence margin.
/// A Bayes match always covers the whole token.
class BayesRecognizer : public ConceptRecognizer {
 public:
  /// `classifier` and `concepts` must outlive this recognizer.
  /// `min_margin` is the log-odds margin under which a token is left
  /// unknown (0 accepts every prediction).
  BayesRecognizer(const BayesClassifier* classifier,
                  const ConceptSet* concepts, double min_margin = 0.5);

  std::vector<InstanceMatch> Recognize(
      std::string_view token_text) const override;

 private:
  const BayesClassifier* classifier_;
  const ConceptSet* concepts_;
  double min_margin_;
};

/// Synonym matching first; Bayes classification as fallback for tokens
/// without any synonym hit. This mirrors the paper's remedy for a low
/// identified-token ratio: add instances *or* more training data.
class HybridRecognizer : public ConceptRecognizer {
 public:
  HybridRecognizer(const ConceptSet* concepts,
                   const BayesClassifier* classifier, double min_margin = 0.5);

  std::vector<InstanceMatch> Recognize(
      std::string_view token_text) const override;

 private:
  SynonymRecognizer synonym_;
  BayesRecognizer bayes_;
};

}  // namespace webre

#endif  // WEBRE_RESTRUCTURE_RECOGNIZER_H_
