#ifndef WEBRE_RESTRUCTURE_GROUPING_RULE_H_
#define WEBRE_RESTRUCTURE_GROUPING_RULE_H_

#include <cstddef>

#include "xml/node.h"

namespace webre {

/// Name of the temporary element introduced by the grouping rule.
inline constexpr char kGroupTag[] = "GROUP";

/// Applies the grouping rule (§2.3.2) to the whole tree, top-down.
///
/// At each node, among its element children the *group tag* with the
/// highest weight (GroupTagWeight) is selected; given the children
/// N1..Nk carrying that tag, all siblings between Ni and Ni+1 (and all
/// siblings right of Nk) are moved under a new GROUP node which becomes a
/// child of Ni. Siblings left of N1 stay in place. Lower-weight group
/// tags among the sunken siblings are handled when the top-down pass
/// reaches them at the next level ("groups related to p nodes then will
/// be considered at the next lower level").
///
/// Returns the number of GROUP nodes created.
size_t ApplyGroupingRule(Node* root);

}  // namespace webre

#endif  // WEBRE_RESTRUCTURE_GROUPING_RULE_H_
