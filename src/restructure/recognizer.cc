#include "restructure/recognizer.h"

#include "classify/features.h"

namespace webre {

std::vector<InstanceMatch> SynonymRecognizer::Recognize(
    std::string_view token_text) const {
  return concepts_->MatchAll(token_text);
}

BayesRecognizer::BayesRecognizer(const BayesClassifier* classifier,
                                 const ConceptSet* concepts,
                                 double min_margin)
    : classifier_(classifier), concepts_(concepts),
      min_margin_(min_margin) {}

std::vector<InstanceMatch> BayesRecognizer::Recognize(
    std::string_view token_text) const {
  std::vector<InstanceMatch> matches;
  std::vector<std::string> features = ExtractTokenFeatures(token_text);
  if (features.empty()) return matches;
  std::string label =
      classifier_->ClassifyWithThreshold(features, min_margin_, "");
  if (label.empty()) return matches;
  const size_t index = concepts_->IndexOf(label);
  if (index == ConceptSet::kNpos) return matches;  // outside Con: unknown
  matches.push_back(InstanceMatch{index, concepts_->at(index).name, 0,
                                  token_text.size(), /*via_bayes=*/true});
  return matches;
}

HybridRecognizer::HybridRecognizer(const ConceptSet* concepts,
                                   const BayesClassifier* classifier,
                                   double min_margin)
    : synonym_(concepts), bayes_(classifier, concepts, min_margin) {}

std::vector<InstanceMatch> HybridRecognizer::Recognize(
    std::string_view token_text) const {
  std::vector<InstanceMatch> matches = synonym_.Recognize(token_text);
  if (!matches.empty()) return matches;
  return bayes_.Recognize(token_text);
}

}  // namespace webre
