#ifndef WEBRE_RESTRUCTURE_CONVERTER_H_
#define WEBRE_RESTRUCTURE_CONVERTER_H_

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "concepts/concept.h"
#include "concepts/constraints.h"
#include "html/parser.h"
#include "html/tidy.h"
#include "obs/stage.h"
#include "restructure/consolidation_rule.h"
#include "restructure/instance_rule.h"
#include "restructure/recognizer.h"
#include "restructure/tokenize_rule.h"
#include "xml/node.h"

namespace webre {

/// Options for DocumentConverter.
struct ConvertOptions {
  /// Element name given to the root of the resulting XML document (the
  /// topic, e.g. "resume").
  std::string root_name = "resume";
  /// Run the HTML cleanser before restructuring (§2.4: "applying HTML
  /// cleansing tools (such as HTML Tidy) can improve the accuracy").
  bool apply_tidy = true;
  /// Run the grouping rule (ablatable; see bench_ablations).
  bool apply_grouping = true;
  HtmlParseOptions parse;
  TidyOptions tidy;
  TokenizeOptions tokenize;
  /// Per-document resource guards, enforced only by TryConvert /
  /// TryConvertTree (Convert stays lenient and unguarded for callers
  /// that trust their input).
  ResourceLimits limits;
  /// Record per-stage wall-time spans and item counts into
  /// `ConvertStats::stage_spans` (observability, DESIGN.md §10). Off by
  /// default: recording costs a clock read per stage plus two iterative
  /// tree walks per document, so the un-instrumented path stays
  /// byte-for-byte as fast as before.
  bool record_stage_spans = false;
};

/// One stage's interval within a single document conversion, recorded by
/// the guarded entry points when `ConvertOptions::record_stage_spans` is
/// set. Timestamps come from obs::MonotonicSeconds so spans from many
/// documents/threads share a timebase (ready for trace export).
struct ConvertStageSpan {
  obs::PipelineStage stage = obs::PipelineStage::kParse;
  double begin_seconds = 0.0;
  double end_seconds = 0.0;
  /// Stage-specific units (DESIGN.md §10): bytes in for parse; tree
  /// nodes for parse-out/tidy/tokenize-in; tokens for tokenize-out and
  /// instance-in; concept elements for instance-out and grouping; final
  /// tree nodes for consolidate-out. Chosen so every count falls out of
  /// work the stage already does — instrumentation never walks the tree
  /// again.
  size_t items_in = 0;
  size_t items_out = 0;
};

/// Per-document conversion report.
struct ConvertStats {
  size_t tokens_created = 0;
  InstanceRuleStats instance;
  size_t groups_created = 0;
  ConsolidationStats consolidation;
  /// Concept elements in the final document (excluding the root).
  size_t concept_nodes = 0;
  /// Completed stage intervals, in execution order (only when
  /// `ConvertOptions::record_stage_spans` is set; a failed conversion
  /// carries the stages completed before the failure).
  std::vector<ConvertStageSpan> stage_spans;
  /// ResourceBudget consumption at completion (guarded entry points
  /// only; 0 for failed documents — they stopped charging mid-way).
  size_t budget_steps_used = 0;
  size_t budget_nodes_used = 0;
  size_t budget_entities_used = 0;
  /// Memory accounting, filled by callers that own the allocation
  /// context (the pipeline, the benches): Node allocations performed
  /// for this document and, when a NodeArena was installed, the arena
  /// payload bytes the document's tree occupies. Zero when untracked.
  size_t mem_node_allocs = 0;
  size_t mem_arena_bytes = 0;
};

/// The document conversion process (§2): parses a topic-specific HTML
/// document and applies, in order, the tokenization rule, the concept
/// instance rule, the grouping rule and the consolidation rule, yielding
/// an XML document whose elements carry concept names.
///
/// Thread-compatible: Convert is const and the converter holds only
/// const borrowed state, so one converter may serve concurrent callers.
class DocumentConverter {
 public:
  /// `concepts` and `recognizer` must outlive the converter.
  /// `constraints` is optional and may be null.
  DocumentConverter(const ConceptSet* concepts,
                    const ConceptRecognizer* recognizer,
                    const ConstraintSet* constraints = nullptr,
                    ConvertOptions options = {});

  /// Converts raw HTML into an XML document rooted at an element named
  /// `options.root_name`. Never fails (lenient parsing end to end).
  std::unique_ptr<Node> Convert(std::string_view html,
                                ConvertStats* stats = nullptr) const;

  /// Converts an already-parsed HTML tree (takes ownership).
  std::unique_ptr<Node> ConvertTree(std::unique_ptr<Node> html_tree,
                                    ConvertStats* stats = nullptr) const;

  /// Guarded conversion: every stage is charged against one
  /// ResourceBudget built from `options().limits`, so a pathological
  /// document (pathological nesting, entity floods, token bombs) yields
  /// a kResourceExhausted Status instead of unbounded recursion, memory
  /// or time. On failure, `failed_stage` (if non-null) names the stage
  /// that tripped: "parse" (lexing included), "tidy", "tokenize" or
  /// "rules".
  /// On clean input the result is byte-identical to Convert's.
  StatusOr<std::unique_ptr<Node>> TryConvert(
      std::string_view html, ConvertStats* stats = nullptr,
      std::string* failed_stage = nullptr) const;

  /// Guarded variant of ConvertTree for caller-built trees (takes
  /// ownership; the tree is validated against the limits first).
  StatusOr<std::unique_ptr<Node>> TryConvertTree(
      std::unique_ptr<Node> html_tree, ConvertStats* stats = nullptr,
      std::string* failed_stage = nullptr) const;

  const ConvertOptions& options() const { return options_; }

 private:
  /// Shared guarded post-parse path (tidy + the four rules) used by both
  /// Try entry points. `root` must already be admitted to `budget`.
  Status RunGuardedRules(Node* root, ConvertStats* out,
                         std::string* failed_stage,
                         ResourceBudget& budget) const;

  const ConceptSet* concepts_;
  const ConceptRecognizer* recognizer_;
  const ConstraintSet* constraints_;
  ConvertOptions options_;
};

}  // namespace webre

#endif  // WEBRE_RESTRUCTURE_CONVERTER_H_
