#include "restructure/accuracy.h"

#include <algorithm>
#include <vector>

namespace webre {
namespace {

// Element children of `node`, in order.
std::vector<const Node*> ElementChildren(const Node& node) {
  std::vector<const Node*> out;
  for (size_t i = 0; i < node.child_count(); ++i) {
    const Node* child = node.child(i);
    if (child->is_element()) out.push_back(child);
  }
  return out;
}

size_t CountElements(const Node& node) {
  size_t count = node.is_element() ? 1 : 0;
  for (size_t i = 0; i < node.child_count(); ++i) {
    count += CountElements(*node.child(i));
  }
  return count;
}

// Number of maximal contiguous runs of `false` in `matched`.
size_t UnmatchedRuns(const std::vector<bool>& matched) {
  size_t runs = 0;
  bool in_run = false;
  for (bool m : matched) {
    if (!m && !in_run) {
      ++runs;
      in_run = true;
    } else if (m) {
      in_run = false;
    }
  }
  return runs;
}

size_t CompareChildren(const Node& extracted, const Node& truth);

// LCS alignment of children by element name; returns total errors for
// this node and, recursively, below.
size_t CompareChildren(const Node& extracted, const Node& truth) {
  std::vector<const Node*> e = ElementChildren(extracted);
  std::vector<const Node*> t = ElementChildren(truth);

  const size_t n = e.size();
  const size_t m = t.size();
  // lcs[i][j] = LCS length of e[i..) and t[j..).
  std::vector<std::vector<size_t>> lcs(n + 1,
                                       std::vector<size_t>(m + 1, 0));
  for (size_t i = n; i-- > 0;) {
    for (size_t j = m; j-- > 0;) {
      if (e[i]->name() == t[j]->name()) {
        lcs[i][j] = lcs[i + 1][j + 1] + 1;
      } else {
        lcs[i][j] = std::max(lcs[i + 1][j], lcs[i][j + 1]);
      }
    }
  }

  // Recover the alignment.
  std::vector<bool> e_matched(n, false);
  std::vector<bool> t_matched(m, false);
  std::vector<std::pair<const Node*, const Node*>> pairs;
  size_t i = 0;
  size_t j = 0;
  while (i < n && j < m) {
    if (e[i]->name() == t[j]->name() &&
        lcs[i][j] == lcs[i + 1][j + 1] + 1) {
      e_matched[i] = true;
      t_matched[j] = true;
      pairs.emplace_back(e[i], t[j]);
      ++i;
      ++j;
    } else if (lcs[i + 1][j] >= lcs[i][j + 1]) {
      ++i;
    } else {
      ++j;
    }
  }

  size_t errors =
      std::max(UnmatchedRuns(e_matched), UnmatchedRuns(t_matched));
  for (const auto& [en, tn] : pairs) {
    errors += CompareChildren(*en, *tn);
  }
  return errors;
}

}  // namespace

AccuracyReport CompareTrees(const Node& extracted, const Node& truth) {
  AccuracyReport report;
  report.concept_nodes = CountElements(extracted) - 1;  // exclude root
  report.logical_errors = CompareChildren(extracted, truth);
  if (extracted.name() != truth.name()) ++report.logical_errors;
  return report;
}

}  // namespace webre
