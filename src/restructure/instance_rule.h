#ifndef WEBRE_RESTRUCTURE_INSTANCE_RULE_H_
#define WEBRE_RESTRUCTURE_INSTANCE_RULE_H_

#include <cstddef>

#include "concepts/constraints.h"
#include "restructure/recognizer.h"
#include "xml/node.h"

namespace webre {

/// Statistics reported by the concept instance rule. The paper suggests
/// using "the ratio between identified and unidentifiable tokens ... as a
/// feedback to the user" (§2.3.1).
struct InstanceRuleStats {
  /// TOKEN nodes examined.
  size_t tokens_total = 0;
  /// TOKEN nodes converted into at least one concept element.
  size_t tokens_identified = 0;
  /// Identified tokens whose matches came from synonym/shape matching
  /// (recognizer strategy (1); tokens_via_synonym + tokens_via_bayes ==
  /// tokens_identified).
  size_t tokens_via_synonym = 0;
  /// Identified tokens classified by the Bayes recognizer (strategy (2),
  /// `InstanceMatch::via_bayes`).
  size_t tokens_via_bayes = 0;
  /// Concept elements created.
  size_t elements_created = 0;
  /// Multi-instance segments merged into their predecessor because a
  /// sibling constraint vetoed the decomposition (§2.3.1 refinement).
  size_t segments_vetoed = 0;

  /// Identified fraction in [0,1]; 1 when no tokens were seen.
  double IdentifiedRatio() const {
    return tokens_total == 0
               ? 1.0
               : static_cast<double>(tokens_identified) /
                     static_cast<double>(tokens_total);
  }
};

/// Applies the concept instance rule (§2.3.1) top-down to every TOKEN
/// node produced by the tokenization rule:
///
///  1. exactly one instance identified: the token is replaced by
///     `<C val="token text"/>`;
///  2. several instances identified: the token is decomposed — each
///     segment from one identified instance up to the next becomes its
///     own `<Ci val="segment"/>`, text before the first instance is
///     passed to the parent's `val`;
///  0. no instance identified: the token node is deleted and its text is
///     passed to the parent's `val` attribute, so no information is lost.
///
/// `constraints` is optional; when provided, sibling constraints refine
/// the multi-instance decomposition: a segment whose concept may not be a
/// sibling of the previous segment's concept is merged into the previous
/// segment instead of becoming its own element.
InstanceRuleStats ApplyConceptInstanceRule(
    Node* root, const ConceptRecognizer& recognizer,
    const ConstraintSet* constraints = nullptr);

}  // namespace webre

#endif  // WEBRE_RESTRUCTURE_INSTANCE_RULE_H_
