#ifndef WEBRE_RESTRUCTURE_ACCURACY_H_
#define WEBRE_RESTRUCTURE_ACCURACY_H_

#include <cstddef>

#include "xml/node.h"

namespace webre {

/// Outcome of comparing an extracted tree against the correct tree.
struct AccuracyReport {
  /// Logical errors: the number of node-group moves needed to turn the
  /// extracted tree into the correct tree (§4.1: "we may move a node and
  /// its siblings together ... this is counted as one logical error").
  size_t logical_errors = 0;
  /// Concept nodes (elements, excluding the root) in the extracted tree.
  size_t concept_nodes = 0;

  /// errors / concept nodes, the paper's per-document error percentage.
  double ErrorPercent() const {
    return concept_nodes == 0
               ? 0.0
               : 100.0 * static_cast<double>(logical_errors) /
                     static_cast<double>(concept_nodes);
  }
};

/// Counts logical errors of `extracted` w.r.t. `truth` (§4.1's metric,
/// mechanized):
///
/// Children of matched parents are aligned by a longest-common-
/// subsequence over their element names (respecting sibling order).
/// Matched pairs recurse. Each maximal contiguous run of unmatched
/// children — on either side — is one group that must move, and the
/// error count at a node is max(unmatched runs in extracted, unmatched
/// runs in truth), so a group that moved from parent P to parent Q is
/// charged once, not twice. Only element names take part; `val` text and
/// attribute payloads are ignored.
AccuracyReport CompareTrees(const Node& extracted, const Node& truth);

}  // namespace webre

#endif  // WEBRE_RESTRUCTURE_ACCURACY_H_
