#include "restructure/consolidation_rule.h"

#include <algorithm>
#include <string>
#include <vector>

#include "html/tag_tables.h"
#include "restructure/grouping_rule.h"

namespace webre {
namespace {

class Consolidator {
 public:
  Consolidator(const ConceptSet& concepts, const ConstraintSet* constraints)
      : constraints_(constraints) {
    // Concept membership is tested once per element; resolve the set's
    // names to interned ids up front so the test is a binary search over
    // integers instead of a string hash per node.
    concept_ids_.reserve(concepts.concepts().size());
    for (const Concept& entry : concepts.concepts()) {
      concept_ids_.push_back(InternName(entry.name));
    }
    std::sort(concept_ids_.begin(), concept_ids_.end());
  }

  ConsolidationStats Run(Node* root) {
    // Bottom-up: consolidate children before deciding the parent's fate.
    // The root itself is preserved (the converter renames it).
    ConsolidateChildren(root);
    return stats_;
  }

 private:
  bool IsConceptNode(const Node& node) const {
    return node.is_element() &&
           std::binary_search(concept_ids_.begin(), concept_ids_.end(),
                              node.name_id());
  }

  void ConsolidateChildren(Node* node) {
    for (size_t i = 0; i < node->child_count();) {
      Node* child = node->child(i);
      if (child->is_text()) {
        // Defensive: stray text becomes parent val (the text rules
        // normally leave no text nodes behind).
        node->AppendVal(child->text());
        node->RemoveChild(i);
        continue;
      }
      ConsolidateChildren(child);
      if (IsConceptNode(*child)) {
        ++i;
        continue;
      }
      i = EliminateNonConcept(node, i);
    }
  }

  // Applies the rule to the non-concept element at `index` under
  // `parent`; returns the index at which scanning should continue (the
  // replacement content, if any, still needs no rescan because children
  // were already consolidated — so we skip past it).
  size_t EliminateNonConcept(Node* parent, size_t index) {
    Node* node = parent->child(index);

    if (node->child_count() == 0) {
      parent->AppendVal(node->val());
      parent->RemoveChild(index);
      ++stats_.nodes_deleted;
      return index;
    }

    if (IsListTag(node->name_id()) || ChildrenShareOneName(*node)) {
      // Push the children up, replacing the node. The node's accumulated
      // text goes to a sole child (it details that child's information,
      // cf. §2.3.1's child-details-parent principle) or, with several
      // children, to the parent.
      std::vector<std::unique_ptr<Node>> children = node->RemoveAllChildren();
      if (children.size() == 1 && children[0]->is_element()) {
        children[0]->AppendVal(node->val());
      } else {
        parent->AppendVal(node->val());
      }
      parent->RemoveChild(index);
      size_t insert_at = index;
      for (auto& child : children) {
        parent->InsertChild(insert_at++, std::move(child));
      }
      ++stats_.nodes_pushed_up;
      return insert_at;
    }

    // Replace the node by its first concept child; the remaining
    // children become children of that child.
    const size_t chosen = ChooseReplacementChild(*node);
    std::unique_ptr<Node> replacement = node->RemoveChild(chosen);
    replacement->AppendVal(node->val());
    std::vector<std::unique_ptr<Node>> rest = node->RemoveAllChildren();
    // Children that preceded the chosen one keep their relative order.
    for (auto& sibling : rest) {
      replacement->AddChild(std::move(sibling));
    }
    parent->ReplaceChild(index, std::move(replacement));
    ++stats_.nodes_replaced;
    return index + 1;
  }

  // True when all children are elements sharing one name.
  bool ChildrenShareOneName(const Node& node) const {
    NameId name = kInvalidNameId;
    for (size_t i = 0; i < node.child_count(); ++i) {
      const Node* child = node.child(i);
      if (!child->is_element()) return false;
      if (name == kInvalidNameId) {
        name = child->name_id();
      } else if (name != child->name_id()) {
        return false;
      }
    }
    return name != kInvalidNameId;
  }

  // Index of the first concept child that may become the parent of all
  // its siblings (per the constraint set); falls back to the first
  // concept child, then to 0.
  size_t ChooseReplacementChild(const Node& node) {
    size_t first_concept = node.child_count();
    for (size_t i = 0; i < node.child_count(); ++i) {
      const Node* candidate = node.child(i);
      if (!IsConceptNode(*candidate)) continue;
      if (first_concept == node.child_count()) first_concept = i;
      if (constraints_ == nullptr) return i;
      bool ok = true;
      for (size_t j = 0; j < node.child_count(); ++j) {
        if (j == i) continue;
        const Node* other = node.child(j);
        if (other->is_element() &&
            !constraints_->AncestorAllowed(candidate->name(),
                                           other->name())) {
          ok = false;
          break;
        }
      }
      if (ok) return i;
      ++stats_.replacements_vetoed;
    }
    return first_concept < node.child_count() ? first_concept : 0;
  }

  std::vector<NameId> concept_ids_;
  const ConstraintSet* constraints_;
  ConsolidationStats stats_;
};

}  // namespace

ConsolidationStats ApplyConsolidationRule(Node* root,
                                          const ConceptSet& concepts,
                                          const ConstraintSet* constraints) {
  if (root == nullptr) return {};
  return Consolidator(concepts, constraints).Run(root);
}

}  // namespace webre
