#include "restructure/converter.h"

#include "restructure/grouping_rule.h"

namespace webre {

DocumentConverter::DocumentConverter(const ConceptSet* concepts,
                                     const ConceptRecognizer* recognizer,
                                     const ConstraintSet* constraints,
                                     ConvertOptions options)
    : concepts_(concepts),
      recognizer_(recognizer),
      constraints_(constraints),
      options_(std::move(options)) {}

std::unique_ptr<Node> DocumentConverter::Convert(std::string_view html,
                                                 ConvertStats* stats) const {
  return ConvertTree(ParseHtml(html, options_.parse), stats);
}

std::unique_ptr<Node> DocumentConverter::ConvertTree(
    std::unique_ptr<Node> html_tree, ConvertStats* stats) const {
  ConvertStats local;
  ConvertStats* out = stats != nullptr ? stats : &local;
  *out = ConvertStats{};

  Node* root = html_tree.get();
  if (options_.apply_tidy) TidyHtmlTree(root, options_.tidy);

  out->tokens_created = ApplyTokenizationRule(root, options_.tokenize);
  out->instance = ApplyConceptInstanceRule(root, *recognizer_, constraints_);
  if (options_.apply_grouping) out->groups_created = ApplyGroupingRule(root);
  out->consolidation =
      ApplyConsolidationRule(root, *concepts_, constraints_);

  root->set_name(options_.root_name);
  out->concept_nodes = root->SubtreeSize() - 1;
  return html_tree;
}

}  // namespace webre
