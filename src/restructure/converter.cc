#include "restructure/converter.h"

#include <utility>
#include <vector>

#include "restructure/grouping_rule.h"

namespace webre {
namespace {

// Upper bound on the TOKEN nodes the tokenization rule can split one
// text node into: delimiter occurrences + 1. Walked iteratively so a
// hostile tree cannot recurse past the stack before its guard fires.
size_t MaxTokensInOneTextNode(const Node& root,
                              const std::string& delimiters) {
  size_t worst = 0;
  std::vector<const Node*> pending{&root};
  while (!pending.empty()) {
    const Node* node = pending.back();
    pending.pop_back();
    if (node->is_text()) {
      size_t pieces = 1;
      for (char c : node->text()) {
        if (delimiters.find(c) != std::string::npos) ++pieces;
      }
      if (pieces > worst) worst = pieces;
      continue;
    }
    for (size_t i = 0; i < node->child_count(); ++i) {
      pending.push_back(node->child(i));
    }
  }
  return worst;
}

}  // namespace

DocumentConverter::DocumentConverter(const ConceptSet* concepts,
                                     const ConceptRecognizer* recognizer,
                                     const ConstraintSet* constraints,
                                     ConvertOptions options)
    : concepts_(concepts),
      recognizer_(recognizer),
      constraints_(constraints),
      options_(std::move(options)) {}

std::unique_ptr<Node> DocumentConverter::Convert(std::string_view html,
                                                 ConvertStats* stats) const {
  return ConvertTree(ParseHtml(html, options_.parse), stats);
}

std::unique_ptr<Node> DocumentConverter::ConvertTree(
    std::unique_ptr<Node> html_tree, ConvertStats* stats) const {
  ConvertStats local;
  ConvertStats* out = stats != nullptr ? stats : &local;
  *out = ConvertStats{};

  Node* root = html_tree.get();
  if (options_.apply_tidy) TidyHtmlTree(root, options_.tidy);

  out->tokens_created = ApplyTokenizationRule(root, options_.tokenize);
  out->instance = ApplyConceptInstanceRule(root, *recognizer_, constraints_);
  if (options_.apply_grouping) out->groups_created = ApplyGroupingRule(root);
  out->consolidation =
      ApplyConsolidationRule(root, *concepts_, constraints_);

  root->set_name(options_.root_name);
  out->concept_nodes = root->SubtreeSize() - 1;
  return html_tree;
}

Status DocumentConverter::RunGuardedRules(Node* root, ConvertStats* out,
                                          std::string* failed_stage,
                                          ResourceBudget& budget) const {
  auto fail = [failed_stage](const char* stage, Status status) {
    if (failed_stage != nullptr) *failed_stage = stage;
    return status;
  };

  if (options_.apply_tidy) {
    Status tidied = TidyHtmlTree(root, options_.tidy, budget);
    if (!tidied.ok()) return fail("tidy", std::move(tidied));
  }

  // Tokenization is the one rule that multiplies nodes, so its blowup is
  // bounded both per text node and against the document node budget.
  const size_t worst =
      MaxTokensInOneTextNode(*root, options_.tokenize.delimiters);
  if (worst > options_.limits.max_tokens_per_text) {
    return fail("tokenize",
                Status::ResourceExhausted(
                    "text node would split into " + std::to_string(worst) +
                    " tokens, exceeding max_tokens_per_text=" +
                    std::to_string(options_.limits.max_tokens_per_text)));
  }
  out->tokens_created = ApplyTokenizationRule(root, options_.tokenize);
  // Each token is a TOKEN element plus its text child.
  Status charged = budget.ChargeNodes(2 * out->tokens_created);
  if (!charged.ok()) return fail("tokenize", std::move(charged));

  out->instance = ApplyConceptInstanceRule(root, *recognizer_, constraints_);
  if (options_.apply_grouping) out->groups_created = ApplyGroupingRule(root);
  out->consolidation =
      ApplyConsolidationRule(root, *concepts_, constraints_);

  // The remaining rules only rearrange or shrink the tree; charge the
  // final shape against the budget as a backstop.
  const TreeStats shape = MeasureTree(*root);
  Status final_check = budget.CheckNodeCount(shape.node_count);
  if (final_check.ok()) final_check = budget.CheckDepth(shape.max_depth);
  if (final_check.ok()) final_check = budget.ChargeSteps(shape.node_count * 3);
  if (!final_check.ok()) return fail("rules", std::move(final_check));

  root->set_name(options_.root_name);
  out->concept_nodes = shape.node_count - 1;
  return Status::Ok();
}

StatusOr<std::unique_ptr<Node>> DocumentConverter::TryConvert(
    std::string_view html, ConvertStats* stats,
    std::string* failed_stage) const {
  ConvertStats local;
  ConvertStats* out = stats != nullptr ? stats : &local;
  *out = ConvertStats{};

  ResourceBudget budget(options_.limits);
  StatusOr<std::unique_ptr<Node>> tree =
      ParseHtml(html, options_.parse, budget);
  if (!tree.ok()) {
    if (failed_stage != nullptr) *failed_stage = "parse";
    return tree.status();
  }
  WEBRE_RETURN_IF_ERROR(
      RunGuardedRules(tree.value().get(), out, failed_stage, budget));
  return tree;
}

StatusOr<std::unique_ptr<Node>> DocumentConverter::TryConvertTree(
    std::unique_ptr<Node> html_tree, ConvertStats* stats,
    std::string* failed_stage) const {
  ConvertStats local;
  ConvertStats* out = stats != nullptr ? stats : &local;
  *out = ConvertStats{};

  if (html_tree == nullptr) {
    if (failed_stage != nullptr) *failed_stage = "parse";
    return Status::InvalidArgument("null HTML tree");
  }
  // Caller-built trees never passed through the guarded parser, so
  // validate their shape before any recursive pass touches them.
  ResourceBudget budget(options_.limits);
  const TreeStats shape = MeasureTree(*html_tree);
  Status admissible = budget.CheckDepth(shape.max_depth);
  if (admissible.ok()) admissible = budget.ChargeNodes(shape.node_count);
  if (!admissible.ok()) {
    if (failed_stage != nullptr) *failed_stage = "parse";
    return admissible;
  }
  WEBRE_RETURN_IF_ERROR(
      RunGuardedRules(html_tree.get(), out, failed_stage, budget));
  return html_tree;
}

}  // namespace webre
