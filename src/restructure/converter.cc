#include "restructure/converter.h"

#include <utility>
#include <vector>

#include "obs/metrics.h"
#include "restructure/grouping_rule.h"

namespace webre {
namespace {

// Scoped span recorder: appends one ConvertStageSpan on Finish. Inert
// (no clock read) when `spans` is null.
class SpanScope {
 public:
  SpanScope(std::vector<ConvertStageSpan>* spans, obs::PipelineStage stage)
      : spans_(spans), stage_(stage),
        begin_s_(spans == nullptr ? 0.0 : obs::MonotonicSeconds()) {}

  void Finish(size_t items_in, size_t items_out) {
    if (spans_ == nullptr) return;
    spans_->push_back(ConvertStageSpan{stage_, begin_s_,
                                       obs::MonotonicSeconds(), items_in,
                                       items_out});
  }

 private:
  std::vector<ConvertStageSpan>* spans_;
  obs::PipelineStage stage_;
  double begin_s_;
};

// What the pre-tokenization guard walk learns about the tree.
struct TextSplitBound {
  /// Upper bound on the TOKEN nodes the tokenization rule can split one
  /// text node into: delimiter occurrences + 1.
  size_t worst_tokens = 0;
  /// Total nodes visited — the tree size entering tokenization, counted
  /// as a byproduct so span recording needs no extra walk.
  size_t node_count = 0;
};

// Walked iteratively so a hostile tree cannot recurse past the stack
// before its guard fires.
TextSplitBound MaxTokensInOneTextNode(const Node& root,
                                      const std::string& delimiters) {
  TextSplitBound bound;
  std::vector<const Node*> pending{&root};
  while (!pending.empty()) {
    const Node* node = pending.back();
    pending.pop_back();
    ++bound.node_count;
    if (node->is_text()) {
      size_t pieces = 1;
      for (char c : node->text()) {
        if (delimiters.find(c) != std::string::npos) ++pieces;
      }
      if (pieces > bound.worst_tokens) bound.worst_tokens = pieces;
      continue;
    }
    for (size_t i = 0; i < node->child_count(); ++i) {
      pending.push_back(node->child(i));
    }
  }
  return bound;
}

}  // namespace

DocumentConverter::DocumentConverter(const ConceptSet* concepts,
                                     const ConceptRecognizer* recognizer,
                                     const ConstraintSet* constraints,
                                     ConvertOptions options)
    : concepts_(concepts),
      recognizer_(recognizer),
      constraints_(constraints),
      options_(std::move(options)) {}

std::unique_ptr<Node> DocumentConverter::Convert(std::string_view html,
                                                 ConvertStats* stats) const {
  return ConvertTree(ParseHtml(html, options_.parse), stats);
}

std::unique_ptr<Node> DocumentConverter::ConvertTree(
    std::unique_ptr<Node> html_tree, ConvertStats* stats) const {
  ConvertStats local;
  ConvertStats* out = stats != nullptr ? stats : &local;
  *out = ConvertStats{};

  Node* root = html_tree.get();
  if (options_.apply_tidy) TidyHtmlTree(root, options_.tidy);

  out->tokens_created = ApplyTokenizationRule(root, options_.tokenize);
  out->instance = ApplyConceptInstanceRule(root, *recognizer_, constraints_);
  if (options_.apply_grouping) out->groups_created = ApplyGroupingRule(root);
  out->consolidation =
      ApplyConsolidationRule(root, *concepts_, constraints_);

  root->set_name(options_.root_name);
  out->concept_nodes = root->SubtreeSize() - 1;
  return html_tree;
}

Status DocumentConverter::RunGuardedRules(Node* root, ConvertStats* out,
                                          std::string* failed_stage,
                                          ResourceBudget& budget) const {
  auto fail = [failed_stage](const char* stage, Status status) {
    if (failed_stage != nullptr) *failed_stage = stage;
    return status;
  };
  std::vector<ConvertStageSpan>* spans =
      options_.record_stage_spans ? &out->stage_spans : nullptr;
  // One allocation for the whole document's spans (7 stages at most).
  if (spans != nullptr) spans->reserve(8);
  // Nodes admitted so far = the tree as parsed/charged by the caller.
  const size_t nodes_entering = budget.nodes_used();

  // The tidy span's node count "out" comes from the tokenization guard
  // walk below (which visits every node anyway), so instrumentation adds
  // clock reads but no extra tree traversals to the hot path.
  double tidy_begin = 0.0;
  double tidy_end = 0.0;
  if (options_.apply_tidy) {
    if (spans != nullptr) tidy_begin = obs::MonotonicSeconds();
    Status tidied = TidyHtmlTree(root, options_.tidy, budget);
    if (!tidied.ok()) return fail("tidy", std::move(tidied));
    if (spans != nullptr) tidy_end = obs::MonotonicSeconds();
  }

  {
    SpanScope span(spans, obs::PipelineStage::kTokenize);
    // Tokenization is the one rule that multiplies nodes, so its blowup
    // is bounded both per text node and against the document node budget.
    const TextSplitBound bound =
        MaxTokensInOneTextNode(*root, options_.tokenize.delimiters);
    if (spans != nullptr && options_.apply_tidy) {
      spans->push_back(ConvertStageSpan{obs::PipelineStage::kTidy,
                                        tidy_begin, tidy_end, nodes_entering,
                                        bound.node_count});
    }
    if (bound.worst_tokens > options_.limits.max_tokens_per_text) {
      return fail("tokenize",
                  Status::ResourceExhausted(
                      "text node would split into " +
                      std::to_string(bound.worst_tokens) +
                      " tokens, exceeding max_tokens_per_text=" +
                      std::to_string(options_.limits.max_tokens_per_text)));
    }
    out->tokens_created = ApplyTokenizationRule(root, options_.tokenize);
    // Each token is a TOKEN element plus its text child.
    Status charged = budget.ChargeNodes(2 * out->tokens_created);
    if (!charged.ok()) return fail("tokenize", std::move(charged));
    span.Finish(bound.node_count, out->tokens_created);
  }

  {
    SpanScope span(spans, obs::PipelineStage::kInstance);
    out->instance =
        ApplyConceptInstanceRule(root, *recognizer_, constraints_);
    span.Finish(out->instance.tokens_total, out->instance.elements_created);
  }

  if (options_.apply_grouping) {
    SpanScope span(spans, obs::PipelineStage::kGroup);
    out->groups_created = ApplyGroupingRule(root);
    // Concept elements in, concept elements + GROUP wrappers out (every
    // GROUP adds exactly one node).
    span.Finish(out->instance.elements_created,
                out->instance.elements_created + out->groups_created);
  }

  SpanScope consolidate_span(spans, obs::PipelineStage::kConsolidate);
  out->consolidation =
      ApplyConsolidationRule(root, *concepts_, constraints_);

  // The remaining rules only rearrange or shrink the tree; charge the
  // final shape against the budget as a backstop.
  const TreeStats shape = MeasureTree(*root);
  Status final_check = budget.CheckNodeCount(shape.node_count);
  if (final_check.ok()) final_check = budget.CheckDepth(shape.max_depth);
  if (final_check.ok()) final_check = budget.ChargeSteps(shape.node_count * 3);
  if (!final_check.ok()) return fail("rules", std::move(final_check));
  consolidate_span.Finish(
      out->instance.elements_created + out->groups_created,
      shape.node_count);

  root->set_name(options_.root_name);
  out->concept_nodes = shape.node_count - 1;
  out->budget_steps_used = budget.steps_used();
  out->budget_nodes_used = budget.nodes_used();
  out->budget_entities_used = budget.entities_used();
  return Status::Ok();
}

StatusOr<std::unique_ptr<Node>> DocumentConverter::TryConvert(
    std::string_view html, ConvertStats* stats,
    std::string* failed_stage) const {
  ConvertStats local;
  ConvertStats* out = stats != nullptr ? stats : &local;
  *out = ConvertStats{};

  ResourceBudget budget(options_.limits);
  SpanScope parse_span(
      options_.record_stage_spans ? &out->stage_spans : nullptr,
      obs::PipelineStage::kParse);
  StatusOr<std::unique_ptr<Node>> tree =
      ParseHtml(html, options_.parse, budget);
  if (!tree.ok()) {
    if (failed_stage != nullptr) *failed_stage = "parse";
    return tree.status();
  }
  parse_span.Finish(html.size(), budget.nodes_used());
  WEBRE_RETURN_IF_ERROR(
      RunGuardedRules(tree.value().get(), out, failed_stage, budget));
  return tree;
}

StatusOr<std::unique_ptr<Node>> DocumentConverter::TryConvertTree(
    std::unique_ptr<Node> html_tree, ConvertStats* stats,
    std::string* failed_stage) const {
  ConvertStats local;
  ConvertStats* out = stats != nullptr ? stats : &local;
  *out = ConvertStats{};

  if (html_tree == nullptr) {
    if (failed_stage != nullptr) *failed_stage = "parse";
    return Status::InvalidArgument("null HTML tree");
  }
  // Caller-built trees never passed through the guarded parser, so
  // validate their shape before any recursive pass touches them.
  ResourceBudget budget(options_.limits);
  const TreeStats shape = MeasureTree(*html_tree);
  Status admissible = budget.CheckDepth(shape.max_depth);
  if (admissible.ok()) admissible = budget.ChargeNodes(shape.node_count);
  if (!admissible.ok()) {
    if (failed_stage != nullptr) *failed_stage = "parse";
    return admissible;
  }
  WEBRE_RETURN_IF_ERROR(
      RunGuardedRules(html_tree.get(), out, failed_stage, budget));
  return html_tree;
}

}  // namespace webre
