#include "restructure/grouping_rule.h"

#include <string>
#include <vector>

#include "html/tag_tables.h"

namespace webre {
namespace {

// Chooses the highest-weight group tag present among `node`'s element
// children; kInvalidNameId when none. Ties are broken by first
// occurrence. Weights are looked up by interned id, so tie-breaking is
// deterministic regardless of how ids were assigned.
NameId SelectGroupTag(const Node& node) {
  NameId best = kInvalidNameId;
  int best_weight = 0;
  for (size_t i = 0; i < node.child_count(); ++i) {
    const Node* child = node.child(i);
    if (!child->is_element()) continue;
    int weight = GroupTagWeight(child->name_id());
    if (weight > best_weight) {
      best_weight = weight;
      best = child->name_id();
    }
  }
  return best;
}

size_t GroupChildren(Node* node, NameId group_id) {
  const NameId tag = SelectGroupTag(*node);
  if (tag == kInvalidNameId) return 0;

  // Positions of the marker children N1..Nk.
  std::vector<size_t> markers;
  for (size_t i = 0; i < node->child_count(); ++i) {
    const Node* child = node->child(i);
    if (child->is_element() && child->name_id() == tag) markers.push_back(i);
  }

  // Nothing to sink when the last marker is the last child and the
  // markers are adjacent; handle generally by walking markers from the
  // right so earlier indices stay valid.
  size_t groups_created = 0;
  size_t end = node->child_count();  // exclusive end of the current run
  for (size_t m = markers.size(); m-- > 0;) {
    const size_t marker = markers[m];
    if (end > marker + 1) {
      // Move children (marker, end) under a new GROUP child of marker.
      std::unique_ptr<Node> group = Node::MakeElement(group_id);
      for (size_t i = marker + 1; i < end;) {
        group->AddChild(node->RemoveChild(marker + 1));
        ++i;
      }
      node->child(marker)->AddChild(std::move(group));
      ++groups_created;
    }
    end = marker;
  }
  return groups_created;
}

size_t Apply(Node* node, NameId group_id) {
  size_t created = GroupChildren(node, group_id);
  for (size_t i = 0; i < node->child_count(); ++i) {
    Node* child = node->child(i);
    if (child->is_element()) created += Apply(child, group_id);
  }
  return created;
}

}  // namespace

size_t ApplyGroupingRule(Node* root) {
  if (root == nullptr) return 0;
  return Apply(root, InternName(kGroupTag));
}

}  // namespace webre
