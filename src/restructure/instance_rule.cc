#include "restructure/instance_rule.h"

#include <string>
#include <vector>

#include "restructure/tokenize_rule.h"
#include "util/strings.h"

namespace webre {
namespace {

// Gathers the full text carried by a token node (its text children).
std::string TokenText(const Node& token) {
  std::string text;
  for (size_t i = 0; i < token.child_count(); ++i) {
    const Node* child = token.child(i);
    if (!child->is_text()) continue;
    if (!text.empty()) text.push_back(' ');
    text.append(child->text());
  }
  return text;
}

class InstanceRule {
 public:
  InstanceRule(const ConceptRecognizer& recognizer,
               const ConstraintSet* constraints)
      : recognizer_(recognizer),
        constraints_(constraints),
        token_id_(InternName(kTokenTag)) {}

  InstanceRuleStats Run(Node* root) {
    Process(root);
    return stats_;
  }

 private:
  void Process(Node* node) {
    for (size_t i = 0; i < node->child_count();) {
      Node* child = node->child(i);
      if (!child->is_element()) {
        ++i;
        continue;
      }
      if (child->name_id() != token_id_) {
        Process(child);
        ++i;
        continue;
      }
      i = HandleToken(node, i);
    }
  }

  // Processes the TOKEN at `index` under `parent`; returns the index at
  // which scanning should continue.
  size_t HandleToken(Node* parent, size_t index) {
    ++stats_.tokens_total;
    const std::string text = TokenText(*parent->child(index));
    std::vector<InstanceMatch> matches = recognizer_.Recognize(text);
    CoalesceSameConcept(matches);

    if (matches.empty()) {
      // Case 0: unidentified — delete the token, pass text to parent.
      parent->RemoveChild(index);
      parent->AppendVal(StripAsciiWhitespace(text));
      return index;
    }

    ++stats_.tokens_identified;
    if (matches.front().via_bayes) {
      ++stats_.tokens_via_bayes;
    } else {
      ++stats_.tokens_via_synonym;
    }

    if (matches.size() == 1) {
      // Case 1: the whole token becomes one concept element.
      std::unique_ptr<Node> element =
          Node::MakeElement(matches[0].concept_name);
      element->set_val(std::string(StripAsciiWhitespace(text)));
      parent->ReplaceChild(index, std::move(element));
      ++stats_.elements_created;
      return index + 1;
    }

    // Case 2: several instances — decompose the token. The text from one
    // identified instance up to the next belongs to the former; the
    // rightmost instance takes the remaining text; text before the first
    // instance is passed to the parent (§2.3.1).
    if (constraints_ != nullptr) RefineWithSiblingConstraints(matches);

    std::string before(
        StripAsciiWhitespace(text.substr(0, matches.front().position)));
    parent->AppendVal(before);

    parent->RemoveChild(index);
    size_t insert_at = index;
    for (size_t m = 0; m < matches.size(); ++m) {
      const size_t begin = matches[m].position;
      const size_t end =
          m + 1 < matches.size() ? matches[m + 1].position : text.size();
      std::unique_ptr<Node> element =
          Node::MakeElement(matches[m].concept_name);
      element->set_val(
          std::string(StripAsciiWhitespace(text.substr(begin, end - begin))));
      parent->InsertChild(insert_at++, std::move(element));
      ++stats_.elements_created;
    }
    return insert_at;
  }

  // Merges consecutive matches of the same concept into one: "June 1996"
  // or "June 1999 - Present" carry several DATE instances but describe a
  // single information object, so decomposing them would split one
  // concept's text across several elements.
  static void CoalesceSameConcept(std::vector<InstanceMatch>& matches) {
    std::vector<InstanceMatch> merged;
    for (const InstanceMatch& m : matches) {
      if (!merged.empty() &&
          merged.back().concept_index == m.concept_index) {
        merged.back().length =
            m.position + m.length - merged.back().position;
        continue;
      }
      merged.push_back(m);
    }
    matches = std::move(merged);
  }

  // Drops a match whose concept may not be a sibling of its predecessor's
  // concept (negated sibling constraints); its text then merges into the
  // predecessor's segment by virtue of segment boundaries being match
  // starts.
  void RefineWithSiblingConstraints(std::vector<InstanceMatch>& matches) {
    std::vector<InstanceMatch> kept;
    for (const InstanceMatch& m : matches) {
      if (!kept.empty() && !constraints_->SiblingAllowed(
                               kept.back().concept_name, m.concept_name)) {
        ++stats_.segments_vetoed;
        continue;
      }
      kept.push_back(m);
    }
    matches = std::move(kept);
  }

  const ConceptRecognizer& recognizer_;
  const ConstraintSet* constraints_;
  const NameId token_id_;
  InstanceRuleStats stats_;
};

}  // namespace

InstanceRuleStats ApplyConceptInstanceRule(Node* root,
                                           const ConceptRecognizer& recognizer,
                                           const ConstraintSet* constraints) {
  if (root == nullptr) return {};
  return InstanceRule(recognizer, constraints).Run(root);
}

}  // namespace webre
