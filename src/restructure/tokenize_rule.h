#ifndef WEBRE_RESTRUCTURE_TOKENIZE_RULE_H_
#define WEBRE_RESTRUCTURE_TOKENIZE_RULE_H_

#include <string>

#include "xml/node.h"

namespace webre {

/// Name of the temporary element introduced by the tokenization rule.
inline constexpr char kTokenTag[] = "TOKEN";

/// Options for the tokenization rule.
struct TokenizeOptions {
  /// Punctuation delimiters at which topic sentences split; the paper's
  /// §4 annotation uses { ';' , ':' , ',' }.
  std::string delimiters = ";:,";
};

/// Applies the tokenization rule (§2.3.1) to the whole tree, top-down:
/// every text node is replaced *in place* by `n >= 1` token nodes of the
/// pattern `<TOKEN>text</TOKEN>`, splitting the text at the delimiter
/// characters. Empty/whitespace-only pieces produce no token. Returns the
/// number of token nodes created.
size_t ApplyTokenizationRule(Node* root, const TokenizeOptions& options = {});

}  // namespace webre

#endif  // WEBRE_RESTRUCTURE_TOKENIZE_RULE_H_
