#ifndef WEBRE_RESTRUCTURE_CONSOLIDATION_RULE_H_
#define WEBRE_RESTRUCTURE_CONSOLIDATION_RULE_H_

#include <cstddef>

#include "concepts/concept.h"
#include "concepts/constraints.h"
#include "xml/node.h"

namespace webre {

/// Statistics reported by the consolidation rule.
struct ConsolidationStats {
  /// Non-concept nodes deleted (childless markup).
  size_t nodes_deleted = 0;
  /// Non-concept nodes removed by pushing their children up (list tags /
  /// uniform children).
  size_t nodes_pushed_up = 0;
  /// Non-concept nodes replaced by their first concept child.
  size_t nodes_replaced = 0;
  /// Candidate replacement children skipped because a parent/ancestor
  /// constraint vetoed them (the rule then tried the next concept child,
  /// falling back to the first).
  size_t replacements_vetoed = 0;
};

/// Applies the consolidation rule (§2.3.2, Figure 1) bottom-up,
/// eliminating every remaining HTML markup node and temporary GROUP node
/// so that only concept elements survive:
///
///  - a non-concept node without children is deleted (its accumulated
///    `val` text is passed to its parent — no text is lost);
///  - a non-concept node that is a *list tag* (ul, dl, table, body, ...)
///    or whose children all carry the same element name is removed by
///    pushing its children up in its place;
///  - otherwise the node is replaced by its first concept child, whose
///    siblings become that child's children ("often the first object in
///    a group of semantically related objects describes the concept of
///    this group").
///
/// `concepts` decides which element names are concept nodes. The root is
/// never eliminated. When `constraints` is given, the replacement child
/// is the first concept child that may (per parent constraints) become an
/// ancestor of all its would-be children, falling back to the first
/// concept child.
ConsolidationStats ApplyConsolidationRule(
    Node* root, const ConceptSet& concepts,
    const ConstraintSet* constraints = nullptr);

}  // namespace webre

#endif  // WEBRE_RESTRUCTURE_CONSOLIDATION_RULE_H_
