#ifndef WEBRE_CONCEPTS_CONSTRAINTS_H_
#define WEBRE_CONCEPTS_CONSTRAINTS_H_

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

namespace webre {

/// Comparison used by a depth constraint.
enum class DepthRelation { kEq, kLt, kGt };

/// One optional concept constraint (§2.2):
///   parent(c1, c2)      — c1 is a (not necessarily direct) parent of c2
///   sibling(c1, c2)     — c1 and c2 occur at the same level
///   depth(c1) ⊙ d       — c1 occurs only at depths satisfying ⊙ d
/// Every predicate may be negated to state atypical properties.
///
/// Depth convention follows the paper's §4.2 counting: the document root
/// has depth 1, its children depth 2, and so on; "title names can only
/// occur as first level nodes" means their elements sit at depth 2 of the
/// label path (directly under the root). To keep the user-facing API in
/// the paper's language, Depth() takes the *concept level*: level 1 =
/// directly under the root.
struct ConceptConstraint {
  enum class Kind { kParent, kSibling, kDepth };

  Kind kind = Kind::kDepth;
  bool negated = false;
  std::string c1;
  std::string c2;  // unused for kDepth
  DepthRelation relation = DepthRelation::kEq;
  size_t level = 0;  // unused for kParent/kSibling

  static ConceptConstraint Parent(std::string parent, std::string child,
                                  bool negated = false);
  static ConceptConstraint Sibling(std::string a, std::string b,
                                   bool negated = false);
  static ConceptConstraint Depth(std::string concept_name,
                                 DepthRelation relation, size_t level,
                                 bool negated = false);

  /// Human-readable form, e.g. "parent(EDUCATION, DEGREE)" or
  /// "!depth(CONTACT) > 1".
  std::string ToString() const;
};

/// A collection of concept constraints plus the two built-in §4.2 rules,
/// used to prune the schema-discovery search space and to guide
/// restructuring decisions. Constraints are optional and need not be
/// complete (§2.2).
class ConstraintSet {
 public:
  ConstraintSet() = default;

  void Add(ConceptConstraint constraint);
  const std::vector<ConceptConstraint>& constraints() const {
    return constraints_;
  }

  /// §4.2: "a concept name cannot appear more than once along any label
  /// path". On by default there; off by default here — enable explicitly.
  void set_no_repeat_on_path(bool value) { no_repeat_on_path_ = value; }
  bool no_repeat_on_path() const { return no_repeat_on_path_; }

  /// §4.2: "no concept can occur at a depth greater than `max`" (concept
  /// levels, root excluded). 0 disables the limit.
  void set_max_level(size_t max) { max_level_ = max; }
  size_t max_level() const { return max_level_; }

  /// True iff concept `name` may occur at concept level `level`
  /// (1 = directly under the root) according to the depth constraints
  /// and max_level.
  bool AllowedAtLevel(std::string_view name, size_t level) const;

  /// True iff an element named `child` may appear somewhere below an
  /// element named `ancestor` (kParent constraints).
  bool AncestorAllowed(std::string_view ancestor,
                       std::string_view child) const;

  /// True iff `a` and `b` may be siblings (kSibling constraints with
  /// negation; positive sibling constraints are hints, not exclusions).
  bool SiblingAllowed(std::string_view a, std::string_view b) const;

  /// True iff there is a positive sibling(a, b) or sibling(b, a) hint.
  bool SiblingExpected(std::string_view a, std::string_view b) const;

  /// Checks a whole root-emanating label path `labels[0..n)` where
  /// labels[0] is the root. Applies depth constraints, parent
  /// constraints, the no-repeat rule and the level cap.
  bool PathAllowed(const std::vector<std::string>& labels) const;

 private:
  std::vector<ConceptConstraint> constraints_;
  bool no_repeat_on_path_ = false;
  size_t max_level_ = 0;
};

}  // namespace webre

#endif  // WEBRE_CONCEPTS_CONSTRAINTS_H_
