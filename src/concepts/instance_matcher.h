#ifndef WEBRE_CONCEPTS_INSTANCE_MATCHER_H_
#define WEBRE_CONCEPTS_INSTANCE_MATCHER_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "concepts/concept.h"

namespace webre {

/// The numeric shape of a word: `#year#`, `#num#`, `#ratio#`, or empty
/// when the word is not digit-like. Same rules as ExtractTokenFeatures
/// (kept here so concepts/ does not depend on classify/).
std::string_view NumericWordShape(std::string_view word);

/// A case-insensitive multi-pattern matcher over all instances of a
/// ConceptSet — the sub-linear replacement for the naive per-instance
/// rescan (ConceptSet::MatchAllNaive).
///
/// Keyword instances and concept names are compiled into one
/// Aho–Corasick automaton, lowered to a dense DFA over the bytes that
/// actually occur in patterns, so scanning is a single O(|text|) pass
/// with O(1) transitions plus output work proportional to the number of
/// hits. The naive scanner's word-boundary rule is applied as a
/// post-filter on each automaton hit, and shape instances
/// (`#num#`/`#year#`/`#ratio#`) are matched by one digit-run scan shared
/// across all shape patterns — so the candidate set is exactly the one
/// the naive scan produces.
///
/// Immutable after construction and therefore freely shareable across
/// threads. Emitted InstanceMatch::concept_name views point into names
/// owned by this matcher, so a match outlives the ConceptSet's own
/// storage as long as the matcher is alive.
class InstanceMatcher {
 public:
  /// Compiles the automaton for `concepts` (indices into this vector
  /// become InstanceMatch::concept_index). Each concept contributes its
  /// name plus every keyword instance as automaton patterns and every
  /// shape instance to the shape scan; empty patterns are ignored.
  explicit InstanceMatcher(const std::vector<Concept>& concepts);

  /// Appends every word-boundary keyword occurrence and every shape
  /// match in `text` to `out`. Candidates are unordered and may overlap;
  /// callers select among them (ConceptSet::MatchAll).
  void CollectCandidates(std::string_view text,
                         std::vector<InstanceMatch>& out) const;

  /// Number of DFA states (diagnostics / bench reporting).
  size_t state_count() const { return state_count_; }
  /// Number of compiled keyword patterns (after dedup).
  size_t pattern_count() const { return pattern_count_; }

 private:
  struct Output {
    uint32_t length;
    uint32_t concept_index;
  };
  struct ShapePattern {
    std::string shape;
    uint32_t concept_index;
  };

  // Dense DFA: transitions_[state * alphabet_size_ + symbol_[byte]].
  // Symbol 0 is "byte not in any pattern", whose transition is always
  // the root state.
  std::vector<int32_t> transitions_;
  // Per state, outputs_[output_begin_[s] .. output_begin_[s + 1]) in
  // the flat outputs_ vector (failure-link outputs pre-merged).
  std::vector<Output> outputs_;
  std::vector<uint32_t> output_begin_;
  uint8_t symbol_[256] = {};
  size_t alphabet_size_ = 1;
  size_t state_count_ = 1;
  size_t pattern_count_ = 0;

  std::vector<ShapePattern> shapes_;
  // Concept names owned here, indexed by concept_index.
  std::vector<std::string> names_;
};

}  // namespace webre

#endif  // WEBRE_CONCEPTS_INSTANCE_MATCHER_H_
