#include "concepts/resume_domain.h"

namespace webre {

ConceptSet ResumeConcepts() {
  ConceptSet set;

  // ---- 11 title concepts (74 instances) -------------------------------
  set.Add({"CONTACT",
           {"contact", "contact information", "contact info", "address",
            "personal information", "personal data", "personal details"}});
  set.Add({"OBJECTIVE",
           {"objective", "career objective", "goal", "career goal",
            "professional objective", "employment objective",
            "position desired"}});
  set.Add({"EDUCATION",
           {"education", "educational background", "academic background",
            "academic history", "qualifications", "schooling", "degrees"}});
  set.Add({"EXPERIENCE",
           {"experience", "work experience", "employment",
            "employment history", "work history", "professional experience",
            "career history", "positions held"}});
  set.Add({"SKILLS",
           {"skills", "technical skills", "computer skills",
            "programming skills", "skill set", "technical summary",
            "areas of expertise", "competencies"}});
  set.Add({"AWARDS",
           {"awards", "honors", "honours", "achievements", "distinctions",
            "scholarships", "fellowships"}});
  set.Add({"ACTIVITIES",
           {"activities", "extracurricular activities", "interests",
            "hobbies", "volunteer work", "community service",
            "memberships"}});
  set.Add({"REFERENCE",
           {"reference", "references", "referees",
            "references available upon request", "recommendations"}});
  set.Add({"COURSES",
           {"courses", "coursework", "relevant courses",
            "relevant coursework", "courses taken", "selected courses",
            "course work"}});
  set.Add({"PUBLICATIONS",
           {"publications", "papers", "published works", "articles",
            "research papers"}});
  set.Add({"SUMMARY",
           {"summary", "profile", "professional summary",
            "summary of qualifications", "overview", "highlights"}});

  // ---- 13 content concepts (159 instances) ----------------------------
  set.Add({"INSTITUTION",
           {"university", "college", "institute", "school", "academy",
            "polytechnic", "institute of technology", "univ"}});
  set.Add({"DEGREE",
           {"b.s.",      "bs",        "b.a.",
            "ba",        "m.s.",      "ms",
            "m.a.",      "ma",        "ph.d.",
            "phd",       "mba",       "b.sc.",
            "m.sc.",     "bachelor",  "bachelors",
            "bachelor of science",    "bachelor of arts",
            "master",    "masters",   "master of science",
            "master of arts",         "doctorate",
            "doctor of philosophy",   "associate",
            "diploma"}});
  set.Add({"DATE",
           {"january", "february", "march",     "april",   "may",
            "june",    "july",     "august",    "september", "october",
            "november", "december", "jan",      "feb",     "mar",
            "apr",     "jun",      "jul",       "aug",     "sep",
            "oct",     "nov",      "dec",       "present", "spring",
            "summer",  "fall",     "#year#"}});
  set.Add({"GPA",
           {"gpa", "g.p.a.", "grade point average", "cum laude",
            "magna cum laude", "summa cum laude", "#ratio#"}});
  set.Add({"MAJOR",
           {"major", "computer science", "electrical engineering",
            "mechanical engineering", "mathematics", "physics", "chemistry",
            "biology", "economics", "business administration", "minor"}});
  set.Add({"COMPANY",
           {"inc", "inc.", "corp", "corporation", "company", "llc", "ltd",
            "laboratories", "labs", "systems", "technologies", "software",
            "consulting", "solutions", "enterprises"}});
  set.Add({"JOBTITLE",
           {"engineer", "software engineer", "developer", "programmer",
            "analyst", "consultant", "manager", "director", "intern",
            "research assistant", "teaching assistant", "architect",
            "specialist", "technician", "designer"}});
  set.Add({"LOCATION",
           {"california", "new york", "texas", "washington", "boston",
            "san francisco", "san jose", "seattle", "chicago", "austin",
            "atlanta", "denver"}});
  set.Add({"EMAIL", {"email", "e-mail", "mailto"}});
  set.Add({"PHONE", {"phone", "telephone", "tel", "cell", "mobile", "fax"}});
  set.Add({"NAME", {"name", "resume of", "curriculum vitae", "vitae", "cv"}});
  set.Add({"COURSE",
           {"algorithms", "data structures", "operating systems",
            "databases", "compilers", "computer networks",
            "artificial intelligence", "machine learning",
            "computer architecture", "discrete mathematics",
            "linear algebra", "calculus"}});
  set.Add({"LANGUAGE",
           {"c++", "java", "python", "perl", "fortran", "pascal",
            "javascript", "html", "xml", "sql", "unix", "linux"}});

  return set;
}

std::vector<std::string> ResumeTitleConceptNames() {
  return {"CONTACT",   "OBJECTIVE",    "EDUCATION", "EXPERIENCE",
          "SKILLS",    "AWARDS",       "ACTIVITIES", "REFERENCE",
          "COURSES",   "PUBLICATIONS", "SUMMARY"};
}

std::vector<std::string> ResumeContentConceptNames() {
  return {"INSTITUTION", "DEGREE", "DATE",     "GPA",   "MAJOR",
          "COMPANY",     "JOBTITLE", "LOCATION", "EMAIL", "PHONE",
          "NAME",        "COURSE", "LANGUAGE"};
}

ConstraintSet ResumeConstraints() {
  ConstraintSet constraints;
  for (const std::string& title : ResumeTitleConceptNames()) {
    constraints.Add(
        ConceptConstraint::Depth(title, DepthRelation::kEq, 1));
  }
  for (const std::string& content : ResumeContentConceptNames()) {
    constraints.Add(
        ConceptConstraint::Depth(content, DepthRelation::kGt, 1));
  }
  constraints.set_no_repeat_on_path(true);
  constraints.set_max_level(3);
  return constraints;
}

}  // namespace webre
