#include "concepts/concept.h"

#include <algorithm>

#include "util/strings.h"

namespace webre {

bool Concept::IsShapeInstance(std::string_view instance) {
  return instance.size() >= 3 && instance.front() == '#' &&
         instance.back() == '#';
}

void ConceptSet::Add(Concept concept_def) {
  for (Concept& existing : concepts_) {
    if (existing.name == concept_def.name) {
      existing = std::move(concept_def);
      return;
    }
  }
  concepts_.push_back(std::move(concept_def));
}

const Concept* ConceptSet::Find(std::string_view name) const {
  for (const Concept& c : concepts_) {
    if (c.name == name) return &c;
  }
  return nullptr;
}

bool ConceptSet::Contains(std::string_view name) const {
  return Find(name) != nullptr;
}

size_t ConceptSet::TotalInstanceCount() const {
  size_t total = 0;
  for (const Concept& c : concepts_) total += c.instances.size();
  return total;
}

namespace {

// Appends all word-boundary, case-insensitive occurrences of `needle`.
void FindKeywordMatches(std::string_view text, std::string_view needle,
                        size_t concept_index, std::string_view concept_name,
                        std::vector<InstanceMatch>& out) {
  if (needle.empty() || needle.size() > text.size()) return;
  for (size_t i = 0; i + needle.size() <= text.size(); ++i) {
    size_t j = 0;
    while (j < needle.size() &&
           AsciiToLower(text[i + j]) == AsciiToLower(needle[j])) {
      ++j;
    }
    if (j != needle.size()) continue;
    const bool left_ok = i == 0 || !IsAsciiAlnum(text[i - 1]);
    const size_t end = i + needle.size();
    const bool right_ok = end >= text.size() || !IsAsciiAlnum(text[end]);
    if (left_ok && right_ok) {
      out.push_back(InstanceMatch{concept_index, concept_name, i,
                                  needle.size()});
    }
  }
}

// Numeric shape of a word (same rules as ExtractTokenFeatures, kept local
// so concepts/ does not depend on classify/).
std::string_view WordShape(std::string_view word) {
  bool any_digit = false;
  bool all_digits = true;
  bool ratio_chars = false;
  for (char c : word) {
    if (IsAsciiDigit(c)) {
      any_digit = true;
    } else {
      all_digits = false;
      if (c == '.' || c == '/') {
        ratio_chars = true;
      } else {
        return {};
      }
    }
  }
  if (!any_digit) return {};
  if (all_digits) {
    if (word.size() == 4 && (word[0] == '1' || word[0] == '2') &&
        (word[1] == '9' || word[1] == '0')) {
      return "#year#";
    }
    return "#num#";
  }
  if (ratio_chars) return "#ratio#";
  return "#num#";
}

// Appends matches of a shape instance: every maximal digit-ish word in
// `text` whose shape equals `shape`.
void FindShapeMatches(std::string_view text, std::string_view shape,
                      size_t concept_index, std::string_view concept_name,
                      std::vector<InstanceMatch>& out) {
  size_t i = 0;
  while (i < text.size()) {
    if (!IsAsciiDigit(text[i])) {
      ++i;
      continue;
    }
    // Expand a digit/period/slash run; require word boundaries.
    size_t begin = i;
    size_t end = i;
    while (end < text.size() &&
           (IsAsciiDigit(text[end]) || text[end] == '.' || text[end] == '/')) {
      ++end;
    }
    // Trim trailing periods/slashes (sentence punctuation).
    while (end > begin && (text[end - 1] == '.' || text[end - 1] == '/')) {
      --end;
    }
    const bool left_ok = begin == 0 || !IsAsciiAlnum(text[begin - 1]);
    const bool right_ok = end >= text.size() || !IsAsciiAlnum(text[end]);
    if (left_ok && right_ok && end > begin &&
        WordShape(text.substr(begin, end - begin)) == shape) {
      out.push_back(
          InstanceMatch{concept_index, concept_name, begin, end - begin});
    }
    i = end + 1;
  }
}

}  // namespace

std::vector<InstanceMatch> ConceptSet::MatchAll(std::string_view text) const {
  std::vector<InstanceMatch> candidates;
  for (size_t ci = 0; ci < concepts_.size(); ++ci) {
    const Concept& concept_def = concepts_[ci];
    FindKeywordMatches(text, concept_def.name, ci, concept_def.name, candidates);
    for (const std::string& instance : concept_def.instances) {
      if (Concept::IsShapeInstance(instance)) {
        FindShapeMatches(text, instance, ci, concept_def.name, candidates);
      } else {
        FindKeywordMatches(text, instance, ci, concept_def.name, candidates);
      }
    }
  }
  // Prefer longer matches, then earlier; drop overlaps.
  std::sort(candidates.begin(), candidates.end(),
            [](const InstanceMatch& a, const InstanceMatch& b) {
              if (a.length != b.length) return a.length > b.length;
              if (a.position != b.position) return a.position < b.position;
              return a.concept_index < b.concept_index;
            });
  std::vector<InstanceMatch> selected;
  for (const InstanceMatch& m : candidates) {
    bool overlaps = false;
    for (const InstanceMatch& s : selected) {
      if (m.position < s.position + s.length &&
          s.position < m.position + m.length) {
        overlaps = true;
        break;
      }
    }
    if (!overlaps) selected.push_back(m);
  }
  std::sort(selected.begin(), selected.end(),
            [](const InstanceMatch& a, const InstanceMatch& b) {
              return a.position < b.position;
            });
  return selected;
}

InstanceMatch ConceptSet::MatchFirst(std::string_view text) const {
  std::vector<InstanceMatch> all = MatchAll(text);
  if (all.empty()) return InstanceMatch{};
  return all.front();
}

}  // namespace webre
