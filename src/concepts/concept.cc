#include "concepts/concept.h"

#include <algorithm>

#include "concepts/instance_matcher.h"
#include "util/strings.h"

namespace webre {

bool Concept::IsShapeInstance(std::string_view instance) {
  return instance.size() >= 3 && instance.front() == '#' &&
         instance.back() == '#';
}

void ConceptSet::Add(Concept concept_def) {
  auto it = index_.find(std::string_view(concept_def.name));
  if (it != index_.end()) {
    concepts_[it->second] = std::move(concept_def);
  } else {
    index_.emplace(concept_def.name, concepts_.size());
    concepts_.push_back(std::move(concept_def));
  }
  matcher_ = std::make_shared<const InstanceMatcher>(concepts_);
}

size_t ConceptSet::IndexOf(std::string_view name) const {
  auto it = index_.find(name);
  return it == index_.end() ? kNpos : it->second;
}

const Concept* ConceptSet::Find(std::string_view name) const {
  const size_t index = IndexOf(name);
  return index == kNpos ? nullptr : &concepts_[index];
}

bool ConceptSet::Contains(std::string_view name) const {
  return IndexOf(name) != kNpos;
}

size_t ConceptSet::TotalInstanceCount() const {
  size_t total = 0;
  for (const Concept& c : concepts_) total += c.instances.size();
  return total;
}

namespace {

// Appends all word-boundary, case-insensitive occurrences of `needle`.
void FindKeywordMatches(std::string_view text, std::string_view needle,
                        size_t concept_index, std::string_view concept_name,
                        std::vector<InstanceMatch>& out) {
  if (needle.empty() || needle.size() > text.size()) return;
  for (size_t i = 0; i + needle.size() <= text.size(); ++i) {
    size_t j = 0;
    while (j < needle.size() &&
           AsciiToLower(text[i + j]) == AsciiToLower(needle[j])) {
      ++j;
    }
    if (j != needle.size()) continue;
    const bool left_ok = i == 0 || !IsAsciiAlnum(text[i - 1]);
    const size_t end = i + needle.size();
    const bool right_ok = end >= text.size() || !IsAsciiAlnum(text[end]);
    if (left_ok && right_ok) {
      out.push_back(InstanceMatch{concept_index, concept_name, i,
                                  needle.size()});
    }
  }
}

// Appends matches of a shape instance: every maximal digit-ish word in
// `text` whose shape equals `shape`.
void FindShapeMatches(std::string_view text, std::string_view shape,
                      size_t concept_index, std::string_view concept_name,
                      std::vector<InstanceMatch>& out) {
  size_t i = 0;
  while (i < text.size()) {
    if (!IsAsciiDigit(text[i])) {
      ++i;
      continue;
    }
    // Expand a digit/period/slash run; require word boundaries.
    size_t begin = i;
    size_t end = i;
    while (end < text.size() &&
           (IsAsciiDigit(text[end]) || text[end] == '.' || text[end] == '/')) {
      ++end;
    }
    // Trim trailing periods/slashes (sentence punctuation).
    while (end > begin && (text[end - 1] == '.' || text[end - 1] == '/')) {
      --end;
    }
    const bool left_ok = begin == 0 || !IsAsciiAlnum(text[begin - 1]);
    const bool right_ok = end >= text.size() || !IsAsciiAlnum(text[end]);
    if (left_ok && right_ok && end > begin &&
        NumericWordShape(text.substr(begin, end - begin)) == shape) {
      out.push_back(
          InstanceMatch{concept_index, concept_name, begin, end - begin});
    }
    i = end + 1;
  }
}

// Resolves overlapping candidates: prefer longer matches, then earlier,
// then lower concept index; returns survivors sorted by position. Shared
// by the automaton-backed and naive paths so both produce identical
// results by construction.
std::vector<InstanceMatch> SelectNonOverlapping(
    std::vector<InstanceMatch>& candidates) {
  std::sort(candidates.begin(), candidates.end(),
            [](const InstanceMatch& a, const InstanceMatch& b) {
              if (a.length != b.length) return a.length > b.length;
              if (a.position != b.position) return a.position < b.position;
              return a.concept_index < b.concept_index;
            });
  std::vector<InstanceMatch> selected;
  for (const InstanceMatch& m : candidates) {
    bool overlaps = false;
    for (const InstanceMatch& s : selected) {
      if (m.position < s.position + s.length &&
          s.position < m.position + m.length) {
        overlaps = true;
        break;
      }
    }
    if (!overlaps) selected.push_back(m);
  }
  std::sort(selected.begin(), selected.end(),
            [](const InstanceMatch& a, const InstanceMatch& b) {
              return a.position < b.position;
            });
  return selected;
}

}  // namespace

std::vector<InstanceMatch> ConceptSet::MatchAll(std::string_view text) const {
  if (matcher_ == nullptr) return {};
  std::vector<InstanceMatch> candidates;
  matcher_->CollectCandidates(text, candidates);
  return SelectNonOverlapping(candidates);
}

std::vector<InstanceMatch> ConceptSet::MatchAllNaive(
    std::string_view text) const {
  std::vector<InstanceMatch> candidates;
  for (size_t ci = 0; ci < concepts_.size(); ++ci) {
    const Concept& concept_def = concepts_[ci];
    FindKeywordMatches(text, concept_def.name, ci, concept_def.name,
                       candidates);
    for (const std::string& instance : concept_def.instances) {
      if (Concept::IsShapeInstance(instance)) {
        FindShapeMatches(text, instance, ci, concept_def.name, candidates);
      } else {
        FindKeywordMatches(text, instance, ci, concept_def.name, candidates);
      }
    }
  }
  return SelectNonOverlapping(candidates);
}

InstanceMatch ConceptSet::MatchFirst(std::string_view text) const {
  std::vector<InstanceMatch> all = MatchAll(text);
  if (all.empty()) return InstanceMatch{};
  return all.front();
}

}  // namespace webre
