#include "concepts/instance_matcher.h"

#include <algorithm>
#include <deque>
#include <set>
#include <utility>

#include "util/strings.h"

namespace webre {

std::string_view NumericWordShape(std::string_view word) {
  bool any_digit = false;
  bool all_digits = true;
  bool ratio_chars = false;
  for (char c : word) {
    if (IsAsciiDigit(c)) {
      any_digit = true;
    } else {
      all_digits = false;
      if (c == '.' || c == '/') {
        ratio_chars = true;
      } else {
        return {};
      }
    }
  }
  if (!any_digit) return {};
  if (all_digits) {
    if (word.size() == 4 && (word[0] == '1' || word[0] == '2') &&
        (word[1] == '9' || word[1] == '0')) {
      return "#year#";
    }
    return "#num#";
  }
  if (ratio_chars) return "#ratio#";
  return "#num#";
}

InstanceMatcher::InstanceMatcher(const std::vector<Concept>& concepts) {
  names_.reserve(concepts.size());
  for (const Concept& c : concepts) names_.push_back(c.name);

  // Gather the deduplicated (lowercased pattern, concept) pairs. The
  // naive scan emits identical duplicate candidates for a repeated
  // instance; overlap selection then drops them, so deduplicating here
  // preserves MatchAll's result exactly.
  std::set<std::pair<std::string, uint32_t>> keywords;
  std::set<std::pair<std::string, uint32_t>> shapes;
  for (size_t ci = 0; ci < concepts.size(); ++ci) {
    const Concept& c = concepts[ci];
    const uint32_t index = static_cast<uint32_t>(ci);
    if (!c.name.empty()) keywords.emplace(AsciiLower(c.name), index);
    for (const std::string& instance : c.instances) {
      if (instance.empty()) continue;
      if (Concept::IsShapeInstance(instance)) {
        shapes.emplace(instance, index);
      } else {
        keywords.emplace(AsciiLower(instance), index);
      }
    }
  }
  for (const auto& [shape, index] : shapes) {
    shapes_.push_back(ShapePattern{shape, index});
  }
  pattern_count_ = keywords.size();

  // Alphabet: only bytes that occur in some pattern get a symbol;
  // everything else maps to symbol 0, whose transition is pinned to the
  // root state.
  for (const auto& [pattern, index] : keywords) {
    for (char c : pattern) {
      symbol_[static_cast<unsigned char>(c)] = 1;
    }
  }
  for (size_t b = 0; b < 256; ++b) {
    if (symbol_[b] != 0) symbol_[b] = static_cast<uint8_t>(alphabet_size_++);
  }

  // Trie construction over (state × symbol), -1 for absent edges.
  std::vector<int32_t> trie(alphabet_size_, -1);
  std::vector<std::vector<Output>> node_outputs(1);
  auto add_state = [&]() {
    trie.resize(trie.size() + alphabet_size_, -1);
    node_outputs.emplace_back();
    return static_cast<int32_t>(node_outputs.size() - 1);
  };
  for (const auto& [pattern, index] : keywords) {
    int32_t state = 0;
    for (char c : pattern) {
      const size_t a = symbol_[static_cast<unsigned char>(c)];
      int32_t next = trie[state * alphabet_size_ + a];
      if (next < 0) {
        next = add_state();  // resizes trie — index afresh below
        trie[state * alphabet_size_ + a] = next;
      }
      state = next;
    }
    node_outputs[state].push_back(
        Output{static_cast<uint32_t>(pattern.size()), index});
  }
  state_count_ = node_outputs.size();

  // BFS: resolve failure links directly into the dense transition table
  // (goto-with-failure collapses to a DFA) and merge suffix outputs so
  // matching never walks failure chains.
  transitions_ = trie;
  std::vector<int32_t> fail(state_count_, 0);
  std::deque<int32_t> queue;
  for (size_t a = 0; a < alphabet_size_; ++a) {
    int32_t& child = transitions_[a];
    if (child < 0) {
      child = 0;
    } else {
      fail[child] = 0;
      queue.push_back(child);
    }
  }
  while (!queue.empty()) {
    const int32_t state = queue.front();
    queue.pop_front();
    const std::vector<Output>& suffix = node_outputs[fail[state]];
    node_outputs[state].insert(node_outputs[state].end(), suffix.begin(),
                               suffix.end());
    for (size_t a = 0; a < alphabet_size_; ++a) {
      int32_t& child = transitions_[state * alphabet_size_ + a];
      const int32_t via_fail = transitions_[fail[state] * alphabet_size_ + a];
      if (child < 0) {
        child = via_fail;
      } else {
        fail[child] = via_fail;
        queue.push_back(child);
      }
    }
  }

  // Flatten per-state outputs for cache-friendly emission.
  output_begin_.assign(state_count_ + 1, 0);
  size_t total = 0;
  for (size_t s = 0; s < state_count_; ++s) {
    output_begin_[s] = static_cast<uint32_t>(total);
    total += node_outputs[s].size();
  }
  output_begin_[state_count_] = static_cast<uint32_t>(total);
  outputs_.reserve(total);
  for (const std::vector<Output>& node : node_outputs) {
    outputs_.insert(outputs_.end(), node.begin(), node.end());
  }
}

void InstanceMatcher::CollectCandidates(std::string_view text,
                                        std::vector<InstanceMatch>& out) const {
  // Keyword pass: one DFA sweep, boundary checks only on hits.
  int32_t state = 0;
  for (size_t i = 0; i < text.size(); ++i) {
    const size_t a = symbol_[static_cast<unsigned char>(
        AsciiToLower(text[i]))];
    state = transitions_[state * alphabet_size_ + a];
    const uint32_t begin = output_begin_[state];
    const uint32_t end = output_begin_[state + 1];
    for (uint32_t o = begin; o < end; ++o) {
      const Output& output = outputs_[o];
      const size_t pos = i + 1 - output.length;
      const bool left_ok = pos == 0 || !IsAsciiAlnum(text[pos - 1]);
      const bool right_ok =
          i + 1 >= text.size() || !IsAsciiAlnum(text[i + 1]);
      if (left_ok && right_ok) {
        out.push_back(InstanceMatch{output.concept_index,
                                    names_[output.concept_index], pos,
                                    output.length});
      }
    }
  }

  if (shapes_.empty()) return;
  // Shape pass: one scan over maximal digit-ish runs, shared by every
  // shape pattern (identical run/trim/boundary rules to the naive
  // FindShapeMatches).
  size_t i = 0;
  while (i < text.size()) {
    if (!IsAsciiDigit(text[i])) {
      ++i;
      continue;
    }
    const size_t begin = i;
    size_t end = i;
    while (end < text.size() &&
           (IsAsciiDigit(text[end]) || text[end] == '.' ||
            text[end] == '/')) {
      ++end;
    }
    while (end > begin && (text[end - 1] == '.' || text[end - 1] == '/')) {
      --end;
    }
    const bool left_ok = begin == 0 || !IsAsciiAlnum(text[begin - 1]);
    const bool right_ok = end >= text.size() || !IsAsciiAlnum(text[end]);
    if (left_ok && right_ok && end > begin) {
      const std::string_view shape =
          NumericWordShape(text.substr(begin, end - begin));
      if (!shape.empty()) {
        for (const ShapePattern& pattern : shapes_) {
          if (pattern.shape == shape) {
            out.push_back(InstanceMatch{pattern.concept_index,
                                        names_[pattern.concept_index], begin,
                                        end - begin});
          }
        }
      }
    }
    i = end + 1;
  }
}

}  // namespace webre
