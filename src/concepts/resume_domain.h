#ifndef WEBRE_CONCEPTS_RESUME_DOMAIN_H_
#define WEBRE_CONCEPTS_RESUME_DOMAIN_H_

#include <string>
#include <vector>

#include "concepts/concept.h"
#include "concepts/constraints.h"

namespace webre {

/// Bundled domain knowledge for the paper's evaluation topic: resumes
/// marked up in HTML (§4). Mirrors the paper's setup exactly in size —
/// "There are 24 concept names and a total of 233 concept instances
/// specified as domain knowledge" — with 11 *title* concepts (likely
/// section titles, constrained to the first level under the root) and
/// 13 *content* concepts (constrained to deeper levels), as in §4.2.

/// The 24-concept resume ConceptSet (233 instances).
ConceptSet ResumeConcepts();

/// Names of the 11 title concepts (CONTACT, OBJECTIVE, EDUCATION, ...).
std::vector<std::string> ResumeTitleConceptNames();

/// Names of the 13 content concepts (INSTITUTION, DEGREE, DATE, ...).
std::vector<std::string> ResumeContentConceptNames();

/// The §4.2 constraint set: title concepts at level 1 only, content
/// concepts at level > 1, no concept repeated along a label path, and no
/// concept below level 3 (the paper's "depth greater than 4" with the
/// root at depth 1).
ConstraintSet ResumeConstraints();

}  // namespace webre

#endif  // WEBRE_CONCEPTS_RESUME_DOMAIN_H_
