#ifndef WEBRE_CONCEPTS_CONCEPT_H_
#define WEBRE_CONCEPTS_CONCEPT_H_

#include <cstddef>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace webre {

class InstanceMatcher;

/// A topic-specific concept (§2.2): the element-name vocabulary for the
/// XML documents produced by document conversion, together with its
/// *concept instances* — "text patterns and keywords as they might occur
/// in topic specific HTML documents".
///
/// Two kinds of instances are supported:
///  - keyword instances ("University", "B.S.") match case-insensitively
///    at word boundaries inside a token;
///  - shape instances, written `#year#`, `#num#` or `#ratio#`, match a
///    word of that numeric shape (see ExtractTokenFeatures), so DATE can
///    match "June 1996" via `#year#` and GPA can match "3.8/4.0" via
///    `#ratio#` without enumerating every number.
struct Concept {
  /// Element name used in output XML documents; by convention uppercase
  /// so concept elements never collide with lowercased HTML tags.
  std::string name;
  /// Concept instances. The concept's own name is always treated as an
  /// implicit additional instance (§2.2: the instance set "also includes
  /// the name of the concept").
  std::vector<std::string> instances;

  /// True if `instance` is a shape pattern (`#...#`).
  static bool IsShapeInstance(std::string_view instance);
};

/// One located match of a concept instance inside a token's text.
struct InstanceMatch {
  /// Index into the owning ConceptSet.
  size_t concept_index = 0;
  /// Concept name (uppercase).
  std::string_view concept_name;
  /// Byte offset of the match in the searched text.
  size_t position = 0;
  /// Byte length of the matched text.
  size_t length = 0;
  /// True when the match came from the Bayes classifier rather than
  /// synonym/shape matching (observability: the per-rule counters split
  /// identified tokens by recognizer, §2.3.1's two strategies).
  bool via_bayes = false;
};

/// The set `Con` of topic concepts provided by the user (§2.2).
///
/// Mutation (Add) is setup-time only; every const member is safe to call
/// from concurrent threads once the set is built, which is what lets the
/// parallel pipeline share one ConceptSet across workers.
class ConceptSet {
 public:
  /// Sentinel returned by IndexOf for unknown names.
  static constexpr size_t kNpos = static_cast<size_t>(-1);

  ConceptSet() = default;

  /// Adds a concept. Names must be unique; a duplicate name replaces the
  /// previous definition. Rebuilds the instance matcher, so adds are
  /// O(total instances) — fine for setup-time concept-set construction.
  void Add(Concept concept_def);

  size_t size() const { return concepts_.size(); }
  bool empty() const { return concepts_.empty(); }
  const Concept& at(size_t i) const { return concepts_[i]; }
  const std::vector<Concept>& concepts() const { return concepts_; }

  /// Returns the index of the concept named `name` (case-sensitive), or
  /// kNpos. O(1) via the name index.
  size_t IndexOf(std::string_view name) const;
  /// Returns the concept named `name` (case-sensitive), or null.
  const Concept* Find(std::string_view name) const;
  /// True iff `name` names a concept in this set.
  bool Contains(std::string_view name) const;

  /// Total number of instances across all concepts (implicit name
  /// instances not counted).
  size_t TotalInstanceCount() const;

  /// Finds all non-overlapping concept-instance matches in `text`,
  /// sorted by position. Overlaps are resolved in favour of longer
  /// matches, then earlier ones; at most one match is reported per text
  /// span. This powers the concept instance rule (§2.3.1), including the
  /// multi-instance token decomposition case.
  ///
  /// Backed by the Aho–Corasick InstanceMatcher: one O(|text|) automaton
  /// sweep instead of a rescan per instance.
  std::vector<InstanceMatch> MatchAll(std::string_view text) const;

  /// Reference implementation of MatchAll: the original per-instance
  /// O(|text| × Σ|instance|) scan. Kept for differential testing and the
  /// matcher micro-bench; results are identical to MatchAll.
  std::vector<InstanceMatch> MatchAllNaive(std::string_view text) const;

  /// Convenience: the first (leftmost) match, or a match with
  /// `length == 0` if none.
  InstanceMatch MatchFirst(std::string_view text) const;

  /// The compiled matcher (null for an empty set); exposed for bench
  /// diagnostics.
  const InstanceMatcher* matcher() const { return matcher_.get(); }

 private:
  struct TransparentHash {
    using is_transparent = void;
    size_t operator()(std::string_view s) const noexcept {
      return std::hash<std::string_view>{}(s);
    }
  };

  std::vector<Concept> concepts_;
  /// name → index into concepts_, kept in sync by Add.
  std::unordered_map<std::string, size_t, TransparentHash, std::equal_to<>>
      index_;
  /// Immutable compiled matcher, rebuilt by Add and shared by copies of
  /// this set (it owns its own copies of the concept names).
  std::shared_ptr<const InstanceMatcher> matcher_;
};

}  // namespace webre

#endif  // WEBRE_CONCEPTS_CONCEPT_H_
