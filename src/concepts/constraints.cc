#include "concepts/constraints.h"

namespace webre {

ConceptConstraint ConceptConstraint::Parent(std::string parent,
                                            std::string child, bool negated) {
  ConceptConstraint c;
  c.kind = Kind::kParent;
  c.negated = negated;
  c.c1 = std::move(parent);
  c.c2 = std::move(child);
  return c;
}

ConceptConstraint ConceptConstraint::Sibling(std::string a, std::string b,
                                             bool negated) {
  ConceptConstraint c;
  c.kind = Kind::kSibling;
  c.negated = negated;
  c.c1 = std::move(a);
  c.c2 = std::move(b);
  return c;
}

ConceptConstraint ConceptConstraint::Depth(std::string concept_name,
                                           DepthRelation relation,
                                           size_t level, bool negated) {
  ConceptConstraint c;
  c.kind = Kind::kDepth;
  c.negated = negated;
  c.c1 = std::move(concept_name);
  c.relation = relation;
  c.level = level;
  return c;
}

std::string ConceptConstraint::ToString() const {
  std::string out;
  if (negated) out.push_back('!');
  switch (kind) {
    case Kind::kParent:
      out += "parent(" + c1 + ", " + c2 + ")";
      break;
    case Kind::kSibling:
      out += "sibling(" + c1 + ", " + c2 + ")";
      break;
    case Kind::kDepth: {
      const char* rel = relation == DepthRelation::kEq
                            ? " = "
                            : relation == DepthRelation::kLt ? " < " : " > ";
      out += "depth(" + c1 + ")" + rel + std::to_string(level);
      break;
    }
  }
  return out;
}

void ConstraintSet::Add(ConceptConstraint constraint) {
  constraints_.push_back(std::move(constraint));
}

namespace {

bool DepthSatisfied(DepthRelation relation, size_t level, size_t bound) {
  switch (relation) {
    case DepthRelation::kEq:
      return level == bound;
    case DepthRelation::kLt:
      return level < bound;
    case DepthRelation::kGt:
      return level > bound;
  }
  return true;
}

}  // namespace

bool ConstraintSet::AllowedAtLevel(std::string_view name,
                                   size_t level) const {
  if (max_level_ > 0 && level > max_level_) return false;
  for (const ConceptConstraint& c : constraints_) {
    if (c.kind != ConceptConstraint::Kind::kDepth || c.c1 != name) continue;
    const bool satisfied = DepthSatisfied(c.relation, level, c.level);
    if (c.negated ? satisfied : !satisfied) return false;
  }
  return true;
}

bool ConstraintSet::AncestorAllowed(std::string_view ancestor,
                                    std::string_view child) const {
  for (const ConceptConstraint& c : constraints_) {
    if (c.kind != ConceptConstraint::Kind::kParent) continue;
    // Negated parent(c1, c2): c1 must never be an ancestor of c2.
    if (c.negated && c.c1 == ancestor && c.c2 == child) return false;
  }
  return true;
}

bool ConstraintSet::SiblingAllowed(std::string_view a,
                                   std::string_view b) const {
  for (const ConceptConstraint& c : constraints_) {
    if (c.kind != ConceptConstraint::Kind::kSibling || !c.negated) continue;
    if ((c.c1 == a && c.c2 == b) || (c.c1 == b && c.c2 == a)) return false;
  }
  return true;
}

bool ConstraintSet::SiblingExpected(std::string_view a,
                                    std::string_view b) const {
  for (const ConceptConstraint& c : constraints_) {
    if (c.kind != ConceptConstraint::Kind::kSibling || c.negated) continue;
    if ((c.c1 == a && c.c2 == b) || (c.c1 == b && c.c2 == a)) return true;
  }
  return false;
}

bool ConstraintSet::PathAllowed(const std::vector<std::string>& labels) const {
  // labels[0] is the root (concept level 0); labels[i] has concept
  // level i.
  for (size_t i = 1; i < labels.size(); ++i) {
    if (!AllowedAtLevel(labels[i], i)) return false;
  }
  if (no_repeat_on_path_) {
    for (size_t i = 0; i < labels.size(); ++i) {
      for (size_t j = i + 1; j < labels.size(); ++j) {
        if (labels[i] == labels[j]) return false;
      }
    }
  }
  // Parent constraints along the path.
  for (const ConceptConstraint& c : constraints_) {
    if (c.kind != ConceptConstraint::Kind::kParent) continue;
    for (size_t j = 0; j < labels.size(); ++j) {
      if (labels[j] != c.c2) continue;
      bool has_ancestor = false;
      for (size_t i = 0; i < j; ++i) {
        if (labels[i] == c.c1) {
          has_ancestor = true;
          break;
        }
      }
      if (c.negated) {
        // c1 must NOT be an ancestor of c2.
        if (has_ancestor) return false;
      } else {
        // Positive parent(c1, c2): every occurrence of c2 must have c1
        // above it. Only enforceable once c2 is not the path's leaf-root.
        if (j > 0 && !has_ancestor) return false;
      }
    }
  }
  return true;
}

}  // namespace webre
