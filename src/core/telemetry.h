#ifndef WEBRE_CORE_TELEMETRY_H_
#define WEBRE_CORE_TELEMETRY_H_

#include <cstddef>

#include "obs/pipeline_metrics.h"
#include "obs/trace.h"
#include "restructure/converter.h"
#include "util/resource_limits.h"

namespace webre {

/// Folds one document's ConvertStats into batch metrics: every recorded
/// stage span becomes a stage call (wall time + item counts), the rule
/// stats become rule counters, and the budget consumption feeds the
/// totals and per-document maxima. Works for failed documents too — the
/// spans then cover only the stages completed before the failure.
/// Lock-free; safe to call concurrently from pipeline workers.
void RecordConvertMetrics(obs::PipelineMetrics& metrics,
                          const ConvertStats& stats);

/// Emits one Chrome trace span per recorded stage on the calling
/// thread's lane, tagged with the document index. The caller is
/// responsible for any umbrella "document" span (it knows the full
/// interval including extraction).
void EmitConvertTrace(obs::TraceCollector& trace, const ConvertStats& stats,
                      size_t doc_index);

/// Budget caps in the form MetricsToJson wants for headroom reporting.
obs::BudgetLimitsView ToBudgetLimitsView(const ResourceLimits& limits);

}  // namespace webre

#endif  // WEBRE_CORE_TELEMETRY_H_
