#ifndef WEBRE_CORE_PIPELINE_H_
#define WEBRE_CORE_PIPELINE_H_

#include <memory>
#include <string>
#include <vector>

#include "concepts/concept.h"
#include "concepts/constraints.h"
#include "mapping/document_mapper.h"
#include "obs/pipeline_metrics.h"
#include "obs/trace.h"
#include "restructure/converter.h"
#include "restructure/recognizer.h"
#include "schema/dtd_builder.h"
#include "schema/frequent_paths.h"
#include "util/resource_limits.h"
#include "util/thread_pool.h"
#include "xml/dtd.h"
#include "xml/node_arena.h"

namespace webre {

/// Options spanning the full pipeline.
struct PipelineOptions {
  ConvertOptions convert;
  MiningOptions mining;
  DtdBuildOptions dtd;
  /// Conform every document to the derived DTD via the Document Mapping
  /// Component and report how many conform before/after.
  bool map_documents = false;
  /// Fan-out of the per-document stages (conversion, validation,
  /// mapping). The default (num_threads = 1) is fully serial; any
  /// thread count produces byte-identical results because per-document
  /// work is independent and merge order is the input order.
  ParallelOptions parallel;
  /// Per-document resource guards (copied into `convert.limits`; the
  /// value set here wins). A document that trips a guard costs one
  /// error record, never the batch.
  ResourceLimits limits;
  /// Keep converting after a document fails (the default): failures are
  /// recorded per document and every healthy document still flows into
  /// schema discovery. When false, all conversions still run (so the
  /// outcome list is complete and deterministic at any thread count)
  /// but a batch with any failure stops before discovery — the result
  /// carries empty schema/DTD and `aborted = true`.
  bool keep_going = true;
  /// When non-null, batch metrics accumulate here (borrowed; must
  /// outlive the Run call): per-stage wall time and item counts, rule
  /// counters, budget consumption, the document-outcome taxonomy and
  /// the per-document latency histogram. Every counter is byte-identical
  /// across thread counts; only wall times vary. Setting this turns on
  /// `convert.record_stage_spans` automatically.
  obs::PipelineMetrics* metrics = nullptr;
  /// When non-null, per-stage spans are emitted here (borrowed) for
  /// Chrome trace_event export — one lane per worker thread. Also turns
  /// on `convert.record_stage_spans`.
  obs::TraceCollector* trace = nullptr;
  /// Allocate each document's tree from a per-document NodeArena
  /// (PipelineResult::arenas): contiguous node storage, O(1) teardown,
  /// and no per-node free traffic during restructuring. The arena of a
  /// failed document is released immediately. Turn off to allocate
  /// nodes from the heap (e.g. when result trees must outlive the
  /// PipelineResult they came in).
  bool use_node_arena = true;
};

/// How one input document fared, for the machine-readable error summary.
enum class DocumentStatus {
  kOk = 0,
  /// The input could not be parsed into a tree (reserved for strict
  /// front doors; the lenient HTML path repairs instead of failing).
  kParseError,
  /// A ResourceLimits guard tripped (kResourceExhausted).
  kLimitExceeded,
  /// A restructuring stage failed, including a captured exception
  /// (std::bad_alloc and friends) from the per-document worker.
  kConvertError,
};

/// Stable lower_snake name for `status` (e.g. "limit_exceeded").
const char* DocumentStatusName(DocumentStatus status);

/// Canonical Status-code → DocumentStatus mapping, shared by the
/// pipeline and the CLI so the machine-readable status string for a
/// given failure is identical across commands.
DocumentStatus StatusToDocumentStatus(const Status& status);

/// Per-document fate record. Healthy documents get {kOk, "", "", i};
/// failed documents name the stage that gave up ("parse", "tidy",
/// "tokenize", "rules", "extract", "validate", "map") and carry the
/// error message verbatim.
struct DocumentOutcome {
  DocumentStatus status = DocumentStatus::kOk;
  /// Stage that failed; empty for kOk.
  std::string stage;
  /// Error message; empty for kOk.
  std::string message;
  /// Index of the document in the input batch.
  size_t index = 0;

  bool ok() const { return status == DocumentStatus::kOk; }
};

/// Output of Pipeline::Run.
///
/// Memory: with PipelineOptions::use_node_arena (the default), every
/// tree in `documents` / `mapped_documents` lives in the per-document
/// arena at the same index of `arenas`. The trees must not outlive
/// their arenas — `arenas` is deliberately the first member so C++
/// reverse-declaration destruction tears the trees down before their
/// backing memory. Callers that move a tree out of the result must
/// also keep (share) the matching arena, or copy the tree via Clone()
/// outside any arena scope.
struct PipelineResult {
  /// Per-document node arenas, parallel to `documents`; empty when
  /// use_node_arena is off, null at indices whose document failed.
  /// Declared first: must be destroyed last (see struct comment).
  std::vector<std::shared_ptr<NodeArena>> arenas;
  /// Converted XML documents, in input order. Null for documents whose
  /// outcome is not ok (check `outcomes`).
  std::vector<std::unique_ptr<Node>> documents;
  /// Per-document conversion stats (default-initialized for failures).
  std::vector<ConvertStats> convert_stats;
  /// Per-document fate, in input order; always sized like `documents`.
  std::vector<DocumentOutcome> outcomes;
  /// Number of outcomes that are not ok.
  size_t failed_documents = 0;
  /// True iff keep_going was off and a failure stopped the pipeline
  /// before schema discovery.
  bool aborted = false;
  MajoritySchema schema;
  Dtd dtd;
  MiningStats mining_stats;
  /// Documents conforming to the DTD as converted.
  size_t conforming_before = 0;
  /// Documents conforming after mapping (only if map_documents).
  size_t conforming_after = 0;
  /// Mapped documents (empty unless map_documents; null per failed doc).
  std::vector<std::unique_ptr<Node>> mapped_documents;
};

/// End-to-end pipeline (the paper's three steps, §5): (1) HTML→XML
/// document conversion, (2) majority-schema discovery + DTD derivation,
/// (3) optional schema-guided document mapping.
///
/// The per-document stages are embarrassingly parallel and fan out
/// across a worker pool when `options.parallel.num_threads != 1`;
/// schema discovery itself stays serial (it is a cheap fold over
/// pre-extracted paths, merged in input order for determinism). The
/// recognizer passed in must be const-thread-safe — the bundled
/// recognizers are, as they hold only immutable borrowed state.
///
/// Fault isolation: each document converts under `options.limits` and
/// behind a per-document exception barrier, so one pathological page —
/// 10k-deep nesting, entity bombs, megabyte attributes — produces one
/// DocumentOutcome while the rest of the batch completes. Discovery
/// folds only the surviving documents. On clean input the result is
/// byte-identical to a run without guards, at any thread count.
///
/// The borrowed concept set, recognizer and constraints must outlive the
/// pipeline. `constraints` may be null.
class Pipeline {
 public:
  Pipeline(const ConceptSet* concepts, const ConceptRecognizer* recognizer,
           const ConstraintSet* constraints, PipelineOptions options = {});

  /// Runs all stages over raw HTML pages.
  PipelineResult Run(const std::vector<std::string>& html_pages) const;

  const PipelineOptions& options() const { return options_; }

 private:
  const ConstraintSet* constraints_;
  DocumentConverter converter_;
  PipelineOptions options_;
};

}  // namespace webre

#endif  // WEBRE_CORE_PIPELINE_H_
