#ifndef WEBRE_CORE_PIPELINE_H_
#define WEBRE_CORE_PIPELINE_H_

#include <memory>
#include <string>
#include <vector>

#include "concepts/concept.h"
#include "concepts/constraints.h"
#include "mapping/document_mapper.h"
#include "restructure/converter.h"
#include "restructure/recognizer.h"
#include "schema/dtd_builder.h"
#include "schema/frequent_paths.h"
#include "util/thread_pool.h"
#include "xml/dtd.h"

namespace webre {

/// Options spanning the full pipeline.
struct PipelineOptions {
  ConvertOptions convert;
  MiningOptions mining;
  DtdBuildOptions dtd;
  /// Conform every document to the derived DTD via the Document Mapping
  /// Component and report how many conform before/after.
  bool map_documents = false;
  /// Fan-out of the per-document stages (conversion, validation,
  /// mapping). The default (num_threads = 1) is fully serial; any
  /// thread count produces byte-identical results because per-document
  /// work is independent and merge order is the input order.
  ParallelOptions parallel;
};

/// Output of Pipeline::Run.
struct PipelineResult {
  /// Converted XML documents, in input order.
  std::vector<std::unique_ptr<Node>> documents;
  /// Per-document conversion stats.
  std::vector<ConvertStats> convert_stats;
  MajoritySchema schema;
  Dtd dtd;
  MiningStats mining_stats;
  /// Documents conforming to the DTD as converted.
  size_t conforming_before = 0;
  /// Documents conforming after mapping (only if map_documents).
  size_t conforming_after = 0;
  /// Mapped documents (empty unless map_documents).
  std::vector<std::unique_ptr<Node>> mapped_documents;
};

/// End-to-end pipeline (the paper's three steps, §5): (1) HTML→XML
/// document conversion, (2) majority-schema discovery + DTD derivation,
/// (3) optional schema-guided document mapping.
///
/// The per-document stages are embarrassingly parallel and fan out
/// across a worker pool when `options.parallel.num_threads != 1`;
/// schema discovery itself stays serial (it is a cheap fold over
/// pre-extracted paths, merged in input order for determinism). The
/// recognizer passed in must be const-thread-safe — the bundled
/// recognizers are, as they hold only immutable borrowed state.
///
/// The borrowed concept set, recognizer and constraints must outlive the
/// pipeline. `constraints` may be null.
class Pipeline {
 public:
  Pipeline(const ConceptSet* concepts, const ConceptRecognizer* recognizer,
           const ConstraintSet* constraints, PipelineOptions options = {});

  /// Runs all stages over raw HTML pages.
  PipelineResult Run(const std::vector<std::string>& html_pages) const;

  const PipelineOptions& options() const { return options_; }

 private:
  const ConstraintSet* constraints_;
  DocumentConverter converter_;
  PipelineOptions options_;
};

}  // namespace webre

#endif  // WEBRE_CORE_PIPELINE_H_
