#include "core/pipeline.h"

#include <exception>
#include <utility>

#include "core/telemetry.h"
#include "obs/metrics.h"
#include "schema/path_extractor.h"
#include "xml/dtd_validator.h"

namespace webre {
namespace {

// Copies the pipeline-level limits into the converter options so one
// knob governs the whole stack, and arms span recording whenever a
// metrics/trace sink is attached (the converter is where the stage
// intervals are measured).
PipelineOptions WithLimitsApplied(PipelineOptions options) {
  options.convert.limits = options.limits;
  if (options.metrics != nullptr || options.trace != nullptr) {
    options.convert.record_stage_spans = true;
  }
  return options;
}

}  // namespace

DocumentStatus StatusToDocumentStatus(const Status& status) {
  switch (status.code()) {
    case StatusCode::kResourceExhausted:
      return DocumentStatus::kLimitExceeded;
    case StatusCode::kInvalidArgument:
      return DocumentStatus::kParseError;
    default:
      return DocumentStatus::kConvertError;
  }
}

const char* DocumentStatusName(DocumentStatus status) {
  switch (status) {
    case DocumentStatus::kOk:
      return "ok";
    case DocumentStatus::kParseError:
      return "parse_error";
    case DocumentStatus::kLimitExceeded:
      return "limit_exceeded";
    case DocumentStatus::kConvertError:
      return "convert_error";
  }
  return "unknown";
}

Pipeline::Pipeline(const ConceptSet* concepts,
                   const ConceptRecognizer* recognizer,
                   const ConstraintSet* constraints, PipelineOptions options)
    : constraints_(constraints),
      converter_(concepts, recognizer, constraints,
                 WithLimitsApplied(options).convert),
      options_(WithLimitsApplied(std::move(options))) {}

PipelineResult Pipeline::Run(
    const std::vector<std::string>& html_pages) const {
  PipelineResult result;
  const size_t count = html_pages.size();
  result.documents.resize(count);
  result.convert_stats.resize(count);
  result.outcomes.resize(count);
  for (size_t i = 0; i < count; ++i) result.outcomes[i].index = i;

  MiningOptions mining = options_.mining;
  if (mining.constraints == nullptr) mining.constraints = constraints_;
  FrequentPathMiner miner(mining);

  // One pool serves every parallel stage of this run; the serial
  // configuration never spawns a thread.
  const size_t threads = options_.parallel.num_threads == 0
                             ? DefaultThreadCount()
                             : options_.parallel.num_threads;
  std::unique_ptr<ThreadPool> pool;
  if (threads > 1 && count > 1) pool = std::make_unique<ThreadPool>(threads);
  auto run_stage = [&](const std::function<void(size_t, size_t)>& body) {
    if (pool != nullptr) {
      ParallelFor(*pool, count, options_.parallel.chunk_size, body);
    } else if (count > 0) {
      body(0, count);
    }
  };

  // Observability sinks. The hot per-node accounting lives in lock-free
  // counters; here we only take a handful of timestamps per document.
  // Outcome bookkeeping is deferred to FinalizeObservability so message
  // order is the input order regardless of thread count.
  obs::PipelineMetrics* metrics = options_.metrics;
  obs::TraceCollector* trace = options_.trace;
  const bool observing = metrics != nullptr || trace != nullptr;
  auto finalize_observability = [&]() {
    if (metrics == nullptr) return;
    for (const DocumentOutcome& outcome : result.outcomes) {
      metrics->RecordOutcome(DocumentStatusName(outcome.status),
                             outcome.stage, outcome.message);
    }
    metrics->SetAborted(result.aborted);
    if (pool != nullptr) {
      metrics->RecordWorkerFailures(pool->failure_messages());
    }
  };

  // Stage 1 — conversion. Each page is converted and path-extracted
  // independently on the pool under the per-document resource guards
  // and an exception barrier: a pathological page writes one error
  // outcome into its slot and the rest of its chunk continues. The
  // miner then folds the surviving documents' paths in input order, so
  // the discovered schema (and every count in it) is identical to a
  // serial run regardless of thread count.
  std::vector<DocumentPaths> extracted(count);
  const bool use_arena = options_.use_node_arena;
  if (use_arena) result.arenas.resize(count);
  run_stage([&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      DocumentOutcome& outcome = result.outcomes[i];
      ConvertStats stats;
      const double doc_begin = observing ? obs::MonotonicSeconds() : 0.0;
      // The document's tree (including every transient node the
      // restructuring rules splice out) is carved from its own arena;
      // the allocation-counter delta is per-thread, and this document
      // runs on exactly one thread.
      if (use_arena) result.arenas[i] = std::make_shared<NodeArena>();
      const uint64_t allocs_before = Node::AllocationsOnThisThread();
      try {
        NodeArenaScope arena_scope(use_arena ? result.arenas[i].get()
                                             : nullptr);
        std::string stage;
        StatusOr<std::unique_ptr<Node>> converted =
            converter_.TryConvert(html_pages[i], &stats, &stage);
        stats.mem_node_allocs =
            Node::AllocationsOnThisThread() - allocs_before;
        if (use_arena) {
          stats.mem_arena_bytes = result.arenas[i]->bytes_allocated();
        }
        if (!converted.ok()) {
          outcome.status = StatusToDocumentStatus(converted.status());
          outcome.stage = std::move(stage);
          outcome.message = converted.status().message();
        } else {
          result.documents[i] = std::move(converted).value();
          result.convert_stats[i] = stats;
          const double extract_begin =
              observing ? obs::MonotonicSeconds() : 0.0;
          extracted[i] = ExtractPaths(*result.documents[i]);
          if (observing) {
            const double extract_end = obs::MonotonicSeconds();
            if (metrics != nullptr) {
              metrics->RecordStage(
                  obs::PipelineStage::kExtract,
                  static_cast<uint64_t>((extract_end - extract_begin) * 1e9),
                  stats.concept_nodes, extracted[i].paths.size());
            }
            if (trace != nullptr) {
              trace->AddSpan("extract", "stage", extract_begin, extract_end,
                             i);
            }
          }
        }
      } catch (const std::exception& e) {
        outcome.status = DocumentStatus::kConvertError;
        outcome.stage = "extract";
        outcome.message = e.what();
        result.documents[i] = nullptr;
        extracted[i] = DocumentPaths{};
      } catch (...) {
        outcome.status = DocumentStatus::kConvertError;
        outcome.stage = "extract";
        outcome.message = "unknown exception";
        result.documents[i] = nullptr;
        extracted[i] = DocumentPaths{};
      }
      // A failed document holds no tree; release its arena now instead
      // of carrying dead blocks to the end of the batch. (documents[i]
      // is already null here on every failure path.)
      if (use_arena && !outcome.ok()) result.arenas[i].reset();
      if (observing) {
        // Failed documents still contribute: their spans cover the
        // stages completed before the failure.
        const double doc_end = obs::MonotonicSeconds();
        if (metrics != nullptr) {
          RecordConvertMetrics(*metrics, stats);
          metrics->convert_us.Record(
              static_cast<uint64_t>((doc_end - doc_begin) * 1e6));
        }
        if (trace != nullptr) {
          EmitConvertTrace(*trace, stats, i);
          trace->AddSpan("document", "doc", doc_begin, doc_end, i);
        }
      }
    }
  });
  for (const DocumentOutcome& outcome : result.outcomes) {
    if (!outcome.ok()) ++result.failed_documents;
  }

  if (!options_.keep_going && result.failed_documents > 0) {
    // Outcomes are complete (every conversion ran), but the batch is
    // declared failed before discovery.
    result.aborted = true;
    finalize_observability();
    return result;
  }

  // Stage 2 — discovery (serial: one fold over the accumulated trie).
  // Only surviving documents take part, so one bad page cannot skew
  // support counts with an empty path set.
  const double discover_begin = observing ? obs::MonotonicSeconds() : 0.0;
  size_t documents_folded = 0;
  for (size_t i = 0; i < count; ++i) {
    if (result.outcomes[i].ok()) {
      miner.AddDocumentPaths(extracted[i]);
      ++documents_folded;
    }
  }
  result.schema = miner.Discover();
  result.mining_stats = miner.stats();
  result.dtd = BuildDtd(result.schema, options_.dtd);
  if (observing) {
    const double discover_end = obs::MonotonicSeconds();
    if (metrics != nullptr) {
      metrics->RecordStage(
          obs::PipelineStage::kDiscover,
          static_cast<uint64_t>((discover_end - discover_begin) * 1e9),
          documents_folded, result.schema.NodeCount());
    }
    if (trace != nullptr) {
      trace->AddSpan("discover", "batch", discover_begin, discover_end);
    }
  }

  // Stage 3 — per-document validation and optional mapping, again
  // fanned out with results stored by input index. Failed documents
  // are skipped; a late failure (exception while mapping) demotes the
  // document's outcome but never the batch.
  std::vector<unsigned char> conforms_before(count, 0);
  std::vector<unsigned char> conforms_after(count, 0);
  if (options_.map_documents) result.mapped_documents.resize(count);
  run_stage([&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      if (!result.outcomes[i].ok()) continue;
      DocumentOutcome& outcome = result.outcomes[i];
      const char* stage = "validate";
      // Mapping builds the conformed tree; allocate it from the same
      // arena as the source document so both share one lifetime.
      NodeArenaScope arena_scope(use_arena ? result.arenas[i].get()
                                           : nullptr);
      try {
        const Node& doc = *result.documents[i];
        const double validate_begin =
            observing ? obs::MonotonicSeconds() : 0.0;
        conforms_before[i] = ConformsToDtd(doc, result.dtd) ? 1 : 0;
        if (observing) {
          const double validate_end = obs::MonotonicSeconds();
          if (metrics != nullptr) {
            metrics->RecordStage(
                obs::PipelineStage::kValidate,
                static_cast<uint64_t>((validate_end - validate_begin) * 1e9),
                1, conforms_before[i]);
          }
          if (trace != nullptr) {
            trace->AddSpan("validate", "stage", validate_begin, validate_end,
                           i);
          }
        }
        if (options_.map_documents) {
          stage = "map";
          const double map_begin = observing ? obs::MonotonicSeconds() : 0.0;
          ConformResult mapped =
              ConformToSchema(doc, result.schema, result.dtd);
          conforms_after[i] = mapped.report.conforms ? 1 : 0;
          result.mapped_documents[i] = std::move(mapped.document);
          if (observing) {
            const double map_end = obs::MonotonicSeconds();
            if (metrics != nullptr) {
              metrics->RecordStage(
                  obs::PipelineStage::kMap,
                  static_cast<uint64_t>((map_end - map_begin) * 1e9), 1,
                  conforms_after[i]);
            }
            if (trace != nullptr) {
              trace->AddSpan("map", "stage", map_begin, map_end, i);
            }
          }
        }
      } catch (const std::exception& e) {
        outcome.status = DocumentStatus::kConvertError;
        outcome.stage = stage;
        outcome.message = e.what();
        conforms_before[i] = 0;
        conforms_after[i] = 0;
      } catch (...) {
        outcome.status = DocumentStatus::kConvertError;
        outcome.stage = stage;
        outcome.message = "unknown exception";
        conforms_before[i] = 0;
        conforms_after[i] = 0;
      }
    }
  });
  for (size_t i = 0; i < count; ++i) {
    result.conforming_before += conforms_before[i];
    result.conforming_after += conforms_after[i];
  }
  // Recount failures to include any stage-3 demotions.
  result.failed_documents = 0;
  for (const DocumentOutcome& outcome : result.outcomes) {
    if (!outcome.ok()) ++result.failed_documents;
  }
  finalize_observability();
  return result;
}

}  // namespace webre
