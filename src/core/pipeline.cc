#include "core/pipeline.h"

#include "schema/path_extractor.h"
#include "xml/dtd_validator.h"

namespace webre {

Pipeline::Pipeline(const ConceptSet* concepts,
                   const ConceptRecognizer* recognizer,
                   const ConstraintSet* constraints, PipelineOptions options)
    : constraints_(constraints),
      converter_(concepts, recognizer, constraints, options.convert),
      options_(std::move(options)) {}

PipelineResult Pipeline::Run(
    const std::vector<std::string>& html_pages) const {
  PipelineResult result;
  const size_t count = html_pages.size();
  result.documents.resize(count);
  result.convert_stats.resize(count);

  MiningOptions mining = options_.mining;
  if (mining.constraints == nullptr) mining.constraints = constraints_;
  FrequentPathMiner miner(mining);

  // One pool serves every parallel stage of this run; the serial
  // configuration never spawns a thread.
  const size_t threads = options_.parallel.num_threads == 0
                             ? DefaultThreadCount()
                             : options_.parallel.num_threads;
  std::unique_ptr<ThreadPool> pool;
  if (threads > 1 && count > 1) pool = std::make_unique<ThreadPool>(threads);
  auto run_stage = [&](const std::function<void(size_t, size_t)>& body) {
    if (pool != nullptr) {
      ParallelFor(*pool, count, options_.parallel.chunk_size, body);
    } else if (count > 0) {
      body(0, count);
    }
  };

  // Stage 1 — conversion. Each page is converted and path-extracted
  // independently on the pool; the miner then folds the per-document
  // paths in input order, so the discovered schema (and every count in
  // it) is identical to a serial run regardless of thread count.
  std::vector<DocumentPaths> extracted(count);
  run_stage([&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      ConvertStats stats;
      result.documents[i] = converter_.Convert(html_pages[i], &stats);
      result.convert_stats[i] = stats;
      extracted[i] = ExtractPaths(*result.documents[i]);
    }
  });
  for (const DocumentPaths& paths : extracted) {
    miner.AddDocumentPaths(paths);
  }

  // Stage 2 — discovery (serial: one fold over the accumulated trie).
  result.schema = miner.Discover();
  result.mining_stats = miner.stats();
  result.dtd = BuildDtd(result.schema, options_.dtd);

  // Stage 3 — per-document validation and optional mapping, again
  // fanned out with results stored by input index.
  std::vector<unsigned char> conforms_before(count, 0);
  std::vector<unsigned char> conforms_after(count, 0);
  if (options_.map_documents) result.mapped_documents.resize(count);
  run_stage([&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      const Node& doc = *result.documents[i];
      conforms_before[i] = ConformsToDtd(doc, result.dtd) ? 1 : 0;
      if (options_.map_documents) {
        ConformResult mapped =
            ConformToSchema(doc, result.schema, result.dtd);
        conforms_after[i] = mapped.report.conforms ? 1 : 0;
        result.mapped_documents[i] = std::move(mapped.document);
      }
    }
  });
  for (size_t i = 0; i < count; ++i) {
    result.conforming_before += conforms_before[i];
    result.conforming_after += conforms_after[i];
  }
  return result;
}

}  // namespace webre
