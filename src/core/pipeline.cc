#include "core/pipeline.h"

#include "xml/dtd_validator.h"

namespace webre {

Pipeline::Pipeline(const ConceptSet* concepts,
                   const ConceptRecognizer* recognizer,
                   const ConstraintSet* constraints, PipelineOptions options)
    : constraints_(constraints),
      converter_(concepts, recognizer, constraints, options.convert),
      options_(std::move(options)) {}

PipelineResult Pipeline::Run(
    const std::vector<std::string>& html_pages) const {
  PipelineResult result;
  result.documents.reserve(html_pages.size());
  result.convert_stats.reserve(html_pages.size());

  MiningOptions mining = options_.mining;
  if (mining.constraints == nullptr) mining.constraints = constraints_;
  FrequentPathMiner miner(mining);

  for (const std::string& html : html_pages) {
    ConvertStats stats;
    std::unique_ptr<Node> doc = converter_.Convert(html, &stats);
    miner.AddDocument(*doc);
    result.documents.push_back(std::move(doc));
    result.convert_stats.push_back(stats);
  }

  result.schema = miner.Discover();
  result.mining_stats = miner.stats();
  result.dtd = BuildDtd(result.schema, options_.dtd);

  for (const auto& doc : result.documents) {
    if (ConformsToDtd(*doc, result.dtd)) ++result.conforming_before;
  }
  if (options_.map_documents) {
    result.mapped_documents.reserve(result.documents.size());
    for (const auto& doc : result.documents) {
      ConformResult mapped =
          ConformToSchema(*doc, result.schema, result.dtd);
      if (mapped.report.conforms) ++result.conforming_after;
      result.mapped_documents.push_back(std::move(mapped.document));
    }
  }
  return result;
}

}  // namespace webre
