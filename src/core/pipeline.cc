#include "core/pipeline.h"

#include <exception>
#include <utility>

#include "schema/path_extractor.h"
#include "xml/dtd_validator.h"

namespace webre {
namespace {

// Copies the pipeline-level limits into the converter options so one
// knob governs the whole stack.
PipelineOptions WithLimitsApplied(PipelineOptions options) {
  options.convert.limits = options.limits;
  return options;
}

}  // namespace

DocumentStatus StatusToDocumentStatus(const Status& status) {
  switch (status.code()) {
    case StatusCode::kResourceExhausted:
      return DocumentStatus::kLimitExceeded;
    case StatusCode::kInvalidArgument:
      return DocumentStatus::kParseError;
    default:
      return DocumentStatus::kConvertError;
  }
}

const char* DocumentStatusName(DocumentStatus status) {
  switch (status) {
    case DocumentStatus::kOk:
      return "ok";
    case DocumentStatus::kParseError:
      return "parse_error";
    case DocumentStatus::kLimitExceeded:
      return "limit_exceeded";
    case DocumentStatus::kConvertError:
      return "convert_error";
  }
  return "unknown";
}

Pipeline::Pipeline(const ConceptSet* concepts,
                   const ConceptRecognizer* recognizer,
                   const ConstraintSet* constraints, PipelineOptions options)
    : constraints_(constraints),
      converter_(concepts, recognizer, constraints,
                 WithLimitsApplied(options).convert),
      options_(WithLimitsApplied(std::move(options))) {}

PipelineResult Pipeline::Run(
    const std::vector<std::string>& html_pages) const {
  PipelineResult result;
  const size_t count = html_pages.size();
  result.documents.resize(count);
  result.convert_stats.resize(count);
  result.outcomes.resize(count);
  for (size_t i = 0; i < count; ++i) result.outcomes[i].index = i;

  MiningOptions mining = options_.mining;
  if (mining.constraints == nullptr) mining.constraints = constraints_;
  FrequentPathMiner miner(mining);

  // One pool serves every parallel stage of this run; the serial
  // configuration never spawns a thread.
  const size_t threads = options_.parallel.num_threads == 0
                             ? DefaultThreadCount()
                             : options_.parallel.num_threads;
  std::unique_ptr<ThreadPool> pool;
  if (threads > 1 && count > 1) pool = std::make_unique<ThreadPool>(threads);
  auto run_stage = [&](const std::function<void(size_t, size_t)>& body) {
    if (pool != nullptr) {
      ParallelFor(*pool, count, options_.parallel.chunk_size, body);
    } else if (count > 0) {
      body(0, count);
    }
  };

  // Stage 1 — conversion. Each page is converted and path-extracted
  // independently on the pool under the per-document resource guards
  // and an exception barrier: a pathological page writes one error
  // outcome into its slot and the rest of its chunk continues. The
  // miner then folds the surviving documents' paths in input order, so
  // the discovered schema (and every count in it) is identical to a
  // serial run regardless of thread count.
  std::vector<DocumentPaths> extracted(count);
  run_stage([&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      DocumentOutcome& outcome = result.outcomes[i];
      try {
        ConvertStats stats;
        std::string stage;
        StatusOr<std::unique_ptr<Node>> converted =
            converter_.TryConvert(html_pages[i], &stats, &stage);
        if (!converted.ok()) {
          outcome.status = StatusToDocumentStatus(converted.status());
          outcome.stage = std::move(stage);
          outcome.message = converted.status().message();
          continue;
        }
        result.documents[i] = std::move(converted).value();
        result.convert_stats[i] = stats;
        extracted[i] = ExtractPaths(*result.documents[i]);
      } catch (const std::exception& e) {
        outcome.status = DocumentStatus::kConvertError;
        outcome.stage = "extract";
        outcome.message = e.what();
        result.documents[i] = nullptr;
        extracted[i] = DocumentPaths{};
      } catch (...) {
        outcome.status = DocumentStatus::kConvertError;
        outcome.stage = "extract";
        outcome.message = "unknown exception";
        result.documents[i] = nullptr;
        extracted[i] = DocumentPaths{};
      }
    }
  });
  for (const DocumentOutcome& outcome : result.outcomes) {
    if (!outcome.ok()) ++result.failed_documents;
  }

  if (!options_.keep_going && result.failed_documents > 0) {
    // Outcomes are complete (every conversion ran), but the batch is
    // declared failed before discovery.
    result.aborted = true;
    return result;
  }

  // Stage 2 — discovery (serial: one fold over the accumulated trie).
  // Only surviving documents take part, so one bad page cannot skew
  // support counts with an empty path set.
  for (size_t i = 0; i < count; ++i) {
    if (result.outcomes[i].ok()) miner.AddDocumentPaths(extracted[i]);
  }
  result.schema = miner.Discover();
  result.mining_stats = miner.stats();
  result.dtd = BuildDtd(result.schema, options_.dtd);

  // Stage 3 — per-document validation and optional mapping, again
  // fanned out with results stored by input index. Failed documents
  // are skipped; a late failure (exception while mapping) demotes the
  // document's outcome but never the batch.
  std::vector<unsigned char> conforms_before(count, 0);
  std::vector<unsigned char> conforms_after(count, 0);
  if (options_.map_documents) result.mapped_documents.resize(count);
  run_stage([&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      if (!result.outcomes[i].ok()) continue;
      DocumentOutcome& outcome = result.outcomes[i];
      const char* stage = "validate";
      try {
        const Node& doc = *result.documents[i];
        conforms_before[i] = ConformsToDtd(doc, result.dtd) ? 1 : 0;
        if (options_.map_documents) {
          stage = "map";
          ConformResult mapped =
              ConformToSchema(doc, result.schema, result.dtd);
          conforms_after[i] = mapped.report.conforms ? 1 : 0;
          result.mapped_documents[i] = std::move(mapped.document);
        }
      } catch (const std::exception& e) {
        outcome.status = DocumentStatus::kConvertError;
        outcome.stage = stage;
        outcome.message = e.what();
        conforms_before[i] = 0;
        conforms_after[i] = 0;
      } catch (...) {
        outcome.status = DocumentStatus::kConvertError;
        outcome.stage = stage;
        outcome.message = "unknown exception";
        conforms_before[i] = 0;
        conforms_after[i] = 0;
      }
    }
  });
  for (size_t i = 0; i < count; ++i) {
    result.conforming_before += conforms_before[i];
    result.conforming_after += conforms_after[i];
  }
  // Recount failures to include any stage-3 demotions.
  result.failed_documents = 0;
  for (const DocumentOutcome& outcome : result.outcomes) {
    if (!outcome.ok()) ++result.failed_documents;
  }
  return result;
}

}  // namespace webre
