#include "core/telemetry.h"

namespace webre {

void RecordConvertMetrics(obs::PipelineMetrics& metrics,
                          const ConvertStats& stats) {
  for (const ConvertStageSpan& span : stats.stage_spans) {
    metrics.RecordStage(
        span.stage,
        static_cast<uint64_t>((span.end_seconds - span.begin_seconds) * 1e9),
        span.items_in, span.items_out);
  }

  metrics.tokenize.tokens_emitted.Add(stats.tokens_created);
  metrics.instance.tokens_total.Add(stats.instance.tokens_total);
  metrics.instance.tokens_identified.Add(stats.instance.tokens_identified);
  metrics.instance.tokens_via_synonym.Add(stats.instance.tokens_via_synonym);
  metrics.instance.tokens_via_bayes.Add(stats.instance.tokens_via_bayes);
  metrics.instance.elements_created.Add(stats.instance.elements_created);
  metrics.instance.segments_vetoed.Add(stats.instance.segments_vetoed);
  metrics.grouping.groups_formed.Add(stats.groups_created);
  metrics.consolidation.nodes_deleted.Add(stats.consolidation.nodes_deleted);
  metrics.consolidation.nodes_pushed_up.Add(
      stats.consolidation.nodes_pushed_up);
  metrics.consolidation.nodes_replaced.Add(
      stats.consolidation.nodes_replaced);
  metrics.consolidation.replacements_vetoed.Add(
      stats.consolidation.replacements_vetoed);

  metrics.mem.node_allocs.Add(stats.mem_node_allocs);
  metrics.mem.arena_bytes.Add(stats.mem_arena_bytes);

  metrics.budget.steps_used.Add(stats.budget_steps_used);
  metrics.budget.nodes_used.Add(stats.budget_nodes_used);
  metrics.budget.entities_used.Add(stats.budget_entities_used);
  metrics.budget.max_steps_one_doc.Record(stats.budget_steps_used);
  metrics.budget.max_nodes_one_doc.Record(stats.budget_nodes_used);
  metrics.budget.max_entities_one_doc.Record(stats.budget_entities_used);
}

void EmitConvertTrace(obs::TraceCollector& trace, const ConvertStats& stats,
                      size_t doc_index) {
  for (const ConvertStageSpan& span : stats.stage_spans) {
    trace.AddSpan(obs::PipelineStageName(span.stage), "stage",
                  span.begin_seconds, span.end_seconds, doc_index);
  }
}

obs::BudgetLimitsView ToBudgetLimitsView(const ResourceLimits& limits) {
  obs::BudgetLimitsView view;
  view.max_steps = limits.max_steps;
  view.max_nodes = limits.max_node_count;
  view.max_entities = limits.max_entity_expansions;
  return view;
}

}  // namespace webre
