#ifndef WEBRE_HTML_TAG_TABLES_H_
#define WEBRE_HTML_TAG_TABLES_H_

#include <string_view>

#include "xml/name_table.h"

namespace webre {

/// Classification tables for HTML 4-era tags.
///
/// The paper's restructuring rules key off three tag classes (§2.3.2, §4):
///  - *group tags* `{h1..h6, title, div, p, tr, dt, dd, li, u, strong, b,
///    em, i}` carry a priority weight: higher-weight tags group their
///    right siblings before lower-weight ones;
///  - *list tags* `{body, table, dl, ul, ol, dir, menu}` are "known to
///    exhibit a list structure" for the consolidation rule;
///  - the block/text-level distinction (§2.1) drives parsing repairs.
/// All lookups expect lowercase tag names (the parser lowercases).

/// Every predicate has a NameId overload that answers from flag arrays
/// built once over the NameTable's seeded vocabulary — an array index
/// instead of a chain of string compares. The whole classified
/// vocabulary is seeded, so a dynamic (non-seeded) id is correctly "not
/// in any class". The string_view overloads remain for callers that
/// haven't interned.

/// True for elements that never have content or an end tag (br, hr, img,
/// input, meta, link, area, base, col, param).
bool IsVoidTag(std::string_view tag);
bool IsVoidTag(NameId tag);

/// True for block-level elements (headings, lists, tables, containers).
bool IsBlockLevelTag(std::string_view tag);
bool IsBlockLevelTag(NameId tag);

/// True for text-level (inline/font-markup) elements.
bool IsTextLevelTag(std::string_view tag);
bool IsTextLevelTag(NameId tag);

/// Grouping priority of a group tag; 0 if `tag` is not a group tag.
/// h1 has the highest weight, the inline emphasis tags the lowest, per
/// §2.3.2 ("grouping right siblings of nodes marked with h1 has a higher
/// priority than grouping right siblings of nodes marked with p").
int GroupTagWeight(std::string_view tag);
int GroupTagWeight(NameId tag);

/// True for the paper's list tags: body, table, dl, ul, ol, dir, menu.
bool IsListTag(std::string_view tag);
bool IsListTag(NameId tag);

/// True if `tag` is a raw-text element whose content is not HTML markup
/// (script, style).
bool IsRawTextTag(std::string_view tag);
bool IsRawTextTag(NameId tag);

/// True if an open `open_tag` element is implicitly closed when a
/// `new_tag` start tag appears (HTML optional end tags: p before block
/// content, li before li, dt/dd before dt/dd, tr/td/th in tables, ...).
bool ClosesOnOpen(std::string_view open_tag, std::string_view new_tag);
bool ClosesOnOpen(NameId open_tag, NameId new_tag);

}  // namespace webre

#endif  // WEBRE_HTML_TAG_TABLES_H_
