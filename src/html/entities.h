#ifndef WEBRE_HTML_ENTITIES_H_
#define WEBRE_HTML_ENTITIES_H_

#include <string>
#include <string_view>

#include "util/resource_limits.h"
#include "util/status.h"

namespace webre {

/// Decodes HTML character references in `s`.
///
/// Handles the named entities common in 1990s/2000s-era HTML (the
/// vintage of the paper's corpus) plus decimal (`&#233;`) and hex
/// (`&#xE9;`) numeric references, emitting UTF-8. Decoding is lenient:
/// unknown or malformed references are passed through verbatim, matching
/// browser behaviour on legacy pages. `&nbsp;` decodes to a plain space
/// since downstream tokenization treats all whitespace alike.
///
/// Numeric references that name no valid scalar value — zero, surrogates
/// (U+D800..U+DFFF) and anything above U+10FFFF — decode to U+FFFD
/// (the replacement character), never to ill-formed UTF-8.
std::string DecodeHtmlEntities(std::string_view s);

/// Guarded variant: every decoded reference is charged against
/// `budget` (max_entity_expansions). On exhaustion, returns
/// kResourceExhausted and `out` is unspecified; otherwise appends the
/// decoded text to `out` and returns OK. Output is identical to
/// DecodeHtmlEntities whenever the budget suffices.
Status DecodeHtmlEntities(std::string_view s, ResourceBudget& budget,
                          std::string& out);

}  // namespace webre

#endif  // WEBRE_HTML_ENTITIES_H_
