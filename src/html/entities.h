#ifndef WEBRE_HTML_ENTITIES_H_
#define WEBRE_HTML_ENTITIES_H_

#include <string>
#include <string_view>

namespace webre {

/// Decodes HTML character references in `s`.
///
/// Handles the named entities common in 1990s/2000s-era HTML (the
/// vintage of the paper's corpus) plus decimal (`&#233;`) and hex
/// (`&#xE9;`) numeric references, emitting UTF-8. Decoding is lenient:
/// unknown or malformed references are passed through verbatim, matching
/// browser behaviour on legacy pages. `&nbsp;` decodes to a plain space
/// since downstream tokenization treats all whitespace alike.
std::string DecodeHtmlEntities(std::string_view s);

}  // namespace webre

#endif  // WEBRE_HTML_ENTITIES_H_
