#ifndef WEBRE_HTML_TIDY_H_
#define WEBRE_HTML_TIDY_H_

#include "util/resource_limits.h"
#include "util/status.h"
#include "xml/node.h"

namespace webre {

/// Options for TidyHtmlTree.
struct TidyOptions {
  /// Remove `script`, `style`, `form` controls and other non-content
  /// subtrees.
  bool remove_non_content = true;
  /// Remove elements with no children and no text payload (e.g. an empty
  /// `<b></b>` left over from an editor).
  bool remove_empty_elements = true;
  /// Repair heading nesting: a heading nested inside another heading is
  /// lifted out as its following sibling (the paper notes heuristics are
  /// resilient to "nesting of heading elements" but that cleansing
  /// improves accuracy, §2.4).
  bool fix_heading_nesting = true;
  /// Merge adjacent text node siblings into one.
  bool merge_adjacent_text = true;
  /// Unwrap redundant same-tag nesting like `<b><b>x</b></b>`.
  bool unwrap_redundant_inline = true;
};

/// In-place HTML cleanser applied between parsing and restructuring —
/// this repo's stand-in for the paper's use of HTML Tidy (§2.4).
/// Works on the ordered tree produced by ParseHtml. The root element
/// itself is never removed.
void TidyHtmlTree(Node* root, const TidyOptions& options = {});

/// Guarded variant for trees that did not come from the guarded parser
/// (ConvertTree accepts arbitrary caller-built trees): measures the tree
/// iteratively first and refuses — kResourceExhausted, tree untouched —
/// when it exceeds the depth or node caps, since the cleansing passes
/// recurse per tree level. Also charges the visit against the step
/// budget. Identical to TidyHtmlTree whenever the limits suffice.
Status TidyHtmlTree(Node* root, const TidyOptions& options,
                    ResourceBudget& budget);

}  // namespace webre

#endif  // WEBRE_HTML_TIDY_H_
