#ifndef WEBRE_HTML_PARSER_H_
#define WEBRE_HTML_PARSER_H_

#include <memory>
#include <string_view>

#include "util/resource_limits.h"
#include "util/status.h"
#include "xml/node.h"

namespace webre {

/// Options for ParseHtml.
struct HtmlParseOptions {
  /// Drop whitespace-only text nodes (inter-tag indentation).
  bool skip_whitespace_text = true;
  /// Collapse runs of whitespace inside retained text nodes to one space
  /// and trim the ends, mirroring HTML rendering.
  bool collapse_whitespace = true;
  /// Drop comment and DOCTYPE tokens (they carry no content for the
  /// restructuring rules).
  bool drop_comments = true;
  /// Keep start-tag attributes on the tree. The restructuring rules only
  /// use tags and text, so the default discards them to keep trees small;
  /// turn on to inspect attributes (e.g. href).
  bool keep_attributes = false;
};

/// Parses `html` leniently into an ordered tree (the paper's §2.3 view of
/// an HTML document as an XML document). Never fails: this is the
/// "wrapping" front door and legacy pages are routinely malformed.
///
/// Repairs applied while building the tree:
///  - tag names lowercased; void elements (`<br>`, `<hr>`, ...) become
///    childless nodes;
///  - optional end tags are inferred (`<p>`, `<li>`, `<dt>/<dd>`,
///    `<tr>/<td>/<th>`, ...);
///  - a mismatched end tag closes up to its nearest open ancestor and is
///    otherwise ignored;
///  - elements left open at end of input are closed.
///
/// The returned root is always an `html` element. If the input lacks
/// `<html>` markup, one is synthesized around the content.
std::unique_ptr<Node> ParseHtml(std::string_view html,
                                const HtmlParseOptions& options = {});

/// Guarded variant: lexing and tree building are charged against
/// `budget` (input bytes, steps, entity expansions, node count) and the
/// open-element depth is capped at max_tree_depth, so hostile input —
/// pathological nesting, megabyte attributes, entity floods — yields a
/// kResourceExhausted Status instead of unbounded recursion or memory.
/// With a sufficient budget the tree is identical to ParseHtml's. Every
/// tree this returns has depth <= max_tree_depth and at most
/// max_node_count nodes, which bounds all recursive walks downstream.
StatusOr<std::unique_ptr<Node>> ParseHtml(std::string_view html,
                                          const HtmlParseOptions& options,
                                          ResourceBudget& budget);

}  // namespace webre

#endif  // WEBRE_HTML_PARSER_H_
