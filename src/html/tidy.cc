#include "html/tidy.h"

#include <string>
#include <string_view>

#include "html/tag_tables.h"
#include "util/strings.h"

namespace webre {
namespace {

// Interned ids for the tag classes tidy keys on; all are seeded names,
// resolved once. Membership tests are then a handful of 32-bit compares.
struct TidyIds {
  NameId headings[6];
  NameId non_content[12];

  TidyIds() {
    NameTable& table = NameTable::Global();
    constexpr std::string_view kHeadings[] = {"h1", "h2", "h3",
                                              "h4", "h5", "h6"};
    constexpr std::string_view kNonContent[] = {
        "script", "style",  "select",   "option",   "textarea", "iframe",
        "object", "applet", "map",      "noscript", "noframes", "#comment"};
    for (size_t i = 0; i < std::size(kHeadings); ++i) {
      headings[i] = table.Find(kHeadings[i]);
    }
    for (size_t i = 0; i < std::size(kNonContent); ++i) {
      non_content[i] = table.Find(kNonContent[i]);
    }
  }
};

const TidyIds& Ids() {
  static const TidyIds ids;
  return ids;
}

bool IsHeading(NameId tag) {
  for (NameId h : Ids().headings) {
    if (tag == h) return true;
  }
  return false;
}

bool IsNonContentTag(NameId tag) {
  for (NameId id : Ids().non_content) {
    if (tag == id) return true;
  }
  return false;
}

// True if the subtree contains any text anywhere.
bool HasTextPayload(const Node& node) {
  if (node.is_text()) return !node.text().empty();
  if (!node.val().empty()) return true;
  for (size_t i = 0; i < node.child_count(); ++i) {
    if (HasTextPayload(*node.child(i))) return true;
  }
  return false;
}

void RemoveNonContent(Node* node) {
  for (size_t i = 0; i < node->child_count();) {
    Node* child = node->child(i);
    if (child->is_element() && IsNonContentTag(child->name_id())) {
      node->RemoveChild(i);
    } else {
      RemoveNonContent(child);
      ++i;
    }
  }
}

// Removes childless, text-free elements bottom-up. `br`/`hr`/`img` are
// kept: they are legitimate separators the grouping rule can use.
void RemoveEmptyElements(Node* node) {
  for (size_t i = 0; i < node->child_count();) {
    Node* child = node->child(i);
    RemoveEmptyElements(child);
    const bool keep_void =
        child->is_element() && IsVoidTag(child->name_id());
    if (child->is_element() && !keep_void && child->child_count() == 0 &&
        !HasTextPayload(*child)) {
      node->RemoveChild(i);
    } else {
      ++i;
    }
  }
}

// Lifts headings nested inside headings out as following siblings.
void FixHeadingNesting(Node* node) {
  for (size_t i = 0; i < node->child_count(); ++i) {
    FixHeadingNesting(node->child(i));
  }
  if (!node->is_element() || !IsHeading(node->name_id())) return;
  Node* parent = node->parent();
  if (parent == nullptr) return;
  size_t self_index = parent->IndexOf(node);
  size_t moved = 0;
  for (size_t i = 0; i < node->child_count();) {
    Node* child = node->child(i);
    if (child->is_element() && IsHeading(child->name_id())) {
      std::unique_ptr<Node> lifted = node->RemoveChild(i);
      parent->InsertChild(self_index + 1 + moved, std::move(lifted));
      ++moved;
    } else {
      ++i;
    }
  }
}

void MergeAdjacentText(Node* node) {
  for (size_t i = 0; i + 1 < node->child_count();) {
    Node* a = node->child(i);
    Node* b = node->child(i + 1);
    if (a->is_text() && b->is_text()) {
      std::string merged(a->text());
      merged.push_back(' ');
      merged.append(b->text());
      a->set_text(CollapseWhitespace(merged));
      node->RemoveChild(i + 1);
    } else {
      ++i;
    }
  }
  for (size_t i = 0; i < node->child_count(); ++i) {
    MergeAdjacentText(node->child(i));
  }
}

// Unwraps <b><b>x</b></b> -> <b>x</b> when an inline element's only
// child is the same inline element.
void UnwrapRedundantInline(Node* node) {
  for (size_t i = 0; i < node->child_count(); ++i) {
    UnwrapRedundantInline(node->child(i));
  }
  for (size_t i = 0; i < node->child_count(); ++i) {
    Node* child = node->child(i);
    while (child->is_element() && IsTextLevelTag(child->name_id()) &&
           child->child_count() == 1 && child->child(0)->is_element() &&
           child->child(0)->name_id() == child->name_id()) {
      std::unique_ptr<Node> inner = child->RemoveChild(0);
      std::vector<std::unique_ptr<Node>> grandchildren =
          inner->RemoveAllChildren();
      for (auto& gc : grandchildren) child->AddChild(std::move(gc));
    }
  }
}

}  // namespace

void TidyHtmlTree(Node* root, const TidyOptions& options) {
  if (root == nullptr) return;
  if (options.remove_non_content) RemoveNonContent(root);
  if (options.fix_heading_nesting) FixHeadingNesting(root);
  if (options.unwrap_redundant_inline) UnwrapRedundantInline(root);
  if (options.remove_empty_elements) RemoveEmptyElements(root);
  if (options.merge_adjacent_text) MergeAdjacentText(root);
}

Status TidyHtmlTree(Node* root, const TidyOptions& options,
                    ResourceBudget& budget) {
  if (root == nullptr) return Status::Ok();
  const TreeStats stats = MeasureTree(*root);
  WEBRE_RETURN_IF_ERROR(budget.CheckDepth(stats.max_depth));
  WEBRE_RETURN_IF_ERROR(budget.CheckNodeCount(stats.node_count));
  // Each enabled pass is one walk over the (shrinking) tree.
  WEBRE_RETURN_IF_ERROR(budget.ChargeSteps(stats.node_count * 5));
  TidyHtmlTree(root, options);
  return Status::Ok();
}

}  // namespace webre
