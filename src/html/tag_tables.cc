#include "html/tag_tables.h"

namespace webre {
namespace {

bool OneOf(std::string_view tag, std::initializer_list<std::string_view> set) {
  for (std::string_view candidate : set) {
    if (tag == candidate) return true;
  }
  return false;
}

}  // namespace

bool IsVoidTag(std::string_view tag) {
  return OneOf(tag, {"br", "hr", "img", "input", "meta", "link", "area",
                     "base", "col", "param", "isindex", "basefont"});
}

bool IsBlockLevelTag(std::string_view tag) {
  return OneOf(tag, {"html",   "head",   "body",    "title",      "div",
                     "p",      "h1",     "h2",      "h3",         "h4",
                     "h5",     "h6",     "ul",      "ol",         "dl",
                     "li",     "dt",     "dd",      "dir",        "menu",
                     "table",  "tr",     "td",      "th",         "thead",
                     "tbody",  "tfoot",  "caption", "blockquote", "pre",
                     "center", "form",   "address", "hr",         "fieldset",
                     "frame",  "frameset"});
}

bool IsTextLevelTag(std::string_view tag) {
  return OneOf(tag, {"b",    "i",      "u",    "em",   "strong", "font",
                     "span", "a",      "tt",   "code", "small",  "big",
                     "sub",  "sup",    "s",    "strike", "abbr", "acronym",
                     "cite", "q",      "samp", "kbd",  "var",    "dfn",
                     "ins",  "del",    "label"});
}

int GroupTagWeight(std::string_view tag) {
  // Paper §4: group tags = {h1..h6, title, div, p, tr, dt, dd, li,
  // u, strong, b, em, i}. Weights order headings above paragraph-level
  // tags above inline emphasis; ties within a band are fine because the
  // grouping rule only compares weights of *different* sibling runs.
  if (tag == "h1") return 100;
  if (tag == "h2") return 95;
  if (tag == "h3") return 90;
  if (tag == "h4") return 85;
  if (tag == "h5") return 80;
  if (tag == "h6") return 75;
  if (tag == "title") return 70;
  if (OneOf(tag, {"div", "p", "tr", "dt", "dd", "li"})) return 50;
  if (OneOf(tag, {"u", "strong", "b", "em", "i"})) return 25;
  return 0;
}

bool IsListTag(std::string_view tag) {
  return OneOf(tag, {"body", "table", "dl", "ul", "ol", "dir", "menu"});
}

bool IsRawTextTag(std::string_view tag) {
  return tag == "script" || tag == "style";
}

bool ClosesOnOpen(std::string_view open_tag, std::string_view new_tag) {
  // <p> is closed by any block-level start tag.
  if (open_tag == "p") return IsBlockLevelTag(new_tag);
  if (open_tag == "li") return new_tag == "li";
  if (open_tag == "dt" || open_tag == "dd") {
    return new_tag == "dt" || new_tag == "dd";
  }
  if (open_tag == "td" || open_tag == "th") {
    return new_tag == "td" || new_tag == "th" || new_tag == "tr";
  }
  if (open_tag == "tr") return new_tag == "tr";
  if (open_tag == "option") return new_tag == "option" || new_tag == "optgroup";
  if (open_tag == "head") return new_tag == "body";
  return false;
}

}  // namespace webre
