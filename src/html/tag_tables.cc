#include "html/tag_tables.h"

#include <cstdint>
#include <vector>

namespace webre {
namespace {

bool OneOf(std::string_view tag, std::initializer_list<std::string_view> set) {
  for (std::string_view candidate : set) {
    if (tag == candidate) return true;
  }
  return false;
}

}  // namespace

bool IsVoidTag(std::string_view tag) {
  return OneOf(tag, {"br", "hr", "img", "input", "meta", "link", "area",
                     "base", "col", "param", "isindex", "basefont"});
}

bool IsBlockLevelTag(std::string_view tag) {
  return OneOf(tag, {"html",   "head",   "body",    "title",      "div",
                     "p",      "h1",     "h2",      "h3",         "h4",
                     "h5",     "h6",     "ul",      "ol",         "dl",
                     "li",     "dt",     "dd",      "dir",        "menu",
                     "table",  "tr",     "td",      "th",         "thead",
                     "tbody",  "tfoot",  "caption", "blockquote", "pre",
                     "center", "form",   "address", "hr",         "fieldset",
                     "frame",  "frameset"});
}

bool IsTextLevelTag(std::string_view tag) {
  return OneOf(tag, {"b",    "i",      "u",    "em",   "strong", "font",
                     "span", "a",      "tt",   "code", "small",  "big",
                     "sub",  "sup",    "s",    "strike", "abbr", "acronym",
                     "cite", "q",      "samp", "kbd",  "var",    "dfn",
                     "ins",  "del",    "label"});
}

int GroupTagWeight(std::string_view tag) {
  // Paper §4: group tags = {h1..h6, title, div, p, tr, dt, dd, li,
  // u, strong, b, em, i}. Weights order headings above paragraph-level
  // tags above inline emphasis; ties within a band are fine because the
  // grouping rule only compares weights of *different* sibling runs.
  if (tag == "h1") return 100;
  if (tag == "h2") return 95;
  if (tag == "h3") return 90;
  if (tag == "h4") return 85;
  if (tag == "h5") return 80;
  if (tag == "h6") return 75;
  if (tag == "title") return 70;
  if (OneOf(tag, {"div", "p", "tr", "dt", "dd", "li"})) return 50;
  if (OneOf(tag, {"u", "strong", "b", "em", "i"})) return 25;
  return 0;
}

bool IsListTag(std::string_view tag) {
  return OneOf(tag, {"body", "table", "dl", "ul", "ol", "dir", "menu"});
}

bool IsRawTextTag(std::string_view tag) {
  return tag == "script" || tag == "style";
}

bool ClosesOnOpen(std::string_view open_tag, std::string_view new_tag) {
  // <p> is closed by any block-level start tag.
  if (open_tag == "p") return IsBlockLevelTag(new_tag);
  if (open_tag == "li") return new_tag == "li";
  if (open_tag == "dt" || open_tag == "dd") {
    return new_tag == "dt" || new_tag == "dd";
  }
  if (open_tag == "td" || open_tag == "th") {
    return new_tag == "td" || new_tag == "th" || new_tag == "tr";
  }
  if (open_tag == "tr") return new_tag == "tr";
  if (open_tag == "option") return new_tag == "option" || new_tag == "optgroup";
  if (open_tag == "head") return new_tag == "body";
  return false;
}

namespace {

// Flag arrays over the NameTable's seeded id range, built once from the
// string tables above so the two overload families cannot drift apart.
// Dynamic ids (>= seed_count) fall outside the arrays and classify as
// "none of the above", which matches the string predicates: the seeded
// vocabulary contains every classified tag.
struct TagIdTables {
  enum : uint8_t {
    kVoid = 1u << 0,
    kBlock = 1u << 1,
    kText = 1u << 2,
    kList = 1u << 3,
    kRawText = 1u << 4,
  };

  std::vector<uint8_t> flags;
  std::vector<int> weights;
  NameId p, li, dt, dd, td, th, tr, option, optgroup, head, body;

  TagIdTables() {
    NameTable& table = NameTable::Global();
    const size_t n = table.seed_count();
    flags.assign(n, 0);
    weights.assign(n, 0);
    for (NameId id = 0; id < n; ++id) {
      std::string_view name = table.NameOf(id);
      uint8_t f = 0;
      if (IsVoidTag(name)) f |= kVoid;
      if (IsBlockLevelTag(name)) f |= kBlock;
      if (IsTextLevelTag(name)) f |= kText;
      if (IsListTag(name)) f |= kList;
      if (IsRawTextTag(name)) f |= kRawText;
      flags[id] = f;
      weights[id] = GroupTagWeight(name);
    }
    p = table.Find("p");
    li = table.Find("li");
    dt = table.Find("dt");
    dd = table.Find("dd");
    td = table.Find("td");
    th = table.Find("th");
    tr = table.Find("tr");
    option = table.Find("option");
    optgroup = table.Find("optgroup");
    head = table.Find("head");
    body = table.Find("body");
  }

  bool Has(NameId tag, uint8_t flag) const {
    return tag < flags.size() && (flags[tag] & flag) != 0;
  }
};

const TagIdTables& IdTables() {
  static const TagIdTables tables;
  return tables;
}

}  // namespace

bool IsVoidTag(NameId tag) {
  return IdTables().Has(tag, TagIdTables::kVoid);
}

bool IsBlockLevelTag(NameId tag) {
  return IdTables().Has(tag, TagIdTables::kBlock);
}

bool IsTextLevelTag(NameId tag) {
  return IdTables().Has(tag, TagIdTables::kText);
}

int GroupTagWeight(NameId tag) {
  const TagIdTables& t = IdTables();
  return tag < t.weights.size() ? t.weights[tag] : 0;
}

bool IsListTag(NameId tag) { return IdTables().Has(tag, TagIdTables::kList); }

bool IsRawTextTag(NameId tag) {
  return IdTables().Has(tag, TagIdTables::kRawText);
}

bool ClosesOnOpen(NameId open_tag, NameId new_tag) {
  const TagIdTables& t = IdTables();
  if (open_tag == t.p) return IsBlockLevelTag(new_tag);
  if (open_tag == t.li) return new_tag == t.li;
  if (open_tag == t.dt || open_tag == t.dd) {
    return new_tag == t.dt || new_tag == t.dd;
  }
  if (open_tag == t.td || open_tag == t.th) {
    return new_tag == t.td || new_tag == t.th || new_tag == t.tr;
  }
  if (open_tag == t.tr) return new_tag == t.tr;
  if (open_tag == t.option) {
    return new_tag == t.option || new_tag == t.optgroup;
  }
  if (open_tag == t.head) return new_tag == t.body;
  return false;
}

}  // namespace webre
