#ifndef WEBRE_HTML_LEXER_H_
#define WEBRE_HTML_LEXER_H_

#include <string>
#include <string_view>
#include <vector>

#include "util/resource_limits.h"
#include "util/status.h"
#include "xml/name_table.h"
#include "xml/node.h"  // for Attribute

namespace webre {

/// Kind of an HTML token produced by TokenizeHtml.
enum class HtmlTokenType {
  kStartTag,  ///< `<name attr=...>`; `self_closing` set for `<name/>`
  kEndTag,    ///< `</name>`
  kText,      ///< character data (entities decoded)
  kComment,   ///< `<!-- ... -->` (content in `text`)
  kDoctype,   ///< `<!DOCTYPE ...>` (raw content in `text`)
};

/// One lexical token of an HTML document.
///
/// Zero-copy: `text()` is a view into the input buffer whenever the
/// content needed no entity decoding (the overwhelmingly common case);
/// only text containing '&' is materialized into an owned, decoded
/// string. Tokens must therefore not outlive the buffer passed to
/// TokenizeHtml — the parser consumes them immediately.
struct HtmlToken {
  HtmlTokenType type = HtmlTokenType::kText;
  /// Interned tag name, lowercased; kInvalidNameId for
  /// text/comment/doctype.
  NameId name_id = kInvalidNameId;
  /// Start-tag attributes, names lowercased, values entity-decoded.
  std::vector<Attribute> attributes;
  /// True for `<name .../>`.
  bool self_closing = false;

  /// Tag name, lowercased; empty for text/comment/doctype.
  std::string_view name() const {
    return NameTable::Global().NameOf(name_id);
  }

  /// Character data / comment content (entities decoded for text).
  std::string_view text() const {
    return has_decoded_text ? std::string_view(decoded_text) : text_view;
  }

  /// Raw storage for text(): a slice of the lexer input, or a decoded
  /// copy when the slice contained an entity. Use text() instead.
  std::string_view text_view;
  std::string decoded_text;
  bool has_decoded_text = false;
};

/// Tokenizes `html` leniently, never failing: malformed markup degrades
/// to text tokens the way legacy browsers treat it. Raw-text elements
/// (`script`, `style`) swallow everything up to their matching end tag
/// into a single text token. The returned tokens view into `html` (see
/// HtmlToken) — keep the buffer alive while they are in use.
std::vector<HtmlToken> TokenizeHtml(std::string_view html);

/// Guarded variant: charges the input size and every decoded entity
/// against `budget` (max_input_bytes, max_steps, max_entity_expansions).
/// On exhaustion returns kResourceExhausted and `out` holds the tokens
/// lexed so far; with a sufficient budget, `out` is identical to
/// TokenizeHtml(html).
Status TokenizeHtml(std::string_view html, ResourceBudget& budget,
                    std::vector<HtmlToken>& out);

}  // namespace webre

#endif  // WEBRE_HTML_LEXER_H_
