#ifndef WEBRE_HTML_LEXER_H_
#define WEBRE_HTML_LEXER_H_

#include <string>
#include <string_view>
#include <vector>

#include "util/resource_limits.h"
#include "util/status.h"
#include "xml/node.h"  // for Attribute

namespace webre {

/// Kind of an HTML token produced by TokenizeHtml.
enum class HtmlTokenType {
  kStartTag,  ///< `<name attr=...>`; `self_closing` set for `<name/>`
  kEndTag,    ///< `</name>`
  kText,      ///< character data (entities decoded)
  kComment,   ///< `<!-- ... -->` (content in `text`)
  kDoctype,   ///< `<!DOCTYPE ...>` (raw content in `text`)
};

/// One lexical token of an HTML document.
struct HtmlToken {
  HtmlTokenType type = HtmlTokenType::kText;
  /// Tag name, lowercased; empty for text/comment/doctype.
  std::string name;
  /// Character data / comment content.
  std::string text;
  /// Start-tag attributes, names lowercased, values entity-decoded.
  std::vector<Attribute> attributes;
  /// True for `<name .../>`.
  bool self_closing = false;
};

/// Tokenizes `html` leniently, never failing: malformed markup degrades
/// to text tokens the way legacy browsers treat it. Raw-text elements
/// (`script`, `style`) swallow everything up to their matching end tag
/// into a single text token.
std::vector<HtmlToken> TokenizeHtml(std::string_view html);

/// Guarded variant: charges the input size and every decoded entity
/// against `budget` (max_input_bytes, max_steps, max_entity_expansions).
/// On exhaustion returns kResourceExhausted and `out` holds the tokens
/// lexed so far; with a sufficient budget, `out` is identical to
/// TokenizeHtml(html).
Status TokenizeHtml(std::string_view html, ResourceBudget& budget,
                    std::vector<HtmlToken>& out);

}  // namespace webre

#endif  // WEBRE_HTML_LEXER_H_
