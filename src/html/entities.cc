#include "html/entities.h"

#include <cstdint>
#include <string_view>
#include <utility>

#include "util/strings.h"

namespace webre {
namespace {

struct NamedEntity {
  std::string_view name;
  std::string_view utf8;
};

// Sorted-by-frequency-agnostic flat table; linear scan is fine (short
// table, hot entries first).
constexpr NamedEntity kNamedEntities[] = {
    {"amp", "&"},      {"lt", "<"},        {"gt", ">"},
    {"quot", "\""},    {"apos", "'"},      {"nbsp", " "},
    {"copy", "\xC2\xA9"},                  // ©
    {"reg", "\xC2\xAE"},                   // ®
    {"trade", "\xE2\x84\xA2"},             // ™
    {"mdash", "\xE2\x80\x94"},             // —
    {"ndash", "\xE2\x80\x93"},             // –
    {"hellip", "\xE2\x80\xA6"},            // …
    {"bull", "\xE2\x80\xA2"},              // •
    {"middot", "\xC2\xB7"},                // ·
    {"laquo", "\xC2\xAB"},                 // «
    {"raquo", "\xC2\xBB"},                 // »
    {"ldquo", "\xE2\x80\x9C"},             // “
    {"rdquo", "\xE2\x80\x9D"},             // ”
    {"lsquo", "\xE2\x80\x98"},             // ‘
    {"rsquo", "\xE2\x80\x99"},             // ’
    {"eacute", "\xC3\xA9"},                // é
    {"egrave", "\xC3\xA8"},                // è
    {"agrave", "\xC3\xA0"},                // à
    {"uuml", "\xC3\xBC"},                  // ü
    {"ouml", "\xC3\xB6"},                  // ö
    {"auml", "\xC3\xA4"},                  // ä
    {"szlig", "\xC3\x9F"},                 // ß
    {"ccedil", "\xC3\xA7"},                // ç
    {"ntilde", "\xC3\xB1"},                // ñ
    {"deg", "\xC2\xB0"},                   // °
    {"frac12", "\xC2\xBD"},                // ½
    {"frac14", "\xC2\xBC"},                // ¼
    {"sect", "\xC2\xA7"},                  // §
    {"para", "\xC2\xB6"},                  // ¶
    {"cent", "\xC2\xA2"},                  // ¢
    {"pound", "\xC2\xA3"},                 // £
    {"yen", "\xC2\xA5"},                   // ¥
    {"euro", "\xE2\x82\xAC"},              // €
};

void AppendUtf8(uint32_t cp, std::string& out) {
  if (cp < 0x80) {
    out.push_back(static_cast<char>(cp));
  } else if (cp < 0x800) {
    out.push_back(static_cast<char>(0xC0 | (cp >> 6)));
    out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
  } else if (cp < 0x10000) {
    out.push_back(static_cast<char>(0xE0 | (cp >> 12)));
    out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
    out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
  } else {
    out.push_back(static_cast<char>(0xF0 | (cp >> 18)));
    out.push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
    out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
    out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
  }
}

// U+FFFD REPLACEMENT CHARACTER, emitted for numeric references that name
// no valid Unicode scalar value.
constexpr std::string_view kReplacementChar = "\xEF\xBF\xBD";

// Sentinel for "accumulated past the Unicode range"; keeps the
// accumulator from wrapping on absurdly long digit strings while still
// consuming the whole reference.
constexpr uint32_t kOverflow = 0x110000;

// Tries to decode a reference starting at s[pos] (which is '&'). On
// success appends the decoded text to `out` and returns the index just
// past the reference; on failure returns pos (caller copies the '&').
size_t TryDecode(std::string_view s, size_t pos, std::string& out) {
  size_t i = pos + 1;
  if (i >= s.size()) return pos;
  if (s[i] == '#') {
    ++i;
    bool hex = i < s.size() && (s[i] == 'x' || s[i] == 'X');
    if (hex) ++i;
    uint32_t cp = 0;
    size_t digits = 0;
    while (i < s.size()) {
      char c = AsciiToLower(s[i]);
      uint32_t digit;
      if (IsAsciiDigit(c)) {
        digit = static_cast<uint32_t>(c - '0');
      } else if (hex && c >= 'a' && c <= 'f') {
        digit = static_cast<uint32_t>(c - 'a' + 10);
      } else {
        break;
      }
      if (cp < kOverflow) cp = cp * (hex ? 16 : 10) + digit;
      if (cp > 0x10FFFF) cp = kOverflow;
      ++digits;
      ++i;
    }
    if (digits == 0) return pos;
    // Scalar values only: zero, surrogates and out-of-range references
    // become U+FFFD rather than ill-formed UTF-8 or verbatim text.
    if (cp == 0 || cp > 0x10FFFF || (cp >= 0xD800 && cp <= 0xDFFF)) {
      out.append(kReplacementChar);
    } else {
      AppendUtf8(cp, out);
    }
    if (i < s.size() && s[i] == ';') ++i;  // semicolon optional in legacy HTML
    return i;
  }
  // Named reference: letters/digits up to ';' (required for named refs to
  // avoid mangling bare ampersands in text like "AT&T Labs").
  size_t start = i;
  while (i < s.size() && IsAsciiAlnum(s[i])) ++i;
  if (i >= s.size() || s[i] != ';' || i == start) return pos;
  std::string_view name = s.substr(start, i - start);
  for (const NamedEntity& e : kNamedEntities) {
    if (EqualsIgnoreCase(e.name, name)) {
      out.append(e.utf8);
      return i + 1;
    }
  }
  return pos;
}

}  // namespace

std::string DecodeHtmlEntities(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  size_t i = 0;
  while (i < s.size()) {
    if (s[i] == '&') {
      size_t next = TryDecode(s, i, out);
      if (next != i) {
        i = next;
        continue;
      }
    }
    out.push_back(s[i]);
    ++i;
  }
  return out;
}

Status DecodeHtmlEntities(std::string_view s, ResourceBudget& budget,
                          std::string& out) {
  out.reserve(out.size() + s.size());
  size_t i = 0;
  while (i < s.size()) {
    if (s[i] == '&') {
      size_t next = TryDecode(s, i, out);
      if (next != i) {
        WEBRE_RETURN_IF_ERROR(budget.ChargeEntity());
        i = next;
        continue;
      }
    }
    out.push_back(s[i]);
    ++i;
  }
  return Status::Ok();
}

}  // namespace webre
