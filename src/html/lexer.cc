#include "html/lexer.h"

#include "html/entities.h"
#include "html/tag_tables.h"
#include "util/strings.h"

namespace webre {
namespace {

class Lexer {
 public:
  Lexer(std::string_view input, ResourceBudget& budget)
      : input_(input), budget_(budget) {}

  Status Run(std::vector<HtmlToken>& tokens) {
    WEBRE_RETURN_IF_ERROR(budget_.ChargeInput(input_.size()));
    // Lexing is a single forward sweep; charge it up front.
    WEBRE_RETURN_IF_ERROR(budget_.ChargeSteps(input_.size()));

    // Pending text is tracked as a [text_begin_, pos_) slice of the
    // input: every non-markup character is consumed at pos_ and the next
    // one either extends the run or flushes it, so the run is always
    // contiguous and nothing is copied until a token materializes.
    auto flush_text = [&]() -> Status {
      if (text_begin_ == kNoText) return Status::Ok();
      std::string_view slice =
          input_.substr(text_begin_, pos_ - text_begin_);
      text_begin_ = kNoText;
      HtmlToken token;
      token.type = HtmlTokenType::kText;
      WEBRE_RETURN_IF_ERROR(SetTokenText(token, slice));
      tokens.push_back(std::move(token));
      return Status::Ok();
    };
    auto extend_text = [&]() {
      if (text_begin_ == kNoText) text_begin_ = pos_;
      ++pos_;
    };

    while (pos_ < input_.size()) {
      char c = input_[pos_];
      if (c != '<') {
        extend_text();
        continue;
      }
      // '<' — decide whether this opens markup or is literal text.
      if (pos_ + 1 >= input_.size()) {
        extend_text();
        continue;
      }
      char next = input_[pos_ + 1];
      if (next == '!') {
        WEBRE_RETURN_IF_ERROR(flush_text());
        LexDeclaration(tokens);
      } else if (next == '/') {
        if (pos_ + 2 < input_.size() && IsAsciiAlpha(input_[pos_ + 2])) {
          WEBRE_RETURN_IF_ERROR(flush_text());
          LexEndTag(tokens);
        } else {
          extend_text();
        }
      } else if (IsAsciiAlpha(next)) {
        WEBRE_RETURN_IF_ERROR(flush_text());
        WEBRE_RETURN_IF_ERROR(LexStartTag(tokens));
      } else {
        // "<3", "< 5" etc. — literal text, as browsers treat it.
        extend_text();
      }
    }
    return flush_text();
  }

 private:
  static constexpr size_t kNoText = static_cast<size_t>(-1);

  /// Stores `slice` as the token's text. Decodes into an owned string
  /// only when an entity might be present; the decoder charges the
  /// budget per decoded reference, so skipping it for '&'-free slices
  /// leaves accounting identical.
  Status SetTokenText(HtmlToken& token, std::string_view slice) {
    if (slice.find('&') == std::string_view::npos) {
      token.text_view = slice;
      return Status::Ok();
    }
    token.has_decoded_text = true;
    return DecodeHtmlEntities(slice, budget_, token.decoded_text);
  }

  void LexDeclaration(std::vector<HtmlToken>& tokens) {
    // pos_ is at "<!". Comment/doctype content is kept raw (no entity
    // decoding), so the token is always a pure slice.
    if (input_.substr(pos_).substr(0, 4) == "<!--") {
      pos_ += 4;
      size_t end = input_.find("-->", pos_);
      HtmlToken token;
      token.type = HtmlTokenType::kComment;
      if (end == std::string_view::npos) {
        token.text_view = input_.substr(pos_);
        pos_ = input_.size();
      } else {
        token.text_view = input_.substr(pos_, end - pos_);
        pos_ = end + 3;
      }
      tokens.push_back(std::move(token));
      return;
    }
    // <!DOCTYPE ...> or any other <!...> declaration: skip to '>'.
    size_t end = input_.find('>', pos_);
    HtmlToken token;
    token.type = HtmlTokenType::kDoctype;
    if (end == std::string_view::npos) {
      token.text_view = input_.substr(pos_ + 2);
      pos_ = input_.size();
    } else {
      token.text_view = input_.substr(pos_ + 2, end - pos_ - 2);
      pos_ = end + 1;
    }
    tokens.push_back(std::move(token));
  }

  void LexEndTag(std::vector<HtmlToken>& tokens) {
    pos_ += 2;  // "</"
    size_t name_begin = pos_;
    while (pos_ < input_.size() && IsAsciiAlnum(input_[pos_])) ++pos_;
    std::string_view raw_name =
        input_.substr(name_begin, pos_ - name_begin);
    // Skip everything else up to '>'.
    while (pos_ < input_.size() && input_[pos_] != '>') ++pos_;
    if (pos_ < input_.size()) ++pos_;
    HtmlToken token;
    token.type = HtmlTokenType::kEndTag;
    token.name_id = NameTable::Global().InternLowercase(raw_name);
    tokens.push_back(std::move(token));
  }

  Status LexStartTag(std::vector<HtmlToken>& tokens) {
    ++pos_;  // '<'
    HtmlToken token;
    token.type = HtmlTokenType::kStartTag;
    size_t name_begin = pos_;
    while (pos_ < input_.size() &&
           (IsAsciiAlnum(input_[pos_]) || input_[pos_] == '-')) {
      ++pos_;
    }
    token.name_id = NameTable::Global().InternLowercase(
        input_.substr(name_begin, pos_ - name_begin));
    // Attributes.
    while (pos_ < input_.size()) {
      while (pos_ < input_.size() && IsAsciiSpace(input_[pos_])) ++pos_;
      if (pos_ >= input_.size()) break;
      if (input_[pos_] == '>') {
        ++pos_;
        break;
      }
      if (input_[pos_] == '/' && pos_ + 1 < input_.size() &&
          input_[pos_ + 1] == '>') {
        token.self_closing = true;
        pos_ += 2;
        break;
      }
      if (input_[pos_] == '/') {  // stray slash
        ++pos_;
        continue;
      }
      // Attribute name.
      std::string attr_name;
      while (pos_ < input_.size() && input_[pos_] != '=' &&
             input_[pos_] != '>' && input_[pos_] != '/' &&
             !IsAsciiSpace(input_[pos_])) {
        attr_name.push_back(AsciiToLower(input_[pos_]));
        ++pos_;
      }
      if (attr_name.empty()) {
        ++pos_;  // defensive: skip the offending character
        continue;
      }
      while (pos_ < input_.size() && IsAsciiSpace(input_[pos_])) ++pos_;
      // The raw value is always a contiguous slice of the input; it is
      // only copied (and decoded) when materializing the Attribute.
      std::string_view raw_value;
      if (pos_ < input_.size() && input_[pos_] == '=') {
        ++pos_;
        while (pos_ < input_.size() && IsAsciiSpace(input_[pos_])) ++pos_;
        if (pos_ < input_.size() &&
            (input_[pos_] == '"' || input_[pos_] == '\'')) {
          char quote = input_[pos_];
          ++pos_;
          size_t value_begin = pos_;
          while (pos_ < input_.size() && input_[pos_] != quote) ++pos_;
          raw_value = input_.substr(value_begin, pos_ - value_begin);
          if (pos_ < input_.size()) ++pos_;  // closing quote
        } else {
          size_t value_begin = pos_;
          while (pos_ < input_.size() && !IsAsciiSpace(input_[pos_]) &&
                 input_[pos_] != '>') {
            ++pos_;
          }
          raw_value = input_.substr(value_begin, pos_ - value_begin);
        }
      }
      std::string decoded_value;
      if (raw_value.find('&') == std::string_view::npos) {
        decoded_value.assign(raw_value);
      } else {
        WEBRE_RETURN_IF_ERROR(
            DecodeHtmlEntities(raw_value, budget_, decoded_value));
      }
      token.attributes.push_back(
          Attribute{std::move(attr_name), std::move(decoded_value)});
    }

    const NameId tag = token.name_id;
    const bool self_closing = token.self_closing;
    tokens.push_back(std::move(token));

    // Raw-text elements: swallow content up to the matching end tag.
    if (IsRawTextTag(tag) && !self_closing) {
      std::string closer = "</";
      closer.append(NameTable::Global().NameOf(tag));
      size_t end = pos_;
      while (true) {
        end = input_.find('<', end);
        if (end == std::string_view::npos) {
          end = input_.size();
          break;
        }
        std::string_view rest = input_.substr(end);
        if (rest.size() >= closer.size() &&
            EqualsIgnoreCase(rest.substr(0, closer.size()), closer)) {
          break;
        }
        ++end;
      }
      if (end > pos_) {
        HtmlToken raw;
        raw.type = HtmlTokenType::kText;
        // Raw-text content is taken verbatim — no entity decoding —
        // matching how browsers treat script/style data.
        raw.text_view = input_.substr(pos_, end - pos_);
        tokens.push_back(std::move(raw));
      }
      pos_ = end;
    }
    return Status::Ok();
  }

  std::string_view input_;
  ResourceBudget& budget_;
  size_t pos_ = 0;
  size_t text_begin_ = kNoText;
};

}  // namespace

std::vector<HtmlToken> TokenizeHtml(std::string_view html) {
  ResourceBudget unlimited(ResourceLimits::Unlimited());
  std::vector<HtmlToken> tokens;
  // An unlimited budget never trips, so the guarded path cannot fail.
  TokenizeHtml(html, unlimited, tokens);
  return tokens;
}

Status TokenizeHtml(std::string_view html, ResourceBudget& budget,
                    std::vector<HtmlToken>& out) {
  return Lexer(html, budget).Run(out);
}

}  // namespace webre
