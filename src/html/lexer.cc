#include "html/lexer.h"

#include "html/entities.h"
#include "html/tag_tables.h"
#include "util/strings.h"

namespace webre {
namespace {

class Lexer {
 public:
  Lexer(std::string_view input, ResourceBudget& budget)
      : input_(input), budget_(budget) {}

  Status Run(std::vector<HtmlToken>& tokens) {
    WEBRE_RETURN_IF_ERROR(budget_.ChargeInput(input_.size()));
    // Lexing is a single forward sweep; charge it up front.
    WEBRE_RETURN_IF_ERROR(budget_.ChargeSteps(input_.size()));

    std::string text;
    auto flush_text = [&]() -> Status {
      if (text.empty()) return Status::Ok();
      HtmlToken token;
      token.type = HtmlTokenType::kText;
      WEBRE_RETURN_IF_ERROR(DecodeHtmlEntities(text, budget_, token.text));
      tokens.push_back(std::move(token));
      text.clear();
      return Status::Ok();
    };

    while (pos_ < input_.size()) {
      char c = input_[pos_];
      if (c != '<') {
        text.push_back(c);
        ++pos_;
        continue;
      }
      // '<' — decide whether this opens markup or is literal text.
      if (pos_ + 1 >= input_.size()) {
        text.push_back(c);
        ++pos_;
        continue;
      }
      char next = input_[pos_ + 1];
      if (next == '!') {
        WEBRE_RETURN_IF_ERROR(flush_text());
        LexDeclaration(tokens);
      } else if (next == '/') {
        if (pos_ + 2 < input_.size() && IsAsciiAlpha(input_[pos_ + 2])) {
          WEBRE_RETURN_IF_ERROR(flush_text());
          LexEndTag(tokens);
        } else {
          text.push_back(c);
          ++pos_;
        }
      } else if (IsAsciiAlpha(next)) {
        WEBRE_RETURN_IF_ERROR(flush_text());
        WEBRE_RETURN_IF_ERROR(LexStartTag(tokens));
      } else {
        // "<3", "< 5" etc. — literal text, as browsers treat it.
        text.push_back(c);
        ++pos_;
      }
    }
    return flush_text();
  }

 private:
  void LexDeclaration(std::vector<HtmlToken>& tokens) {
    // pos_ is at "<!".
    if (input_.substr(pos_).substr(0, 4) == "<!--") {
      pos_ += 4;
      size_t end = input_.find("-->", pos_);
      HtmlToken token;
      token.type = HtmlTokenType::kComment;
      if (end == std::string_view::npos) {
        token.text = std::string(input_.substr(pos_));
        pos_ = input_.size();
      } else {
        token.text = std::string(input_.substr(pos_, end - pos_));
        pos_ = end + 3;
      }
      tokens.push_back(std::move(token));
      return;
    }
    // <!DOCTYPE ...> or any other <!...> declaration: skip to '>'.
    size_t end = input_.find('>', pos_);
    HtmlToken token;
    token.type = HtmlTokenType::kDoctype;
    if (end == std::string_view::npos) {
      token.text = std::string(input_.substr(pos_ + 2));
      pos_ = input_.size();
    } else {
      token.text = std::string(input_.substr(pos_ + 2, end - pos_ - 2));
      pos_ = end + 1;
    }
    tokens.push_back(std::move(token));
  }

  void LexEndTag(std::vector<HtmlToken>& tokens) {
    pos_ += 2;  // "</"
    std::string name;
    while (pos_ < input_.size() && IsAsciiAlnum(input_[pos_])) {
      name.push_back(AsciiToLower(input_[pos_]));
      ++pos_;
    }
    // Skip everything else up to '>'.
    while (pos_ < input_.size() && input_[pos_] != '>') ++pos_;
    if (pos_ < input_.size()) ++pos_;
    HtmlToken token;
    token.type = HtmlTokenType::kEndTag;
    token.name = std::move(name);
    tokens.push_back(std::move(token));
  }

  Status LexStartTag(std::vector<HtmlToken>& tokens) {
    ++pos_;  // '<'
    HtmlToken token;
    token.type = HtmlTokenType::kStartTag;
    while (pos_ < input_.size() &&
           (IsAsciiAlnum(input_[pos_]) || input_[pos_] == '-')) {
      token.name.push_back(AsciiToLower(input_[pos_]));
      ++pos_;
    }
    // Attributes.
    while (pos_ < input_.size()) {
      while (pos_ < input_.size() && IsAsciiSpace(input_[pos_])) ++pos_;
      if (pos_ >= input_.size()) break;
      if (input_[pos_] == '>') {
        ++pos_;
        break;
      }
      if (input_[pos_] == '/' && pos_ + 1 < input_.size() &&
          input_[pos_ + 1] == '>') {
        token.self_closing = true;
        pos_ += 2;
        break;
      }
      if (input_[pos_] == '/') {  // stray slash
        ++pos_;
        continue;
      }
      // Attribute name.
      std::string attr_name;
      while (pos_ < input_.size() && input_[pos_] != '=' &&
             input_[pos_] != '>' && input_[pos_] != '/' &&
             !IsAsciiSpace(input_[pos_])) {
        attr_name.push_back(AsciiToLower(input_[pos_]));
        ++pos_;
      }
      if (attr_name.empty()) {
        ++pos_;  // defensive: skip the offending character
        continue;
      }
      while (pos_ < input_.size() && IsAsciiSpace(input_[pos_])) ++pos_;
      std::string attr_value;
      if (pos_ < input_.size() && input_[pos_] == '=') {
        ++pos_;
        while (pos_ < input_.size() && IsAsciiSpace(input_[pos_])) ++pos_;
        if (pos_ < input_.size() &&
            (input_[pos_] == '"' || input_[pos_] == '\'')) {
          char quote = input_[pos_];
          ++pos_;
          while (pos_ < input_.size() && input_[pos_] != quote) {
            attr_value.push_back(input_[pos_]);
            ++pos_;
          }
          if (pos_ < input_.size()) ++pos_;  // closing quote
        } else {
          while (pos_ < input_.size() && !IsAsciiSpace(input_[pos_]) &&
                 input_[pos_] != '>') {
            attr_value.push_back(input_[pos_]);
            ++pos_;
          }
        }
      }
      std::string decoded_value;
      WEBRE_RETURN_IF_ERROR(
          DecodeHtmlEntities(attr_value, budget_, decoded_value));
      token.attributes.push_back(
          Attribute{std::move(attr_name), std::move(decoded_value)});
    }

    const std::string tag = token.name;
    const bool self_closing = token.self_closing;
    tokens.push_back(std::move(token));

    // Raw-text elements: swallow content up to the matching end tag.
    if (IsRawTextTag(tag) && !self_closing) {
      std::string closer = "</" + tag;
      size_t end = pos_;
      while (true) {
        end = input_.find('<', end);
        if (end == std::string_view::npos) {
          end = input_.size();
          break;
        }
        std::string_view rest = input_.substr(end);
        if (rest.size() >= closer.size() &&
            EqualsIgnoreCase(rest.substr(0, closer.size()), closer)) {
          break;
        }
        ++end;
      }
      if (end > pos_) {
        HtmlToken raw;
        raw.type = HtmlTokenType::kText;
        raw.text = std::string(input_.substr(pos_, end - pos_));
        tokens.push_back(std::move(raw));
      }
      pos_ = end;
    }
    return Status::Ok();
  }

  std::string_view input_;
  ResourceBudget& budget_;
  size_t pos_ = 0;
};

}  // namespace

std::vector<HtmlToken> TokenizeHtml(std::string_view html) {
  ResourceBudget unlimited(ResourceLimits::Unlimited());
  std::vector<HtmlToken> tokens;
  // An unlimited budget never trips, so the guarded path cannot fail.
  TokenizeHtml(html, unlimited, tokens);
  return tokens;
}

Status TokenizeHtml(std::string_view html, ResourceBudget& budget,
                    std::vector<HtmlToken>& out) {
  return Lexer(html, budget).Run(out);
}

}  // namespace webre
