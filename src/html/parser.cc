#include "html/parser.h"

#include <vector>

#include "html/lexer.h"
#include "html/tag_tables.h"
#include "util/strings.h"

namespace webre {
namespace {

class TreeBuilder {
 public:
  TreeBuilder(const HtmlParseOptions& options, ResourceBudget& budget)
      : options_(options), budget_(budget) {}

  StatusOr<std::unique_ptr<Node>> Build(std::vector<HtmlToken> tokens) {
    // Tag comparisons below are all 32-bit NameId compares; intern the
    // few synthetic/structural names once per parse.
    comment_id_ = InternName("#comment");
    html_id_ = InternName("html");
    root_ = Node::MakeElement(InternName("#root"));
    stack_.push_back(root_.get());
    WEBRE_RETURN_IF_ERROR(budget_.ChargeNodes(1));
    WEBRE_RETURN_IF_ERROR(budget_.ChargeSteps(tokens.size()));

    for (HtmlToken& token : tokens) {
      switch (token.type) {
        case HtmlTokenType::kText:
          WEBRE_RETURN_IF_ERROR(HandleText(token));
          break;
        case HtmlTokenType::kStartTag:
          WEBRE_RETURN_IF_ERROR(HandleStartTag(token));
          break;
        case HtmlTokenType::kEndTag:
          HandleEndTag(token);
          break;
        case HtmlTokenType::kComment:
        case HtmlTokenType::kDoctype:
          if (!options_.drop_comments) {
            // Comments are represented as elements named "#comment" so
            // the shared tree model needs no extra node type; the
            // restructuring pipeline deletes them like any other
            // non-concept markup. The nested text node is the deepest
            // part, at stack_.size() + 1.
            WEBRE_RETURN_IF_ERROR(budget_.CheckDepth(stack_.size() + 1));
            WEBRE_RETURN_IF_ERROR(budget_.ChargeNodes(2));
            Node* node = Top()->AddElement(comment_id_);
            node->AddText(std::string(token.text()));
          }
          break;
      }
    }
    return Finish();
  }

 private:
  Node* Top() { return stack_.back(); }

  Status HandleText(const HtmlToken& token) {
    // The token's text is a view into the input until this point; it is
    // materialized (and whitespace-normalized) only once a text node is
    // actually created.
    std::string_view raw = token.text();
    if (options_.skip_whitespace_text &&
        StripAsciiWhitespace(raw).empty()) {
      return Status::Ok();
    }
    std::string text = options_.collapse_whitespace
                           ? CollapseWhitespace(raw)
                           : std::string(raw);
    if (text.empty()) return Status::Ok();
    // Merge with a preceding text sibling (tokens may split text at
    // ignored markup boundaries).
    Node* top = Top();
    if (top->child_count() > 0 &&
        top->child(top->child_count() - 1)->is_text()) {
      Node* last = top->child(top->child_count() - 1);
      std::string merged(last->text());
      merged.push_back(' ');
      merged.append(text);
      last->set_text(std::move(merged));
      return Status::Ok();
    }
    // A new text child sits one level below Top(), i.e. at depth
    // stack_.size(); charge it against the depth cap so the returned
    // tree's MeasureTree depth never exceeds max_tree_depth.
    WEBRE_RETURN_IF_ERROR(budget_.CheckDepth(stack_.size()));
    WEBRE_RETURN_IF_ERROR(budget_.ChargeNodes(1));
    top->AddText(std::move(text));
    return Status::Ok();
  }

  Status HandleStartTag(HtmlToken& token) {
    // Apply implied-end-tag repairs: close open elements that cannot
    // contain the new tag.
    while (stack_.size() > 1 &&
           ClosesOnOpen(Top()->name_id(), token.name_id)) {
      stack_.pop_back();
    }
    // stack_ holds the synthetic #root at depth 0, so its size is the
    // new element's depth.
    WEBRE_RETURN_IF_ERROR(budget_.CheckDepth(stack_.size()));
    WEBRE_RETURN_IF_ERROR(budget_.ChargeNodes(1));
    Node* element = Top()->AddElement(token.name_id);
    if (options_.keep_attributes) {
      for (Attribute& attr : token.attributes) {
        element->set_attr(attr.name, std::move(attr.value));
      }
    }
    if (!IsVoidTag(token.name_id) && !token.self_closing) {
      stack_.push_back(element);
    }
    return Status::Ok();
  }

  void HandleEndTag(const HtmlToken& token) {
    if (IsVoidTag(token.name_id)) return;  // "</br>" and friends: ignore
    // Find the nearest open element with this name.
    for (size_t i = stack_.size(); i-- > 1;) {
      if (stack_[i]->name_id() == token.name_id) {
        stack_.resize(i);
        return;
      }
    }
    // No matching open element: stray end tag, ignored.
  }

  std::unique_ptr<Node> Finish() {
    stack_.clear();
    // If the author provided an <html> element, promote it to the root
    // and hoist any stray siblings (content outside <html>) into it.
    Node* html = nullptr;
    for (size_t i = 0; i < root_->child_count(); ++i) {
      Node* child = root_->child(i);
      if (child->is_element() && child->name_id() == html_id_) {
        html = child;
        break;
      }
    }
    if (html == nullptr) {
      root_->set_name(html_id_);
      return std::move(root_);
    }
    size_t html_index = root_->IndexOf(html);
    std::unique_ptr<Node> html_owned = root_->RemoveChild(html_index);
    // Content before <html> is prepended, content after appended.
    std::vector<std::unique_ptr<Node>> rest = root_->RemoveAllChildren();
    size_t insert_at = 0;
    for (size_t i = 0; i < rest.size(); ++i) {
      if (i < html_index) {
        html_owned->InsertChild(insert_at++, std::move(rest[i]));
      } else {
        html_owned->AddChild(std::move(rest[i]));
      }
    }
    return html_owned;
  }

  HtmlParseOptions options_;
  ResourceBudget& budget_;
  std::unique_ptr<Node> root_;
  std::vector<Node*> stack_;
  NameId comment_id_ = kInvalidNameId;
  NameId html_id_ = kInvalidNameId;
};

}  // namespace

std::unique_ptr<Node> ParseHtml(std::string_view html,
                                const HtmlParseOptions& options) {
  ResourceBudget unlimited(ResourceLimits::Unlimited());
  // An unlimited budget never trips, so the guarded path cannot fail.
  StatusOr<std::unique_ptr<Node>> tree = ParseHtml(html, options, unlimited);
  return std::move(tree).value();
}

StatusOr<std::unique_ptr<Node>> ParseHtml(std::string_view html,
                                          const HtmlParseOptions& options,
                                          ResourceBudget& budget) {
  std::vector<HtmlToken> tokens;
  WEBRE_RETURN_IF_ERROR(TokenizeHtml(html, budget, tokens));
  return TreeBuilder(options, budget).Build(std::move(tokens));
}

}  // namespace webre
