#ifndef WEBRE_CORPUS_SITE_GENERATOR_H_
#define WEBRE_CORPUS_SITE_GENERATOR_H_

#include <map>
#include <string>
#include <vector>

#include "corpus/resume_generator.h"

namespace webre {

/// A synthetic web site: url -> page. Supports §5's "incorporating
/// linkage structures among HTML documents": resume pages are reachable
/// only by following links from hub pages, the way a topic crawler finds
/// them in the wild.
struct GeneratedSite {
  /// All pages by URL.
  std::map<std::string, std::string> pages;
  /// The crawl seed.
  std::string start_url;
  /// URLs of the actual resume pages (ground truth for crawler tests).
  std::vector<std::string> resume_urls;
  /// URLs of off-topic pages.
  std::vector<std::string> distractor_urls;
};

/// Options for GenerateSite.
struct SiteOptions {
  size_t resumes = 20;
  size_t distractors = 10;
  /// Resumes per hub page (the index fans out to hubs, hubs to people).
  size_t hub_fanout = 6;
  uint64_t seed = 11;
  CorpusOptions corpus;
};

/// Generates a three-level site: a start page linking to hub pages
/// ("People A–F", ...) and to some distractor pages; hubs link to
/// individual resume pages; distractors link among themselves and
/// occasionally back to hubs. Every resume is reachable from
/// `start_url`.
GeneratedSite GenerateSite(const SiteOptions& options = {});

}  // namespace webre

#endif  // WEBRE_CORPUS_SITE_GENERATOR_H_
