#ifndef WEBRE_CORPUS_RESUME_MODEL_H_
#define WEBRE_CORPUS_RESUME_MODEL_H_

#include <memory>
#include <string>
#include <vector>

#include "util/rng.h"
#include "xml/node.h"

namespace webre {

/// One education entry of a synthetic resume.
struct EducationEntry {
  std::string date;         // "June 1996"
  std::string institution;  // "Brockhaven University"
  std::string degree;       // "B.S."
  std::string major;        // "Computer Science"
  std::string gpa;          // "GPA 3.8/4.0"; empty when absent
  /// True when the institution name embeds a LOCATION instance (an
  /// intentional recognizer trap).
  bool institution_collides = false;
};

/// One experience entry.
struct ExperienceEntry {
  std::string date_range;  // "June 1999 - Present"
  std::string company;     // "Vexatron Systems Inc."
  std::string title;       // "Software Engineer"
  std::string location;    // "Austin"
};

/// Noise knobs for resume generation. Probabilities in [0,1].
struct ResumeNoise {
  /// Education entry drawing a colliding institution name.
  double colliding_institution = 0.40;
  /// A section heading drawn from the unrecognizable pool.
  double unrecognizable_heading = 0.15;
  /// Adjacent section pair swapped out of canonical order.
  double section_swap = 0.15;
  /// Optional sections present.
  double has_objective = 0.85;
  double has_courses = 0.85;
  double has_awards = 0.6;
  double has_activities = 0.6;
  double has_reference = 0.8;
  double edu_gpa = 0.7;
};

/// Section identifiers, in canonical rendering order.
enum class Section {
  kContact,
  kObjective,
  kEducation,
  kExperience,
  kSkills,
  kCourses,
  kAwards,
  kActivities,
  kReference,
};

/// Ground-truth content of one synthetic resume: all the facts, which
/// sections exist, their order, and their (possibly unrecognizable)
/// headings. Rendering styles (styles.h) turn this into HTML; the truth
/// tree (BuildTruthTree) is the semantically ideal XML a perfect
/// converter would produce.
struct ResumeData {
  std::string first_name;
  std::string last_name;
  /// "Resume of John Smith" (recognizable via the NAME concept) or the
  /// bare name (not recognizable).
  std::string headline;
  bool headline_recognizable = false;

  std::string street;
  std::string city_state;
  std::string phone_line;  // "Phone: (555) 283-9144"
  std::string email_line;  // "Email: jsmith@mailhub.net"

  std::string objective;
  std::vector<EducationEntry> education;
  std::vector<ExperienceEntry> experience;
  std::vector<std::string> skills;
  std::vector<std::string> courses;
  std::vector<std::string> awards;
  std::vector<std::string> activities;
  std::string reference_line;

  /// Sections present, in rendering order.
  std::vector<Section> section_order;
  /// Heading text per section (parallel to section_order).
  std::vector<std::string> headings;
  /// Whether headings[i] is recognizable as its section concept.
  std::vector<bool> heading_recognizable;

  /// Index of `s` in section_order, or npos.
  size_t SectionIndex(Section s) const;
};

/// Generates one resume's ground-truth data.
ResumeData GenerateResumeData(Rng& rng, const ResumeNoise& noise = {});

/// The concept element name a section maps to ("EDUCATION", ...).
const char* SectionConceptName(Section s);

/// Per-entry field orders a style may use. The first field becomes the
/// entry's head concept in the ideal tree (the consolidation rule nests
/// a group under its first object).
enum class EduFieldOrder { kDateFirst, kInstitutionFirst, kDegreeFirst };
enum class ExpFieldOrder { kTitleFirst, kDateFirst, kCompanyFirst };

/// Builds the semantically ideal XML tree for `data` given the field
/// orders a style renders with. Ideal means: sections are siblings under
/// the root in `section_order`; each entry nests under its first field's
/// concept; list sections (skills, courses) hold one element per item;
/// text-only sections (objective, awards, activities, reference) are
/// leaves. Sections whose heading is unrecognizable contribute their
/// *content* concepts directly (there is no section node to label them
/// with); likewise a non-recognizable headline yields no NAME node.
std::unique_ptr<Node> BuildTruthTree(const ResumeData& data,
                                     EduFieldOrder edu_order,
                                     ExpFieldOrder exp_order,
                                     bool contact_has_heading);

}  // namespace webre

#endif  // WEBRE_CORPUS_RESUME_MODEL_H_
