#ifndef WEBRE_CORPUS_VOCAB_H_
#define WEBRE_CORPUS_VOCAB_H_

#include <string>
#include <vector>

namespace webre {

/// Word lists for the synthetic resume corpus (the stand-in for the
/// paper's crawled collection, see DESIGN.md). Lists are deliberately
/// split into "safe" entries — which the resume ConceptSet recognizes
/// cleanly — and "colliding" entries that trip the recognizer the way
/// real pages did (e.g. "University of California" contains both an
/// INSTITUTION and a LOCATION instance), so the §4.1 error rate has
/// realistic causes rather than injected randomness.

const std::vector<std::string>& FirstNames();
const std::vector<std::string>& LastNames();
/// City lines of the form "City, State" where the state (or city) is a
/// LOCATION concept instance, so contact blocks are recognizable.
const std::vector<std::string>& CityStateLines();
const std::vector<std::string>& StreetAddresses();
/// Institution names with no vocabulary collisions ("Brockhaven
/// University").
const std::vector<std::string>& SafeInstitutions();
/// Institution names embedding LOCATION instances ("University of
/// California") — a deliberate error source.
const std::vector<std::string>& CollidingInstitutions();
const std::vector<std::string>& Degrees();
const std::vector<std::string>& Majors();
const std::vector<std::string>& Companies();
const std::vector<std::string>& JobTitles();
/// Month-name + year date strings are composed, not listed; these are
/// the month names used.
const std::vector<std::string>& Months();
const std::vector<std::string>& SkillsPool();
const std::vector<std::string>& CoursesPool();
/// Award lines, free of concept instances (so AWARDS stays a leaf).
const std::vector<std::string>& AwardLines();
const std::vector<std::string>& ActivityLines();
const std::vector<std::string>& ObjectiveLines();

/// Recognizable section headings per section concept.
const std::vector<std::string>& ContactHeadings();
const std::vector<std::string>& ObjectiveHeadings();
const std::vector<std::string>& EducationHeadings();
const std::vector<std::string>& ExperienceHeadings();
const std::vector<std::string>& SkillsHeadings();
const std::vector<std::string>& CoursesHeadings();
const std::vector<std::string>& AwardsHeadings();
const std::vector<std::string>& ActivitiesHeadings();
const std::vector<std::string>& ReferenceHeadings();
/// Headings no concept instance matches (an error source when drawn).
const std::vector<std::string>& UnrecognizableHeadings();

}  // namespace webre

#endif  // WEBRE_CORPUS_VOCAB_H_
