#include "corpus/resume_model.h"

#include <algorithm>

#include "corpus/vocab.h"
#include "util/strings.h"

namespace webre {
namespace {

std::string MonthYear(Rng& rng) {
  const std::string& month = rng.Choose(Months());
  const int year = static_cast<int>(rng.NextInRange(1988, 2001));
  return month + " " + std::to_string(year);
}

std::string DateRange(Rng& rng) {
  std::string start = MonthYear(rng);
  if (rng.NextBool(0.3)) return start + " - Present";
  return start + " - " + MonthYear(rng);
}

std::string PhoneLine(Rng& rng) {
  // The last group is kept out of the 19xx/20xx range so it never looks
  // like a year to the shape recognizer.
  const int area = static_cast<int>(rng.NextInRange(201, 989));
  const int mid = static_cast<int>(rng.NextInRange(200, 999));
  const int last = static_cast<int>(rng.NextInRange(3000, 8999));
  return "Phone: (" + std::to_string(area) + ") " + std::to_string(mid) +
         "-" + std::to_string(last);
}

std::vector<std::string> SampleWithout(const std::vector<std::string>& pool,
                                       size_t count, Rng& rng) {
  std::vector<std::string> copy = pool;
  rng.Shuffle(copy);
  copy.resize(std::min(count, copy.size()));
  return copy;
}

std::string PickHeading(const std::vector<std::string>& pool, Rng& rng,
                        double unrecognizable_prob, bool& recognizable) {
  if (rng.NextBool(unrecognizable_prob)) {
    recognizable = false;
    return rng.Choose(UnrecognizableHeadings());
  }
  recognizable = true;
  return rng.Choose(pool);
}

const std::vector<std::string>& HeadingPool(Section s) {
  switch (s) {
    case Section::kContact:
      return ContactHeadings();
    case Section::kObjective:
      return ObjectiveHeadings();
    case Section::kEducation:
      return EducationHeadings();
    case Section::kExperience:
      return ExperienceHeadings();
    case Section::kSkills:
      return SkillsHeadings();
    case Section::kCourses:
      return CoursesHeadings();
    case Section::kAwards:
      return AwardsHeadings();
    case Section::kActivities:
      return ActivitiesHeadings();
    case Section::kReference:
      return ReferenceHeadings();
  }
  return ContactHeadings();
}

}  // namespace

size_t ResumeData::SectionIndex(Section s) const {
  for (size_t i = 0; i < section_order.size(); ++i) {
    if (section_order[i] == s) return i;
  }
  return static_cast<size_t>(-1);
}

const char* SectionConceptName(Section s) {
  switch (s) {
    case Section::kContact:
      return "CONTACT";
    case Section::kObjective:
      return "OBJECTIVE";
    case Section::kEducation:
      return "EDUCATION";
    case Section::kExperience:
      return "EXPERIENCE";
    case Section::kSkills:
      return "SKILLS";
    case Section::kCourses:
      return "COURSES";
    case Section::kAwards:
      return "AWARDS";
    case Section::kActivities:
      return "ACTIVITIES";
    case Section::kReference:
      return "REFERENCE";
  }
  return "CONTACT";
}

ResumeData GenerateResumeData(Rng& rng, const ResumeNoise& noise) {
  ResumeData data;
  data.first_name = rng.Choose(FirstNames());
  data.last_name = rng.Choose(LastNames());
  if (rng.NextBool(0.6)) {
    data.headline = "Resume of " + data.first_name + " " + data.last_name;
    data.headline_recognizable = true;
  } else {
    data.headline = data.first_name + " " + data.last_name;
    data.headline_recognizable = false;
  }

  data.street = rng.Choose(StreetAddresses());
  data.city_state = rng.Choose(CityStateLines());
  data.phone_line = PhoneLine(rng);
  data.email_line = "Email: " + AsciiLower(data.first_name.substr(0, 1)) +
                    AsciiLower(data.last_name) + "@mailhub.net";

  data.objective = rng.Choose(ObjectiveLines());

  const size_t edu_count = 2 + rng.NextBelow(4);  // 2..5
  for (size_t i = 0; i < edu_count; ++i) {
    EducationEntry entry;
    entry.institution_collides = rng.NextBool(noise.colliding_institution);
    entry.institution = entry.institution_collides
                            ? rng.Choose(CollidingInstitutions())
                            : rng.Choose(SafeInstitutions());
    entry.degree = rng.Choose(Degrees());
    entry.major = rng.Choose(Majors());
    entry.date = MonthYear(rng);
    if (rng.NextBool(noise.edu_gpa)) {
      entry.gpa = "GPA 3." + std::to_string(rng.NextInRange(0, 9)) + "/4.0";
    }
    data.education.push_back(std::move(entry));
  }

  const size_t exp_count = 2 + rng.NextBelow(4);  // 2..5
  for (size_t i = 0; i < exp_count; ++i) {
    ExperienceEntry entry;
    entry.company = rng.Choose(Companies());
    entry.title = rng.Choose(JobTitles());
    entry.location = rng.Choose(CityStateLines());
    entry.date_range = DateRange(rng);
    data.experience.push_back(std::move(entry));
  }

  data.skills = SampleWithout(SkillsPool(), 5 + rng.NextBelow(5), rng);
  if (rng.NextBool(noise.has_courses)) {
    data.courses = SampleWithout(CoursesPool(), 5 + rng.NextBelow(4), rng);
  }
  if (rng.NextBool(noise.has_awards)) {
    data.awards = SampleWithout(AwardLines(), 1 + rng.NextBelow(3), rng);
  }
  if (rng.NextBool(noise.has_activities)) {
    data.activities =
        SampleWithout(ActivityLines(), 1 + rng.NextBelow(2), rng);
  }
  if (rng.NextBool(noise.has_reference)) {
    data.reference_line = "Available upon request";
  }
  const bool has_objective = rng.NextBool(noise.has_objective);
  if (!has_objective) data.objective.clear();

  // Canonical order, filtered by presence.
  const Section canonical[] = {
      Section::kContact,   Section::kObjective, Section::kEducation,
      Section::kExperience, Section::kSkills,   Section::kCourses,
      Section::kAwards,    Section::kActivities, Section::kReference};
  for (Section s : canonical) {
    const bool present =
        s == Section::kContact || s == Section::kEducation ||
        s == Section::kExperience || s == Section::kSkills ||
        (s == Section::kObjective && !data.objective.empty()) ||
        (s == Section::kCourses && !data.courses.empty()) ||
        (s == Section::kAwards && !data.awards.empty()) ||
        (s == Section::kActivities && !data.activities.empty()) ||
        (s == Section::kReference && !data.reference_line.empty());
    if (present) data.section_order.push_back(s);
  }
  if (rng.NextBool(noise.section_swap) && data.section_order.size() > 2) {
    // Swap one random adjacent pair after contact.
    const size_t i =
        1 + rng.NextBelow(static_cast<uint64_t>(data.section_order.size()) - 2);
    std::swap(data.section_order[i], data.section_order[i + 1]);
  }

  for (Section s : data.section_order) {
    bool recognizable = true;
    data.headings.push_back(PickHeading(HeadingPool(s), rng,
                                        noise.unrecognizable_heading,
                                        recognizable));
    data.heading_recognizable.push_back(recognizable);
  }
  return data;
}

namespace {

// Appends the head-nested entry tree for one education entry.
void AddEducationEntry(Node* parent, const EducationEntry& entry,
                       EduFieldOrder order) {
  // Field concepts in rendered order; head = first.
  std::vector<const char*> concepts;
  switch (order) {
    case EduFieldOrder::kDateFirst:
      concepts = {"DATE", "INSTITUTION", "DEGREE", "MAJOR"};
      break;
    case EduFieldOrder::kInstitutionFirst:
      concepts = {"INSTITUTION", "DEGREE", "MAJOR", "DATE"};
      break;
    case EduFieldOrder::kDegreeFirst:
      concepts = {"DEGREE", "MAJOR", "INSTITUTION", "DATE"};
      break;
  }
  Node* head = parent->AddElement(concepts[0]);
  for (size_t i = 1; i < concepts.size(); ++i) {
    head->AddElement(concepts[i]);
  }
  if (!entry.gpa.empty()) head->AddElement("GPA");
}

void AddExperienceEntry(Node* parent, ExpFieldOrder order) {
  std::vector<const char*> concepts;
  switch (order) {
    case ExpFieldOrder::kTitleFirst:
      concepts = {"JOBTITLE", "COMPANY", "LOCATION", "DATE"};
      break;
    case ExpFieldOrder::kDateFirst:
      concepts = {"DATE", "JOBTITLE", "COMPANY", "LOCATION"};
      break;
    case ExpFieldOrder::kCompanyFirst:
      concepts = {"COMPANY", "JOBTITLE", "LOCATION", "DATE"};
      break;
  }
  Node* head = parent->AddElement(concepts[0]);
  for (size_t i = 1; i < concepts.size(); ++i) {
    head->AddElement(concepts[i]);
  }
}

// Adds the contact chain LOCATION[PHONE, EMAIL] under `parent`.
void AddContactChain(Node* parent) {
  Node* head = parent->AddElement("LOCATION");
  head->AddElement("PHONE");
  head->AddElement("EMAIL");
}

}  // namespace

std::unique_ptr<Node> BuildTruthTree(const ResumeData& data,
                                     EduFieldOrder edu_order,
                                     ExpFieldOrder exp_order,
                                     bool contact_has_heading) {
  std::unique_ptr<Node> root = Node::MakeElement("resume");
  if (data.headline_recognizable) root->AddElement("NAME");

  for (size_t i = 0; i < data.section_order.size(); ++i) {
    const Section s = data.section_order[i];
    const bool labeled =
        data.heading_recognizable[i] &&
        (s != Section::kContact || contact_has_heading);
    Node* section_parent = root.get();
    if (labeled) {
      section_parent = root->AddElement(SectionConceptName(s));
    }
    switch (s) {
      case Section::kContact:
        AddContactChain(section_parent);
        break;
      case Section::kObjective:
      case Section::kAwards:
      case Section::kActivities:
      case Section::kReference:
        // Text-only sections: leaves (their text folds into val). With
        // an unrecognizable heading they contribute nothing.
        break;
      case Section::kEducation:
        for (const EducationEntry& entry : data.education) {
          AddEducationEntry(section_parent, entry, edu_order);
        }
        break;
      case Section::kExperience:
        for (size_t k = 0; k < data.experience.size(); ++k) {
          AddExperienceEntry(section_parent, exp_order);
        }
        break;
      case Section::kSkills:
        for (size_t k = 0; k < data.skills.size(); ++k) {
          section_parent->AddElement("LANGUAGE");
        }
        break;
      case Section::kCourses:
        for (size_t k = 0; k < data.courses.size(); ++k) {
          section_parent->AddElement("COURSE");
        }
        break;
    }
  }
  return root;
}

}  // namespace webre
