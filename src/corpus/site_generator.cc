#include "corpus/site_generator.h"

#include "corpus/crawler.h"

namespace webre {
namespace {

std::string Link(const std::string& url, const std::string& text) {
  return "<li><a href=\"" + url + "\">" + text + "</a></li>";
}

}  // namespace

GeneratedSite GenerateSite(const SiteOptions& options) {
  GeneratedSite site;
  site.start_url = "/index.html";
  Rng rng(options.seed);

  // Resume pages.
  CorpusOptions corpus = options.corpus;
  for (size_t i = 0; i < options.resumes; ++i) {
    GeneratedResume resume = GenerateResume(i, corpus);
    const std::string url = "/people/resume" + std::to_string(i) + ".html";
    site.pages[url] = resume.html;
    site.resume_urls.push_back(url);
  }

  // Distractor pages, linked in a chain with occasional cross links.
  for (size_t i = 0; i < options.distractors; ++i) {
    std::string html = GenerateDistractorPage(rng);
    const std::string url = "/misc/page" + std::to_string(i) + ".html";
    // Append a small link footer before </body>.
    std::string footer = "<ul>";
    if (i + 1 < options.distractors) {
      footer +=
          Link("/misc/page" + std::to_string(i + 1) + ".html", "next post");
    }
    if (i % 3 == 0) footer += Link("/hubs/hub0.html", "our people");
    footer += "</ul>";
    const size_t body_end = html.rfind("</body>");
    html.insert(body_end == std::string::npos ? html.size() : body_end,
                footer);
    site.pages[url] = std::move(html);
    site.distractor_urls.push_back(url);
  }

  // Hub pages fan out to resumes.
  const size_t hubs =
      (options.resumes + options.hub_fanout - 1) / options.hub_fanout;
  std::string index_links;
  for (size_t h = 0; h < hubs; ++h) {
    const std::string hub_url = "/hubs/hub" + std::to_string(h) + ".html";
    std::string html =
        "<html><head><title>Team directory</title></head><body>"
        "<h1>Our people</h1><ul>";
    for (size_t i = h * options.hub_fanout;
         i < std::min(options.resumes, (h + 1) * options.hub_fanout); ++i) {
      html += Link(site.resume_urls[i],
                   "Person " + std::to_string(i + 1));
    }
    html += "</ul></body></html>";
    site.pages[hub_url] = std::move(html);
    index_links += Link(hub_url, "Directory part " + std::to_string(h + 1));
  }

  // Start page: links to hubs and to the first distractor.
  std::string index =
      "<html><head><title>Welcome</title></head><body>"
      "<h1>Community site</h1><ul>" +
      index_links;
  if (!site.distractor_urls.empty()) {
    index += Link(site.distractor_urls[0], "From the blog");
  }
  index += "</ul></body></html>";
  site.pages[site.start_url] = std::move(index);
  return site;
}

}  // namespace webre
