#ifndef WEBRE_CORPUS_STYLES_H_
#define WEBRE_CORPUS_STYLES_H_

#include <memory>
#include <string>

#include "corpus/resume_model.h"
#include "util/rng.h"
#include "xml/node.h"

namespace webre {

/// Section markup idioms observed across resume authors. Each exercises
/// a different subset of the restructuring rules; several are deliberate
/// stressors whose known failure modes supply the paper's §4.1 error
/// distribution (Figure 4).
enum class SectionMarkup {
  kHeadingList,        ///< <h2> + <ul><li> per entry (clean)
  kHeadingParagraphs,  ///< <h3> + <p> per entry (clean)
  kSectionTable,       ///< one <table>, a <tr> per section, <td> per entry
  kDefinitionList,     ///< <dl><dt>heading<dd>entry (clean)
  kBoldBreaks,         ///< <b>heading</b><br> + flat <br>-separated text
  kDivUnderline,       ///< <div><u>heading</u><ul>... (clean)
  kHeadingOrdered,     ///< <h2> + <ol><li> (clean)
  kCrampedTable,       ///< <tr><td>heading<td>all entries in one cell
  kFontFlat,           ///< <font><b>heading</b></font> + flat text (worst)
};

/// How the person's name is displayed at the top.
enum class HeadlineMarkup {
  kParagraph,   ///< <p><b>name</b></p>
  kCenterBold,  ///< <center><b>name</b></center>
  kH1,          ///< <h1>name</h1> — the h1 then groups the whole page
                ///< under itself, a known error source
};

/// One author style: everything that varies between authors besides the
/// facts themselves.
struct StyleTraits {
  int id = 0;
  SectionMarkup markup = SectionMarkup::kHeadingList;
  HeadlineMarkup headline = HeadlineMarkup::kParagraph;
  /// Whether the contact block gets a section heading.
  bool contact_heading = true;
  EduFieldOrder edu_order = EduFieldOrder::kDateFirst;
  ExpFieldOrder exp_order = ExpFieldOrder::kTitleFirst;
  /// Field separator within an entry (tokenization delimiter).
  char delimiter = ',';
  /// Emit legacy sloppiness: unclosed <li>/<p>/<dd>, uppercase tags,
  /// attribute junk, &nbsp; entities. Exercises parser repairs without
  /// (by design) changing the recovered structure.
  bool sloppy = false;
};

/// Number of predefined author styles.
size_t StyleCount();

/// Returns predefined style `id` (0 <= id < StyleCount()).
StyleTraits MakeStyle(size_t id);

/// Draws a style id with clean styles weighted above the stressor
/// styles, roughly matching the paper's error-percentage histogram.
size_t DrawStyleId(Rng& rng);

/// Renders `data` as an HTML page in the given style. `rng` drives
/// small per-document variation (attribute junk placement etc.).
std::string RenderResumeHtml(const ResumeData& data,
                             const StyleTraits& traits, Rng& rng);

/// The semantically ideal XML tree for `data` under this style's field
/// orders (see BuildTruthTree).
std::unique_ptr<Node> BuildTruthForStyle(const ResumeData& data,
                                         const StyleTraits& traits);

}  // namespace webre

#endif  // WEBRE_CORPUS_STYLES_H_
