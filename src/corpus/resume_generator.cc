#include "corpus/resume_generator.h"

namespace webre {

GeneratedResume GenerateResume(size_t index, const CorpusOptions& options) {
  // Derive a per-document stream: mix the index into the master seed
  // with an odd multiplier so neighbouring documents decorrelate.
  Rng rng(options.seed ^ (0x9E3779B97F4A7C15ULL * (index + 1)));

  GeneratedResume out;
  out.data = GenerateResumeData(rng, options.noise);
  const size_t style_id = options.fixed_style >= 0
                              ? static_cast<size_t>(options.fixed_style)
                              : DrawStyleId(rng);
  out.style = MakeStyle(style_id);
  out.html = RenderResumeHtml(out.data, out.style, rng);
  out.truth = BuildTruthForStyle(out.data, out.style);
  return out;
}

std::vector<GeneratedResume> GenerateCorpus(size_t count,
                                            const CorpusOptions& options) {
  std::vector<GeneratedResume> corpus;
  corpus.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    corpus.push_back(GenerateResume(i, options));
  }
  return corpus;
}

}  // namespace webre
