#ifndef WEBRE_CORPUS_RESUME_GENERATOR_H_
#define WEBRE_CORPUS_RESUME_GENERATOR_H_

#include <memory>
#include <string>
#include <vector>

#include "corpus/resume_model.h"
#include "corpus/styles.h"
#include "xml/node.h"

namespace webre {

/// One generated resume page: the HTML a "web author" produced, the
/// ground-truth facts, the style used, and the semantically ideal XML
/// tree. The paper gathered ~1400 such pages with a topic crawler and
/// hand-inspected 50 for accuracy; the generator provides both at any
/// scale, with machine-checkable truth.
struct GeneratedResume {
  ResumeData data;
  StyleTraits style;
  std::string html;
  std::unique_ptr<Node> truth;
};

/// Corpus-wide generation knobs.
struct CorpusOptions {
  /// Master seed; document `index` derives its own stream from it, so
  /// GenerateResume(i) is stable regardless of generation order.
  uint64_t seed = 20020226;  // ICDE'02 San Jose, opening day
  ResumeNoise noise;
  /// Force every document to one style (by id); -1 draws weighted styles.
  int fixed_style = -1;
};

/// Generates resume number `index` of the corpus.
GeneratedResume GenerateResume(size_t index, const CorpusOptions& options = {});

/// Generates the first `count` resumes.
std::vector<GeneratedResume> GenerateCorpus(size_t count,
                                            const CorpusOptions& options = {});

}  // namespace webre

#endif  // WEBRE_CORPUS_RESUME_GENERATOR_H_
