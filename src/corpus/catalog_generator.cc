#include "corpus/catalog_generator.h"

namespace webre {
namespace {

const std::vector<std::string>& Categories() {
  static const auto& v = *new std::vector<std::string>{
      "Laptops", "Cameras", "Printers", "Monitors", "Keyboards", "Speakers"};
  return v;
}

const std::vector<std::string>& Brands() {
  static const auto& v = *new std::vector<std::string>{
      "Voltex", "Lumina", "Pyxis", "Nortech", "Zephyr", "Calytrix"};
  return v;
}

}  // namespace

ConceptSet CatalogConcepts() {
  ConceptSet set;
  set.Add({"CATEGORY",
           {"laptops", "cameras", "printers", "monitors", "keyboards",
            "speakers", "products"}});
  set.Add({"BRAND",
           {"voltex", "lumina", "pyxis", "nortech", "zephyr", "calytrix"}});
  set.Add({"PRICE", {"price", "usd"}});
  set.Add({"RATING", {"rated", "stars", "rating"}});
  set.Add({"WARRANTY", {"warranty", "guarantee"}});
  set.Add({"MODEL", {"model", "series"}});
  set.Add({"FEATURES", {"features", "specifications"}});
  return set;
}

ConstraintSet CatalogConstraints() {
  ConstraintSet constraints;
  constraints.Add(
      ConceptConstraint::Depth("CATEGORY", DepthRelation::kEq, 1));
  for (const char* content :
       {"BRAND", "PRICE", "RATING", "WARRANTY", "MODEL", "FEATURES"}) {
    constraints.Add(
        ConceptConstraint::Depth(content, DepthRelation::kGt, 1));
  }
  constraints.set_no_repeat_on_path(true);
  constraints.set_max_level(3);
  return constraints;
}

GeneratedCatalog GenerateCatalogPage(size_t index, uint64_t seed) {
  Rng rng(seed ^ (0x9E3779B97F4A7C15ULL * (index + 1)));
  GeneratedCatalog out;
  out.truth = Node::MakeElement("catalog");

  std::string html =
      "<html><head><title>Product Listing</title></head><body>";
  std::vector<std::string> categories = Categories();
  rng.Shuffle(categories);
  const size_t category_count = 2 + rng.NextBelow(3);
  categories.resize(category_count);

  for (const std::string& category : categories) {
    html += "<h2>" + category + "</h2><ul>";
    Node* category_node = out.truth->AddElement("CATEGORY");
    const size_t items = 2 + rng.NextBelow(3);
    for (size_t i = 0; i < items; ++i) {
      const std::string& brand = rng.Choose(Brands());
      const int model_num = static_cast<int>(rng.NextInRange(100, 899));
      const int dollars = static_cast<int>(rng.NextInRange(89, 2499));
      const int stars = static_cast<int>(rng.NextInRange(2, 5));
      const int warranty_years = static_cast<int>(rng.NextInRange(1, 3));
      html += "<li>" + brand + " X" + std::to_string(model_num) +
              ", Price $" + std::to_string(dollars) + ".99, Rated " +
              std::to_string(stars) + " stars, " +
              std::to_string(warranty_years) + "-year warranty</li>";
      Node* item = category_node->AddElement("BRAND");
      item->AddElement("PRICE");
      item->AddElement("RATING");
      item->AddElement("WARRANTY");
    }
    html += "</ul>";
  }
  html += "</body></html>";
  out.html = std::move(html);
  return out;
}

}  // namespace webre
