#include "corpus/styles.h"

#include <array>

#include "util/strings.h"

namespace webre {
namespace {

// Joins entry fields with the style's delimiter.
std::string JoinFields(const std::vector<std::string>& fields,
                       char delimiter) {
  std::string out;
  for (size_t i = 0; i < fields.size(); ++i) {
    if (i > 0) {
      out.push_back(delimiter);
      out.push_back(' ');
    }
    out.append(fields[i]);
  }
  return out;
}

std::vector<std::string> EduFields(const EducationEntry& e,
                                   EduFieldOrder order) {
  std::vector<std::string> fields;
  switch (order) {
    case EduFieldOrder::kDateFirst:
      fields = {e.date, e.institution, e.degree, e.major};
      break;
    case EduFieldOrder::kInstitutionFirst:
      fields = {e.institution, e.degree, e.major, e.date};
      break;
    case EduFieldOrder::kDegreeFirst:
      fields = {e.degree, e.major, e.institution, e.date};
      break;
  }
  if (!e.gpa.empty()) fields.push_back(e.gpa);
  return fields;
}

std::vector<std::string> ExpFields(const ExperienceEntry& e,
                                   ExpFieldOrder order) {
  switch (order) {
    case ExpFieldOrder::kTitleFirst:
      return {e.title, e.company, e.location, e.date_range};
    case ExpFieldOrder::kDateFirst:
      return {e.date_range, e.title, e.company, e.location};
    case ExpFieldOrder::kCompanyFirst:
      return {e.company, e.title, e.location, e.date_range};
  }
  return {};
}

// Small HTML emitter handling per-style sloppiness.
class HtmlOut {
 public:
  HtmlOut(const StyleTraits& traits, Rng& rng) : traits_(traits), rng_(rng) {}

  std::string& str() { return out_; }

  void Raw(std::string_view s) { out_.append(s); }

  // Emits "<tag>" with optional sloppy uppercase / junk attributes.
  void Open(std::string_view tag) {
    out_.push_back('<');
    AppendTag(tag);
    if (traits_.sloppy && rng_.NextBool(0.3)) {
      out_.append(" class=\"s");
      out_.append(std::to_string(rng_.NextBelow(9)));
      out_.push_back('"');
    }
    out_.push_back('>');
  }

  // Emits "</tag>"; sloppy styles sometimes omit optional end tags.
  void Close(std::string_view tag, bool optional_end = false) {
    if (traits_.sloppy && optional_end && rng_.NextBool(0.6)) return;
    out_.append("</");
    AppendTag(tag);
    out_.push_back('>');
  }

  void Text(std::string_view s) {
    if (traits_.sloppy && rng_.NextBool(0.15)) {
      // Legacy pages pepper text with non-breaking spaces.
      for (char c : s) {
        if (c == ' ' && rng_.NextBool(0.2)) {
          out_.append("&nbsp;");
        } else {
          out_.push_back(c);
        }
      }
      return;
    }
    out_.append(s);
  }

  void Br() { out_.append(traits_.sloppy ? "<BR>" : "<br>"); }

 private:
  void AppendTag(std::string_view tag) {
    if (traits_.sloppy && rng_.NextBool(0.4)) {
      for (char c : tag) out_.push_back(AsciiToUpper(c));
    } else {
      out_.append(tag);
    }
  }

  const StyleTraits& traits_;
  Rng& rng_;
  std::string out_;
};

class Renderer {
 public:
  Renderer(const ResumeData& data, const StyleTraits& traits, Rng& rng)
      : data_(data), traits_(traits), out_(traits, rng) {}

  std::string Render() {
    out_.Raw("<html>");
    out_.Open("head");
    out_.Open("title");
    out_.Text(data_.first_name + " " + data_.last_name);
    out_.Close("title");
    if (traits_.sloppy) {
      // Legacy pages ship inline scripts and styles whose text is not
      // content; the HTML cleanser (tidy) removes them. Note the code
      // deliberately contains concept-instance words ("java", dates) so
      // skipping tidy measurably hurts accuracy (see bench_ablations).
      out_.Raw("<style>h2 { color: navy } p { font-family: serif }</style>");
      out_.Raw("<script>var java = updated(\"June 1998\"); "
               "function visit(c) { return c + 1; }</script>");
    }
    out_.Close("head");
    out_.Open("body");
    Headline();

    const bool table_style = traits_.markup == SectionMarkup::kSectionTable ||
                             traits_.markup == SectionMarkup::kCrampedTable;
    const bool dl_style = traits_.markup == SectionMarkup::kDefinitionList;
    if (table_style) out_.Raw("<table border=\"1\">");
    if (dl_style) out_.Open("dl");
    for (size_t i = 0; i < data_.section_order.size(); ++i) {
      RenderSection(data_.section_order[i], data_.headings[i]);
    }
    if (dl_style) out_.Close("dl");
    if (table_style) out_.Raw("</table>");

    out_.Close("body");
    out_.Raw("</html>");
    return std::move(out_.str());
  }

 private:
  void Headline() {
    switch (traits_.headline) {
      case HeadlineMarkup::kParagraph:
        out_.Open("p");
        out_.Open("b");
        out_.Text(data_.headline);
        out_.Close("b");
        out_.Close("p", /*optional_end=*/true);
        break;
      case HeadlineMarkup::kCenterBold:
        out_.Open("center");
        out_.Open("b");
        out_.Text(data_.headline);
        out_.Close("b");
        out_.Close("center");
        break;
      case HeadlineMarkup::kH1:
        out_.Open("h1");
        out_.Text(data_.headline);
        out_.Close("h1");
        break;
    }
  }

  // Content pieces for one section.
  std::vector<std::string> SectionEntries(Section s) const {
    std::vector<std::string> entries;
    switch (s) {
      case Section::kContact:
        entries = {data_.street, data_.city_state, data_.phone_line,
                   data_.email_line};
        break;
      case Section::kObjective:
        entries = {data_.objective};
        break;
      case Section::kEducation:
        for (const EducationEntry& e : data_.education) {
          entries.push_back(JoinFields(EduFields(e, traits_.edu_order),
                                       traits_.delimiter));
        }
        break;
      case Section::kExperience:
        for (const ExperienceEntry& e : data_.experience) {
          entries.push_back(JoinFields(ExpFields(e, traits_.exp_order),
                                       traits_.delimiter));
        }
        break;
      case Section::kSkills:
        entries = {JoinFields(data_.skills, traits_.delimiter)};
        break;
      case Section::kCourses:
        entries = {JoinFields(data_.courses, traits_.delimiter)};
        break;
      case Section::kAwards:
        entries = data_.awards;
        break;
      case Section::kActivities:
        entries = data_.activities;
        break;
      case Section::kReference:
        entries = {data_.reference_line};
        break;
    }
    return entries;
  }

  // The contact block is <br>-joined inside one container in every
  // style; other sections honour the per-entry markup.
  bool BrJoined(Section s) const {
    return s == Section::kContact || s == Section::kAwards ||
           s == Section::kActivities;
  }

  void RenderSection(Section s, const std::string& heading) {
    const bool with_heading =
        s != Section::kContact || traits_.contact_heading;
    const std::vector<std::string> entries = SectionEntries(s);
    switch (traits_.markup) {
      case SectionMarkup::kHeadingList:
      case SectionMarkup::kHeadingOrdered:
        HeadingListSection(s, heading, entries, with_heading,
                           traits_.markup == SectionMarkup::kHeadingOrdered
                               ? "ol"
                               : "ul");
        break;
      case SectionMarkup::kHeadingParagraphs:
        HeadingParaSection(s, heading, entries, with_heading, "h3");
        break;
      case SectionMarkup::kSectionTable:
        TableSection(s, heading, entries, with_heading, /*cramped=*/false);
        break;
      case SectionMarkup::kCrampedTable:
        TableSection(s, heading, entries, with_heading, /*cramped=*/true);
        break;
      case SectionMarkup::kDefinitionList:
        DlSection(heading, entries, with_heading);
        break;
      case SectionMarkup::kBoldBreaks:
        FlatSection(heading, entries, with_heading, /*font_wrap=*/false);
        break;
      case SectionMarkup::kFontFlat:
        FlatSection(heading, entries, with_heading, /*font_wrap=*/true);
        break;
      case SectionMarkup::kDivUnderline:
        DivSection(s, heading, entries, with_heading);
        break;
    }
  }

  void EmitBrJoined(const std::vector<std::string>& entries) {
    for (size_t i = 0; i < entries.size(); ++i) {
      if (i > 0) out_.Br();
      out_.Text(entries[i]);
    }
  }

  void HeadingListSection(Section s, const std::string& heading,
                          const std::vector<std::string>& entries,
                          bool with_heading, std::string_view list_tag) {
    if (with_heading) {
      out_.Open("h2");
      out_.Text(heading);
      out_.Close("h2");
    }
    if (BrJoined(s) || entries.size() == 1) {
      out_.Open("p");
      EmitBrJoined(entries);
      out_.Close("p", /*optional_end=*/true);
      return;
    }
    out_.Open(list_tag);
    for (const std::string& entry : entries) {
      out_.Open("li");
      out_.Text(entry);
      out_.Close("li", /*optional_end=*/true);
    }
    out_.Close(list_tag);
  }

  void HeadingParaSection(Section s, const std::string& heading,
                          const std::vector<std::string>& entries,
                          bool with_heading, std::string_view heading_tag) {
    if (with_heading) {
      out_.Open(heading_tag);
      out_.Text(heading);
      out_.Close(heading_tag);
    }
    if (BrJoined(s)) {
      out_.Open("p");
      EmitBrJoined(entries);
      out_.Close("p", /*optional_end=*/true);
      return;
    }
    for (const std::string& entry : entries) {
      out_.Open("p");
      out_.Text(entry);
      out_.Close("p", /*optional_end=*/true);
    }
  }

  void TableSection(Section s, const std::string& heading,
                    const std::vector<std::string>& entries,
                    bool with_heading, bool cramped) {
    out_.Open("tr");
    if (with_heading) {
      out_.Open("td");
      if (!cramped) out_.Open("b");
      out_.Text(heading);
      if (!cramped) out_.Close("b");
      out_.Close("td", /*optional_end=*/true);
    }
    if (cramped || BrJoined(s)) {
      out_.Open("td");
      EmitBrJoined(entries);
      out_.Close("td", /*optional_end=*/true);
    } else {
      for (const std::string& entry : entries) {
        out_.Open("td");
        out_.Text(entry);
        out_.Close("td", /*optional_end=*/true);
      }
    }
    out_.Close("tr", /*optional_end=*/true);
  }

  void DlSection(const std::string& heading,
                 const std::vector<std::string>& entries, bool with_heading) {
    if (with_heading) {
      out_.Open("dt");
      out_.Text(heading);
      out_.Close("dt", /*optional_end=*/true);
    }
    for (const std::string& entry : entries) {
      out_.Open("dd");
      out_.Text(entry);
      out_.Close("dd", /*optional_end=*/true);
    }
  }

  void FlatSection(const std::string& heading,
                   const std::vector<std::string>& entries,
                   bool with_heading, bool font_wrap) {
    if (with_heading) {
      if (font_wrap) out_.Raw("<font size=\"+1\">");
      out_.Open("b");
      out_.Text(heading);
      out_.Close("b");
      if (font_wrap) out_.Raw("</font>");
      out_.Br();
    }
    EmitBrJoined(entries);
    out_.Br();
  }

  void DivSection(Section s, const std::string& heading,
                  const std::vector<std::string>& entries,
                  bool with_heading) {
    out_.Open("div");
    if (with_heading) {
      out_.Open("u");
      out_.Text(heading);
      out_.Close("u");
    }
    if (BrJoined(s) || entries.size() == 1) {
      out_.Raw(" ");
      EmitBrJoined(entries);
    } else {
      out_.Open("ul");
      for (const std::string& entry : entries) {
        out_.Open("li");
        out_.Text(entry);
        out_.Close("li", /*optional_end=*/true);
      }
      out_.Close("ul");
    }
    out_.Close("div");
  }

  const ResumeData& data_;
  const StyleTraits& traits_;
  HtmlOut out_;
};

}  // namespace

size_t StyleCount() { return 12; }

StyleTraits MakeStyle(size_t id) {
  StyleTraits t;
  t.id = static_cast<int>(id % StyleCount());
  switch (t.id) {
    case 0:
      t.markup = SectionMarkup::kHeadingList;
      t.headline = HeadlineMarkup::kParagraph;
      t.edu_order = EduFieldOrder::kDateFirst;
      t.exp_order = ExpFieldOrder::kTitleFirst;
      break;
    case 1:
      t.markup = SectionMarkup::kHeadingParagraphs;
      t.headline = HeadlineMarkup::kCenterBold;
      t.edu_order = EduFieldOrder::kInstitutionFirst;
      t.exp_order = ExpFieldOrder::kCompanyFirst;
      break;
    case 2:
      t.markup = SectionMarkup::kSectionTable;
      t.headline = HeadlineMarkup::kCenterBold;
      t.edu_order = EduFieldOrder::kDegreeFirst;
      t.exp_order = ExpFieldOrder::kTitleFirst;
      break;
    case 3:
      t.markup = SectionMarkup::kDefinitionList;
      t.headline = HeadlineMarkup::kCenterBold;
      t.edu_order = EduFieldOrder::kDateFirst;
      t.exp_order = ExpFieldOrder::kTitleFirst;
      t.delimiter = ';';
      break;
    case 4:
      t.markup = SectionMarkup::kBoldBreaks;
      t.headline = HeadlineMarkup::kCenterBold;
      t.edu_order = EduFieldOrder::kDateFirst;
      t.exp_order = ExpFieldOrder::kTitleFirst;
      break;
    case 5:
      t.markup = SectionMarkup::kDivUnderline;
      t.headline = HeadlineMarkup::kCenterBold;
      t.edu_order = EduFieldOrder::kDateFirst;
      t.exp_order = ExpFieldOrder::kCompanyFirst;
      break;
    case 6:
      t.markup = SectionMarkup::kHeadingOrdered;
      t.headline = HeadlineMarkup::kH1;
      t.edu_order = EduFieldOrder::kInstitutionFirst;
      t.exp_order = ExpFieldOrder::kDateFirst;
      break;
    case 7:
      t.markup = SectionMarkup::kCrampedTable;
      t.headline = HeadlineMarkup::kCenterBold;
      t.edu_order = EduFieldOrder::kDateFirst;
      t.exp_order = ExpFieldOrder::kTitleFirst;
      break;
    case 8:
      t.markup = SectionMarkup::kHeadingList;
      t.headline = HeadlineMarkup::kParagraph;
      t.edu_order = EduFieldOrder::kDateFirst;
      t.exp_order = ExpFieldOrder::kTitleFirst;
      t.sloppy = true;
      break;
    case 9:
      t.markup = SectionMarkup::kFontFlat;
      t.headline = HeadlineMarkup::kCenterBold;
      t.contact_heading = false;
      t.edu_order = EduFieldOrder::kDateFirst;
      t.exp_order = ExpFieldOrder::kTitleFirst;
      break;
    case 10:
      t.markup = SectionMarkup::kHeadingParagraphs;
      t.headline = HeadlineMarkup::kH1;
      t.contact_heading = false;
      t.edu_order = EduFieldOrder::kDateFirst;
      t.exp_order = ExpFieldOrder::kTitleFirst;
      t.delimiter = ';';
      break;
    case 11:
      t.markup = SectionMarkup::kDefinitionList;
      t.headline = HeadlineMarkup::kCenterBold;
      t.edu_order = EduFieldOrder::kDateFirst;
      t.exp_order = ExpFieldOrder::kTitleFirst;
      t.sloppy = true;
      break;
    default:
      break;
  }
  return t;
}

size_t DrawStyleId(Rng& rng) {
  // Clean styles appear twice, stressor styles (4, 6, 7, 9, 10) twice —
  // the mix is tuned so the corpus-wide error rate lands near the
  // paper's 9.2% with the documented causes.
  static constexpr std::array<size_t, 24> kWeighted = {
      0, 0, 1, 1, 2,  2,  3, 3, 5, 5, 8,  8,
      11, 11, 4, 4, 6, 6, 7, 7, 9, 9, 10, 10};
  return kWeighted[rng.NextBelow(kWeighted.size())];
}

std::string RenderResumeHtml(const ResumeData& data,
                             const StyleTraits& traits, Rng& rng) {
  return Renderer(data, traits, rng).Render();
}

std::unique_ptr<Node> BuildTruthForStyle(const ResumeData& data,
                                         const StyleTraits& traits) {
  return BuildTruthTree(data, traits.edu_order, traits.exp_order,
                        traits.contact_heading);
}

}  // namespace webre
