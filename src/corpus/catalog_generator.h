#ifndef WEBRE_CORPUS_CATALOG_GENERATOR_H_
#define WEBRE_CORPUS_CATALOG_GENERATOR_H_

#include <memory>
#include <string>

#include "concepts/concept.h"
#include "concepts/constraints.h"
#include "util/rng.h"
#include "xml/node.h"

namespace webre {

/// A second topic — product catalog pages — demonstrating that the
/// restructuring rules are domain-independent and only the concept set
/// changes (§5 mentions "broader topics such as product catalogs" as the
/// intended future direction). Used by examples/custom_topic and the
/// cross-domain tests.

/// The catalog ConceptSet: 7 concepts (CATEGORY as the title concept;
/// BRAND, PRICE, RATING, WARRANTY, MODEL, FEATURES as content concepts).
ConceptSet CatalogConcepts();

/// Constraints analogous to the resume ones: CATEGORY at level 1,
/// content below it, no repeats, max level 3.
ConstraintSet CatalogConstraints();

/// One generated catalog page.
struct GeneratedCatalog {
  std::string html;
  std::unique_ptr<Node> truth;
};

/// Generates catalog page `index` (deterministic per index/seed).
GeneratedCatalog GenerateCatalogPage(size_t index, uint64_t seed = 7);

}  // namespace webre

#endif  // WEBRE_CORPUS_CATALOG_GENERATOR_H_
