#ifndef WEBRE_CORPUS_CRAWLER_H_
#define WEBRE_CORPUS_CRAWLER_H_

#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "concepts/concept.h"
#include "util/rng.h"

namespace webre {

/// Options for the simulated topic-specific crawler.
struct CrawlerOptions {
  /// Minimum topic score for a page to be kept. The score is the
  /// fraction of text tokens containing a concept-instance hit, plus a
  /// bonus per distinct *title* concept found (section headings are the
  /// strongest signal that a page "looks like a resume").
  double score_threshold = 0.25;
  /// Bonus per distinct title concept present.
  double title_bonus = 0.08;
  /// Title concept names to award the bonus for.
  std::vector<std::string> title_concepts;
};

/// Scoring/filter stage of a topic-specific crawler (§1: documents
/// "gathered by a topic specific Web crawler", [20]). The fetch/politeness
/// machinery of a real crawler is out of scope — what the paper's
/// pipeline depends on is the *selection behaviour*: a stream of mixed
/// pages goes in, topic-specific pages come out.
class TopicCrawler {
 public:
  /// `concepts` must outlive the crawler.
  TopicCrawler(const ConceptSet* concepts, CrawlerOptions options = {});

  /// Topic score of a raw HTML page in [0, ~1.5].
  double ScorePage(std::string_view html) const;

  /// True iff the page clears the threshold.
  bool Accept(std::string_view html) const;

  /// Filters a stream of pages, returning the accepted ones.
  std::vector<std::string> Crawl(const std::vector<std::string>& pages) const;

  /// Result of a link-following crawl.
  struct GraphCrawl {
    /// Accepted (topic) page URLs, in visit order.
    std::vector<std::string> accepted_urls;
    /// Pages fetched during the crawl.
    size_t pages_visited = 0;
  };

  /// Breadth-first crawl over a linked site (§5's "linkage structures
  /// among HTML documents"): starting from `start_url`, follows every
  /// `<a href>` found (the frontier is not topic-filtered — hubs and
  /// blogs lead to resumes), fetches each URL once, and accepts pages
  /// clearing the topic threshold. URLs absent from `web` are dead
  /// links and are skipped.
  GraphCrawl CrawlGraph(const std::map<std::string, std::string>& web,
                        const std::string& start_url) const;

 private:
  const ConceptSet* concepts_;
  CrawlerOptions options_;
};

/// Generates an off-topic page (article/blog-style prose) for crawler
/// stream mixing. Contains at most incidental concept hits.
std::string GenerateDistractorPage(Rng& rng);

}  // namespace webre

#endif  // WEBRE_CORPUS_CRAWLER_H_
