#include "corpus/vocab.h"

namespace webre {

// Every list below uses the style-guide pattern for static containers:
// a function-local reference to a heap object that is never destroyed.

const std::vector<std::string>& FirstNames() {
  static const auto& v = *new std::vector<std::string>{
      "John",    "Mary",   "David",  "Susan",  "Michael", "Linda",
      "Robert",  "Karen",  "James",  "Nancy",  "William", "Lisa",
      "Richard", "Betty",  "Thomas", "Helen",  "Charles", "Sandra",
      "Daniel",  "Donna",  "Kevin",  "Carol",  "Brian",   "Ruth"};
  return v;
}

const std::vector<std::string>& LastNames() {
  static const auto& v = *new std::vector<std::string>{
      "Smith",   "Johnson", "Brown",   "Taylor", "Anderson", "Clark",
      "Wright",  "Mitchell", "Perez",  "Roberts", "Turner",  "Phillips",
      "Campbell", "Parker", "Evans",   "Edwards", "Collins", "Stewart",
      "Morris",  "Rogers",  "Reed",    "Cook",    "Morgan",  "Bell"};
  return v;
}

const std::vector<std::string>& CityStateLines() {
  // The state (or city) half is a LOCATION concept instance.
  static const auto& v = *new std::vector<std::string>{
      "Ithaca, New York",     "Davis, California",
      "Plano, Texas",         "Spokane, Washington",
      "Boston",               "Seattle",
      "Chicago",              "Austin",
      "Atlanta",              "Denver",
      "San Jose",             "San Francisco"};
  return v;
}

const std::vector<std::string>& StreetAddresses() {
  static const auto& v = *new std::vector<std::string>{
      "123 Maple Street",   "47 Oakwood Avenue", "902 Hillcrest Road",
      "15 Juniper Lane",    "660 Crestview Drive", "28 Willow Court",
      "310 Sycamore Place", "84 Bramble Way"};
  return v;
}

const std::vector<std::string>& SafeInstitutions() {
  static const auto& v = *new std::vector<std::string>{
      "Brockhaven University",          "Eastfield College",
      "Northgate University",           "Wexford Institute of Technology",
      "Milbrook College",               "Harrowgate University",
      "Stonebridge University",         "Caldwell College",
      "Redmond Polytechnic",            "Ashford Academy",
      "Fernwood University",            "Kingsley Institute of Technology"};
  return v;
}

const std::vector<std::string>& CollidingInstitutions() {
  // Each embeds a LOCATION instance after/before the INSTITUTION word, so
  // the concept instance rule decomposes the token — the paper's real-
  // world failure mode for multi-concept tokens.
  static const auto& v = *new std::vector<std::string>{
      "University of California", "University of Texas",
      "University of Washington", "Boston College",
      "New York University"};
  return v;
}

const std::vector<std::string>& Degrees() {
  static const auto& v = *new std::vector<std::string>{
      "B.S.", "M.S.", "B.A.", "M.A.", "Ph.D.", "MBA"};
  return v;
}

const std::vector<std::string>& Majors() {
  static const auto& v = *new std::vector<std::string>{
      "Computer Science",       "Electrical Engineering",
      "Mechanical Engineering", "Mathematics",
      "Physics",                "Chemistry",
      "Biology",                "Economics",
      "Business Administration"};
  return v;
}

const std::vector<std::string>& Companies() {
  static const auto& v = *new std::vector<std::string>{
      "Vexatron Systems Inc.",     "Norwick Software",
      "Quellware Technologies",    "Hartfield Consulting",
      "Bluepine Solutions",        "Graniteworks Corporation",
      "Omnidata Labs",             "Silverbrook Enterprises",
      "Kestrel Technologies",      "Marlowe Software",
      "Pinnacle Systems Inc.",     "Trelliscope Laboratories"};
  return v;
}

const std::vector<std::string>& JobTitles() {
  static const auto& v = *new std::vector<std::string>{
      "Software Engineer",   "Junior Programmer",  "Data Analyst",
      "Project Manager",     "IT Consultant",      "Research Assistant",
      "Teaching Assistant",  "Technical Architect", "QA Technician",
      "Web Designer",        "Development Intern", "Engineering Specialist"};
  return v;
}

const std::vector<std::string>& Months() {
  static const auto& v = *new std::vector<std::string>{
      "January",   "February", "March",    "April",
      "May",       "June",     "July",     "August",
      "September", "October",  "November", "December"};
  return v;
}

const std::vector<std::string>& SkillsPool() {
  static const auto& v = *new std::vector<std::string>{
      "C++",  "Java",       "Python", "Perl", "Fortran", "Pascal",
      "JavaScript", "HTML", "XML",    "SQL",  "Unix",    "Linux"};
  return v;
}

const std::vector<std::string>& CoursesPool() {
  static const auto& v = *new std::vector<std::string>{
      "Algorithms",           "Data Structures",   "Operating Systems",
      "Databases",            "Compilers",         "Computer Networks",
      "Artificial Intelligence", "Machine Learning",
      "Computer Architecture",   "Discrete Mathematics",
      "Linear Algebra",       "Calculus"};
  return v;
}

const std::vector<std::string>& AwardLines() {
  // Free of concept instances: AWARDS consolidates to a leaf whose val
  // carries these lines.
  static const auto& v = *new std::vector<std::string>{
      "Dean's List",                       "Phi Beta Kappa Society",
      "Outstanding Senior Project Award",  "National Merit Finalist",
      "Best Undergraduate Thesis Award",   "Tau Beta Pi",
      "Departmental Citation for Excellence"};
  return v;
}

const std::vector<std::string>& ActivityLines() {
  static const auto& v = *new std::vector<std::string>{
      "Chess club member",             "Varsity swimming team",
      "Photography and hiking",        "Student newspaper editor",
      "Volunteer tutor at a local learning center",
      "Amateur radio operator",        "Debate society treasurer"};
  return v;
}

const std::vector<std::string>& ObjectiveLines() {
  static const auto& v = *new std::vector<std::string>{
      "To obtain a challenging role where I can contribute and grow.",
      "Seeking an opportunity to apply my technical abilities in a "
      "collaborative environment.",
      "To secure an entry-level role with strong growth potential.",
      "Looking for a full-time opportunity in a fast-paced setting.",
      "To build reliable and maintainable tools that people enjoy using."};
  return v;
}

const std::vector<std::string>& ContactHeadings() {
  static const auto& v = *new std::vector<std::string>{
      "Contact Information", "Contact", "Personal Information", "Address"};
  return v;
}

const std::vector<std::string>& ObjectiveHeadings() {
  static const auto& v = *new std::vector<std::string>{
      "Objective", "Career Objective", "Professional Objective"};
  return v;
}

const std::vector<std::string>& EducationHeadings() {
  static const auto& v = *new std::vector<std::string>{
      "Education", "Educational Background", "Academic Background"};
  return v;
}

const std::vector<std::string>& ExperienceHeadings() {
  static const auto& v = *new std::vector<std::string>{
      "Experience", "Work Experience", "Employment History",
      "Professional Experience"};
  return v;
}

const std::vector<std::string>& SkillsHeadings() {
  static const auto& v = *new std::vector<std::string>{
      "Skills", "Technical Skills", "Computer Skills", "Programming Skills"};
  return v;
}

const std::vector<std::string>& CoursesHeadings() {
  static const auto& v = *new std::vector<std::string>{
      "Relevant Coursework", "Courses", "Selected Courses"};
  return v;
}

const std::vector<std::string>& AwardsHeadings() {
  static const auto& v =
      *new std::vector<std::string>{"Awards", "Honors", "Achievements"};
  return v;
}

const std::vector<std::string>& ActivitiesHeadings() {
  static const auto& v = *new std::vector<std::string>{
      "Activities", "Interests", "Extracurricular Activities"};
  return v;
}

const std::vector<std::string>& ReferenceHeadings() {
  static const auto& v =
      *new std::vector<std::string>{"References", "Reference"};
  return v;
}

const std::vector<std::string>& UnrecognizableHeadings() {
  static const auto& v = *new std::vector<std::string>{
      "Other Information", "More About Me", "Miscellaneous",
      "What I Have Done"};
  return v;
}

}  // namespace webre
