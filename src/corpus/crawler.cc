#include "corpus/crawler.h"

#include <deque>
#include <set>

#include "html/parser.h"
#include "restructure/tokenize_rule.h"
#include "xml/node.h"

namespace webre {

TopicCrawler::TopicCrawler(const ConceptSet* concepts, CrawlerOptions options)
    : concepts_(concepts), options_(std::move(options)) {}

double TopicCrawler::ScorePage(std::string_view html) const {
  std::unique_ptr<Node> tree = ParseHtml(html);
  // Collect the text tokens exactly the way document conversion would.
  ApplyTokenizationRule(tree.get());

  size_t tokens = 0;
  size_t hits = 0;
  std::set<std::string_view> title_concepts_seen;
  tree->PreOrder([&](const Node& node) {
    if (!node.is_element() || node.name() != kTokenTag) return;
    ++tokens;
    std::string text;
    for (size_t i = 0; i < node.child_count(); ++i) {
      if (node.child(i)->is_text()) text += node.child(i)->text();
    }
    InstanceMatch match = concepts_->MatchFirst(text);
    if (match.length == 0) return;
    ++hits;
    for (const std::string& title : options_.title_concepts) {
      if (match.concept_name == title) {
        title_concepts_seen.insert(match.concept_name);
      }
    }
  });

  if (tokens == 0) return 0.0;
  return static_cast<double>(hits) / static_cast<double>(tokens) +
         options_.title_bonus * static_cast<double>(title_concepts_seen.size());
}

bool TopicCrawler::Accept(std::string_view html) const {
  return ScorePage(html) >= options_.score_threshold;
}

std::vector<std::string> TopicCrawler::Crawl(
    const std::vector<std::string>& pages) const {
  std::vector<std::string> accepted;
  for (const std::string& page : pages) {
    if (Accept(page)) accepted.push_back(page);
  }
  return accepted;
}

namespace {

// href targets of <a> elements, in document order.
std::vector<std::string> ExtractLinks(std::string_view html) {
  HtmlParseOptions options;
  options.keep_attributes = true;
  std::unique_ptr<Node> tree = ParseHtml(html, options);
  std::vector<std::string> links;
  tree->PreOrder([&](const Node& node) {
    if (node.is_element() && node.name() == "a" && node.has_attr("href")) {
      links.emplace_back(node.attr("href"));
    }
  });
  return links;
}

}  // namespace

TopicCrawler::GraphCrawl TopicCrawler::CrawlGraph(
    const std::map<std::string, std::string>& web,
    const std::string& start_url) const {
  GraphCrawl result;
  std::set<std::string> enqueued = {start_url};
  std::deque<std::string> frontier = {start_url};
  while (!frontier.empty()) {
    const std::string url = std::move(frontier.front());
    frontier.pop_front();
    auto it = web.find(url);
    if (it == web.end()) continue;  // dead link
    ++result.pages_visited;
    const std::string& html = it->second;
    if (Accept(html)) result.accepted_urls.push_back(url);
    for (std::string& link : ExtractLinks(html)) {
      if (enqueued.insert(link).second) frontier.push_back(std::move(link));
    }
  }
  return result;
}

namespace {

const std::vector<std::string>& DistractorTopics() {
  static const auto& v = *new std::vector<std::string>{
      "Growing tomatoes in raised beds", "A walking tour of old harbours",
      "Notes on sourdough starters",     "Restoring antique clocks",
      "Birdwatching in wetland parks",   "A beginner guide to watercolour"};
  return v;
}

const std::vector<std::string>& DistractorSentences() {
  static const auto& v = *new std::vector<std::string>{
      "The light in the late afternoon settles over the valley like a veil.",
      "Start with a small patch and expand once the soil improves.",
      "Many visitors linger at the lighthouse before walking back along "
      "the quay.",
      "Keep the mixture warm and it will double within a day or so.",
      "The gears must be cleaned gently with a soft brush.",
      "Herons gather near the reed beds shortly after dawn.",
      "Mix the pigment sparingly until the wash looks almost too pale.",
      "A little patience at this stage saves a great deal of rework.",
      "The trail is muddy after rain and sturdy boots are advised."};
  return v;
}

}  // namespace

std::string GenerateDistractorPage(Rng& rng) {
  const std::string& topic = rng.Choose(DistractorTopics());
  std::string html = "<html><head><title>" + topic +
                     "</title></head><body><h1>" + topic + "</h1>";
  const size_t paragraphs = 2 + rng.NextBelow(3);
  for (size_t p = 0; p < paragraphs; ++p) {
    html += "<p>";
    const size_t sentences = 2 + rng.NextBelow(4);
    for (size_t s = 0; s < sentences; ++s) {
      if (s > 0) html += " ";
      html += rng.Choose(DistractorSentences());
    }
    html += "</p>";
  }
  html += "</body></html>";
  return html;
}

}  // namespace webre
