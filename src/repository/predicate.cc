#include "repository/predicate.h"

#include <algorithm>

#include "util/simd_scan.h"

namespace webre {

bool ShouldSweepPool(size_t candidate_count, size_t candidate_bytes,
                     size_t pool_bytes) {
  // Below this many slices the per-slice path is cheap in absolute
  // terms no matter the ratio; the constant only needs to be small
  // enough that dense candidate sets (the case sweeps exist for) are
  // far above it.
  constexpr size_t kMinSweepCandidates = 4;
  if (candidate_count < kMinSweepCandidates) return false;
  return candidate_bytes * 2 >= pool_bytes;
}

const uint64_t* SweepValBitset(const FlatDoc& doc, std::string_view lowered,
                               PredicateScratch& scratch) {
  scratch.arena.Reset();
  const uint32_t count = doc.element_count();
  const size_t words = size_t{count} / 64 + 1;
  uint64_t* bits = static_cast<uint64_t*>(
      scratch.arena.Allocate(words * sizeof(uint64_t), alignof(uint64_t)));
  const std::string_view pool = doc.lowered_pool();
  scratch.bytes_scanned += pool.size();
  ++scratch.sweeps;
  if (lowered.empty()) {
    // Empty needle: every element matches (slack bits past `count` are
    // set too; BitsetTest is only ever asked about valid elements).
    std::fill_n(bits, words, ~uint64_t{0});
    return bits;
  }
  std::fill_n(bits, words, uint64_t{0});

  // One scanner run over the whole pool. A hit at pool offset h lands
  // in the unique slice e with off[e] <= h < off[e+1] (slices are
  // adjacent and ascending, so e only ever advances); it is a real
  // match for e iff it also ENDS inside e's slice — a hit straddling
  // the boundary into slice e+1 exists in the concatenated pool but in
  // no element's val, so it is skipped and the scan resumes one byte
  // later. After e's first real match the scan jumps to e's slice end:
  // the bitset needs no second match, and the jump bounds the loop at
  // O(elements + rejected straddles).
  const uint32_t* off = doc.text_offsets();
  const size_t m = lowered.size();
  size_t pos = 0;
  uint32_t e = 0;
  while (true) {
    const size_t h = FindLowered(pool, lowered, pos);
    if (h == std::string_view::npos) break;
    while (off[e + 1] <= h) ++e;  // h < pool size == off[count]: e < count
    if (h + m <= off[e + 1]) {
      bits[e >> 6] |= uint64_t{1} << (e & 63);
      pos = off[e + 1];
    } else {
      pos = h + 1;
    }
  }
  return bits;
}

}  // namespace webre
