#ifndef WEBRE_REPOSITORY_PATH_INDEX_H_
#define WEBRE_REPOSITORY_PATH_INDEX_H_

#include <cstddef>
#include <cstdint>
#include <unordered_map>
#include <utility>
#include <vector>

#include "schema/path_extractor.h"
#include "util/status.h"
#include "xml/flat_doc.h"
#include "xml/name_table.h"
#include "xml/node.h"

namespace webre {

/// Identifier of a stored document.
using DocId = size_t;

/// One indexed element: where a distinct label path occurs.
struct PathOccurrence {
  DocId doc = 0;
  /// Pre-order index of the element among the document's elements —
  /// the document-order sort key, unique within a document. In flat
  /// mode this is also the element's index into `flat`.
  uint32_t pos = 0;
  /// The realizing element's tree node, or null when the repository
  /// froze the document (flat mode).
  const Node* node = nullptr;
  /// The frozen document owning `pos`, or null in pointer mode.
  const FlatDoc* flat = nullptr;
};

static_assert(sizeof(PathOccurrence) == sizeof(DocId) + 8 + 2 * sizeof(void*),
              "PathOccurrence layout mirrors QueryMatch so the summary "
              "plan's emit loop is a straight field copy");

/// One document's distinct label paths with the elements realizing
/// them, produced by a single pre-order walk. The string labels are
/// never materialized: a path is its parent link plus one NameId,
/// exactly the shape PathIndex ingests.
struct LocalDocumentPaths {
  static constexpr uint32_t kNoParent = 0xFFFFFFFFu;

  struct Path {
    uint32_t parent = kNoParent;  ///< index into `paths`; parents first
    NameId name = kInvalidNameId;
    /// (pre-order position, node) per occurrence, position-ascending.
    std::vector<std::pair<uint32_t, const Node*>> occurrences;
  };

  std::vector<Path> paths;
  size_t element_count = 0;
};

/// Walks `root` (iteratively — depth-safe) and groups its elements by
/// distinct root-emanating label path.
LocalDocumentPaths CollectLocalPaths(const Node& root);

/// Same grouping over a frozen document: one linear pass resolving each
/// element's path from its parent's (pre-order guarantees parents come
/// first). Occurrence node pointers are null — flat consumers address
/// elements by (doc, pos).
LocalDocumentPaths CollectLocalPaths(const FlatDoc& doc);

/// Snapshot-restore fast path: ONE pass over the frozen document fills
/// both the index feed (`local`, bit-identical to CollectLocalPaths)
/// and the mining feed (`mined`, identical to ExtractPaths except that
/// the LabelPath strings are left empty — correctly sized, never
/// materialized). The repository's shard miners run without constraint
/// sets and consume only the dense parent_index / leaf_name view plus
/// the statistics, so the strings would be pure allocation cost on the
/// recovery path. Do not hand the `mined` output to a consumer that
/// applies path constraints at insertion.
void CollectRestorePaths(const FlatDoc& doc, LocalDocumentPaths& local,
                         DocumentPaths& mined);

/// A DataGuide-style structural summary: the trie of every distinct
/// label path seen across the indexed documents, hash-consed on
/// (parent path id, NameId) exactly like schema extraction's PathTable,
/// with an inverted posting list per path. With `record_occurrences`
/// the index also keeps every realizing element per path, which lets
/// the repository answer structural queries without touching any
/// document tree.
///
/// Not internally synchronized: the owner serializes writers and
/// brackets readers (XmlRepository guards each instance with a
/// shared_mutex).
class PathIndex {
 public:
  /// "No such path" — also the parent marker of root paths.
  static constexpr uint32_t kNoPath = 0xFFFFFFFFu;

  struct Entry {
    uint32_t parent = kNoPath;
    NameId name = kInvalidNameId;
    /// Child path ids, in creation order.
    std::vector<uint32_t> children;
    /// Documents containing this path, ascending, deduplicated.
    std::vector<DocId> docs;
    /// Every element realizing this path, ordered by (doc, pos).
    /// Empty unless the index records occurrences.
    std::vector<PathOccurrence> occurrences;
  };

  explicit PathIndex(bool record_occurrences)
      : record_occurrences_(record_occurrences) {}

  PathIndex(const PathIndex&) = delete;
  PathIndex& operator=(const PathIndex&) = delete;

  /// Indexes one document's paths. Documents may arrive in any id
  /// order (concurrent Adds race to the summary); posting lists stay
  /// sorted. A document must be added at most once. `flat` (when the
  /// repository froze the document) is stamped onto every recorded
  /// occurrence so readers can evaluate predicates without any shard
  /// lock.
  void AddDocument(const LocalDocumentPaths& local, DocId doc,
                   const FlatDoc* flat = nullptr);

  /// Storage restore: appends the entry with id == path_count(),
  /// rebuilding the children/roots lists, the label→docs map and the
  /// hash table from the (parent, name) pair. The snapshot's SUMMARY
  /// section stores entries in creation order, where parents precede
  /// children, so a loader feeding entries in file order never sees a
  /// dangling parent. `docs` must be ascending and deduplicated and
  /// `occurrences` (doc, pos)-ascending with docs drawn from `docs` —
  /// violations (a corrupt or hostile snapshot) are InvalidArgument,
  /// keeping every later query-plan merge loop safe.
  Status LoadEntry(uint32_t parent, NameId name, std::vector<DocId> docs,
                   std::vector<PathOccurrence> occurrences);

  size_t path_count() const { return entries_.size(); }
  const Entry& entry(uint32_t id) const { return entries_[id]; }
  /// Root path ids (paths of length 1), in creation order.
  const std::vector<uint32_t>& roots() const { return roots_; }

  /// Id of the root-emanating path labels[0]/…/labels[count-1], or
  /// kNoPath when no indexed document contains it.
  uint32_t FindPath(const NameId* labels, size_t count) const;

  /// Posting list of `id`; the shared empty sentinel for kNoPath. The
  /// reference is stable only until the next AddDocument.
  const std::vector<DocId>& DocsOf(uint32_t id) const {
    return id == kNoPath ? EmptyDocs() : entries_[id].docs;
  }

  /// Documents containing at least one element named `name` (at any
  /// depth), ascending — the pruning list for leading `//name` steps.
  const std::vector<DocId>& DocsWithLabel(NameId name) const;

  static const std::vector<DocId>& EmptyDocs();

 private:
  uint32_t Resolve(uint32_t parent, NameId name);        // inserts
  uint32_t Lookup(uint32_t parent, NameId name) const;   // never inserts
  void Rehash(size_t new_slots);

  static uint64_t Mix(uint64_t key);

  bool record_occurrences_;
  std::vector<Entry> entries_;
  std::vector<uint32_t> roots_;
  std::unordered_map<NameId, std::vector<DocId>> label_docs_;

  // Open-addressing map (parent << 32 | name) -> entry id; the all-ones
  // key cannot occur (elements never carry kInvalidNameId) and marks an
  // empty slot.
  static constexpr uint64_t kEmptySlot = 0xFFFFFFFFFFFFFFFFull;
  static constexpr size_t kInitialSlots = 128;  // power of two
  std::vector<uint64_t> keys_;
  std::vector<uint32_t> values_;
  size_t mask_ = 0;
  size_t used_ = 0;
};

}  // namespace webre

#endif  // WEBRE_REPOSITORY_PATH_INDEX_H_
