#include "repository/path_index.h"

#include <algorithm>

namespace webre {

LocalDocumentPaths CollectLocalPaths(const Node& root) {
  LocalDocumentPaths out;
  if (!root.is_element()) return out;

  // (parent path << 32 | name) -> index into out.paths. Documents are
  // small relative to the repository; a node-local map is fine here.
  std::unordered_map<uint64_t, uint32_t> dense;
  dense.reserve(64);
  auto resolve = [&](uint32_t parent, NameId name) -> uint32_t {
    const uint64_t key = (static_cast<uint64_t>(parent) << 32) | name;
    auto [it, inserted] =
        dense.emplace(key, static_cast<uint32_t>(out.paths.size()));
    if (inserted) {
      LocalDocumentPaths::Path path;
      path.parent = parent;
      path.name = name;
      out.paths.push_back(std::move(path));
    }
    return it->second;
  };

  // Pre-order via an explicit stack (children pushed in reverse), so
  // pathological depth cannot overflow the C++ stack. `pos` numbers
  // elements in document order.
  struct Frame {
    const Node* node;
    uint32_t path;
  };
  std::vector<Frame> stack;
  const uint32_t root_path =
      resolve(LocalDocumentPaths::kNoParent, root.name_id());
  stack.push_back(Frame{&root, root_path});
  uint32_t pos = 0;
  while (!stack.empty()) {
    Frame frame = stack.back();
    stack.pop_back();
    out.paths[frame.path].occurrences.emplace_back(pos, frame.node);
    ++pos;
    ++out.element_count;
    for (size_t i = frame.node->child_count(); i > 0; --i) {
      const Node* child = frame.node->child(i - 1);
      if (!child->is_element()) continue;
      stack.push_back(Frame{child, resolve(frame.path, child->name_id())});
    }
  }
  return out;
}

LocalDocumentPaths CollectLocalPaths(const FlatDoc& doc) {
  LocalDocumentPaths out;
  const uint32_t count = doc.element_count();
  if (count == 0) return out;
  out.element_count = count;

  std::unordered_map<uint64_t, uint32_t> dense;
  dense.reserve(64);
  auto resolve = [&](uint32_t parent, NameId name) -> uint32_t {
    const uint64_t key = (static_cast<uint64_t>(parent) << 32) | name;
    auto [it, inserted] =
        dense.emplace(key, static_cast<uint32_t>(out.paths.size()));
    if (inserted) {
      LocalDocumentPaths::Path path;
      path.parent = parent;
      path.name = name;
      out.paths.push_back(std::move(path));
    }
    return it->second;
  };

  // Pre-order indices ARE the flat indices, and parents precede their
  // children, so one linear pass resolves every element's path from
  // its parent's already-resolved path.
  std::vector<uint32_t> elem_path(count);
  for (uint32_t i = 0; i < count; ++i) {
    const uint32_t parent = doc.parent(i);
    const uint32_t parent_path = parent == FlatDoc::kNoParent
                                     ? LocalDocumentPaths::kNoParent
                                     : elem_path[parent];
    const uint32_t path = resolve(parent_path, doc.name(i));
    elem_path[i] = path;
    out.paths[path].occurrences.emplace_back(i, nullptr);
  }
  return out;
}

void CollectRestorePaths(const FlatDoc& doc, LocalDocumentPaths& local,
                         DocumentPaths& mined) {
  local = LocalDocumentPaths{};
  mined = DocumentPaths{};
  const uint32_t count = doc.element_count();
  if (count == 0) return;
  local.element_count = count;

  // Dense per-document trie, open-addressed on (parent, name) like
  // schema extraction's PathTable. `emit` is the path's position in
  // first-visit order — the order both CollectLocalPaths and
  // ExtractPaths publish paths in, which downstream code relies on
  // matching the non-restore admission path exactly.
  constexpr uint32_t kNoDense = 0xFFFFFFFFu;
  struct DenseEntry {
    uint32_t parent;  // dense index of the parent path, kNoDense at root
    NameId name;
    size_t max_multiplicity = 0;
    double position_sum = 0.0;
    size_t position_count = 0;
    uint32_t emit = kNoDense;
    std::vector<std::pair<uint32_t, const Node*>> occurrences;
  };
  constexpr uint64_t kEmptySlot = 0xFFFFFFFFFFFFFFFFull;
  std::vector<DenseEntry> entries;
  std::vector<uint64_t> keys(128, kEmptySlot);
  std::vector<uint32_t> values(128);
  size_t mask = keys.size() - 1;
  size_t used = 0;
  auto mix = [](uint64_t key) {
    key ^= key >> 30;
    key *= 0xbf58476d1ce4e5b9ull;
    key ^= key >> 27;
    key *= 0x94d049bb133111ebull;
    key ^= key >> 31;
    return key;
  };
  auto resolve = [&](uint32_t parent, NameId name) -> uint32_t {
    const uint64_t key = (static_cast<uint64_t>(parent) << 32) | name;
    size_t slot = mix(key) & mask;
    while (true) {
      if (keys[slot] == key) return values[slot];
      if (keys[slot] == kEmptySlot) break;
      slot = (slot + 1) & mask;
    }
    const uint32_t index = static_cast<uint32_t>(entries.size());
    DenseEntry entry;
    entry.parent = parent;
    entry.name = name;
    entries.push_back(std::move(entry));
    keys[slot] = key;
    values[slot] = index;
    if (++used * 4 > keys.size() * 3) {
      std::vector<uint64_t> old_keys = std::move(keys);
      std::vector<uint32_t> old_values = std::move(values);
      keys.assign(old_keys.size() * 2, kEmptySlot);
      values.assign(old_keys.size() * 2, 0);
      mask = keys.size() - 1;
      for (size_t i = 0; i < old_keys.size(); ++i) {
        if (old_keys[i] == kEmptySlot) continue;
        size_t s = mix(old_keys[i]) & mask;
        while (keys[s] != kEmptySlot) s = (s + 1) & mask;
        keys[s] = old_keys[i];
        values[s] = old_values[i];
      }
    }
    return index;
  };

  // Same replay of the original tree walk as ExtractPaths(FlatDoc) —
  // emit, sibling multiplicity counting, child ordinal positions —
  // with occurrence recording folded into the visit so the document is
  // traversed once instead of twice.
  std::vector<uint32_t> elem_path(count);
  std::vector<uint32_t> emit_order;
  std::vector<std::pair<NameId, size_t>> counts;
  elem_path[0] = resolve(kNoDense, doc.name(0));
  entries[elem_path[0]].max_multiplicity = 1;  // the root occurs once

  for (uint32_t e = 0; e < count; ++e) {
    const uint32_t path_index = elem_path[e];
    {
      DenseEntry& entry = entries[path_index];
      if (entry.emit == kNoDense) {
        entry.emit = static_cast<uint32_t>(emit_order.size());
        emit_order.push_back(path_index);
      }
      entry.occurrences.emplace_back(e, nullptr);
    }

    counts.clear();
    const uint32_t end = doc.subtree_end(e);
    for (uint32_t f = e + 1; f < end; f = doc.subtree_end(f)) {
      const NameId name = doc.name(f);
      bool found = false;
      for (auto& [id, n] : counts) {
        if (id == name) {
          ++n;
          found = true;
          break;
        }
      }
      if (!found) counts.emplace_back(name, 1);
    }
    uint32_t element_index = 0;
    for (uint32_t f = e + 1; f < end; f = doc.subtree_end(f)) {
      // resolve() may grow `entries`; re-index after it returns.
      const uint32_t child_path = resolve(path_index, doc.name(f));
      elem_path[f] = child_path;
      size_t multiplicity = 0;
      for (const auto& [id, n] : counts) {
        if (id == doc.name(f)) {
          multiplicity = n;
          break;
        }
      }
      DenseEntry& entry = entries[child_path];
      entry.max_multiplicity = std::max(entry.max_multiplicity, multiplicity);
      entry.position_sum += static_cast<double>(element_index);
      ++entry.position_count;
      ++element_index;
    }
  }

  // Publish both feeds in emit order. Every resolved path was visited
  // (each child index is reached by the outer loop), and pre-order
  // guarantees a parent's emit slot is assigned before its children's.
  const size_t n = emit_order.size();
  local.paths.resize(n);
  mined.paths.assign(n, LabelPath{});  // sizes the parallel vectors only
  mined.max_multiplicity.reserve(n);
  mined.position_sum.reserve(n);
  mined.position_count.reserve(n);
  mined.parent_index.reserve(n);
  mined.leaf_name.reserve(n);
  for (size_t k = 0; k < n; ++k) {
    DenseEntry& entry = entries[emit_order[k]];
    const uint32_t parent_emit = entry.parent == kNoDense
                                     ? LocalDocumentPaths::kNoParent
                                     : entries[entry.parent].emit;
    LocalDocumentPaths::Path& path = local.paths[k];
    path.parent = parent_emit;
    path.name = entry.name;
    path.occurrences = std::move(entry.occurrences);
    mined.parent_index.push_back(parent_emit == LocalDocumentPaths::kNoParent
                                     ? DocumentPaths::kNoParentPath
                                     : parent_emit);
    mined.leaf_name.push_back(entry.name);
    mined.max_multiplicity.push_back(entry.max_multiplicity);
    mined.position_sum.push_back(entry.position_sum);
    mined.position_count.push_back(entry.position_count);
  }
}

namespace {

/// Sorted-unique insertion, optimized for the common in-order arrival
/// (append). Concurrent Adds can complete out of id order, so the
/// general case falls back to a binary search.
void InsertSorted(std::vector<DocId>& docs, DocId doc) {
  if (docs.empty() || docs.back() < doc) {
    docs.push_back(doc);
    return;
  }
  if (docs.back() == doc) return;
  auto it = std::lower_bound(docs.begin(), docs.end(), doc);
  if (it == docs.end() || *it != doc) docs.insert(it, doc);
}

}  // namespace

uint64_t PathIndex::Mix(uint64_t key) {
  // splitmix64 finalizer: full-width avalanche of the packed pair.
  key ^= key >> 30;
  key *= 0xbf58476d1ce4e5b9ull;
  key ^= key >> 27;
  key *= 0x94d049bb133111ebull;
  key ^= key >> 31;
  return key;
}

void PathIndex::Rehash(size_t new_slots) {
  std::vector<uint64_t> old_keys = std::move(keys_);
  std::vector<uint32_t> old_values = std::move(values_);
  keys_.assign(new_slots, kEmptySlot);
  values_.assign(new_slots, 0);
  mask_ = new_slots - 1;
  for (size_t i = 0; i < old_keys.size(); ++i) {
    if (old_keys[i] == kEmptySlot) continue;
    size_t slot = Mix(old_keys[i]) & mask_;
    while (keys_[slot] != kEmptySlot) slot = (slot + 1) & mask_;
    keys_[slot] = old_keys[i];
    values_[slot] = old_values[i];
  }
}

uint32_t PathIndex::Resolve(uint32_t parent, NameId name) {
  if (keys_.empty()) Rehash(kInitialSlots);
  const uint64_t key = (static_cast<uint64_t>(parent) << 32) | name;
  size_t slot = Mix(key) & mask_;
  while (true) {
    if (keys_[slot] == key) return values_[slot];
    if (keys_[slot] == kEmptySlot) break;
    slot = (slot + 1) & mask_;
  }
  const uint32_t id = static_cast<uint32_t>(entries_.size());
  Entry entry;
  entry.parent = parent;
  entry.name = name;
  entries_.push_back(std::move(entry));
  if (parent == kNoPath) {
    roots_.push_back(id);
  } else {
    entries_[parent].children.push_back(id);
  }
  keys_[slot] = key;
  values_[slot] = id;
  if (++used_ * 4 > keys_.size() * 3) Rehash(keys_.size() * 2);
  return id;
}

uint32_t PathIndex::Lookup(uint32_t parent, NameId name) const {
  if (keys_.empty()) return kNoPath;
  const uint64_t key = (static_cast<uint64_t>(parent) << 32) | name;
  size_t slot = Mix(key) & mask_;
  while (true) {
    if (keys_[slot] == key) return values_[slot];
    if (keys_[slot] == kEmptySlot) return kNoPath;
    slot = (slot + 1) & mask_;
  }
}

void PathIndex::AddDocument(const LocalDocumentPaths& local, DocId doc,
                            const FlatDoc* flat) {
  // Parents precede children in `local.paths`, so each local path's
  // global id resolves from its parent's already-resolved id.
  std::vector<uint32_t> global(local.paths.size());
  for (size_t i = 0; i < local.paths.size(); ++i) {
    const LocalDocumentPaths::Path& path = local.paths[i];
    const uint32_t parent = path.parent == LocalDocumentPaths::kNoParent
                                ? kNoPath
                                : global[path.parent];
    const uint32_t id = Resolve(parent, path.name);
    global[i] = id;
    Entry& entry = entries_[id];
    InsertSorted(entry.docs, doc);
    InsertSorted(label_docs_[path.name], doc);
    if (record_occurrences_) {
      // The document's occurrences form one contiguous (doc, pos…) run;
      // splice it at the doc's sorted position (plain append when ids
      // arrive in order).
      auto at = std::lower_bound(
          entry.occurrences.begin(), entry.occurrences.end(), doc,
          [](const PathOccurrence& o, DocId d) { return o.doc < d; });
      const size_t offset = static_cast<size_t>(at - entry.occurrences.begin());
      entry.occurrences.insert(
          at, path.occurrences.size(),
          PathOccurrence{});
      for (size_t k = 0; k < path.occurrences.size(); ++k) {
        entry.occurrences[offset + k] =
            PathOccurrence{doc, path.occurrences[k].first,
                           path.occurrences[k].second, flat};
      }
    }
  }
}

Status PathIndex::LoadEntry(uint32_t parent, NameId name,
                            std::vector<DocId> docs,
                            std::vector<PathOccurrence> occurrences) {
  if (parent != kNoPath && parent >= entries_.size()) {
    return Status::InvalidArgument("path index load: parent out of range");
  }
  if (name == kInvalidNameId) {
    return Status::InvalidArgument("path index load: invalid name");
  }
  for (size_t i = 1; i < docs.size(); ++i) {
    if (docs[i - 1] >= docs[i]) {
      return Status::InvalidArgument("path index load: docs not sorted");
    }
  }
  for (size_t i = 0; i < occurrences.size(); ++i) {
    const PathOccurrence& occ = occurrences[i];
    if (!std::binary_search(docs.begin(), docs.end(), occ.doc)) {
      return Status::InvalidArgument(
          "path index load: occurrence doc not in posting list");
    }
    if (i > 0) {
      const PathOccurrence& prev = occurrences[i - 1];
      if (prev.doc > occ.doc ||
          (prev.doc == occ.doc && prev.pos >= occ.pos)) {
        return Status::InvalidArgument(
            "path index load: occurrences not sorted");
      }
    }
  }
  const uint32_t expected = static_cast<uint32_t>(entries_.size());
  if (Resolve(parent, name) != expected) {
    // Resolve returned an existing id: two stored entries share one
    // (parent, name) pair, which a well-formed snapshot never has.
    return Status::InvalidArgument("path index load: duplicate path entry");
  }
  Entry& entry = entries_[expected];
  for (DocId doc : docs) InsertSorted(label_docs_[name], doc);
  entry.docs = std::move(docs);
  if (record_occurrences_) entry.occurrences = std::move(occurrences);
  return Status::Ok();
}

uint32_t PathIndex::FindPath(const NameId* labels, size_t count) const {
  if (count == 0) return kNoPath;
  uint32_t cur = kNoPath;
  for (size_t i = 0; i < count; ++i) {
    cur = Lookup(cur, labels[i]);
    if (cur == kNoPath) return kNoPath;
  }
  return cur;
}

const std::vector<DocId>& PathIndex::DocsWithLabel(NameId name) const {
  auto it = label_docs_.find(name);
  return it == label_docs_.end() ? EmptyDocs() : it->second;
}

const std::vector<DocId>& PathIndex::EmptyDocs() {
  static const std::vector<DocId> kEmpty;
  return kEmpty;
}

}  // namespace webre
