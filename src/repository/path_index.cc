#include "repository/path_index.h"

#include <algorithm>

namespace webre {

LocalDocumentPaths CollectLocalPaths(const Node& root) {
  LocalDocumentPaths out;
  if (!root.is_element()) return out;

  // (parent path << 32 | name) -> index into out.paths. Documents are
  // small relative to the repository; a node-local map is fine here.
  std::unordered_map<uint64_t, uint32_t> dense;
  dense.reserve(64);
  auto resolve = [&](uint32_t parent, NameId name) -> uint32_t {
    const uint64_t key = (static_cast<uint64_t>(parent) << 32) | name;
    auto [it, inserted] =
        dense.emplace(key, static_cast<uint32_t>(out.paths.size()));
    if (inserted) {
      LocalDocumentPaths::Path path;
      path.parent = parent;
      path.name = name;
      out.paths.push_back(std::move(path));
    }
    return it->second;
  };

  // Pre-order via an explicit stack (children pushed in reverse), so
  // pathological depth cannot overflow the C++ stack. `pos` numbers
  // elements in document order.
  struct Frame {
    const Node* node;
    uint32_t path;
  };
  std::vector<Frame> stack;
  const uint32_t root_path =
      resolve(LocalDocumentPaths::kNoParent, root.name_id());
  stack.push_back(Frame{&root, root_path});
  uint32_t pos = 0;
  while (!stack.empty()) {
    Frame frame = stack.back();
    stack.pop_back();
    out.paths[frame.path].occurrences.emplace_back(pos, frame.node);
    ++pos;
    ++out.element_count;
    for (size_t i = frame.node->child_count(); i > 0; --i) {
      const Node* child = frame.node->child(i - 1);
      if (!child->is_element()) continue;
      stack.push_back(Frame{child, resolve(frame.path, child->name_id())});
    }
  }
  return out;
}

LocalDocumentPaths CollectLocalPaths(const FlatDoc& doc) {
  LocalDocumentPaths out;
  const uint32_t count = doc.element_count();
  if (count == 0) return out;
  out.element_count = count;

  std::unordered_map<uint64_t, uint32_t> dense;
  dense.reserve(64);
  auto resolve = [&](uint32_t parent, NameId name) -> uint32_t {
    const uint64_t key = (static_cast<uint64_t>(parent) << 32) | name;
    auto [it, inserted] =
        dense.emplace(key, static_cast<uint32_t>(out.paths.size()));
    if (inserted) {
      LocalDocumentPaths::Path path;
      path.parent = parent;
      path.name = name;
      out.paths.push_back(std::move(path));
    }
    return it->second;
  };

  // Pre-order indices ARE the flat indices, and parents precede their
  // children, so one linear pass resolves every element's path from
  // its parent's already-resolved path.
  std::vector<uint32_t> elem_path(count);
  for (uint32_t i = 0; i < count; ++i) {
    const uint32_t parent = doc.parent(i);
    const uint32_t parent_path = parent == FlatDoc::kNoParent
                                     ? LocalDocumentPaths::kNoParent
                                     : elem_path[parent];
    const uint32_t path = resolve(parent_path, doc.name(i));
    elem_path[i] = path;
    out.paths[path].occurrences.emplace_back(i, nullptr);
  }
  return out;
}

namespace {

/// Sorted-unique insertion, optimized for the common in-order arrival
/// (append). Concurrent Adds can complete out of id order, so the
/// general case falls back to a binary search.
void InsertSorted(std::vector<DocId>& docs, DocId doc) {
  if (docs.empty() || docs.back() < doc) {
    docs.push_back(doc);
    return;
  }
  if (docs.back() == doc) return;
  auto it = std::lower_bound(docs.begin(), docs.end(), doc);
  if (it == docs.end() || *it != doc) docs.insert(it, doc);
}

}  // namespace

uint64_t PathIndex::Mix(uint64_t key) {
  // splitmix64 finalizer: full-width avalanche of the packed pair.
  key ^= key >> 30;
  key *= 0xbf58476d1ce4e5b9ull;
  key ^= key >> 27;
  key *= 0x94d049bb133111ebull;
  key ^= key >> 31;
  return key;
}

void PathIndex::Rehash(size_t new_slots) {
  std::vector<uint64_t> old_keys = std::move(keys_);
  std::vector<uint32_t> old_values = std::move(values_);
  keys_.assign(new_slots, kEmptySlot);
  values_.assign(new_slots, 0);
  mask_ = new_slots - 1;
  for (size_t i = 0; i < old_keys.size(); ++i) {
    if (old_keys[i] == kEmptySlot) continue;
    size_t slot = Mix(old_keys[i]) & mask_;
    while (keys_[slot] != kEmptySlot) slot = (slot + 1) & mask_;
    keys_[slot] = old_keys[i];
    values_[slot] = old_values[i];
  }
}

uint32_t PathIndex::Resolve(uint32_t parent, NameId name) {
  if (keys_.empty()) Rehash(kInitialSlots);
  const uint64_t key = (static_cast<uint64_t>(parent) << 32) | name;
  size_t slot = Mix(key) & mask_;
  while (true) {
    if (keys_[slot] == key) return values_[slot];
    if (keys_[slot] == kEmptySlot) break;
    slot = (slot + 1) & mask_;
  }
  const uint32_t id = static_cast<uint32_t>(entries_.size());
  Entry entry;
  entry.parent = parent;
  entry.name = name;
  entries_.push_back(std::move(entry));
  if (parent == kNoPath) {
    roots_.push_back(id);
  } else {
    entries_[parent].children.push_back(id);
  }
  keys_[slot] = key;
  values_[slot] = id;
  if (++used_ * 4 > keys_.size() * 3) Rehash(keys_.size() * 2);
  return id;
}

uint32_t PathIndex::Lookup(uint32_t parent, NameId name) const {
  if (keys_.empty()) return kNoPath;
  const uint64_t key = (static_cast<uint64_t>(parent) << 32) | name;
  size_t slot = Mix(key) & mask_;
  while (true) {
    if (keys_[slot] == key) return values_[slot];
    if (keys_[slot] == kEmptySlot) return kNoPath;
    slot = (slot + 1) & mask_;
  }
}

void PathIndex::AddDocument(const LocalDocumentPaths& local, DocId doc,
                            const FlatDoc* flat) {
  // Parents precede children in `local.paths`, so each local path's
  // global id resolves from its parent's already-resolved id.
  std::vector<uint32_t> global(local.paths.size());
  for (size_t i = 0; i < local.paths.size(); ++i) {
    const LocalDocumentPaths::Path& path = local.paths[i];
    const uint32_t parent = path.parent == LocalDocumentPaths::kNoParent
                                ? kNoPath
                                : global[path.parent];
    const uint32_t id = Resolve(parent, path.name);
    global[i] = id;
    Entry& entry = entries_[id];
    InsertSorted(entry.docs, doc);
    InsertSorted(label_docs_[path.name], doc);
    if (record_occurrences_) {
      // The document's occurrences form one contiguous (doc, pos…) run;
      // splice it at the doc's sorted position (plain append when ids
      // arrive in order).
      auto at = std::lower_bound(
          entry.occurrences.begin(), entry.occurrences.end(), doc,
          [](const PathOccurrence& o, DocId d) { return o.doc < d; });
      const size_t offset = static_cast<size_t>(at - entry.occurrences.begin());
      entry.occurrences.insert(
          at, path.occurrences.size(),
          PathOccurrence{});
      for (size_t k = 0; k < path.occurrences.size(); ++k) {
        entry.occurrences[offset + k] =
            PathOccurrence{doc, path.occurrences[k].first,
                           path.occurrences[k].second, flat};
      }
    }
  }
}

uint32_t PathIndex::FindPath(const NameId* labels, size_t count) const {
  if (count == 0) return kNoPath;
  uint32_t cur = kNoPath;
  for (size_t i = 0; i < count; ++i) {
    cur = Lookup(cur, labels[i]);
    if (cur == kNoPath) return kNoPath;
  }
  return cur;
}

const std::vector<DocId>& PathIndex::DocsWithLabel(NameId name) const {
  auto it = label_docs_.find(name);
  return it == label_docs_.end() ? EmptyDocs() : it->second;
}

const std::vector<DocId>& PathIndex::EmptyDocs() {
  static const std::vector<DocId> kEmpty;
  return kEmpty;
}

}  // namespace webre
