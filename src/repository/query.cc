#include "repository/query.h"

#include <algorithm>
#include <unordered_set>

#include "repository/predicate.h"
#include "util/simd_scan.h"
#include "util/strings.h"

namespace webre {
namespace {

bool IsNameChar(char c) {
  return IsAsciiAlnum(c) || c == '-' || c == '_' || c == '.' || c == '*';
}

}  // namespace

StatusOr<PathQuery> PathQuery::Parse(std::string_view text) {
  PathQuery query;
  size_t pos = 0;
  if (text.empty() || text[0] != '/') {
    return Status::InvalidArgument("query must start with '/' or '//'");
  }
  while (pos < text.size()) {
    if (text[pos] != '/') {
      return Status::InvalidArgument("expected '/' at position " +
                                     std::to_string(pos));
    }
    QueryStep step;
    ++pos;
    if (pos < text.size() && text[pos] == '/') {
      step.descendant = true;
      ++pos;
    }
    size_t name_start = pos;
    while (pos < text.size() && IsNameChar(text[pos])) ++pos;
    step.name = std::string(text.substr(name_start, pos - name_start));
    if (step.name.empty()) {
      return Status::InvalidArgument("empty step name at position " +
                                     std::to_string(name_start));
    }
    if (step.name != "*" &&
        step.name.find('*') != std::string::npos) {
      return Status::InvalidArgument(
          "'*' must be the whole step name: " + step.name);
    }
    if (step.name == "*") {
      step.wildcard = true;
    } else {
      // Interned eagerly (not Find) so a query parsed before the first
      // document naming this element still matches once such documents
      // arrive.
      step.name_id = NameTable::Global().Intern(step.name);
    }
    // Optional predicate [val~"substr"].
    if (pos < text.size() && text[pos] == '[') {
      constexpr std::string_view kPrefix = "[val~\"";
      if (text.substr(pos).substr(0, kPrefix.size()) != kPrefix) {
        return Status::InvalidArgument(
            "malformed predicate; expected [val~\"...\"]");
      }
      pos += kPrefix.size();
      size_t value_start = pos;
      while (pos < text.size() && text[pos] != '"') ++pos;
      if (pos + 1 >= text.size() || text[pos] != '"' ||
          text[pos + 1] != ']') {
        return Status::InvalidArgument("unterminated predicate");
      }
      step.val_contains =
          std::string(text.substr(value_start, pos - value_start));
      step.val_lower = AsciiLower(step.val_contains);
      pos += 2;
    }
    query.steps_.push_back(std::move(step));
  }
  if (query.steps_.empty()) {
    return Status::InvalidArgument("empty query");
  }
  return query;
}

bool PathQuery::IsSimplePath() const {
  return SimplePrefixLength() == steps_.size();
}

size_t PathQuery::SimplePrefixLength() const {
  size_t k = 0;
  for (const QueryStep& step : steps_) {
    if (step.descendant || step.wildcard || step.name == "*" ||
        !step.val_contains.empty()) {
      break;
    }
    ++k;
  }
  return k;
}

std::vector<std::string> PathQuery::AsLabelPath() const {
  std::vector<std::string> path;
  path.reserve(steps_.size());
  for (const QueryStep& step : steps_) path.push_back(step.name);
  return path;
}

namespace {

bool StepMatches(const QueryStep& step, const Node& node) {
  if (!node.is_element()) return false;
  if (step.name_id != kInvalidNameId) {
    // Parsed, non-wildcard step: one integer compare.
    if (node.name_id() != step.name_id) return false;
  } else if (!step.wildcard && step.name != "*" && node.name() != step.name) {
    // Hand-assembled step: match through the string.
    return false;
  }
  if (!step.val_contains.empty()) {
    // Parsed steps carry the pre-lowered needle; hand-assembled steps
    // pay the per-check lowering.
    const bool contained =
        step.val_lower.size() == step.val_contains.size()
            ? ContainsLowered(node.val(), step.val_lower)
            : ContainsIgnoreCase(node.val(), step.val_contains);
    if (!contained) return false;
  }
  return true;
}

// Collects nodes in `from`'s subtree (excluding `from`) matching `step`.
void CollectDescendants(const Node& from, const QueryStep& step,
                        std::vector<const Node*>& out) {
  for (size_t i = 0; i < from.child_count(); ++i) {
    const Node* child = from.child(i);
    if (!child->is_element()) continue;
    if (StepMatches(step, *child)) out.push_back(child);
    CollectDescendants(*child, step, out);
  }
}

// Strict document-order comparison of two nodes of the SAME document:
// lift the deeper node to equal depth (an ancestor precedes its
// descendants), then lift both until the parents coincide and compare
// sibling indices. Nodes of different documents compare by root
// pointer — arbitrary but strict, callers only sort within one
// document.
bool DocumentOrderLess(const Node* a, const Node* b) {
  if (a == b) return false;
  const Node* pa = a;
  const Node* pb = b;
  size_t da = pa->Depth();
  size_t db = pb->Depth();
  while (da > db) {
    pa = pa->parent();
    --da;
    if (pa == b) return false;  // b is an ancestor of a
  }
  while (db > da) {
    pb = pb->parent();
    --db;
    if (pb == a) return true;  // a is an ancestor of b
  }
  while (pa->parent() != pb->parent()) {
    pa = pa->parent();
    pb = pb->parent();
  }
  const Node* parent = pa->parent();
  if (parent == nullptr) return pa < pb;  // different documents
  return parent->IndexOf(pa) < parent->IndexOf(pb);
}

}  // namespace

std::vector<const Node*> PathQuery::Evaluate(const Node& root) const {
  return EvaluateFrom({&root}, 0);
}

std::vector<const Node*> PathQuery::EvaluateFrom(
    std::vector<const Node*> frontier, size_t first_step) const {
  // After a descendant step the frontier may contain nested node pairs;
  // a later child-axis expansion of a nested frontier can emit nodes
  // out of document order, so the final set is re-sorted in that one
  // case (the historic O(n²) dedup hid the issue by never reordering —
  // and never fixing the order either).
  bool nested_possible = false;
  bool order_suspect = false;
  for (size_t s = 0; s < first_step && s < steps_.size(); ++s) {
    if (steps_[s].descendant) nested_possible = true;
  }

  if (first_step == 0) {
    // Step 0 starts from the (virtual) document parent of the roots in
    // `frontier`.
    const QueryStep& first = steps_[0];
    std::vector<const Node*> start;
    for (const Node* root : frontier) {
      if (first.descendant) {
        if (StepMatches(first, *root)) start.push_back(root);
        CollectDescendants(*root, first, start);
      } else if (StepMatches(first, *root)) {
        start.push_back(root);
      }
    }
    frontier = std::move(start);
    if (first.descendant) nested_possible = true;
    first_step = 1;
  }

  for (size_t s = first_step; s < steps_.size(); ++s) {
    const QueryStep& step = steps_[s];
    std::vector<const Node*> next;
    for (const Node* node : frontier) {
      if (step.descendant) {
        CollectDescendants(*node, step, next);
      } else {
        for (size_t i = 0; i < node->child_count(); ++i) {
          const Node* child = node->child(i);
          if (child->is_element() && StepMatches(step, *child)) {
            next.push_back(child);
          }
        }
      }
    }
    if (step.descendant) {
      // Only descendant expansion of overlapping subtrees can duplicate
      // a node (a child-axis step emits each node through its unique
      // parent at most once). Dedup with a hash set, keeping first —
      // i.e. document — occurrence.
      if (nested_possible && next.size() > 1) {
        std::unordered_set<const Node*> seen;
        seen.reserve(next.size() * 2);
        std::vector<const Node*> deduped;
        deduped.reserve(next.size());
        for (const Node* node : next) {
          if (seen.insert(node).second) deduped.push_back(node);
        }
        next = std::move(deduped);
      }
      nested_possible = true;
    } else if (nested_possible) {
      order_suspect = true;
    }
    frontier = std::move(next);
    if (frontier.empty()) break;
  }

  if (order_suspect && frontier.size() > 1) {
    std::sort(frontier.begin(), frontier.end(), DocumentOrderLess);
  }
  return frontier;
}

namespace {

// Per-call resolved form of one step for flat evaluation: name test as
// a single NameId compare, predicate needle pre-lowered. `impossible`
// marks a hand-assembled step whose name was never interned — no stored
// element can match it.
struct FlatStepTest {
  bool wildcard = false;
  bool impossible = false;
  NameId name = kInvalidNameId;
  std::string owned;          // backing for `lowered` when re-lowered here
  std::string_view lowered;   // empty = no predicate
};

FlatStepTest ResolveFlatStep(const QueryStep& step) {
  FlatStepTest test;
  if (step.wildcard || step.name == "*") {
    test.wildcard = true;
  } else if (step.name_id != kInvalidNameId) {
    test.name = step.name_id;
  } else {
    test.name = NameTable::Global().Find(step.name);
    if (test.name == kInvalidNameId) test.impossible = true;
  }
  if (!step.val_contains.empty()) {
    if (step.val_lower.size() == step.val_contains.size()) {
      test.lowered = step.val_lower;
    } else {
      // `lowered` is re-pointed at `owned` only once the test has
      // reached its final resting place (moving a small string would
      // otherwise dangle the view).
      test.owned = AsciiLower(step.val_contains);
    }
  }
  return test;
}

// Name half of one step's test; the predicate half runs in batch over
// the step's survivors (apply_predicate in EvaluateFrom below).
inline bool FlatNameMatches(const FlatStepTest& test, const FlatDoc& doc,
                            uint32_t i) {
  if (test.impossible) return false;
  return test.wildcard || doc.name(i) == test.name;
}

}  // namespace

struct FlatEvalScratch::Impl {
  /// Step tests resolved once per query and reused for every document
  /// evaluated with this scratch (`resolved_for` keys the cache; the
  /// query outlives the scratch at every call site).
  const PathQuery* resolved_for = nullptr;
  std::vector<FlatStepTest> tests;
  /// The per-step successor frontier, swapped with the live frontier so
  /// both buffers' capacities survive across steps and documents.
  std::vector<uint32_t> next;
  PredicateScratch predicate;
};

FlatEvalScratch::FlatEvalScratch() : impl_(std::make_unique<Impl>()) {}
FlatEvalScratch::~FlatEvalScratch() = default;

uint64_t FlatEvalScratch::predicate_bytes_scanned() const {
  return impl_->predicate.bytes_scanned;
}

uint64_t FlatEvalScratch::pool_sweeps() const {
  return impl_->predicate.sweeps;
}

std::vector<uint32_t> PathQuery::Evaluate(const FlatDoc& doc) const {
  FlatEvalScratch scratch;
  return Evaluate(doc, scratch);
}

std::vector<uint32_t> PathQuery::Evaluate(const FlatDoc& doc,
                                          FlatEvalScratch& scratch) const {
  if (doc.element_count() == 0) return {};
  return EvaluateFrom(doc, {0}, 0, scratch);
}

std::vector<uint32_t> PathQuery::EvaluateFrom(
    const FlatDoc& doc, std::vector<uint32_t> frontier,
    size_t first_step) const {
  FlatEvalScratch scratch;
  return EvaluateFrom(doc, std::move(frontier), first_step, scratch);
}

std::vector<uint32_t> PathQuery::EvaluateFrom(
    const FlatDoc& doc, std::vector<uint32_t> frontier, size_t first_step,
    FlatEvalScratch& scratch) const {
  // Mirrors the pointer-tree EvaluateFrom step by step; the per-step
  // match sets are provably identical, and both variants return the
  // final set deduplicated in document order (ascending indices here).
  // Two intentional differences: dedup after a nested descendant step
  // is a sort+unique over integers instead of a hash set (normalizes
  // the intermediate order without changing the set), and a step's
  // [val~…] predicate is applied in batch AFTER its name test collected
  // the step's survivors — filtering a set then deduplicating it yields
  // the same set as filtering element-wise, and the batch form lets the
  // cost model swap in a full-pool sweep.
  FlatEvalScratch::Impl& state = *scratch.impl_;
  std::vector<FlatStepTest>& tests = state.tests;
  if (state.resolved_for != this) {
    tests.clear();
    for (const QueryStep& step : steps_) {
      tests.push_back(ResolveFlatStep(step));
      FlatStepTest& placed = tests.back();
      if (!placed.owned.empty()) placed.lowered = placed.owned;
    }
    state.resolved_for = this;
  }

  const uint32_t* off = doc.text_offsets();
  const std::string_view pool = doc.lowered_pool();
  // In-place batch predicate filter over one step's name survivors.
  // Per-document cost decision: slices at least needle-sized are the
  // candidates (shorter ones cannot match and are rejected by length
  // alone); when they cover enough of the pool, one SIMD sweep of the
  // whole pool replaces every per-slice scan and the survivors reduce
  // to bitset lookups.
  auto apply_predicate = [&](const FlatStepTest& test,
                             std::vector<uint32_t>& v) {
    if (test.lowered.empty() || v.empty()) return;
    const size_t m = test.lowered.size();
    size_t cand_count = 0;
    size_t cand_bytes = 0;
    for (uint32_t e : v) {
      const size_t len = off[e + 1] - off[e];
      if (len >= m) {
        ++cand_count;
        cand_bytes += len;
      }
    }
    size_t kept = 0;
    if (ShouldSweepPool(cand_count, cand_bytes, pool.size())) {
      const uint64_t* bits =
          SweepValBitset(doc, test.lowered, state.predicate);
      for (uint32_t e : v) {
        if (BitsetTest(bits, e)) v[kept++] = e;
      }
    } else {
      state.predicate.bytes_scanned += cand_bytes;
      for (uint32_t e : v) {
        const size_t len = off[e + 1] - off[e];
        if (len < m) continue;
        if (FindLowered(std::string_view(pool.data() + off[e], len),
                        test.lowered) != std::string_view::npos) {
          v[kept++] = e;
        }
      }
    }
    v.resize(kept);
  };

  bool nested_possible = false;
  bool order_suspect = false;
  for (size_t s = 0; s < first_step && s < steps_.size(); ++s) {
    if (steps_[s].descendant) nested_possible = true;
  }

  std::vector<uint32_t>& next = state.next;
  if (first_step == 0 && !steps_.empty()) {
    const QueryStep& first = steps_[0];
    next.clear();
    for (uint32_t root : frontier) {
      if (first.descendant) {
        // `//x` from a root examines the root and its whole subtree —
        // one contiguous range.
        for (uint32_t i = root; i < doc.subtree_end(root); ++i) {
          if (FlatNameMatches(tests[0], doc, i)) next.push_back(i);
        }
      } else if (FlatNameMatches(tests[0], doc, root)) {
        next.push_back(root);
      }
    }
    apply_predicate(tests[0], next);
    std::swap(frontier, next);
    if (first.descendant) nested_possible = true;
    first_step = 1;
  }

  for (size_t s = first_step; s < steps_.size(); ++s) {
    const QueryStep& step = steps_[s];
    const FlatStepTest& test = tests[s];
    next.clear();
    for (uint32_t e : frontier) {
      const uint32_t end = doc.subtree_end(e);
      if (step.descendant) {
        for (uint32_t i = e + 1; i < end; ++i) {
          if (FlatNameMatches(test, doc, i)) next.push_back(i);
        }
      } else {
        for (uint32_t c = e + 1; c < end; c = doc.subtree_end(c)) {
          if (FlatNameMatches(test, doc, c)) next.push_back(c);
        }
      }
    }
    apply_predicate(test, next);
    if (step.descendant) {
      if (nested_possible && next.size() > 1) {
        std::sort(next.begin(), next.end());
        next.erase(std::unique(next.begin(), next.end()), next.end());
      }
      nested_possible = true;
    } else if (nested_possible) {
      order_suspect = true;
    }
    std::swap(frontier, next);
    if (frontier.empty()) break;
  }

  if (order_suspect && frontier.size() > 1) {
    std::sort(frontier.begin(), frontier.end());
    frontier.erase(std::unique(frontier.begin(), frontier.end()),
                   frontier.end());
  }
  return frontier;
}

std::string PathQuery::ToString() const {
  std::string out;
  for (const QueryStep& step : steps_) {
    out.append(step.descendant ? "//" : "/");
    out.append(step.name);
    if (!step.val_contains.empty()) {
      out.append("[val~\"");
      out.append(step.val_contains);
      out.append("\"]");
    }
  }
  return out;
}

}  // namespace webre
