#include "repository/query.h"

#include <algorithm>

#include "util/strings.h"

namespace webre {
namespace {

bool IsNameChar(char c) {
  return IsAsciiAlnum(c) || c == '-' || c == '_' || c == '.' || c == '*';
}

}  // namespace

StatusOr<PathQuery> PathQuery::Parse(std::string_view text) {
  PathQuery query;
  size_t pos = 0;
  if (text.empty() || text[0] != '/') {
    return Status::InvalidArgument("query must start with '/' or '//'");
  }
  while (pos < text.size()) {
    if (text[pos] != '/') {
      return Status::InvalidArgument("expected '/' at position " +
                                     std::to_string(pos));
    }
    QueryStep step;
    ++pos;
    if (pos < text.size() && text[pos] == '/') {
      step.descendant = true;
      ++pos;
    }
    size_t name_start = pos;
    while (pos < text.size() && IsNameChar(text[pos])) ++pos;
    step.name = std::string(text.substr(name_start, pos - name_start));
    if (step.name.empty()) {
      return Status::InvalidArgument("empty step name at position " +
                                     std::to_string(name_start));
    }
    if (step.name != "*" &&
        step.name.find('*') != std::string::npos) {
      return Status::InvalidArgument(
          "'*' must be the whole step name: " + step.name);
    }
    // Optional predicate [val~"substr"].
    if (pos < text.size() && text[pos] == '[') {
      constexpr std::string_view kPrefix = "[val~\"";
      if (text.substr(pos).substr(0, kPrefix.size()) != kPrefix) {
        return Status::InvalidArgument(
            "malformed predicate; expected [val~\"...\"]");
      }
      pos += kPrefix.size();
      size_t value_start = pos;
      while (pos < text.size() && text[pos] != '"') ++pos;
      if (pos + 1 >= text.size() || text[pos] != '"' ||
          text[pos + 1] != ']') {
        return Status::InvalidArgument("unterminated predicate");
      }
      step.val_contains =
          std::string(text.substr(value_start, pos - value_start));
      pos += 2;
    }
    query.steps_.push_back(std::move(step));
  }
  if (query.steps_.empty()) {
    return Status::InvalidArgument("empty query");
  }
  return query;
}

bool PathQuery::IsSimplePath() const {
  for (const QueryStep& step : steps_) {
    if (step.descendant || step.name == "*" || !step.val_contains.empty()) {
      return false;
    }
  }
  return true;
}

std::vector<std::string> PathQuery::AsLabelPath() const {
  std::vector<std::string> path;
  path.reserve(steps_.size());
  for (const QueryStep& step : steps_) path.push_back(step.name);
  return path;
}

namespace {

bool StepMatches(const QueryStep& step, const Node& node) {
  if (!node.is_element()) return false;
  if (step.name != "*" && node.name() != step.name) return false;
  if (!step.val_contains.empty() &&
      !ContainsIgnoreCase(node.val(), step.val_contains)) {
    return false;
  }
  return true;
}

// Collects nodes in `from`'s subtree (excluding `from`) matching `step`.
void CollectDescendants(const Node& from, const QueryStep& step,
                        std::vector<const Node*>& out) {
  for (size_t i = 0; i < from.child_count(); ++i) {
    const Node* child = from.child(i);
    if (!child->is_element()) continue;
    if (StepMatches(step, *child)) out.push_back(child);
    CollectDescendants(*child, step, out);
  }
}

}  // namespace

std::vector<const Node*> PathQuery::Evaluate(const Node& root) const {
  std::vector<const Node*> frontier;
  // Step 0 starts from the (virtual) document parent of the root.
  const QueryStep& first = steps_[0];
  if (first.descendant) {
    if (StepMatches(first, root)) frontier.push_back(&root);
    CollectDescendants(root, first, frontier);
  } else if (StepMatches(first, root)) {
    frontier.push_back(&root);
  }

  for (size_t s = 1; s < steps_.size(); ++s) {
    const QueryStep& step = steps_[s];
    std::vector<const Node*> next;
    for (const Node* node : frontier) {
      if (step.descendant) {
        CollectDescendants(*node, step, next);
      } else {
        for (size_t i = 0; i < node->child_count(); ++i) {
          const Node* child = node->child(i);
          if (child->is_element() && StepMatches(step, *child)) {
            next.push_back(child);
          }
        }
      }
    }
    // Deduplicate while keeping document order (frontier sets can
    // overlap under the descendant axis).
    std::vector<const Node*> deduped;
    for (const Node* node : next) {
      if (std::find(deduped.begin(), deduped.end(), node) == deduped.end()) {
        deduped.push_back(node);
      }
    }
    frontier = std::move(deduped);
    if (frontier.empty()) break;
  }
  return frontier;
}

std::string PathQuery::ToString() const {
  std::string out;
  for (const QueryStep& step : steps_) {
    out.append(step.descendant ? "//" : "/");
    out.append(step.name);
    if (!step.val_contains.empty()) {
      out.append("[val~\"");
      out.append(step.val_contains);
      out.append("\"]");
    }
  }
  return out;
}

}  // namespace webre
