#ifndef WEBRE_REPOSITORY_REPOSITORY_H_
#define WEBRE_REPOSITORY_REPOSITORY_H_

#include <cstddef>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "repository/query.h"
#include "schema/frequent_paths.h"
#include "schema/label_path.h"
#include "util/status.h"
#include "xml/dtd.h"
#include "xml/node.h"

namespace webre {

/// Identifier of a stored document.
using DocId = size_t;

/// One query hit: a node inside a stored document.
struct QueryMatch {
  DocId doc = 0;
  const Node* node = nullptr;
};

/// Aggregate repository statistics.
struct RepositoryStats {
  size_t documents = 0;
  size_t elements = 0;
  /// Distinct label paths across all documents (the repository's Data
  /// Guide size).
  size_t distinct_paths = 0;
};

/// The XML repository the pipeline feeds (§1: "the integration of topic
/// specific HTML documents into a repository of XML documents"; §5's
/// Quixote prototype [11]).
///
/// Documents are stored as ordered trees and indexed by *label path*:
/// for every root-emanating label path the index keeps the documents
/// containing it, so simple path queries are answered without touching
/// non-matching documents — the paper's point that a schema "can provide
/// the right level of detail" for "query optimization and index
/// structures" (§1). Non-simple queries (wildcards, `//`, predicates)
/// fall back to evaluating against candidate documents, still pruned by
/// the longest simple prefix of the query.
///
/// Optionally the repository enforces a DTD on admission (documents are
/// expected to have been conformed by the Document Mapping Component).
class XmlRepository {
 public:
  XmlRepository() = default;

  /// Makes admission require conformance to `dtd` (copied). Documents
  /// already stored are not re-checked.
  void SetDtd(Dtd dtd);
  bool has_dtd() const { return has_dtd_; }
  const Dtd& dtd() const { return dtd_; }

  /// Adds a document, indexing its label paths. With a DTD set, a
  /// non-conforming document is rejected (FailedPrecondition) listing
  /// the first violation.
  StatusOr<DocId> Add(std::unique_ptr<Node> document);

  size_t size() const { return documents_.size(); }
  /// Borrowed pointer to a stored document; null for unknown ids.
  const Node* document(DocId id) const;

  /// Documents containing the exact root-emanating label path.
  std::vector<DocId> DocumentsWithPath(const LabelPath& path) const;

  /// Parses and runs `query_text` across the repository; matches are in
  /// (doc, document-order) order.
  StatusOr<std::vector<QueryMatch>> Query(std::string_view query_text) const;

  /// Runs a pre-parsed query.
  std::vector<QueryMatch> Query(const PathQuery& query) const;

  RepositoryStats Stats() const;

  /// Discovers the majority schema of the stored documents (a fresh
  /// mining pass over the repository; the paper's repository keeps its
  /// schema alongside the data so new documents can be mapped on
  /// arrival).
  MajoritySchema DiscoverSchema(const MiningOptions& options = {}) const;

 private:
  std::vector<std::unique_ptr<Node>> documents_;
  /// joined label path -> sorted doc ids (deduplicated).
  std::unordered_map<std::string, std::vector<DocId>> path_index_;
  Dtd dtd_;
  bool has_dtd_ = false;
};

}  // namespace webre

#endif  // WEBRE_REPOSITORY_REPOSITORY_H_
