#ifndef WEBRE_REPOSITORY_REPOSITORY_H_
#define WEBRE_REPOSITORY_REPOSITORY_H_

#include <atomic>
#include <cstddef>
#include <functional>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "obs/metrics.h"
#include "repository/path_index.h"
#include "repository/query.h"
#include "schema/frequent_paths.h"
#include "schema/label_path.h"
#include "util/status.h"
#include "util/thread_pool.h"
#include "xml/dtd.h"
#include "xml/flat_doc.h"
#include "xml/node.h"
#include "xml/node_arena.h"

namespace webre {

/// One query hit: an element inside a stored document, identified by
/// (doc, pos) plus a handle into whichever representation stores the
/// document. `name()`/`val()` resolve lazily through that handle —
/// keeping the match itself a 32-byte value the hot emit loops can
/// stream — and view repository-owned storage (the frozen block, or
/// the tree node), valid for the repository's lifetime.
struct QueryMatch {
  DocId doc = 0;
  /// Pre-order index of the element among the document's elements —
  /// the in-document order key. In flat mode, also the element's index
  /// into `flat`.
  uint32_t pos = 0;
  /// The matched tree node when the document is stored as a pointer
  /// tree (freeze_flat = false); null for frozen documents.
  const Node* node = nullptr;
  /// The frozen document owning `pos`; null in pointer mode.
  const FlatDoc* flat = nullptr;

  /// Interned element name.
  NameId name() const {
    return flat != nullptr ? flat->name(pos) : node->name_id();
  }
  /// The element's `val` attribute (empty if absent).
  std::string_view val() const {
    return flat != nullptr ? flat->val(pos) : node->val();
  }
};

/// Aggregate repository statistics.
struct RepositoryStats {
  size_t documents = 0;
  size_t elements = 0;
  /// Distinct label paths across all documents (the repository's Data
  /// Guide size).
  size_t distinct_paths = 0;
  /// Total bytes of frozen FlatDoc blocks (0 with freeze_flat off) —
  /// the steady-state document storage footprint.
  size_t flat_bytes = 0;
};

/// Serving-layer configuration.
struct RepositoryOptions {
  /// Document shards. 0 (the default) means one per hardware thread.
  /// More shards reduce Add/Query contention; query results are
  /// identical for every value.
  size_t num_shards = 0;
  /// Worker threads for query fan-out. 0 means one per hardware
  /// thread; values <= 1 evaluate inline (no pool is ever created).
  size_t query_threads = 0;
  /// Freeze documents into the flat representation at Add, releasing
  /// the pointer tree (and its arena, when handed over). Disable
  /// (CLI: --no-flat) to keep the pointer trees, e.g. when callers
  /// need `document()` to return live Node trees.
  bool freeze_flat = true;
};

/// The XML repository the pipeline feeds (§1: "the integration of topic
/// specific HTML documents into a repository of XML documents"; §5's
/// Quixote prototype [11]) — organized as a concurrent serving layer.
///
/// Layout: documents are sharded by id (shard = id mod N). Each shard
/// owns its documents, a NameId-keyed inverted path index, an
/// incrementally-fed FrequentPathMiner trie, and a shared_mutex, so
/// reads proceed concurrently with each other and with Add on other
/// shards. A repository-wide structural summary (a DataGuide over
/// NameId paths, with per-path element occurrence lists) answers
/// structural queries without touching any document.
///
/// Storage: with freeze_flat (the default) Add freezes each admitted
/// tree into a FlatDoc — one contiguous read-only block per document —
/// and releases the pointer tree and its NodeArena before taking any
/// lock, so steady-state RSS is the flat blocks plus the indexes.
/// Summary occurrences carry (pos, owning FlatDoc), making predicate
/// filtering and suffix evaluation lock-free index arithmetic. With
/// freeze_flat off the pointer trees are kept and evaluated as before.
///
/// Query execution picks the cheapest of three plans (dispatch is
/// identical in flat and pointer mode; only the evaluator differs):
///  1. summary-only: every step is a name/wildcard/descendant test and
///     only the FINAL step may carry a [val~…] predicate — the summary
///     trie is pattern-matched and matches stream straight from the
///     occurrence lists (query.index_hits). A final predicate is
///     evaluated per DOCUMENT run of the (doc, pos)-sorted occurrence
///     lists: the DataGuide's occurrence counts plus a needle-length
///     selectivity screen (slices shorter than the needle cannot match)
///     cost each document, and either the candidate slices are scanned
///     individually or the document's whole pre-lowered pool gets one
///     SIMD sweep whose hit bitset is intersected with the posting run
///     (repository/predicate.h; in pointer mode, per-node scans);
///  2. summary-seeded: an intermediate (non-final) predicate stops
///     plan 1, but a non-empty simple child-axis prefix still resolves
///     from the summary; only the remaining steps are evaluated, from
///     the occurrence frontier (query.prefix_hits);
///  3. sharded scan: intermediate predicate and no usable prefix —
///     per-shard per-document evaluation, pruned by the shard indexes
///     and fanned out through a ThreadPool (query.fallback_walks counts
///     evaluated documents).
/// Every query increments exactly one query.plan.* counter: `summary`
/// (plan 1, no sweep), `sweep` (plan 1 that swept >= 1 document pool),
/// `seeded` (plan 2) or `scan` (plan 3) — all decisions depend only on
/// the corpus and the query, never on sharding, threading or the SIMD
/// level, so the counters sit in the determinism view. Predicate work
/// across all plans is charged to query.predicate_bytes_scanned (full
/// lengths of inspected slices, or whole pools for sweeps — also
/// deterministic). Documents evaluated through the flat evaluator in
/// plans 2–3 are counted by query.flat_scans (0 in pointer mode). All
/// plans return matches sorted by (doc id, document order), so results
/// are byte-identical across shard counts, thread counts, both storage
/// modes and every SIMD level.
///
/// Lock order: shard before summary, never the reverse. (This is why
/// occurrences carry the FlatDoc pointer: plan 1 filters predicates
/// under the summary lock, where taking a shard lock is forbidden.)
///
/// Optionally the repository enforces a DTD on admission (documents are
/// expected to have been conformed by the Document Mapping Component).
/// Configure SetDtd before concurrent serving starts.
class XmlRepository {
 public:
  explicit XmlRepository(RepositoryOptions options = {});
  ~XmlRepository();

  XmlRepository(const XmlRepository&) = delete;
  XmlRepository& operator=(const XmlRepository&) = delete;

  /// Makes admission require conformance to `dtd` (copied). Documents
  /// already stored are not re-checked.
  void SetDtd(Dtd dtd);
  bool has_dtd() const { return has_dtd_; }
  const Dtd& dtd() const { return dtd_; }

  size_t num_shards() const { return shards_.size(); }

  /// Adds a document, indexing its label paths, feeding the shard's
  /// schema-mining trie and updating the structural summary. Safe to
  /// call concurrently with other Add and Query calls. With a DTD set,
  /// a non-conforming document is rejected (FailedPrecondition) listing
  /// the first violation. With freeze_flat the tree is frozen into a
  /// FlatDoc and released before admission completes.
  StatusOr<DocId> Add(std::unique_ptr<Node> document);

  /// Same, handing over the arena the tree was allocated from (the
  /// pipeline's per-document NodeArena). In flat mode both the tree and
  /// the arena are released at freeze time — this is how ingest returns
  /// conversion memory instead of pinning it for the repository's
  /// lifetime. In pointer mode the arena is retained alongside the
  /// tree (the arena must outlive its nodes). Null arena = heap tree.
  StatusOr<DocId> Add(std::unique_ptr<Node> document,
                      std::shared_ptr<NodeArena> arena);

  // ---- Storage-layer surface (src/storage) ----
  //
  // The durable repository persists frozen documents; these entry
  // points admit/restore them without a pointer tree. The DTD check is
  // NOT re-run here — recovered documents passed it at their original
  // admission, and DurableRepository::Add validates before freezing.

  /// Admits an already-frozen document: full admission including the
  /// structural summary, identical in every observable way to Add()
  /// followed by freezing. `mined` must be ExtractPaths of the same
  /// document (the flat overload produces it). Used by durable Add and
  /// WAL replay. Thread-safe like Add.
  StatusOr<DocId> AddFrozen(std::unique_ptr<FlatDoc> flat,
                            const DocumentPaths& mined);

  /// Snapshot restore: like AddFrozen but does not touch the structural
  /// summary — the snapshot loader installs the summary wholesale via
  /// RestoreSummaryEntry, so per-document feeding would double-count.
  /// Call serially, before serving starts.
  StatusOr<DocId> RestoreDocument(std::unique_ptr<FlatDoc> flat,
                                  const DocumentPaths& mined);

  /// Parallel form of RestoreDocument: admits `flat` at exactly `id`
  /// instead of allocating the next one, so the snapshot loader can
  /// restore shards concurrently (shard structures are disjoint; ids
  /// within one shard must still arrive in ascending order, and each
  /// id must be restored exactly once). Does not advance size() —
  /// call SealRestore once every document is in, before any
  /// RestoreSummaryEntry or serving.
  /// `local` and `mined` are the caller's pre-walked feeds (the loader
  /// produces both in one pass via CollectRestorePaths); they must
  /// describe exactly `flat`.
  Status RestoreDocumentAt(DocId id, std::unique_ptr<FlatDoc> flat,
                           LocalDocumentPaths local,
                           const DocumentPaths& mined);

  /// Publishes a RestoreDocumentAt prefix: size() becomes `doc_count`.
  void SealRestore(size_t doc_count);

  /// Snapshot restore: appends one structural-summary path entry (in
  /// the snapshot's creation order — parents precede children).
  /// Occurrences arrive as (doc, pos) pairs and are stamped with the
  /// already-restored documents' FlatDoc pointers; a pair referencing
  /// an unknown document or an out-of-range position is rejected, so a
  /// corrupt snapshot can never plant a dangling occurrence.
  Status RestoreSummaryEntry(
      uint32_t parent, NameId name, std::vector<DocId> docs,
      std::vector<std::pair<DocId, uint32_t>> occurrences);

  /// Runs `fn` with the structural summary under its shared lock — how
  /// the snapshot writer serializes the summary without being a friend.
  void WithSummary(const std::function<void(const PathIndex&)>& fn) const;

  /// Documents admitted so far (ids are dense: 0 … size()-1).
  size_t size() const { return next_id_.load(std::memory_order_acquire); }

  /// Fills `out` with one monotonic generation counter per shard. A
  /// shard's counter is bumped once per admission, strictly AFTER the
  /// document is fully published (shard structures and structural
  /// summary) — so any reader that observes generation g also observes
  /// every document the first g admissions of that shard produced. The
  /// serving layer's query-result cache keys on this vector: a cached
  /// result is valid exactly while every shard still reports the
  /// generation it was computed under (src/serve/cache.h, DESIGN.md
  /// §15). `out` is resized to num_shards().
  void SnapshotGenerations(std::vector<uint64_t>& out) const;

  /// Borrowed pointer to a stored document's tree; null for unknown
  /// ids — and for every document admitted with freeze_flat, where the
  /// tree no longer exists (use flat_document()).
  const Node* document(DocId id) const;

  /// Borrowed pointer to a stored document's frozen form; null for
  /// unknown ids and in pointer mode.
  const FlatDoc* flat_document(DocId id) const;

  /// Documents containing the exact root-emanating label path,
  /// ascending. Returns a reference into the structural summary (a
  /// shared empty sentinel for misses); it is stable until the next
  /// Add, so don't hold it across admissions.
  const std::vector<DocId>& DocumentsWithPath(const LabelPath& path) const;

  /// Parses and runs `query_text` across the repository; matches are in
  /// (doc, document-order) order.
  StatusOr<std::vector<QueryMatch>> Query(std::string_view query_text) const;

  /// Runs a pre-parsed query. Safe to call concurrently with Add.
  std::vector<QueryMatch> Query(const PathQuery& query) const;

  RepositoryStats Stats() const;

  /// Discovers the majority schema of the stored documents by merging
  /// the per-shard mining tries fed at Add time — no stored tree is
  /// re-walked, and the result is identical for every shard count.
  /// Constraints in `options` are applied at discovery.
  MajoritySchema DiscoverSchema(const MiningOptions& options = {}) const;

  /// Snapshot of the query.* counters and the per-query latency
  /// histogram (obs wiring: PipelineMetrics::MergeQueryStats).
  obs::QueryStatsView query_stats() const;

 private:
  /// One stored document in exactly one representation: `flat` in flat
  /// mode, `tree` (plus its arena, when handed over) in pointer mode.
  /// Both null = transient hole while a lower id's Add is in flight.
  struct StoredDoc {
    /// Declared before `tree`: the arena must outlive the nodes carved
    /// from it.
    std::shared_ptr<NodeArena> arena;
    std::unique_ptr<Node> tree;
    std::unique_ptr<FlatDoc> flat;

    bool present() const { return tree != nullptr || flat != nullptr; }
  };

  struct Shard {
    mutable std::shared_mutex mutex;
    /// Documents of this shard; slot = id / num_shards.
    std::vector<StoredDoc> slots;
    /// Inverted path index of this shard's documents (postings only).
    PathIndex index{/*record_occurrences=*/false};
    /// Schema-mining trie over this shard's documents, fed at Add.
    FrequentPathMiner miner;
    /// Element count, maintained incrementally at Add.
    size_t elements = 0;
    /// Admissions completed on this shard; bumped (release) only after
    /// the document is visible everywhere, read by SnapshotGenerations.
    std::atomic<uint64_t> generation{0};
  };

  /// Shared tail of AddFrozen/RestoreDocument: indexes, feeds the
  /// shard miner and publishes the frozen document (and, when
  /// `feed_summary`, the structural summary).
  DocId AdmitFrozen(std::unique_ptr<FlatDoc> flat, const DocumentPaths& mined,
                    bool feed_summary);

  /// Plan 1: answer entirely from the structural summary. Sets `swept`
  /// when at least one document pool was answered by a full SIMD sweep
  /// (the query.plan.sweep classification).
  std::vector<QueryMatch> QueryViaSummary(const PathQuery& query,
                                          bool* swept) const;
  /// Plan 2: seed the frontier from the summary, walk the suffix.
  std::vector<QueryMatch> QueryViaPrefix(const PathQuery& query,
                                         size_t prefix_len) const;
  /// Plan 3: sharded full-tree evaluation.
  std::vector<QueryMatch> QueryViaScan(const PathQuery& query) const;

  /// The fan-out pool, created on first parallel use (never with
  /// query_threads <= 1). Returns null when evaluation should stay
  /// inline.
  ThreadPool* EnsurePool() const;

  std::vector<std::unique_ptr<Shard>> shards_;
  std::atomic<DocId> next_id_{0};

  /// Repository-wide structural summary; guarded by summary_mutex_,
  /// taken after a shard mutex, never before.
  mutable std::shared_mutex summary_mutex_;
  PathIndex summary_{/*record_occurrences=*/true};

  size_t query_threads_ = 1;
  bool freeze_flat_ = true;
  mutable std::once_flag pool_once_;
  mutable std::unique_ptr<ThreadPool> pool_;

  mutable obs::Counter queries_;
  mutable obs::Counter index_hits_;
  mutable obs::Counter prefix_hits_;
  mutable obs::Counter fallback_walks_;
  mutable obs::Counter flat_scans_;
  mutable obs::Counter shard_tasks_;
  mutable obs::Counter matches_;
  mutable obs::Counter predicate_bytes_;
  mutable obs::Counter plan_summary_;
  mutable obs::Counter plan_seeded_;
  mutable obs::Counter plan_scan_;
  mutable obs::Counter plan_sweep_;
  mutable obs::Histogram eval_us_;
  obs::Counter flat_bytes_;

  Dtd dtd_;
  bool has_dtd_ = false;
};

}  // namespace webre

#endif  // WEBRE_REPOSITORY_REPOSITORY_H_
