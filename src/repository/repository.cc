#include "repository/repository.h"

#include <algorithm>
#include <cstddef>
#include <cstring>
#include <type_traits>

#include "repository/predicate.h"
#include "schema/path_extractor.h"
#include "util/simd_scan.h"
#include "util/strings.h"
#include "xml/dtd_validator.h"

namespace webre {
namespace {

// The summary plan's unfiltered emit is a raw memcpy of the occurrence
// run; these pin the field-for-field layout mirror that makes it one.
static_assert(offsetof(PathOccurrence, doc) == offsetof(QueryMatch, doc) &&
              offsetof(PathOccurrence, pos) == offsetof(QueryMatch, pos) &&
              offsetof(PathOccurrence, node) == offsetof(QueryMatch, node) &&
              offsetof(PathOccurrence, flat) == offsetof(QueryMatch, flat) &&
              sizeof(PathOccurrence) == sizeof(QueryMatch),
              "PathOccurrence and QueryMatch must stay layout-identical");
static_assert(std::is_trivially_copyable_v<PathOccurrence> &&
              std::is_trivially_copyable_v<QueryMatch>);

/// Per-doc evaluation chunk size for summary-seeded plans: small enough
/// to balance skew, large enough to amortize task dispatch. Chunk
/// counts (and so the query.shard_tasks counter) are computed the same
/// way whether or not a pool runs them.
constexpr size_t kPrefixChunkDocs = 32;

/// Materializes one summary occurrence as a caller-facing match — a
/// straight field copy (the two structs share a layout), so the summary
/// plan's emit loop never dereferences into the owning document.
QueryMatch MatchFromOccurrence(const PathOccurrence& occ) {
  return QueryMatch{occ.doc, occ.pos, occ.node, occ.flat};
}

/// One query step's name test, resolved to a NameId. `impossible` marks
/// a named step whose name no stored document has ever interned — the
/// step (and so the whole query) cannot match anything.
struct StepTest {
  bool wildcard = false;
  NameId name = kInvalidNameId;
  bool impossible = false;
};

StepTest ResolveStep(const QueryStep& step) {
  StepTest test;
  if (step.wildcard || step.name == "*") {
    test.wildcard = true;
    return test;
  }
  test.name = step.name_id != kInvalidNameId
                  ? step.name_id
                  : NameTable::Global().Find(step.name);
  test.impossible = test.name == kInvalidNameId;
  return test;
}

/// Pattern-matches the structural part of `query` (axes and name tests;
/// predicates are the caller's business) against the summary trie and
/// returns the matching path ids, sorted. This is DataGuide query
/// evaluation: state = set of trie nodes, child steps follow trie
/// edges, descendant steps take the downward closure — O(paths) per
/// step, independent of corpus size.
std::vector<uint32_t> MatchSummaryPaths(const PathIndex& index,
                                        const PathQuery& query) {
  const std::vector<QueryStep>& steps = query.steps();
  const uint32_t n = static_cast<uint32_t>(index.path_count());
  if (n == 0 || steps.empty()) return {};

  std::vector<uint32_t> cur;
  {
    // Step 0 starts at the virtual parent of the document roots.
    const StepTest test = ResolveStep(steps[0]);
    if (test.impossible) return {};
    if (steps[0].descendant) {
      for (uint32_t id = 0; id < n; ++id) {
        if (test.wildcard || index.entry(id).name == test.name) {
          cur.push_back(id);
        }
      }
    } else {
      for (uint32_t id : index.roots()) {
        if (test.wildcard || index.entry(id).name == test.name) {
          cur.push_back(id);
        }
      }
    }
  }

  for (size_t s = 1; s < steps.size() && !cur.empty(); ++s) {
    const StepTest test = ResolveStep(steps[s]);
    if (test.impossible) return {};
    std::vector<uint32_t> next;
    if (!steps[s].descendant) {
      // Every trie node has one parent, so children of distinct nodes
      // are disjoint — no dedup needed.
      for (uint32_t id : cur) {
        for (uint32_t child : index.entry(id).children) {
          if (test.wildcard || index.entry(child).name == test.name) {
            next.push_back(child);
          }
        }
      }
    } else {
      // Proper descendants of the current set, each visited once.
      std::vector<char> visited(n, 0);
      std::vector<uint32_t> stack;
      for (uint32_t id : cur) {
        for (uint32_t child : index.entry(id).children) {
          if (!visited[child]) {
            visited[child] = 1;
            stack.push_back(child);
          }
        }
      }
      while (!stack.empty()) {
        const uint32_t id = stack.back();
        stack.pop_back();
        if (test.wildcard || index.entry(id).name == test.name) {
          next.push_back(id);
        }
        for (uint32_t child : index.entry(id).children) {
          if (!visited[child]) {
            visited[child] = 1;
            stack.push_back(child);
          }
        }
      }
    }
    cur = std::move(next);
  }
  std::sort(cur.begin(), cur.end());
  cur.erase(std::unique(cur.begin(), cur.end()), cur.end());
  return cur;
}

}  // namespace

XmlRepository::XmlRepository(RepositoryOptions options) {
  size_t shards = options.num_shards == 0 ? DefaultThreadCount()
                                          : options.num_shards;
  if (shards == 0) shards = 1;
  shards_.reserve(shards);
  for (size_t i = 0; i < shards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
  query_threads_ = options.query_threads == 0 ? DefaultThreadCount()
                                              : options.query_threads;
  freeze_flat_ = options.freeze_flat;
}

XmlRepository::~XmlRepository() = default;

void XmlRepository::SetDtd(Dtd dtd) {
  dtd_ = std::move(dtd);
  has_dtd_ = true;
}

ThreadPool* XmlRepository::EnsurePool() const {
  if (query_threads_ <= 1) return nullptr;
  std::call_once(pool_once_, [&] {
    pool_ = std::make_unique<ThreadPool>(query_threads_);
  });
  return pool_.get();
}

StatusOr<DocId> XmlRepository::Add(std::unique_ptr<Node> document) {
  return Add(std::move(document), nullptr);
}

StatusOr<DocId> XmlRepository::Add(std::unique_ptr<Node> document,
                                   std::shared_ptr<NodeArena> arena) {
  if (document == nullptr || !document->is_element()) {
    return Status::InvalidArgument("document root must be an element");
  }
  if (has_dtd_) {
    DtdValidationResult validation = ValidateAgainstDtd(*document, dtd_);
    if (!validation.valid()) {
      return Status::FailedPrecondition(
          "document does not conform to the repository DTD: " +
          validation.violations[0].message);
    }
  }

  // Everything per-document — validation, path extraction, freezing —
  // runs outside any lock; only the index/trie updates are serialized.
  // ExtractPaths feeds the mining trie (statistics and constraint-
  // checkable label strings), CollectLocalPaths feeds the structural
  // indexes (element occurrences).
  DocumentPaths paths = ExtractPaths(*document);
  std::unique_ptr<FlatDoc> flat;
  LocalDocumentPaths local;
  if (freeze_flat_) {
    flat = FlatDoc::Freeze(*document);
    local = CollectLocalPaths(*flat);
    // The tree (and its arena, if handed over) has served its purpose:
    // return the conversion memory before admission even completes.
    document.reset();
    arena.reset();
    flat_bytes_.Add(flat->block_bytes());
  } else {
    local = CollectLocalPaths(*document);
  }
  const FlatDoc* flat_ptr = flat.get();

  const DocId id = next_id_.fetch_add(1, std::memory_order_acq_rel);
  const size_t shard_count = shards_.size();
  Shard& shard = *shards_[id % shard_count];
  const size_t slot = id / shard_count;
  {
    std::unique_lock<std::shared_mutex> lock(shard.mutex);
    if (shard.slots.size() <= slot) shard.slots.resize(slot + 1);
    shard.index.AddDocument(local, id);
    shard.miner.AddDocumentPaths(paths);
    shard.elements += local.element_count;
    shard.slots[slot].arena = std::move(arena);
    shard.slots[slot].tree = std::move(document);
    shard.slots[slot].flat = std::move(flat);
  }
  {
    // Lock order: shard, then summary (same as every reader). The
    // summary's occurrences carry flat_ptr; releasing this lock
    // publishes the (immutable) FlatDoc to lock-free readers.
    std::unique_lock<std::shared_mutex> lock(summary_mutex_);
    summary_.AddDocument(local, id, flat_ptr);
  }
  // Publication is complete; only now may cached results keyed on the
  // previous generation become invalid (SnapshotGenerations contract).
  shard.generation.fetch_add(1, std::memory_order_release);
  return id;
}

DocId XmlRepository::AdmitFrozen(std::unique_ptr<FlatDoc> flat,
                                 const DocumentPaths& mined,
                                 bool feed_summary) {
  LocalDocumentPaths local = CollectLocalPaths(*flat);
  flat_bytes_.Add(flat->block_bytes());
  const FlatDoc* flat_ptr = flat.get();

  const DocId id = next_id_.fetch_add(1, std::memory_order_acq_rel);
  const size_t shard_count = shards_.size();
  Shard& shard = *shards_[id % shard_count];
  const size_t slot = id / shard_count;
  {
    std::unique_lock<std::shared_mutex> lock(shard.mutex);
    if (shard.slots.size() <= slot) shard.slots.resize(slot + 1);
    shard.index.AddDocument(local, id);
    shard.miner.AddDocumentPaths(mined);
    shard.elements += local.element_count;
    shard.slots[slot].flat = std::move(flat);
  }
  if (feed_summary) {
    std::unique_lock<std::shared_mutex> lock(summary_mutex_);
    summary_.AddDocument(local, id, flat_ptr);
  }
  shard.generation.fetch_add(1, std::memory_order_release);
  return id;
}

void XmlRepository::SnapshotGenerations(std::vector<uint64_t>& out) const {
  out.resize(shards_.size());
  for (size_t i = 0; i < shards_.size(); ++i) {
    out[i] = shards_[i]->generation.load(std::memory_order_acquire);
  }
}

StatusOr<DocId> XmlRepository::AddFrozen(std::unique_ptr<FlatDoc> flat,
                                         const DocumentPaths& mined) {
  if (flat == nullptr || flat->element_count() == 0) {
    return Status::InvalidArgument("frozen document must have a root element");
  }
  return AdmitFrozen(std::move(flat), mined, /*feed_summary=*/true);
}

StatusOr<DocId> XmlRepository::RestoreDocument(std::unique_ptr<FlatDoc> flat,
                                               const DocumentPaths& mined) {
  if (flat == nullptr || flat->element_count() == 0) {
    return Status::InvalidArgument("frozen document must have a root element");
  }
  return AdmitFrozen(std::move(flat), mined, /*feed_summary=*/false);
}

Status XmlRepository::RestoreDocumentAt(DocId id,
                                        std::unique_ptr<FlatDoc> flat,
                                        LocalDocumentPaths local,
                                        const DocumentPaths& mined) {
  if (flat == nullptr || flat->element_count() == 0) {
    return Status::InvalidArgument("frozen document must have a root element");
  }
  flat_bytes_.Add(flat->block_bytes());

  const size_t shard_count = shards_.size();
  Shard& shard = *shards_[id % shard_count];
  const size_t slot = id / shard_count;
  std::unique_lock<std::shared_mutex> lock(shard.mutex);
  if (shard.slots.size() <= slot) shard.slots.resize(slot + 1);
  if (shard.slots[slot].present()) {
    return Status::InvalidArgument("restore: document id already occupied");
  }
  shard.index.AddDocument(local, id);
  shard.miner.AddDocumentPaths(mined);
  shard.elements += local.element_count;
  shard.slots[slot].flat = std::move(flat);
  return Status::Ok();
}

void XmlRepository::SealRestore(size_t doc_count) {
  next_id_.store(doc_count, std::memory_order_release);
}

Status XmlRepository::RestoreSummaryEntry(
    uint32_t parent, NameId name, std::vector<DocId> docs,
    std::vector<std::pair<DocId, uint32_t>> occurrences) {
  const size_t doc_count = size();
  for (DocId doc : docs) {
    if (doc >= doc_count) {
      return Status::InvalidArgument(
          "summary restore: posting references unknown document");
    }
  }
  // Stamp each (doc, pos) with the restored FlatDoc. Occurrences are
  // (doc, pos)-sorted, so one cached lookup per document run suffices.
  std::vector<PathOccurrence> stamped;
  stamped.reserve(occurrences.size());
  DocId cached_doc = 0;
  const FlatDoc* cached_flat = nullptr;
  for (const auto& [doc, pos] : occurrences) {
    if (cached_flat == nullptr || doc != cached_doc) {
      cached_flat = doc < doc_count ? flat_document(doc) : nullptr;
      cached_doc = doc;
      if (cached_flat == nullptr) {
        return Status::InvalidArgument(
            "summary restore: occurrence references unknown document");
      }
    }
    if (pos >= cached_flat->element_count()) {
      return Status::InvalidArgument(
          "summary restore: occurrence position out of range");
    }
    stamped.push_back(PathOccurrence{doc, pos, nullptr, cached_flat});
  }
  std::unique_lock<std::shared_mutex> lock(summary_mutex_);
  return summary_.LoadEntry(parent, name, std::move(docs),
                            std::move(stamped));
}

void XmlRepository::WithSummary(
    const std::function<void(const PathIndex&)>& fn) const {
  std::shared_lock<std::shared_mutex> lock(summary_mutex_);
  fn(summary_);
}

const Node* XmlRepository::document(DocId id) const {
  const size_t shard_count = shards_.size();
  const Shard& shard = *shards_[id % shard_count];
  std::shared_lock<std::shared_mutex> lock(shard.mutex);
  const size_t slot = id / shard_count;
  if (slot >= shard.slots.size()) return nullptr;
  return shard.slots[slot].tree.get();
}

const FlatDoc* XmlRepository::flat_document(DocId id) const {
  const size_t shard_count = shards_.size();
  const Shard& shard = *shards_[id % shard_count];
  std::shared_lock<std::shared_mutex> lock(shard.mutex);
  const size_t slot = id / shard_count;
  if (slot >= shard.slots.size()) return nullptr;
  return shard.slots[slot].flat.get();
}

const std::vector<DocId>& XmlRepository::DocumentsWithPath(
    const LabelPath& path) const {
  if (path.empty()) return PathIndex::EmptyDocs();
  std::vector<NameId> labels(path.size());
  NameTable& names = NameTable::Global();
  for (size_t i = 0; i < path.size(); ++i) {
    labels[i] = names.Find(path[i]);
    // A label no document ever interned cannot be on any stored path.
    if (labels[i] == kInvalidNameId) return PathIndex::EmptyDocs();
  }
  std::shared_lock<std::shared_mutex> lock(summary_mutex_);
  return summary_.DocsOf(summary_.FindPath(labels.data(), labels.size()));
}

StatusOr<std::vector<QueryMatch>> XmlRepository::Query(
    std::string_view query_text) const {
  StatusOr<PathQuery> query = PathQuery::Parse(query_text);
  if (!query.ok()) return query.status();
  return Query(*query);
}

std::vector<QueryMatch> XmlRepository::Query(const PathQuery& query) const {
  const std::vector<QueryStep>& steps = query.steps();
  if (steps.empty()) return {};
  const double begin_s = obs::MonotonicSeconds();
  queries_.Increment();

  // Plan selection. The summary answers any query whose predicates are
  // confined to the final step: structure resolves on the path trie,
  // the final [val~…] filters occurrences. An intermediate predicate
  // needs real nodes mid-path, so those queries walk trees — seeded
  // from the summary when a simple prefix exists.
  bool summary_only = true;
  for (size_t i = 0; i + 1 < steps.size(); ++i) {
    if (!steps[i].val_contains.empty()) {
      summary_only = false;
      break;
    }
  }

  std::vector<QueryMatch> out;
  if (summary_only) {
    bool swept = false;
    out = QueryViaSummary(query, &swept);
    index_hits_.Increment();
    // Exactly one plan.* counter per query; `sweep` refines `summary`
    // when the cost model answered >= 1 document with a full-pool SIMD
    // sweep. The split depends only on corpus + query (sweep decisions
    // are per-document byte arithmetic), so it is shard-invariant.
    (swept ? plan_sweep_ : plan_summary_).Increment();
  } else {
    const size_t prefix_len = query.SimplePrefixLength();
    if (prefix_len > 0) {
      out = QueryViaPrefix(query, prefix_len);
      prefix_hits_.Increment();
      plan_seeded_.Increment();
    } else {
      out = QueryViaScan(query);
      plan_scan_.Increment();
    }
  }
  matches_.Add(out.size());
  eval_us_.Record(static_cast<uint64_t>(
      (obs::MonotonicSeconds() - begin_s) * 1e6));
  return out;
}

std::vector<QueryMatch> XmlRepository::QueryViaSummary(
    const PathQuery& query, bool* swept) const {
  *swept = false;
  const QueryStep& last = query.steps().back();
  // The final predicate's needle, pre-lowered once per query (Parse
  // already did it; hand-assembled steps pay the lowering here).
  const bool has_predicate = !last.val_contains.empty();
  const std::string lowered =
      !has_predicate ? std::string()
      : last.val_lower.size() == last.val_contains.size()
          ? last.val_lower
          : AsciiLower(last.val_contains);

  std::vector<QueryMatch> out;
  std::shared_lock<std::shared_mutex> lock(summary_mutex_);
  const std::vector<uint32_t> ids = MatchSummaryPaths(summary_, query);
  if (ids.empty()) return out;

  if (!has_predicate) {
    if (ids.size() == 1) {
      // The hot case (every exact-path query): the occurrence run IS the
      // answer, and the structs are layout-identical (static_asserts at
      // the top of this file), so emit is one block copy — no per-match
      // capacity check or call.
      const std::vector<PathOccurrence>& occurrences =
          summary_.entry(ids[0]).occurrences;
      out.resize(occurrences.size());
      if (!occurrences.empty()) {
        std::memcpy(static_cast<void*>(out.data()),
                    static_cast<const void*>(occurrences.data()),
                    occurrences.size() * sizeof(QueryMatch));
      }
      return out;
    }

    size_t total = 0;
    for (uint32_t id : ids) total += summary_.entry(id).occurrences.size();

    if (ids.size() == 2) {
      // Two runs (the common //LABEL shape: one path per parent
      // context): a classic two-pointer merge, one compare per emitted
      // match instead of the generic min-scan's per-run loop.
      const std::vector<PathOccurrence>& a = summary_.entry(ids[0]).occurrences;
      const std::vector<PathOccurrence>& b = summary_.entry(ids[1]).occurrences;
      out.reserve(total);
      size_t i = 0, j = 0;
      while (i < a.size() && j < b.size()) {
        const bool take_a =
            a[i].doc < b[j].doc || (a[i].doc == b[j].doc && a[i].pos < b[j].pos);
        out.push_back(MatchFromOccurrence(take_a ? a[i] : b[j]));
        if (take_a) {
          ++i;
        } else {
          ++j;
        }
      }
      for (; i < a.size(); ++i) out.push_back(MatchFromOccurrence(a[i]));
      for (; j < b.size(); ++j) out.push_back(MatchFromOccurrence(b[j]));
      return out;
    }

    if (ids.size() <= 8) {
      // Few runs, nothing filtered: merge the (doc, pos)-sorted
      // occurrence lists directly — linear min-scan beats sorting the
      // concatenation.
      std::vector<const std::vector<PathOccurrence>*> runs;
      std::vector<size_t> cursor(ids.size(), 0);
      runs.reserve(ids.size());
      for (uint32_t id : ids) runs.push_back(&summary_.entry(id).occurrences);
      out.reserve(total);
      for (size_t emitted = 0; emitted < total; ++emitted) {
        size_t best = ids.size();
        for (size_t r = 0; r < runs.size(); ++r) {
          if (cursor[r] >= runs[r]->size()) continue;
          if (best == ids.size()) {
            best = r;
            continue;
          }
          const PathOccurrence& a = (*runs[r])[cursor[r]];
          const PathOccurrence& b = (*runs[best])[cursor[best]];
          if (a.doc < b.doc || (a.doc == b.doc && a.pos < b.pos)) best = r;
        }
        const PathOccurrence& occ = (*runs[best])[cursor[best]++];
        out.push_back(MatchFromOccurrence(occ));
      }
      return out;
    }

    out.reserve(total);
    for (uint32_t id : ids) {
      for (const PathOccurrence& occ : summary_.entry(id).occurrences) {
        out.push_back(MatchFromOccurrence(occ));
      }
    }
    std::sort(out.begin(), out.end(),
              [](const QueryMatch& a, const QueryMatch& b) {
                return a.doc != b.doc ? a.doc < b.doc : a.pos < b.pos;
              });
    return out;
  }

  // ---- Final-step predicate: per-DOCUMENT batch evaluation ----
  //
  // Occurrence lists are (doc, pos)-sorted, so per-run cursors advanced
  // in document order visit each document's occurrences exactly once —
  // the granularity the cost model wants. Per document, the DataGuide's
  // occurrence counts plus a needle-length screen (slices shorter than
  // the needle cannot contain it) estimate the bytes a slice-by-slice
  // scan would touch; when those candidates cover enough of the
  // document's pre-lowered pool, ONE SIMD sweep of the whole pool
  // replaces them all and the posting run is intersected with the
  // resulting element bitset. Distinct paths never share a (doc, pos) —
  // an element has exactly one label path — so cross-run duplicates are
  // impossible and a per-document sort by pos restores document order.
  //
  // Everything here runs under the summary lock without touching any
  // shard (lock order: shard before summary, never the reverse), which
  // is why occurrences carry the FlatDoc pointer.
  const size_t m = lowered.size();

  // Full-cover sweep: a pattern that matches EVERY summary path (the
  // repository is add-only, so every trie path has occurrences) makes
  // every element of every document a candidate. The posting k-way
  // merge and per-occurrence screening then add nothing — candidates
  // cover each pool by construction, which is exactly the regime the
  // cost model's sweep condition describes — so each document is
  // visited once through the root-path occurrence runs (one root
  // occurrence per admitted document) and its pool swept directly.
  // Set bits are emitted as matches without posting intersection:
  // element index order IS in-document (pos) order, and distinct
  // paths never share a (doc, pos), so no sort and no dedup apply.
  // Needs m > 0 (an empty needle marks the whole bitset including the
  // slack bits past element_count) and flat storage for the pools.
  if (freeze_flat_ && m > 0 && !ids.empty() &&
      ids.size() == summary_.path_count()) {
    PredicateScratch scratch;
    std::vector<const std::vector<PathOccurrence>*> root_runs;
    for (uint32_t id : summary_.roots()) {
      root_runs.push_back(&summary_.entry(id).occurrences);
    }
    // Root runs from distinct root paths are doc-disjoint (a document
    // has one root element), so the min-doc merge visits each doc once;
    // with a single root label it degenerates to a linear walk.
    std::vector<size_t> cursor(root_runs.size(), 0);
    while (true) {
      size_t best = root_runs.size();
      for (size_t r = 0; r < root_runs.size(); ++r) {
        if (cursor[r] >= root_runs[r]->size()) continue;
        if (best == root_runs.size() ||
            (*root_runs[r])[cursor[r]].doc <
                (*root_runs[best])[cursor[best]].doc) {
          best = r;
        }
      }
      if (best == root_runs.size()) break;
      const std::vector<PathOccurrence>& brun = *root_runs[best];
      const PathOccurrence& root = brun[cursor[best]++];
      // Two-tier lookahead down the winning run (runs from one root
      // label are the common case, one occurrence per doc): the FlatDoc
      // struct several docs out, its arrays two docs out — the struct
      // must arrive before the array addresses can even be computed,
      // and per-doc work is shorter than one DRAM round trip.
      if (cursor[best] + 8 < brun.size()) {
        __builtin_prefetch(brun[cursor[best] + 8].flat);
      }
      if (cursor[best] + 1 < brun.size()) {
        const FlatDoc* ahead = brun[cursor[best] + 1].flat;
        __builtin_prefetch(ahead->text_offsets());
        __builtin_prefetch(ahead->lowered_pool().data());
      } else if (cursor[best] < brun.size()) {
        const FlatDoc* ahead = brun[cursor[best]].flat;
        __builtin_prefetch(ahead->text_offsets());
        __builtin_prefetch(ahead->lowered_pool().data());
      }
      const FlatDoc* flat = root.flat;
      const uint64_t* bits = SweepValBitset(*flat, lowered, scratch);
      const size_t words = size_t{flat->element_count()} / 64 + 1;
      for (size_t w = 0; w < words; ++w) {
        uint64_t word = bits[w];
        while (word != 0) {
          const uint32_t e =
              static_cast<uint32_t>(w * 64 + __builtin_ctzll(word));
          word &= word - 1;
          out.push_back(QueryMatch{root.doc, e, nullptr, flat});
        }
      }
    }
    predicate_bytes_.Add(scratch.bytes_scanned);
    *swept = scratch.sweeps > 0;
    return out;
  }

  std::vector<const std::vector<PathOccurrence>*> runs;
  runs.reserve(ids.size());
  size_t total = 0;
  for (uint32_t id : ids) {
    runs.push_back(&summary_.entry(id).occurrences);
    total += runs.back()->size();
  }
  out.reserve(total);

  PredicateScratch scratch;
  std::vector<const PathOccurrence*> doc_matches;
  std::vector<const PathOccurrence*> cands;
  struct OccRange {
    const PathOccurrence* begin;
    const PathOccurrence* end;
  };
  std::vector<OccRange> parts;

  // Evaluates one document's occurrence subranges (`parts`) and emits
  // its surviving matches in pos order.
  auto process_doc = [&](const FlatDoc* flat) {
    doc_matches.clear();
    if (flat != nullptr) {
      // One screening pass collects the candidates (slices at least
      // needle-sized; shorter ones cannot match — by length in the
      // slice branch, and a sweep hit cannot fit inside one either, so
      // both branches below may scan candidates only). The collected
      // order is parts then pos, exactly the old two-pass order.
      const uint32_t* off = flat->text_offsets();
      cands.clear();
      size_t cand_bytes = 0;
      for (const OccRange& part : parts) {
        for (const PathOccurrence* occ = part.begin; occ != part.end; ++occ) {
          const size_t len = off[occ->pos + 1] - off[occ->pos];
          if (len >= m) {
            cands.push_back(occ);
            cand_bytes += len;
          }
        }
      }
      const std::string_view pool = flat->lowered_pool();
      if (ShouldSweepPool(cands.size(), cand_bytes, pool.size())) {
        const uint64_t* bits = SweepValBitset(*flat, lowered, scratch);
        for (const PathOccurrence* occ : cands) {
          if (BitsetTest(bits, occ->pos)) doc_matches.push_back(occ);
        }
      } else {
        scratch.bytes_scanned += cand_bytes;
        for (const PathOccurrence* occ : cands) {
          const size_t len = off[occ->pos + 1] - off[occ->pos];
          if (FindLowered(std::string_view(pool.data() + off[occ->pos], len),
                          lowered) != std::string_view::npos) {
            doc_matches.push_back(occ);
          }
        }
      }
    } else {
      // Pointer mode: per-node scans through the same SIMD kernel
      // (ContainsLowered routes into util/simd_scan). The length screen
      // and byte accounting mirror the flat slice path.
      for (const OccRange& part : parts) {
        for (const PathOccurrence* occ = part.begin; occ != part.end; ++occ) {
          const std::string_view val = occ->node->val();
          if (val.size() < m) continue;
          scratch.bytes_scanned += val.size();
          if (ContainsLowered(val, lowered)) doc_matches.push_back(occ);
        }
      }
    }
    if (parts.size() > 1 && doc_matches.size() > 1) {
      std::sort(doc_matches.begin(), doc_matches.end(),
                [](const PathOccurrence* a, const PathOccurrence* b) {
                  return a->pos < b->pos;
                });
    }
    for (const PathOccurrence* occ : doc_matches) {
      out.push_back(MatchFromOccurrence(*occ));
    }
  };

  if (runs.size() == 1) {
    // Single path id: document runs are contiguous in the one list.
    const std::vector<PathOccurrence>& run = *runs[0];
    for (size_t i = 0; i < run.size();) {
      size_t j = i + 1;
      while (j < run.size() && run[j].doc == run[i].doc) ++j;
      // Two-tier lookahead: the FlatDoc struct a dozen occurrences out
      // (roughly 8 docs), its arrays two docs out — per-doc work is a
      // few dozen nanoseconds, shorter than one DRAM round trip, so a
      // single-doc distance cannot hide the three dependent cold block
      // loads that otherwise dominate the run.
      if (j + 12 < run.size()) __builtin_prefetch(run[j + 12].flat);
      if (j < run.size() && run[j].flat != nullptr) {
        size_t k = j + 1;
        while (k < run.size() && run[k].doc == run[j].doc) ++k;
        const FlatDoc* ahead = k < run.size() ? run[k].flat : run[j].flat;
        if (ahead != nullptr) {
          __builtin_prefetch(ahead->text_offsets());
          __builtin_prefetch(ahead->lowered_pool().data());
        }
      }
      parts.clear();
      parts.push_back(OccRange{run.data() + i, run.data() + j});
      process_doc(run[i].flat);
      i = j;
    }
  } else {
    // K-way document merge across the per-path lists: each iteration
    // picks the smallest unprocessed doc id, gathers that document's
    // subrange from every run that has it, and batch-evaluates them
    // together (so a document's pool is swept at most once per query,
    // not once per path).
    std::vector<size_t> cursor(runs.size(), 0);
    std::vector<size_t> active;  // runs holding the current doc
    active.reserve(runs.size());
    while (true) {
      DocId doc = 0;
      bool any = false;
      active.clear();
      for (size_t r = 0; r < runs.size(); ++r) {
        if (cursor[r] >= runs[r]->size()) continue;
        const DocId d = (*runs[r])[cursor[r]].doc;
        if (!any || d < doc) {
          doc = d;
          any = true;
          active.clear();
          active.push_back(r);
        } else if (d == doc) {
          active.push_back(r);
        }
      }
      if (!any) break;
      parts.clear();
      const FlatDoc* flat = nullptr;
      for (size_t r : active) {
        const std::vector<PathOccurrence>& run = *runs[r];
        size_t i = cursor[r];
        if (parts.empty()) flat = run[i].flat;
        while (i < run.size() && run[i].doc == doc) ++i;
        parts.push_back(OccRange{run.data() + cursor[r], run.data() + i});
        cursor[r] = i;
      }
      process_doc(flat);
    }
  }
  predicate_bytes_.Add(scratch.bytes_scanned);
  *swept = scratch.sweeps > 0;
  return out;
}

std::vector<QueryMatch> XmlRepository::QueryViaPrefix(const PathQuery& query,
                                                      size_t prefix_len) const {
  const std::vector<QueryStep>& steps = query.steps();
  std::vector<NameId> labels(prefix_len);
  for (size_t i = 0; i < prefix_len; ++i) {
    const StepTest test = ResolveStep(steps[i]);
    if (test.impossible) return {};
    labels[i] = test.name;
  }

  // Copy the prefix path's occurrence list so trees are walked without
  // holding the summary lock (the list is append-mutated by Add; the
  // nodes themselves are immutable once admitted).
  std::vector<PathOccurrence> occurrences;
  {
    std::shared_lock<std::shared_mutex> lock(summary_mutex_);
    const uint32_t pid = summary_.FindPath(labels.data(), prefix_len);
    if (pid == PathIndex::kNoPath) return {};
    occurrences = summary_.entry(pid).occurrences;
  }

  // Group into per-document frontier ranges (the list is (doc, pos)
  // sorted, so ranges are contiguous).
  struct DocRange {
    DocId doc;
    size_t begin;
    size_t end;
  };
  std::vector<DocRange> ranges;
  for (size_t i = 0; i < occurrences.size();) {
    size_t j = i + 1;
    while (j < occurrences.size() && occurrences[j].doc == occurrences[i].doc) {
      ++j;
    }
    ranges.push_back(DocRange{occurrences[i].doc, i, j});
    i = j;
  }

  auto eval_ranges = [&](size_t range_begin, size_t range_end,
                         std::vector<QueryMatch>& sink) {
    // One scratch per chunk task: resolved step tests, frontier buffers
    // and the predicate arena all persist across the chunk's documents,
    // so steady-state evaluation performs no per-document allocation.
    FlatEvalScratch scratch;
    std::vector<uint32_t> frontier;
    size_t flat_evaluated = 0;
    for (size_t r = range_begin; r < range_end; ++r) {
      const DocRange& range = ranges[r];
      const PathOccurrence& seed = occurrences[range.begin];
      // Two-tier lookahead, same rationale as the summary predicate
      // runs: structs ~8 docs out, arrays two docs out.
      if (r + 8 < range_end) {
        __builtin_prefetch(occurrences[ranges[r + 8].begin].flat);
      }
      if (r + 2 < range_end) {
        const PathOccurrence& next = occurrences[ranges[r + 2].begin];
        if (next.flat != nullptr) {
          // Suffix evaluation walks names and subtree ranges before it
          // reaches vals, so pull the block's front (names) and the
          // subtree_end region in too, not just offsets + pool.
          const uint32_t count = next.flat->element_count();
          __builtin_prefetch(next.flat->block_data());
          __builtin_prefetch(next.flat->block_data() +
                             size_t{3} * 4 * count);
          __builtin_prefetch(next.flat->text_offsets());
          __builtin_prefetch(next.flat->lowered_pool().data());
        }
      }
      if (seed.flat != nullptr) {
        // Frozen document: the frontier is the occurrence positions and
        // the suffix runs as subtree-range scans — no lock, no pointers.
        const FlatDoc& flat = *seed.flat;
        frontier.clear();
        frontier.reserve(range.end - range.begin);
        for (size_t i = range.begin; i < range.end; ++i) {
          frontier.push_back(occurrences[i].pos);
        }
        std::vector<uint32_t> result =
            query.EvaluateFrom(flat, std::move(frontier), prefix_len, scratch);
        for (uint32_t e : result) {
          sink.push_back(QueryMatch{range.doc, e, nullptr, &flat});
        }
        // The result's storage is the frontier buffer (EvaluateFrom
        // consumes and returns it); moving it back recycles the
        // capacity so steady state allocates nothing per document.
        frontier = std::move(result);
        ++flat_evaluated;
        continue;
      }
      std::vector<const Node*> node_frontier;
      node_frontier.reserve(range.end - range.begin);
      for (size_t i = range.begin; i < range.end; ++i) {
        node_frontier.push_back(occurrences[i].node);
      }
      for (const Node* node :
           query.EvaluateFrom(std::move(node_frontier), prefix_len)) {
        sink.push_back(QueryMatch{range.doc, 0, node, nullptr});
      }
    }
    if (flat_evaluated > 0) flat_scans_.Add(flat_evaluated);
    if (scratch.predicate_bytes_scanned() > 0) {
      predicate_bytes_.Add(scratch.predicate_bytes_scanned());
    }
  };

  const size_t chunks =
      (ranges.size() + kPrefixChunkDocs - 1) / kPrefixChunkDocs;
  shard_tasks_.Add(chunks);
  std::vector<QueryMatch> out;
  ThreadPool* pool = EnsurePool();
  if (pool != nullptr && chunks > 1) {
    std::vector<std::vector<QueryMatch>> results(chunks);
    for (size_t c = 0; c < chunks; ++c) {
      pool->Submit([&, c] {
        eval_ranges(c * kPrefixChunkDocs,
                    std::min(ranges.size(), (c + 1) * kPrefixChunkDocs),
                    results[c]);
      });
    }
    pool->Wait();
    // Chunks are doc-ascending, so ordered concatenation is the
    // deterministic merge.
    for (std::vector<QueryMatch>& part : results) {
      out.insert(out.end(), part.begin(), part.end());
    }
  } else {
    eval_ranges(0, ranges.size(), out);
  }
  return out;
}

std::vector<QueryMatch> XmlRepository::QueryViaScan(
    const PathQuery& query) const {
  const std::vector<QueryStep>& steps = query.steps();
  const StepTest first = ResolveStep(steps[0]);
  if (first.impossible) return {};

  const size_t shard_count = shards_.size();
  std::vector<std::vector<QueryMatch>> results(shard_count);

  auto scan_shard = [&](size_t s) {
    const Shard& shard = *shards_[s];
    std::shared_lock<std::shared_mutex> lock(shard.mutex);
    // Shard-index pruning for the first step: an exact root-label
    // posting for /name, the label posting for //name, everything for
    // a wildcard.
    const std::vector<DocId>* candidates = nullptr;
    std::vector<DocId> all;
    if (!first.wildcard && !steps[0].descendant) {
      candidates = &shard.index.DocsOf(shard.index.FindPath(&first.name, 1));
    } else if (!first.wildcard) {
      candidates = &shard.index.DocsWithLabel(first.name);
    } else {
      all.reserve(shard.slots.size());
      for (size_t slot = 0; slot < shard.slots.size(); ++slot) {
        if (shard.slots[slot].present()) {
          all.push_back(slot * shard_count + s);
        }
      }
      candidates = &all;
    }
    if (candidates->empty()) return;
    shard_tasks_.Increment();
    FlatEvalScratch scratch;  // per shard task, reused across documents
    size_t walked = 0;
    size_t flat_evaluated = 0;
    for (DocId id : *candidates) {
      const StoredDoc& stored = shard.slots[id / shard_count];
      if (stored.flat != nullptr) {
        ++walked;
        ++flat_evaluated;
        const FlatDoc& flat = *stored.flat;
        for (uint32_t e : query.Evaluate(flat, scratch)) {
          results[s].push_back(QueryMatch{id, e, nullptr, &flat});
        }
      } else if (stored.tree != nullptr) {
        ++walked;
        for (const Node* node : query.Evaluate(*stored.tree)) {
          results[s].push_back(QueryMatch{id, 0, node, nullptr});
        }
      }
      // else: transient hole under concurrent Add
    }
    fallback_walks_.Add(walked);
    if (flat_evaluated > 0) flat_scans_.Add(flat_evaluated);
    if (scratch.predicate_bytes_scanned() > 0) {
      predicate_bytes_.Add(scratch.predicate_bytes_scanned());
    }
  };

  ThreadPool* pool = EnsurePool();
  if (pool != nullptr && shard_count > 1) {
    for (size_t s = 0; s < shard_count; ++s) {
      pool->Submit([&, s] { scan_shard(s); });
    }
    pool->Wait();
  } else {
    for (size_t s = 0; s < shard_count; ++s) scan_shard(s);
  }

  // Deterministic merge: per-shard lists are doc-ascending; a stable
  // sort by doc id interleaves them without disturbing in-document
  // order, and doc ids are unique to one shard.
  std::vector<QueryMatch> out;
  size_t total = 0;
  for (const std::vector<QueryMatch>& part : results) total += part.size();
  out.reserve(total);
  for (const std::vector<QueryMatch>& part : results) {
    out.insert(out.end(), part.begin(), part.end());
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const QueryMatch& a, const QueryMatch& b) {
                     return a.doc < b.doc;
                   });
  return out;
}

RepositoryStats XmlRepository::Stats() const {
  RepositoryStats stats;
  stats.documents = size();
  for (const std::unique_ptr<Shard>& shard : shards_) {
    std::shared_lock<std::shared_mutex> lock(shard->mutex);
    stats.elements += shard->elements;
  }
  std::shared_lock<std::shared_mutex> lock(summary_mutex_);
  stats.distinct_paths = summary_.path_count();
  stats.flat_bytes = flat_bytes_.value();
  return stats;
}

MajoritySchema XmlRepository::DiscoverSchema(
    const MiningOptions& options) const {
  // Merge the per-shard tries fed at Add time — no stored document is
  // re-walked. Constraints (if any) are applied by Discover() itself.
  FrequentPathMiner merged(options);
  for (const std::unique_ptr<Shard>& shard : shards_) {
    std::shared_lock<std::shared_mutex> lock(shard->mutex);
    merged.MergeFrom(shard->miner);
  }
  return merged.Discover();
}

obs::QueryStatsView XmlRepository::query_stats() const {
  obs::QueryStatsView view;
  view.queries = queries_.value();
  view.index_hits = index_hits_.value();
  view.prefix_hits = prefix_hits_.value();
  view.fallback_walks = fallback_walks_.value();
  view.flat_scans = flat_scans_.value();
  view.shard_tasks = shard_tasks_.value();
  view.matches = matches_.value();
  view.predicate_bytes_scanned = predicate_bytes_.value();
  view.plan_summary = plan_summary_.value();
  view.plan_seeded = plan_seeded_.value();
  view.plan_scan = plan_scan_.value();
  view.plan_sweep = plan_sweep_.value();
  view.eval_us = eval_us_.Snapshot();
  view.flat_bytes = flat_bytes_.value();
  return view;
}

}  // namespace webre
