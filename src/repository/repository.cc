#include "repository/repository.h"

#include <algorithm>

#include "schema/path_extractor.h"
#include "xml/dtd_validator.h"

namespace webre {

void XmlRepository::SetDtd(Dtd dtd) {
  dtd_ = std::move(dtd);
  has_dtd_ = true;
}

StatusOr<DocId> XmlRepository::Add(std::unique_ptr<Node> document) {
  if (document == nullptr || !document->is_element()) {
    return Status::InvalidArgument("document root must be an element");
  }
  if (has_dtd_) {
    DtdValidationResult validation = ValidateAgainstDtd(*document, dtd_);
    if (!validation.valid()) {
      return Status::FailedPrecondition(
          "document does not conform to the repository DTD: " +
          validation.violations[0].message);
    }
  }
  const DocId id = documents_.size();
  DocumentPaths paths = ExtractPaths(*document);
  for (const LabelPath& path : paths.paths) {
    path_index_[JoinLabelPath(path)].push_back(id);
  }
  documents_.push_back(std::move(document));
  return id;
}

const Node* XmlRepository::document(DocId id) const {
  if (id >= documents_.size()) return nullptr;
  return documents_[id].get();
}

std::vector<DocId> XmlRepository::DocumentsWithPath(
    const LabelPath& path) const {
  auto it = path_index_.find(JoinLabelPath(path));
  if (it == path_index_.end()) return {};
  return it->second;
}

StatusOr<std::vector<QueryMatch>> XmlRepository::Query(
    std::string_view query_text) const {
  StatusOr<PathQuery> query = PathQuery::Parse(query_text);
  if (!query.ok()) return query.status();
  return Query(*query);
}

std::vector<QueryMatch> XmlRepository::Query(const PathQuery& query) const {
  // Candidate pruning: the longest leading run of simple steps forms a
  // label-path prefix every match's document must contain.
  LabelPath prefix;
  for (const QueryStep& step : query.steps()) {
    if (step.descendant || step.name == "*") break;
    prefix.push_back(step.name);
    // A val predicate restricts nodes, not the path's presence; the
    // prefix stays usable, so don't break on it.
  }

  std::vector<DocId> candidates;
  if (!prefix.empty()) {
    candidates = DocumentsWithPath(prefix);
  } else {
    candidates.resize(documents_.size());
    for (DocId id = 0; id < documents_.size(); ++id) candidates[id] = id;
  }

  std::vector<QueryMatch> matches;
  for (DocId id : candidates) {
    for (const Node* node : query.Evaluate(*documents_[id])) {
      matches.push_back(QueryMatch{id, node});
    }
  }
  return matches;
}

MajoritySchema XmlRepository::DiscoverSchema(
    const MiningOptions& options) const {
  FrequentPathMiner miner(options);
  for (const auto& doc : documents_) {
    miner.AddDocument(*doc);
  }
  return miner.Discover();
}

RepositoryStats XmlRepository::Stats() const {
  RepositoryStats stats;
  stats.documents = documents_.size();
  stats.distinct_paths = path_index_.size();
  for (const auto& doc : documents_) {
    doc->PreOrder([&](const Node& n) {
      if (n.is_element()) ++stats.elements;
    });
  }
  return stats;
}

}  // namespace webre
