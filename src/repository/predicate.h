#ifndef WEBRE_REPOSITORY_PREDICATE_H_
#define WEBRE_REPOSITORY_PREDICATE_H_

#include <cstddef>
#include <cstdint>
#include <string_view>

#include "util/arena.h"
#include "xml/flat_doc.h"

namespace webre {

/// Scratch state for the vectorized predicate engine: one instance per
/// (query, worker) pair, reused across every document that query
/// touches, so the hot path performs no per-document heap allocation.
/// The arena backs the per-document element bitsets; SweepValBitset
/// Reset()s it on entry, which keeps the largest block for reuse —
/// after the first document a sweep allocates nothing.
struct PredicateScratch {
  Arena arena{4096};
  /// Predicate work performed, in bytes (exported as the
  /// query.predicate_bytes_scanned counter): the full byte length of
  /// every value slice a predicate inspected, or the whole pool for a
  /// sweep. Full lengths are charged even when a scan exits early, so
  /// the figure is a pure function of (corpus, query) — invariant
  /// across shard counts, thread counts and SIMD levels, which the
  /// determinism tests rely on.
  uint64_t bytes_scanned = 0;
  /// Full-pool sweeps performed (plan classification: a summary-plan
  /// query with >= 1 sweep counts as query.plan.sweep).
  uint64_t sweeps = 0;
};

/// The sweep-vs-slice cost decision for one document. Scanning
/// candidate slices individually touches `candidate_bytes` (slices
/// shorter than the needle are pre-rejected by length and excluded —
/// the cheap needle-selectivity estimate: a longer needle disqualifies
/// more slices up front) but pays per-call kernel setup on each of the
/// `candidate_count` slices; one pool sweep touches all `pool_bytes`
/// once at full vector width with no per-slice setup. Sweep when the
/// candidates already cover at least half the pool — then the sweep
/// reads at most 2x the bytes and wins them back on setup and on
/// never restarting at slice boundaries — but never for tiny candidate
/// sets, where per-slice setup is negligible in absolute terms.
bool ShouldSweepPool(size_t candidate_count, size_t candidate_bytes,
                     size_t pool_bytes);

/// One dense SIMD pass over `doc`'s pre-lowered text pool: returns an
/// element bitset (allocated from scratch.arena — valid until the next
/// SweepValBitset on the same scratch) with bit e set iff element e's
/// val contains `lowered` (already ASCII-lowercase; empty matches every
/// element). Equivalent to ValContainsLowered(e, lowered) for every e,
/// but the scanner crosses slice boundaries in one run instead of
/// restarting per element; hits that straddle two adjacent slices are
/// detected via the offset array and rejected. Charges the pool size to
/// scratch.bytes_scanned and bumps scratch.sweeps.
const uint64_t* SweepValBitset(const FlatDoc& doc, std::string_view lowered,
                               PredicateScratch& scratch);

inline bool BitsetTest(const uint64_t* bits, uint32_t i) {
  return (bits[i >> 6] >> (i & 63)) & 1;
}

}  // namespace webre

#endif  // WEBRE_REPOSITORY_PREDICATE_H_
