#ifndef WEBRE_REPOSITORY_QUERY_H_
#define WEBRE_REPOSITORY_QUERY_H_

#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"
#include "xml/node.h"

namespace webre {

/// One step of a path query.
struct QueryStep {
  /// Element name to match; "*" matches any element.
  std::string name;
  /// When true this step matches at any depth below the previous step
  /// (written `//name`); otherwise only direct children (`/name`).
  bool descendant = false;
  /// Optional predicate: keep only elements whose `val` contains this
  /// substring (case-insensitive). Written `[val~"text"]`. Empty = none.
  std::string val_contains;
};

/// A parsed path query over concept-tagged XML documents — the query
/// side of the paper's motivation ("facilitate querying Web based data
/// in a way more efficient and effective than just keyword based
/// retrieval", §1, and "query optimization and index structures on XML
/// documents", §1).
///
/// Grammar (a small XPath-like subset):
///   query  := step+
///   step   := ("/" | "//") name predicate?
///   name   := element name | "*"
///   predicate := "[val~\"substring\"]"
///
/// Examples:
///   /resume/EDUCATION/DATE
///   //DATE[val~"1996"]
///   /resume/*/LANGUAGE
///   /resume/EXPERIENCE//DATE
class PathQuery {
 public:
  /// Parses the textual form; fails on syntax errors.
  static StatusOr<PathQuery> Parse(std::string_view text);

  const std::vector<QueryStep>& steps() const { return steps_; }

  /// True when the query is a plain absolute label path — no wildcards,
  /// descendant axes or predicates. Such queries are answered directly
  /// from the repository's path index.
  bool IsSimplePath() const;

  /// The label path of a simple query (undefined otherwise).
  std::vector<std::string> AsLabelPath() const;

  /// Evaluates the query against one document, returning matched
  /// elements in document order (deduplicated).
  std::vector<const Node*> Evaluate(const Node& root) const;

  /// Round-trips back to text.
  std::string ToString() const;

 private:
  std::vector<QueryStep> steps_;
};

}  // namespace webre

#endif  // WEBRE_REPOSITORY_QUERY_H_
