#ifndef WEBRE_REPOSITORY_QUERY_H_
#define WEBRE_REPOSITORY_QUERY_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"
#include "xml/flat_doc.h"
#include "xml/name_table.h"
#include "xml/node.h"

namespace webre {

/// One step of a path query.
struct QueryStep {
  /// Element name to match; "*" matches any element.
  std::string name;
  /// When true this step matches at any depth below the previous step
  /// (written `//name`); otherwise only direct children (`/name`).
  bool descendant = false;
  /// Optional predicate: keep only elements whose `val` contains this
  /// substring (case-insensitive). Written `[val~"text"]`. Empty = none.
  std::string val_contains;
  /// ASCII-lowered copy of `val_contains`, filled by Parse so the
  /// per-node check never re-lowers the needle. Hand-assembled steps
  /// may leave it empty; matching then falls back to the slow path.
  std::string val_lower;
  /// Interned id of `name`, filled by Parse so matching is an integer
  /// compare. kInvalidNameId (the default) means "not interned":
  /// hand-assembled steps fall back to comparing the string.
  NameId name_id = kInvalidNameId;
  /// True when `name` is "*". Cached by Parse; hand-assembled steps
  /// are still recognized through the string.
  bool wildcard = false;
};

/// Reusable evaluation state for the flat evaluator: resolved step
/// tests, frontier buffers and the vectorized-predicate scratch
/// (repository/predicate.h), all with capacity that survives across
/// documents. The repository creates one per (query, worker task) so
/// evaluating a 32-document chunk performs its handful of allocations
/// once instead of per document. Not thread-safe; not shareable across
/// concurrent EvaluateFrom calls.
class FlatEvalScratch {
 public:
  FlatEvalScratch();
  ~FlatEvalScratch();
  FlatEvalScratch(const FlatEvalScratch&) = delete;
  FlatEvalScratch& operator=(const FlatEvalScratch&) = delete;

  /// Predicate bytes charged by evaluations through this scratch
  /// (deterministic accounting — see PredicateScratch::bytes_scanned);
  /// the repository folds this into query.predicate_bytes_scanned.
  uint64_t predicate_bytes_scanned() const;
  /// Full-pool sweeps those evaluations performed.
  uint64_t pool_sweeps() const;

 private:
  friend class PathQuery;
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// A parsed path query over concept-tagged XML documents — the query
/// side of the paper's motivation ("facilitate querying Web based data
/// in a way more efficient and effective than just keyword based
/// retrieval", §1, and "query optimization and index structures on XML
/// documents", §1).
///
/// Grammar (a small XPath-like subset):
///   query  := step+
///   step   := ("/" | "//") name predicate?
///   name   := element name | "*"
///   predicate := "[val~\"substring\"]"
///
/// Examples:
///   /resume/EDUCATION/DATE
///   //DATE[val~"1996"]
///   /resume/*/LANGUAGE
///   /resume/EXPERIENCE//DATE
class PathQuery {
 public:
  /// Parses the textual form; fails on syntax errors.
  static StatusOr<PathQuery> Parse(std::string_view text);

  const std::vector<QueryStep>& steps() const { return steps_; }

  /// True when the query is a plain absolute label path — no wildcards,
  /// descendant axes or predicates. The repository also answers
  /// structural queries (wildcards/descendant axes fine, predicate only
  /// on the FINAL step) straight from its summary; this narrower test
  /// exists because a simple path maps to exactly one summary trie node.
  bool IsSimplePath() const;

  /// Number of leading steps that are plain child-axis name tests (no
  /// wildcard, no descendant axis, no predicate). When an intermediate
  /// step carries a predicate (so the summary alone cannot answer), the
  /// repository seeds evaluation of steps [prefix, …) from the summary's
  /// occurrence lists for this prefix instead of walking from the root —
  /// falling back to a full per-document scan only when the prefix is
  /// empty.
  size_t SimplePrefixLength() const;

  /// The label path of a simple query (undefined otherwise).
  std::vector<std::string> AsLabelPath() const;

  /// Evaluates the query against one document, returning matched
  /// elements in document order (deduplicated).
  std::vector<const Node*> Evaluate(const Node& root) const;

  /// Evaluates steps [first_step, …) given `frontier`, the exact node
  /// set steps [0, first_step) matched — deduplicated and in document
  /// order. With first_step == 0 the frontier must hold the candidate
  /// roots (step 0 still applies its own name test / descendant axis
  /// to them as Evaluate does).
  std::vector<const Node*> EvaluateFrom(std::vector<const Node*> frontier,
                                        size_t first_step) const;

  /// Flat-document twins of Evaluate/EvaluateFrom: identical match
  /// semantics over a frozen FlatDoc, addressing elements by pre-order
  /// index. Results come back ascending (= document order, deduplicated);
  /// descendant steps are contiguous subtree-range scans and `[val~…]`
  /// predicates are evaluated in batch — the step's name survivors are
  /// collected first, then filtered through the SIMD scanner either
  /// slice by slice or via one full-pool sweep intersected as a bitset,
  /// whichever the per-document cost model picks (ShouldSweepPool).
  /// The scratch-less overloads allocate a scratch per call; hot loops
  /// pass their own.
  std::vector<uint32_t> Evaluate(const FlatDoc& doc) const;
  std::vector<uint32_t> Evaluate(const FlatDoc& doc,
                                 FlatEvalScratch& scratch) const;
  std::vector<uint32_t> EvaluateFrom(const FlatDoc& doc,
                                     std::vector<uint32_t> frontier,
                                     size_t first_step) const;
  std::vector<uint32_t> EvaluateFrom(const FlatDoc& doc,
                                     std::vector<uint32_t> frontier,
                                     size_t first_step,
                                     FlatEvalScratch& scratch) const;

  /// Round-trips back to text.
  std::string ToString() const;

 private:
  std::vector<QueryStep> steps_;
};

}  // namespace webre

#endif  // WEBRE_REPOSITORY_QUERY_H_
