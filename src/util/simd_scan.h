#ifndef WEBRE_UTIL_SIMD_SCAN_H_
#define WEBRE_UTIL_SIMD_SCAN_H_

#include <cstddef>
#include <string_view>

#include "util/strings.h"

namespace webre {

/// Vectorized case-insensitive substring search — the one matcher behind
/// every `[val~"…"]` predicate (FlatDoc::ValContainsLowered over the
/// pre-lowered text pool, util ContainsLowered over raw node values) and
/// the repository's full-pool sweeps (repository/predicate.h).
///
/// The implementation is picked once per process, mirroring the CRC32C
/// dispatch (storage/crc32c.cc): cpuid decides between scalar, SSE2 and
/// AVX2 kernels, and the WEBRE_SIMD environment variable
/// ("scalar" | "sse2" | "avx2") caps the choice for testing — a request
/// the hardware cannot honor falls back to the best supported level, so
/// WEBRE_SIMD=avx2 on an SSE2-only box runs SSE2 instead of crashing.
/// All levels return byte-identical results; the differential tests and
/// bench_query assert exactly that.
enum class SimdLevel : int {
  kScalar = 0,
  kSse2 = 1,
  kAvx2 = 2,
};

/// Canonical lowercase name ("scalar", "sse2", "avx2").
const char* SimdLevelName(SimdLevel level);

/// Parses a WEBRE_SIMD value; returns false (leaving `level` untouched)
/// for anything but the three canonical names.
bool ParseSimdLevel(std::string_view text, SimdLevel* level);

/// Maps cpuid feature bits to the level the dispatcher would pick — a
/// pure function so the fallback policy is unit-testable without faking
/// cpuid: no SSE2 → scalar, SSE2 without AVX2 → SSE2, AVX2 → AVX2.
SimdLevel SimdLevelFromFeatures(bool has_sse2, bool has_avx2);

/// The best level this machine supports (cpuid, cached).
SimdLevel DetectedSimdLevel();

/// The level currently dispatched to (after the WEBRE_SIMD cap and any
/// SetSimdLevelForTesting override).
SimdLevel ActiveSimdLevel();

/// TEST-ONLY: re-points the dispatch at `level` (clamped to what the
/// hardware supports) and returns the level actually installed. Not for
/// concurrent use with in-flight scans outside tests.
SimdLevel SetSimdLevelForTesting(SimdLevel level);

namespace simd_internal {

/// Out-of-line entry into the dispatched vector kernels. Contract:
/// 1 <= m and from + m <= n (FindLowered screens the degenerate cases).
size_t FindLoweredDispatch(const char* h, size_t n, const char* needle,
                           size_t m, size_t from);

/// The scalar kernel, inline: first-byte skip loop with on-the-fly
/// ASCII lowering. Same contract as FindLoweredDispatch.
inline size_t FindScalarLowered(const char* h, size_t n, const char* needle,
                                size_t m, size_t from) {
  const char first = needle[0];
  const size_t last = n - m;
  for (size_t i = from; i <= last; ++i) {
    if (AsciiToLower(h[i]) != first) continue;
    size_t j = 1;
    while (j < m && AsciiToLower(h[i + j]) == needle[j]) ++j;
    if (j == m) return i;
  }
  return std::string_view::npos;
}

}  // namespace simd_internal

/// Byte offset of the first occurrence of `lowered` in `haystack` at or
/// after `from`, comparing haystack bytes ASCII-lowered on the fly (a
/// pre-lowered haystack is matched unchanged — lowering is idempotent);
/// `lowered` must already be ASCII-lowercase. Returns
/// std::string_view::npos when absent. An empty needle matches at `from`
/// whenever `from` <= haystack.size().
///
/// Inline so the hot per-slice case — a window too small for even one
/// 16-lane round (the SSE2 kernel needs from + m - 1 + 16 <= n) — runs
/// the scalar loop in place: typical element values are a few bytes,
/// and the dispatch + broadcast setup the vector kernels pay is worth
/// ~3x on predicate-dense workloads. The vector kernels serve pool
/// sweeps and long values through FindLoweredDispatch.
inline size_t FindLowered(std::string_view haystack, std::string_view lowered,
                          size_t from = 0) {
  const size_t n = haystack.size();
  const size_t m = lowered.size();
  if (m == 0) return from <= n ? from : std::string_view::npos;
  if (from > n || m > n - from) return std::string_view::npos;
  if (n - from < m + 15) {
    return simd_internal::FindScalarLowered(haystack.data(), n,
                                            lowered.data(), m, from);
  }
  return simd_internal::FindLoweredDispatch(haystack.data(), n,
                                            lowered.data(), m, from);
}

}  // namespace webre

#endif  // WEBRE_UTIL_SIMD_SCAN_H_
