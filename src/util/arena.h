#ifndef WEBRE_UTIL_ARENA_H_
#define WEBRE_UTIL_ARENA_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

namespace webre {

/// Bump-pointer arena: allocations are O(1) pointer advances into large
/// blocks, and everything is freed at once when the arena dies (or on
/// Reset). There is no per-allocation free — that is the point: the
/// conversion pipeline rewrites a document's tree thousands of times and
/// node-by-node heap traffic was the dominant cost (DESIGN.md §11).
///
/// Not thread-safe; each arena is owned by one document at a time. Blocks
/// double geometrically from `initial_block_bytes` up to kMaxBlockBytes,
/// so small documents stay within a single block while large ones do
/// O(log n) block allocations total.
class Arena {
 public:
  static constexpr size_t kDefaultInitialBlockBytes = 16 * 1024;
  static constexpr size_t kMaxBlockBytes = 8 * 1024 * 1024;

  explicit Arena(size_t initial_block_bytes = kDefaultInitialBlockBytes)
      : next_block_bytes_(initial_block_bytes) {}

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// Returns `size` bytes aligned to `align` (a power of two). An
  /// allocation larger than kMaxBlockBytes gets its own dedicated block.
  void* Allocate(size_t size, size_t align = alignof(std::max_align_t)) {
    uintptr_t p = (cursor_ + (align - 1)) & ~(uintptr_t{align} - 1);
    if (p + size > limit_) return AllocateSlow(size, align);
    cursor_ = p + size;
    bytes_allocated_ += size;
    return reinterpret_cast<void*>(p);
  }

  /// Payload bytes handed out (excluding alignment padding and block
  /// slack). This is the figure exported as `mem_arena_bytes`.
  size_t bytes_allocated() const { return bytes_allocated_; }

  /// Bytes reserved from the system allocator across all blocks.
  size_t bytes_reserved() const { return bytes_reserved_; }

  /// Number of blocks currently held.
  size_t block_count() const { return blocks_.size(); }

  /// Rewinds the arena: everything previously allocated becomes
  /// invalid. At most one spare block (the largest) is kept for reuse;
  /// every other block is returned to the system allocator, so a
  /// long-lived arena that briefly ballooned does not pin its peak
  /// footprint forever.
  void Reset();

 private:
  void* AllocateSlow(size_t size, size_t align);

  struct Block {
    std::unique_ptr<char[]> data;
    size_t size = 0;
  };

  std::vector<Block> blocks_;
  uintptr_t cursor_ = 0;  // next free byte in the current block
  uintptr_t limit_ = 0;   // one past the current block's end
  size_t next_block_bytes_;
  size_t bytes_allocated_ = 0;
  size_t bytes_reserved_ = 0;
};

}  // namespace webre

#endif  // WEBRE_UTIL_ARENA_H_
