#ifndef WEBRE_UTIL_STATUS_H_
#define WEBRE_UTIL_STATUS_H_

#include <cassert>
#include <optional>
#include <ostream>
#include <string>
#include <utility>

namespace webre {

/// Error category for a failed operation. Kept deliberately small; the
/// library signals recoverable failures through Status rather than
/// exceptions (which are not used anywhere in this codebase).
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kFailedPrecondition,
  kOutOfRange,
  kInternal,
  /// A per-document resource guard tripped (input size, tree depth, node
  /// count, entity expansions, step budget — see util/resource_limits.h).
  kResourceExhausted,
};

/// Returns a stable human-readable name for `code` (e.g. "InvalidArgument").
const char* StatusCodeName(StatusCode code);

/// Result of an operation that can fail. A default-constructed Status is OK.
///
/// Usage:
///   Status s = DoThing();
///   if (!s.ok()) return s;
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  /// Constructs a status with the given code and message. `code` may be
  /// kOk, in which case the message is ignored by ok().
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  /// Returns an OK status.
  static Status Ok() { return Status(); }
  /// Returns an InvalidArgument status with `message`.
  static Status InvalidArgument(std::string message) {
    return Status(StatusCode::kInvalidArgument, std::move(message));
  }
  /// Returns a NotFound status with `message`.
  static Status NotFound(std::string message) {
    return Status(StatusCode::kNotFound, std::move(message));
  }
  /// Returns a FailedPrecondition status with `message`.
  static Status FailedPrecondition(std::string message) {
    return Status(StatusCode::kFailedPrecondition, std::move(message));
  }
  /// Returns an OutOfRange status with `message`.
  static Status OutOfRange(std::string message) {
    return Status(StatusCode::kOutOfRange, std::move(message));
  }
  /// Returns an Internal status with `message`.
  static Status Internal(std::string message) {
    return Status(StatusCode::kInternal, std::move(message));
  }
  /// Returns a ResourceExhausted status with `message`.
  static Status ResourceExhausted(std::string message) {
    return Status(StatusCode::kResourceExhausted, std::move(message));
  }

  /// True iff the operation succeeded.
  bool ok() const { return code_ == StatusCode::kOk; }
  /// The error category.
  StatusCode code() const { return code_; }
  /// The error message; empty for OK statuses.
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

std::ostream& operator<<(std::ostream& os, const Status& status);

/// Either a value of type T or an error Status. Analogous to
/// absl::StatusOr. Accessing value() on an error aborts in debug builds.
template <typename T>
class StatusOr {
 public:
  /// Constructs from a successful value.
  StatusOr(T value) : status_(), value_(std::move(value)) {}  // NOLINT
  /// Constructs from an error status. `status` must not be OK.
  StatusOr(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok() && "StatusOr constructed from OK status w/o value");
  }

  /// True iff a value is present.
  bool ok() const { return status_.ok(); }
  /// The status (OK when a value is present).
  const Status& status() const { return status_; }

  /// The contained value. Requires ok().
  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;
  std::optional<T> value_;
};

/// Propagates an error Status from an expression that yields a Status.
#define WEBRE_RETURN_IF_ERROR(expr)                \
  do {                                             \
    ::webre::Status _webre_status = (expr);        \
    if (!_webre_status.ok()) return _webre_status; \
  } while (false)

}  // namespace webre

#endif  // WEBRE_UTIL_STATUS_H_
