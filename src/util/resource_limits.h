#ifndef WEBRE_UTIL_RESOURCE_LIMITS_H_
#define WEBRE_UTIL_RESOURCE_LIMITS_H_

#include <cstddef>
#include <limits>
#include <string>

#include "util/status.h"

namespace webre {

/// Per-document resource guards for the conversion stack. Real-web HTML
/// is adversarial by accident (editor bugs, truncated transfers) and by
/// design (entity bombs, pathological nesting); these caps turn every
/// such input into a recoverable `kResourceExhausted` Status instead of
/// unbounded memory growth or recursion past the stack.
///
/// The defaults are sized so that no legitimately authored page comes
/// near them (see DESIGN.md "Failure model" for the rationale per
/// field); a clean corpus converts byte-identically with or without the
/// guards.
struct ResourceLimits {
  /// Raw bytes of one input document.
  size_t max_input_bytes = 16u << 20;  // 16 MiB
  /// Depth of the parsed/converted tree (root = depth 0). Bounds every
  /// recursive walk downstream of the parser.
  size_t max_tree_depth = 512;
  /// Nodes in one document tree, re-checked as restructuring rules grow
  /// the tree.
  size_t max_node_count = 1u << 20;  // ~1M nodes
  /// TOKEN elements the tokenization rule may split one text node into.
  size_t max_tokens_per_text = 1u << 16;  // 65536
  /// Character/entity references decoded for one document.
  size_t max_entity_expansions = 1u << 20;
  /// Generic per-document work budget: roughly "bytes lexed plus nodes
  /// visited per rule pass". A backstop against cost amplification that
  /// slips past the structural caps.
  size_t max_steps = 64u << 20;

  /// Limits that never trip (every cap at SIZE_MAX). The lenient legacy
  /// entry points route through the guarded implementation with these.
  static ResourceLimits Unlimited() {
    ResourceLimits limits;
    constexpr size_t kMax = std::numeric_limits<size_t>::max();
    limits.max_input_bytes = kMax;
    limits.max_tree_depth = kMax;
    limits.max_node_count = kMax;
    limits.max_tokens_per_text = kMax;
    limits.max_entity_expansions = kMax;
    limits.max_steps = kMax;
    return limits;
  }
};

/// Mutable consumption counters charged against one ResourceLimits while
/// a single document moves through the stack. One budget spans all
/// stages (lex, parse, tidy, rules) so a document cannot reset its
/// allowance between them. Not thread-safe; use one per document.
class ResourceBudget {
 public:
  explicit ResourceBudget(const ResourceLimits& limits) : limits_(limits) {}

  const ResourceLimits& limits() const { return limits_; }

  /// Checks the size of the raw input document.
  Status ChargeInput(size_t bytes) {
    if (bytes > limits_.max_input_bytes) {
      return Exhausted("input of " + std::to_string(bytes) +
                       " bytes exceeds max_input_bytes=" +
                       std::to_string(limits_.max_input_bytes));
    }
    return Status::Ok();
  }

  /// Consumes `n` units of the generic step budget.
  Status ChargeSteps(size_t n) {
    steps_ += n;
    if (steps_ > limits_.max_steps || steps_ < n /*overflow*/) {
      return Exhausted("step budget max_steps=" +
                       std::to_string(limits_.max_steps) + " exhausted");
    }
    return Status::Ok();
  }

  /// Consumes `n` tree nodes from the node allowance.
  Status ChargeNodes(size_t n) {
    nodes_ += n;
    if (nodes_ > limits_.max_node_count || nodes_ < n /*overflow*/) {
      return Exhausted("node budget max_node_count=" +
                       std::to_string(limits_.max_node_count) + " exhausted");
    }
    return Status::Ok();
  }

  /// Consumes one decoded character/entity reference.
  Status ChargeEntity() {
    ++entities_;
    if (entities_ > limits_.max_entity_expansions) {
      return Exhausted("entity budget max_entity_expansions=" +
                       std::to_string(limits_.max_entity_expansions) +
                       " exhausted");
    }
    return Status::Ok();
  }

  /// Checks a whole-tree node count against the node cap without
  /// accumulating (for re-measuring a tree that a later stage grew).
  Status CheckNodeCount(size_t count) {
    if (count > limits_.max_node_count) {
      return Exhausted("tree of " + std::to_string(count) +
                       " nodes exceeds max_node_count=" +
                       std::to_string(limits_.max_node_count));
    }
    return Status::Ok();
  }

  /// Checks a tree depth against the depth cap (does not accumulate).
  Status CheckDepth(size_t depth) {
    if (depth > limits_.max_tree_depth) {
      return Exhausted("tree depth " + std::to_string(depth) +
                       " exceeds max_tree_depth=" +
                       std::to_string(limits_.max_tree_depth));
    }
    return Status::Ok();
  }

  size_t steps_used() const { return steps_; }
  size_t nodes_used() const { return nodes_; }
  size_t entities_used() const { return entities_; }

 private:
  static Status Exhausted(std::string message) {
    return Status::ResourceExhausted(std::move(message));
  }

  ResourceLimits limits_;
  size_t steps_ = 0;
  size_t nodes_ = 0;
  size_t entities_ = 0;
};

}  // namespace webre

#endif  // WEBRE_UTIL_RESOURCE_LIMITS_H_
