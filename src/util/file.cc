#include "util/file.h"

#include <cstdio>

namespace webre {

StatusOr<std::string> ReadFile(std::string_view path) {
  const std::string path_str(path);
  std::FILE* file = std::fopen(path_str.c_str(), "rb");
  if (file == nullptr) {
    return Status::NotFound("cannot open " + path_str);
  }
  std::string contents;
  char buffer[1 << 14];
  size_t read;
  while ((read = std::fread(buffer, 1, sizeof(buffer), file)) > 0) {
    contents.append(buffer, read);
  }
  const bool failed = std::ferror(file) != 0;
  std::fclose(file);
  if (failed) {
    return Status::Internal("read error on " + path_str);
  }
  return contents;
}

Status WriteFile(std::string_view path, std::string_view contents) {
  const std::string path_str(path);
  std::FILE* file = std::fopen(path_str.c_str(), "wb");
  if (file == nullptr) {
    return Status::Internal("cannot open " + path_str + " for writing");
  }
  const size_t written = std::fwrite(contents.data(), 1, contents.size(), file);
  const bool failed = written != contents.size() || std::fclose(file) != 0;
  if (failed) {
    return Status::Internal("write error on " + path_str);
  }
  return Status::Ok();
}

}  // namespace webre
