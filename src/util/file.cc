#include "util/file.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>

namespace webre {

StatusOr<std::string> ReadFile(std::string_view path) {
  const std::string path_str(path);
  std::FILE* file = std::fopen(path_str.c_str(), "rb");
  if (file == nullptr) {
    return Status::NotFound("cannot open " + path_str);
  }
  std::string contents;
  char buffer[1 << 14];
  size_t read;
  while ((read = std::fread(buffer, 1, sizeof(buffer), file)) > 0) {
    contents.append(buffer, read);
  }
  const bool failed = std::ferror(file) != 0;
  std::fclose(file);
  if (failed) {
    return Status::Internal("read error on " + path_str);
  }
  return contents;
}

Status WriteFile(std::string_view path, std::string_view contents) {
  const std::string path_str(path);
  std::FILE* file = std::fopen(path_str.c_str(), "wb");
  if (file == nullptr) {
    return Status::Internal("cannot open " + path_str + " for writing");
  }
  const size_t written = std::fwrite(contents.data(), 1, contents.size(), file);
  const bool failed = written != contents.size() || std::fclose(file) != 0;
  if (failed) {
    return Status::Internal("write error on " + path_str);
  }
  return Status::Ok();
}

namespace {

std::string ErrnoMessage(const char* what, const std::string& path) {
  return std::string(what) + " " + path + ": " + std::strerror(errno);
}

/// Writes all of `contents` to `fd`, retrying short writes and EINTR.
bool WriteAll(int fd, std::string_view contents) {
  const char* data = contents.data();
  size_t left = contents.size();
  while (left > 0) {
    const ssize_t n = ::write(fd, data, left);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    data += n;
    left -= static_cast<size_t>(n);
  }
  return true;
}

}  // namespace

Status WriteFileAtomic(std::string_view path, std::string_view contents) {
  const std::string path_str(path);
  // The temp file must live in the destination directory: rename(2) is
  // only atomic within one filesystem.
  const std::string tmp = path_str + ".tmp";
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    return Status::Internal(ErrnoMessage("cannot create", tmp));
  }
  if (!WriteAll(fd, contents)) {
    const Status status = Status::Internal(ErrnoMessage("write error on", tmp));
    ::close(fd);
    ::unlink(tmp.c_str());
    return status;
  }
  if (::fsync(fd) != 0) {
    const Status status = Status::Internal(ErrnoMessage("fsync failed on", tmp));
    ::close(fd);
    ::unlink(tmp.c_str());
    return status;
  }
  if (::close(fd) != 0) {
    ::unlink(tmp.c_str());
    return Status::Internal(ErrnoMessage("close failed on", tmp));
  }
  if (::rename(tmp.c_str(), path_str.c_str()) != 0) {
    const Status status =
        Status::Internal(ErrnoMessage("rename failed for", path_str));
    ::unlink(tmp.c_str());
    return status;
  }
  // Make the rename itself durable. Derive the directory from the path;
  // "" means the current directory.
  const size_t slash = path_str.find_last_of('/');
  const std::string dir = slash == std::string::npos
                              ? std::string(".")
                              : path_str.substr(0, slash + 1);
  return SyncDir(dir);
}

Status SyncDir(std::string_view dir) {
  const std::string dir_str(dir.empty() ? "." : dir);
  const int fd = ::open(dir_str.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) {
    return Status::Internal(ErrnoMessage("cannot open directory", dir_str));
  }
  const bool ok = ::fsync(fd) == 0;
  ::close(fd);
  if (!ok) {
    return Status::Internal(ErrnoMessage("fsync failed on directory", dir_str));
  }
  return Status::Ok();
}

}  // namespace webre
