#include "util/thread_pool.h"

#include <algorithm>

namespace webre {

size_t DefaultThreadCount() {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<size_t>(n);
}

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) num_threads = DefaultThreadCount();
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  work_available_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queue_.push_back(std::move(task));
  }
  work_available_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mutex_);
  all_done_.wait(lock, [this] { return queue_.empty() && in_flight_ == 0; });
}

size_t ThreadPool::failed_task_count() {
  std::lock_guard<std::mutex> lock(mutex_);
  return failed_tasks_;
}

std::string ThreadPool::first_failure_message() {
  std::lock_guard<std::mutex> lock(mutex_);
  return failures_.empty() ? std::string() : failures_.front();
}

std::vector<std::string> ThreadPool::failure_messages() {
  std::lock_guard<std::mutex> lock(mutex_);
  return failures_;
}

void ThreadPool::WorkerLoop() {
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    work_available_.wait(lock,
                         [this] { return stopping_ || !queue_.empty(); });
    if (queue_.empty()) return;  // stopping_ and drained
    std::function<void()> task = std::move(queue_.front());
    queue_.pop_front();
    ++in_flight_;
    lock.unlock();
    // A throwing task (std::bad_alloc under memory pressure, a buggy
    // caller-supplied body) must cost its own slot, never the process:
    // an exception escaping a std::thread is std::terminate.
    std::string failure;
    bool failed = false;
    try {
      task();
    } catch (const std::exception& e) {
      failed = true;
      failure = e.what();
    } catch (...) {
      failed = true;
      failure = "unknown exception";
    }
    lock.lock();
    if (failed) {
      ++failed_tasks_;
      if (failures_.size() < kMaxFailureMessages) {
        failures_.push_back(std::move(failure));
      }
    }
    --in_flight_;
    if (queue_.empty() && in_flight_ == 0) all_done_.notify_all();
  }
}

void ParallelFor(size_t count, const ParallelOptions& options,
                 const std::function<void(size_t, size_t)>& body) {
  const size_t threads =
      options.num_threads == 0 ? DefaultThreadCount() : options.num_threads;
  const size_t chunk = std::max<size_t>(1, options.chunk_size);
  if (count == 0) return;
  if (threads <= 1 || count <= chunk) {
    body(0, count);
    return;
  }
  ThreadPool pool(threads);
  ParallelFor(pool, count, chunk, body);
}

void ParallelFor(ThreadPool& pool, size_t count, size_t chunk_size,
                 const std::function<void(size_t, size_t)>& body) {
  if (count == 0) return;
  const size_t chunk = std::max<size_t>(1, chunk_size);
  for (size_t begin = 0; begin < count; begin += chunk) {
    const size_t end = std::min(count, begin + chunk);
    pool.Submit([&body, begin, end] { body(begin, end); });
  }
  pool.Wait();
}

}  // namespace webre
