#include "util/simd_scan.h"

#include <atomic>
#include <cstdint>
#include <cstdlib>

#include "util/strings.h"

#if defined(__x86_64__) || defined(__i386__)
#include <cpuid.h>
#include <immintrin.h>
#define WEBRE_SIMD_X86 1
#endif

namespace webre {
namespace {

constexpr size_t kNpos = std::string_view::npos;

// All kernels share one contract: 1 <= m and from + m <= n (the public
// FindLowered wrapper handles the degenerate cases), and they return the
// smallest candidate offset in [from, n - m] or kNpos.
using FindFn = size_t (*)(const char* h, size_t n, const char* needle,
                          size_t m, size_t from);

size_t FindScalar(const char* h, size_t n, const char* needle, size_t m,
                  size_t from) {
  return simd_internal::FindScalarLowered(h, n, needle, m, from);
}

#ifdef WEBRE_SIMD_X86

// Verifies needle bytes [1, m-1) at `cand` (first and last byte were
// matched by the broadcast compares; m == 1 and m == 2 verify nothing).
inline bool MiddleMatches(const char* h, const char* needle, size_t m,
                          size_t cand) {
  size_t j = 1;
  while (j + 1 < m && AsciiToLower(h[cand + j]) == needle[j]) ++j;
  return j + 1 >= m;
}

// ASCII-lowers all 16 lanes: bytes in ['A','Z'] get bit 0x20 OR-ed in.
// Signed compares leave bytes >= 0x80 (negative as epi8) untouched —
// the >= 'A' test already fails for them.
__attribute__((target("sse2"))) inline __m128i LowerSse2(__m128i v) {
  const __m128i ge = _mm_cmpgt_epi8(v, _mm_set1_epi8('A' - 1));
  const __m128i le = _mm_cmplt_epi8(v, _mm_set1_epi8('Z' + 1));
  return _mm_or_si128(
      v, _mm_and_si128(_mm_and_si128(ge, le), _mm_set1_epi8(0x20)));
}

__attribute__((target("sse2"))) size_t FindSse2(const char* h, size_t n,
                                                const char* needle, size_t m,
                                                size_t from) {
  constexpr size_t kWidth = 16;
  const __m128i first = _mm_set1_epi8(needle[0]);
  const __m128i last = _mm_set1_epi8(needle[m - 1]);
  size_t i = from;
  // A vector round tests candidate starts [i, i+15]: 16 bytes loaded at
  // i (first-byte lanes) and 16 at i+m-1 (last-byte lanes), so it needs
  // i + m - 1 + kWidth <= n to stay in bounds — which also keeps every
  // candidate within [from, n - m].
  while (i + m - 1 + kWidth <= n) {
    const __m128i a =
        LowerSse2(_mm_loadu_si128(reinterpret_cast<const __m128i*>(h + i)));
    const __m128i b = LowerSse2(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(h + i + m - 1)));
    const __m128i eq =
        _mm_and_si128(_mm_cmpeq_epi8(a, first), _mm_cmpeq_epi8(b, last));
    unsigned mask = static_cast<unsigned>(_mm_movemask_epi8(eq));
    while (mask != 0) {
      const unsigned bit = static_cast<unsigned>(__builtin_ctz(mask));
      mask &= mask - 1;
      const size_t cand = i + bit;
      if (MiddleMatches(h, needle, m, cand)) return cand;
    }
    i += kWidth;
  }
  if (i + m > n) return kNpos;
  // Tail: one final round slid back so its last loaded byte is h[n-1].
  // It re-tests some candidates below i — already examined and
  // rejected, so they are skipped — and covers everything in [i, n-m]
  // without a second kernel's setup. Needs n >= m - 1 + kWidth so the
  // slid-back start stays inside the haystack; the public wrapper
  // routes windows smaller than that to the scalar loop.
  if (n < m - 1 + kWidth) return FindScalar(h, n, needle, m, i);
  const size_t t = n - (m - 1) - kWidth;
  const __m128i a =
      LowerSse2(_mm_loadu_si128(reinterpret_cast<const __m128i*>(h + t)));
  const __m128i b = LowerSse2(
      _mm_loadu_si128(reinterpret_cast<const __m128i*>(h + t + m - 1)));
  const __m128i eq =
      _mm_and_si128(_mm_cmpeq_epi8(a, first), _mm_cmpeq_epi8(b, last));
  unsigned mask = static_cast<unsigned>(_mm_movemask_epi8(eq));
  while (mask != 0) {
    const unsigned bit = static_cast<unsigned>(__builtin_ctz(mask));
    mask &= mask - 1;
    const size_t cand = t + bit;
    if (cand < i) continue;
    if (MiddleMatches(h, needle, m, cand)) return cand;
  }
  return kNpos;
}

__attribute__((target("avx2"))) inline __m256i LowerAvx2(__m256i v) {
  const __m256i ge = _mm256_cmpgt_epi8(v, _mm256_set1_epi8('A' - 1));
  const __m256i le = _mm256_cmpgt_epi8(_mm256_set1_epi8('Z' + 1), v);
  return _mm256_or_si256(
      v, _mm256_and_si256(_mm256_and_si256(ge, le), _mm256_set1_epi8(0x20)));
}

__attribute__((target("avx2"))) size_t FindAvx2(const char* h, size_t n,
                                                const char* needle, size_t m,
                                                size_t from) {
  constexpr size_t kWidth = 32;
  const __m256i first = _mm256_set1_epi8(needle[0]);
  const __m256i last = _mm256_set1_epi8(needle[m - 1]);
  size_t i = from;
  while (i + m - 1 + kWidth <= n) {
    const __m256i a = LowerAvx2(
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(h + i)));
    const __m256i b = LowerAvx2(
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(h + i + m - 1)));
    const __m256i eq = _mm256_and_si256(_mm256_cmpeq_epi8(a, first),
                                        _mm256_cmpeq_epi8(b, last));
    unsigned mask = static_cast<unsigned>(_mm256_movemask_epi8(eq));
    while (mask != 0) {
      const unsigned bit = static_cast<unsigned>(__builtin_ctz(mask));
      mask &= mask - 1;
      const size_t cand = i + bit;
      if (MiddleMatches(h, needle, m, cand)) return cand;
    }
    i += kWidth;
  }
  if (i + m > n) return kNpos;
  // Tail: one slid-back 32-lane round covering [i, n-m] (candidates
  // below i were already rejected and are skipped), same scheme as the
  // SSE2 tail. Too-short haystacks fall through to the SSE2 kernel,
  // whose own tail handles them.
  if (n < m - 1 + kWidth) return FindSse2(h, n, needle, m, i);
  const size_t t = n - (m - 1) - kWidth;
  const __m256i a =
      LowerAvx2(_mm256_loadu_si256(reinterpret_cast<const __m256i*>(h + t)));
  const __m256i b = LowerAvx2(
      _mm256_loadu_si256(reinterpret_cast<const __m256i*>(h + t + m - 1)));
  const __m256i eq = _mm256_and_si256(_mm256_cmpeq_epi8(a, first),
                                      _mm256_cmpeq_epi8(b, last));
  unsigned mask = static_cast<unsigned>(_mm256_movemask_epi8(eq));
  while (mask != 0) {
    const unsigned bit = static_cast<unsigned>(__builtin_ctz(mask));
    mask &= mask - 1;
    const size_t cand = t + bit;
    if (cand < i) continue;
    if (MiddleMatches(h, needle, m, cand)) return cand;
  }
  return kNpos;
}

bool CpuHasSse2() {
  unsigned eax = 0, ebx = 0, ecx = 0, edx = 0;
  if (__get_cpuid(1, &eax, &ebx, &ecx, &edx) == 0) return false;
  return (edx & bit_SSE2) != 0;
}

bool CpuHasAvx2() {
  unsigned eax = 0, ebx = 0, ecx = 0, edx = 0;
  if (__get_cpuid(1, &eax, &ebx, &ecx, &edx) == 0) return false;
  // AVX2 use requires the OS to save YMM state: OSXSAVE + AVX, then
  // XCR0 bits 1 (SSE) and 2 (AVX), then the AVX2 feature bit itself.
  if ((ecx & bit_OSXSAVE) == 0 || (ecx & bit_AVX) == 0) return false;
  unsigned xcr0_lo = 0, xcr0_hi = 0;
  __asm__ volatile("xgetbv" : "=a"(xcr0_lo), "=d"(xcr0_hi) : "c"(0));
  if ((xcr0_lo & 0x6) != 0x6) return false;
  if (__get_cpuid_count(7, 0, &eax, &ebx, &ecx, &edx) == 0) return false;
  return (ebx & bit_AVX2) != 0;
}

#endif  // WEBRE_SIMD_X86

FindFn KernelForLevel(SimdLevel level) {
#ifdef WEBRE_SIMD_X86
  switch (level) {
    case SimdLevel::kAvx2:
      return &FindAvx2;
    case SimdLevel::kSse2:
      return &FindSse2;
    case SimdLevel::kScalar:
      return &FindScalar;
  }
#else
  (void)level;
#endif
  return &FindScalar;
}

SimdLevel DetectHardwareLevel() {
#ifdef WEBRE_SIMD_X86
  return SimdLevelFromFeatures(CpuHasSse2(), CpuHasAvx2());
#else
  return SimdLevelFromFeatures(false, false);
#endif
}

// Dispatch state. Relaxed atomics: every installed value is a valid
// kernel, so a racing reader at worst runs one scan on the previous
// level — results are identical by construction.
std::atomic<FindFn> g_kernel{nullptr};
std::atomic<int> g_level{0};

SimdLevel ClampToHardware(SimdLevel level) {
  const SimdLevel hw = DetectedSimdLevel();
  return static_cast<int>(level) > static_cast<int>(hw) ? hw : level;
}

FindFn InstallInitial() {
  SimdLevel level = DetectedSimdLevel();
  if (const char* env = std::getenv("WEBRE_SIMD")) {
    SimdLevel requested;
    // An unparseable value is ignored (full hardware dispatch), a valid
    // one is honored up to what the hardware supports.
    if (ParseSimdLevel(env, &requested)) level = ClampToHardware(requested);
  }
  const FindFn fn = KernelForLevel(level);
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
  g_kernel.store(fn, std::memory_order_relaxed);
  return fn;
}

}  // namespace

const char* SimdLevelName(SimdLevel level) {
  switch (level) {
    case SimdLevel::kScalar:
      return "scalar";
    case SimdLevel::kSse2:
      return "sse2";
    case SimdLevel::kAvx2:
      return "avx2";
  }
  return "scalar";
}

bool ParseSimdLevel(std::string_view text, SimdLevel* level) {
  if (text == "scalar") {
    *level = SimdLevel::kScalar;
  } else if (text == "sse2") {
    *level = SimdLevel::kSse2;
  } else if (text == "avx2") {
    *level = SimdLevel::kAvx2;
  } else {
    return false;
  }
  return true;
}

SimdLevel SimdLevelFromFeatures(bool has_sse2, bool has_avx2) {
  if (has_avx2 && has_sse2) return SimdLevel::kAvx2;
  if (has_sse2) return SimdLevel::kSse2;
  return SimdLevel::kScalar;
}

SimdLevel DetectedSimdLevel() {
  static const SimdLevel level = DetectHardwareLevel();
  return level;
}

SimdLevel ActiveSimdLevel() {
  if (g_kernel.load(std::memory_order_relaxed) == nullptr) InstallInitial();
  return static_cast<SimdLevel>(g_level.load(std::memory_order_relaxed));
}

SimdLevel SetSimdLevelForTesting(SimdLevel level) {
  const SimdLevel clamped = ClampToHardware(level);
  g_level.store(static_cast<int>(clamped), std::memory_order_relaxed);
  g_kernel.store(KernelForLevel(clamped), std::memory_order_relaxed);
  return clamped;
}

namespace simd_internal {

size_t FindLoweredDispatch(const char* h, size_t n, const char* needle,
                           size_t m, size_t from) {
  FindFn fn = g_kernel.load(std::memory_order_relaxed);
  if (fn == nullptr) fn = InstallInitial();
  return fn(h, n, needle, m, from);
}

}  // namespace simd_internal

}  // namespace webre
