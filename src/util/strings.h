#ifndef WEBRE_UTIL_STRINGS_H_
#define WEBRE_UTIL_STRINGS_H_

#include <string>
#include <string_view>
#include <vector>

namespace webre {

/// ASCII-lowercases `c`; non-letters pass through unchanged.
inline char AsciiToLower(char c) {
  return (c >= 'A' && c <= 'Z') ? static_cast<char>(c - 'A' + 'a') : c;
}

/// ASCII-uppercases `c`; non-letters pass through unchanged.
inline char AsciiToUpper(char c) {
  return (c >= 'a' && c <= 'z') ? static_cast<char>(c - 'a' + 'A') : c;
}

/// True for space, tab, CR, LF, FF and VT.
inline bool IsAsciiSpace(char c) {
  return c == ' ' || c == '\t' || c == '\r' || c == '\n' || c == '\f' ||
         c == '\v';
}

/// True for ASCII letters.
inline bool IsAsciiAlpha(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z');
}

/// True for ASCII digits.
inline bool IsAsciiDigit(char c) { return c >= '0' && c <= '9'; }

/// True for ASCII letters or digits.
inline bool IsAsciiAlnum(char c) { return IsAsciiAlpha(c) || IsAsciiDigit(c); }

/// Returns a lowercase copy of `s` (ASCII only).
std::string AsciiLower(std::string_view s);

/// Returns an uppercase copy of `s` (ASCII only).
std::string AsciiUpper(std::string_view s);

/// Case-insensitive (ASCII) equality.
bool EqualsIgnoreCase(std::string_view a, std::string_view b);

/// True iff `haystack` contains `needle` ignoring ASCII case. An empty
/// needle matches everywhere.
bool ContainsIgnoreCase(std::string_view haystack, std::string_view needle);

/// ContainsIgnoreCase for a needle that is already ASCII-lowercase —
/// the hot-loop half of the search, with the needle's lowering hoisted
/// out. Callers that test one predicate against many values (the query
/// serving layer) lower the needle once via AsciiLower and reuse it.
bool ContainsLowered(std::string_view haystack, std::string_view lowered);

/// True iff `haystack` contains `needle` ignoring ASCII case and only at
/// word boundaries (neighbouring characters must not be alphanumeric).
/// E.g. "BS" matches in "BS, Computer Science" but not in "JOBS".
bool ContainsWordIgnoreCase(std::string_view haystack, std::string_view needle);

/// Removes leading and trailing ASCII whitespace.
std::string_view StripAsciiWhitespace(std::string_view s);

/// Collapses internal whitespace runs to a single space and trims the ends.
std::string CollapseWhitespace(std::string_view s);

/// Splits `s` on any character in `delims`. Empty pieces are dropped when
/// `keep_empty` is false (the default).
std::vector<std::string> SplitAny(std::string_view s, std::string_view delims,
                                  bool keep_empty = false);

/// Appends the pieces of `s` between delimiter characters to `out` as
/// views into `s` (valid only while the underlying buffer lives). Lets
/// hot loops reuse one scratch vector instead of allocating per call.
void SplitAnyViews(std::string_view s, std::string_view delims,
                   std::vector<std::string_view>& out,
                   bool keep_empty = false);

/// Splits `s` into whitespace-delimited words.
std::vector<std::string> SplitWords(std::string_view s);

/// Joins `pieces` with `sep` between consecutive elements.
std::string Join(const std::vector<std::string>& pieces, std::string_view sep);

/// True iff `s` starts with `prefix`.
inline bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

/// True iff `s` ends with `suffix`.
inline bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

}  // namespace webre

#endif  // WEBRE_UTIL_STRINGS_H_
