#ifndef WEBRE_UTIL_THREAD_POOL_H_
#define WEBRE_UTIL_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace webre {

/// How a batch stage fans work out across threads.
struct ParallelOptions {
  /// Worker threads to use. 1 (the default) runs everything inline on
  /// the calling thread; 0 means "one per hardware thread"
  /// (DefaultThreadCount).
  size_t num_threads = 1;
  /// Indices handed to a worker at a time. Larger chunks amortize queue
  /// traffic; smaller chunks balance skewed per-item costs.
  size_t chunk_size = 16;
};

/// Number of hardware threads, with a floor of 1 when the runtime cannot
/// tell.
size_t DefaultThreadCount();

/// A small fixed-size worker pool. Tasks are run in FIFO order by the
/// first free worker; Wait() blocks until every submitted task has
/// finished. The pool is reusable: Submit/Wait cycles may repeat.
///
/// The library is exception-free by construction, but the runtime is
/// not (`std::bad_alloc`, above all): a task that throws is caught by
/// its worker and recorded instead of `std::terminate`-ing the whole
/// process. Callers running batches should check failed_task_count()
/// after Wait() — a failed task produced no result for its slot.
class ThreadPool {
 public:
  /// Spawns `num_threads` workers (0 means DefaultThreadCount()).
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues one task.
  void Submit(std::function<void()> task);

  /// Blocks until the queue is empty and no task is running.
  void Wait();

  size_t num_threads() const { return workers_.size(); }

  /// Cap on retained task-failure messages (the first
  /// kMaxFailureMessages are kept; later ones only bump the count).
  static constexpr size_t kMaxFailureMessages = 16;

  /// Tasks that exited via an exception since construction.
  size_t failed_task_count();

  /// what() of the first task exception captured (empty when none).
  std::string first_failure_message();

  /// what() of every captured task exception, in capture order, bounded
  /// to kMaxFailureMessages — so batch metrics can show each distinct
  /// failure instead of only the first (failed_task_count() still counts
  /// all of them).
  std::vector<std::string> failure_messages();

 private:
  void WorkerLoop();

  std::mutex mutex_;
  std::condition_variable work_available_;
  std::condition_variable all_done_;
  std::deque<std::function<void()>> queue_;
  size_t in_flight_ = 0;
  bool stopping_ = false;
  size_t failed_tasks_ = 0;
  std::vector<std::string> failures_;
  std::vector<std::thread> workers_;
};

/// Runs `body(begin, end)` over [0, count) split into chunks of
/// `options.chunk_size`, on `options.num_threads` workers. With one
/// thread (or one chunk) the body runs inline on the calling thread —
/// no pool is created, so the serial path stays allocation-free.
/// `body` must be safe to call concurrently on disjoint ranges.
void ParallelFor(size_t count, const ParallelOptions& options,
                 const std::function<void(size_t, size_t)>& body);

/// Same, reusing an existing pool (for callers running several stages).
void ParallelFor(ThreadPool& pool, size_t count, size_t chunk_size,
                 const std::function<void(size_t, size_t)>& body);

}  // namespace webre

#endif  // WEBRE_UTIL_THREAD_POOL_H_
