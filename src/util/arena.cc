#include "util/arena.h"

#include <algorithm>

namespace webre {

void* Arena::AllocateSlow(size_t size, size_t align) {
  // A block must fit the request plus worst-case alignment padding.
  size_t need = size + align;
  size_t block_bytes = std::max(next_block_bytes_, need);
  if (next_block_bytes_ < kMaxBlockBytes) {
    next_block_bytes_ = std::min(next_block_bytes_ * 2, kMaxBlockBytes);
  }
  Block block;
  block.data = std::make_unique<char[]>(block_bytes);
  block.size = block_bytes;
  cursor_ = reinterpret_cast<uintptr_t>(block.data.get());
  limit_ = cursor_ + block_bytes;
  bytes_reserved_ += block_bytes;
  blocks_.push_back(std::move(block));

  uintptr_t p = (cursor_ + (align - 1)) & ~(uintptr_t{align} - 1);
  cursor_ = p + size;
  bytes_allocated_ += size;
  return reinterpret_cast<void*>(p);
}

void Arena::Reset() {
  if (!blocks_.empty()) {
    // Keep only the largest block as the spare to bump into next time.
    size_t keep = 0;
    for (size_t i = 1; i < blocks_.size(); ++i) {
      if (blocks_[i].size > blocks_[keep].size) keep = i;
    }
    Block spare = std::move(blocks_[keep]);
    blocks_.clear();
    cursor_ = reinterpret_cast<uintptr_t>(spare.data.get());
    limit_ = cursor_ + spare.size;
    bytes_reserved_ = spare.size;
    blocks_.push_back(std::move(spare));
  } else {
    cursor_ = 0;
    limit_ = 0;
    bytes_reserved_ = 0;
  }
  bytes_allocated_ = 0;
}

}  // namespace webre
