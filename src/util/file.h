#ifndef WEBRE_UTIL_FILE_H_
#define WEBRE_UTIL_FILE_H_

#include <string>
#include <string_view>

#include "util/status.h"

namespace webre {

/// Reads a whole file into a string.
StatusOr<std::string> ReadFile(std::string_view path);

/// Writes (truncating) `contents` to `path`.
Status WriteFile(std::string_view path, std::string_view contents);

}  // namespace webre

#endif  // WEBRE_UTIL_FILE_H_
