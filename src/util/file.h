#ifndef WEBRE_UTIL_FILE_H_
#define WEBRE_UTIL_FILE_H_

#include <string>
#include <string_view>

#include "util/status.h"

namespace webre {

/// Reads a whole file into a string.
StatusOr<std::string> ReadFile(std::string_view path);

/// Writes (truncating) `contents` to `path`.
Status WriteFile(std::string_view path, std::string_view contents);

/// Durably replaces `path` with `contents`: writes a temporary file in
/// the same directory, fsyncs it, then atomically renames it over
/// `path` and fsyncs the directory. A crash at any point leaves either
/// the old contents or the new contents — never a torn file. Use for
/// artifacts a consumer may read while (or after) the writer dies
/// (metrics JSON, traces, snapshots).
Status WriteFileAtomic(std::string_view path, std::string_view contents);

/// fsyncs the directory `dir` itself, making previously-completed
/// renames/creates/unlinks inside it durable. POSIX makes a renamed
/// file durable only once its directory is synced.
Status SyncDir(std::string_view dir);

}  // namespace webre

#endif  // WEBRE_UTIL_FILE_H_
