#include "util/strings.h"

#include "util/simd_scan.h"

namespace webre {

std::string AsciiLower(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = AsciiToLower(c);
  return out;
}

std::string AsciiUpper(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = AsciiToUpper(c);
  return out;
}

bool EqualsIgnoreCase(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (AsciiToLower(a[i]) != AsciiToLower(b[i])) return false;
  }
  return true;
}

namespace {

// Returns the index of the first case-insensitive occurrence of `needle`
// in `haystack` at or after `from`, or npos.
size_t FindIgnoreCase(std::string_view haystack, std::string_view needle,
                      size_t from) {
  if (needle.empty()) return from <= haystack.size() ? from : std::string_view::npos;
  if (needle.size() > haystack.size()) return std::string_view::npos;
  for (size_t i = from; i + needle.size() <= haystack.size(); ++i) {
    size_t j = 0;
    while (j < needle.size() &&
           AsciiToLower(haystack[i + j]) == AsciiToLower(needle[j])) {
      ++j;
    }
    if (j == needle.size()) return i;
  }
  return std::string_view::npos;
}

}  // namespace

bool ContainsIgnoreCase(std::string_view haystack, std::string_view needle) {
  return FindIgnoreCase(haystack, needle, 0) != std::string_view::npos;
}

bool ContainsLowered(std::string_view haystack, std::string_view lowered) {
  // One matcher for every lowered-needle search in the system: the
  // runtime-dispatched SIMD scanner (util/simd_scan.h). FlatDoc's
  // ValContainsLowered routes through the same kernel, so flat and
  // pointer ("--no-flat") storage modes share one tested code path.
  return FindLowered(haystack, lowered) != std::string_view::npos;
}

bool ContainsWordIgnoreCase(std::string_view haystack,
                            std::string_view needle) {
  if (needle.empty()) return true;
  size_t pos = 0;
  while (true) {
    pos = FindIgnoreCase(haystack, needle, pos);
    if (pos == std::string_view::npos) return false;
    const bool left_ok = pos == 0 || !IsAsciiAlnum(haystack[pos - 1]);
    const size_t end = pos + needle.size();
    const bool right_ok = end >= haystack.size() || !IsAsciiAlnum(haystack[end]);
    if (left_ok && right_ok) return true;
    ++pos;
  }
}

std::string_view StripAsciiWhitespace(std::string_view s) {
  size_t begin = 0;
  while (begin < s.size() && IsAsciiSpace(s[begin])) ++begin;
  size_t end = s.size();
  while (end > begin && IsAsciiSpace(s[end - 1])) --end;
  return s.substr(begin, end - begin);
}

std::string CollapseWhitespace(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  bool in_space = true;  // true at start: drops leading whitespace.
  for (char c : s) {
    if (IsAsciiSpace(c)) {
      if (!in_space) out.push_back(' ');
      in_space = true;
    } else {
      out.push_back(c);
      in_space = false;
    }
  }
  while (!out.empty() && out.back() == ' ') out.pop_back();
  return out;
}

std::vector<std::string> SplitAny(std::string_view s, std::string_view delims,
                                  bool keep_empty) {
  std::vector<std::string> pieces;
  std::string current;
  for (char c : s) {
    if (delims.find(c) != std::string_view::npos) {
      if (keep_empty || !current.empty()) pieces.push_back(current);
      current.clear();
    } else {
      current.push_back(c);
    }
  }
  if (keep_empty || !current.empty()) pieces.push_back(current);
  return pieces;
}

void SplitAnyViews(std::string_view s, std::string_view delims,
                   std::vector<std::string_view>& out, bool keep_empty) {
  size_t begin = 0;
  for (size_t i = 0; i < s.size(); ++i) {
    if (delims.find(s[i]) != std::string_view::npos) {
      if (keep_empty || i > begin) out.push_back(s.substr(begin, i - begin));
      begin = i + 1;
    }
  }
  if (keep_empty || s.size() > begin) out.push_back(s.substr(begin));
}

std::vector<std::string> SplitWords(std::string_view s) {
  std::vector<std::string> words;
  std::string current;
  for (char c : s) {
    if (IsAsciiSpace(c)) {
      if (!current.empty()) words.push_back(std::move(current));
      current.clear();
    } else {
      current.push_back(c);
    }
  }
  if (!current.empty()) words.push_back(std::move(current));
  return words;
}

std::string Join(const std::vector<std::string>& pieces,
                 std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < pieces.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(pieces[i]);
  }
  return out;
}

}  // namespace webre
