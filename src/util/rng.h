#ifndef WEBRE_UTIL_RNG_H_
#define WEBRE_UTIL_RNG_H_

#include <cassert>
#include <cstdint>
#include <vector>

namespace webre {

/// Deterministic pseudo-random number generator (splitmix64 core).
///
/// The corpus generator and benchmarks must be reproducible across
/// machines and runs, so all randomness in this library flows through Rng
/// seeded explicitly; std::random_device and std::mt19937 (whose
/// distributions are implementation-defined) are not used.
class Rng {
 public:
  /// Creates a generator with the given seed. Equal seeds yield equal
  /// sequences on every platform.
  explicit Rng(uint64_t seed) : state_(seed + 0x9E3779B97F4A7C15ULL) {}

  /// Next raw 64-bit value.
  uint64_t NextU64() {
    uint64_t z = (state_ += 0x9E3779B97F4A7C15ULL);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }

  /// Uniform integer in [0, bound). `bound` must be > 0.
  uint64_t NextBelow(uint64_t bound) {
    assert(bound > 0);
    // Multiply-shift rejection-free mapping; bias is negligible for the
    // small bounds used by the generator (< 2^20).
    return static_cast<uint64_t>(
        (static_cast<unsigned __int128>(NextU64()) * bound) >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t NextInRange(int64_t lo, int64_t hi) {
    assert(lo <= hi);
    return lo + static_cast<int64_t>(
                    NextBelow(static_cast<uint64_t>(hi - lo) + 1));
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli trial with success probability `p` (clamped to [0,1]).
  bool NextBool(double p) { return NextDouble() < p; }

  /// Uniformly chosen element of `v`. `v` must be non-empty.
  template <typename T>
  const T& Choose(const std::vector<T>& v) {
    assert(!v.empty());
    return v[NextBelow(v.size())];
  }

  /// Fisher-Yates shuffle of `v`.
  template <typename T>
  void Shuffle(std::vector<T>& v) {
    for (size_t i = v.size(); i > 1; --i) {
      size_t j = NextBelow(i);
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

 private:
  uint64_t state_;
};

}  // namespace webre

#endif  // WEBRE_UTIL_RNG_H_
