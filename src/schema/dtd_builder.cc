#include "schema/dtd_builder.h"

#include <vector>

namespace webre {
namespace {

Occurrence ChildOccurrence(const SchemaNode& parent, const SchemaNode& child,
                           const DtdBuildOptions& options) {
  const bool repetitive = child.rep_fraction > options.mult_threshold;
  bool optional = false;
  if (options.mark_optional && parent.doc_count > 0) {
    const double presence = static_cast<double>(child.doc_count) /
                            static_cast<double>(parent.doc_count);
    optional = presence < options.optional_threshold;
  }
  if (repetitive && optional) return Occurrence::kStar;
  if (repetitive) return Occurrence::kPlus;
  if (optional) return Occurrence::kOptional;
  return Occurrence::kOne;
}

// Merges `incoming` children into an existing declaration's sequence:
// children not yet present are appended; an existing child keeps the
// "wider" occurrence (a union never narrows what documents may contain).
Occurrence WidenOccurrence(Occurrence a, Occurrence b) {
  if (a == b) return a;
  auto rank = [](Occurrence o) {
    switch (o) {
      case Occurrence::kOne:
        return 0;
      case Occurrence::kOptional:
        return 1;
      case Occurrence::kPlus:
        return 2;
      case Occurrence::kStar:
        return 3;
    }
    return 0;
  };
  // one+optional -> optional; one/optional + plus -> star when optional
  // involved, else plus; anything + star -> star.
  const int ra = rank(a);
  const int rb = rank(b);
  const Occurrence hi = ra > rb ? a : b;
  const Occurrence lo = ra > rb ? b : a;
  if (hi == Occurrence::kPlus && lo == Occurrence::kOptional) {
    return Occurrence::kStar;
  }
  return hi;
}

void MergeInto(ElementDecl& existing, const ElementDecl& incoming) {
  if (incoming.pcdata_only && existing.pcdata_only) return;
  if (incoming.pcdata_only) {
    // A leaf occurrence of this name exists elsewhere: every structural
    // child must tolerate absence.
    for (ContentParticle& ex_child : existing.content.children) {
      if (ex_child.kind == ContentParticle::Kind::kElement) {
        ex_child.occurrence =
            WidenOccurrence(ex_child.occurrence, Occurrence::kOptional);
      }
    }
    return;
  }
  if (existing.pcdata_only) {
    existing = incoming;
    MergeInto(existing, ElementDecl{existing.name, /*pcdata_only=*/true, {}});
    return;
  }
  // Two structural models: common children widen their occurrences;
  // children on only one side become optional there.
  for (const ContentParticle& in_child : incoming.content.children) {
    if (in_child.kind != ContentParticle::Kind::kElement) continue;
    bool found = false;
    for (ContentParticle& ex_child : existing.content.children) {
      if (ex_child.kind == ContentParticle::Kind::kElement &&
          ex_child.name == in_child.name) {
        ex_child.occurrence =
            WidenOccurrence(ex_child.occurrence, in_child.occurrence);
        found = true;
        break;
      }
    }
    if (!found) {
      ContentParticle widened = in_child;
      widened.occurrence =
          WidenOccurrence(widened.occurrence, Occurrence::kOptional);
      existing.content.children.push_back(widened);
    }
  }
  for (ContentParticle& ex_child : existing.content.children) {
    if (ex_child.kind != ContentParticle::Kind::kElement) continue;
    bool in_incoming = false;
    for (const ContentParticle& in_child : incoming.content.children) {
      if (in_child.kind == ContentParticle::Kind::kElement &&
          in_child.name == ex_child.name) {
        in_incoming = true;
        break;
      }
    }
    if (!in_incoming) {
      ex_child.occurrence =
          WidenOccurrence(ex_child.occurrence, Occurrence::kOptional);
    }
  }
}

void EmitDecls(const SchemaNode& node, const DtdBuildOptions& options,
               Dtd& dtd) {
  ElementDecl decl;
  decl.name = node.label;
  if (node.children.empty()) {
    decl.pcdata_only = true;
  } else {
    std::vector<ContentParticle> members;
    if (options.lead_with_pcdata) {
      members.push_back(ContentParticle::Pcdata());
    }
    for (const SchemaNode& child : node.children) {
      members.push_back(ContentParticle::Element(
          child.label, ChildOccurrence(node, child, options)));
    }
    decl.content = ContentParticle::Sequence(std::move(members));
  }

  // The same element name can occur at several schema paths (homonyms,
  // §2.2 — e.g. DATE under EDUCATION and under COURSES); a DTD has one
  // declaration per name, so models for a name are unioned.
  const ElementDecl* existing = dtd.Find(decl.name);
  if (existing != nullptr) {
    ElementDecl merged = *existing;
    MergeInto(merged, decl);
    dtd.AddElement(std::move(merged));
  } else {
    dtd.AddElement(std::move(decl));
  }

  for (const SchemaNode& child : node.children) {
    EmitDecls(child, options, dtd);
  }
}

}  // namespace

Dtd BuildDtd(const MajoritySchema& schema, const DtdBuildOptions& options) {
  Dtd dtd;
  if (schema.empty()) return dtd;
  dtd.set_root(schema.root().label);
  EmitDecls(schema.root(), options, dtd);
  return dtd;
}

}  // namespace webre
