#ifndef WEBRE_SCHEMA_PATH_EXTRACTOR_H_
#define WEBRE_SCHEMA_PATH_EXTRACTOR_H_

#include <cstddef>
#include <string>
#include <unordered_map>
#include <vector>

#include "schema/label_path.h"
#include "xml/node.h"

namespace webre {

/// Everything schema discovery needs to know about one XML document
/// (§3.2): its *set* of root-emanating label paths — deduplicated so
/// that discovery "is not too biased towards multiple occurrences of the
/// same path in only a very few documents" — plus two side statistics
/// recorded "without computational overhead" during the same walk:
///
///  - `max_multiplicity[p]`: the largest number of same-label siblings
///    the leaf of path `p` has anywhere in the document (the ⟨p, num⟩
///    of the repetitive-elements rule);
///  - `position_sum[p]` / `position_count[p]`: accumulated child indices
///    of the leaf of `p` among its parent's element children (the
///    ordering rule's "average position").
struct DocumentPaths {
  /// Distinct label paths, root first. The root's one-element path is
  /// included.
  std::vector<LabelPath> paths;
  /// JoinLabelPath(paths[i]), precomputed during extraction so consumers
  /// (FrequentPathMiner::AddDocumentPaths) can key the side-tables
  /// without re-joining every path per document. Parallel to `paths`;
  /// callers assembling DocumentPaths by hand may leave it empty and the
  /// miner joins on demand.
  std::vector<std::string> joined_paths;
  /// Keyed by JoinLabelPath(p).
  std::unordered_map<std::string, size_t> max_multiplicity;
  std::unordered_map<std::string, double> position_sum;
  std::unordered_map<std::string, size_t> position_count;
};

/// Extracts paths(T) and the side statistics from the document rooted at
/// `root`. Text nodes are ignored; only element labels form paths.
DocumentPaths ExtractPaths(const Node& root);

}  // namespace webre

#endif  // WEBRE_SCHEMA_PATH_EXTRACTOR_H_
