#ifndef WEBRE_SCHEMA_PATH_EXTRACTOR_H_
#define WEBRE_SCHEMA_PATH_EXTRACTOR_H_

#include <cstddef>
#include <vector>

#include "schema/label_path.h"
#include "xml/node.h"

namespace webre {

/// Everything schema discovery needs to know about one XML document
/// (§3.2): its *set* of root-emanating label paths — deduplicated so
/// that discovery "is not too biased towards multiple occurrences of the
/// same path in only a very few documents" — plus two side statistics
/// recorded "without computational overhead" during the same walk:
///
///  - `max_multiplicity[i]`: the largest number of same-label siblings
///    the leaf of `paths[i]` has anywhere in the document (the ⟨p, num⟩
///    of the repetitive-elements rule);
///  - `position_sum[i]` / `position_count[i]`: accumulated child indices
///    of the leaf of `paths[i]` among its parent's element children (the
///    ordering rule's "average position").
///
/// The statistics vectors are parallel to `paths` — no string keys are
/// joined or hashed anywhere on this struct's hot path; consumers index
/// by path position. Callers assembling DocumentPaths by hand may leave
/// the statistics vectors empty (FrequentPathMiner treats missing
/// statistics as "none recorded").
struct DocumentPaths {
  /// Distinct label paths in document pre-order, root first. The root's
  /// one-element path is included.
  std::vector<LabelPath> paths;
  /// Parallel to `paths`; 0 means the leaf never appeared as a counted
  /// sibling (hand-built inputs).
  std::vector<size_t> max_multiplicity;
  /// Parallel to `paths`; position_count[i] == 0 means no ordering
  /// statistic was recorded for paths[i].
  std::vector<double> position_sum;
  std::vector<size_t> position_count;
};

/// Extracts paths(T) and the side statistics from the document rooted at
/// `root`. Text nodes are ignored; only element labels form paths.
DocumentPaths ExtractPaths(const Node& root);

}  // namespace webre

#endif  // WEBRE_SCHEMA_PATH_EXTRACTOR_H_
