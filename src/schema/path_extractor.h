#ifndef WEBRE_SCHEMA_PATH_EXTRACTOR_H_
#define WEBRE_SCHEMA_PATH_EXTRACTOR_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "schema/label_path.h"
#include "xml/flat_doc.h"
#include "xml/name_table.h"
#include "xml/node.h"

namespace webre {

/// Everything schema discovery needs to know about one XML document
/// (§3.2): its *set* of root-emanating label paths — deduplicated so
/// that discovery "is not too biased towards multiple occurrences of the
/// same path in only a very few documents" — plus two side statistics
/// recorded "without computational overhead" during the same walk:
///
///  - `max_multiplicity[i]`: the largest number of same-label siblings
///    the leaf of `paths[i]` has anywhere in the document (the ⟨p, num⟩
///    of the repetitive-elements rule);
///  - `position_sum[i]` / `position_count[i]`: accumulated child indices
///    of the leaf of `paths[i]` among its parent's element children (the
///    ordering rule's "average position").
///
/// The statistics vectors are parallel to `paths` — no string keys are
/// joined or hashed anywhere on this struct's hot path; consumers index
/// by path position. Callers assembling DocumentPaths by hand may leave
/// the statistics vectors empty (FrequentPathMiner treats missing
/// statistics as "none recorded").
struct DocumentPaths {
  /// Distinct label paths in document pre-order, root first. The root's
  /// one-element path is included.
  std::vector<LabelPath> paths;
  /// Parallel to `paths`; 0 means the leaf never appeared as a counted
  /// sibling (hand-built inputs).
  std::vector<size_t> max_multiplicity;
  /// Parallel to `paths`; position_count[i] == 0 means no ordering
  /// statistic was recorded for paths[i].
  std::vector<double> position_sum;
  std::vector<size_t> position_count;

  /// Sentinel for `parent_index` entries that have no parent (roots).
  static constexpr uint32_t kNoParentPath = 0xFFFFFFFFu;
  /// Parallel to `paths`: index of the path one label shorter (the
  /// parent path), or kNoParentPath for the one-element root path.
  /// Because `paths` is emitted in document pre-order, parents always
  /// precede their children, so consumers can rebuild the whole path
  /// set as a NameId trie in one forward pass with no string hashing.
  /// Empty on hand-assembled DocumentPaths (consumers must fall back
  /// to the string labels when sizes do not match `paths`).
  std::vector<uint32_t> parent_index;
  /// Parallel to `parent_index`: the interned NameId of the last label
  /// of paths[i]. Empty whenever `parent_index` is empty.
  std::vector<NameId> leaf_name;
};

/// Extracts paths(T) and the side statistics from the document rooted at
/// `root`. Text nodes are ignored; only element labels form paths.
DocumentPaths ExtractPaths(const Node& root);

/// The same extraction over a frozen document. Produces a DocumentPaths
/// bit-identical to ExtractPaths on the tree the FlatDoc was frozen
/// from (same emit order, multiplicities and position statistics) —
/// the storage layer relies on this equivalence to rebuild per-shard
/// mining tries from WAL records and snapshots without keeping any
/// pointer tree around (tests/storage_test.cc pins it).
DocumentPaths ExtractPaths(const FlatDoc& doc);

}  // namespace webre

#endif  // WEBRE_SCHEMA_PATH_EXTRACTOR_H_
