#ifndef WEBRE_SCHEMA_SEQUENCE_PATTERNS_H_
#define WEBRE_SCHEMA_SEQUENCE_PATTERNS_H_

#include <optional>
#include <string>
#include <vector>

#include "schema/label_path.h"
#include "xml/dtd.h"
#include "xml/node.h"

namespace webre {

/// A repeating group of child labels, the "repetitive structures of more
/// general types, e.g., of the form (e1,e2)*" that §3.3 delegates to
/// Xtract [17] and notes "we recently included similar computations into
/// our approach".
struct SequencePattern {
  /// The repeating unit, e.g. {DATE, INSTITUTION, DEGREE}.
  std::vector<std::string> group;
  /// Fraction of input sequences that are a whole number (>= 1) of
  /// repetitions of `group`.
  double coverage = 0.0;
  /// Average repetition count among covered sequences.
  double avg_repeats = 0.0;

  /// Renders as DTD syntax: `(DATE, INSTITUTION, DEGREE)+`.
  std::string ToString() const;

  /// The equivalent content-model particle (`(e1, e2, ...)+`).
  ContentParticle ToParticle() const;
};

/// Detects the dominant repeating group across child-label sequences.
///
/// A sequence is *covered* by a candidate period p when it consists of
/// one or more back-to-back copies of its own first p labels, and all
/// covered sequences agree on that p-label unit. Candidates are tried
/// from the smallest period upward; the first unit whose coverage
/// reaches `min_coverage` wins. Sequences of fewer than two repetitions
/// still count as covered (one copy), but at least `min_multi_fraction`
/// of the covered sequences must repeat the unit at least twice —
/// otherwise any constant sequence would "repeat" with period n.
std::optional<SequencePattern> DetectRepeatingGroup(
    const std::vector<std::vector<std::string>>& sequences,
    double min_coverage = 0.6, double min_multi_fraction = 0.3);

/// Collects, across one document, the element-child label sequences of
/// every node whose root-emanating label path equals `parent_path`.
std::vector<std::vector<std::string>> CollectChildSequences(
    const Node& root, const LabelPath& parent_path);

}  // namespace webre

#endif  // WEBRE_SCHEMA_SEQUENCE_PATTERNS_H_
