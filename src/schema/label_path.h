#ifndef WEBRE_SCHEMA_LABEL_PATH_H_
#define WEBRE_SCHEMA_LABEL_PATH_H_

#include <string>
#include <string_view>
#include <vector>

namespace webre {

/// A label path (§3.2): the sequence of element names along a node path
/// starting at the document root. Two different node paths can have the
/// same label path; schema discovery works on label paths only.
using LabelPath = std::vector<std::string>;

/// Joins a label path with '/' separators, e.g. "resume/education/degree".
std::string JoinLabelPath(const LabelPath& path);

/// Splits a joined label path back into labels.
LabelPath SplitLabelPath(std::string_view joined);

}  // namespace webre

#endif  // WEBRE_SCHEMA_LABEL_PATH_H_
