#ifndef WEBRE_SCHEMA_DTD_BUILDER_H_
#define WEBRE_SCHEMA_DTD_BUILDER_H_

#include "schema/majority_schema.h"
#include "xml/dtd.h"

namespace webre {

/// Knobs for deriving a DTD from a majority schema (§3.3).
struct DtdBuildOptions {
  /// An element is marked repetitive (`e+`) when mult(e) — the fraction
  /// of documents containing it in which its sibling multiplicity
  /// reached the miner's repThreshold — exceeds this ("greater than a
  /// specified threshold, say 0.5").
  double mult_threshold = 0.5;
  /// Lead every non-leaf content model with (#PCDATA), as in the
  /// paper's §4.4 sample DTD — concept elements always carry character
  /// data through their `val` attribute.
  bool lead_with_pcdata = true;
  /// Extension mentioned in §3.3 ("the same multiplicity information can
  /// be used to introduce optional elements"): mark a child optional
  /// (`e?`, or `e*` when also repetitive) if it occurs in less than
  /// `optional_threshold` of the documents containing its parent.
  bool mark_optional = false;
  double optional_threshold = 0.95;
};

/// Derives a DTD from the majority schema: the ordering rule has already
/// sorted each schema node's children by average position; this adds the
/// repetition (and optional) decorations and emits one `<!ELEMENT>` per
/// schema node. Leaves become `(#PCDATA)`. Since every path in TF is
/// frequent, "no element should be optional" by default.
Dtd BuildDtd(const MajoritySchema& schema, const DtdBuildOptions& options = {});

}  // namespace webre

#endif  // WEBRE_SCHEMA_DTD_BUILDER_H_
