#include "schema/path_extractor.h"

#include <algorithm>
#include <unordered_set>

namespace webre {
namespace {

void Walk(const Node& node, LabelPath& prefix,
          std::unordered_set<std::string>& seen, DocumentPaths& out) {
  prefix.push_back(node.name());
  const std::string joined = JoinLabelPath(prefix);
  if (seen.insert(joined).second) {
    out.paths.push_back(prefix);
    out.joined_paths.push_back(joined);
  }

  // Multiplicity: how many same-label siblings does this node have
  // (including itself)? Computed from the parent side below for
  // children; for the root it is 1.
  // Ordering and multiplicity are recorded per child here so both are
  // gathered in the single walk.
  size_t element_index = 0;
  std::unordered_map<std::string, size_t> sibling_counts;
  for (size_t i = 0; i < node.child_count(); ++i) {
    const Node* child = node.child(i);
    if (!child->is_element()) continue;
    ++sibling_counts[child->name()];
  }
  for (size_t i = 0; i < node.child_count(); ++i) {
    const Node* child = node.child(i);
    if (!child->is_element()) continue;
    prefix.push_back(child->name());
    const std::string child_joined = JoinLabelPath(prefix);
    prefix.pop_back();

    size_t& max_mult = out.max_multiplicity[child_joined];
    max_mult = std::max(max_mult, sibling_counts[child->name()]);
    out.position_sum[child_joined] += static_cast<double>(element_index);
    ++out.position_count[child_joined];
    ++element_index;
  }

  for (size_t i = 0; i < node.child_count(); ++i) {
    const Node* child = node.child(i);
    if (child->is_element()) Walk(*child, prefix, seen, out);
  }
  prefix.pop_back();
}

}  // namespace

DocumentPaths ExtractPaths(const Node& root) {
  DocumentPaths out;
  if (!root.is_element()) return out;
  LabelPath prefix;
  std::unordered_set<std::string> seen;
  out.max_multiplicity[root.name()] = 1;
  Walk(root, prefix, seen, out);
  return out;
}

}  // namespace webre
