#include "schema/path_extractor.h"

#include <algorithm>
#include <cstdint>
#include <utility>

namespace webre {
namespace {

/// Dense per-document path table. A label path is identified during the
/// walk by a 32-bit dense index; a child path is resolved from its
/// parent's index and the child's interned name with one probe into an
/// open-addressing table keyed by the packed (parent, name) pair — no
/// string is joined or hashed anywhere, and the only allocations are
/// the table's geometric growth. Label strings are materialized once
/// per distinct path at the very end.
class PathTable {
 public:
  static constexpr uint32_t kNoParent = 0xFFFFFFFFu;

  struct Entry {
    uint32_t parent;  // dense index of the parent path, kNoParent for root
    NameId name;      // leaf label
    size_t max_multiplicity = 0;
    double position_sum = 0.0;
    size_t position_count = 0;
    bool emitted = false;  // already appended to the pre-order path list
  };

  PathTable() { Rehash(kInitialSlots); }

  /// Dense index of the path `parent_index / name`, creating it if new.
  uint32_t Resolve(uint32_t parent_index, NameId name) {
    const uint64_t key =
        (static_cast<uint64_t>(parent_index) << 32) | name;
    size_t slot = Mix(key) & mask_;
    while (true) {
      if (keys_[slot] == key) return values_[slot];
      if (keys_[slot] == kEmptySlot) break;
      slot = (slot + 1) & mask_;
    }
    const uint32_t index = static_cast<uint32_t>(entries_.size());
    entries_.push_back(Entry{parent_index, name});
    keys_[slot] = key;
    values_[slot] = index;
    if (++used_ * 4 > keys_.size() * 3) Rehash(keys_.size() * 2);
    return index;
  }

  Entry& entry(uint32_t i) { return entries_[i]; }

  /// Records `i` as the next distinct path in document pre-order; no-op
  /// if the path was already seen (the dedup the paper requires, §3.2).
  void Emit(uint32_t i) {
    if (entries_[i].emitted) return;
    entries_[i].emitted = true;
    emit_order_.push_back(i);
  }

  /// Scratch for Walk's per-node sibling counting. Owned here so the
  /// whole recursive walk reuses one buffer: each frame finishes with
  /// the counts before recursing into any child.
  std::vector<std::pair<NameId, size_t>>& sibling_scratch() {
    return sibling_scratch_;
  }

  /// Fills the public DocumentPaths (label paths in emit order plus the
  /// parallel statistics vectors) from the dense table.
  void Materialize(DocumentPaths& out) const {
    NameTable& names = NameTable::Global();
    out.paths.reserve(emit_order_.size());
    out.max_multiplicity.reserve(emit_order_.size());
    out.position_sum.reserve(emit_order_.size());
    out.position_count.reserve(emit_order_.size());
    out.parent_index.reserve(emit_order_.size());
    out.leaf_name.reserve(emit_order_.size());
    // Dense table index -> emit position, so parent_index can point into
    // the emitted (pre-order) vectors. Pre-order guarantees every parent
    // was emitted before its children.
    std::vector<uint32_t> dense_to_emit(entries_.size(),
                                        DocumentPaths::kNoParentPath);
    for (size_t k = 0; k < emit_order_.size(); ++k) {
      dense_to_emit[emit_order_[k]] = static_cast<uint32_t>(k);
    }
    for (uint32_t i : emit_order_) {
      out.parent_index.push_back(entries_[i].parent == kNoParent
                                     ? DocumentPaths::kNoParentPath
                                     : dense_to_emit[entries_[i].parent]);
      out.leaf_name.push_back(entries_[i].name);
      LabelPath path;
      for (uint32_t j = i; j != kNoParent; j = entries_[j].parent) {
        path.emplace_back(names.NameOf(entries_[j].name));
      }
      std::reverse(path.begin(), path.end());
      out.paths.push_back(std::move(path));
      const Entry& e = entries_[i];
      out.max_multiplicity.push_back(e.max_multiplicity);
      out.position_sum.push_back(e.position_sum);
      out.position_count.push_back(e.position_count);
    }
  }

 private:
  // (kNoParent, kInvalidNameId) can never be resolved — text nodes have
  // no path — so the all-ones key doubles as the empty-slot marker.
  static constexpr uint64_t kEmptySlot = 0xFFFFFFFFFFFFFFFFull;
  static constexpr size_t kInitialSlots = 128;  // power of two

  static uint64_t Mix(uint64_t key) {
    // splitmix64 finalizer: full-width avalanche of the packed pair.
    key ^= key >> 30;
    key *= 0xbf58476d1ce4e5b9ull;
    key ^= key >> 27;
    key *= 0x94d049bb133111ebull;
    key ^= key >> 31;
    return key;
  }

  void Rehash(size_t new_slots) {
    std::vector<uint64_t> old_keys = std::move(keys_);
    std::vector<uint32_t> old_values = std::move(values_);
    keys_.assign(new_slots, kEmptySlot);
    values_.assign(new_slots, 0);
    mask_ = new_slots - 1;
    for (size_t i = 0; i < old_keys.size(); ++i) {
      if (old_keys[i] == kEmptySlot) continue;
      size_t slot = Mix(old_keys[i]) & mask_;
      while (keys_[slot] != kEmptySlot) slot = (slot + 1) & mask_;
      keys_[slot] = old_keys[i];
      values_[slot] = old_values[i];
    }
  }

  std::vector<Entry> entries_;
  std::vector<uint32_t> emit_order_;
  std::vector<uint64_t> keys_;
  std::vector<uint32_t> values_;
  size_t mask_ = 0;
  size_t used_ = 0;
  std::vector<std::pair<NameId, size_t>> sibling_scratch_;
};

void Walk(const Node& node, uint32_t path_index, PathTable& table) {
  table.Emit(path_index);

  // Multiplicity: how many same-label siblings does each child have
  // (including itself)? Counted into the table's scratch buffer — a
  // linear scan beats a hash map at real fan-outs, and the buffer is
  // fully consumed below before any recursive frame reuses it.
  std::vector<std::pair<NameId, size_t>>& counts = table.sibling_scratch();
  counts.clear();
  for (size_t i = 0; i < node.child_count(); ++i) {
    const Node* child = node.child(i);
    if (!child->is_element()) continue;
    const NameId name = child->name_id();
    bool found = false;
    for (auto& [id, count] : counts) {
      if (id == name) {
        ++count;
        found = true;
        break;
      }
    }
    if (!found) counts.emplace_back(name, 1);
  }
  size_t element_index = 0;
  for (size_t i = 0; i < node.child_count(); ++i) {
    const Node* child = node.child(i);
    if (!child->is_element()) continue;
    const uint32_t child_path = table.Resolve(path_index, child->name_id());
    {
      size_t multiplicity = 0;
      for (const auto& [id, count] : counts) {
        if (id == child->name_id()) {
          multiplicity = count;
          break;
        }
      }
      PathTable::Entry& e = table.entry(child_path);
      e.max_multiplicity = std::max(e.max_multiplicity, multiplicity);
      e.position_sum += static_cast<double>(element_index);
      ++e.position_count;
    }
    ++element_index;
  }

  // Recurse only after the whole sibling pass: the scratch buffer and
  // any Entry references are dead by now, so reuse and reallocation in
  // deeper frames are safe. Resolve is a pure lookup the second time.
  for (size_t i = 0; i < node.child_count(); ++i) {
    const Node* child = node.child(i);
    if (!child->is_element()) continue;
    Walk(*child, table.Resolve(path_index, child->name_id()), table);
  }
}

}  // namespace

DocumentPaths ExtractPaths(const Node& root) {
  DocumentPaths out;
  if (!root.is_element()) return out;
  PathTable table;
  const uint32_t root_path =
      table.Resolve(PathTable::kNoParent, root.name_id());
  // The root path occurs exactly once per document.
  table.entry(root_path).max_multiplicity = 1;
  Walk(root, root_path, table);
  table.Materialize(out);
  return out;
}

DocumentPaths ExtractPaths(const FlatDoc& doc) {
  DocumentPaths out;
  const uint32_t count = doc.element_count();
  if (count == 0) return out;
  PathTable table;

  // Iterating flat indices in order IS the pre-order walk, and every
  // child is an element, so the emit / resolve / statistics sequence
  // below replays Walk() on the original tree call for call: emit the
  // element's path, count same-label siblings among its children, then
  // record each child's multiplicity and ordinal position.
  std::vector<uint32_t> elem_path(count);
  elem_path[0] = table.Resolve(PathTable::kNoParent, doc.name(0));
  table.entry(elem_path[0]).max_multiplicity = 1;

  for (uint32_t e = 0; e < count; ++e) {
    const uint32_t path_index = elem_path[e];
    table.Emit(path_index);

    std::vector<std::pair<NameId, size_t>>& counts = table.sibling_scratch();
    counts.clear();
    const uint32_t end = doc.subtree_end(e);
    for (uint32_t f = e + 1; f < end; f = doc.subtree_end(f)) {
      const NameId name = doc.name(f);
      bool found = false;
      for (auto& [id, n] : counts) {
        if (id == name) {
          ++n;
          found = true;
          break;
        }
      }
      if (!found) counts.emplace_back(name, 1);
    }
    uint32_t element_index = 0;
    for (uint32_t f = e + 1; f < end; f = doc.subtree_end(f)) {
      const uint32_t child_path = table.Resolve(path_index, doc.name(f));
      elem_path[f] = child_path;
      size_t multiplicity = 0;
      for (const auto& [id, n] : counts) {
        if (id == doc.name(f)) {
          multiplicity = n;
          break;
        }
      }
      PathTable::Entry& entry = table.entry(child_path);
      entry.max_multiplicity = std::max(entry.max_multiplicity, multiplicity);
      entry.position_sum += static_cast<double>(element_index);
      ++entry.position_count;
      ++element_index;
    }
  }
  table.Materialize(out);
  return out;
}

}  // namespace webre
